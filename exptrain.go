// Package exptrain is a Go implementation of exploratory training
// (Shrestha, Habibelahian, Termehchy, Papotti — SIGMOD 2023): active
// learning in which the human annotator is itself a learning agent whose
// labeling strategy evolves as it observes data.
//
// The framework models one training session as a game between two
// agents. The *trainer* (the human) holds a belief over a hypothesis
// space of approximate functional dependencies, updates it by fictitious
// play as samples arrive, and annotates the presented tuple pairs in
// best response to that belief. The *learner* (the system) selects which
// pairs to present — fixed random sampling, greedy uncertainty sampling,
// or the paper's stochastic best response / stochastic uncertainty
// sampling — and updates its own belief from the annotations alone.
// Convergence is measured as the mean absolute error between the two
// belief vectors; model quality as error-detection F1 on a held-out
// split.
//
// This package is the public facade: it re-exports the stable API from
// the internal packages and provides the one-call RunSession helper.
// The cmd/ binaries regenerate every table and figure of the paper's
// evaluation; the examples/ directory shows end-to-end usage.
package exptrain

import (
	"context"
	"fmt"

	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/datagen"
	"exptrain/internal/dataset"
	"exptrain/internal/errgen"
	"exptrain/internal/experiments"
	"exptrain/internal/fd"
	"exptrain/internal/game"
	"exptrain/internal/metrics"
	"exptrain/internal/persist"
	"exptrain/internal/repair"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
	"exptrain/internal/userstudy"
)

// Relational substrate.
type (
	// Relation is an in-memory relation (ordered schema + string-typed
	// rows).
	Relation = dataset.Relation
	// Schema is an ordered attribute list with name→position lookup.
	Schema = dataset.Schema
	// Tuple is one row of a relation.
	Tuple = dataset.Tuple
	// Pair is an unordered pair of distinct row indices — the unit the
	// samplers present and the trainer labels.
	Pair = dataset.Pair
)

// Functional dependencies.
type (
	// FD is a normalized functional dependency X → A.
	FD = fd.FD
	// AttrSet is a bitmask set of attribute positions.
	AttrSet = fd.AttrSet
	// Space is an indexed FD hypothesis space.
	Space = fd.Space
	// FDStats holds the pair-level counts behind g₁ and confidence.
	FDStats = fd.Stats
	// DiscoveryConfig tunes approximate-FD discovery.
	DiscoveryConfig = fd.DiscoveryConfig
)

// Beliefs, agents and the game.
type (
	// Belief is a vector of Beta distributions over the hypothesis
	// space.
	Belief = belief.Belief
	// Labeling is one annotated pair (cell-level violation marks).
	Labeling = belief.Labeling
	// PriorSpec configures a §C.1 prior family (Uniform-d, Random,
	// Data-estimate).
	PriorSpec = belief.PriorSpec
	// Trainer is the annotator side of the game.
	Trainer = agents.Trainer
	// FPTrainer is the fictitious-play (Bayesian) trainer.
	FPTrainer = agents.FPTrainer
	// Learner is the active-learning side of the game.
	Learner = agents.Learner
	// Sampler is a learner response strategy.
	Sampler = sampling.Sampler
	// Method is the typed identifier of a response strategy; it
	// round-trips through String/ParseMethod and JSON.
	Method = sampling.Method
	// GameConfig drives one game (k, iterations, evaluation).
	GameConfig = game.Config
	// GameResult is one game's full trajectory.
	GameResult = game.Result
	// TrainingSession is the step-wise session API: the caller owns the
	// annotator side (Next presents pairs, Submit consumes labels).
	TrainingSession = game.Session
	// TrainingSessionConfig assembles a step-wise session.
	TrainingSessionConfig = game.SessionConfig
	// RoundObserver receives the round engine's structured per-round
	// events; batch runs, step-wise sessions and the HTTP service all
	// emit the same stream.
	RoundObserver = game.Observer
	// NopRoundObserver is the no-op RoundObserver; embed it to implement
	// only the events of interest.
	NopRoundObserver = game.NopObserver
	// IterationRecord is one completed round of a game or session.
	IterationRecord = game.IterationRecord
	// PRF1 bundles precision, recall and F1.
	PRF1 = metrics.PRF1
)

// Experiment and study harnesses.
type (
	// ExperimentConfig is one evaluation condition (§C.1).
	ExperimentConfig = experiments.Config
	// ExperimentResult holds the four methods' averaged series.
	ExperimentResult = experiments.Result
	// Dataset is a generated synthetic stand-in for a paper dataset.
	Dataset = datagen.Dataset
	// StudyConfig sizes the simulated user study (Appendix A).
	StudyConfig = userstudy.StudyConfig
	// Study holds all simulated trajectories.
	Study = userstudy.Study
	// Snapshot is a serializable training-session checkpoint.
	Snapshot = persist.Snapshot
	// RepairSuggestion is one proposed cell repair.
	RepairSuggestion = repair.Suggestion
	// BelievedFD pairs a dependency with the model's confidence in it.
	BelievedFD = repair.BelievedFD
	// RepairConfig tunes repair-suggestion generation.
	RepairConfig = repair.Config
	// FDTracker maintains one FD's statistics incrementally under cell
	// updates (streaming/evolving data).
	FDTracker = fd.Tracker
	// FDMultiTracker maintains a whole hypothesis space incrementally.
	FDMultiTracker = fd.MultiTracker
)

// Prior kinds of §C.1.
const (
	PriorUniform      = belief.PriorUniform
	PriorRandom       = belief.PriorRandom
	PriorDataEstimate = belief.PriorDataEstimate
)

// DefaultGamma is the exploration temperature used throughout the
// paper's evaluation (γ = 0.5).
const DefaultGamma = sampling.DefaultGamma

// Response-strategy identifiers (the paper's four methods plus the
// repo's extensions). MethodDefault resolves to StochasticUS.
const (
	MethodDefault       = sampling.MethodDefault
	MethodRandom        = sampling.MethodRandom
	MethodUS            = sampling.MethodUS
	MethodStochasticBR  = sampling.MethodStochasticBR
	MethodStochasticUS  = sampling.MethodStochasticUS
	MethodQBC           = sampling.MethodQBC
	MethodEpsilonGreedy = sampling.MethodEpsilonGreedy
)

// Sentinel errors of the public surface, re-exported so callers can
// errors.Is against the facade alone.
var (
	// ErrRoundPending: TrainingSession.Next (or Snapshot) was called
	// while a presented round is unsubmitted.
	ErrRoundPending = game.ErrRoundPending
	// ErrNoRoundPending: TrainingSession.Submit was called with no round
	// presented.
	ErrNoRoundPending = game.ErrNoRoundPending
	// ErrPoolExhausted: the session's candidate pool has no fresh pairs
	// left.
	ErrPoolExhausted = game.ErrPoolExhausted
	// ErrUnknownMethod: a method name or value was not recognized.
	ErrUnknownMethod = sampling.ErrUnknownMethod
)

// ParseMethod maps a paper method name ("Random", "US", "StochasticBR",
// "StochasticUS", "QBC", "EpsilonGreedy") to its typed Method; unknown
// names error wrapping ErrUnknownMethod.
func ParseMethod(name string) (Method, error) { return sampling.ParseMethod(name) }

// ReadCSVFile loads a relation from a CSV file with a header row.
func ReadCSVFile(path string) (*Relation, error) { return dataset.ReadCSVFile(path) }

// NewSchema builds a schema from attribute names.
func NewSchema(names ...string) (*Schema, error) { return dataset.NewSchema(names...) }

// NewRelation returns an empty relation over the schema.
func NewRelation(schema *Schema) *Relation { return dataset.New(schema) }

// ParseFD parses "A,B->C" against a schema.
func ParseFD(s string, schema *Schema) (FD, error) { return fd.Parse(s, schema) }

// G1 computes the paper's scaled g₁ approximation measure of f over rel
// (Example 1: g₁(Team→City) = 0.04 over Table 1).
func G1(f FD, rel *Relation) float64 { return fd.G1(f, rel) }

// DiscoverFDs finds all minimal approximate FDs with g₁ at most the
// threshold, exploring LHS sizes up to maxLHS.
func DiscoverFDs(rel *Relation, maxG1 float64, maxLHS int) ([]FD, error) {
	return fd.Discover(rel, fd.DiscoveryConfig{MaxG1: maxG1, MaxLHS: maxLHS})
}

// Discover is DiscoverFDs with the full configuration (confidence and
// support floors in addition to the g₁ threshold).
func Discover(rel *Relation, cfg DiscoveryConfig) ([]FD, error) {
	return fd.Discover(rel, cfg)
}

// DetectErrors flags the rows the given FDs deem erroneous (the
// minority-value repair heuristic).
func DetectErrors(fds []FD, rel *Relation) map[int]struct{} {
	return fd.DetectErrors(fds, rel)
}

// GenerateDataset builds a synthetic stand-in for a paper dataset
// ("OMDB", "AIRPORT", "Hospital", "Tax") with n rows.
func GenerateDataset(name string, n int, seed uint64) (*Dataset, error) {
	gen, err := datagen.ByName(name)
	if err != nil {
		return nil, err
	}
	return gen(n, seed), nil
}

// InjectErrors dirties a relation until the FDs' mean violating-pair
// fraction reaches degree, returning the dirty copy and ground truth.
func InjectErrors(rel *Relation, fds []FD, degree float64, seed uint64) (*errgen.Result, error) {
	return errgen.InjectDegree(rel, errgen.DegreeConfig{FDs: fds, Degree: degree, Seed: seed})
}

// RunExperiment executes one evaluation condition for all four sampling
// methods.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) { return experiments.Run(cfg) }

// RunExperimentContext is RunExperiment with cancellation checked
// inside the method × seed fan-out.
func RunExperimentContext(ctx context.Context, cfg ExperimentConfig) (*ExperimentResult, error) {
	return experiments.RunContext(ctx, cfg)
}

// NewTrainingSession starts a step-wise session for a caller-owned
// annotator (an interactive UI, a crowdsourcing bridge).
func NewTrainingSession(cfg TrainingSessionConfig) (*TrainingSession, error) {
	return game.NewSession(cfg)
}

// ResumeTrainingSession rebuilds a step-wise session from a checkpoint.
func ResumeTrainingSession(snap *Snapshot, cfg TrainingSessionConfig) (*TrainingSession, error) {
	return game.ResumeSession(snap, cfg)
}

// SimulateStudy runs the simulated user study of Appendix A.
func SimulateStudy(cfg StudyConfig) (*Study, error) { return userstudy.Simulate(cfg) }

// SimulateStudyContext is SimulateStudy with cancellation checked
// between participant sessions.
func SimulateStudyContext(ctx context.Context, cfg StudyConfig) (*Study, error) {
	return userstudy.SimulateContext(ctx, cfg)
}

// NewSnapshot captures a session checkpoint: the schema, the hypothesis
// space, optional agent beliefs and the labeling history.
func NewSnapshot(schema *Schema, space *Space, trainer, learner *Belief, history [][]Labeling) (*Snapshot, error) {
	return persist.NewSnapshot(schema, space, trainer, learner, history)
}

// ReadSnapshotFile loads a session checkpoint.
func ReadSnapshotFile(path string) (*Snapshot, error) { return persist.ReadFile(path) }

// MinimalCover returns a minimal cover of an FD set: left-reduced and
// with implied dependencies removed (Armstrong inference).
func MinimalCover(fds []FD) []FD { return fd.MinimalCover(fds) }

// SuggestRepairs derives minority-to-plurality cell repairs from a
// believed-FD model (§A.1's downstream application).
func SuggestRepairs(rel *Relation, believed []BelievedFD, cfg RepairConfig) ([]RepairSuggestion, error) {
	return repair.Suggest(rel, believed, cfg)
}

// ApplyRepairs returns a repaired copy of the relation.
func ApplyRepairs(rel *Relation, suggestions []RepairSuggestion) (*Relation, error) {
	return repair.Apply(rel, suggestions)
}

// NewFDTracker builds an incremental statistics tracker for one FD.
func NewFDTracker(f FD, rel *Relation) *FDTracker { return fd.NewTracker(f, rel) }

// NewFDMultiTracker builds incremental trackers for a set of FDs with a
// single write path.
func NewFDMultiTracker(fds []FD, rel *Relation) *FDMultiTracker {
	return fd.NewMultiTracker(fds, rel)
}

// SessionConfig assembles one exploratory-training session over a
// caller-provided relation: the simulated FP trainer annotates, the
// learner with the chosen response strategy presents pairs and learns.
type SessionConfig struct {
	// Relation is the (possibly dirty) data to train over.
	Relation *Relation
	// Space is the FD hypothesis space; when nil it is enumerated with
	// MaxLHS 2 over all attributes.
	Space *Space
	// Method is the learner's response strategy; the zero value
	// (MethodDefault) resolves to StochasticUS.
	Method Method
	// Gamma is the stochastic temperature (default 0.5).
	Gamma float64
	// TrainerPrior and LearnerPrior default to Random and
	// Data-estimate respectively.
	TrainerPrior, LearnerPrior PriorSpec
	// K, Iterations: examples per interaction and interaction count
	// (defaults 10 and 30).
	K, Iterations int
	// LearnerForgetRate enables discounted fictitious play on the
	// learner: evidence is geometrically discounted by this rate before
	// each update (useful when the annotator drifts). Zero disables it.
	LearnerForgetRate float64
	// Seed makes the session reproducible.
	Seed uint64
	// Observer receives the engine's per-round events (default: no-op).
	Observer RoundObserver
}

// RunSession plays one exploratory-training game and returns its
// trajectory. It is the quickstart entry point.
func RunSession(cfg SessionConfig) (*GameResult, error) {
	return RunSessionContext(context.Background(), cfg)
}

// RunSessionContext is RunSession with cancellation checked between
// interactions.
func RunSessionContext(ctx context.Context, cfg SessionConfig) (*GameResult, error) {
	if cfg.Relation == nil {
		return nil, fmt.Errorf("exptrain: SessionConfig.Relation is required")
	}
	space := cfg.Space
	if space == nil {
		fds, err := fd.Enumerate(fd.SpaceConfig{
			Arity:  cfg.Relation.Schema().Arity(),
			MaxLHS: 2,
		})
		if err != nil {
			return nil, err
		}
		space, err = fd.NewSpace(fds)
		if err != nil {
			return nil, err
		}
	}
	sampler, err := sampling.New(cfg.Method, cfg.Gamma)
	if err != nil {
		return nil, err
	}
	trainerSpec := cfg.TrainerPrior
	if trainerSpec.Kind == "" {
		trainerSpec = PriorSpec{Kind: PriorRandom, Sigma: 0.12}
	}
	learnerSpec := cfg.LearnerPrior
	if learnerSpec.Kind == "" {
		learnerSpec = PriorSpec{Kind: PriorDataEstimate, Sigma: 0.12}
	}

	rng := stats.NewRNG(cfg.Seed ^ 0x5E55)
	trainerPrior, err := trainerSpec.Build(space, cfg.Relation, rng.Split())
	if err != nil {
		return nil, fmt.Errorf("exptrain: trainer prior: %w", err)
	}
	learnerPrior, err := learnerSpec.Build(space, cfg.Relation, rng.Split())
	if err != nil {
		return nil, fmt.Errorf("exptrain: learner prior: %w", err)
	}
	trainer := agents.NewFPTrainer(trainerPrior, rng.Split())
	learner := agents.NewLearner(learnerPrior, sampler, rng.Split())
	learner.ForgetRate = cfg.LearnerForgetRate
	pool := sampling.NewPool(cfg.Relation, space, sampling.PoolConfig{Seed: cfg.Seed ^ 0x9001})
	return game.RunContext(ctx, cfg.Relation, trainer, learner, pool, game.Config{
		K:          cfg.K,
		Iterations: cfg.Iterations,
		Observer:   cfg.Observer,
	})
}
