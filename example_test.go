package exptrain_test

import (
	"fmt"
	"log"

	"exptrain"
)

// ExampleG1 reproduces the paper's Example 1: the scaled g₁ measure of
// Team→City over the Table 1 instance is 1/25 = 0.04.
func ExampleG1() {
	schema, err := exptrain.NewSchema("Player", "Team", "City", "Role", "Apps")
	if err != nil {
		log.Fatal(err)
	}
	rel := buildRelation(schema, [][]string{
		{"Carter", "Lakers", "L.A.", "C", "4"},
		{"Jordan", "Lakers", "Chicago", "PF", "4"},
		{"Smith", "Bulls", "Chicago", "PF", "4"},
		{"Black", "Bulls", "Chicago", "C", "3"},
		{"Miller", "Clippers", "L.A.", "PG", "3"},
	})
	f, err := exptrain.ParseFD("Team->City", rel.Schema())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("g1(Team->City) = %.2f\n", exptrain.G1(f, rel))
	// Output:
	// g1(Team->City) = 0.04
}

// ExampleDiscoverFDs finds the dependencies planted in a synthetic
// dataset directly from the data.
func ExampleDiscoverFDs() {
	ds, err := exptrain.GenerateDataset("Tax", 300, 1)
	if err != nil {
		log.Fatal(err)
	}
	found, err := exptrain.Discover(ds.Rel, exptrain.DiscoveryConfig{
		MaxG1:         0,
		MaxLHS:        1,
		MinConfidence: 0.99,
		MinSupport:    100,
	})
	if err != nil {
		log.Fatal(err)
	}
	names := ds.Rel.Schema().Names()
	for _, f := range found {
		// Print only the planted ground truth for a stable example.
		for _, want := range ds.ExactFDs {
			if f == want {
				fmt.Println(f.Render(names))
			}
		}
	}
	// Output:
	// areacode->state
	// state->singleexemp
	// zip->city
	// zip->state
}

// ExampleRunSession plays one full exploratory-training game against a
// simulated fictitious-play annotator.
func ExampleRunSession() {
	ds, err := exptrain.GenerateDataset("OMDB", 240, 1)
	if err != nil {
		log.Fatal(err)
	}
	dirty, err := exptrain.InjectErrors(ds.Rel, ds.ExactFDs, 0.10, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exptrain.RunSession(exptrain.SessionConfig{
		Relation: dirty.Rel,
		Space:    ds.Space(3, 38),
		Method:   exptrain.MethodStochasticUS,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interactions: %d\n", len(res.Iterations))
	fmt.Printf("belief agreement improved: %v\n", res.FinalMAE() < res.Iterations[0].MAE)
	// Output:
	// interactions: 30
	// belief agreement improved: true
}

// ExampleNewTrainingSession shows the step-wise protocol a real
// annotator UI drives: Next presents pairs, Submit consumes marks.
func ExampleNewTrainingSession() {
	ds, err := exptrain.GenerateDataset("AIRPORT", 150, 2)
	if err != nil {
		log.Fatal(err)
	}
	session, err := exptrain.NewTrainingSession(exptrain.TrainingSessionConfig{
		Relation: ds.Rel,
		Space:    ds.Space(3, 38),
		K:        4,
		Seed:     5,
	})
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := session.Next()
	if err != nil {
		log.Fatal(err)
	}
	// Label every presented pair clean (the data is clean here).
	labels := make([]exptrain.Labeling, len(pairs))
	for i, p := range pairs {
		labels[i] = exptrain.Labeling{Pair: p}
	}
	if err := session.Submit(labels); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rounds submitted: %d\n", session.Rounds())
	// Output:
	// rounds submitted: 1
}

// buildRelation is a helper for examples.
func buildRelation(schema *exptrain.Schema, rows [][]string) *exptrain.Relation {
	rel := newRelation(schema)
	for _, row := range rows {
		if err := rel.Append(exptrain.Tuple(row)); err != nil {
			log.Fatal(err)
		}
	}
	return rel
}

// newRelation adapts the dataset constructor for example code.
func newRelation(schema *exptrain.Schema) *exptrain.Relation {
	return exptrain.NewRelation(schema)
}
