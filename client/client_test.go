package client_test

// Acceptance tests: the public client against an in-process service
// server. They live in package client_test and drive the real HTTP
// stack end to end, so they double as contract tests between the two
// independent implementations of the wire format.

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"exptrain/client"
	"exptrain/internal/service"
)

const testCSV = `player,team,city
carter,lakers,la
jordan,lakers,la
smith,bulls,chicago
black,bulls,chicago
jones,bulls,detroit
wade,heat,miami
nash,suns,phoenix
kidd,nets,newark
`

func newStack(t *testing.T, opts service.Options) (*service.Manager, *client.Client) {
	t.Helper()
	m := service.NewManager(opts)
	ts := httptest.NewServer(service.NewServer(m, service.ServerOptions{}))
	t.Cleanup(ts.Close)
	c := client.New(ts.URL, client.Options{
		HTTP:  ts.Client(),
		Retry: client.RetryPolicy{MaxAttempts: 3, MaxWait: 20 * time.Millisecond},
	})
	return m, c
}

func TestClientInteractiveRoundTrip(t *testing.T) {
	_, c := newStack(t, service.Options{})
	ctx := context.Background()

	info, err := c.Create(ctx, client.CreateSession{CSV: testCSV, Method: "Random", K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Rows != 8 {
		t.Fatalf("create: %+v", info)
	}

	pairs, err := c.Next(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 || len(pairs[0].ATuple) != 3 {
		t.Fatalf("next: %+v", pairs)
	}
	labels := make([]client.Labeling, len(pairs))
	for i, p := range pairs {
		labels[i] = client.Labeling{Pair: [2]int{p.A, p.B}}
	}
	info, err = c.Submit(ctx, info.ID, 0, labels)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rounds != 1 {
		t.Fatalf("after submit: %+v", info)
	}

	// Idempotency over the wire: the identical retry succeeds without
	// advancing; a different replay is a round_mismatch.
	if info, err = c.Submit(ctx, info.ID, 0, labels); err != nil || info.Rounds != 1 {
		t.Fatalf("identical replay: %+v, %v", info, err)
	}
	altered := append([]client.Labeling(nil), labels...)
	altered[0].Marked = []int{1}
	if _, err := c.Submit(ctx, info.ID, 0, altered); !errors.Is(err, client.ErrRoundMismatch) {
		t.Fatalf("altered replay: %v, want ErrRoundMismatch", err)
	}
	if _, err := c.Submit(ctx, info.ID, 5, nil); !errors.Is(err, client.ErrRoundMismatch) {
		t.Fatalf("future round: %v, want ErrRoundMismatch", err)
	}

	rounds, err := c.Rounds(ctx, info.ID)
	if err != nil || len(rounds) != 1 || rounds[0].Labeled != 3 {
		t.Fatalf("rounds: %+v, %v", rounds, err)
	}
	hyps, err := c.Belief(ctx, info.ID, 3)
	if err != nil || len(hyps) != 3 {
		t.Fatalf("belief: %+v, %v", hyps, err)
	}
	if _, err := c.Session(ctx, "sess-none"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("missing session: %v, want ErrNotFound", err)
	}
}

func TestClientEnqueueAndStream(t *testing.T) {
	_, c := newStack(t, service.Options{DrainBatch: 2})
	ctx := context.Background()

	info, err := c.Create(ctx, client.CreateSession{CSV: testCSV, Method: "Random", K: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	// Stream concurrently with the enqueue: rounds arrive as the drain
	// applies them, and "done" closes the stream at pool exhaustion
	// (seed 11 blocks testCSV into 12 candidate pairs: 4 rounds at K=3).
	subs := make([]client.Submission, 4)
	for r := range subs {
		subs[r] = client.Submission{Round: r}
	}
	tickets, err := c.Enqueue(ctx, info.ID, subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tickets) != 4 {
		t.Fatalf("tickets: %+v", tickets)
	}
	for _, tk := range tickets {
		deadline := time.Now().Add(10 * time.Second)
		for tk.State == "queued" {
			if time.Now().After(deadline) {
				t.Fatalf("ticket %s stuck queued", tk.ID)
			}
			time.Sleep(time.Millisecond)
			if tk, err = c.Ticket(ctx, info.ID, tk.ID); err != nil {
				t.Fatal(err)
			}
		}
		if tk.State != "applied" {
			t.Fatalf("ticket %+v, want applied", tk)
		}
	}

	var got []int
	err = c.StreamRounds(ctx, info.ID, 0, func(ev client.StreamEvent) error {
		if ev.Type == "round" {
			got = append(got, ev.Round.Round)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("streamed rounds %v, want 0..3", got)
	}
	for i, r := range got {
		if r != i {
			t.Fatalf("streamed rounds %v: gap or duplicate at %d", got, i)
		}
	}

	// Resume mid-series: from=2 delivers exactly rounds 2 and 3.
	got = got[:0]
	if err := c.StreamRounds(ctx, info.ID, 2, func(ev client.StreamEvent) error {
		if ev.Type == "round" {
			got = append(got, ev.Round.Round)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("resumed rounds %v, want [2 3]", got)
	}
}

func TestClientBackpressureAndSentinels(t *testing.T) {
	m, c := newStack(t, service.Options{})
	ctx := context.Background()
	info, err := c.Create(ctx, client.CreateSession{CSV: testCSV, Method: "Random", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, info.ID, client.UncheckedRound, nil); !errors.Is(err, client.ErrNoRoundPending) {
		t.Fatalf("submit before next: %v, want ErrNoRoundPending", err)
	}

	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Create(ctx, client.CreateSession{CSV: testCSV, Method: "Random", K: 3})
	if !errors.Is(err, client.ErrShuttingDown) {
		t.Fatalf("create on drained server: %v, want ErrShuttingDown", err)
	}
	// The 503 is retryable: the client must have slept between its
	// bounded attempts (MaxWait 20ms, Retry-After capped by it).
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("drained create returned after %v; backpressure retries not taken", elapsed)
	}
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.RetryAfter <= 0 {
		t.Fatalf("error %v carries no Retry-After", err)
	}
}
