// Package client is the typed Go client for the exptrain v1 HTTP API
// (see API.md at the repository root for the wire contract). It speaks
// every v1 route — session lifecycle, the interactive next/submit
// protocol, the batched labelpool submission pipeline, and the SSE
// round stream — and maps the server's error envelope onto sentinel
// errors testable with errors.Is:
//
//	info, err := c.Submit(ctx, id, round, labels)
//	if errors.Is(err, client.ErrRoundMismatch) { /* resynchronize */ }
//
// Requests that fail with a backpressure kind (429/503 carrying
// Retry-After) are retried automatically under the client's RetryPolicy.
// The package depends only on the standard library and the documented
// wire format, never on the server's internal packages — it is the
// contract's second implementation, which is what keeps the contract
// honest.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Sentinel errors mirroring the server's error-kind registry; match
// with errors.Is. An *Error returned by any method Is() the sentinel
// its kind maps to.
var (
	ErrBadRequest        = errors.New("client: bad request")
	ErrNotFound          = errors.New("client: not found")
	ErrTooManySessions   = errors.New("client: too many sessions")
	ErrShuttingDown      = errors.New("client: server shutting down")
	ErrStoreUnavailable  = errors.New("client: checkpoint store unavailable")
	ErrCorruptSnapshot   = errors.New("client: corrupt snapshot")
	ErrRoundPending      = errors.New("client: a round is pending")
	ErrNoRoundPending    = errors.New("client: no round pending")
	ErrPoolExhausted     = errors.New("client: candidate pool exhausted")
	ErrRoundMismatch     = errors.New("client: submission round mismatch")
	ErrDuplicateRound    = errors.New("client: round already queued")
	ErrSubmissionBacklog = errors.New("client: submission queue full")
	ErrTimeout           = errors.New("client: server-side timeout")
)

// kindSentinels maps wire kinds to sentinels. Unknown kinds (a newer
// server) match no sentinel but still carry their Kind.
var kindSentinels = map[string]error{
	"bad_request":        ErrBadRequest,
	"not_found":          ErrNotFound,
	"too_many_sessions":  ErrTooManySessions,
	"shutting_down":      ErrShuttingDown,
	"store_unavailable":  ErrStoreUnavailable,
	"corrupt_snapshot":   ErrCorruptSnapshot,
	"round_pending":      ErrRoundPending,
	"no_round_pending":   ErrNoRoundPending,
	"pool_exhausted":     ErrPoolExhausted,
	"round_mismatch":     ErrRoundMismatch,
	"duplicate_round":    ErrDuplicateRound,
	"submission_backlog": ErrSubmissionBacklog,
	"timeout":            ErrTimeout,
}

// Error is the decoded v1 error envelope plus its HTTP status.
type Error struct {
	Kind       string `json:"kind"`
	Message    string `json:"message"`
	RetryAfter int    `json:"retry_after,omitempty"`
	Status     int    `json:"-"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s (%d): %s", e.Kind, e.Status, e.Message)
}

// Is maps the envelope's kind onto the package sentinels.
func (e *Error) Is(target error) bool {
	return kindSentinels[e.Kind] == target
}

// retryable reports whether the error is a backpressure response worth
// retrying after its Retry-After hint.
func (e *Error) retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// RetryPolicy bounds automatic retries of backpressure responses
// (429/503). Retry-After from the server is honored but capped at
// MaxWait so a test or an impatient caller is never parked for the
// server's full suggestion.
type RetryPolicy struct {
	// MaxAttempts counts tries including the first (default 4;
	// 1 disables retries).
	MaxAttempts int
	// MaxWait caps each inter-attempt sleep (default 2s).
	MaxWait time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.MaxWait <= 0 {
		p.MaxWait = 2 * time.Second
	}
	return p
}

// Options configures a Client.
type Options struct {
	// HTTP is the underlying client (default http.DefaultClient). For
	// streaming it must not set a global timeout.
	HTTP *http.Client
	// Retry bounds automatic backpressure retries.
	Retry RetryPolicy
}

// Client talks to one exptrain server. Safe for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// New builds a client for a base URL like "http://127.0.0.1:8080".
func New(base string, opts Options) *Client {
	hc := opts.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, hc: hc, retry: opts.Retry.withDefaults()}
}

// Info is a session's externally visible state.
type Info struct {
	ID        string `json:"id"`
	Method    string `json:"method"`
	K         int    `json:"k"`
	Rounds    int    `json:"rounds"`
	Pending   int    `json:"pending"`
	Remaining int    `json:"remaining"`
	Parked    bool   `json:"parked"`
	Degraded  bool   `json:"degraded,omitempty"`
	Rows      int    `json:"rows"`
	Space     int    `json:"space"`
}

// CreateSession is the POST /v1/sessions body.
type CreateSession struct {
	Dataset string  `json:"dataset,omitempty"`
	Rows    int     `json:"rows,omitempty"`
	CSV     string  `json:"csv,omitempty"`
	Method  string  `json:"method,omitempty"`
	Gamma   float64 `json:"gamma,omitempty"`
	K       int     `json:"k,omitempty"`
	MaxLHS  int     `json:"max_lhs,omitempty"`
	MaxFDs  int     `json:"max_fds,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
	Resume  string  `json:"resume,omitempty"`
	Eval    bool    `json:"eval,omitempty"`
	Degree  float64 `json:"degree,omitempty"`
}

// Pair is one presented pair with both rendered tuples.
type Pair struct {
	A      int      `json:"a"`
	B      int      `json:"b"`
	ATuple []string `json:"a_tuple"`
	BTuple []string `json:"b_tuple"`
}

// Labeling is one annotation: the pair's row indices, the attribute
// positions marked erroneous, or an abstention.
type Labeling struct {
	Pair      [2]int `json:"pair"`
	Marked    []int  `json:"marked,omitempty"`
	Abstained bool   `json:"abstained,omitempty"`
}

// Submission is one labelpool entry: the labels for round Round.
type Submission struct {
	Round  int        `json:"round"`
	Labels []Labeling `json:"labels,omitempty"`
}

// Ticket is the receipt for one queued submission. State is "queued",
// "applied" or "failed" (Error says why).
type Ticket struct {
	ID    string `json:"id"`
	Round int    `json:"round"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// Detection is a round's held-out error-detection score.
type Detection struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// Round is one submitted round's measurements.
type Round struct {
	Round     int        `json:"round"`
	Labeled   int        `json:"labeled"`
	Revised   int        `json:"revised"`
	MAE       float64    `json:"mae"`
	Payoff    float64    `json:"payoff"`
	Detection *Detection `json:"detection,omitempty"`
}

// Hypothesis is one FD of the learner's belief, rendered.
type Hypothesis struct {
	FD         string  `json:"fd"`
	Confidence float64 `json:"confidence"`
	CILow      float64 `json:"ci_low"`
	CIHigh     float64 `json:"ci_high"`
}

// Health is the server's health summary.
type Health struct {
	OK            bool   `json:"ok"`
	Live          int    `json:"live"`
	Parked        int    `json:"parked"`
	Degraded      int    `json:"degraded"`
	Draining      bool   `json:"draining"`
	StoreFailures uint64 `json:"store_failures"`
	StoreError    string `json:"store_error,omitempty"`
}

// do issues one JSON request with backpressure retries, decoding a
// success into out (when non-nil) and any failure into *Error.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			wait := c.retry.MaxWait
			var e *Error
			if errors.As(lastErr, &e) && e.RetryAfter > 0 {
				if ra := time.Duration(e.RetryAfter) * time.Second; ra < wait {
					wait = ra
				}
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		}
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode < 300 {
			if out == nil {
				return nil
			}
			return json.Unmarshal(raw, out)
		}
		apiErr := &Error{Status: resp.StatusCode}
		if err := json.Unmarshal(raw, apiErr); err != nil || apiErr.Kind == "" {
			apiErr.Kind = "internal"
			apiErr.Message = fmt.Sprintf("status %d: %s", resp.StatusCode, raw)
		}
		if !apiErr.retryable() {
			return apiErr
		}
		lastErr = apiErr
	}
	return lastErr
}

// Create starts a new session (or resumes one via req.Resume).
func (c *Client) Create(ctx context.Context, req CreateSession) (Info, error) {
	var info Info
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &info)
	return info, err
}

// Session fetches a session's state.
func (c *Client) Session(ctx context.Context, id string) (Info, error) {
	var info Info
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id, nil, &info)
	return info, err
}

// Sessions lists every session, live and parked.
func (c *Client) Sessions(ctx context.Context) ([]Info, error) {
	var out struct {
		Sessions []Info `json:"sessions"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out)
	return out.Sessions, err
}

// Next presents the session's next round of pairs.
func (c *Client) Next(ctx context.Context, id string) ([]Pair, error) {
	var out struct {
		Pairs []Pair `json:"pairs"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/next", nil, &out)
	return out.Pairs, err
}

// UncheckedRound submits without the idempotent round check.
const UncheckedRound = -1

// Submit sends the pending round's labels. round makes the request
// idempotent: it must be the session's current round index, and a
// retried request for an already-applied round succeeds if and only if
// its labels replay that round identically (pass UncheckedRound to
// skip the check).
func (c *Client) Submit(ctx context.Context, id string, round int, labels []Labeling) (Info, error) {
	body := struct {
		Round  *int       `json:"round,omitempty"`
		Labels []Labeling `json:"labels"`
	}{Labels: labels}
	if round != UncheckedRound {
		body.Round = &round
	}
	var info Info
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/submit", body, &info)
	return info, err
}

// Enqueue admits a batch of round submissions into the session's
// labelpool, returning one ticket per submission.
func (c *Client) Enqueue(ctx context.Context, id string, subs []Submission) ([]Ticket, error) {
	body := struct {
		Submissions []Submission `json:"submissions"`
	}{Submissions: subs}
	var out struct {
		Tickets []Ticket `json:"tickets"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/submissions", body, &out)
	return out.Tickets, err
}

// Ticket polls one queued submission's state.
func (c *Client) Ticket(ctx context.Context, id, ticket string) (Ticket, error) {
	var tk Ticket
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/submissions/"+ticket, nil, &tk)
	return tk, err
}

// Rounds fetches the per-round measurement series.
func (c *Client) Rounds(ctx context.Context, id string) ([]Round, error) {
	var out struct {
		Rounds []Round `json:"rounds"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/rounds", nil, &out)
	return out.Rounds, err
}

// Belief fetches the learner's top-k hypotheses.
func (c *Client) Belief(ctx context.Context, id string, k int) ([]Hypothesis, error) {
	var out struct {
		Hypotheses []Hypothesis `json:"hypotheses"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/belief?k="+strconv.Itoa(k), nil, &out)
	return out.Hypotheses, err
}

// Snapshot checkpoints the session and returns the snapshot id.
func (c *Client) Snapshot(ctx context.Context, id string) (string, error) {
	var out struct {
		Snapshot string `json:"snapshot"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/snapshot", nil, &out)
	return out.Snapshot, err
}

// Evict checkpoints and parks the session.
func (c *Client) Evict(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Health fetches the server's health summary. It is reported without
// error even when the server answers 503 (an unhealthy report is still
// a report).
func (c *Client) Health(ctx context.Context) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Health{}, err
	}
	return h, nil
}
