package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// StreamEvent is one event from the round stream.
type StreamEvent struct {
	// Type is "round", "pairs", "done" or "drain".
	Type string
	// Round is set for "round" events.
	Round *Round
	// PairsRound and Pairs are set for "pairs" events: the currently
	// presented round and its pairs.
	PairsRound int
	Pairs      []Pair
	// Rounds is set for "done": how many rounds the session played.
	Rounds int
}

// StreamRounds attaches to GET /v1/sessions/{id}/rounds?stream=1 and
// calls fn for every event, starting from round index `from` (0 streams
// the session from its beginning). It transparently reconnects after
// network failures, resuming via Last-Event-ID so every round is
// delivered to fn exactly once; consecutive failed reconnects are
// bounded by the client's RetryPolicy. It returns nil after a "done"
// event (the session completed), ErrShuttingDown after "drain" (the
// server is going away — fail over and call again), ctx.Err() on
// cancellation, or the decoded server error.
func (c *Client) StreamRounds(ctx context.Context, id string, from int, fn func(StreamEvent) error) error {
	cursor := from
	failures := 0
	for {
		err := c.streamOnce(ctx, id, &cursor, fn)
		switch {
		case err == nil:
			return nil // done
		case err == errStreamDrained:
			return &Error{Kind: "shutting_down", Status: http.StatusServiceUnavailable,
				Message: "the server closed the stream to drain"}
		case ctx.Err() != nil:
			return ctx.Err()
		}
		var apiErr *Error
		if errors.As(err, &apiErr) && !apiErr.retryable() {
			return err
		}
		failures++
		if failures >= c.retry.MaxAttempts {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.retry.MaxWait):
		}
	}
}

// errStreamDrained marks a server-initiated drain close.
var errStreamDrained = fmt.Errorf("stream drained")

// streamOnce runs one connection until done/drain/error. cursor is
// advanced as round events arrive, so a reconnect resumes exactly
// after the last delivered round.
func (c *Client) streamOnce(ctx context.Context, id string, cursor *int, fn func(StreamEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/sessions/"+id+"/rounds?stream=1", nil)
	if err != nil {
		return err
	}
	if *cursor > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(*cursor-1))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		apiErr := &Error{Status: resp.StatusCode}
		if err := json.NewDecoder(resp.Body).Decode(apiErr); err != nil || apiErr.Kind == "" {
			apiErr.Kind = "internal"
			apiErr.Message = fmt.Sprintf("stream status %d", resp.StatusCode)
		}
		return apiErr
	}

	rd := bufio.NewReader(resp.Body)
	var event, data string
	eventID := -1
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return fmt.Errorf("stream read: %w", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, ":"):
			// Heartbeat comment; ignore.
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			if n, err := strconv.Atoi(strings.TrimPrefix(line, "id: ")); err == nil {
				eventID = n
			}
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if event == "" && data == "" {
				continue // stray blank after a comment
			}
			done, err := c.dispatch(event, eventID, data, cursor, fn)
			event, data, eventID = "", "", -1
			if done || err != nil {
				return err
			}
		}
	}
}

// dispatch decodes one complete frame and forwards it to fn.
func (c *Client) dispatch(event string, id int, data string, cursor *int, fn func(StreamEvent) error) (done bool, err error) {
	switch event {
	case "round":
		var rv Round
		if err := json.Unmarshal([]byte(data), &rv); err != nil {
			return false, fmt.Errorf("round frame %q: %w", data, err)
		}
		if id >= 0 && id < *cursor {
			return false, nil // replay below the cursor: already delivered
		}
		if err := fn(StreamEvent{Type: "round", Round: &rv}); err != nil {
			return true, err
		}
		*cursor = rv.Round + 1
		return false, nil
	case "pairs":
		var pe struct {
			Round int    `json:"round"`
			Pairs []Pair `json:"pairs"`
		}
		if err := json.Unmarshal([]byte(data), &pe); err != nil {
			return false, fmt.Errorf("pairs frame %q: %w", data, err)
		}
		return false, fn(StreamEvent{Type: "pairs", PairsRound: pe.Round, Pairs: pe.Pairs})
	case "done":
		var de struct {
			Rounds int `json:"rounds"`
		}
		_ = json.Unmarshal([]byte(data), &de)
		if err := fn(StreamEvent{Type: "done", Rounds: de.Rounds}); err != nil {
			return true, err
		}
		return true, nil
	case "drain":
		_ = fn(StreamEvent{Type: "drain"})
		return true, errStreamDrained
	case "error":
		apiErr := &Error{Status: http.StatusInternalServerError}
		if err := json.Unmarshal([]byte(data), apiErr); err != nil || apiErr.Kind == "" {
			apiErr.Kind = "internal"
			apiErr.Message = data
		}
		return true, apiErr
	default:
		return false, nil // unknown event: forward-compatible skip
	}
}
