GO ?= go
# Extra flags for `make bench`, e.g. BENCHFLAGS='-benchtime 3s -count 5'
BENCHFLAGS ?=
# Hot-path benchmarks that get a machine-readable BENCH_<name>.json each.
BENCHES := FullGame G1 Discovery GameScaling SessionRound
# How long `make fuzz` runs each native fuzz target (corpus smoke).
FUZZTIME ?= 5s
# Package:Target pairs for `make fuzz` (go test -fuzz takes one target
# per invocation).
FUZZERS := ./internal/sampling:FuzzParseMethod \
           ./internal/persist:FuzzSnapshotDecode \
           ./internal/persist:FuzzSnapshotChecksum \
           ./internal/persist/wal:FuzzWalDecode \
           ./internal/service:FuzzServerJSON \
           ./internal/fd:FuzzPLIDelta

.PHONY: all build vet lint lintbench test race check verify bench benchbaseline benchcheck fuzz chaos loadsmoke walbench clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific determinism & concurrency rules (internal/lint):
# per-function — detrand, detclock, maporder, lockedfield, printclean,
# floatcmp, scratchalias — plus the interprocedural, call-graph-driven
# set: lockorder (DESIGN §12 lock order), goroleak (unjoined
# goroutines), chanlock (blocking channel ops under a mutex), ctxflow
# (manufactured contexts outside cmd/) and errkind (error-envelope
# registry coverage).
# Exits non-zero on any finding, unjustified suppression, or stale
# suppression; `go run ./cmd/etlint -audit` lists every suppression
# with its reason.
lint:
	$(GO) run ./cmd/etlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static analysis beyond vet: govulncheck when installed, else
# staticcheck, else skip — the tools aren't vendored, so their absence
# must not fail the tier-1 bar.
check:
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "== govulncheck"; govulncheck ./...; \
	elif command -v staticcheck >/dev/null 2>&1; then \
		echo "== staticcheck"; staticcheck ./...; \
	else \
		echo "== check skipped (neither govulncheck nor staticcheck installed)"; \
	fi

# Tier-1 verification: build, vet, the project lint rules, the full
# test suite, then the suite again under the race detector (the
# experiment harness, game evaluator and session service all run
# goroutines, so -race is part of the bar), the fault-injection chaos
# suite, whatever static analyzer the machine has, and the ~5s
# labelpool load smoke.
verify: build vet lint test race chaos check loadsmoke

# Labelpool + shard load smokes (~30s): etload plays the
# request-per-round baseline and the batched labelpool pipeline against
# an in-process server with a simulated 20ms client RTT, and benchjson
# records the result as BENCH_Labelpool.json (throughput, per-request
# p50/p99, and the pool-vs-baseline speedup). A second run drives the
# same submission workload through 1-, 4- and 16-shard managers over a
# 10ms-latency store and records BENCH_Shard.json, including the
# 16-vs-1-shard throughput ratio. These are smokes, not perf gates:
# they fail only when the workload itself errors — numbers are
# recorded, never asserted, so a loaded CI machine cannot flake them
# (the shard ratio is gated separately by `make benchcheck`).
loadsmoke:
	@echo "== etload labelpool smoke"
	@$(GO) run ./cmd/etload -inproc -sessions 16 -rounds 8 -window 8 \
		-rows 24 -k 2 -net-delay 20ms \
		| $(GO) run ./cmd/benchjson > BENCH_Labelpool.json
	@echo "   wrote BENCH_Labelpool.json"
	@echo "== etload shard-scaling smoke"
	@$(GO) run ./cmd/etload -shards 1,4,16 -sessions 96 -rounds 3 \
		-rows 24 -k 3 -store-delay 10ms \
		| $(GO) run ./cmd/benchjson > BENCH_Shard.json
	@echo "   wrote BENCH_Shard.json"

# WAL durability bench (~10s): etload plays the same 64-session submit
# workload against a simulated 20ms-fsync disk twice — making every
# submit durable with a full snapshot Put (serialized: one disk, one
# fsync queue) versus riding the write-ahead log's group commit — and
# benchjson records BENCH_WalCommit.json, including the
# BenchmarkWalSpeedup x-vs-snapshot ratio that `make benchcheck`
# gates: group commit must keep sustaining roughly an order of
# magnitude more durable submits per second per disk.
walbench:
	@echo "== etload WAL group-commit bench"
	@$(GO) run ./cmd/etload -wal -sessions 64 -rounds 4 -store-delay 20ms \
		| $(GO) run ./cmd/benchjson > BENCH_WalCommit.json
	@echo "   wrote BENCH_WalCommit.json"

# Fault-injection suite under the race detector: crash-point property
# tests for the snapshot commit protocol, torn-write invariants (both
# single-store and quorum MultiStore), the degraded-mode manager tests,
# the 64-session flaky-store workload, and the sharded replica-loss
# workload that kills a full replica mid-run and checks golden parity
# against an unsharded reference (ET_CHAOS=1 scales the workloads up —
# the sharded one to 1024 sessions across 16 shards).
chaos:
	ET_CHAOS=1 $(GO) test -race -count=1 \
		-run 'TestCrashPointProperty|TestTornWritesNeverCorrupt|TestFault|TestManagerEvictFailure|TestManagerUnparkFailed|TestManagerSweepContinues|TestManagerShutdownKeeps|TestServerFaultSurface|TestChaos' \
		./internal/persist/... ./internal/service/...

# Corpus-smoke each native fuzz target for FUZZTIME. Failing inputs
# land in the package's testdata/fuzz and then fail `go test` forever —
# exactly the regression-pinning behavior we want.
fuzz:
	@for ft in $(FUZZERS); do \
		pkg=$${ft%:*}; target=$${ft#*:}; \
		echo "== fuzz $$target ($$pkg, $(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME) $$pkg || exit 1; \
	done

# The GameScaling sweeps below exclude its rows=100000 case — it exists
# to prove the incremental PLI path scales and is pinned at one
# iteration in `make benchbaseline` instead of being re-timed on every
# sweep.

# Run each hot-path benchmark and convert its output into a
# machine-readable baseline (BENCH_FullGame.json, BENCH_G1.json, ...)
# via cmd/benchjson, for diffing across commits.
bench:
	@for b in $(BENCHES); do \
		re="^Benchmark$$b\$$"; \
		case $$b in GameScaling) re='^BenchmarkGameScaling$$/^rows=(120|240|480|960)$$';; esac; \
		echo "== Benchmark$$b"; \
		$(GO) test -run '^$$' -bench "$$re" -benchmem $(BENCHFLAGS) . \
			| $(GO) run ./cmd/benchjson > BENCH_$$b.json || exit 1; \
		echo "   wrote BENCH_$$b.json"; \
	done

# Record the incremental-PLI baseline (BENCH_PLIIncremental.json): the
# warm-cache revision benchmark plus the one-iteration rows=100000
# scaling case that the delta protocol makes feasible at all. Revision
# runs 100 iterations so the recorded numbers are the steady state, not
# the first call's one-time memo warm-up.
# Record the lint-loader baseline (BENCH_Lint.json): the sequential
# full-module analysis versus the parallel loader on a cold cache and
# versus a warm cache hit. One iteration is enough — each sample is a
# whole-module type-check, and the gated metrics are ratios of runs on
# the same machine, so load noise mostly cancels.
lintbench:
	@echo "== BenchmarkLintLoader"
	@$(GO) test -run '^$$' -bench '^BenchmarkLintLoader$$' -benchtime 1x ./internal/lint \
		| $(GO) run ./cmd/benchjson > BENCH_Lint.json
	@echo "   wrote BENCH_Lint.json"

benchbaseline:
	@echo "== BenchmarkRevision + BenchmarkGameScaling/rows=100000"
	@( $(GO) test -run '^$$' -bench '^BenchmarkRevision$$' -benchtime 100x -benchmem . && \
	   $(GO) test -run '^$$' -bench '^BenchmarkGameScaling$$/^rows=100000$$' -benchtime 1x -benchmem . ) \
		| $(GO) run ./cmd/benchjson > BENCH_PLIIncremental.json
	@echo "   wrote BENCH_PLIIncremental.json"

# Allocation regression gate: run each hot-path benchmark briefly and
# fail when its allocs/op exceeds the checked-in baseline's ceiling
# (see cmd/benchjson -check for the slack rule). One iteration is
# enough for benchmarks that set up per iteration; SessionRound reuses
# one session across iterations, so it gets a fixed 100x to amortize
# cold-start scratch growth the baselines never see.
benchcheck:
	@for b in $(BENCHES); do \
		re="^Benchmark$$b\$$"; \
		case $$b in GameScaling) re='^BenchmarkGameScaling$$/^rows=(120|240|480|960)$$';; esac; \
		bt=1x; case $$b in SessionRound) bt=100x;; esac; \
		echo "== benchcheck Benchmark$$b (-benchtime $$bt)"; \
		$(GO) test -run '^$$' -bench "$$re" -benchtime $$bt -benchmem . \
			| $(GO) run ./cmd/benchjson -check BENCH_$$b.json || exit 1; \
	done
	@echo "== benchcheck BenchmarkRevision (-benchtime 100x)"
	@$(GO) test -run '^$$' -bench '^BenchmarkRevision$$' -benchtime 100x -benchmem . \
		| $(GO) run ./cmd/benchjson -check BENCH_PLIIncremental.json
	@echo "== benchcheck shard scaling (etload -shards)"
	@$(GO) run ./cmd/etload -shards 1,4,16 -sessions 96 -rounds 3 \
		-rows 24 -k 3 -store-delay 10ms \
		| $(GO) run ./cmd/benchjson -check BENCH_Shard.json
	@echo "== benchcheck WAL group commit (etload -wal)"
	@$(GO) run ./cmd/etload -wal -sessions 64 -rounds 4 -store-delay 20ms \
		| $(GO) run ./cmd/benchjson -check BENCH_WalCommit.json
	@echo "== benchcheck lint loader (parallel + cache speedups)"
	@$(GO) test -run '^$$' -bench '^BenchmarkLintLoader$$' -benchtime 1x ./internal/lint \
		| $(GO) run ./cmd/benchjson -check BENCH_Lint.json

clean:
	rm -f BENCH_*.json
