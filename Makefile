GO ?= go
# Extra flags for `make bench`, e.g. BENCHFLAGS='-benchtime 3s -count 5'
BENCHFLAGS ?=
# Hot-path benchmarks that get a machine-readable BENCH_<name>.json each.
BENCHES := FullGame G1 Discovery GameScaling

.PHONY: all build vet test race verify bench clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 verification: build, vet, the full test suite, then the suite
# again under the race detector (the experiment harness, game evaluator
# and session service all run goroutines, so -race is part of the bar).
verify: build vet test race

# Run each hot-path benchmark and convert its output into a
# machine-readable baseline (BENCH_FullGame.json, BENCH_G1.json, ...)
# via cmd/benchjson, for diffing across commits.
bench:
	@for b in $(BENCHES); do \
		echo "== Benchmark$$b"; \
		$(GO) test -run '^$$' -bench "^Benchmark$$b$$" -benchmem $(BENCHFLAGS) . \
			| $(GO) run ./cmd/benchjson > BENCH_$$b.json || exit 1; \
		echo "   wrote BENCH_$$b.json"; \
	done

clean:
	rm -f BENCH_*.json
