package exptrain

import (
	"testing"
)

func TestFacadeMinimalCover(t *testing.T) {
	rel := table1(t)
	a, _ := ParseFD("Team->City", rel.Schema())
	b, _ := ParseFD("City->Role", rel.Schema())
	c, _ := ParseFD("Team->Role", rel.Schema()) // implied by a, b
	cover := MinimalCover([]FD{a, b, c})
	if len(cover) != 2 {
		t.Fatalf("cover = %v, want 2 FDs", cover)
	}
}

func TestFacadeRepairPipeline(t *testing.T) {
	ds, err := GenerateDataset("Tax", 200, 6)
	if err != nil {
		t.Fatal(err)
	}
	injected, err := InjectErrors(ds.Rel, ds.ExactFDs, 0.08, 6)
	if err != nil {
		t.Fatal(err)
	}
	believed := make([]BelievedFD, 0, len(ds.ExactFDs))
	for _, f := range ds.ExactFDs {
		believed = append(believed, BelievedFD{FD: f, Confidence: 0.95})
	}
	sugg, err := SuggestRepairs(injected.Rel, believed, RepairConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) == 0 {
		t.Fatal("no repairs suggested")
	}
	repaired, err := ApplyRepairs(injected.Rel, sugg)
	if err != nil {
		t.Fatal(err)
	}
	// Repairs strictly reduce total violations of the ground-truth FDs.
	var before, after float64
	for _, f := range ds.ExactFDs {
		before += G1(f, injected.Rel)
		after += G1(f, repaired)
	}
	if after >= before {
		t.Fatalf("repairs did not reduce violations: %v → %v", before, after)
	}
}

func TestFacadeTrackers(t *testing.T) {
	ds, err := GenerateDataset("OMDB", 120, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := ds.ExactFDs[0]
	tr := NewFDTracker(f, ds.Rel)
	if tr.Stats().Violating != 0 {
		t.Fatal("clean data should have no violations")
	}
	tr.Set(0, f.RHS, "corrupted")
	if tr.Stats().Violating == 0 {
		t.Fatal("tracker missed the corruption")
	}

	mt := NewFDMultiTracker(ds.ExactFDs, ds.Rel)
	if mt.Len() != len(ds.ExactFDs) {
		t.Fatalf("Len = %d", mt.Len())
	}
}

func TestFacadeTrainingSession(t *testing.T) {
	ds, err := GenerateDataset("OMDB", 150, 4)
	if err != nil {
		t.Fatal(err)
	}
	injected, err := InjectErrors(ds.Rel, ds.ExactFDs, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	session, err := NewTrainingSession(TrainingSessionConfig{
		Relation: injected.Rel,
		Space:    ds.Space(3, 38),
		K:        6,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := session.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 6 {
		t.Fatalf("presented %d pairs", len(pairs))
	}
	// Label everything clean and checkpoint.
	labels := make([]Labeling, len(pairs))
	for i, p := range pairs {
		labels[i] = Labeling{Pair: p}
	}
	if err := session.Submit(labels); err != nil {
		t.Fatal(err)
	}
	snap, err := session.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/snap.json"
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeTrainingSession(back, TrainingSessionConfig{
		Relation: injected.Rel, K: 6, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Rounds() != 1 {
		t.Fatalf("resumed rounds = %d", resumed.Rounds())
	}
}

func TestFacadeDetectErrorsAndSessionForgetting(t *testing.T) {
	ds, err := GenerateDataset("Hospital", 150, 8)
	if err != nil {
		t.Fatal(err)
	}
	injected, err := InjectErrors(ds.Rel, ds.ExactFDs, 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	flagged := DetectErrors(ds.ExactFDs, injected.Rel)
	if len(flagged) == 0 {
		t.Fatal("oracle FDs flagged nothing")
	}
	res, err := RunSession(SessionConfig{
		Relation:          injected.Rel,
		Space:             ds.Space(3, 38),
		Method:            MethodUS,
		Iterations:        5,
		LearnerForgetRate: 0.05,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 5 {
		t.Fatalf("iterations = %d", len(res.Iterations))
	}
}

func TestFacadeNewSnapshotValidation(t *testing.T) {
	rel := table1(t)
	if _, err := NewSnapshot(rel.Schema(), nil, nil, nil, nil); err == nil {
		t.Fatal("nil space should error")
	}
}
