// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md and
// micro-benchmarks for the hot substrate operations.
//
// The figure benchmarks replay the §C.1 conditions at a reduced scale
// (fewer averaging runs than cmd/etbench) and report the reproduced
// summary numbers as custom metrics: MAE-final and MAE-mean per
// sampling method for the convergence figures, F1-final for Figure 7,
// MRR for Figure 2, and f1-drift for Table 3. Run:
//
//	go test -bench=. -benchmem
package exptrain

import (
	"errors"
	"fmt"
	"testing"

	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/datagen"
	"exptrain/internal/dataset"
	"exptrain/internal/errgen"
	"exptrain/internal/experiments"
	"exptrain/internal/fd"
	"exptrain/internal/game"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
	"exptrain/internal/userstudy"
)

// benchRuns is the averaging factor for figure benchmarks — smaller
// than the CLI default so the full bench suite stays fast.
const benchRuns = 2

// reportCondition runs one experimental condition per b.N and reports
// each method's summary metrics.
func reportCondition(b *testing.B, cfg experiments.Config) {
	b.Helper()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range res.Methods {
		b.ReportMetric(m.FinalMAE(), "MAEfinal-"+m.Method)
		b.ReportMetric(m.FinalF1(), "F1final-"+m.Method)
	}
}

func condition(dataset string, degree float64, learner belief.PriorSpec) experiments.Config {
	return experiments.Config{
		Dataset:      dataset,
		Degree:       degree,
		TrainerPrior: belief.PriorSpec{Kind: belief.PriorRandom},
		LearnerPrior: learner,
		Runs:         benchRuns,
		BaseSeed:     1,
	}
}

var (
	benchDataEstimate = belief.PriorSpec{Kind: belief.PriorDataEstimate}
	benchUniform09    = belief.PriorSpec{Kind: belief.PriorUniform, D: 0.9}
	benchRandom       = belief.PriorSpec{Kind: belief.PriorRandom}
)

// BenchmarkFigure1MAEOMDBDataEstimate regenerates Figure 1: MAE on OMDB
// at ≈10% violations, trainer prior Random, learner prior Data-estimate.
func BenchmarkFigure1MAEOMDBDataEstimate(b *testing.B) {
	reportCondition(b, condition("OMDB", 0.10, benchDataEstimate))
}

// BenchmarkFigure3MAEOMDBUniform regenerates Figure 3: the same
// condition with an uninformed Uniform-0.9 learner prior.
func BenchmarkFigure3MAEOMDBUniform(b *testing.B) {
	reportCondition(b, condition("OMDB", 0.10, benchUniform09))
}

// BenchmarkFigure4MAEAllDatasetsDataEstimate regenerates Figure 4: MAE
// at ≈20% violations with a Data-estimate learner prior, one
// sub-benchmark per dataset.
func BenchmarkFigure4MAEAllDatasetsDataEstimate(b *testing.B) {
	for _, name := range datagen.AllNames() {
		b.Run(name, func(b *testing.B) {
			reportCondition(b, condition(name, 0.20, benchDataEstimate))
		})
	}
}

// BenchmarkFigure5MAEAllDatasetsUniform regenerates Figure 5: MAE at
// ≈20% violations with the Uniform-0.9 learner prior.
func BenchmarkFigure5MAEAllDatasetsUniform(b *testing.B) {
	for _, name := range datagen.AllNames() {
		b.Run(name, func(b *testing.B) {
			reportCondition(b, condition(name, 0.20, benchUniform09))
		})
	}
}

// BenchmarkFigure6ViolationDegreeSweep regenerates Figure 6: MAE on
// OMDB with Uniform-0.9 learner prior at violation degrees ≈5/15/25%.
func BenchmarkFigure6ViolationDegreeSweep(b *testing.B) {
	for _, degree := range []float64{0.05, 0.15, 0.25} {
		b.Run(fmt.Sprintf("degree=%.0f%%", degree*100), func(b *testing.B) {
			reportCondition(b, condition("OMDB", degree, benchUniform09))
		})
	}
}

// BenchmarkFigure7F1ErrorDetection regenerates Figure 7: error-
// detection F1 on OMDB, Hospital and Tax at ≈20% violations with both
// priors Random.
func BenchmarkFigure7F1ErrorDetection(b *testing.B) {
	for _, name := range []string{"OMDB", "Hospital", "Tax"} {
		b.Run(name, func(b *testing.B) {
			reportCondition(b, condition(name, 0.20, benchRandom))
		})
	}
}

// studyForBench simulates the user study once per b.N.
func studyForBench(b *testing.B, participants int) *userstudy.Study {
	b.Helper()
	var study *userstudy.Study
	for i := 0; i < b.N; i++ {
		var err error
		study, err = userstudy.Simulate(userstudy.StudyConfig{
			Participants: participants,
			Rows:         160,
			Seed:         1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return study
}

// BenchmarkTable3UserHypothesisDrift regenerates Table 3: the average
// f1-score change of declared hypotheses between labeling rounds, per
// scenario.
func BenchmarkTable3UserHypothesisDrift(b *testing.B) {
	study := studyForBench(b, 12)
	drift := userstudy.HypothesisDrift(study)
	for id := 1; id <= 5; id++ {
		b.ReportMetric(drift[id], fmt.Sprintf("f1drift-s%d", id))
	}
}

// BenchmarkFigure2LearningModelMRR regenerates Figure 2: MRR@5 of the
// FP/Bayesian and hypothesis-testing models per scenario.
func BenchmarkFigure2LearningModelMRR(b *testing.B) {
	study := studyForBench(b, 12)
	fits, err := userstudy.FitModels(study)
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range fits {
		for id := 1; id <= 5; id++ {
			b.ReportMetric(f.MRR[id], fmt.Sprintf("MRR-%s-s%d", f.Model, id))
		}
	}
}

// BenchmarkAblationGamma sweeps the exploration temperature γ of
// stochastic uncertainty sampling (DESIGN.md ablation): γ→0
// approximates greedy US, large γ approximates random sampling.
func BenchmarkAblationGamma(b *testing.B) {
	for _, gamma := range []float64{0.05, 0.25, 0.5, 1, 2} {
		b.Run(fmt.Sprintf("gamma=%v", gamma), func(b *testing.B) {
			cfg := condition("OMDB", 0.10, benchDataEstimate)
			cfg.Gamma = gamma
			reportCondition(b, cfg)
		})
	}
}

// BenchmarkAblationPriors crosses trainer × learner prior families at
// ≈10% violations on OMDB.
func BenchmarkAblationPriors(b *testing.B) {
	priors := map[string]belief.PriorSpec{
		"Random":        benchRandom,
		"Data-estimate": benchDataEstimate,
		"Uniform-0.9":   benchUniform09,
	}
	for tn, tp := range priors {
		for ln, lp := range priors {
			b.Run(fmt.Sprintf("trainer=%s/learner=%s", tn, ln), func(b *testing.B) {
				cfg := condition("OMDB", 0.10, lp)
				cfg.TrainerPrior = tp
				reportCondition(b, cfg)
			})
		}
	}
}

// BenchmarkAblationStationaryTrainer replays the Figure 1 condition
// against a *stationary* trainer — the annotator classic active
// learning assumes. It isolates the paper's core claim: US's weakness
// comes from the trainer's learning, not from uncertainty sampling
// itself.
func BenchmarkAblationStationaryTrainer(b *testing.B) {
	for _, method := range []string{"Random", "US", "StochasticBR", "StochasticUS"} {
		b.Run(method, func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				final = runStationaryGame(b, method)
			}
			b.ReportMetric(final, "MAEfinal")
		})
	}
}

// runStationaryGame plays one game against a trainer whose belief is
// fixed at the data estimate and returns the final MAE.
func runStationaryGame(b *testing.B, method string) float64 {
	b.Helper()
	ds := datagen.OMDB(240, 1)
	injected, err := errgen.InjectDegree(ds.Rel, errgen.DegreeConfig{
		FDs: ds.ExactFDs, Degree: 0.10, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	rel := injected.Rel
	space := ds.Space(3, 38)
	rng := stats.NewRNG(3)
	trainer := agents.NewStationaryTrainer(belief.DataEstimatePrior(space, rel, 0.12))
	sampler, err := sampling.ByName(method, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	learner := agents.NewLearner(belief.UniformPrior(space, 0.5, 0.12), sampler, rng.Split())
	pool := sampling.NewPool(rel, space, sampling.PoolConfig{Seed: 4})
	res, err := game.Run(rel, trainer, learner, pool, game.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return res.FinalMAE()
}

// BenchmarkSessionRound measures one step-wise session round — present,
// label, incorporate, measure — through the same round engine game.Run
// uses, at the service's default shape (OMDB, StochasticUS).
func BenchmarkSessionRound(b *testing.B) {
	ds := datagen.OMDB(240, 1)
	space := ds.Space(3, 38)
	newSession := func(seed uint64) *game.Session {
		sess, err := game.NewSession(game.SessionConfig{
			Relation: ds.Rel,
			Space:    space,
			Sampler:  sampling.StochasticUS{},
			K:        10,
			Seed:     seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		return sess
	}
	sess := newSession(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs, err := sess.Next()
		if errors.Is(err, game.ErrPoolExhausted) {
			b.StopTimer()
			sess = newSession(uint64(i) + 2)
			b.StartTimer()
			pairs, err = sess.Next()
		}
		if err != nil {
			b.Fatal(err)
		}
		labeled := make([]belief.Labeling, len(pairs))
		for j, p := range pairs {
			labeled[j] = belief.Labeling{Pair: p}
		}
		if err := sess.Submit(labeled); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks for the substrate hot paths ---

func benchRelation(n int) (*dataset.Relation, fd.FD) {
	rel := dataset.New(dataset.MustSchema("a", "b", "c", "d"))
	rng := stats.NewRNG(9)
	for i := 0; i < n; i++ {
		a := fmt.Sprint(rng.Intn(n / 10))
		rel.MustAppend(dataset.Tuple{a, "f" + a, fmt.Sprint(rng.Intn(7)), fmt.Sprint(rng.Intn(3))})
	}
	return rel, fd.MustNew(fd.NewAttrSet(0), 1)
}

// BenchmarkG1 measures the grouped g₁ computation on a 10k-row
// relation.
func BenchmarkG1(b *testing.B) {
	rel, f := benchRelation(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd.ComputeStats(f, rel)
	}
}

// BenchmarkDiscovery measures lattice discovery with partition
// refinement on a 2k-row, 4-attribute relation.
func BenchmarkDiscovery(b *testing.B) {
	rel, _ := benchRelation(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fd.Discover(rel, fd.DiscoveryConfig{MaxG1: 0.01, MaxLHS: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBeliefUpdate measures the learner's labeling update over a
// 38-FD space and 10 labelings.
func BenchmarkBeliefUpdate(b *testing.B) {
	ds := datagen.OMDB(240, 1)
	space := ds.Space(3, 38)
	bel := belief.UniformPrior(space, 0.5, 0.12)
	labelings := make([]belief.Labeling, 10)
	for i := range labelings {
		labelings[i] = belief.Labeling{Pair: dataset.NewPair(i, i+20)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bel.UpdateFromLabelings(ds.Rel, labelings, 1)
	}
}

// BenchmarkSamplerSelect measures one StochasticUS selection from a
// realistic pool.
func BenchmarkSamplerSelect(b *testing.B) {
	ds := datagen.OMDB(240, 1)
	space := ds.Space(3, 38)
	bel := belief.DataEstimatePrior(space, ds.Rel, 0.12)
	pool := sampling.NewPool(ds.Rel, space, sampling.PoolConfig{Seed: 1})
	remaining := pool.Remaining()
	rng := stats.NewRNG(2)
	s := sampling.StochasticUS{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Select(ds.Rel, remaining, bel, 10, rng)
	}
}

// BenchmarkErrorInjection measures degree-targeted injection on a
// 1k-row relation.
func BenchmarkErrorInjection(b *testing.B) {
	rel, f := benchRelation(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := errgen.InjectDegree(rel, errgen.DegreeConfig{
			FDs: []fd.FD{f}, Degree: 0.1, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullGame measures one complete 30-iteration game.
func BenchmarkFullGame(b *testing.B) {
	ds := datagen.OMDB(240, 1)
	injected, err := errgen.InjectDegree(ds.Rel, errgen.DegreeConfig{
		FDs: ds.ExactFDs, Degree: 0.10, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	space := ds.Space(3, 38)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := stats.NewRNG(uint64(i))
		trainer := agents.NewFPTrainer(belief.RandomPrior(space, rng.Split(), 0.12), nil)
		learner := agents.NewLearner(
			belief.DataEstimatePrior(space, injected.Rel, 0.12),
			sampling.StochasticUS{}, rng.Split())
		pool := sampling.NewPool(injected.Rel, space, sampling.PoolConfig{Seed: uint64(i)})
		if _, err := game.Run(injected.Rel, trainer, learner, pool, game.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6AgreementCompanion regenerates the paper's prose
// companion to Figure 6: with trainer and learner priors in agreement,
// the violation degree stops mattering — MAE stays flat across degrees.
func BenchmarkFigure6AgreementCompanion(b *testing.B) {
	for _, degree := range []float64{0.05, 0.15, 0.25} {
		b.Run(fmt.Sprintf("degree=%.0f%%", degree*100), func(b *testing.B) {
			cfg := condition("OMDB", degree, benchRandom)
			cfg.SharedPrior = true
			reportCondition(b, cfg)
		})
	}
}

// BenchmarkAblationForgetting compares the plain learner against
// discounted fictitious play (geometric evidence forgetting) under the
// Figure 3 condition, where the learner must escape a wrong prior —
// forgetting is the classic remedy for non-stationarity (Young 2004).
func BenchmarkAblationForgetting(b *testing.B) {
	for _, rate := range []float64{0, 0.02, 0.05, 0.1} {
		b.Run(fmt.Sprintf("forget=%v", rate), func(b *testing.B) {
			cfg := condition("OMDB", 0.10, benchUniform09)
			cfg.LearnerForgetRate = rate
			cfg.Methods = []sampling.Method{sampling.MethodStochasticUS}
			reportCondition(b, cfg)
		})
	}
}

// BenchmarkAblationExtendedSamplers positions the paper's strategies
// against query-by-committee and ε-greedy exploration under both prior
// regimes.
func BenchmarkAblationExtendedSamplers(b *testing.B) {
	conditions := map[string]belief.PriorSpec{
		"informed":   benchDataEstimate,
		"uninformed": benchUniform09,
	}
	for name, prior := range conditions {
		b.Run(name, func(b *testing.B) {
			cfg := condition("OMDB", 0.10, prior)
			cfg.Methods = []sampling.Method{sampling.MethodRandom, sampling.MethodUS, sampling.MethodStochasticUS, sampling.MethodQBC, sampling.MethodEpsilonGreedy}
			reportCondition(b, cfg)
		})
	}
}

// BenchmarkGameScaling measures full-game cost as the relation grows.
// The rows=100000 case exists because the pool builder no longer
// materializes agreeing-pair lists and the round path no longer
// rebuilds partitions per edit; before those changes it did not finish.
// It is excluded from `make bench` timing sweeps and pinned at one
// iteration in `make benchbaseline` (see BENCH_PLIIncremental.json).
func BenchmarkGameScaling(b *testing.B) {
	for _, rows := range []int{120, 240, 480, 960, 100000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			ds := datagen.OMDB(rows, 1)
			injected, err := errgen.InjectDegree(ds.Rel, errgen.DegreeConfig{
				FDs: ds.ExactFDs, Degree: 0.10, Seed: 2, MaxChanges: rows / 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			space := ds.Space(3, 38)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rng := stats.NewRNG(uint64(i))
				trainer := agents.NewFPTrainer(belief.RandomPrior(space, rng.Split(), 0.12), nil)
				learner := agents.NewLearner(
					belief.DataEstimatePrior(space, injected.Rel, 0.12),
					sampling.StochasticUS{}, rng.Split())
				pool := sampling.NewPool(injected.Rel, space, sampling.PoolConfig{Seed: uint64(i)})
				if _, err := game.Run(injected.Rel, trainer, learner, pool, game.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRevision measures the cost of revising one cell and then
// re-evaluating every hypothesis of a 38-FD space — the steady-state
// shape of a game round after the trainer corrects the data. The
// incremental case keeps one warm PLI cache across edits (single-tuple
// delta replay plus selective stats eviction); the rebuild case pays
// the pre-delta-protocol price of a wholesale invalidation: every LHS
// partition and every stat recomputed from scratch.
func BenchmarkRevision(b *testing.B) {
	const rows = 960
	ds := datagen.OMDB(rows, 1)
	space := ds.Space(3, 38)
	fds := space.FDs()
	sweep := func(cache *fd.PLICache) {
		for _, f := range fds {
			cache.Stats(f)
		}
	}
	b.Run("incremental", func(b *testing.B) {
		rel := ds.Rel.Clone()
		cache := fd.NewPLICache(rel)
		sweep(cache)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rel.SetValue(i%rows, 2, fmt.Sprintf("Genre-%d", i%6))
			sweep(cache)
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		rel := ds.Rel.Clone()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rel.SetValue(i%rows, 2, fmt.Sprintf("Genre-%d", i%6))
			sweep(fd.NewPLICache(rel))
		}
	})
}

// BenchmarkIncrementalTracking compares incremental FD-statistics
// maintenance against full recomputation on a 38-FD space.
func BenchmarkIncrementalTracking(b *testing.B) {
	ds := datagen.OMDB(2000, 1)
	space := ds.Space(3, 38)
	b.Run("incremental", func(b *testing.B) {
		rel := ds.Rel.Clone()
		mt := fd.NewMultiTracker(space.FDs(), rel)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mt.Set(i%rel.NumRows(), 2, fmt.Sprintf("Genre-%d", i%6))
		}
	})
	b.Run("recompute", func(b *testing.B) {
		rel := ds.Rel.Clone()
		fds := space.FDs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rel.SetValue(i%rel.NumRows(), 2, fmt.Sprintf("Genre-%d", i%6))
			for _, f := range fds {
				fd.ComputeStats(f, rel)
			}
		}
	})
}
