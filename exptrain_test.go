package exptrain

import (
	"errors"
	"math"
	"os"
	"strings"
	"testing"
)

// table1CSV is the paper's Table 1 instance in CSV form.
const table1CSV = `Player,Team,City,Role,Apps
Carter,Lakers,L.A.,C,4
Jordan,Lakers,Chicago,PF,4
Smith,Bulls,Chicago,PF,4
Black,Bulls,Chicago,C,3
Miller,Clippers,L.A.,PG,3
`

func table1(t *testing.T) *Relation {
	t.Helper()
	path := t.TempDir() + "/table1.csv"
	if err := os.WriteFile(path, []byte(table1CSV), 0o644); err != nil {
		t.Fatal(err)
	}
	rel, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestFacadePaperExample(t *testing.T) {
	rel := table1(t)
	f, err := ParseFD("Team->City", rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if got := G1(f, rel); math.Abs(got-0.04) > 1e-12 {
		t.Fatalf("g1 = %v, want 0.04 (Example 1)", got)
	}
}

func TestFacadeGenerateAndInject(t *testing.T) {
	ds, err := GenerateDataset("Tax", 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rel.NumRows() != 150 {
		t.Fatalf("rows = %d", ds.Rel.NumRows())
	}
	injected, err := InjectErrors(ds.Rel, ds.ExactFDs, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(injected.DirtyRows) == 0 {
		t.Fatal("no errors injected")
	}
	if _, err := GenerateDataset("nope", 10, 1); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestFacadeDiscoverAndDetect(t *testing.T) {
	ds, err := GenerateDataset("Hospital", 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	injected, err := InjectErrors(ds.Rel, ds.ExactFDs, 0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	found, err := Discover(injected.Rel, DiscoveryConfig{
		MaxG1: 0.02, MaxLHS: 1, MinConfidence: 0.85, MinSupport: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) == 0 {
		t.Fatal("discovery found nothing")
	}
	flagged := DetectErrors(found, injected.Rel)
	tp := 0
	for r := range flagged {
		if _, bad := injected.DirtyRows[r]; bad {
			tp++
		}
	}
	if len(flagged) == 0 || tp == 0 {
		t.Fatalf("detection useless: flagged=%d tp=%d", len(flagged), tp)
	}
}

func TestRunSessionDefaults(t *testing.T) {
	ds, err := GenerateDataset("OMDB", 180, 5)
	if err != nil {
		t.Fatal(err)
	}
	injected, err := InjectErrors(ds.Rel, ds.ExactFDs, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSession(SessionConfig{
		Relation:   injected.Rel,
		Space:      ds.Space(3, 38),
		Iterations: 15,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 15 {
		t.Fatalf("iterations = %d", len(res.Iterations))
	}
	if res.FinalMAE() >= res.Iterations[0].MAE {
		t.Fatalf("session did not converge: %v → %v", res.Iterations[0].MAE, res.FinalMAE())
	}
}

func TestRunSessionValidation(t *testing.T) {
	if _, err := RunSession(SessionConfig{}); err == nil {
		t.Fatal("nil relation should error")
	}
	rel := table1(t)
	if _, err := RunSession(SessionConfig{Relation: rel, Method: Method(99)}); !errors.Is(err, ErrUnknownMethod) {
		t.Fatal("unknown method should error with ErrUnknownMethod")
	}
	// Nil space enumerates a default one.
	res, err := RunSession(SessionConfig{Relation: rel, Iterations: 2, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations ran")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Dataset:      "OMDB",
		Rows:         120,
		Degree:       0.1,
		TrainerPrior: PriorSpec{Kind: PriorRandom},
		LearnerPrior: PriorSpec{Kind: PriorDataEstimate},
		Runs:         1,
		Iterations:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 4 {
		t.Fatalf("methods = %d", len(res.Methods))
	}
}

func TestSimulateStudyFacade(t *testing.T) {
	study, err := SimulateStudy(StudyConfig{Participants: 2, Rows: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Trajectories) != 10 {
		t.Fatalf("trajectories = %d", len(study.Trajectories))
	}
}

func TestDefaultGammaMatchesPaper(t *testing.T) {
	if DefaultGamma != 0.5 {
		t.Fatalf("DefaultGamma = %v, want 0.5 (§C.1)", DefaultGamma)
	}
}

func TestSchemaHelper(t *testing.T) {
	s, err := NewSchema("a", "b")
	if err != nil || s.Arity() != 2 {
		t.Fatalf("NewSchema: %v", err)
	}
	if _, err := NewSchema(); err == nil {
		t.Fatal("empty schema should error")
	}
	if !strings.Contains(strings.Join(s.Names(), ","), "a") {
		t.Fatal("Names missing attribute")
	}
}
