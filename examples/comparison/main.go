// Comparison: the paper's four sampling methods head to head.
//
// The program runs the §C.1 evaluation condition of Figure 1 (OMDB,
// ≈10% violations, trainer prior Random, learner prior Data-estimate)
// and of Figure 3 (learner prior Uniform-0.9), printing the averaged
// MAE trajectories side by side. The headline: uncertainty sampling
// wins when the learner's prior is informed by the data, loses to plain
// random sampling when it is not, and the stochastic strategies are the
// robust middle ground.
//
// Run with:
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"os"

	"exptrain"
	"exptrain/internal/experiments"
)

func main() {
	conditions := []struct {
		title   string
		learner exptrain.PriorSpec
	}{
		{"learner prior informed by data (Figure 1 condition)",
			exptrain.PriorSpec{Kind: exptrain.PriorDataEstimate}},
		{"learner prior uninformed, Uniform-0.9 (Figure 3 condition)",
			exptrain.PriorSpec{Kind: exptrain.PriorUniform, D: 0.9}},
	}
	for _, cond := range conditions {
		res, err := exptrain.RunExperiment(exptrain.ExperimentConfig{
			Dataset:      "OMDB",
			Degree:       0.10,
			TrainerPrior: exptrain.PriorSpec{Kind: exptrain.PriorRandom},
			LearnerPrior: cond.learner,
			Runs:         3,
			BaseSeed:     11,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", cond.title)
		if err := experiments.WriteMAETable(os.Stdout, res); err != nil {
			log.Fatal(err)
		}
		fmt.Println("summary:")
		if err := experiments.WriteSummary(os.Stdout, res); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
