// Quickstart: run one exploratory-training session end to end.
//
// The program generates a synthetic OMDB-like dataset, injects 10% FD
// violations, and plays the training game: a simulated annotator who
// starts with a random belief and learns by fictitious play, against a
// learner using stochastic uncertainty sampling. It prints the
// per-iteration belief agreement (MAE) and the trainer's payoff.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"exptrain"
)

func main() {
	// 1. A dataset with known FD structure, dirtied at 10%.
	ds, err := exptrain.GenerateDataset("OMDB", 240, 1)
	if err != nil {
		log.Fatal(err)
	}
	injected, err := exptrain.InjectErrors(ds.Rel, ds.ExactFDs, 0.10, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d rows, %d corrupted cells\n",
		injected.Rel.NumRows(), len(injected.Log))

	// 2. One training session: FP trainer vs StochasticUS learner.
	result, err := exptrain.RunSession(exptrain.SessionConfig{
		Relation: injected.Rel,
		Space:    ds.Space(3, 38),
		Method:   exptrain.MethodStochasticUS,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the trajectory: belief agreement improves as the
	// annotator and the system learn together.
	fmt.Println("iter   MAE(trainer, learner)   trainer payoff")
	for i, it := range result.Iterations {
		fmt.Printf("%4d   %21.4f   %14.2f\n", i+1, it.MAE, it.TrainerPayoff)
	}
	fmt.Printf("final belief agreement: MAE = %.4f (lower is better)\n", result.FinalMAE())
	fmt.Printf("trainer marked %.0f%% of presented pairs as violations\n",
		100*result.Frequencies.DirtyRate())
}
