// User study: simulate annotators who learn about data while labeling,
// and ask which human-learning model explains them best.
//
// The program simulates a small population over the paper's five
// Table 2 scenarios, then replays two candidate models of human
// learning — fictitious play (Bayesian) and hypothesis testing — over
// each annotator's observation stream and measures how well each model
// predicts the annotator's declared FD (MRR@5, as in Figure 2).
//
// Run with:
//
//	go run ./examples/userstudy
package main

import (
	"fmt"
	"log"
	"os"

	"exptrain"
	"exptrain/internal/userstudy"
)

func main() {
	study, err := exptrain.SimulateStudy(exptrain.StudyConfig{
		Participants: 10,
		Rows:         160,
		Seed:         5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d sessions across %d scenarios\n\n",
		len(study.Trajectories), len(study.Scenarios))

	// How much do the annotators' declared hypotheses move between
	// rounds? (Table 3: large values mean genuine belief revision.)
	fmt.Println("hypothesis drift per scenario (Table 3):")
	if err := userstudy.WriteTable3(os.Stdout, userstudy.HypothesisDrift(study)); err != nil {
		log.Fatal(err)
	}

	// Which learning model predicts the annotators? (Figure 2.)
	fits, err := userstudy.FitModels(study)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmodel fit per scenario (Figure 2, MRR@5):")
	if err := userstudy.WriteFigure2(os.Stdout, fits); err != nil {
		log.Fatal(err)
	}

	sums, err := userstudy.Summarize(study)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, s := range sums {
		fmt.Printf("%-18s predicts the declared FD at rank 1 in %.0f%% of interactions (MRR %.3f)\n",
			s.Model, 100*s.Top1Rate, s.OverallMRR)
	}
	fmt.Println("\nFP (Bayesian) explains the population best — the paper's §A.3 finding;")
	fmt.Println("use it to simulate trainers when evaluating samplers (see examples/comparison).")
}
