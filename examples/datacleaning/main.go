// Data cleaning: learn approximate FDs from a dirty relation and use
// them to detect the erroneous rows — the downstream application that
// motivates the paper (§A.1).
//
// The program builds a Hospital-like dataset, corrupts it, discovers
// approximate FDs directly from the dirty data, and compares the
// discovered model's error detection against the injection ground
// truth.
//
// Run with:
//
//	go run ./examples/datacleaning
package main

import (
	"fmt"
	"log"
	"sort"

	"exptrain"
)

func main() {
	// A clean Hospital-like relation (19 attributes, six exact FDs) with
	// 8% injected violations.
	ds, err := exptrain.GenerateDataset("Hospital", 300, 3)
	if err != nil {
		log.Fatal(err)
	}
	injected, err := exptrain.InjectErrors(ds.Rel, ds.ExactFDs, 0.08, 3)
	if err != nil {
		log.Fatal(err)
	}
	dirty := injected.Rel
	names := dirty.Schema().Names()
	fmt.Printf("dirty relation: %d rows, %d corrupted cells\n", dirty.NumRows(), len(injected.Log))

	// Discover approximate FDs from the dirty data: the real FDs survive
	// with small g1 and high conditional confidence; junk combinations
	// and vacuous near-key FDs are filtered by the confidence and
	// support floors.
	found, err := exptrain.Discover(dirty, exptrain.DiscoveryConfig{
		MaxG1:         0.02,
		MaxLHS:        1,
		MinConfidence: 0.85,
		MinSupport:    50,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovered %d approximate FDs:\n", len(found))
	for _, f := range found {
		fmt.Printf("  %-35s g1=%.5f\n", f.Render(names), exptrain.G1(f, dirty))
	}

	// Detect errors with the discovered model and score against the
	// injection ground truth.
	flagged := exptrain.DetectErrors(found, dirty)
	tp := 0
	for row := range flagged {
		if _, bad := injected.DirtyRows[row]; bad {
			tp++
		}
	}
	precision := 0.0
	if len(flagged) > 0 {
		precision = float64(tp) / float64(len(flagged))
	}
	recall := 0.0
	if len(injected.DirtyRows) > 0 {
		recall = float64(tp) / float64(len(injected.DirtyRows))
	}
	fmt.Printf("\nerror detection: flagged %d rows — precision %.2f, recall %.2f\n",
		len(flagged), precision, recall)

	// Show a few flagged rows with their corrupted attribute.
	rows := make([]int, 0, len(flagged))
	for r := range flagged {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	shown := 0
	fmt.Println("\nsample of flagged rows (true errors annotated):")
	for _, r := range rows {
		if shown == 5 {
			break
		}
		mark := ""
		for _, c := range injected.Log {
			if c.Row == r {
				mark = fmt.Sprintf("  <- injected: %s %q->%q", names[c.Attr], c.Old, c.New)
				break
			}
		}
		fmt.Printf("  row %4d%s\n", r, mark)
		shown++
	}
}
