// Streaming: monitor approximate FDs over evolving data.
//
// The paper's introduction notes that annotators must keep re-learning
// when data evolves rapidly. This example shows the substrate for that
// setting: an incremental tracker maintains every hypothesis' violation
// statistics under single-cell updates in microseconds, where a naive
// recomputation would rescan the relation each time.
//
// The program simulates a feed of cell updates against a Tax-like
// relation — most updates benign, some corrupting — and alerts whenever
// a dependency's conditional violation rate crosses a threshold.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"exptrain"
	"exptrain/internal/stats"
)

func main() {
	ds, err := exptrain.GenerateDataset("Tax", 400, 9)
	if err != nil {
		log.Fatal(err)
	}
	rel := ds.Rel
	names := rel.Schema().Names()
	tracked := ds.ExactFDs
	monitor := exptrain.NewFDMultiTracker(tracked, rel)

	fmt.Println("monitoring dependencies:")
	for i, f := range tracked {
		st := monitor.Stats(i)
		fmt.Printf("  %-28s violation rate %.4f (%d agreeing pairs)\n",
			f.Render(names), rate(st), st.Agreeing)
	}

	// A stream of 2000 updates: 95% rewrite a cell with a value that
	// keeps the dependencies intact (copy from a same-group row), 5%
	// scramble a zip-dependent cell.
	rng := stats.NewRNG(42)
	const threshold = 0.02
	alerted := map[int]bool{}
	corruptions := 0
	for step := 1; step <= 2000; step++ {
		row := rng.Intn(rel.NumRows())
		if rng.Float64() < 0.05 {
			// Corruption: break zip→city by writing a random other city.
			city := rel.Schema().MustIndex("city")
			monitor.Set(row, city, fmt.Sprintf("CITY-%d", rng.Intn(50)))
			corruptions++
		} else {
			// Benign churn on an independent attribute.
			salary := rel.Schema().MustIndex("salary")
			monitor.Set(row, salary, fmt.Sprint(20000+5000*rng.Intn(17)))
		}
		for i, f := range tracked {
			r := rate(monitor.Stats(i))
			if r > threshold && !alerted[i] {
				alerted[i] = true
				fmt.Printf("step %4d: ALERT %-28s violation rate %.4f crossed %.2f (after %d corruptions)\n",
					step, f.Render(names), r, threshold, corruptions)
			}
		}
	}

	fmt.Printf("\nafter 2000 updates (%d corruptions):\n", corruptions)
	for i, f := range tracked {
		st := monitor.Stats(i)
		fmt.Printf("  %-28s violation rate %.4f\n", f.Render(names), rate(st))
	}
	fmt.Println("\nzip->city degraded; the other dependencies stayed clean —")
	fmt.Println("exactly the signal an exploratory-training session would relearn from.")
}

func rate(st exptrain.FDStats) float64 {
	if st.Agreeing == 0 {
		return 0
	}
	return float64(st.Violating) / float64(st.Agreeing)
}
