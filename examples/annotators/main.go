// Annotators: how different human behaviours change what the learner
// receives.
//
// The paper's related work names annotators who abstain when unsure and
// annotators who go back and correct earlier labels (Yan et al. 2016).
// This example runs the same training episode against four annotator
// models — plain fictitious play, noisy, abstaining, and relabeling —
// and compares how close the learner's final belief gets to each
// annotator's.
//
// Run with:
//
//	go run ./examples/annotators
package main

import (
	"fmt"
	"log"

	"exptrain"
	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
)

func main() {
	ds, err := exptrain.GenerateDataset("OMDB", 240, 3)
	if err != nil {
		log.Fatal(err)
	}
	injected, err := exptrain.InjectErrors(ds.Rel, ds.ExactFDs, 0.10, 3)
	if err != nil {
		log.Fatal(err)
	}
	rel := injected.Rel
	space := ds.Space(3, 38)

	type annotatorCase struct {
		name  string
		build func(prior *belief.Belief, rng *stats.RNG) agents.Trainer
	}
	cases := []annotatorCase{
		{"fictitious play", func(p *belief.Belief, rng *stats.RNG) agents.Trainer {
			return agents.NewFPTrainer(p, rng)
		}},
		{"20% label noise", func(p *belief.Belief, rng *stats.RNG) agents.Trainer {
			tr := agents.NewFPTrainer(p, rng)
			tr.NoiseRate = 0.2
			return tr
		}},
		{"abstains when unsure", func(p *belief.Belief, rng *stats.RNG) agents.Trainer {
			return agents.NewAbstainingTrainer(agents.NewFPTrainer(p, rng), 0.15)
		}},
		{"relabels old mistakes", func(p *belief.Belief, rng *stats.RNG) agents.Trainer {
			return agents.NewRelabelingTrainer(agents.NewFPTrainer(p, rng))
		}},
	}

	fmt.Println("same data, same learner (StochasticUS), four annotator behaviours:")
	fmt.Printf("%-24s %10s %10s %12s\n", "annotator", "firstMAE", "finalMAE", "dirty-rate")
	for _, c := range cases {
		rng := stats.NewRNG(11)
		prior := belief.RandomPrior(space, rng.Split(), 0.12)
		trainer := c.build(prior, rng.Split())
		learner := agents.NewLearner(
			belief.DataEstimatePrior(space, rel, 0.12),
			sampling.StochasticUS{}, rng.Split())
		pool := sampling.NewPool(rel, space, sampling.PoolConfig{Seed: 12})

		first, last := -1.0, -1.0
		var dirty, total int
		for round := 0; round < 30; round++ {
			remaining := pool.Remaining()
			if len(remaining) == 0 {
				break
			}
			presented := learner.Present(rel, remaining, 10)
			pool.MarkShown(presented)
			trainer.Observe(rel, presented)
			labeled := trainer.Label(rel, presented)
			learner.Incorporate(rel, labeled)
			if rl, ok := trainer.(agents.Relabeler); ok {
				learner.Revise(rel, rl.Revisions(rel))
			}
			for _, lp := range labeled {
				total++
				if lp.Dirty() {
					dirty++
				}
			}
			mae := trainer.Belief().MAE(learner.Belief())
			if first < 0 {
				first = mae
			}
			last = mae
		}
		fmt.Printf("%-24s %10.4f %10.4f %11.1f%%\n",
			c.name, first, last, 100*float64(dirty)/float64(total))
	}
	fmt.Println("\nabstention slows convergence (every abstained pair is withheld evidence);")
	fmt.Println("relabeling repairs the learner's early-round damage. label noise corrupts")
	fmt.Println("individual annotations (dirty-rate jumps) yet can *shrink* the belief gap:")
	fmt.Println("flipped marks leak the negative evidence the clean protocol withholds for")
	fmt.Println("believed hypotheses — exactly the trade-off the paper's trainer models probe.")
}
