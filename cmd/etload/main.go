// Command etload load-tests an exploratory-training server through the
// public client, comparing the request-per-round submission path
// against the batched labelpool pipeline and reporting sustained
// throughput plus latency percentiles in `go test -bench` line format,
// so the numbers pipe straight into benchjson:
//
//	etload -inproc -sessions 16 -rounds 8 | benchjson > BENCH_Labelpool.json
//
// Two workload modes, both playing every session for exactly -rounds
// abstain-all rounds:
//
//   - baseline: the interactive path — each round is one GET /next plus
//     one POST /submit, the client blocking on both (closed loop).
//   - pool: the batched path — submissions enqueue in windows of
//     -window rounds per POST /submissions, and one SSE stream per
//     session observes the applied rounds.
//
// -mode both (the default) runs baseline then pool against separate
// sessions and emits a BenchmarkLabelpoolSpeedup line with the
// throughput ratio. -rate switches pool mode from closed-loop to
// open-loop: enqueue requests are paced at the given aggregate
// requests/sec regardless of completion, which surfaces queueing delay
// that a closed loop hides.
//
// The target is either a running etserve (-addr) or an in-process
// manager+server on a loopback listener (-inproc), which is what
// `make loadsmoke` uses: same HTTP stack, no network noise, no daemon
// to manage.
//
// -net-delay injects a symmetric client-side network delay around
// every request (half before send, half after receive), modelling the
// remote annotator the batched pipeline exists for: on a LAN or
// loopback the request-per-round baseline is compute-bound and
// batching saves only the per-request overhead, but with tens of
// milliseconds of RTT the baseline's closed loop serializes two round
// trips per submission while the pool amortizes one round trip over a
// whole window. `make loadsmoke` records that configuration.
//
// -wal switches to the durability comparison `make walbench` records:
// the same submit workload is played twice against a simulated
// fsync-bound disk (-store-delay per disk operation), once making each
// submit durable with a full snapshot Put — serialized, because one
// disk has one fsync queue — and once through the write-ahead log,
// whose group committer batches every session waiting on the same
// fsync and writes O(round) delta bytes instead of O(history)
// snapshots. Emits BenchmarkWalSnapshot, BenchmarkWalCommit, and a
// BenchmarkWalSpeedup ratio line.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"exptrain/client"
	"exptrain/internal/persist"
	"exptrain/internal/persist/wal"
	"exptrain/internal/sampling"
	"exptrain/internal/service"
)

// config is etload's flag surface.
type config struct {
	addr     string
	inproc   bool
	sessions int
	rounds   int
	window   int
	mode     string
	rate     float64
	dataset  string
	rows     int
	k        int
	seed     uint64
	netDelay time.Duration

	shardCounts string
	storeDelay  time.Duration
	walCompare  bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "base URL of a running server (e.g. http://localhost:8080)")
	flag.BoolVar(&cfg.inproc, "inproc", false, "serve an in-process manager on a loopback listener instead of -addr")
	flag.IntVar(&cfg.sessions, "sessions", 16, "concurrent sessions per mode")
	flag.IntVar(&cfg.rounds, "rounds", 8, "rounds played per session")
	flag.IntVar(&cfg.window, "window", 4, "rounds per enqueue request in pool mode")
	flag.StringVar(&cfg.mode, "mode", "both", "workload: baseline, pool or both")
	flag.Float64Var(&cfg.rate, "rate", 0, "open-loop enqueue requests/sec across all pool workers (0 = closed loop)")
	flag.StringVar(&cfg.dataset, "dataset", "OMDB", "synthetic dataset name")
	flag.IntVar(&cfg.rows, "rows", 60, "synthetic dataset rows")
	flag.IntVar(&cfg.k, "k", 4, "pairs per round")
	flag.Uint64Var(&cfg.seed, "seed", 1, "base seed; session i uses seed+i")
	flag.DurationVar(&cfg.netDelay, "net-delay", 0, "simulated client-side round-trip delay per request (e.g. 10ms)")
	flag.StringVar(&cfg.shardCounts, "shards", "", "comma-separated shard counts to compare (e.g. 1,4,16); drives the manager directly and ignores -mode/-addr")
	flag.DurationVar(&cfg.storeDelay, "store-delay", 4*time.Millisecond, "simulated checkpoint-store latency per operation in -shards and -wal runs")
	flag.BoolVar(&cfg.walCompare, "wal", false, "compare snapshot-per-submit durability against WAL group commit on a simulated fsync-bound disk; drives the manager directly and ignores -mode/-addr")
	flag.Parse()
	if err := run(cfg); err != nil {
		log.Fatal("etload: ", err)
	}
}

func run(cfg config) error {
	if cfg.walCompare {
		return runWalCompare(cfg)
	}
	if cfg.shardCounts != "" {
		return runShardCompare(cfg)
	}
	if cfg.mode != "baseline" && cfg.mode != "pool" && cfg.mode != "both" {
		return fmt.Errorf("unknown -mode %q", cfg.mode)
	}
	if cfg.window < 1 || cfg.window > cfg.rounds {
		cfg.window = cfg.rounds
	}
	base := cfg.addr
	if cfg.inproc || base == "" {
		if base != "" {
			return fmt.Errorf("-addr and -inproc are mutually exclusive")
		}
		stop, url, err := serveInproc()
		if err != nil {
			return err
		}
		defer stop()
		base = url
		fmt.Fprintf(os.Stderr, "etload: in-process server on %s\n", base)
	}
	hc := &http.Client{}
	if cfg.netDelay > 0 {
		hc.Transport = &delayTransport{rtt: cfg.netDelay, next: http.DefaultTransport}
	}
	c := client.New(base, client.Options{HTTP: hc})

	var baseline, pool result
	if cfg.mode != "pool" {
		r, err := runBaseline(c, cfg)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		baseline = r
		emit("LabelpoolBaseline", r)
	}
	if cfg.mode != "baseline" {
		r, err := runPool(c, cfg)
		if err != nil {
			return fmt.Errorf("pool: %w", err)
		}
		pool = r
		emit("LabelpoolPool", r)
	}
	if cfg.mode == "both" && baseline.throughput() > 0 {
		fmt.Printf("BenchmarkLabelpoolSpeedup 1 %.2f x-vs-baseline\n",
			pool.throughput()/baseline.throughput())
	}
	return nil
}

// delayTransport injects a symmetric simulated network delay: half the
// round trip before the request leaves, half before the response is
// seen. Streaming bodies are only delayed at connection time, which is
// how real propagation delay treats a long-lived SSE stream too.
type delayTransport struct {
	rtt  time.Duration
	next http.RoundTripper
}

func (d *delayTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	half := d.rtt / 2
	select {
	case <-req.Context().Done():
		return nil, req.Context().Err()
	case <-time.After(half):
	}
	resp, err := d.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	select {
	case <-req.Context().Done():
		resp.Body.Close()
		return nil, req.Context().Err()
	case <-time.After(half):
	}
	return resp, nil
}

// serveInproc starts a manager + HTTP server on an ephemeral loopback
// port and returns a shutdown func and the base URL.
func serveInproc() (stop func(), url string, err error) {
	mgr := service.NewManager(service.Options{MaxSessions: 1024})
	srv := &http.Server{Handler: service.NewServer(mgr, service.ServerOptions{})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go func() { _ = srv.Serve(ln) }()
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
		_ = srv.Shutdown(ctx)
	}
	return stop, "http://" + ln.Addr().String(), nil
}

// result is one mode's measurements.
type result struct {
	rounds    int           // submissions applied across all sessions
	elapsed   time.Duration // wall time of the phase
	latencies []time.Duration
}

func (r result) throughput() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.rounds) / r.elapsed.Seconds()
}

// percentile returns the q-quantile (0..1) of the recorded request
// latencies by nearest rank.
func (r result) percentile(q float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), r.latencies...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// emit prints one benchjson-parseable result line: iterations are the
// applied submissions, ns/op the mean wall time per submission, plus
// throughput and per-request latency percentiles as custom metrics.
func emit(name string, r result) {
	fmt.Printf("Benchmark%s %d %d ns/op %.1f submissions/sec %d p50-req-ns %d p99-req-ns\n",
		name, r.rounds, int64(r.elapsed.Nanoseconds())/int64(max(r.rounds, 1)),
		r.throughput(), r.percentile(0.50).Nanoseconds(), r.percentile(0.99).Nanoseconds())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// spec builds session i's create request.
func (cfg config) spec(i int) client.CreateSession {
	return client.CreateSession{
		Dataset: cfg.dataset,
		Rows:    cfg.rows,
		K:       cfg.k,
		Method:  "StochasticUS",
		Seed:    cfg.seed + uint64(i),
	}
}

// runBaseline plays every session interactively: one Next and one
// Submit round trip per round, each worker blocking on its own chain.
func runBaseline(c *client.Client, cfg config) (result, error) {
	ctx := context.Background()
	ids, err := createAll(ctx, c, cfg)
	if err != nil {
		return result{}, err
	}
	var (
		mu  sync.Mutex
		res result
		wg  sync.WaitGroup
		ec  = make(chan error, len(ids))
	)
	start := time.Now()
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			var lats []time.Duration
			for r := 0; r < cfg.rounds; r++ {
				t0 := time.Now()
				if _, err := c.Next(ctx, id); err != nil {
					ec <- fmt.Errorf("next %s round %d: %w", id, r, err)
					return
				}
				if _, err := c.Submit(ctx, id, r, nil); err != nil {
					ec <- fmt.Errorf("submit %s round %d: %w", id, r, err)
					return
				}
				lats = append(lats, time.Since(t0))
			}
			mu.Lock()
			res.rounds += cfg.rounds
			res.latencies = append(res.latencies, lats...)
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	select {
	case err := <-ec:
		return result{}, err
	default:
	}
	return res, nil
}

// runPool plays every session through the labelpool: windows of
// cfg.window abstain-all submissions per enqueue request, with one SSE
// stream per session counting the applied rounds. With -rate set the
// enqueue requests across all workers are paced open-loop by a shared
// ticker instead of each worker running as fast as its session drains.
func runPool(c *client.Client, cfg config) (result, error) {
	ctx := context.Background()
	ids, err := createAll(ctx, c, cfg)
	if err != nil {
		return result{}, err
	}
	var pace <-chan time.Time
	if cfg.rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / cfg.rate))
		defer t.Stop()
		pace = t.C
	}
	var (
		mu  sync.Mutex
		res result
		wg  sync.WaitGroup
		ec  = make(chan error, 2*len(ids))
	)
	start := time.Now()
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()

			// The stream is the completion signal: cancel once every
			// round of the window has been observed applied.
			sctx, cancel := context.WithCancel(ctx)
			defer cancel()
			streamDone := make(chan struct{})
			go func() {
				defer close(streamDone)
				seen := 0
				err := c.StreamRounds(sctx, id, 0, func(ev client.StreamEvent) error {
					if ev.Type == "round" {
						if seen++; seen >= cfg.rounds {
							cancel()
						}
					}
					return nil
				})
				if err != nil && sctx.Err() == nil {
					ec <- fmt.Errorf("stream %s: %w", id, err)
				}
			}()

			var lats []time.Duration
			for lo := 0; lo < cfg.rounds; lo += cfg.window {
				hi := lo + cfg.window
				if hi > cfg.rounds {
					hi = cfg.rounds
				}
				subs := make([]client.Submission, 0, hi-lo)
				for r := lo; r < hi; r++ {
					subs = append(subs, client.Submission{Round: r})
				}
				if pace != nil {
					<-pace
				}
				t0 := time.Now()
				if _, err := c.Enqueue(ctx, id, subs); err != nil {
					ec <- fmt.Errorf("enqueue %s rounds [%d,%d): %w", id, lo, hi, err)
					cancel()
					return
				}
				lats = append(lats, time.Since(t0))
			}
			<-streamDone
			mu.Lock()
			res.rounds += cfg.rounds
			res.latencies = append(res.latencies, lats...)
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	select {
	case err := <-ec:
		return result{}, err
	default:
	}
	return res, nil
}

// createAll provisions one session per worker up front so creation
// cost stays out of the measured window.
func createAll(ctx context.Context, c *client.Client, cfg config) ([]string, error) {
	ids := make([]string, cfg.sessions)
	var wg sync.WaitGroup
	ec := make(chan error, cfg.sessions)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, err := c.Create(ctx, cfg.spec(i))
			if err != nil {
				ec <- fmt.Errorf("create session %d: %w", i, err)
				return
			}
			ids[i] = info.ID
		}(i)
	}
	wg.Wait()
	select {
	case err := <-ec:
		return nil, err
	default:
	}
	return ids, nil
}

// delayStore simulates a real checkpoint store — a network filesystem,
// an object store, a database — by sleeping a fixed latency before
// every operation over an in-memory store. The -shards comparison
// exists to show the sharded serving core overlapping exactly this
// latency: one shard checkpoints its parked sessions serially, N
// shards do so N ways in parallel.
type delayStore struct {
	d     time.Duration
	inner persist.Store
}

func (s *delayStore) wait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(s.d):
		return nil
	}
}

func (s *delayStore) Put(ctx context.Context, id string, snap *persist.Snapshot) error {
	if err := s.wait(ctx); err != nil {
		return err
	}
	return s.inner.Put(ctx, id, snap)
}

func (s *delayStore) Get(ctx context.Context, id string) (*persist.Snapshot, error) {
	if err := s.wait(ctx); err != nil {
		return nil, err
	}
	return s.inner.Get(ctx, id)
}

func (s *delayStore) Delete(ctx context.Context, id string) error {
	if err := s.wait(ctx); err != nil {
		return err
	}
	return s.inner.Delete(ctx, id)
}

func (s *delayStore) List(ctx context.Context) ([]string, error) {
	if err := s.wait(ctx); err != nil {
		return nil, err
	}
	return s.inner.List(ctx)
}

// runShardCompare runs the park-heavy shard workload once per
// requested shard count and emits one benchmark line each, plus the
// scaling ratio of the last count against the first:
//
//	BenchmarkShardServe/shards=1 ...
//	BenchmarkShardServe/shards=16 ...
//	BenchmarkShardScaling16v1 1 6.42 x-vs-1shard
func runShardCompare(cfg config) error {
	var counts []int
	for _, f := range strings.Split(cfg.shardCounts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -shards entry %q", f)
		}
		counts = append(counts, n)
	}
	results := make([]result, len(counts))
	for i, n := range counts {
		r, err := runShardWorkload(cfg, n)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", n, err)
		}
		results[i] = r
		emit(fmt.Sprintf("ShardServe/shards=%d", n), r)
	}
	first, last := counts[0], counts[len(counts)-1]
	if len(counts) > 1 && results[0].throughput() > 0 {
		fmt.Printf("BenchmarkShardScaling%dv%d 1 %.2f x-vs-%dshard\n",
			last, first, results[len(counts)-1].throughput()/results[0].throughput(), first)
	}
	return nil
}

// runShardWorkload drives a service.Manager directly (no HTTP) through
// the access pattern sharding scales: every round each session plays
// one Next/Submit, then a Sweep parks the whole fleet through the
// delayed store and the next round's requests transparently unpark
// them. The per-round Sweep is the serialized store bottleneck a
// single lock domain imposes; per-shard sweeps overlap it.
func runShardWorkload(cfg config, shards int) (result, error) {
	ctx := context.Background()
	m := service.NewManager(service.Options{
		Shards: shards,
		// Double the fleet so even the busiest shard's rendezvous share
		// fits its ceil(MaxSessions/shards) slice: parking here comes
		// from the per-round Sweep, not from capacity churn.
		MaxSessions: 2 * cfg.sessions,
		IdleTTL:     time.Nanosecond, // every session is sweep-eligible the moment it goes idle
		Store:       &delayStore{d: cfg.storeDelay, inner: persist.NewMemStore()},
	})
	ids := make([]string, cfg.sessions)
	for i := range ids {
		info, err := m.Create(ctx, service.Spec{
			Source: service.Source{Dataset: cfg.dataset, Rows: cfg.rows, Seed: cfg.seed + uint64(i)},
			Method: sampling.MethodStochasticUS,
			K:      cfg.k,
			Seed:   cfg.seed + uint64(i),
		})
		if err != nil {
			return result{}, fmt.Errorf("create session %d: %w", i, err)
		}
		ids[i] = info.ID
	}
	workers := cfg.sessions
	if workers > 32 {
		workers = 32
	}
	var (
		mu  sync.Mutex
		res result
		ec  = make(chan error, workers)
	)
	start := time.Now()
	for r := 0; r < cfg.rounds; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var lats []time.Duration
				for i := w; i < len(ids); i += workers {
					t0 := time.Now()
					if _, err := m.Next(ctx, ids[i]); err != nil {
						ec <- fmt.Errorf("next %s round %d: %w", ids[i], r, err)
						return
					}
					if _, err := m.Submit(ctx, ids[i], r, nil); err != nil {
						ec <- fmt.Errorf("submit %s round %d: %w", ids[i], r, err)
						return
					}
					lats = append(lats, time.Since(t0))
				}
				mu.Lock()
				res.latencies = append(res.latencies, lats...)
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		select {
		case err := <-ec:
			return result{}, err
		default:
		}
		if _, err := m.Sweep(ctx); err != nil {
			return result{}, fmt.Errorf("sweep round %d: %w", r, err)
		}
	}
	res.rounds = cfg.sessions * cfg.rounds
	res.elapsed = time.Since(start)
	if err := m.Shutdown(ctx); err != nil {
		return result{}, fmt.Errorf("shutdown: %w", err)
	}
	return res, nil
}

// serialDiskStore models one disk with one fsync queue: every Put
// holds the disk for a fixed latency, so concurrent checkpointers
// serialize exactly the way fsyncs on a single spindle do. The WAL
// side of the comparison gives its log the same per-fsync latency via
// wal.Config.SyncDelay (the committer goroutine is its own serial
// queue), so the measured difference is purely how many sessions'
// rounds ride each fsync and how many bytes each one carries. Reads
// stay cheap: recovery and resume are off the measured path.
type serialDiskStore struct {
	d     time.Duration
	mu    sync.Mutex
	inner persist.Store
}

func (s *serialDiskStore) Put(ctx context.Context, id string, snap *persist.Snapshot) error {
	// Only the simulated disk time is serialized; the in-memory write
	// happens outside the lock (MemStore synchronizes itself).
	s.mu.Lock()
	select {
	case <-ctx.Done():
		s.mu.Unlock()
		return ctx.Err()
	case <-time.After(s.d):
	}
	s.mu.Unlock()
	return s.inner.Put(ctx, id, snap)
}

func (s *serialDiskStore) Get(ctx context.Context, id string) (*persist.Snapshot, error) {
	return s.inner.Get(ctx, id)
}

func (s *serialDiskStore) Delete(ctx context.Context, id string) error {
	return s.inner.Delete(ctx, id)
}

func (s *serialDiskStore) List(ctx context.Context) ([]string, error) {
	return s.inner.List(ctx)
}

// runWalCompare measures the cost of making every submitted round
// durable, two ways, over the same fsync-bound disk:
//
//	BenchmarkWalSnapshot ...   each submit Puts a full snapshot
//	BenchmarkWalCommit ...     each submit rides a WAL group commit
//	BenchmarkWalSpeedup 1 12.41 x-vs-snapshot
func runWalCompare(cfg config) error {
	snap, err := runWalWorkload(cfg, &serialDiskStore{d: cfg.storeDelay, inner: persist.NewMemStore()}, true)
	if err != nil {
		return fmt.Errorf("snapshot mode: %w", err)
	}
	emit("WalSnapshot", snap)

	dir, err := os.MkdirTemp("", "etload-wal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ws, _, err := wal.OpenStore(
		&serialDiskStore{d: cfg.storeDelay, inner: persist.NewMemStore()},
		dir,
		wal.StoreConfig{Wal: wal.Config{SyncDelay: cfg.storeDelay}},
	)
	if err != nil {
		return fmt.Errorf("opening wal: %w", err)
	}
	defer ws.Close()
	committed, err := runWalWorkload(cfg, ws, false)
	if err != nil {
		return fmt.Errorf("wal mode: %w", err)
	}
	emit("WalCommit", committed)

	if snap.throughput() > 0 {
		fmt.Printf("BenchmarkWalSpeedup 1 %.2f x-vs-snapshot\n",
			committed.throughput()/snap.throughput())
	}
	return nil
}

// runWalWorkload drives a service.Manager directly through the
// durability-bound submit pattern: every worker plays Next/Submit
// rounds across its slice of the fleet, and each submit only counts
// once it is durable — via an explicit full snapshot in snapshotEach
// mode, or by the submit itself acking off its WAL group commit
// otherwise. Session creation (and the WAL mode's genesis snapshots)
// happens before the clock starts.
func runWalWorkload(cfg config, store persist.Store, snapshotEach bool) (result, error) {
	ctx := context.Background()
	m := service.NewManager(service.Options{
		MaxSessions: 2 * cfg.sessions,
		IdleTTL:     time.Hour,
		Store:       store,
	})
	ids := make([]string, cfg.sessions)
	for i := range ids {
		info, err := m.Create(ctx, service.Spec{
			Source: service.Source{Dataset: cfg.dataset, Rows: cfg.rows, Seed: cfg.seed + uint64(i)},
			Method: sampling.MethodStochasticUS,
			K:      cfg.k,
			Seed:   cfg.seed + uint64(i),
		})
		if err != nil {
			return result{}, fmt.Errorf("create session %d: %w", i, err)
		}
		ids[i] = info.ID
	}
	workers := cfg.sessions
	if workers > 32 {
		workers = 32
	}
	var (
		mu  sync.Mutex
		res result
		ec  = make(chan error, workers)
	)
	start := time.Now()
	for r := 0; r < cfg.rounds; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var lats []time.Duration
				for i := w; i < len(ids); i += workers {
					t0 := time.Now()
					if _, err := m.Next(ctx, ids[i]); err != nil {
						ec <- fmt.Errorf("next %s round %d: %w", ids[i], r, err)
						return
					}
					if _, err := m.Submit(ctx, ids[i], r, nil); err != nil {
						ec <- fmt.Errorf("submit %s round %d: %w", ids[i], r, err)
						return
					}
					if snapshotEach {
						if _, err := m.Snapshot(ctx, ids[i]); err != nil {
							ec <- fmt.Errorf("snapshot %s round %d: %w", ids[i], r, err)
							return
						}
					}
					lats = append(lats, time.Since(t0))
				}
				mu.Lock()
				res.latencies = append(res.latencies, lats...)
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		select {
		case err := <-ec:
			return result{}, err
		default:
		}
	}
	res.rounds = cfg.sessions * cfg.rounds
	res.elapsed = time.Since(start)
	if err := m.Shutdown(ctx); err != nil {
		return result{}, fmt.Errorf("shutdown: %w", err)
	}
	return res, nil
}
