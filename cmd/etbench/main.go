// Command etbench regenerates the paper's evaluation tables and figures
// (§C and Appendix A) as text output.
//
// Usage:
//
//	etbench [-figure all|1|2|3|4|5|6|7|table3] [-runs N] [-seed S]
//	        [-participants N] [-rows N] [-summary]
//
// Figures 1 and 3-7 print per-iteration series (MAE, or F1 for figure
// 7) with one column per sampling method; figure 2 and table3 run the
// simulated user study. With -summary only the per-method convergence
// and accuracy summaries are printed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"exptrain/internal/experiments"
	"exptrain/internal/userstudy"
	"exptrain/internal/viz"
)

func main() {
	var (
		figure       = flag.String("figure", "all", "which figure to regenerate: all, 1, 2, 3, 4, 5, 6, 6a (agreement companion), 7 or table3")
		runs         = flag.Int("runs", 5, "seeded repetitions to average per condition")
		seed         = flag.Uint64("seed", 1, "base seed")
		participants = flag.Int("participants", 20, "simulated participants for figure 2 / table 3")
		rows         = flag.Int("rows", 200, "rows per user-study scenario dataset")
		summary      = flag.Bool("summary", false, "shorthand for -format summary")
		format       = flag.String("format", "series", "output format for figure conditions: series, summary, csv or chart")
	)
	flag.Parse()
	if *summary {
		*format = "summary"
	}

	if err := run(os.Stdout, *figure, *runs, *seed, *participants, *rows, *format); err != nil {
		fmt.Fprintln(os.Stderr, "etbench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, figure string, runs int, seed uint64, participants, rows int, format string) error {
	wantStudy := figure == "all" || figure == "2" || figure == "table3"
	var study *userstudy.Study
	if wantStudy {
		var err error
		study, err = userstudy.Simulate(userstudy.StudyConfig{
			Participants: participants,
			Rows:         rows,
			Seed:         seed,
		})
		if err != nil {
			return err
		}
	}

	printOne := func(title string, res *experiments.Result, f1 bool) error {
		fmt.Fprintf(w, "== %s ==\n", title)
		pick := experiments.MAEOf
		metric := "MAE"
		if f1 {
			pick = experiments.F1Of
			metric = "F1"
		}
		switch format {
		case "summary":
			return experiments.WriteSummary(w, res)
		case "csv":
			return experiments.WriteSeriesCSV(w, res, pick)
		case "chart":
			series := make([]viz.Series, 0, len(res.Methods))
			for _, m := range res.Methods {
				series = append(series, viz.Series{Name: m.Method, Values: pick(m)})
			}
			return viz.Chart(w, metric+" per iteration", series, viz.ChartConfig{Height: 14})
		case "series":
			if f1 {
				return experiments.WriteF1Table(w, res)
			}
			return experiments.WriteMAETable(w, res)
		default:
			return fmt.Errorf("unknown format %q (want series, summary, csv or chart)", format)
		}
	}
	printMany := func(title string, results []*experiments.Result, f1 bool) error {
		for _, res := range results {
			if err := printOne(fmt.Sprintf("%s — %s", title, res.Config.Dataset), res, f1); err != nil {
				return err
			}
		}
		return nil
	}

	all := figure == "all"
	ran := false

	if all || figure == "table3" {
		ran = true
		fmt.Fprintln(w, "== Table 3: average f1-score change between labeling rounds ==")
		if err := userstudy.WriteTable3(w, userstudy.HypothesisDrift(study)); err != nil {
			return err
		}
	}
	if all || figure == "2" {
		ran = true
		fmt.Fprintln(w, "== Figure 2: MRR@5 of learning models per scenario ==")
		fits, err := userstudy.FitModels(study)
		if err != nil {
			return err
		}
		if err := userstudy.WriteFigure2(w, fits); err != nil {
			return err
		}
		sums, err := userstudy.Summarize(study)
		if err != nil {
			return err
		}
		for _, s := range sums {
			fmt.Fprintf(w, "overall %-18s MRR=%.4f top1=%.2f top2=%.2f (n=%d)\n",
				s.Model, s.OverallMRR, s.Top1Rate, s.Top2Rate, s.TotalPredictions)
		}
	}
	if all || figure == "1" {
		ran = true
		res, err := experiments.Figure1(seed, runs)
		if err != nil {
			return err
		}
		if err := printOne("Figure 1: MAE, OMDB ≈10%, learner=Data-estimate", res, false); err != nil {
			return err
		}
	}
	if all || figure == "3" {
		ran = true
		res, err := experiments.Figure3(seed, runs)
		if err != nil {
			return err
		}
		if err := printOne("Figure 3: MAE, OMDB ≈10%, learner=Uniform-0.9", res, false); err != nil {
			return err
		}
	}
	if all || figure == "4" {
		ran = true
		results, err := experiments.Figure4(seed, runs)
		if err != nil {
			return err
		}
		if err := printMany("Figure 4: MAE ≈20%, learner=Data-estimate", results, false); err != nil {
			return err
		}
	}
	if all || figure == "5" {
		ran = true
		results, err := experiments.Figure5(seed, runs)
		if err != nil {
			return err
		}
		if err := printMany("Figure 5: MAE ≈20%, learner=Uniform-0.9", results, false); err != nil {
			return err
		}
	}
	if all || figure == "6" {
		ran = true
		results, err := experiments.Figure6(seed, runs)
		if err != nil {
			return err
		}
		for _, res := range results {
			title := fmt.Sprintf("Figure 6: MAE, OMDB degree ≈%.0f%%, learner=Uniform-0.9", res.Config.Degree*100)
			if err := printOne(title, res, false); err != nil {
				return err
			}
		}
	}
	if all || figure == "6a" {
		ran = true
		results, err := experiments.Figure6Agreement(seed, runs)
		if err != nil {
			return err
		}
		for _, res := range results {
			title := fmt.Sprintf("Figure 6 companion: MAE, OMDB degree ≈%.0f%%, priors in agreement", res.Config.Degree*100)
			if err := printOne(title, res, false); err != nil {
				return err
			}
		}
	}
	if all || figure == "7" {
		ran = true
		results, err := experiments.Figure7(seed, runs)
		if err != nil {
			return err
		}
		if err := printMany("Figure 7: detection F1 ≈20%, priors Random/Random", results, true); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown figure %q (want all, 1-7, 6a or table3)", figure)
	}
	return nil
}
