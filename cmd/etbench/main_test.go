package main

import (
	"strings"
	"testing"
)

func TestEtbenchTable3(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "table3", 1, 1, 3, 80, "summary"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "Scenario#") {
		t.Errorf("Table 3 output wrong:\n%s", out)
	}
}

func TestEtbenchFigure2(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "2", 1, 1, 3, 80, "summary"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 2", "FP", "HypothesisTesting", "overall"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestEtbenchUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "99", 1, 1, 3, 80, "summary"); err == nil {
		t.Fatal("unknown figure should error")
	}
}

func TestEtbenchFormats(t *testing.T) {
	// Unknown format errors when a figure condition actually renders.
	var sb strings.Builder
	if err := run(&sb, "bogusfigure", 1, 1, 2, 80, "nope"); err == nil {
		t.Error("unknown figure should error before format matters")
	}
}
