// Command benchjson converts `go test -bench` output into a
// machine-readable JSON baseline. It reads the benchmark text from
// stdin and writes one JSON document to stdout:
//
//	go test -run '^$' -bench '^BenchmarkFullGame$' -benchmem . | benchjson > BENCH_baseline.json
//
// Every metric pair of a benchmark line (ns/op, B/op, allocs/op and
// custom b.ReportMetric units alike) becomes an entry in the
// benchmark's metric map, so baselines can be diffed or asserted
// against by scripts (`make bench` uses it to emit BENCH_*.json).
//
// With -check, benchjson instead compares the stdin stream against a
// checked-in baseline and exits non-zero on an allocation regression:
//
//	go test -run '^$' -bench '^BenchmarkFullGame$' -benchtime 1x -benchmem . |
//	    benchjson -check BENCH_FullGame.json
//
// Two metric families are asserted. allocs/op is gated because it is
// deterministic for a fixed code path, unlike ns/op which varies with
// machine load, so the gate never flakes on timing noise. Ratio
// metrics — any custom unit starting "x-vs-", e.g. the shard-scaling
// "x-vs-1shard" speedup — are gated with a generous floor (the current
// ratio may fall to 60% of the baseline's) because a ratio of two
// runs on the same machine cancels most load noise while still
// catching a scaling property that collapsed. All other units are
// recorded, never asserted. A benchmark missing from the baseline is
// skipped with a note (new benchmarks need `make bench` to record them).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Allocation regression tolerance: current allocs/op may exceed the
// baseline by 50% plus an absolute floor of 64 objects. The factor
// absorbs deliberate small additions without a baseline refresh; the
// floor keeps near-zero baselines (the whole point of the hot-path
// work) from turning single-object changes into failures.
const (
	allocSlackFactor = 1.5
	allocSlackFloor  = 64
)

// Ratio regression tolerance: a current "x-vs-*" ratio metric may fall
// to this fraction of its baseline before the gate fails. Ratios
// divide out absolute machine speed, but scheduling noise on a loaded
// box still moves them; 0.6 passes that noise and fails a collapse
// (a 5x scaling win degrading to parity).
const ratioSlackFactor = 0.6

// Benchmark is one benchmark's result. A `-count>1` run emits the same
// benchmark name several times; those lines are aggregated into one
// entry whose metrics are the arithmetic means across runs, with
// Samples recording how many lines were folded in.
type Benchmark struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix trimmed.
	Name string `json:"name"`
	// Iterations is the total b.N across the aggregated lines.
	Iterations int64 `json:"iterations"`
	// Samples is the number of result lines aggregated; omitted when 1.
	Samples int `json:"samples,omitempty"`
	// Metrics maps unit → mean value across samples, e.g.
	// "ns/op": 22844256.
	Metrics map[string]float64 `json:"metrics"`
}

// Baseline is the full document emitted on stdout.
type Baseline struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	checkPath := flag.String("check", "",
		"compare stdin against this BENCH_*.json baseline's allocs/op instead of emitting JSON")
	flag.Parse()
	base, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *checkPath != "" {
		if err := check(base, *checkPath, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// check compares cur against the baseline at path and errors when any
// benchmark's allocs/op exceeds baseline*allocSlackFactor +
// allocSlackFloor, or any "x-vs-*" ratio metric falls below
// baseline*ratioSlackFactor. Benchmarks absent from the baseline, or
// without a gated metric on either side, are reported and skipped.
func check(cur *Baseline, path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var ref Baseline
	if err := json.Unmarshal(data, &ref); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	refByName := make(map[string]Benchmark, len(ref.Benchmarks))
	for _, b := range ref.Benchmarks {
		refByName[b.Name] = b
	}
	compared := 0
	var regressions []string
	for _, b := range cur.Benchmarks {
		rb, ok := refByName[b.Name]
		if !ok {
			fmt.Fprintf(w, "skip %s: not in %s (run `make bench` to record it)\n", b.Name, path)
			continue
		}
		gated := 0
		if refAllocs, refOK := rb.Metrics["allocs/op"]; refOK {
			if curAllocs, curOK := b.Metrics["allocs/op"]; curOK {
				gated++
				limit := refAllocs*allocSlackFactor + allocSlackFloor
				if curAllocs > limit {
					regressions = append(regressions, fmt.Sprintf(
						"%s: %.0f allocs/op, baseline %.0f (limit %.0f)", b.Name, curAllocs, refAllocs, limit))
					fmt.Fprintf(w, "FAIL %s: %.0f allocs/op exceeds limit %.0f (baseline %.0f)\n",
						b.Name, curAllocs, limit, refAllocs)
				} else {
					fmt.Fprintf(w, "ok   %s: %.0f allocs/op (baseline %.0f, limit %.0f)\n",
						b.Name, curAllocs, refAllocs, limit)
				}
			}
		}
		for _, unit := range ratioUnits(rb) {
			refRatio := rb.Metrics[unit]
			curRatio, curOK := b.Metrics[unit]
			if !curOK {
				continue
			}
			gated++
			floor := refRatio * ratioSlackFactor
			if curRatio < floor {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.2f %s, baseline %.2f (floor %.2f)", b.Name, curRatio, unit, refRatio, floor))
				fmt.Fprintf(w, "FAIL %s: %.2f %s below floor %.2f (baseline %.2f)\n",
					b.Name, curRatio, unit, floor, refRatio)
			} else {
				fmt.Fprintf(w, "ok   %s: %.2f %s (baseline %.2f, floor %.2f)\n",
					b.Name, curRatio, unit, refRatio, floor)
			}
		}
		if gated == 0 {
			fmt.Fprintf(w, "skip %s: no gated metric on both sides (allocs/op or x-vs-*)\n", b.Name)
			continue
		}
		compared += gated
	}
	if compared == 0 {
		return fmt.Errorf("no benchmark on stdin matched %s", path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark regression(s):\n\t%s",
			len(regressions), strings.Join(regressions, "\n\t"))
	}
	return nil
}

// ratioUnits lists a benchmark's gated ratio metrics ("x-vs-*" units)
// in sorted order, so the check's report lines are deterministic.
func ratioUnits(b Benchmark) []string {
	var units []string
	for unit := range b.Metrics {
		if strings.HasPrefix(unit, "x-vs-") {
			units = append(units, unit)
		}
	}
	sort.Strings(units)
	return units
}

func parse(sc *bufio.Scanner) (*Baseline, error) {
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	base := &Baseline{}
	// sums accumulates repeated lines per name (a -count>1 run) in
	// first-seen order; entries are finalized into means afterwards.
	sums := make(map[string]*benchSum)
	var order []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			base.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			base.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			base.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			base.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			s := sums[b.Name]
			if s == nil {
				s = &benchSum{metrics: make(map[string]float64)}
				sums[b.Name] = s
				order = append(order, b.Name)
			}
			s.samples++
			s.iterations += b.Iterations
			for unit, v := range b.Metrics {
				s.metrics[unit] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	for _, name := range order {
		base.Benchmarks = append(base.Benchmarks, sums[name].finalize(name))
	}
	return base, nil
}

// benchSum accumulates one benchmark's repeated result lines.
type benchSum struct {
	samples    int
	iterations int64
	metrics    map[string]float64
}

// finalize turns accumulated sums into the mean-valued Benchmark.
func (s *benchSum) finalize(name string) Benchmark {
	b := Benchmark{Name: name, Iterations: s.iterations, Metrics: make(map[string]float64, len(s.metrics))}
	for unit, total := range s.metrics {
		b.Metrics[unit] = total / float64(s.samples)
	}
	if s.samples > 1 {
		b.Samples = s.samples
	}
	return b
}

// parseLine parses "BenchmarkName-8  3  123 ns/op  456 B/op ..." into a
// Benchmark. Malformed lines are skipped rather than fatal so stray
// test output interleaved with the bench stream cannot break the
// conversion.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
