package main

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseText(t *testing.T, text string) *Baseline {
	t.Helper()
	base, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	return base
}

// TestSingleRun: one line per benchmark stays byte-compatible — no
// samples field, iterations as printed.
func TestSingleRun(t *testing.T) {
	base := parseText(t, `
goos: linux
pkg: exptrain
BenchmarkFullGame-8   45   24600000 ns/op   123456 B/op   12000 allocs/op
`)
	if len(base.Benchmarks) != 1 {
		t.Fatalf("want 1 benchmark, got %d", len(base.Benchmarks))
	}
	b := base.Benchmarks[0]
	if b.Name != "BenchmarkFullGame" || b.Iterations != 45 || b.Samples != 0 {
		t.Errorf("unexpected benchmark: %+v", b)
	}
	if b.Metrics["ns/op"] != 24600000 || b.Metrics["allocs/op"] != 12000 {
		t.Errorf("unexpected metrics: %v", b.Metrics)
	}
}

// TestCountAggregation: a -count=3 run folds into one entry with mean
// metrics, summed iterations, and the sample count recorded.
func TestCountAggregation(t *testing.T) {
	base := parseText(t, `
BenchmarkG1-8   100   10 ns/op   5 allocs/op
BenchmarkG1-8   110   20 ns/op   5 allocs/op
BenchmarkG1-8   120   60 ns/op   5 allocs/op
BenchmarkOther-8  7  1000 ns/op
`)
	if len(base.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d: %+v", len(base.Benchmarks), base.Benchmarks)
	}
	g1 := base.Benchmarks[0]
	if g1.Name != "BenchmarkG1" {
		t.Fatalf("first-seen order not kept: %+v", base.Benchmarks)
	}
	if g1.Samples != 3 || g1.Iterations != 330 {
		t.Errorf("want samples=3 iterations=330, got %+v", g1)
	}
	if math.Abs(g1.Metrics["ns/op"]-30) > 1e-9 || math.Abs(g1.Metrics["allocs/op"]-5) > 1e-9 {
		t.Errorf("want mean ns/op=30 allocs/op=5, got %v", g1.Metrics)
	}
	if other := base.Benchmarks[1]; other.Samples != 0 || other.Iterations != 7 {
		t.Errorf("single-sample entry mangled: %+v", other)
	}
}

// TestMalformedLinesSkipped: interleaved test output cannot break the
// stream, and a stream with no valid lines errors.
func TestMalformedLinesSkipped(t *testing.T) {
	base := parseText(t, `
BenchmarkOK-8   10   100 ns/op
Benchmark oops not a line
BenchmarkNoMetrics-8   10
BenchmarkOK-8   10   300 ns/op
`)
	if len(base.Benchmarks) != 1 || base.Benchmarks[0].Samples != 2 {
		t.Fatalf("want 1 aggregated benchmark with 2 samples, got %+v", base.Benchmarks)
	}
	if base.Benchmarks[0].Metrics["ns/op"] != 200 {
		t.Errorf("want mean 200 ns/op, got %v", base.Benchmarks[0].Metrics)
	}
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\nok\n"))); err == nil {
		t.Error("benchmark-free stream should error")
	}
}

// writeBaseline marshals a Baseline to a temp file for check tests.
func writeBaseline(t *testing.T, base *Baseline) string {
	t.Helper()
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCheckPassesWithinSlack: allocs/op at or under baseline*1.5+64
// passes; benchmarks absent from the baseline or without allocs/op are
// skipped, not failed.
func TestCheckPassesWithinSlack(t *testing.T) {
	path := writeBaseline(t, &Baseline{Benchmarks: []Benchmark{
		{Name: "BenchmarkFullGame", Metrics: map[string]float64{"allocs/op": 100}},
		{Name: "BenchmarkTimingOnly", Metrics: map[string]float64{"ns/op": 5}},
	}})
	cur := parseText(t, `
BenchmarkFullGame-8   1   100 ns/op   214 allocs/op
BenchmarkBrandNew-8   1   100 ns/op   9999 allocs/op
BenchmarkTimingOnly-8   1   100 ns/op   7 allocs/op
`)
	var out strings.Builder
	if err := check(cur, path, &out); err != nil {
		t.Fatalf("check failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"ok   BenchmarkFullGame",
		"skip BenchmarkBrandNew",
		"skip BenchmarkTimingOnly",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestCheckFailsOnRegression: exceeding the ceiling errors and names
// the offender.
func TestCheckFailsOnRegression(t *testing.T) {
	path := writeBaseline(t, &Baseline{Benchmarks: []Benchmark{
		{Name: "BenchmarkFullGame", Metrics: map[string]float64{"allocs/op": 100}},
	}})
	cur := parseText(t, "BenchmarkFullGame-8   1   100 ns/op   215 allocs/op\n")
	var out strings.Builder
	err := check(cur, path, &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkFullGame") {
		t.Fatalf("want regression error naming BenchmarkFullGame, got %v", err)
	}
}

// TestCheckErrorsWhenNothingCompared: a stream that matches no baseline
// entry must not silently pass.
func TestCheckErrorsWhenNothingCompared(t *testing.T) {
	path := writeBaseline(t, &Baseline{Benchmarks: []Benchmark{
		{Name: "BenchmarkFullGame", Metrics: map[string]float64{"allocs/op": 100}},
	}})
	cur := parseText(t, "BenchmarkUnrelated-8   1   100 ns/op   5 allocs/op\n")
	if err := check(cur, path, io.Discard); err == nil {
		t.Fatal("want error when no benchmark could be compared")
	}
}
