// Command etlabel is the interactive exploratory-training session: a
// human annotator labels tuple pairs selected by the learner, and the
// learner's belief over approximate FDs converges to the annotator's —
// the system the paper's framework is built for.
//
// Each round the learner presents pairs of tuples. For every pair the
// annotator answers with:
//
//	<enter>          the pair looks clean
//	attr[,attr...]   these attributes' values are erroneous in this pair
//	a                abstain (not sure)
//	q                finish the session
//
// After every round the tool prints the learner's current top
// hypotheses with 90% credible intervals. Sessions can be checkpointed
// and resumed with -save / -resume.
//
// Usage:
//
//	etlabel -in data.csv [-k 5] [-rounds 10] [-method StochasticUS]
//	        [-maxlhs 2] [-save session.json] [-resume session.json]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/game"
	"exptrain/internal/persist"
	"exptrain/internal/sampling"
)

func main() {
	var (
		in     = flag.String("in", "", "input CSV file (required)")
		k      = flag.Int("k", 5, "pairs presented per round")
		rounds = flag.Int("rounds", 10, "maximum rounds")
		method = flag.String("method", "StochasticUS", "sampler: Random, US, StochasticBR, StochasticUS, QBC, EpsilonGreedy")
		maxLHS = flag.Int("maxlhs", 2, "maximum LHS size of the hypothesis space")
		seed   = flag.Uint64("seed", 1, "session seed")
		save   = flag.String("save", "", "write a session snapshot here on exit")
		resume = flag.String("resume", "", "resume from a session snapshot")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := config{
		k: *k, rounds: *rounds, method: *method,
		maxLHS: *maxLHS, seed: *seed, save: *save, resume: *resume,
	}
	if err := run(*in, cfg, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "etlabel:", err)
		os.Exit(1)
	}
}

type config struct {
	k, rounds, maxLHS int
	method            string
	seed              uint64
	save, resume      string
}

// run drives the session against the given input/output streams (split
// out from main so tests can script a session).
func run(inPath string, cfg config, in io.Reader, out io.Writer) error {
	rel, err := dataset.ReadCSVFile(inPath)
	if err != nil {
		return err
	}
	sampler, err := sampling.ByName(cfg.method, sampling.DefaultGamma)
	if err != nil {
		return err
	}

	var session *game.Session
	if cfg.resume != "" {
		snap, err := persist.ReadFile(cfg.resume)
		if err != nil {
			return err
		}
		session, err = game.ResumeSession(snap, game.SessionConfig{
			Relation: rel, Sampler: sampler, K: cfg.k, Seed: cfg.seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "resumed session: %d hypotheses, %d past rounds\n",
			session.Belief().Size(), session.Rounds())
	} else {
		fds, err := fd.Enumerate(fd.SpaceConfig{Arity: rel.Schema().Arity(), MaxLHS: cfg.maxLHS})
		if err != nil {
			return err
		}
		space, err := fd.NewSpace(fds)
		if err != nil {
			return err
		}
		session, err = game.NewSession(game.SessionConfig{
			Relation: rel, Space: space, Sampler: sampler, K: cfg.k, Seed: cfg.seed,
		})
		if err != nil {
			return err
		}
	}

	names := rel.Schema().Names()
	reader := bufio.NewScanner(in)
	fmt.Fprintf(out, "loaded %d rows × %d attributes; hypothesis space: %d FDs; sampler: %s\n",
		rel.NumRows(), rel.Schema().Arity(), session.Belief().Size(), sampler.Name())
	fmt.Fprintln(out, "answer per pair: <enter>=clean, attr[,attr]=erroneous cells, a=abstain, q=quit")

	quit := false
	for round := 0; round < cfg.rounds && !quit; round++ {
		presented, err := session.Next()
		if errors.Is(err, game.ErrPoolExhausted) {
			fmt.Fprintln(out, "no fresh pairs left; ending session")
			break
		}
		if err != nil {
			return err
		}

		var labeled []belief.Labeling
		fmt.Fprintf(out, "\n--- round %d ---\n", session.Rounds()+1)
		for i, p := range presented {
			printPair(out, rel, names, i+1, p)
			l, q, err := readLabeling(reader, out, rel.Schema(), p)
			if err != nil {
				return err
			}
			labeled = append(labeled, l)
			if q {
				quit = true
				break
			}
		}
		if err := session.Submit(labeled); err != nil {
			return err
		}
		if recs := session.Records(); len(recs) > 0 {
			rec := recs[len(recs)-1]
			fmt.Fprintf(out, "round %d scored: MAE vs reference %.4f, payoff %.4f\n",
				session.Rounds(), rec.MAE, rec.TrainerPayoff)
		}
		printTop(out, session.Belief(), names, 5)
	}

	if cfg.save != "" {
		snap, err := session.Snapshot()
		if err != nil {
			return err
		}
		if err := snap.WriteFile(cfg.save); err != nil {
			return err
		}
		fmt.Fprintf(out, "session saved to %s\n", cfg.save)
	}
	fmt.Fprintln(out, "\nfinal model (top 5 hypotheses):")
	printTop(out, session.Belief(), names, 5)
	return nil
}

// printPair renders the two tuples side by side with attribute names.
func printPair(out io.Writer, rel *dataset.Relation, names []string, n int, p dataset.Pair) {
	fmt.Fprintf(out, "pair %d (rows %d and %d):\n", n, p.A, p.B)
	for j, name := range names {
		marker := " "
		if rel.Value(p.A, j) != rel.Value(p.B, j) {
			marker = "*"
		}
		fmt.Fprintf(out, "  %s %-16s %-24q %-24q\n", marker, name, rel.Value(p.A, j), rel.Value(p.B, j))
	}
	fmt.Fprint(out, "violation? ")
}

// readLabeling parses one annotator answer.
func readLabeling(reader *bufio.Scanner, out io.Writer, schema *dataset.Schema, p dataset.Pair) (belief.Labeling, bool, error) {
	for {
		if !reader.Scan() {
			// EOF ends the session as if the annotator quit; remaining
			// pairs in the round count as abstained.
			return belief.Labeling{Pair: p, Abstained: true}, true, reader.Err()
		}
		answer := strings.TrimSpace(reader.Text())
		switch answer {
		case "":
			return belief.Labeling{Pair: p}, false, nil
		case "a", "A":
			return belief.Labeling{Pair: p, Abstained: true}, false, nil
		case "q", "Q":
			return belief.Labeling{Pair: p, Abstained: true}, true, nil
		}
		var marked fd.AttrSet
		ok := true
		for _, name := range strings.Split(answer, ",") {
			name = strings.TrimSpace(name)
			idx, found := schema.Index(name)
			if !found {
				fmt.Fprintf(out, "unknown attribute %q; try again: ", name)
				ok = false
				break
			}
			marked = marked.Add(idx)
		}
		if ok {
			return belief.Labeling{Pair: p, Marked: marked}, false, nil
		}
	}
}

// printTop renders the learner's current leading hypotheses with 90%
// credible intervals.
func printTop(out io.Writer, b *belief.Belief, names []string, k int) {
	fmt.Fprintln(out, "current top hypotheses:")
	for rank, i := range b.TopK(k) {
		f := b.Space().FD(i)
		lo, hi := b.CredibleInterval(i, 0.9)
		fmt.Fprintf(out, "  %d. %-30s confidence %.3f (90%% CI %.3f-%.3f)\n",
			rank+1, f.Render(names), b.Confidence(i), lo, hi)
	}
}
