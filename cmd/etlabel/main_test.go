package main

import (
	"os"
	"strings"
	"testing"
)

const testCSV = `Player,Team,City
Carter,Lakers,L.A.
Jordan,Lakers,Chicago
Smith,Bulls,Chicago
Black,Bulls,Chicago
Miller,Clippers,L.A.
Davis,Lakers,L.A.
Stone,Bulls,Chicago
`

func writeCSV(t *testing.T) string {
	t.Helper()
	path := t.TempDir() + "/data.csv"
	if err := os.WriteFile(path, []byte(testCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScriptedSession(t *testing.T) {
	path := writeCSV(t)
	// Answer: first pair clean, second marked on City, third abstain,
	// then quit.
	input := "\nCity\na\nq\n"
	var out strings.Builder
	err := run(path, config{
		k: 4, rounds: 3, maxLHS: 1, method: "Random", seed: 1,
	}, strings.NewReader(input), &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"round 1", "current top hypotheses", "final model"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestSessionEOFEndsCleanly(t *testing.T) {
	path := writeCSV(t)
	var out strings.Builder
	err := run(path, config{
		k: 3, rounds: 5, maxLHS: 1, method: "Random", seed: 2,
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "final model") {
		t.Error("EOF session did not reach the final model")
	}
}

func TestUnknownAttributeRetries(t *testing.T) {
	path := writeCSV(t)
	input := "Nope\nCity\nq\n"
	var out strings.Builder
	err := run(path, config{
		k: 2, rounds: 1, maxLHS: 1, method: "Random", seed: 3,
	}, strings.NewReader(input), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `unknown attribute "Nope"`) {
		t.Errorf("missing retry prompt:\n%s", out.String())
	}
}

func TestSaveAndResume(t *testing.T) {
	path := writeCSV(t)
	snapPath := t.TempDir() + "/session.json"

	var out1 strings.Builder
	err := run(path, config{
		k: 2, rounds: 1, maxLHS: 1, method: "Random", seed: 4, save: snapPath,
	}, strings.NewReader("\n\n"), &out1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out1.String(), "session saved") {
		t.Fatalf("snapshot not written:\n%s", out1.String())
	}

	var out2 strings.Builder
	err = run(path, config{
		k: 2, rounds: 1, maxLHS: 1, method: "Random", seed: 4, resume: snapPath,
	}, strings.NewReader("q\n"), &out2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "resumed session") {
		t.Fatalf("resume banner missing:\n%s", out2.String())
	}
}

func TestResumeSchemaMismatch(t *testing.T) {
	path := writeCSV(t)
	snapPath := t.TempDir() + "/session.json"
	var out strings.Builder
	if err := run(path, config{
		k: 1, rounds: 1, maxLHS: 1, method: "Random", seed: 5, save: snapPath,
	}, strings.NewReader("\n"), &out); err != nil {
		t.Fatal(err)
	}

	otherPath := t.TempDir() + "/other.csv"
	if err := os.WriteFile(otherPath, []byte("x,y\n1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(otherPath, config{
		k: 1, rounds: 1, maxLHS: 1, method: "Random", seed: 5, resume: snapPath,
	}, strings.NewReader("q\n"), &out)
	if err == nil {
		t.Fatal("resuming against a different schema should error")
	}
}

func TestBadMethodAndMissingFile(t *testing.T) {
	path := writeCSV(t)
	var out strings.Builder
	if err := run(path, config{k: 1, rounds: 1, maxLHS: 1, method: "bogus", seed: 1},
		strings.NewReader(""), &out); err == nil {
		t.Error("unknown sampler should error")
	}
	if err := run(path+".missing", config{k: 1, rounds: 1, maxLHS: 1, method: "Random", seed: 1},
		strings.NewReader(""), &out); err == nil {
		t.Error("missing file should error")
	}
}
