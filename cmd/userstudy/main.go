// Command userstudy runs the simulated user study of Appendix A and
// prints its two analyses: Table 3 (per-scenario hypothesis drift) and
// Figure 2 (MRR@5 of the candidate human-learning models), plus the
// scenario definitions of Table 2 with -scenarios.
//
// Usage:
//
//	userstudy [-participants 20] [-rows 200] [-seed 1] [-scenarios]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"exptrain/internal/fd"
	"exptrain/internal/userstudy"
)

func main() {
	var (
		participants  = flag.Int("participants", 20, "number of simulated participants")
		rows          = flag.Int("rows", 200, "rows per scenario dataset")
		seed          = flag.Uint64("seed", 1, "simulation seed")
		showScenarios = flag.Bool("scenarios", false, "also print the Table 2 scenario definitions")
	)
	flag.Parse()
	if err := run(os.Stdout, *participants, *rows, *seed, *showScenarios); err != nil {
		fmt.Fprintln(os.Stderr, "userstudy:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, participants, rows int, seed uint64, showScenarios bool) error {
	study, err := userstudy.Simulate(userstudy.StudyConfig{
		Participants: participants,
		Rows:         rows,
		Seed:         seed,
	})
	if err != nil {
		return err
	}

	if showScenarios {
		fmt.Fprintln(w, "== Table 2: scenarios ==")
		for _, sc := range study.Scenarios {
			names := sc.Rel.Schema().Names()
			fmt.Fprintf(w, "scenario %d (%s): attributes %v\n", sc.ID, sc.Domain, names)
			for _, f := range sc.Target {
				fmt.Fprintf(w, "  target:      %s (g1=%.4f)\n", f.Render(names), fd.G1(f, sc.Rel))
			}
			for _, f := range sc.Alternatives {
				fmt.Fprintf(w, "  alternative: %s (g1=%.4f)\n", f.Render(names), fd.G1(f, sc.Rel))
			}
		}
	}

	fmt.Fprintln(w, "== Table 3: average f1-score change between labeling rounds ==")
	if err := userstudy.WriteTable3(w, userstudy.HypothesisDrift(study)); err != nil {
		return err
	}

	fmt.Fprintln(w, "== Figure 2: MRR@5 per scenario (exact and \"+\" variants) ==")
	fits, err := userstudy.FitModels(study)
	if err != nil {
		return err
	}
	if err := userstudy.WriteFigure2(w, fits); err != nil {
		return err
	}

	sums, err := userstudy.Summarize(study)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Overall ==")
	for _, s := range sums {
		fmt.Fprintf(w, "%-18s MRR=%.4f top1=%.2f top2=%.2f (n=%d)\n",
			s.Model, s.OverallMRR, s.Top1Rate, s.Top2Rate, s.TotalPredictions)
	}

	perP, err := userstudy.FitByParticipant(study)
	if err != nil {
		return err
	}
	wins := 0
	for _, f := range perP {
		if f.FPWins() {
			wins++
		}
	}
	fmt.Fprintf(w, "== Per participant ==\nFP fits better for %d of %d participants\n", wins, len(perP))
	for _, f := range perP {
		marker := "FP"
		if !f.FPWins() {
			marker = "HT"
		}
		fmt.Fprintf(w, "  participant %2d (%-7s): FP %.3f vs HT %.3f → %s\n",
			f.ParticipantID, f.Kind, f.FPMRR, f.HTMRR, marker)
	}
	return nil
}
