package main

import (
	"strings"
	"testing"
)

func TestUserstudyCLI(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 3, 80, 1, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 2", "scenario 1 (Airport)", "target:",
		"Table 3", "Figure 2", "Overall", "Per participant",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestUserstudyCLIWithoutScenarios(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 2, 80, 2, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Table 2") {
		t.Error("scenario dump printed without -scenarios")
	}
}
