// Command fddiscover finds approximate functional dependencies in a CSV
// file: all minimal, nontrivial, normalized FDs whose scaled g₁ measure
// is at most the threshold.
//
// Usage:
//
//	fddiscover -in data.csv [-maxg1 0.05] [-maxlhs 3]
//
// Output is one FD per line with its g₁ measure and pair-conditional
// confidence, sorted by the lattice's canonical order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
)

func main() {
	var (
		in         = flag.String("in", "", "input CSV file with a header row (required)")
		maxG1      = flag.Float64("maxg1", 0.05, "g1 threshold: report FDs with at most this violation measure")
		maxLHS     = flag.Int("maxlhs", 3, "maximum LHS attributes to explore")
		minConf    = flag.Float64("minconf", 0, "minimum pair-conditional confidence (0 disables)")
		minSupport = flag.Int("minsupport", 0, "minimum LHS-agreeing pairs (0 disables)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *in, *maxG1, *maxLHS, *minConf, *minSupport); err != nil {
		fmt.Fprintln(os.Stderr, "fddiscover:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, in string, maxG1 float64, maxLHS int, minConf float64, minSupport int) error {
	rel, err := dataset.ReadCSVFile(in)
	if err != nil {
		return err
	}
	found, err := fd.Discover(rel, fd.DiscoveryConfig{
		MaxG1:         maxG1,
		MaxLHS:        maxLHS,
		MinConfidence: minConf,
		MinSupport:    minSupport,
	})
	if err != nil {
		return err
	}
	names := rel.Schema().Names()
	fmt.Fprintf(w, "# %d rows, %d attributes, %d approximate FDs at g1 <= %v\n",
		rel.NumRows(), rel.Schema().Arity(), len(found), maxG1)
	for _, f := range found {
		st := fd.ComputeStats(f, rel)
		fmt.Fprintf(w, "%-40s g1=%.6f confidence=%.4f violations=%d\n",
			f.Render(names), st.G1(), st.Confidence(), st.Violating)
	}
	return nil
}
