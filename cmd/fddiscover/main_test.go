package main

import (
	"os"
	"strings"
	"testing"
)

func TestDiscoverCLI(t *testing.T) {
	csv := "a,b,c\n"
	for i := 0; i < 40; i++ {
		k := string(rune('0' + i%4))
		csv += k + ",f" + k + "," + string(rune('x'+i%3)) + "\n"
	}
	path := t.TempDir() + "/data.csv"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(&sb, path, 0, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "a->b") {
		t.Errorf("a→b not discovered:\n%s", out)
	}
	if !strings.Contains(out, "40 rows, 3 attributes") {
		t.Errorf("header wrong:\n%s", out)
	}
}

func TestDiscoverCLIConfidenceFloor(t *testing.T) {
	csv := "a,b\n"
	for i := 0; i < 30; i++ {
		// b is random relative to a at ~50% compliance within groups.
		csv += string(rune('0'+i%3)) + "," + string(rune('x'+i%2)) + "\n"
	}
	path := t.TempDir() + "/low.csv"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	var loose, strict strings.Builder
	if err := run(&loose, path, 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(&strict, path, 1, 1, 0.95, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Count(strict.String(), "->") >= strings.Count(loose.String(), "->") {
		t.Error("confidence floor did not filter anything")
	}
}

func TestDiscoverCLIMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, t.TempDir()+"/missing.csv", 0.05, 2, 0, 0); err == nil {
		t.Fatal("missing file should error")
	}
}
