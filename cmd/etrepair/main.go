// Command etrepair cleans a CSV file end to end: discover approximate
// FDs on the dirty data, derive minority-to-plurality cell repairs from
// the believed dependencies, and write the repaired CSV plus a repair
// report.
//
// Usage:
//
//	etrepair -in dirty.csv -out repaired.csv [-maxg1 0.02] [-maxlhs 2]
//	         [-minconf 0.85] [-minsupport 30] [-report repairs.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/repair"
)

func main() {
	var (
		in         = flag.String("in", "", "input CSV file (required)")
		out        = flag.String("out", "", "output CSV for the repaired data (required)")
		report     = flag.String("report", "", "repair report CSV (default: <out>.repairs.csv)")
		maxG1      = flag.Float64("maxg1", 0.02, "g1 threshold for FD discovery")
		maxLHS     = flag.Int("maxlhs", 2, "maximum LHS attributes")
		minConf    = flag.Float64("minconf", 0.85, "minimum pair-conditional confidence for a discovered FD")
		minSupport = flag.Int("minsupport", 30, "minimum agreeing pairs for a discovered FD")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *report == "" {
		*report = *out + ".repairs.csv"
	}
	if err := run(*in, *out, *report, *maxG1, *maxLHS, *minConf, *minSupport); err != nil {
		fmt.Fprintln(os.Stderr, "etrepair:", err)
		os.Exit(1)
	}
}

func run(in, out, report string, maxG1 float64, maxLHS int, minConf float64, minSupport int) error {
	rel, err := dataset.ReadCSVFile(in)
	if err != nil {
		return err
	}
	found, err := fd.Discover(rel, fd.DiscoveryConfig{
		MaxG1:         maxG1,
		MaxLHS:        maxLHS,
		MinConfidence: minConf,
		MinSupport:    minSupport,
	})
	if err != nil {
		return err
	}
	// A minimal cover keeps the repair model small without losing
	// coverage; confidence comes from each FD's measured compliance.
	cover := fd.MinimalCover(found)
	names := rel.Schema().Names()
	fmt.Printf("discovered %d approximate FDs (%d after minimal cover):\n", len(found), len(cover))
	believed := make([]repair.BelievedFD, 0, len(cover))
	for _, f := range cover {
		st := fd.ComputeStats(f, rel)
		fmt.Printf("  %-40s g1=%.5f confidence=%.4f\n", f.Render(names), st.G1(), st.Confidence())
		believed = append(believed, repair.BelievedFD{FD: f, Confidence: st.Confidence()})
	}

	suggestions, err := repair.Suggest(rel, believed, repair.Config{})
	if err != nil {
		return err
	}
	repaired, err := repair.Apply(rel, suggestions)
	if err != nil {
		return err
	}
	if err := repaired.WriteCSVFile(out); err != nil {
		return err
	}
	if err := writeReport(report, suggestions, rel.Schema()); err != nil {
		return err
	}
	fmt.Printf("applied %d repairs\nrepaired data: %s\nreport: %s\n", len(suggestions), out, report)
	return nil
}

// writeReport emits one line per repair with its confidence and source
// FD.
func writeReport(path string, suggestions []repair.Suggestion, schema *dataset.Schema) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"row", "attribute", "old", "new", "confidence", "source_fd"}); err != nil {
		f.Close()
		return err
	}
	names := schema.Names()
	for _, s := range suggestions {
		rec := []string{
			strconv.Itoa(s.Row), schema.Name(s.Attr), s.Old, s.New,
			strconv.FormatFloat(s.Confidence, 'f', 4, 64),
			s.Source.Render(names),
		}
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
