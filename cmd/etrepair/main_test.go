package main

import (
	"os"
	"strings"
	"testing"

	"exptrain/internal/dataset"
	"exptrain/internal/errgen"
	"exptrain/internal/fd"
)

func buildDirtyCSV(t *testing.T) (string, *errgen.Result, fd.FD) {
	t.Helper()
	clean := dataset.New(dataset.MustSchema("a", "b", "c"))
	for i := 0; i < 150; i++ {
		k := string(rune('0' + i%8))
		// b is a non-injective function of a (two a-values share each
		// b-value), so only a→b is discovered, not its inverse.
		clean.MustAppend(dataset.Tuple{k, "f" + string(rune('0'+(i%8)/2)), string(rune('x' + i%3))})
	}
	target := fd.MustNew(fd.NewAttrSet(0), 1)
	res, err := errgen.InjectDegree(clean, errgen.DegreeConfig{
		FDs: []fd.FD{target}, Degree: 0.05, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/dirty.csv"
	if err := res.Rel.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	return path, res, target
}

func TestRepairPipeline(t *testing.T) {
	in, ground, target := buildDirtyCSV(t)
	dir := t.TempDir()
	out := dir + "/repaired.csv"
	report := dir + "/report.csv"

	if err := run(in, out, report, 0.02, 1, 0.85, 30); err != nil {
		t.Fatal(err)
	}
	repaired, err := dataset.ReadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// The repaired data satisfies the planted FD better than the dirty
	// data; with isolated errors it should be exactly repaired.
	dirty, err := dataset.ReadCSVFile(in)
	if err != nil {
		t.Fatal(err)
	}
	if fd.G1(target, repaired) >= fd.G1(target, dirty) {
		t.Fatalf("repair did not improve g1: %v → %v",
			fd.G1(target, dirty), fd.G1(target, repaired))
	}
	// Every corrupted cell should be restored to its original value.
	restored := 0
	for _, ch := range ground.Log {
		if repaired.Value(ch.Row, ch.Attr) == ch.Old {
			restored++
		}
	}
	if restored < len(ground.Log)*8/10 {
		t.Errorf("restored only %d/%d corrupted cells", restored, len(ground.Log))
	}
	// Report exists and has a header plus rows.
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "row,attribute,old,new,confidence,source_fd") {
		t.Errorf("report header wrong: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestRepairPipelineErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir+"/missing.csv", dir+"/out.csv", dir+"/r.csv", 0.02, 1, 0.85, 30); err == nil {
		t.Fatal("missing input should error")
	}
}
