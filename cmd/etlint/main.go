// Command etlint runs the project's determinism & concurrency lint
// rules (internal/lint) over the whole module and exits non-zero on
// findings. It is part of `make verify`:
//
//	etlint [-rules detrand,maporder] [-json] [-list] [./...]
//
// Package patterns are accepted for muscle-memory compatibility with
// go vet, but the tool always lints the entire module containing the
// working directory — the invariants it checks are repo-wide.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"exptrain/internal/lint"
)

func main() {
	var (
		rulesCSV = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array instead of text")
		list     = flag.Bool("list", false, "print the rule registry and exit")
	)
	flag.Parse()
	code, err := run(os.Stdout, *rulesCSV, *jsonOut, *list, ".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "etlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the lint pass rooted at the module containing dir and
// reports the process exit code.
func run(w io.Writer, rulesCSV string, jsonOut, list bool, dir string) (int, error) {
	rules := lint.AllRules()
	if rulesCSV != "" {
		var err error
		rules, err = lint.RulesByID(strings.Split(rulesCSV, ","))
		if err != nil {
			return 2, err
		}
	}
	if list {
		for _, r := range rules {
			fmt.Fprintf(w, "%-12s %s\n", r.ID(), r.Doc())
		}
		return 0, nil
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		return 2, err
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		return 2, err
	}
	findings := lint.Run(pkgs, rules)
	if findings == nil {
		findings = []lint.Finding{} // -json promises an array, not null
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return 2, err
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(w, f)
		}
	}
	if len(findings) > 0 {
		if !jsonOut {
			fmt.Fprintf(w, "etlint: %d finding(s)\n", len(findings))
		}
		return 1, nil
	}
	return 0, nil
}

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
