// Command etlint runs the project's determinism & concurrency lint
// rules (internal/lint) over the whole module and exits non-zero on
// findings. It is part of `make verify`:
//
//	etlint [-rules detrand,maporder] [-json|-sarif] [-audit] [-list]
//	       [-cache auto|off|DIR] [-seq] [./...]
//
// Package patterns are accepted for muscle-memory compatibility with
// go vet, but the tool always lints the entire module containing the
// working directory — the invariants it checks are repo-wide.
//
// -audit prints every //etlint:ignore directive with its reason and
// whether it covered a finding (stale directives are marked and are
// also findings in their own right). -sarif emits a SARIF 2.1.0 log.
// -cache controls the content-hash result cache (default auto: the
// user cache dir); -seq forces the old sequential loader and disables
// the cache — the escape hatch and the benchmark baseline.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"exptrain/internal/lint"
)

// options are the flag-derived settings run executes under.
type options struct {
	rulesCSV string
	jsonOut  bool
	sarifOut bool
	audit    bool
	list     bool
	cache    string // "auto", "off", or a directory
	seq      bool
	dir      string
}

func main() {
	var opt options
	flag.StringVar(&opt.rulesCSV, "rules", "", "comma-separated subset of rules to run (default: all)")
	flag.BoolVar(&opt.jsonOut, "json", false, "emit findings as a JSON array instead of text")
	flag.BoolVar(&opt.sarifOut, "sarif", false, "emit findings as a SARIF 2.1.0 log")
	flag.BoolVar(&opt.audit, "audit", false, "report every etlint:ignore directive with its reason and usage")
	flag.BoolVar(&opt.list, "list", false, "print the rule registry and exit")
	flag.StringVar(&opt.cache, "cache", "auto", "result cache: auto, off, or a directory")
	flag.BoolVar(&opt.seq, "seq", false, "use the sequential loader without caching (benchmark baseline)")
	flag.Parse()
	opt.dir = "."
	code, err := run(os.Stdout, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the lint pass rooted at the module containing opt.dir
// and reports the process exit code.
func run(w io.Writer, opt options) (int, error) {
	rules := lint.AllRules()
	if opt.rulesCSV != "" {
		var err error
		rules, err = lint.RulesByID(strings.Split(opt.rulesCSV, ","))
		if err != nil {
			return 2, err
		}
	}
	if opt.list {
		for _, r := range rules {
			fmt.Fprintf(w, "%-12s %s\n", r.ID(), r.Doc())
		}
		return 0, nil
	}
	if opt.jsonOut && opt.sarifOut {
		return 2, fmt.Errorf("-json and -sarif are mutually exclusive")
	}
	root, err := findModuleRoot(opt.dir)
	if err != nil {
		return 2, err
	}

	var findings []lint.Finding
	var audit []lint.AuditRecord
	if opt.seq {
		pkgs, err := lint.LoadModule(root)
		if err != nil {
			return 2, err
		}
		findings, audit = lint.RunAudit(pkgs, rules)
	} else {
		cacheDir := ""
		switch opt.cache {
		case "auto":
			cacheDir = lint.DefaultCacheDir()
		case "off", "":
		default:
			cacheDir = opt.cache
		}
		findings, audit, err = lint.LintModule(root, rules, cacheDir)
		if err != nil {
			return 2, err
		}
	}
	if findings == nil {
		findings = []lint.Finding{} // -json promises an array, not null
	}

	if opt.audit {
		printAudit(w, audit)
		return 0, nil
	}

	switch {
	case opt.jsonOut:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return 2, err
		}
	case opt.sarifOut:
		data, err := lint.SARIF(findings, rules)
		if err != nil {
			return 2, err
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return 2, err
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(w, f)
		}
	}
	if len(findings) > 0 {
		if !opt.jsonOut && !opt.sarifOut {
			fmt.Fprintf(w, "etlint: %d finding(s)\n", len(findings))
		}
		return 1, nil
	}
	return 0, nil
}

// printAudit renders the suppression audit: one line per directive,
// stale ones marked. The audit is a report, not a gate — stale
// directives fail the normal lint run as "suppress" findings.
func printAudit(w io.Writer, audit []lint.AuditRecord) {
	if len(audit) == 0 {
		fmt.Fprintln(w, "etlint: no suppressions")
		return
	}
	used := 0
	for _, a := range audit {
		mark := "used "
		if !a.Used {
			mark = "STALE"
		} else {
			used++
		}
		fmt.Fprintf(w, "%s %s:%d: %s — %s\n", mark, a.File, a.Line, a.Rule, a.Reason)
	}
	fmt.Fprintf(w, "etlint: %d suppression(s), %d stale\n", len(audit), len(audit)-used)
}

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
