package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestListRules: -list prints every rule with its doc line, including
// the interprocedural ones.
func TestListRules(t *testing.T) {
	var sb strings.Builder
	code, err := run(&sb, options{list: true, dir: "."})
	if err != nil || code != 0 {
		t.Fatalf("run(-list) = %d, %v", code, err)
	}
	for _, id := range []string{"detrand", "detclock", "maporder", "lockedfield", "printclean", "floatcmp",
		"lockorder", "goroleak", "chanlock", "ctxflow", "errkind"} {
		if !strings.Contains(sb.String(), id) {
			t.Errorf("rule %s missing from -list output:\n%s", id, sb.String())
		}
	}
}

// TestListSubset: -rules narrows -list, and unknown rules error.
func TestListSubset(t *testing.T) {
	var sb strings.Builder
	code, err := run(&sb, options{rulesCSV: "detrand,floatcmp", list: true, dir: "."})
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v", code, err)
	}
	if strings.Contains(sb.String(), "maporder") {
		t.Errorf("-rules subset leaked other rules:\n%s", sb.String())
	}
	if code, err := run(&sb, options{rulesCSV: "nosuchrule", list: true, dir: "."}); err == nil || code != 2 {
		t.Errorf("unknown rule: want exit 2 with error, got %d, %v", code, err)
	}
}

// TestModuleClean: the real tree lints clean from a subdirectory (the
// tool walks up to go.mod), in both text and JSON modes.
func TestModuleClean(t *testing.T) {
	var sb strings.Builder
	code, err := run(&sb, options{cache: "off", dir: "."})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("module should lint clean, exit %d:\n%s", code, sb.String())
	}
	if sb.Len() != 0 {
		t.Errorf("clean run should print nothing, got:\n%s", sb.String())
	}

	sb.Reset()
	code, err = run(&sb, options{jsonOut: true, cache: "off", dir: "."})
	if err != nil || code != 0 {
		t.Fatalf("json run = %d, %v", code, err)
	}
	var findings []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, sb.String())
	}
	if len(findings) != 0 {
		t.Errorf("clean run: want empty findings array, got %v", findings)
	}
}

// TestSARIFClean: -sarif always emits a well-formed log with the
// driver's rule table, even with zero findings.
func TestSARIFClean(t *testing.T) {
	var sb strings.Builder
	code, err := run(&sb, options{sarifOut: true, cache: "off", dir: "."})
	if err != nil || code != 0 {
		t.Fatalf("sarif run = %d, %v", code, err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string           `json:"name"`
					Rules []map[string]any `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &log); err != nil {
		t.Fatalf("-sarif output is not JSON: %v\n%s", err, sb.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want one SARIF 2.1.0 run, got version %q runs %d", log.Version, len(log.Runs))
	}
	if got := log.Runs[0].Tool.Driver.Name; got != "etlint" {
		t.Errorf("driver name = %q, want etlint", got)
	}
	if len(log.Runs[0].Tool.Driver.Rules) == 0 {
		t.Errorf("driver rule table is empty")
	}
	if len(log.Runs[0].Results) != 0 {
		t.Errorf("clean tree: want zero SARIF results, got %d", len(log.Runs[0].Results))
	}
}

// TestAudit: -audit lists every suppression with its reason and exits
// zero; the real tree has at least one justified suppression.
func TestAudit(t *testing.T) {
	var sb strings.Builder
	code, err := run(&sb, options{audit: true, cache: "off", dir: "."})
	if err != nil || code != 0 {
		t.Fatalf("audit run = %d, %v", code, err)
	}
	out := sb.String()
	if !strings.Contains(out, "suppression(s)") {
		t.Fatalf("-audit output missing summary line:\n%s", out)
	}
	if strings.Contains(out, "STALE") {
		t.Errorf("real tree must not carry stale suppressions:\n%s", out)
	}
}

// TestCacheRoundTrip: a warm cache run returns the same (clean) result
// as the cold run that populated it.
func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var cold, warm strings.Builder
	if code, err := run(&cold, options{jsonOut: true, cache: dir, dir: "."}); err != nil || code != 0 {
		t.Fatalf("cold run = %d, %v", code, err)
	}
	if code, err := run(&warm, options{jsonOut: true, cache: dir, dir: "."}); err != nil || code != 0 {
		t.Fatalf("warm run = %d, %v", code, err)
	}
	if cold.String() != warm.String() {
		t.Errorf("cold and warm cache runs differ:\ncold: %s\nwarm: %s", cold.String(), warm.String())
	}
}

// TestNoModuleRoot: starting outside any module errors cleanly.
func TestNoModuleRoot(t *testing.T) {
	var sb strings.Builder
	if code, err := run(&sb, options{cache: "off", dir: t.TempDir()}); err == nil || code != 2 {
		t.Errorf("want exit 2 with error outside a module, got %d, %v", code, err)
	}
}
