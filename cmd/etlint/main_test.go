package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestListRules: -list prints every rule with its doc line.
func TestListRules(t *testing.T) {
	var sb strings.Builder
	code, err := run(&sb, "", false, true, ".")
	if err != nil || code != 0 {
		t.Fatalf("run(-list) = %d, %v", code, err)
	}
	for _, id := range []string{"detrand", "detclock", "maporder", "lockedfield", "printclean", "floatcmp"} {
		if !strings.Contains(sb.String(), id) {
			t.Errorf("rule %s missing from -list output:\n%s", id, sb.String())
		}
	}
}

// TestListSubset: -rules narrows -list, and unknown rules error.
func TestListSubset(t *testing.T) {
	var sb strings.Builder
	code, err := run(&sb, "detrand,floatcmp", false, true, ".")
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v", code, err)
	}
	if strings.Contains(sb.String(), "maporder") {
		t.Errorf("-rules subset leaked other rules:\n%s", sb.String())
	}
	if code, err := run(&sb, "nosuchrule", false, true, "."); err == nil || code != 2 {
		t.Errorf("unknown rule: want exit 2 with error, got %d, %v", code, err)
	}
}

// TestModuleClean: the real tree lints clean from a subdirectory (the
// tool walks up to go.mod), in both text and JSON modes.
func TestModuleClean(t *testing.T) {
	var sb strings.Builder
	code, err := run(&sb, "", false, false, ".")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("module should lint clean, exit %d:\n%s", code, sb.String())
	}
	if sb.Len() != 0 {
		t.Errorf("clean run should print nothing, got:\n%s", sb.String())
	}

	sb.Reset()
	code, err = run(&sb, "", true, false, ".")
	if err != nil || code != 0 {
		t.Fatalf("json run = %d, %v", code, err)
	}
	var findings []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, sb.String())
	}
	if len(findings) != 0 {
		t.Errorf("clean run: want empty findings array, got %v", findings)
	}
}

// TestNoModuleRoot: starting outside any module errors cleanly.
func TestNoModuleRoot(t *testing.T) {
	var sb strings.Builder
	if code, err := run(&sb, "", false, false, t.TempDir()); err == nil || code != 2 {
		t.Errorf("want exit 2 with error outside a module, got %d, %v", code, err)
	}
}
