package main

import (
	"strings"
	"testing"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
)

func TestEtgen(t *testing.T) {
	out := t.TempDir() + "/omdb.csv"
	var sb strings.Builder
	if err := run(&sb, "OMDB", 120, 3, out, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "120 rows") {
		t.Errorf("status wrong:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "title,year->genre") {
		t.Errorf("FD listing missing:\n%s", sb.String())
	}
	rel, err := dataset.ReadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 120 {
		t.Fatalf("rows = %d", rel.NumRows())
	}
	// The ground-truth FDs hold on the written file.
	f := fd.MustParse("title,year->genre", rel.Schema())
	if fd.G1(f, rel) != 0 {
		t.Error("exact FD violated in generated CSV")
	}
}

func TestEtgenUnknownDataset(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "nope", 50, 1, t.TempDir()+"/x.csv", false); err == nil {
		t.Fatal("unknown dataset should error")
	}
}
