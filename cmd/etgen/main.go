// Command etgen writes the synthetic stand-in datasets to CSV so the
// other tools (fddiscover, errgen, etlabel, etrepair) can be driven
// end to end without external data.
//
// Usage:
//
//	etgen -dataset OMDB -rows 400 -seed 1 -out omdb.csv [-fds]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"exptrain/internal/datagen"
)

func main() {
	var (
		name    = flag.String("dataset", "OMDB", "dataset: OMDB, AIRPORT, Hospital or Tax")
		rows    = flag.Int("rows", 400, "rows to generate")
		seed    = flag.Uint64("seed", 1, "generation seed")
		out     = flag.String("out", "", "output CSV file (required)")
		showFDs = flag.Bool("fds", false, "also print the ground-truth exact FDs")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *name, *rows, *seed, *out, *showFDs); err != nil {
		fmt.Fprintln(os.Stderr, "etgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, name string, rows int, seed uint64, out string, showFDs bool) error {
	gen, err := datagen.ByName(name)
	if err != nil {
		return err
	}
	ds := gen(rows, seed)
	if err := ds.Rel.WriteCSVFile(out); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s: %d rows × %d attributes\n", out, ds.Rel.NumRows(), ds.Rel.Schema().Arity())
	if showFDs {
		names := ds.Rel.Schema().Names()
		fmt.Fprintln(w, "ground-truth exact FDs:")
		for _, f := range ds.ExactFDs {
			fmt.Fprintf(w, "  %s\n", f.Render(names))
		}
	}
	return nil
}
