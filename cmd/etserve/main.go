// Command etserve hosts many live exploratory-training sessions behind
// an HTTP/JSON API. Each session is an independent learner an annotator
// (or a driving program) advances one round at a time; idle sessions
// are checkpointed to the snapshot store and transparently resumed on
// their next request, and a graceful shutdown checkpoints every live
// session so no submitted round is lost.
//
// Usage:
//
//	etserve [-addr :8080] [-store DIR] [-max-sessions 128]
//	        [-shards 1] [-replicas 1] [-replica-dirs a,b,c]
//	        [-idle-ttl 15m] [-sweep 1m] [-timeout 30s]
//	        [-retry-attempts 4] [-retry-base 5ms] [-retry-max 250ms]
//	        [-max-queued 64] [-drain-batch 16] [-checkpoint-every 0]
//	        [-heartbeat 15s] [-wal] [-wal-segment-bytes N]
//	        [-wal-batch-bytes N] [-wal-compact-every N]
//
// Besides the interactive next/submit loop, clients can POST whole
// windows of labeled rounds to /v1/sessions/{id}/submissions and watch
// them apply over the SSE stream at /v1/sessions/{id}/rounds?stream=1
// (see API.md). -max-queued caps each session's admission queue,
// -drain-batch bounds how many queued rounds one drain applies under a
// single session-lock acquisition, -checkpoint-every snapshots a
// session after that many pool-applied rounds (0 checkpoints only on
// park/shutdown), and -heartbeat paces the SSE keep-alive comments.
//
// -shards splits the serving core into that many independently locked
// shards; requests route to a session's shard by rendezvous hashing on
// its id, so one hot or degraded session domain cannot stall the rest
// (GET /v1/healthz breaks the counters out per shard).
//
// With -store, snapshots go to DIR and survive restarts (resume one
// with POST /v1/sessions {"resume": "<id>", ...}); without it they
// live in memory for the life of the process. -replicas N writes every
// checkpoint to N replica directories (DIR/replica-0..N-1, or the
// explicit comma-separated -replica-dirs list) through a
// write-majority quorum: a checkpoint acks once ⌈(N+1)/2⌉ replicas
// have it durably, reads take the freshest intact copy and repair
// stale or corrupt replicas in passing, so losing a full replica
// directory loses no submitted round. On startup the store is
// scanned: snapshots that fail their checksum are quarantined to
// "<id>.corrupt" (and logged) so one rotten checkpoint cannot block the
// rest from resuming, and orphaned temp files from crashed writers are
// removed; with replicas the scan additionally reconciles the replica
// set, re-writing any replica that missed a checkpoint. Store operations retry with exponential backoff per the
// -retry-* flags; a session whose checkpoint keeps failing stays live
// in degraded mode (GET /v1/healthz reports it and flips to 503 so a
// load balancer can route around the replica). Sessions created with
// "eval": true additionally score the learner's believed model on a
// held-out split every round; GET /v1/sessions/{id}/rounds serves the
// per-round MAE/payoff (and detection F1) series either way. See the
// README for the API routes and a curl transcript.
//
// -wal puts a crash-safe write-ahead log in front of the snapshot
// store (a "wal" subdirectory per store directory): each submitted
// round appends a CRC-framed delta record, batches of records across
// sessions ride one fsync (group commit), and a submit acks once its
// batch is durable — O(round) bytes per submit instead of an O(history)
// snapshot. On startup the log is replayed onto the last snapshots
// (torn tails from a crash are truncated, never trusted), and
// -checkpoint-every N becomes a compaction point: the session's WAL
// tail folds into a fresh snapshot and the log space is reclaimed.
// -wal-segment-bytes, -wal-batch-bytes and -wal-compact-every tune
// rotation, group-commit fairness, and background compaction. With
// -replicas each replica directory gets its own log and appends ack at
// the same write-majority quorum as checkpoints. GET /v1/healthz
// reports per-shard appended/pending counts and log-level fsync
// metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"exptrain/internal/persist"
	"exptrain/internal/persist/wal"
	"exptrain/internal/service"
)

// config is the flag surface of the server.
type config struct {
	addr          string
	storeDir      string
	shards        int
	replicas      int
	replicaDirs   string
	maxSessions   int
	idleTTL       time.Duration
	sweepEvery    time.Duration
	timeout       time.Duration
	retryAttempts int
	retryBase     time.Duration
	retryMax      time.Duration
	maxQueued     int
	drainBatch    int
	ckptEvery     int
	heartbeat     time.Duration

	wal             bool
	walSegBytes     int64
	walBatchBytes   int
	walCompactEvery int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.storeDir, "store", "", "snapshot directory (default: in-memory store)")
	flag.IntVar(&cfg.shards, "shards", 1, "serving shards; sessions route by rendezvous hash on their id")
	flag.IntVar(&cfg.replicas, "replicas", 1, "checkpoint store replicas behind a write-majority quorum (requires -store)")
	flag.StringVar(&cfg.replicaDirs, "replica-dirs", "", "comma-separated replica directories (default: STORE/replica-0..N-1)")
	flag.IntVar(&cfg.maxSessions, "max-sessions", 128, "resident session cap; LRU-idle sessions are parked beyond it")
	flag.DurationVar(&cfg.idleTTL, "idle-ttl", 15*time.Minute, "park sessions idle longer than this")
	flag.DurationVar(&cfg.sweepEvery, "sweep", time.Minute, "idle-session sweep interval")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request timeout")
	flag.IntVar(&cfg.retryAttempts, "retry-attempts", 4, "store operation attempts before degrading (1 disables retries)")
	flag.DurationVar(&cfg.retryBase, "retry-base", 5*time.Millisecond, "store retry backoff before the second attempt (doubles per attempt)")
	flag.DurationVar(&cfg.retryMax, "retry-max", 250*time.Millisecond, "store retry backoff cap")
	flag.IntVar(&cfg.maxQueued, "max-queued", 64, "per-session labelpool admission queue capacity")
	flag.IntVar(&cfg.drainBatch, "drain-batch", 16, "max queued rounds applied per drain batch (one lock acquisition)")
	flag.IntVar(&cfg.ckptEvery, "checkpoint-every", 0, "checkpoint after this many pool-applied rounds (0: only on park/shutdown)")
	flag.DurationVar(&cfg.heartbeat, "heartbeat", 15*time.Second, "SSE stream keep-alive comment interval")
	flag.BoolVar(&cfg.wal, "wal", false, "write-ahead log submitted rounds; submits ack after a group-committed fsync instead of a full snapshot (requires -store)")
	flag.Int64Var(&cfg.walSegBytes, "wal-segment-bytes", 0, "WAL segment rotation size in bytes (0: 4MiB default)")
	flag.IntVar(&cfg.walBatchBytes, "wal-batch-bytes", 0, "max payload bytes per WAL group commit (0: 1MiB default)")
	flag.IntVar(&cfg.walCompactEvery, "wal-compact-every", 0, "fold a session's WAL tail into its snapshot after this many committed rounds (0: 64 default)")
	flag.Parse()
	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

func run(cfg config) error {
	app, err := start(cfg)
	if err != nil {
		return err
	}
	log.Printf("etserve listening on %s (max %d sessions, idle TTL %s)",
		app.addr, cfg.maxSessions, cfg.idleTTL)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-app.serveErr:
		app.stopSweeper()
		return err
	case s := <-sig:
		log.Printf("received %s, shutting down", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := app.shutdown(ctx); err != nil {
		return err
	}
	log.Printf("all sessions checkpointed; bye")
	return nil
}

// app is a running server: an HTTP listener, the session manager
// behind it, and the background idle-session sweeper.
type app struct {
	addr     net.Addr
	mgr      *service.Manager
	store    persist.Store
	srv      *http.Server
	serveErr chan error
	// walStores are the per-directory write-ahead logs to close on
	// shutdown (after the manager drains, so every late append lands).
	walStores []*wal.Store

	stopSweep context.CancelFunc
	sweepDone chan struct{}
}

// scanStore runs a store's recovery scan: verify every checkpoint,
// quarantine the rotten ones instead of letting a single bad file
// block startup, and clean up temp files a crashed writer left behind.
// A WAL-wrapped store's scan additionally folds every committed log
// tail into a fresh snapshot, so the directory alone carries every
// durable round before serving begins.
func scanStore(st interface {
	Scan(ctx context.Context) (persist.ScanResult, error)
}, path string) error {
	res, err := st.Scan(context.Background())
	if err != nil {
		return fmt.Errorf("scanning store %s: %w", path, err)
	}
	for _, id := range res.Quarantined {
		log.Printf("store %s: snapshot %q failed verification; quarantined to %s.corrupt", path, id, id)
	}
	if res.TempsRemoved > 0 {
		log.Printf("store %s: removed %d orphaned temp file(s) from a crashed writer", path, res.TempsRemoved)
	}
	log.Printf("store: %d snapshot(s) verified in %s", len(res.OK), path)
	return nil
}

// openWal puts a write-ahead log in front of a snapshot directory (in
// a "wal" subdirectory — DirStore scans skip subdirectories, so the
// two coexist) and logs what recovery found: replayed committed
// deltas, torn tail bytes truncated, unreadable segments dropped.
func openWal(inner persist.Store, base string, cfg config) (*wal.Store, error) {
	ws, rec, err := wal.OpenStore(inner, filepath.Join(base, "wal"), wal.StoreConfig{
		Wal: wal.Config{
			MaxSegmentBytes: cfg.walSegBytes,
			MaxBatchBytes:   cfg.walBatchBytes,
		},
		CompactEvery: cfg.walCompactEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("opening WAL under %s: %w", base, err)
	}
	if rec.TruncatedBytes > 0 {
		log.Printf("wal %s: truncated %d torn tail byte(s) left by a crash", base, rec.TruncatedBytes)
	}
	if rec.SegmentsDropped > 0 {
		log.Printf("wal %s: dropped %d spent or unreadable segment(s)", base, rec.SegmentsDropped)
	}
	log.Printf("wal %s: replayed %d committed round delta(s) from %d segment(s)",
		base, len(rec.Deltas), rec.Segments)
	return ws, nil
}

// buildStore assembles the checkpoint store from the flag surface: nil
// (in-memory) without -store, a single DirStore for -replicas 1, or a
// quorum-replicating MultiStore over N replica directories, each
// optionally fronted by a write-ahead log under -wal. Replicated
// stores are reconciled on startup so a replica that missed
// checkpoints while down converges before serving begins. The second
// return value lists the WAL stores the caller must close on shutdown.
func buildStore(cfg config) (persist.Store, []*wal.Store, error) {
	if cfg.wal && cfg.storeDir == "" && cfg.replicaDirs == "" {
		return nil, nil, fmt.Errorf("-wal requires -store (or -replica-dirs); an in-memory store has nothing to recover")
	}
	var dirs []string
	switch {
	case cfg.replicaDirs != "":
		dirs = strings.Split(cfg.replicaDirs, ",")
		if cfg.replicas > 1 && cfg.replicas != len(dirs) {
			return nil, nil, fmt.Errorf("-replicas %d but -replica-dirs names %d directories", cfg.replicas, len(dirs))
		}
	case cfg.replicas > 1:
		if cfg.storeDir == "" {
			return nil, nil, fmt.Errorf("-replicas %d requires -store (or -replica-dirs)", cfg.replicas)
		}
		for i := 0; i < cfg.replicas; i++ {
			dirs = append(dirs, filepath.Join(cfg.storeDir, fmt.Sprintf("replica-%d", i)))
		}
	case cfg.storeDir != "":
		dir, err := persist.NewDirStore(cfg.storeDir)
		if err != nil {
			return nil, nil, fmt.Errorf("opening store: %w", err)
		}
		if !cfg.wal {
			if err := scanStore(dir, cfg.storeDir); err != nil {
				return nil, nil, err
			}
			return dir, nil, nil
		}
		ws, err := openWal(dir, cfg.storeDir, cfg)
		if err != nil {
			return nil, nil, err
		}
		if err := scanStore(ws, cfg.storeDir); err != nil {
			ws.Close()
			return nil, nil, err
		}
		return ws, []*wal.Store{ws}, nil
	default:
		return nil, nil, nil
	}
	var walStores []*wal.Store
	replicas := make([]persist.Store, len(dirs))
	for i, d := range dirs {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, nil, fmt.Errorf("creating replica directory: %w", err)
		}
		dir, err := persist.NewDirStore(d)
		if err != nil {
			return nil, nil, fmt.Errorf("opening replica %d: %w", i, err)
		}
		replicas[i] = dir
		if cfg.wal {
			ws, err := openWal(dir, d, cfg)
			if err != nil {
				return nil, nil, err
			}
			replicas[i] = ws
			walStores = append(walStores, ws)
		}
	}
	ms, err := persist.NewMultiStore(replicas, 0) // 0: write-majority quorum
	if err != nil {
		return nil, nil, err
	}
	res, err := ms.Scan(context.Background())
	if err != nil {
		return nil, nil, fmt.Errorf("reconciling replicas: %w", err)
	}
	for i, rs := range res.ReplicaScans {
		if rs == nil {
			continue
		}
		for _, id := range rs.Quarantined {
			log.Printf("replica %d (%s): snapshot %q failed verification; quarantined", i, dirs[i], id)
		}
		if rs.TempsRemoved > 0 {
			log.Printf("replica %d (%s): removed %d orphaned temp file(s)", i, dirs[i], rs.TempsRemoved)
		}
	}
	for _, id := range res.Repaired {
		log.Printf("store: snapshot %q re-replicated to a stale or missing replica", id)
	}
	for _, id := range res.Failed {
		log.Printf("store: snapshot %q unreadable on every replica; it cannot be resumed", id)
	}
	log.Printf("store: %d snapshot(s) verified across %d replicas (write quorum %d)",
		len(res.OK), ms.Replicas(), ms.WriteQuorum())
	return ms, walStores, nil
}

// start builds the store + manager + server and begins serving on
// cfg.addr (use port 0 for an ephemeral port; app.addr has the one
// actually bound).
func start(cfg config) (*app, error) {
	store, walStores, err := buildStore(cfg)
	if err != nil {
		return nil, err
	}
	mgr := service.NewManager(service.Options{
		Shards:      cfg.shards,
		MaxSessions: cfg.maxSessions,
		IdleTTL:     cfg.idleTTL,
		Store:       store,
		Retry: service.RetryPolicy{
			MaxAttempts: cfg.retryAttempts,
			BaseDelay:   cfg.retryBase,
			MaxDelay:    cfg.retryMax,
		},
		MaxQueuedSubmissions: cfg.maxQueued,
		DrainBatch:           cfg.drainBatch,
		CheckpointEvery:      cfg.ckptEvery,
	})
	srv := &http.Server{
		Handler: service.NewServer(mgr, service.ServerOptions{
			RequestTimeout:  cfg.timeout,
			StreamHeartbeat: cfg.heartbeat,
		}),
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return nil, err
	}

	a := &app{
		addr:      ln.Addr(),
		mgr:       mgr,
		store:     store,
		srv:       srv,
		serveErr:  make(chan error, 1),
		walStores: walStores,
		sweepDone: make(chan struct{}),
	}

	// Park idle sessions in the background so a quiet server's memory
	// is bounded by its snapshots, not its session count.
	var sweepCtx context.Context
	sweepCtx, a.stopSweep = context.WithCancel(context.Background())
	go func() {
		defer close(a.sweepDone)
		tick := time.NewTicker(cfg.sweepEvery)
		defer tick.Stop()
		for {
			select {
			case <-sweepCtx.Done():
				return
			case <-tick.C:
				if swept, err := mgr.Sweep(sweepCtx); err != nil {
					log.Printf("sweep: %v", err)
				} else if len(swept) > 0 {
					log.Printf("parked %d idle session(s): %v", len(swept), swept)
				}
			}
		}
	}()

	go func() { a.serveErr <- srv.Serve(ln) }()
	return a, nil
}

func (a *app) stopSweeper() {
	a.stopSweep()
	<-a.sweepDone
}

// shutdown drains the manager first — that flushes every labelpool,
// checkpoints every live session, and closes attached SSE streams with
// their `event: drain` goodbye — and only then waits out the HTTP
// server. The other order deadlocks until the context cap: Server.
// Shutdown waits for in-flight handlers, but a stream handler only
// exits on the manager's drain signal. Requests arriving mid-drain get
// 503 shutting_down, which is the designed fail-over answer.
func (a *app) shutdown(ctx context.Context) error {
	a.stopSweeper()
	mgrErr := a.mgr.Shutdown(ctx)
	// A replicating store acks writes at quorum and finishes the
	// stragglers in the background; wait them out so every replica is
	// as converged as the dying process can make it.
	if f, ok := a.store.(interface{ Flush() }); ok {
		f.Flush()
	}
	// The drain above checkpointed and appended everything it could;
	// closing the logs now fsyncs any tail batch before the process
	// exits.
	for _, ws := range a.walStores {
		if err := ws.Close(); err != nil {
			log.Printf("wal close: %v", err)
		}
	}
	if err := a.srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if mgrErr != nil {
		return fmt.Errorf("checkpointing sessions: %w", mgrErr)
	}
	if err := <-a.serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
