package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestServeSmoke boots the server on an ephemeral port with a disk
// store, plays one round over HTTP, snapshots, and shuts down —
// verifying the checkpoint landed on disk.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	app, err := start(config{
		addr:        "127.0.0.1:0",
		storeDir:    dir,
		maxSessions: 8,
		idleTTL:     time.Hour,
		sweepEvery:  time.Hour,
		timeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + app.addr.String()

	post := func(path string, body, out any) {
		t.Helper()
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	var info struct {
		ID string `json:"id"`
	}
	post("/v1/sessions", map[string]any{
		"dataset": "OMDB", "rows": 60, "method": "StochasticUS", "k": 4, "seed": 1,
	}, &info)

	var next struct {
		Pairs []struct {
			A int `json:"a"`
			B int `json:"b"`
		} `json:"pairs"`
	}
	post(fmt.Sprintf("/v1/sessions/%s/next", info.ID), nil, &next)
	if len(next.Pairs) != 4 {
		t.Fatalf("next returned %d pairs", len(next.Pairs))
	}
	labels := make([]map[string]any, len(next.Pairs))
	for i, p := range next.Pairs {
		labels[i] = map[string]any{"pair": [2]int{p.A, p.B}}
	}
	var after struct {
		Rounds int `json:"rounds"`
	}
	post(fmt.Sprintf("/v1/sessions/%s/submit", info.ID), map[string]any{"labels": labels}, &after)
	if after.Rounds != 1 {
		t.Fatalf("rounds = %d after submit", after.Rounds)
	}
	post(fmt.Sprintf("/v1/sessions/%s/snapshot", info.ID), nil, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := app.shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The snapshot (and the shutdown checkpoint) are on disk.
	matches, err := filepath.Glob(filepath.Join(dir, info.ID+"*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		entries, _ := os.ReadDir(dir)
		t.Fatalf("no snapshot for %s in %s (dir has %d entries)", info.ID, dir, len(entries))
	}
}

// TestStartupRecoveryScan boots against a store holding one intact
// snapshot, one corrupted snapshot, and an orphaned temp file from a
// "crashed writer". Startup must quarantine the corrupt file, remove
// the orphan, and still serve — one rotten checkpoint must not take the
// process down. The intact snapshot stays resumable.
func TestStartupRecoveryScan(t *testing.T) {
	dir := t.TempDir()

	// First boot: create a session, snapshot it, shut down cleanly.
	app, err := start(config{
		addr: "127.0.0.1:0", storeDir: dir, maxSessions: 8,
		idleTTL: time.Hour, sweepEvery: time.Hour, timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + app.addr.String()
	body, _ := json.Marshal(map[string]any{"dataset": "OMDB", "rows": 60, "k": 4, "seed": 7})
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := app.shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Rot a copy of the good snapshot under another id, and leave an
	// orphaned temp file behind.
	good := filepath.Join(dir, info.ID+".snapshot.json")
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x20
	if err := os.WriteFile(filepath.Join(dir, "rotten.snapshot.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".rotten.tmp-42"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Second boot runs the recovery scan.
	app, err = start(config{
		addr: "127.0.0.1:0", storeDir: dir, maxSessions: 8,
		idleTTL: time.Hour, sweepEvery: time.Hour, timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("start over a store with a corrupt snapshot: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = app.shutdown(ctx)
	}()
	if _, err := os.Stat(filepath.Join(dir, "rotten.corrupt")); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "rotten.snapshot.json")); !os.IsNotExist(err) {
		t.Fatalf("corrupt snapshot still live: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ".rotten.tmp-42")); !os.IsNotExist(err) {
		t.Fatalf("orphaned temp not removed: %v", err)
	}

	// The intact snapshot still resumes over HTTP.
	base = "http://" + app.addr.String()
	body, _ = json.Marshal(map[string]any{"resume": info.ID, "dataset": "OMDB", "rows": 60, "k": 4, "seed": 7})
	resp, err = http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("resume after recovery: status %d", resp.StatusCode)
	}
}

// TestWalServe boots with -wal, plays two rounds over HTTP (each
// submit acks off a group-committed WAL append, not a full snapshot),
// then kills the process without a graceful drain — no shutdown
// checkpoints land. The next boot must replay the log onto the genesis
// snapshot and resume the session with both rounds intact.
func TestWalServe(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		addr: "127.0.0.1:0", storeDir: dir, wal: true,
		maxSessions: 8, idleTTL: time.Hour, sweepEvery: time.Hour, timeout: 10 * time.Second,
	}
	app, err := start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + app.addr.String()

	post := func(path string, body, out any) {
		t.Helper()
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
	}
	playRound := func(id string) int {
		t.Helper()
		var next struct {
			Pairs []struct {
				A int `json:"a"`
				B int `json:"b"`
			} `json:"pairs"`
		}
		post(fmt.Sprintf("/v1/sessions/%s/next", id), nil, &next)
		labels := make([]map[string]any, len(next.Pairs))
		for i, p := range next.Pairs {
			labels[i] = map[string]any{"pair": [2]int{p.A, p.B}}
		}
		var after struct {
			Rounds int `json:"rounds"`
		}
		post(fmt.Sprintf("/v1/sessions/%s/submit", id), map[string]any{"labels": labels}, &after)
		return after.Rounds
	}

	var info struct {
		ID string `json:"id"`
	}
	post("/v1/sessions", map[string]any{
		"dataset": "OMDB", "rows": 60, "method": "StochasticUS", "k": 4, "seed": 9,
	}, &info)
	playRound(info.ID)
	if got := playRound(info.ID); got != 2 {
		t.Fatalf("rounds = %d after two submits", got)
	}

	// Healthz carries the log-level WAL counters.
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Wal *struct {
			Appended uint64 `json:"appended_records"`
			Fsyncs   uint64 `json:"fsyncs"`
		} `json:"wal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Wal == nil || health.Wal.Appended < 2 || health.Wal.Fsyncs == 0 {
		t.Fatalf("healthz wal counters missing or stale: %+v", health.Wal)
	}

	// Crash: tear the server down without draining the manager, so no
	// session checkpoint lands — the two rounds exist only as genesis +
	// WAL records.
	app.stopSweeper()
	_ = app.srv.Close()
	<-app.serveErr
	for _, ws := range app.walStores {
		_ = ws.Close()
	}

	app, err = start(cfg)
	if err != nil {
		t.Fatalf("start after crash: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = app.shutdown(ctx)
	}()
	base = "http://" + app.addr.String()
	post("/v1/sessions", map[string]any{
		"resume": info.ID, "dataset": "OMDB", "rows": 60, "method": "StochasticUS", "k": 4, "seed": 9,
	}, nil)
	var series struct {
		Rounds []json.RawMessage `json:"rounds"`
	}
	resp, err = http.Get(base + fmt.Sprintf("/v1/sessions/%s/rounds", info.ID))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&series); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(series.Rounds) != 2 {
		t.Fatalf("recovered %d rounds from the WAL, want 2", len(series.Rounds))
	}
	if got := playRound(info.ID); got != 3 {
		t.Fatalf("rounds = %d after post-recovery submit, want 3", got)
	}
}

// TestReplicatedShardedServe boots a sharded server over a 3-replica
// quorum store, plays a round, shuts down, deletes one entire replica
// directory, and boots again: the startup reconcile must re-replicate
// the lost checkpoints and the session must resume over HTTP.
func TestReplicatedShardedServe(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		addr: "127.0.0.1:0", storeDir: dir, shards: 4, replicas: 3,
		maxSessions: 8, idleTTL: time.Hour, sweepEvery: time.Hour, timeout: 10 * time.Second,
	}
	app, err := start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + app.addr.String()
	body, _ := json.Marshal(map[string]any{"dataset": "OMDB", "rows": 60, "k": 4, "seed": 5})
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Healthz carries the shard breakdown and replica counters.
	resp, err = http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Shards []struct {
			Shard int `json:"shard"`
		} `json:"shards"`
		Replicas []struct {
			Ops uint64 `json:"ops"`
		} `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(health.Shards) != 4 || len(health.Replicas) != 3 {
		t.Fatalf("healthz shards=%d replicas=%d, want 4 and 3", len(health.Shards), len(health.Replicas))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := app.shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p := filepath.Join(dir, fmt.Sprintf("replica-%d", i), info.ID+".snapshot.json")
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("replica %d missing checkpoint after shutdown: %v", i, err)
		}
	}

	// Lose a whole replica; the next boot's reconcile restores it.
	if err := os.RemoveAll(filepath.Join(dir, "replica-1")); err != nil {
		t.Fatal(err)
	}
	app, err = start(cfg)
	if err != nil {
		t.Fatalf("start after losing a replica: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = app.shutdown(ctx)
	}()
	if _, err := os.Stat(filepath.Join(dir, "replica-1", info.ID+".snapshot.json")); err != nil {
		t.Fatalf("lost replica not re-replicated on startup: %v", err)
	}
	base = "http://" + app.addr.String()
	body, _ = json.Marshal(map[string]any{"resume": info.ID, "dataset": "OMDB", "rows": 60, "k": 4, "seed": 5})
	resp, err = http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("resume after replica loss: status %d", resp.StatusCode)
	}
}
