package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestServeSmoke boots the server on an ephemeral port with a disk
// store, plays one round over HTTP, snapshots, and shuts down —
// verifying the checkpoint landed on disk.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	app, err := start(config{
		addr:        "127.0.0.1:0",
		storeDir:    dir,
		maxSessions: 8,
		idleTTL:     time.Hour,
		sweepEvery:  time.Hour,
		timeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + app.addr.String()

	post := func(path string, body, out any) {
		t.Helper()
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	var info struct {
		ID string `json:"id"`
	}
	post("/v1/sessions", map[string]any{
		"dataset": "OMDB", "rows": 60, "method": "StochasticUS", "k": 4, "seed": 1,
	}, &info)

	var next struct {
		Pairs []struct {
			A int `json:"a"`
			B int `json:"b"`
		} `json:"pairs"`
	}
	post(fmt.Sprintf("/v1/sessions/%s/next", info.ID), nil, &next)
	if len(next.Pairs) != 4 {
		t.Fatalf("next returned %d pairs", len(next.Pairs))
	}
	labels := make([]map[string]any, len(next.Pairs))
	for i, p := range next.Pairs {
		labels[i] = map[string]any{"pair": [2]int{p.A, p.B}}
	}
	var after struct {
		Rounds int `json:"rounds"`
	}
	post(fmt.Sprintf("/v1/sessions/%s/submit", info.ID), map[string]any{"labels": labels}, &after)
	if after.Rounds != 1 {
		t.Fatalf("rounds = %d after submit", after.Rounds)
	}
	post(fmt.Sprintf("/v1/sessions/%s/snapshot", info.ID), nil, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := app.shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The snapshot (and the shutdown checkpoint) are on disk.
	matches, err := filepath.Glob(filepath.Join(dir, info.ID+"*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		entries, _ := os.ReadDir(dir)
		t.Fatalf("no snapshot for %s in %s (dir has %d entries)", info.ID, dir, len(entries))
	}
}
