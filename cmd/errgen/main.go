// Command errgen injects controlled FD violations into a CSV file — the
// BART-style error generation the paper uses to prepare its evaluation
// data (Arocena et al. 2015). It writes the dirtied CSV and, next to
// it, a ground-truth file listing every corrupted cell.
//
// Usage:
//
//	errgen -in clean.csv -out dirty.csv -fd "zip->city" [-fd "zip->state"]
//	       [-degree 0.1] [-seed 1] [-truth truth.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"exptrain/internal/dataset"
	"exptrain/internal/errgen"
	"exptrain/internal/fd"
)

// fdList collects repeated -fd flags.
type fdList []string

func (l *fdList) String() string     { return strings.Join(*l, ", ") }
func (l *fdList) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var fds fdList
	var (
		in     = flag.String("in", "", "input CSV file (required)")
		out    = flag.String("out", "", "output CSV file for the dirtied data (required)")
		truth  = flag.String("truth", "", "ground-truth CSV (default: <out>.truth.csv)")
		degree = flag.Float64("degree", 0.1, "target mean violating-pair fraction per FD")
		seed   = flag.Uint64("seed", 1, "injection seed")
	)
	flag.Var(&fds, "fd", "target FD like \"A,B->C\" (repeatable, required)")
	flag.Parse()
	if *in == "" || *out == "" || len(fds) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *truth == "" {
		*truth = *out + ".truth.csv"
	}
	if err := run(os.Stdout, *in, *out, *truth, fds, *degree, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "errgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, in, out, truth string, fdSpecs []string, degree float64, seed uint64) error {
	rel, err := dataset.ReadCSVFile(in)
	if err != nil {
		return err
	}
	targets, err := fd.ParseAll(fdSpecs, rel.Schema())
	if err != nil {
		return err
	}
	res, err := errgen.InjectDegree(rel, errgen.DegreeConfig{
		FDs:    targets,
		Degree: degree,
		Seed:   seed,
	})
	if err != nil {
		return err
	}
	if err := res.Rel.WriteCSVFile(out); err != nil {
		return err
	}
	if err := writeTruth(truth, res, rel.Schema()); err != nil {
		return err
	}
	fmt.Fprintf(w, "injected %d corruptions into %d rows; degree now %.4f\n",
		len(res.Log), rel.NumRows(), errgen.ViolationDegree(res.Rel, targets))
	fmt.Fprintf(w, "dirty data: %s\nground truth: %s\n", out, truth)
	return nil
}

// writeTruth emits one line per corruption: row, attribute name, old
// and new value.
func writeTruth(path string, res *errgen.Result, schema *dataset.Schema) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"row", "attribute", "old", "new"}); err != nil {
		f.Close()
		return err
	}
	for _, c := range res.Log {
		rec := []string{strconv.Itoa(c.Row), schema.Name(c.Attr), c.Old, c.New}
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
