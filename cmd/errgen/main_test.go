package main

import (
	"os"
	"strings"
	"testing"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
)

func writeCleanCSV(t *testing.T) string {
	t.Helper()
	csv := "a,b,c\n"
	for i := 0; i < 60; i++ {
		k := string(rune('0' + i%5))
		csv += k + ",f" + k + "," + string(rune('x'+i%2)) + "\n"
	}
	path := t.TempDir() + "/clean.csv"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestErrgenCLI(t *testing.T) {
	in := writeCleanCSV(t)
	dir := t.TempDir()
	out := dir + "/dirty.csv"
	truth := dir + "/truth.csv"

	var sb strings.Builder
	if err := run(&sb, in, out, truth, []string{"a->b"}, 0.1, 7); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "injected") {
		t.Errorf("status line missing:\n%s", sb.String())
	}

	dirty, err := dataset.ReadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	target := fd.MustParse("a->b", dirty.Schema())
	if fd.G1(target, dirty) == 0 {
		t.Fatal("output has no violations")
	}

	// Truth file: header + one line per change, consistent with the
	// dirty CSV.
	data, err := os.ReadFile(truth)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "row,attribute,old,new" {
		t.Fatalf("truth header = %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatal("truth file has no changes")
	}
}

func TestErrgenCLIErrors(t *testing.T) {
	in := writeCleanCSV(t)
	dir := t.TempDir()
	var sb strings.Builder
	if err := run(&sb, in, dir+"/o.csv", dir+"/t.csv", []string{"a->nope"}, 0.1, 1); err == nil {
		t.Error("bad FD spec should error")
	}
	if err := run(&sb, dir+"/missing.csv", dir+"/o.csv", dir+"/t.csv", []string{"a->b"}, 0.1, 1); err == nil {
		t.Error("missing input should error")
	}
	if err := run(&sb, in, dir+"/o.csv", dir+"/t.csv", []string{"a->b"}, 2.0, 1); err == nil {
		t.Error("degree out of range should error")
	}
}

func TestFDListFlag(t *testing.T) {
	var l fdList
	if err := l.Set("a->b"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("c->d"); err != nil {
		t.Fatal(err)
	}
	if l.String() != "a->b, c->d" {
		t.Fatalf("String = %q", l.String())
	}
}
