module exptrain

go 1.22
