package repair

import (
	"testing"

	"exptrain/internal/dataset"
	"exptrain/internal/errgen"
	"exptrain/internal/fd"
)

// fixture: b = f(a) with one corrupted cell.
func fixture() (*dataset.Relation, fd.FD, dataset.Tuple) {
	rel := dataset.New(dataset.MustSchema("a", "b", "c"))
	for i := 0; i < 12; i++ {
		k := string(rune('0' + i%3))
		rel.MustAppend(dataset.Tuple{k, "f" + k, string(rune('x' + i%2))})
	}
	orig := rel.Row(4).Clone()
	rel.SetValue(4, 1, "broken")
	return rel, fd.MustNew(fd.NewAttrSet(0), 1), orig
}

func TestSuggestFindsCorruptedCell(t *testing.T) {
	rel, target, orig := fixture()
	sugg, err := Suggest(rel, []BelievedFD{{FD: target, Confidence: 0.9}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 1 {
		t.Fatalf("got %d suggestions, want 1: %+v", len(sugg), sugg)
	}
	s := sugg[0]
	if s.Row != 4 || s.Attr != 1 {
		t.Fatalf("suggestion targets (%d,%d), want (4,1)", s.Row, s.Attr)
	}
	if s.Old != "broken" || s.New != orig[1] {
		t.Fatalf("suggestion %q→%q, want broken→%q", s.Old, s.New, orig[1])
	}
	if s.Confidence <= 0 || s.Confidence > 0.9 {
		t.Fatalf("confidence %v out of range", s.Confidence)
	}
	if s.Source != target {
		t.Fatalf("source = %v", s.Source)
	}
}

func TestSuggestRespectsMinConfidence(t *testing.T) {
	rel, target, _ := fixture()
	// FD confidence 0.4 × margin < MinConfidence 0.5 → nothing.
	sugg, err := Suggest(rel, []BelievedFD{{FD: target, Confidence: 0.4}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 0 {
		t.Fatalf("low-confidence FD produced suggestions: %+v", sugg)
	}
}

func TestSuggestSkipsBalancedSplits(t *testing.T) {
	// A 50/50 split is structure, not an error.
	rel := dataset.New(dataset.MustSchema("a", "b"))
	for i := 0; i < 8; i++ {
		v := "x"
		if i%2 == 0 {
			v = "y"
		}
		rel.MustAppend(dataset.Tuple{"same", v})
	}
	sugg, err := Suggest(rel, []BelievedFD{{FD: fd.MustNew(fd.NewAttrSet(0), 1), Confidence: 0.95}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 0 {
		t.Fatalf("balanced split repaired: %+v", sugg)
	}
}

func TestSuggestConflictResolution(t *testing.T) {
	// Two FDs target the same cell with different replacement values;
	// the higher-confidence one must win.
	rel := dataset.New(dataset.MustSchema("a", "b", "c"))
	// Group by a: rows 0-4 have a=k, b mostly "good" (one "bad").
	// Group by c: all rows share c, b mostly "alt".
	rel.MustAppend(dataset.Tuple{"k", "bad", "z"})
	for i := 0; i < 4; i++ {
		rel.MustAppend(dataset.Tuple{"k", "good", "z"})
	}
	for i := 0; i < 8; i++ {
		rel.MustAppend(dataset.Tuple{"m", "alt", "z"})
	}
	aFD := fd.MustNew(fd.NewAttrSet(0), 1) // suggests good
	cFD := fd.MustNew(fd.NewAttrSet(2), 1) // suggests alt (plurality of all 13)
	sugg, err := Suggest(rel, []BelievedFD{
		{FD: aFD, Confidence: 0.95},
		{FD: cFD, Confidence: 0.90},
	}, Config{MinConfidence: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sugg {
		if s.Row == 0 && s.Attr == 1 {
			if s.New != "good" {
				t.Fatalf("conflict resolved to %q via %v, want good via a→b", s.New, s.Source)
			}
			return
		}
	}
	t.Fatalf("no suggestion for the corrupted cell: %+v", sugg)
}

func TestSuggestValidatesConfidence(t *testing.T) {
	rel, target, _ := fixture()
	for _, c := range []float64{0, -0.2, 1.5} {
		if _, err := Suggest(rel, []BelievedFD{{FD: target, Confidence: c}}, Config{}); err == nil {
			t.Errorf("confidence %v should error", c)
		}
	}
}

func TestApplyRepairs(t *testing.T) {
	rel, target, orig := fixture()
	sugg, err := Suggest(rel, []BelievedFD{{FD: target, Confidence: 0.9}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := Apply(rel, sugg)
	if err != nil {
		t.Fatal(err)
	}
	if got := repaired.Value(4, 1); got != orig[1] {
		t.Fatalf("repaired value %q, want %q", got, orig[1])
	}
	// Original untouched.
	if rel.Value(4, 1) != "broken" {
		t.Fatal("Apply mutated the input relation")
	}
	// The repaired relation satisfies the FD exactly.
	if fd.G1(target, repaired) != 0 {
		t.Fatal("repair did not restore the FD")
	}
}

func TestApplyRejectsStaleSuggestions(t *testing.T) {
	rel, _, _ := fixture()
	stale := []Suggestion{{Row: 4, Attr: 1, Old: "not-current", New: "x"}}
	if _, err := Apply(rel, stale); err == nil {
		t.Fatal("stale suggestion should error")
	}
	oob := []Suggestion{{Row: 999, Attr: 1, Old: "broken", New: "x"}}
	if _, err := Apply(rel, oob); err == nil {
		t.Fatal("out-of-bounds suggestion should error")
	}
}

func TestScore(t *testing.T) {
	sugg := []Suggestion{
		{Row: 1, Attr: 2, Old: "junk", New: "right"},
		{Row: 3, Attr: 2, Old: "junk", New: "wrong"},
		{Row: 5, Attr: 1, Old: "v", New: "w"}, // false positive
	}
	truth := []TruthEntry{
		{Row: 1, Attr: 2, Original: "right"},
		{Row: 3, Attr: 2, Original: "other"},
		{Row: 7, Attr: 0, Original: "missed"},
	}
	p, r, acc := Score(sugg, truth)
	if p != 2.0/3.0 {
		t.Errorf("precision = %v", p)
	}
	if r != 2.0/3.0 {
		t.Errorf("recall = %v", r)
	}
	if acc != 0.5 {
		t.Errorf("value accuracy = %v", acc)
	}
	if p, r, acc := Score(nil, truth); p != 0 || r != 0 || acc != 0 {
		t.Error("empty suggestions should score zero")
	}
}

func TestEndToEndRepairOnInjectedErrors(t *testing.T) {
	// Full pipeline: clean relation → inject → suggest with the true FDs
	// → high precision and value accuracy.
	clean := dataset.New(dataset.MustSchema("a", "b", "c", "d"))
	for i := 0; i < 120; i++ {
		a := string(rune('0' + i%8))
		c := string(rune('A' + i%5))
		clean.MustAppend(dataset.Tuple{a, "fb" + a, c, "gd" + c})
	}
	fds := []fd.FD{
		fd.MustNew(fd.NewAttrSet(0), 1),
		fd.MustNew(fd.NewAttrSet(2), 3),
	}
	injected, err := errgen.InjectDegree(clean, errgen.DegreeConfig{
		FDs: fds, Degree: 0.1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var believed []BelievedFD
	for _, f := range fds {
		believed = append(believed, BelievedFD{FD: f, Confidence: 0.95})
	}
	sugg, err := Suggest(injected.Rel, believed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) == 0 {
		t.Fatal("no repairs suggested")
	}
	truth := make([]TruthEntry, 0, len(injected.Log))
	for _, ch := range injected.Log {
		truth = append(truth, TruthEntry{Row: ch.Row, Attr: ch.Attr, Original: ch.Old})
	}
	p, r, acc := Score(sugg, truth)
	if p < 0.9 {
		t.Errorf("repair precision %v too low", p)
	}
	if r < 0.8 {
		t.Errorf("repair recall %v too low", r)
	}
	if acc < 0.9 {
		t.Errorf("value accuracy %v too low", acc)
	}
	// Applying the repairs restores the FDs (near-)exactly.
	repaired, err := Apply(injected.Rel, sugg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fds {
		if g := fd.G1(f, repaired); g > fd.G1(f, injected.Rel)/4 {
			t.Errorf("FD %v barely improved: g1 %v after repair", f, g)
		}
	}
}

// TestCausalCellResolution: when a corrupted cell is the LHS of one
// believed FD and the RHS of another, the repair must target that cell
// — not the downstream attribute its corruption knocked out of line.
// (A corrupted `state` breaks zip→state as an RHS and state→exemp as an
// LHS; fixing `exemp` instead would leave the row wrong twice.)
func TestCausalCellResolution(t *testing.T) {
	rel := dataset.New(dataset.MustSchema("zip", "state", "exemp"))
	type geo struct{ zip, state string }
	geos := []geo{{"10001", "NY"}, {"94110", "CA"}, {"60601", "IL"}}
	exempOf := map[string]string{"NY": "2000", "CA": "3000", "IL": "2500"}
	for i := 0; i < 60; i++ {
		g := geos[i%3]
		rel.MustAppend(dataset.Tuple{g.zip, g.state, exempOf[g.state]})
	}
	// Corrupt one state cell: row 0 becomes NY-zip with CA state and the
	// (now inconsistent) NY exemption.
	rel.SetValue(0, 1, "CA")

	zipState := fd.MustNew(fd.NewAttrSet(0), 1)
	stateExemp := fd.MustNew(fd.NewAttrSet(1), 2)
	sugg, err := Suggest(rel, []BelievedFD{
		{FD: zipState, Confidence: 0.95},
		{FD: stateExemp, Confidence: 0.95},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 1 {
		t.Fatalf("want exactly one repair, got %+v", sugg)
	}
	s := sugg[0]
	if s.Attr != 1 || s.Row != 0 || s.New != "NY" {
		t.Fatalf("repair targeted (%d,%d)→%q, want the state cell back to NY", s.Row, s.Attr, s.New)
	}
	// Applying it restores both FDs exactly.
	repaired, err := Apply(rel, sugg)
	if err != nil {
		t.Fatal(err)
	}
	if fd.G1(zipState, repaired) != 0 || fd.G1(stateExemp, repaired) != 0 {
		t.Fatal("causal repair did not restore both FDs")
	}
}
