// Package repair turns a learned approximate-FD model into concrete
// data repairs — the downstream application the paper's use case
// motivates (§A.1 cites Holistic data cleaning, HoloClean and optimal
// FD repairs as consumers of the learned dependencies).
//
// The repair model is the standard minority-to-plurality rule: for each
// believed FD X → A and each group of tuples agreeing on X, the
// plurality A-value is presumed correct and rare deviating cells are
// suggested to change to it. Suggestions carry a confidence combining
// the FD's believed confidence with the within-group majority margin;
// conflicting suggestions for one cell are resolved by confidence.
package repair

import (
	"fmt"
	"sort"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
)

// Suggestion is one proposed cell repair.
type Suggestion struct {
	// Row and Attr identify the cell.
	Row, Attr int
	// Old is the current (suspect) value; New the proposed one.
	Old, New string
	// Confidence combines the FD's believed confidence with the
	// within-group majority margin, in (0, 1].
	Confidence float64
	// Source is the FD that produced the suggestion.
	Source fd.FD
}

// BelievedFD pairs a dependency with the model's confidence in it.
type BelievedFD struct {
	FD         fd.FD
	Confidence float64
}

// Config tunes suggestion generation.
type Config struct {
	// MinorityFraction bounds how large a deviating value class may be,
	// relative to its group, and still be repaired (default 0.25,
	// matching fd.MinorityRows' threshold).
	MinorityFraction float64
	// MinConfidence drops suggestions below this combined confidence
	// (default 0.5).
	MinConfidence float64
	// MaxRepairsPerRow caps how many cells of one tuple may be repaired
	// (default 1). FD repairs on the same row usually describe the SAME
	// underlying error seen through different dependencies — e.g. with
	// a↔b both directions believed, a corrupted b cell yields one
	// (correct) suggestion on b via a→b and one (wrong) on a via b→a;
	// applying both would corrupt the row further. Keeping only the
	// highest-confidence repair per row implements the one-error-per-
	// tuple reading of the paper's Example 2. Set negative for
	// unlimited.
	MaxRepairsPerRow int
}

func (c Config) withDefaults() Config {
	if c.MinorityFraction <= 0 {
		c.MinorityFraction = 0.25
	}
	if c.MinConfidence == 0 {
		c.MinConfidence = 0.5
	}
	if c.MaxRepairsPerRow == 0 {
		c.MaxRepairsPerRow = 1
	}
	return c
}

// Suggest generates cell repairs for every believed FD, resolving
// conflicts (two FDs proposing different values for one cell) toward
// the higher-confidence suggestion. The result is sorted by row, then
// attribute.
func Suggest(rel *dataset.Relation, believed []BelievedFD, cfg Config) ([]Suggestion, error) {
	cfg = cfg.withDefaults()
	best := make(map[fd.Cell]Suggestion)
	for _, bf := range believed {
		if bf.Confidence <= 0 || bf.Confidence > 1 {
			return nil, fmt.Errorf("repair: FD %v confidence %v out of (0,1]", bf.FD, bf.Confidence)
		}
		for _, s := range suggestForFD(rel, bf, cfg) {
			cell := fd.Cell{Row: s.Row, Attr: s.Attr}
			if cur, ok := best[cell]; !ok || s.Confidence > cur.Confidence {
				best[cell] = s
			}
		}
	}
	all := make([]Suggestion, 0, len(best))
	for _, s := range best {
		all = append(all, s)
	}
	// Per-row conflict resolution. Competing suggestions on one row
	// usually describe the same underlying error seen through different
	// FDs; the causal cell is the one implicated by the *most* violated
	// dependencies (a corrupted LHS value breaks every FD reading it,
	// while a downstream RHS repair explains only its own FD). Rank by
	// that explanation score, then confidence, then attribute.
	score := explanationScores(rel, believed, all)
	sort.Slice(all, func(i, j int) bool {
		if all[i].Row != all[j].Row {
			return all[i].Row < all[j].Row
		}
		ci := fd.Cell{Row: all[i].Row, Attr: all[i].Attr}
		cj := fd.Cell{Row: all[j].Row, Attr: all[j].Attr}
		if score[ci] != score[cj] {
			return score[ci] > score[cj]
		}
		if all[i].Confidence != all[j].Confidence {
			return all[i].Confidence > all[j].Confidence
		}
		return all[i].Attr < all[j].Attr
	})
	var out []Suggestion
	perRow := 0
	for i, s := range all {
		if i > 0 && s.Row != all[i-1].Row {
			perRow = 0
		}
		if cfg.MaxRepairsPerRow > 0 && perRow >= cfg.MaxRepairsPerRow {
			continue
		}
		out = append(out, s)
		perRow++
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Row != out[j].Row {
			return out[i].Row < out[j].Row
		}
		return out[i].Attr < out[j].Attr
	})
	return out, nil
}

// explanationScores counts, for every suggested cell, the believed FDs
// that both mention the cell's attribute and flag the cell's row as a
// minority deviation — how many observed violations that single repair
// would explain.
func explanationScores(rel *dataset.Relation, believed []BelievedFD, suggestions []Suggestion) map[fd.Cell]int {
	score := make(map[fd.Cell]int, len(suggestions))
	if len(suggestions) == 0 {
		return score
	}
	for _, bf := range believed {
		flagged := fd.MinorityRows(bf.FD, rel)
		attrs := bf.FD.Attrs()
		for _, s := range suggestions {
			if !attrs.Has(s.Attr) {
				continue
			}
			if _, bad := flagged[s.Row]; bad {
				score[fd.Cell{Row: s.Row, Attr: s.Attr}]++
			}
		}
	}
	return score
}

// suggestForFD applies the minority-to-plurality rule for one FD.
func suggestForFD(rel *dataset.Relation, bf BelievedFD, cfg Config) []Suggestion {
	lhs := bf.FD.LHS.Attrs()
	groups := make(map[string][]int)
	for i := 0; i < rel.NumRows(); i++ {
		key := rel.ProjectKey(i, lhs)
		groups[key] = append(groups[key], i)
	}
	var out []Suggestion
	for _, rows := range groups {
		if len(rows) < 2 {
			continue
		}
		counts := make(map[string]int)
		for _, r := range rows {
			counts[rel.Value(r, bf.FD.RHS)]++
		}
		if len(counts) < 2 {
			continue
		}
		// Plurality value, ties toward the lexicographically smallest
		// (consistent with fd.MinorityRows).
		vals := make([]string, 0, len(counts))
		for v := range counts {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		majority := vals[0]
		for _, v := range vals[1:] {
			if counts[v] > counts[majority] {
				majority = v
			}
		}
		maxClass := int(cfg.MinorityFraction * float64(len(rows)))
		if maxClass < 1 {
			maxClass = 1
		}
		margin := float64(counts[majority]) / float64(len(rows))
		conf := bf.Confidence * margin
		if conf < cfg.MinConfidence {
			continue
		}
		for _, r := range rows {
			v := rel.Value(r, bf.FD.RHS)
			if v != majority && counts[v] <= maxClass {
				out = append(out, Suggestion{
					Row: r, Attr: bf.FD.RHS,
					Old: v, New: majority,
					Confidence: conf,
					Source:     bf.FD,
				})
			}
		}
	}
	return out
}

// Apply returns a repaired copy of the relation with every suggestion
// applied. It errors if a suggestion's Old value no longer matches the
// relation (a stale suggestion must not silently clobber data).
func Apply(rel *dataset.Relation, suggestions []Suggestion) (*dataset.Relation, error) {
	out := rel.Clone()
	for _, s := range suggestions {
		if s.Row < 0 || s.Row >= out.NumRows() || s.Attr < 0 || s.Attr >= out.Schema().Arity() {
			return nil, fmt.Errorf("repair: suggestion out of bounds: row %d attr %d", s.Row, s.Attr)
		}
		if got := out.Value(s.Row, s.Attr); got != s.Old {
			return nil, fmt.Errorf("repair: stale suggestion for cell (%d,%d): have %q, expected %q",
				s.Row, s.Attr, got, s.Old)
		}
		out.SetValue(s.Row, s.Attr, s.New)
	}
	return out, nil
}

// ApplyInPlace applies the suggestions to rel itself through the
// per-cell write path, so every edit lands in the relation's delta
// journal and warm PLI caches, trackers and belief memos over rel
// absorb the repairs incrementally instead of rebuilding. Validation
// matches Apply: the whole batch is checked before the first write, so
// a stale or out-of-bounds suggestion leaves rel untouched.
func ApplyInPlace(rel *dataset.Relation, suggestions []Suggestion) error {
	for _, s := range suggestions {
		if s.Row < 0 || s.Row >= rel.NumRows() || s.Attr < 0 || s.Attr >= rel.Schema().Arity() {
			return fmt.Errorf("repair: suggestion out of bounds: row %d attr %d", s.Row, s.Attr)
		}
		if got := rel.Value(s.Row, s.Attr); got != s.Old {
			return fmt.Errorf("repair: stale suggestion for cell (%d,%d): have %q, expected %q",
				s.Row, s.Attr, got, s.Old)
		}
	}
	for _, s := range suggestions {
		rel.SetValue(s.Row, s.Attr, s.New)
	}
	return nil
}

// Score evaluates suggestions against injection ground truth: a
// suggestion is correct when it targets a corrupted cell AND restores
// its original value. Returns (cell precision, cell recall, value
// accuracy among correctly-targeted cells).
func Score(suggestions []Suggestion, truth []TruthEntry) (precision, recall, valueAccuracy float64) {
	want := make(map[fd.Cell]string, len(truth))
	for _, t := range truth {
		want[fd.Cell{Row: t.Row, Attr: t.Attr}] = t.Original
	}
	if len(suggestions) == 0 {
		return 0, 0, 0
	}
	targeted, restored := 0, 0
	for _, s := range suggestions {
		orig, ok := want[fd.Cell{Row: s.Row, Attr: s.Attr}]
		if !ok {
			continue
		}
		targeted++
		if s.New == orig {
			restored++
		}
	}
	precision = float64(targeted) / float64(len(suggestions))
	if len(want) > 0 {
		recall = float64(targeted) / float64(len(want))
	}
	if targeted > 0 {
		valueAccuracy = float64(restored) / float64(targeted)
	}
	return precision, recall, valueAccuracy
}

// TruthEntry is one corrupted cell with its original value (the error
// generator's log provides these).
type TruthEntry struct {
	Row, Attr int
	Original  string
}
