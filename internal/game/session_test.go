package game

import (
	"context"
	"errors"
	"testing"

	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
)

func sessionFixture(t *testing.T) (*dataset.Relation, *fd.Space) {
	t.Helper()
	rel, space, _, _ := buildWorld(t, 31)
	return rel, space
}

func TestSessionProtocol(t *testing.T) {
	rel, space := sessionFixture(t)
	s, err := NewSession(SessionConfig{Relation: rel, Space: space, K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Submit before Next is rejected with the sentinel.
	if err := s.Submit(nil); !errors.Is(err, ErrNoRoundPending) {
		t.Fatalf("Submit without Next: err = %v, want ErrNoRoundPending", err)
	}
	pairs, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("presented %d pairs", len(pairs))
	}
	// Double Next is rejected with the sentinel, and so is snapshotting
	// mid-round.
	if _, err := s.Next(); !errors.Is(err, ErrRoundPending) {
		t.Fatalf("Next with a round pending: err = %v, want ErrRoundPending", err)
	}
	if _, err := s.Snapshot(); !errors.Is(err, ErrRoundPending) {
		t.Fatalf("Snapshot with a round pending: err = %v, want ErrRoundPending", err)
	}
	// Labeling an unpresented pair is rejected.
	other := dataset.NewPair(100, 101)
	if err := s.Submit([]belief.Labeling{{Pair: other}}); err == nil {
		t.Fatal("labeling an unpresented pair should error")
	}
	// Duplicate labelings are rejected.
	if err := s.Submit([]belief.Labeling{{Pair: pairs[0]}, {Pair: pairs[0]}}); err == nil {
		t.Fatal("duplicate labeling should error")
	}
	// A partial submission treats the rest as abstained.
	before := s.Belief().Confidences()
	if err := s.Submit([]belief.Labeling{{Pair: pairs[0]}}); err != nil {
		t.Fatal(err)
	}
	if s.Rounds() != 1 {
		t.Fatalf("Rounds = %d", s.Rounds())
	}
	moved := false
	for i, v := range s.Belief().Confidences() {
		if v != before[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("submission did not move the belief")
	}
	// The abstained pairs are recorded in history.
	round := s.History()[0]
	if len(round) != 5 {
		t.Fatalf("history round has %d labelings", len(round))
	}
	abstained := 0
	for _, lp := range round {
		if lp.Abstained {
			abstained++
		}
	}
	if abstained != 4 {
		t.Fatalf("abstained = %d, want 4", abstained)
	}
}

func TestSessionFreshPairsAcrossRounds(t *testing.T) {
	rel, space := sessionFixture(t)
	s, err := NewSession(SessionConfig{Relation: rel, Space: space, K: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[dataset.Pair]bool{}
	for round := 0; round < 10; round++ {
		pairs, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			if seen[p] {
				t.Fatalf("round %d re-presented pair %v", round, p)
			}
			seen[p] = true
		}
		if err := s.Submit(nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSessionSnapshotResume(t *testing.T) {
	rel, space := sessionFixture(t)
	s, err := NewSession(SessionConfig{Relation: rel, Space: space, K: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Play two rounds with best-response labels from an oracle belief.
	oracle := agents.NewStationaryTrainer(belief.DataEstimatePrior(space, rel, 0.1))
	for round := 0; round < 2; round++ {
		pairs, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(oracle.Label(rel, pairs)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := ResumeSession(snap, SessionConfig{Relation: rel, K: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Rounds() != 2 {
		t.Fatalf("resumed rounds = %d", resumed.Rounds())
	}
	if resumed.Belief().MAE(s.Belief()) != 0 {
		t.Fatal("resumed belief differs from original")
	}
	// Resumed session does not re-present already-labeled pairs.
	already := map[dataset.Pair]bool{}
	for _, round := range s.History() {
		for _, lp := range round {
			already[lp.Pair] = true
		}
	}
	pairs, err := resumed.Next()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if already[p] {
			t.Fatalf("resumed session re-presented %v", p)
		}
	}
}

func TestSessionSnapshotWithPendingRound(t *testing.T) {
	rel, space := sessionFixture(t)
	s, err := NewSession(SessionConfig{Relation: rel, Space: space, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("snapshot with pending round should error")
	}
}

func TestSessionValidation(t *testing.T) {
	rel, space := sessionFixture(t)
	if _, err := NewSession(SessionConfig{Space: space}); err == nil {
		t.Error("nil relation should error")
	}
	if _, err := NewSession(SessionConfig{Relation: rel}); err == nil {
		t.Error("nil space should error")
	}
	small := fd.MustNewSpace(fd.MustEnumerate(fd.SpaceConfig{Arity: 4, MaxLHS: 1}))
	wrongPrior := belief.UniformPrior(small, 0.5, 0.1)
	if _, err := NewSession(SessionConfig{Relation: rel, Space: space, Prior: wrongPrior}); err == nil {
		t.Error("mismatched prior should error")
	}
}

func TestSessionConvergesWithSimulatedAnnotator(t *testing.T) {
	// Session + FP annotator reproduce Run's dynamics.
	rel, space := sessionFixture(t)
	s, err := NewSession(SessionConfig{
		Relation: rel, Space: space, K: 10, Seed: 5,
		Sampler: sampling.Random{},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(6)
	annotator := agents.NewFPTrainer(belief.RandomPrior(space, rng, 0.1), nil)
	initialMAE := annotator.Belief().MAE(s.Belief())
	lastMAE := initialMAE
	for round := 0; round < 25; round++ {
		pairs, err := s.Next()
		if errors.Is(err, ErrPoolExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		annotator.Observe(rel, pairs)
		if err := s.Submit(annotator.Label(rel, pairs)); err != nil {
			t.Fatal(err)
		}
		lastMAE = annotator.Belief().MAE(s.Belief())
	}
	if lastMAE >= initialMAE {
		t.Fatalf("session did not converge: %v → %v", initialMAE, lastMAE)
	}
	if lastMAE > 0.25 {
		t.Fatalf("final MAE %v too high", lastMAE)
	}
}

func TestSessionPoolExhaustedSentinel(t *testing.T) {
	rel, space := sessionFixture(t)
	s, err := NewSession(SessionConfig{Relation: rel, Space: space, K: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Drain the pool: with K far above the pool size every round takes
	// everything that is left.
	for rounds := 0; ; rounds++ {
		pairs, err := s.Next()
		if err != nil {
			if !errors.Is(err, ErrPoolExhausted) {
				t.Fatalf("draining Next: err = %v, want ErrPoolExhausted", err)
			}
			break
		}
		if len(pairs) == 0 {
			t.Fatal("Next returned no pairs without ErrPoolExhausted")
		}
		if err := s.Submit(nil); err != nil {
			t.Fatal(err)
		}
		if rounds > 10_000 {
			t.Fatal("pool never exhausted")
		}
	}
	if s.RemainingPairs() != 0 {
		t.Fatalf("RemainingPairs = %d after exhaustion", s.RemainingPairs())
	}
}

func TestSessionContextCancellation(t *testing.T) {
	rel, space := sessionFixture(t)
	s, err := NewSession(SessionConfig{Relation: rel, Space: space, K: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.NextContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("NextContext on canceled ctx: err = %v", err)
	}
	// The failed call must not have consumed pool state.
	pairs, err := s.NextContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitContext(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitContext on canceled ctx: err = %v", err)
	}
	// The round is still pending after the canceled Submit.
	if got := s.Pending(); len(got) != len(pairs) {
		t.Fatalf("Pending = %d pairs, want %d", len(got), len(pairs))
	}
	if err := s.SubmitContext(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestSessionDiscardPending(t *testing.T) {
	rel, space := sessionFixture(t)
	s, err := NewSession(SessionConfig{Relation: rel, Space: space, K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if discarded := s.DiscardPending(); len(discarded) != len(pairs) {
		t.Fatalf("DiscardPending = %d pairs, want %d", len(discarded), len(pairs))
	}
	if s.Pending() != nil {
		t.Fatal("session still pending after DiscardPending")
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot after DiscardPending: %v", err)
	}
}

func TestRunContextCancellation(t *testing.T) {
	rel, space := sessionFixture(t)
	rng := stats.NewRNG(10)
	trainer := agents.NewFPTrainer(belief.RandomPrior(space, rng, 0.1), rng.Split())
	learner := agents.NewLearner(belief.DataEstimatePrior(space, rel, 0.12), sampling.Random{}, rng.Split())
	pool := sampling.NewPool(rel, space, sampling.PoolConfig{Seed: 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, rel, trainer, learner, pool, Config{Iterations: 5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on canceled ctx: err = %v", err)
	}
}
