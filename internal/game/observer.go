package game

import (
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
)

// Observer receives structured events from the round engine — one
// callback per phase of the §C.1 interaction protocol. Both execution
// forms emit the same stream: a batch Run, a step-wise Session driven
// by a live annotator, and the HTTP service all go through the one
// engine, so an observer written once sees identical events everywhere.
//
// Contract: events for one game/session are emitted strictly in
// protocol order — RoundStarted(t), PairsPresented(t), then on the
// matching submit RoundSubmitted(t), BeliefUpdated(t), RoundScored(t) —
// with t increasing by one per completed round and never repeated. The
// engine serializes calls for a single game; different games may invoke
// the same observer concurrently, so shared observers must synchronize
// their own state. Slices and beliefs passed in are the engine's live
// state: read them during the call, copy what must outlive it, never
// mutate them.
type Observer interface {
	// RoundStarted fires when the learner begins selecting round t's
	// pairs.
	RoundStarted(t int)
	// PairsPresented fires with the learner's selection for round t.
	PairsPresented(t int, pairs []dataset.Pair)
	// RoundSubmitted fires when the annotator's labelings (and any
	// revisions of earlier rounds) arrive, before evidence is applied.
	RoundSubmitted(t int, labeled, revisions []belief.Labeling)
	// BeliefUpdated fires after the learner incorporated the round's
	// evidence; b is the learner's live belief.
	BeliefUpdated(t int, b *belief.Belief)
	// RoundScored fires last with the completed IterationRecord (MAE,
	// payoff, optional detection score).
	RoundScored(t int, rec IterationRecord)
}

// NopObserver is the no-op Observer. Embed it to implement only the
// events an observer cares about.
type NopObserver struct{}

// RoundStarted implements Observer.
func (NopObserver) RoundStarted(int) {}

// PairsPresented implements Observer.
func (NopObserver) PairsPresented(int, []dataset.Pair) {}

// RoundSubmitted implements Observer.
func (NopObserver) RoundSubmitted(int, []belief.Labeling, []belief.Labeling) {}

// BeliefUpdated implements Observer.
func (NopObserver) BeliefUpdated(int, *belief.Belief) {}

// RoundScored implements Observer.
func (NopObserver) RoundScored(int, IterationRecord) {}

// multiObserver fans every event out to several observers in order.
type multiObserver []Observer

func (m multiObserver) RoundStarted(t int) {
	for _, o := range m {
		o.RoundStarted(t)
	}
}

func (m multiObserver) PairsPresented(t int, pairs []dataset.Pair) {
	for _, o := range m {
		o.PairsPresented(t, pairs)
	}
}

func (m multiObserver) RoundSubmitted(t int, labeled, revisions []belief.Labeling) {
	for _, o := range m {
		o.RoundSubmitted(t, labeled, revisions)
	}
}

func (m multiObserver) BeliefUpdated(t int, b *belief.Belief) {
	for _, o := range m {
		o.BeliefUpdated(t, b)
	}
}

func (m multiObserver) RoundScored(t int, rec IterationRecord) {
	for _, o := range m {
		o.RoundScored(t, rec)
	}
}

// MultiObserver combines observers into one that forwards every event
// to each non-nil observer in argument order. Zero or all-nil inputs
// collapse to the no-op observer; a single observer is returned as-is.
func MultiObserver(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return NopObserver{}
	case 1:
		return live[0]
	default:
		return multiObserver(live)
	}
}
