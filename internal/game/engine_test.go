package game

import (
	"fmt"
	"testing"

	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
)

func TestConfigBelievedTauZeroFootgun(t *testing.T) {
	// Unset tau defaults to 0.5.
	if got := (Config{}).withDefaults().BelievedTau; got != 0.5 {
		t.Fatalf("unset BelievedTau = %v, want 0.5", got)
	}
	// An explicit 0 survives when flagged — threshold 0 means "export
	// every hypothesis", a meaningful configuration.
	cfg := Config{BelievedTau: 0, BelievedTauSet: true}.withDefaults()
	if cfg.BelievedTau != 0 {
		t.Fatalf("explicit BelievedTau 0 overridden to %v", cfg.BelievedTau)
	}
	// Non-zero values pass through regardless of the flag.
	if got := (Config{BelievedTau: 0.7}).withDefaults().BelievedTau; got != 0.7 {
		t.Fatalf("BelievedTau 0.7 became %v", got)
	}
}

func TestSessionConfigBelievedTauZeroFootgun(t *testing.T) {
	rel, space := sessionFixture(t)
	s, err := NewSession(SessionConfig{Relation: rel, Space: space, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.eng.believedTau != 0.5 {
		t.Fatalf("unset session BelievedTau = %v, want 0.5", s.eng.believedTau)
	}
	s, err = NewSession(SessionConfig{
		Relation: rel, Space: space, Seed: 1,
		BelievedTau: 0, BelievedTauSet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.eng.believedTau != 0 {
		t.Fatalf("explicit session BelievedTau 0 overridden to %v", s.eng.believedTau)
	}
}

// eventTrace records every observer callback as "kind:t".
type eventTrace struct {
	events []string
}

func (e *eventTrace) RoundStarted(t int) { e.events = append(e.events, fmt.Sprintf("started:%d", t)) }
func (e *eventTrace) PairsPresented(t int, pairs []dataset.Pair) {
	e.events = append(e.events, fmt.Sprintf("presented:%d:%d", t, len(pairs)))
}
func (e *eventTrace) RoundSubmitted(t int, labeled, revisions []belief.Labeling) {
	e.events = append(e.events, fmt.Sprintf("submitted:%d:%d:%d", t, len(labeled), len(revisions)))
}
func (e *eventTrace) BeliefUpdated(t int, b *belief.Belief) {
	e.events = append(e.events, fmt.Sprintf("updated:%d", t))
}
func (e *eventTrace) RoundScored(t int, rec IterationRecord) {
	e.events = append(e.events, fmt.Sprintf("scored:%d", t))
}

func TestObserverEventOrderInRun(t *testing.T) {
	rel, space, pool, _ := buildWorld(t, 41)
	rng := stats.NewRNG(42)
	trainer := agents.NewFPTrainer(belief.RandomPrior(space, rng.Split(), 0.1), nil)
	learner := agents.NewLearner(belief.DataEstimatePrior(space, rel, 0.1), sampling.Random{}, rng.Split())

	trace := &eventTrace{}
	res, err := Run(rel, trainer, learner, pool, Config{K: 6, Iterations: 8, Observer: trace})
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Iterations)
	if len(trace.events) != 5*n {
		t.Fatalf("observer saw %d events for %d rounds, want %d", len(trace.events), n, 5*n)
	}
	for round := 0; round < n; round++ {
		want := []string{
			fmt.Sprintf("started:%d", round),
			fmt.Sprintf("presented:%d:%d", round, len(res.Iterations[round].Presented)),
			fmt.Sprintf("submitted:%d:%d:%d", round, len(res.Iterations[round].Labeled), len(res.Iterations[round].Revisions)),
			fmt.Sprintf("updated:%d", round),
			fmt.Sprintf("scored:%d", round),
		}
		for i, w := range want {
			if got := trace.events[5*round+i]; got != w {
				t.Fatalf("event %d = %q, want %q (trace %v)", 5*round+i, got, w, trace.events)
			}
		}
	}
}

func TestMultiObserver(t *testing.T) {
	a, b := &eventTrace{}, &eventTrace{}
	// nil and zero inputs collapse to the no-op.
	if _, ok := MultiObserver().(NopObserver); !ok {
		t.Fatal("MultiObserver() should be NopObserver")
	}
	if _, ok := MultiObserver(nil, nil).(NopObserver); !ok {
		t.Fatal("MultiObserver(nil, nil) should be NopObserver")
	}
	if got := MultiObserver(a); got != Observer(a) {
		t.Fatal("single observer should be returned as-is")
	}
	m := MultiObserver(a, nil, b)
	m.RoundStarted(3)
	if len(a.events) != 1 || len(b.events) != 1 || a.events[0] != "started:3" {
		t.Fatalf("fan-out failed: a=%v b=%v", a.events, b.events)
	}
}

func TestSessionRevisionSubmission(t *testing.T) {
	rel, space := sessionFixture(t)
	s, err := NewSession(SessionConfig{Relation: rel, Space: space, K: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: mark attribute 1 as erroneous on the first pair.
	mark := space.FD(0).LHS // any non-empty AttrSet works
	if err := s.Submit([]belief.Labeling{{Pair: first[0], Marked: mark}}); err != nil {
		t.Fatal(err)
	}
	afterFirst := append([]float64(nil), s.Belief().Confidences()...)

	second, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Round 2: fresh labels plus a correction of the round-1 label back
	// to clean — a revision, not an error.
	revised := belief.Labeling{Pair: first[0]}
	batch := []belief.Labeling{revised}
	for _, p := range second {
		batch = append(batch, belief.Labeling{Pair: p})
	}
	if err := s.Submit(batch); err != nil {
		t.Fatalf("revision submit: %v", err)
	}
	recs := s.Records()
	if len(recs) != 2 {
		t.Fatalf("Records = %d rounds", len(recs))
	}
	if len(recs[1].Revisions) != 1 || recs[1].Revisions[0].Pair != first[0] {
		t.Fatalf("round 2 revisions = %v", recs[1].Revisions)
	}
	if len(recs[1].Labeled) != len(second) {
		t.Fatalf("round 2 labeled %d pairs, want %d", len(recs[1].Labeled), len(second))
	}
	// The learner's memory now holds the corrected label.
	if got, ok := s.eng.learner.LabelHistory(first[0]); !ok || got != revised {
		t.Fatalf("LabelHistory(%v) = %v, %v", first[0], got, ok)
	}
	// Belief actually moved from the post-round-1 state (reversal plus
	// new evidence).
	moved := false
	for i, v := range s.Belief().Confidences() {
		if v != afterFirst[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("revision did not move the belief")
	}

	// A pair never presented nor labeled still errors.
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit([]belief.Labeling{{Pair: dataset.NewPair(100, 101)}}); err == nil {
		t.Fatal("labeling an unknown pair should error")
	}
}

func TestSessionDefensiveCopies(t *testing.T) {
	rel, space := sessionFixture(t)
	s, err := NewSession(SessionConfig{Relation: rel, Space: space, K: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if s.PendingCount() != len(pairs) {
		t.Fatalf("PendingCount = %d, want %d", s.PendingCount(), len(pairs))
	}
	// Clobbering the returned pending slice must not corrupt the round.
	got := s.Pending()
	for i := range got {
		got[i] = dataset.NewPair(9990, 9991+i)
	}
	if err := s.Submit([]belief.Labeling{{Pair: pairs[0]}}); err != nil {
		t.Fatalf("Submit after mutating Pending copy: %v", err)
	}
	// Clobbering a History round must not corrupt the engine's records.
	hist := s.History()
	hist[0][0] = belief.Labeling{Pair: dataset.NewPair(9990, 9991), Abstained: true}
	if rec := s.Records()[0]; rec.Labeled[0].Pair != pairs[0] {
		t.Fatalf("mutating History() copy leaked into Records: %v", rec.Labeled[0])
	}
}

func TestSessionRecordsMeasureAgainstReference(t *testing.T) {
	rel, space := sessionFixture(t)
	s, err := NewSession(SessionConfig{Relation: rel, Space: space, K: 6, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	oracle := agents.NewStationaryTrainer(belief.DataEstimatePrior(space, rel, 0.1))
	for round := 0; round < 3; round++ {
		pairs, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(oracle.Label(rel, pairs)); err != nil {
			t.Fatal(err)
		}
	}
	recs := s.Records()
	if len(recs) != 3 {
		t.Fatalf("Records = %d", len(recs))
	}
	for i, rec := range recs {
		// The learner's belief moves away from the static reference as
		// evidence accumulates, so the MAE series is strictly positive.
		if rec.MAE <= 0 || rec.MAE > 1 {
			t.Fatalf("round %d MAE = %v, want in (0,1]", i, rec.MAE)
		}
		if rec.TrainerPayoff < 0 {
			t.Fatalf("round %d payoff = %v", i, rec.TrainerPayoff)
		}
	}
}

func TestSessionResumeKeepsRecords(t *testing.T) {
	rel, space, _, ground := buildWorld(t, 43)
	rng := stats.NewRNG(44)
	_, testRows := rel.Split(rng.Split(), 0.7)
	dirty := map[int]struct{}{}
	for newIdx, orig := range testRows {
		if _, bad := ground.DirtyRows[orig]; bad {
			dirty[newIdx] = struct{}{}
		}
	}
	mkCfg := func() SessionConfig {
		return SessionConfig{
			Relation: rel, Space: space, K: 5, Seed: 45,
			Eval: &Evaluator{TestRel: rel.Subset(testRows), DirtyRows: dirty},
		}
	}
	s, err := NewSession(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	oracle := agents.NewStationaryTrainer(belief.DataEstimatePrior(space, rel, 0.1))
	for round := 0; round < 3; round++ {
		pairs, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(oracle.Label(rel, pairs)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeSession(snap, mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	orig, got := s.Records(), resumed.Records()
	if len(got) != len(orig) {
		t.Fatalf("resumed Records = %d rounds, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i].MAE != orig[i].MAE || got[i].TrainerPayoff != orig[i].TrainerPayoff {
			t.Fatalf("round %d measurements changed: %v/%v vs %v/%v",
				i, got[i].MAE, got[i].TrainerPayoff, orig[i].MAE, orig[i].TrainerPayoff)
		}
		if got[i].Detection != orig[i].Detection {
			t.Fatalf("round %d detection changed: %+v vs %+v", i, got[i].Detection, orig[i].Detection)
		}
		if len(got[i].Labeled) != len(orig[i].Labeled) {
			t.Fatalf("round %d labeled count changed", i)
		}
	}
	// A post-resume revision of a pre-snapshot label goes through the
	// exact-reversal path (RestoreHistory reseeded the memory) instead
	// of erroring as an unknown pair.
	target := orig[0].Labeled[0]
	if _, err := resumed.Next(); err != nil {
		t.Fatal(err)
	}
	flip := belief.Labeling{Pair: target.Pair, Marked: space.FD(0).LHS}
	if err := resumed.Submit([]belief.Labeling{flip}); err != nil {
		t.Fatalf("revising a pre-snapshot label after resume: %v", err)
	}
	last := resumed.Records()[len(resumed.Records())-1]
	if len(last.Revisions) != 1 || last.Revisions[0].Pair != target.Pair {
		t.Fatalf("post-resume revisions = %v", last.Revisions)
	}
}
