// Package game implements the exploratory-training game of Section 2:
// the interaction loop between trainer and learner, the payoff
// functions u_T, u_a and u_L, the interaction history, empirical action
// frequencies, and convergence detection (Definition 2 / Proposition 1).
package game

import (
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/stats"
)

// TrainerPayoff is u_T(θ, π): the sum over the interaction's labelings
// of the probability the trainer's belief assigns to its own labels
// (Section 2). A trainer acting in best response maximizes this given
// its belief.
func TrainerPayoff(b *belief.Belief, rel *dataset.Relation, labeled []belief.Labeling) float64 {
	var u float64
	for _, lp := range labeled {
		u += b.LabelPayoff(rel, lp.Pair, lp.Label())
	}
	return u
}

// LearnerActionPayoff is u_a(θ, π): the expected probability, under the
// policy distribution over presented examples, that the learner's belief
// predicts the trainer's labels (Section 2). policy[i] is the
// probability the learner's policy assigned to presenting labeled[i].
func LearnerActionPayoff(b *belief.Belief, rel *dataset.Relation, labeled []belief.Labeling, policy []float64) float64 {
	var u float64
	for i, lp := range labeled {
		w := 1.0
		if policy != nil {
			w = policy[i]
		}
		u += w * b.LabelPayoff(rel, lp.Pair, lp.Label())
	}
	return u
}

// LearnerPayoff is u_L(θ, π) = u_a(θ, π) + γ·H(π): the entropy-
// regularized learner payoff of Section 2 (the paper writes the entropy
// bonus as −γ Σ π ln π, i.e. +γ·H). The entropy term rewards policies
// that present a diverse, representative sample.
func LearnerPayoff(b *belief.Belief, rel *dataset.Relation, labeled []belief.Labeling, policy []float64, gamma float64) float64 {
	return LearnerActionPayoff(b, rel, labeled, policy) + gamma*stats.Entropy(policy)
}
