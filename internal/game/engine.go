package game

import (
	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
)

// roundEngine is the single implementation of one interaction of the
// §C.1 protocol. Every execution form — the batch Run driver with a
// simulated trainer, the step-wise Session an interactive caller or the
// HTTP service advances, the resumed-from-snapshot session — funnels
// its rounds through step, so incorporation, revision reversal,
// frequency recording, MAE/payoff measurement, evaluator scoring and
// observer events exist exactly once.
type roundEngine struct {
	rel     *dataset.Relation
	learner *agents.Learner
	// annotatorBelief provides the annotator-side belief MAE and
	// TrainerPayoff are measured against: the simulated trainer's live
	// belief in a Run, a caller-chosen reference in a Session. A nil
	// provider (or nil belief) leaves both measurements zero.
	annotatorBelief func() *belief.Belief
	// eval, when non-nil, scores the learner's believed model on a
	// held-out split every round.
	eval           *Evaluator
	believedTau    float64
	maxBelievedStd float64
	obs            Observer
	freqs          *Frequencies
	records        []IterationRecord
}

// engineConfig assembles a round engine; zero-value thresholds must be
// resolved by the caller (Config/SessionConfig own the defaulting).
type engineConfig struct {
	rel             *dataset.Relation
	learner         *agents.Learner
	annotatorBelief func() *belief.Belief
	eval            *Evaluator
	believedTau     float64
	maxBelievedStd  float64
	obs             Observer
}

func newRoundEngine(cfg engineConfig) *roundEngine {
	obs := cfg.obs
	if obs == nil {
		obs = NopObserver{}
	}
	return &roundEngine{
		rel:             cfg.rel,
		learner:         cfg.learner,
		annotatorBelief: cfg.annotatorBelief,
		eval:            cfg.eval,
		believedTau:     cfg.believedTau,
		maxBelievedStd:  cfg.maxBelievedStd,
		obs:             obs,
		freqs:           NewFrequencies(),
	}
}

// round is the index the next completed interaction will get.
func (e *roundEngine) round() int { return len(e.records) }

// believedModel extracts the FDs the learner currently exports to the
// evaluator: confidence at least believedTau, optionally filtered by
// the posterior-std cap that keeps prior-only hypotheses out.
func (e *roundEngine) believedModel() []fd.FD {
	if e.maxBelievedStd > 0 {
		return e.learner.Belief().ConfidentFDs(e.believedTau, e.maxBelievedStd)
	}
	return e.learner.Belief().BelievedFDs(e.believedTau)
}

// step completes one interaction: the annotator's labelings (and any
// revisions of earlier labels) are folded into the learner's belief —
// revisions through the exact-reversal path — then the round is
// measured (MAE and trainer payoff against the annotator-side belief,
// optional held-out detection score), recorded in the action
// frequencies, and appended to the trajectory. Observer events fire in
// protocol order around each phase.
func (e *roundEngine) step(presented []dataset.Pair, labeled, revisions []belief.Labeling) IterationRecord {
	t := e.round()
	e.obs.RoundSubmitted(t, labeled, revisions)
	e.learner.Incorporate(e.rel, labeled)
	if len(revisions) > 0 {
		e.learner.Revise(e.rel, revisions)
	}
	e.obs.BeliefUpdated(t, e.learner.Belief())

	rec := IterationRecord{
		Presented: presented,
		Labeled:   labeled,
		Revisions: revisions,
	}
	if e.annotatorBelief != nil {
		if ab := e.annotatorBelief(); ab != nil {
			rec.MAE = ab.MAE(e.learner.Belief())
			rec.TrainerPayoff = TrainerPayoff(ab, e.rel, labeled)
		}
	}
	if e.eval != nil {
		rec.Detection = e.eval.Score(e.believedModel())
	}
	e.freqs.Record(presented, labeled)
	e.records = append(e.records, rec)
	e.obs.RoundScored(t, rec)
	return rec
}

// restore reloads a previously recorded trajectory (a resumed
// snapshot): records are appended as-is, the action frequencies are
// replayed, and the learner's labeling history is reseeded so future
// revisions of pre-snapshot labels reverse the right evidence. No
// belief updates happen — the snapshot's belief already contains the
// rounds' evidence.
func (e *roundEngine) restore(records []IterationRecord) {
	for _, rec := range records {
		e.freqs.Record(rec.Presented, rec.Labeled)
		e.learner.RestoreHistory(rec.Labeled)
		e.learner.RestoreHistory(rec.Revisions)
	}
	e.records = append(e.records, records...)
}
