package game

import (
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
)

// IsBestResponse reports whether the labelings are a best response to
// the belief: every pair carries exactly the marks MarkPairs would
// produce. Proposition 1's convergence argument assumes the trainer
// best-responds; this check lets tests and diagnostics verify it on
// recorded trajectories. Abstained labelings are never best responses
// (abstention forgoes payoff) and return false.
func IsBestResponse(b *belief.Belief, rel *dataset.Relation, labeled []belief.Labeling) bool {
	pairs := make([]dataset.Pair, len(labeled))
	for i, lp := range labeled {
		if lp.Abstained {
			return false
		}
		pairs[i] = lp.Pair
	}
	want := b.MarkPairs(rel, pairs, 0.5)
	for i := range labeled {
		if labeled[i].Marked != want[i].Marked {
			return false
		}
	}
	return true
}

// Exploitability measures how far the trainer's realized labeling falls
// short of its best response, as a payoff gap per labeling:
//
//	(u_T(best response) − u_T(actual)) / |labelings|
//
// Zero means the labeling was exactly optimal given the belief; label
// noise, abstention, or a lagging response model show up as positive
// gaps. The value is in [0, 1].
func Exploitability(b *belief.Belief, rel *dataset.Relation, labeled []belief.Labeling) float64 {
	if len(labeled) == 0 {
		return 0
	}
	var actual, best float64
	for _, lp := range labeled {
		pd := b.PDirty(rel, lp.Pair)
		actual += b.LabelPayoff(rel, lp.Pair, lp.Label())
		if pd >= 0.5 {
			best += pd
		} else {
			best += 1 - pd
		}
	}
	gap := (best - actual) / float64(len(labeled))
	if gap < 0 {
		return 0
	}
	return gap
}
