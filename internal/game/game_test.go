package game

import (
	"math"
	"testing"

	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/errgen"
	"exptrain/internal/fd"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
)

// buildWorld creates a dirtied relation with two planted FDs, a
// hypothesis space, and a candidate pool — a miniature of the §C setup.
func buildWorld(t *testing.T, seed uint64) (*dataset.Relation, *fd.Space, *sampling.Pool, *errgen.Result) {
	t.Helper()
	clean := dataset.New(dataset.MustSchema("a", "b", "c", "d"))
	gen := stats.NewRNG(seed ^ 0xD00D)
	for i := 0; i < 120; i++ {
		a := string(rune('0' + gen.Intn(6)))
		c := string(rune('A' + gen.Intn(5)))
		clean.MustAppend(dataset.Tuple{a, "fb" + a, c, string(rune('x' + gen.Intn(3)))})
	}
	planted := fd.MustNew(fd.NewAttrSet(0), 1)
	res, err := errgen.InjectDegree(clean, errgen.DegreeConfig{
		FDs: []fd.FD{planted}, Degree: 0.1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	space := fd.MustNewSpace(fd.MustEnumerate(fd.SpaceConfig{Arity: 4, MaxLHS: 2}))
	pool := sampling.NewPool(res.Rel, space, sampling.PoolConfig{Seed: seed})
	return res.Rel, space, pool, res
}

func TestRunBasicProtocol(t *testing.T) {
	rel, space, pool, _ := buildWorld(t, 1)
	rng := stats.NewRNG(2)
	trainer := agents.NewFPTrainer(belief.RandomPrior(space, rng.Split(), 0.1), nil)
	learner := agents.NewLearner(belief.DataEstimatePrior(space, rel, 0.1), sampling.Random{}, rng.Split())

	res, err := Run(rel, trainer, learner, pool, Config{K: 10, Iterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 15 {
		t.Fatalf("ran %d iterations, want 15", len(res.Iterations))
	}
	for i, it := range res.Iterations {
		if len(it.Presented) != 10 {
			t.Fatalf("iteration %d presented %d pairs", i, len(it.Presented))
		}
		if len(it.Labeled) != 10 {
			t.Fatalf("iteration %d labeled %d pairs", i, len(it.Labeled))
		}
		if it.MAE < 0 || it.MAE > 1 {
			t.Fatalf("iteration %d MAE out of range: %v", i, it.MAE)
		}
		if it.TrainerPayoff < 0 || it.TrainerPayoff > 10 {
			t.Fatalf("iteration %d trainer payoff out of range: %v", i, it.TrainerPayoff)
		}
	}
	if res.Frequencies.Total() != 150 {
		t.Fatalf("frequencies recorded %d actions", res.Frequencies.Total())
	}
}

func TestRunFreshExamplesEachIteration(t *testing.T) {
	rel, space, pool, _ := buildWorld(t, 3)
	rng := stats.NewRNG(4)
	trainer := agents.NewFPTrainer(belief.RandomPrior(space, rng.Split(), 0.1), nil)
	learner := agents.NewLearner(belief.DataEstimatePrior(space, rel, 0.1), sampling.StochasticUS{}, rng.Split())

	res, err := Run(rel, trainer, learner, pool, Config{K: 10, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[dataset.Pair]bool{}
	for i, it := range res.Iterations {
		for _, p := range it.Presented {
			if seen[p] {
				t.Fatalf("iteration %d re-presented pair %v", i, p)
			}
			seen[p] = true
		}
	}
}

func TestRunMAEDecreases(t *testing.T) {
	// With an FP trainer and a label-driven learner, belief agreement
	// should improve substantially over the run (paper's headline
	// dynamic).
	rel, space, pool, _ := buildWorld(t, 5)
	rng := stats.NewRNG(6)
	trainer := agents.NewFPTrainer(belief.RandomPrior(space, rng.Split(), 0.1), nil)
	learner := agents.NewLearner(belief.DataEstimatePrior(space, rel, 0.1), sampling.Random{}, rng.Split())

	res, err := Run(rel, trainer, learner, pool, Config{K: 10, Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Iterations[0].MAE
	last := res.FinalMAE()
	if last >= first {
		t.Fatalf("MAE did not decrease: first %v, last %v", first, last)
	}
	if last > 0.35 {
		t.Fatalf("final MAE %v too high for a converging run", last)
	}
}

func TestRunWithEvaluator(t *testing.T) {
	rel, space, pool, ground := buildWorld(t, 7)
	rng := stats.NewRNG(8)
	// Hold out 30% as a test split.
	_, testRows := rel.Split(rng.Split(), 0.7)
	testRel := rel.Subset(testRows)
	dirty := map[int]struct{}{}
	for newIdx, orig := range testRows {
		if _, bad := ground.DirtyRows[orig]; bad {
			dirty[newIdx] = struct{}{}
		}
	}
	eval := &Evaluator{TestRel: testRel, DirtyRows: dirty}

	trainer := agents.NewFPTrainer(belief.RandomPrior(space, rng.Split(), 0.1), nil)
	learner := agents.NewLearner(belief.DataEstimatePrior(space, rel, 0.1), sampling.Random{}, rng.Split())
	res, err := Run(rel, trainer, learner, pool, Config{K: 10, Iterations: 30, Eval: eval})
	if err != nil {
		t.Fatal(err)
	}
	f1s := res.F1Series()
	if len(f1s) != 30 {
		t.Fatalf("F1 series length %d", len(f1s))
	}
	for i, v := range f1s {
		if v < 0 || v > 1 {
			t.Fatalf("iteration %d F1 out of range: %v", i, v)
		}
	}
	// By the end the learner should detect planted errors well: the
	// believed FD a→b flags exactly the corrupted rows' minority values.
	if f1s[len(f1s)-1] <= 0.5 {
		t.Fatalf("final detection F1 %v too low", f1s[len(f1s)-1])
	}
}

func TestRunSpaceMismatch(t *testing.T) {
	rel, space, pool, _ := buildWorld(t, 9)
	small := fd.MustNewSpace(fd.MustEnumerate(fd.SpaceConfig{Arity: 4, MaxLHS: 1}))
	rng := stats.NewRNG(10)
	trainer := agents.NewFPTrainer(belief.UniformPrior(space, 0.5, 0.1), nil)
	learner := agents.NewLearner(belief.UniformPrior(small, 0.5, 0.1), sampling.Random{}, rng)
	if _, err := Run(rel, trainer, learner, pool, Config{}); err == nil {
		t.Fatal("mismatched spaces should error")
	}
}

func TestRunPoolExhaustion(t *testing.T) {
	// A tiny pool ends the game early rather than looping or panicking.
	rel := dataset.New(dataset.MustSchema("a", "b"))
	for i := 0; i < 6; i++ {
		rel.MustAppend(dataset.Tuple{string(rune('0' + i%2)), "v"})
	}
	space := fd.MustNewSpace([]fd.FD{fd.MustNew(fd.NewAttrSet(0), 1)})
	pool := sampling.NewPool(rel, space, sampling.PoolConfig{RandomPairs: 1, Seed: 1})
	rng := stats.NewRNG(2)
	trainer := agents.NewFPTrainer(belief.UniformPrior(space, 0.5, 0.1), nil)
	learner := agents.NewLearner(belief.UniformPrior(space, 0.5, 0.1), sampling.Random{}, rng)
	res, err := Run(rel, trainer, learner, pool, Config{K: 4, Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) >= 100 {
		t.Fatalf("game did not stop on pool exhaustion: %d iterations", len(res.Iterations))
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	run := func() []float64 {
		rel, space, pool, _ := buildWorld(t, 11)
		rng := stats.NewRNG(12)
		trainer := agents.NewFPTrainer(belief.RandomPrior(space, rng.Split(), 0.1), nil)
		learner := agents.NewLearner(belief.DataEstimatePrior(space, rel, 0.1), sampling.StochasticUS{}, rng.Split())
		res, err := Run(rel, trainer, learner, pool, Config{K: 10, Iterations: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res.MAESeries()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at iteration %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestConvergenceProposition1 exercises the empirical content of
// Proposition 1: with (FP, Best) trainer and (FP, StochasticBR) learner,
// the empirical behaviour stabilizes — both agents' beliefs stop moving.
func TestConvergenceProposition1(t *testing.T) {
	rel, space, pool, _ := buildWorld(t, 13)
	rng := stats.NewRNG(14)
	trainer := agents.NewFPTrainer(belief.RandomPrior(space, rng.Split(), 0.1), nil)
	learner := agents.NewLearner(belief.DataEstimatePrior(space, rel, 0.1), sampling.StochasticBR{}, rng.Split())

	var trMove, leMove MovementTracker
	cfg := Config{K: 10, Iterations: 60}
	// Run manually to track movement per iteration.
	trMove.Observe(trainer.Belief().Confidences())
	leMove.Observe(learner.Belief().Confidences())
	for i := 0; i < cfg.Iterations; i++ {
		remaining := pool.Remaining()
		if len(remaining) == 0 {
			break
		}
		presented := learner.Present(rel, remaining, cfg.K)
		pool.MarkShown(presented)
		trainer.Observe(rel, presented)
		labeled := trainer.Label(rel, presented)
		learner.Incorporate(rel, labeled)
		trMove.Observe(trainer.Belief().Confidences())
		leMove.Observe(learner.Belief().Confidences())
	}
	if !Converged(trMove.Series(), leMove.Series(), ConvergenceConfig{Tol: 0.02, Window: 5}) {
		t.Fatalf("game did not converge; trainer tail %v learner tail %v",
			tail(trMove.Series(), 5), tail(leMove.Series(), 5))
	}
}

func tail(xs []float64, n int) []float64 {
	if len(xs) < n {
		return xs
	}
	return xs[len(xs)-n:]
}

func TestConvergedEdgeCases(t *testing.T) {
	flat := []float64{0.001, 0.001, 0.001, 0.001, 0.001}
	if !Converged(flat, flat, ConvergenceConfig{Tol: 0.01, Window: 5}) {
		t.Fatal("flat series should converge")
	}
	if Converged(flat[:3], flat, ConvergenceConfig{Tol: 0.01, Window: 5}) {
		t.Fatal("short series should not converge")
	}
	spiky := []float64{0.001, 0.001, 0.001, 0.5, 0.001}
	if Converged(spiky, flat, ConvergenceConfig{Tol: 0.01, Window: 5}) {
		t.Fatal("spiky series should not converge")
	}
	// Defaults fill in.
	if !Converged(flat, flat, ConvergenceConfig{}) {
		t.Fatal("defaults should accept flat series")
	}
}

func TestFrequencies(t *testing.T) {
	f := NewFrequencies()
	p1 := dataset.NewPair(0, 1)
	p2 := dataset.NewPair(1, 2)
	mark := fd.NewAttrSet(1)
	f.Record([]dataset.Pair{p1, p2},
		[]belief.Labeling{{Pair: p1, Marked: mark}, {Pair: p2}})
	f.Record([]dataset.Pair{p1},
		[]belief.Labeling{{Pair: p1, Marked: mark}})
	if got := f.PairFrequency(p1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("PairFrequency(p1) = %v", got)
	}
	if got := f.DirtyRate(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("DirtyRate = %v", got)
	}
	empty := NewFrequencies()
	if empty.PairFrequency(p1) != 0 || empty.DirtyRate() != 0 {
		t.Error("empty frequencies should be zero")
	}
}

func TestPayoffs(t *testing.T) {
	rel, space, _, _ := buildWorld(t, 15)
	b := belief.UniformPrior(space, 0.5, 0.1)
	p := dataset.NewPair(0, 1)
	labeled := []belief.Labeling{{Pair: p}}
	// Uniform belief: label payoff is PDirty or its complement; both in
	// [0,1], and u_T for one labeling equals the label payoff.
	uT := TrainerPayoff(b, rel, labeled)
	if uT != b.LabelPayoff(rel, p, belief.Clean) {
		t.Fatalf("TrainerPayoff = %v", uT)
	}
	// u_a with nil policy weights defaults to weight 1.
	ua := LearnerActionPayoff(b, rel, labeled, nil)
	if ua != uT {
		t.Fatalf("LearnerActionPayoff = %v, want %v", ua, uT)
	}
	// Entropy bonus strictly increases payoff for a stochastic policy.
	policy := []float64{1}
	uL := LearnerPayoff(b, rel, labeled, policy, 0.5)
	if uL != LearnerActionPayoff(b, rel, labeled, policy) {
		t.Fatalf("deterministic policy has zero entropy; uL = %v", uL)
	}
	policy2 := []float64{0.5, 0.5}
	labeled2 := []belief.Labeling{
		{Pair: p},
		{Pair: dataset.NewPair(2, 3)},
	}
	uL2 := LearnerPayoff(b, rel, labeled2, policy2, 0.5)
	if uL2 <= LearnerActionPayoff(b, rel, labeled2, policy2) {
		t.Fatal("entropy bonus missing for mixed policy")
	}
}

func TestMovementTracker(t *testing.T) {
	var m MovementTracker
	m.Observe([]float64{0.5, 0.5})
	if len(m.Series()) != 0 {
		t.Fatal("first observation should not emit movement")
	}
	m.Observe([]float64{0.6, 0.4})
	s := m.Series()
	if len(s) != 1 || math.Abs(s[0]-0.1) > 1e-12 {
		t.Fatalf("movement = %v, want [0.1]", s)
	}
}
