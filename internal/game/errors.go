package game

import "errors"

// Sentinel errors of the step-wise session protocol. They are wrapped
// (with %w) by the methods that return them, so callers test with
// errors.Is and can map them onto transport-level codes (the HTTP
// service maps ErrRoundPending/ErrNoRoundPending to 409 Conflict and
// ErrPoolExhausted to 410 Gone).
var (
	// ErrRoundPending: Next was called while a presented round has not
	// been submitted yet (the protocol is strictly alternating).
	ErrRoundPending = errors.New("game: previous round not yet submitted")
	// ErrNoRoundPending: Submit was called with no round presented.
	ErrNoRoundPending = errors.New("game: no round pending")
	// ErrPoolExhausted: the candidate pool has no fresh pairs left; the
	// session has seen everything it can usefully present.
	ErrPoolExhausted = errors.New("game: candidate pool exhausted")
)
