package game

import (
	"context"
	"fmt"

	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/persist"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
)

// Session is the step-wise form of the training game for callers that
// own the annotator side — an interactive UI, a crowdsourcing bridge, a
// remote labeling service. Run drives both agents in a loop; a Session
// instead alternates explicit Next (present fresh pairs) and Submit
// (consume the annotations) calls, and can checkpoint/resume through
// internal/persist.
type Session struct {
	rel     *dataset.Relation
	space   *fd.Space
	learner *agents.Learner
	pool    *sampling.Pool
	k       int
	history [][]belief.Labeling
	pending []dataset.Pair
}

// SessionConfig assembles a step-wise session.
type SessionConfig struct {
	// Relation is the data under annotation (required).
	Relation *dataset.Relation
	// Space is the FD hypothesis space (required).
	Space *fd.Space
	// Prior is the learner's starting belief; defaults to the
	// data-estimate prior with σ = 0.12.
	Prior *belief.Belief
	// Sampler is the response strategy; defaults to StochasticUS.
	Sampler sampling.Sampler
	// K is the number of pairs per round (default 10).
	K int
	// Seed drives pool construction and stochastic selection.
	Seed uint64
}

// NewSession validates the configuration and builds the session.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Relation == nil {
		return nil, fmt.Errorf("game: SessionConfig.Relation is required")
	}
	if cfg.Space == nil {
		return nil, fmt.Errorf("game: SessionConfig.Space is required")
	}
	prior := cfg.Prior
	if prior == nil {
		prior = belief.DataEstimatePrior(cfg.Space, cfg.Relation, 0.12)
	}
	if prior.Size() != cfg.Space.Size() {
		return nil, fmt.Errorf("game: prior covers %d hypotheses, space has %d", prior.Size(), cfg.Space.Size())
	}
	sampler := cfg.Sampler
	if sampler == nil {
		sampler = sampling.StochasticUS{}
	}
	k := cfg.K
	if k <= 0 {
		k = 10
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x5E5510)
	return &Session{
		rel:     cfg.Relation,
		space:   cfg.Space,
		learner: agents.NewLearner(prior, sampler, rng.Split()),
		pool:    sampling.NewPool(cfg.Relation, cfg.Space, sampling.PoolConfig{Seed: cfg.Seed ^ 0x9001}),
		k:       k,
	}, nil
}

// Next selects the round's fresh pairs. It returns an error wrapping
// ErrPoolExhausted when the pool has no fresh pairs left, and one
// wrapping ErrRoundPending if the previous round was never submitted
// (the protocol is strictly alternating).
func (s *Session) Next() ([]dataset.Pair, error) {
	return s.NextContext(context.Background())
}

// NextContext is Next with cancellation: a done context aborts before
// any pool state changes.
func (s *Session) NextContext(ctx context.Context) ([]dataset.Pair, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.pending != nil {
		return nil, fmt.Errorf("%w; submit it before calling Next", ErrRoundPending)
	}
	remaining := s.pool.Remaining()
	if len(remaining) == 0 {
		return nil, fmt.Errorf("%w after %d rounds", ErrPoolExhausted, len(s.history))
	}
	presented := s.learner.Present(s.rel, remaining, s.k)
	s.pool.MarkShown(presented)
	s.pending = presented
	return presented, nil
}

// Submit consumes the annotations for the pending round. Every labeling
// must reference a pending pair; pending pairs missing from the batch
// are treated as abstained (no evidence). Submitting with no round
// pending returns an error wrapping ErrNoRoundPending.
func (s *Session) Submit(labeled []belief.Labeling) error {
	return s.SubmitContext(context.Background(), labeled)
}

// SubmitContext is Submit with cancellation: a done context aborts
// before the learner's belief is touched, leaving the round pending.
func (s *Session) SubmitContext(ctx context.Context, labeled []belief.Labeling) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.pending == nil {
		return fmt.Errorf("%w; call Next first", ErrNoRoundPending)
	}
	allowed := make(map[dataset.Pair]struct{}, len(s.pending))
	for _, p := range s.pending {
		allowed[p] = struct{}{}
	}
	seen := make(map[dataset.Pair]struct{}, len(labeled))
	for _, lp := range labeled {
		if _, ok := allowed[lp.Pair]; !ok {
			return fmt.Errorf("game: labeling for pair %v which was not presented this round", lp.Pair)
		}
		if _, dup := seen[lp.Pair]; dup {
			return fmt.Errorf("game: duplicate labeling for pair %v", lp.Pair)
		}
		seen[lp.Pair] = struct{}{}
	}
	full := append([]belief.Labeling(nil), labeled...)
	for _, p := range s.pending {
		if _, ok := seen[p]; !ok {
			full = append(full, belief.Labeling{Pair: p, Abstained: true})
		}
	}
	s.learner.Incorporate(s.rel, full)
	s.history = append(s.history, full)
	s.pending = nil
	return nil
}

// Belief exposes the learner's current belief.
func (s *Session) Belief() *belief.Belief { return s.learner.Belief() }

// Relation returns the data under annotation.
func (s *Session) Relation() *dataset.Relation { return s.rel }

// Pending returns the presented-but-unsubmitted round (nil when the
// session is idle). The slice is shared; do not mutate.
func (s *Session) Pending() []dataset.Pair { return s.pending }

// RemainingPairs reports how many fresh candidate pairs the pool still
// holds.
func (s *Session) RemainingPairs() int { return len(s.pool.Remaining()) }

// DiscardPending drops an unsubmitted round so the session can be
// snapshotted, returning the discarded pairs (nil when idle). The pairs
// stay consumed in this in-memory pool, but a session resumed from the
// snapshot rebuilds its pool from submitted history only, so they
// become presentable again.
func (s *Session) DiscardPending() []dataset.Pair {
	p := s.pending
	s.pending = nil
	return p
}

// Rounds returns how many rounds have been submitted.
func (s *Session) Rounds() int { return len(s.history) }

// History returns the submitted labelings per round (shared slices; do
// not mutate).
func (s *Session) History() [][]belief.Labeling { return s.history }

// Snapshot checkpoints the session (learner belief + history). A
// pending unsubmitted round is not captured; submit or discard it
// first.
func (s *Session) Snapshot() (*persist.Snapshot, error) {
	if s.pending != nil {
		return nil, fmt.Errorf("cannot snapshot: %w", ErrRoundPending)
	}
	return persist.NewSnapshot(s.rel.Schema(), s.space, nil, s.learner.Belief(), s.history)
}

// ResumeSession rebuilds a session from a snapshot against the same
// relation: the hypothesis space and learner belief are restored, and
// previously labeled pairs are excluded from future rounds.
func ResumeSession(snap *persist.Snapshot, cfg SessionConfig) (*Session, error) {
	if cfg.Relation == nil {
		return nil, fmt.Errorf("game: SessionConfig.Relation is required")
	}
	if err := snap.ValidateSchema(cfg.Relation.Schema()); err != nil {
		return nil, err
	}
	space, err := snap.RestoreSpace()
	if err != nil {
		return nil, err
	}
	learnerBelief, err := snap.RestoreLearner(space)
	if err != nil {
		return nil, err
	}
	history, err := snap.RestoreHistory()
	if err != nil {
		return nil, err
	}
	cfg.Space = space
	if learnerBelief != nil {
		cfg.Prior = learnerBelief
	}
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	s.history = history
	for _, round := range history {
		shown := make([]dataset.Pair, 0, len(round))
		for _, lp := range round {
			shown = append(shown, lp.Pair)
		}
		s.pool.MarkShown(shown)
	}
	return s, nil
}
