package game

import (
	"context"
	"fmt"

	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/persist"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
)

// Session is the step-wise form of the training game for callers that
// own the annotator side — an interactive UI, a crowdsourcing bridge, a
// remote labeling service. Run drives both agents in a loop; a Session
// instead alternates explicit Next (present fresh pairs) and Submit
// (consume the annotations) calls, and can checkpoint/resume through
// internal/persist.
//
// Both forms execute the same round engine, so a Session round carries
// the full per-round protocol: label incorporation, revision reversal
// for corrected earlier labels, action-frequency recording, MAE and
// trainer-payoff measurement against the reference belief, optional
// held-out detection scoring, and observer events.
type Session struct {
	rel     *dataset.Relation
	space   *fd.Space
	eng     *roundEngine
	pool    *sampling.Pool
	k       int
	pending []dataset.Pair
	// allowed and seen are Submit's validation scratch, cleared and
	// reused every round so steady-state submission allocates nothing
	// for bookkeeping (the fresh/full labeling slices stay freshly
	// allocated — they are retained in the engine's records).
	allowed map[dataset.Pair]struct{}
	seen    map[dataset.Pair]struct{}
}

// SessionConfig assembles a step-wise session.
type SessionConfig struct {
	// Relation is the data under annotation (required).
	Relation *dataset.Relation
	// Space is the FD hypothesis space (required).
	Space *fd.Space
	// Prior is the learner's starting belief; defaults to the
	// data-estimate prior with σ = 0.12.
	Prior *belief.Belief
	// Sampler is the response strategy; defaults to StochasticUS.
	Sampler sampling.Sampler
	// K is the number of pairs per round (default 10).
	K int
	// Seed drives pool construction and stochastic selection.
	Seed uint64
	// Eval, when non-nil, scores the learner's believed model on a
	// held-out split after every submitted round (the per-round
	// Detection in Records).
	Eval *Evaluator
	// BelievedTau is the confidence threshold for exporting FDs to the
	// evaluator. A zero BelievedTau with BelievedTauSet false defaults
	// to 0.5; set BelievedTauSet to make an explicit 0 expressible.
	BelievedTau    float64
	BelievedTauSet bool
	// MaxBelievedStd caps the posterior standard deviation of exported
	// FDs (default 0.1; negative disables the filter).
	MaxBelievedStd float64
	// Reference is the annotator-side belief the per-round MAE and
	// TrainerPayoff are measured against. A live annotator's true
	// belief is unobservable, so the default is the data-estimate
	// belief — the belief a fully informed annotator would hold — which
	// makes the MAE series a convergence proxy and the payoff series a
	// label-consistency signal.
	Reference *belief.Belief
	// Observer receives the engine's structured per-round events
	// (default: no-op). Calls are serialized per session.
	Observer Observer
}

// NewSession validates the configuration and builds the session.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Relation == nil {
		return nil, fmt.Errorf("game: SessionConfig.Relation is required")
	}
	if cfg.Space == nil {
		return nil, fmt.Errorf("game: SessionConfig.Space is required")
	}
	prior := cfg.Prior
	if prior == nil {
		prior = belief.DataEstimatePrior(cfg.Space, cfg.Relation, 0.12)
	}
	if prior.Size() != cfg.Space.Size() {
		return nil, fmt.Errorf("game: prior covers %d hypotheses, space has %d", prior.Size(), cfg.Space.Size())
	}
	sampler := cfg.Sampler
	if sampler == nil {
		sampler = sampling.StochasticUS{}
	}
	k := cfg.K
	if k <= 0 {
		k = 10
	}
	reference := cfg.Reference
	if reference == nil {
		if cfg.Prior == nil {
			// The default prior is already the data estimate; clone it
			// so the learner's updates do not move the reference.
			reference = prior.Clone()
		} else {
			reference = belief.DataEstimatePrior(cfg.Space, cfg.Relation, 0.12)
		}
	}
	if reference.Size() != cfg.Space.Size() {
		return nil, fmt.Errorf("game: reference covers %d hypotheses, space has %d", reference.Size(), cfg.Space.Size())
	}
	tau := cfg.BelievedTau
	if tau == 0 && !cfg.BelievedTauSet { //etlint:ignore floatcmp zero value means unset; BelievedTauSet disambiguates a literal 0
		tau = 0.5
	}
	maxStd := cfg.MaxBelievedStd
	if maxStd == 0 { //etlint:ignore floatcmp zero value means unset; callers assign literals
		maxStd = 0.1
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x5E5510)
	learner := agents.NewLearner(prior, sampler, rng.Split())
	return &Session{
		rel:   cfg.Relation,
		space: cfg.Space,
		pool:  sampling.NewPool(cfg.Relation, cfg.Space, sampling.PoolConfig{Seed: cfg.Seed ^ 0x9001}),
		k:     k,
		eng: newRoundEngine(engineConfig{
			rel:             cfg.Relation,
			learner:         learner,
			annotatorBelief: func() *belief.Belief { return reference },
			eval:            cfg.Eval,
			believedTau:     tau,
			maxBelievedStd:  maxStd,
			obs:             cfg.Observer,
		}),
	}, nil
}

// Next selects the round's fresh pairs. It returns an error wrapping
// ErrPoolExhausted when the pool has no fresh pairs left, and one
// wrapping ErrRoundPending if the previous round was never submitted
// (the protocol is strictly alternating).
func (s *Session) Next() ([]dataset.Pair, error) {
	return s.NextContext(context.Background())
}

// NextContext is Next with cancellation: a done context aborts before
// any pool state changes.
func (s *Session) NextContext(ctx context.Context) ([]dataset.Pair, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.pending != nil {
		return nil, fmt.Errorf("%w; submit it before calling Next", ErrRoundPending)
	}
	if s.pool.RemainingCount() == 0 {
		return nil, fmt.Errorf("%w after %d rounds", ErrPoolExhausted, s.Rounds())
	}
	t := s.eng.round()
	s.eng.obs.RoundStarted(t)
	presented := s.eng.learner.Present(s.rel, s.pool.Remaining(), s.k)
	s.pool.MarkShown(presented)
	s.pending = presented
	s.eng.obs.PairsPresented(t, presented)
	return presented, nil
}

// Submit consumes the annotations for the pending round. Every labeling
// must reference either a pending pair or a pair labeled in an earlier
// round: the latter are treated as revisions (the annotator correcting
// an earlier judgment, Yan et al. 2016) and routed through the
// learner's exact evidence-reversal path. Pending pairs missing from
// the batch are treated as abstained (no evidence). Submitting with no
// round pending returns an error wrapping ErrNoRoundPending.
func (s *Session) Submit(labeled []belief.Labeling) error {
	return s.SubmitContext(context.Background(), labeled)
}

// SubmitContext is Submit with cancellation: a done context aborts
// before the learner's belief is touched, leaving the round pending.
func (s *Session) SubmitContext(ctx context.Context, labeled []belief.Labeling) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.pending == nil {
		return fmt.Errorf("%w; call Next first", ErrNoRoundPending)
	}
	if s.allowed == nil {
		s.allowed = make(map[dataset.Pair]struct{}, len(s.pending))
		s.seen = make(map[dataset.Pair]struct{}, len(labeled))
	} else {
		clear(s.allowed)
		clear(s.seen)
	}
	allowed, seen := s.allowed, s.seen
	for _, p := range s.pending {
		allowed[p] = struct{}{}
	}
	var fresh, revisions []belief.Labeling
	for _, lp := range labeled {
		if _, dup := seen[lp.Pair]; dup {
			return fmt.Errorf("game: duplicate labeling for pair %v", lp.Pair)
		}
		seen[lp.Pair] = struct{}{}
		if _, ok := allowed[lp.Pair]; ok {
			fresh = append(fresh, lp)
			continue
		}
		if _, before := s.eng.learner.LabelHistory(lp.Pair); before {
			revisions = append(revisions, lp)
			continue
		}
		return fmt.Errorf("game: labeling for pair %v which was neither presented this round nor labeled before", lp.Pair)
	}
	full := fresh
	for _, p := range s.pending {
		if _, ok := seen[p]; !ok {
			full = append(full, belief.Labeling{Pair: p, Abstained: true})
		}
	}
	s.finishRound(full, revisions)
	return nil
}

// SubmitBatch plays a run of consecutive queued rounds in one call: for
// each element it presents the next round's pairs (unless a round is
// already pending, which the first element then submits against) and
// submits the element's labelings through the same validation and
// engine step as Submit. It is the batch entry the service's labelpool
// drains into, so per-round work — presentation, incorporation,
// measurement, observer events — amortizes under the caller's single
// lock acquisition while producing a trajectory bit-identical to the
// same labelings submitted one Next/Submit cycle at a time.
//
// It returns how many elements were applied. On error the remaining
// elements are untouched; a failure after a successful internal Next
// leaves that round pending (its pairs are presented), so the caller
// can retry the failed element with corrected labelings without
// re-presenting.
func (s *Session) SubmitBatch(ctx context.Context, batch [][]belief.Labeling) (applied int, err error) {
	for _, labeled := range batch {
		if err := ctx.Err(); err != nil {
			return applied, err
		}
		if s.pending == nil {
			if _, err := s.NextContext(ctx); err != nil {
				return applied, err
			}
		}
		if err := s.SubmitContext(ctx, labeled); err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}

// finishRound runs the shared engine step for the pending round and
// clears it. Callers own validation: Submit splits user input into
// fresh labels and revisions; the Run driver passes the simulated
// trainer's output directly.
func (s *Session) finishRound(labeled, revisions []belief.Labeling) IterationRecord {
	rec := s.eng.step(s.pending, labeled, revisions)
	s.pending = nil
	return rec
}

// Belief exposes the learner's current belief.
func (s *Session) Belief() *belief.Belief { return s.eng.learner.Belief() }

// Relation returns the data under annotation.
func (s *Session) Relation() *dataset.Relation { return s.rel }

// Pending returns a copy of the presented-but-unsubmitted round (nil
// when the session is idle). Mutating the returned slice cannot corrupt
// engine state.
func (s *Session) Pending() []dataset.Pair {
	return append([]dataset.Pair(nil), s.pending...)
}

// PendingCount reports how many pairs the unsubmitted round holds (0
// when idle) without copying.
func (s *Session) PendingCount() int { return len(s.pending) }

// RemainingPairs reports how many fresh candidate pairs the pool still
// holds — an O(1) counter, no slice materialization.
func (s *Session) RemainingPairs() int { return s.pool.RemainingCount() }

// DiscardPending drops an unsubmitted round so the session can be
// snapshotted, returning the discarded pairs (nil when idle). The pairs
// stay consumed in this in-memory pool, but a session resumed from the
// snapshot rebuilds its pool from submitted history only, so they
// become presentable again.
func (s *Session) DiscardPending() []dataset.Pair {
	p := s.pending
	s.pending = nil
	return p
}

// Rounds returns how many rounds have been submitted.
func (s *Session) Rounds() int { return s.eng.round() }

// History returns the submitted labelings per round as defensive
// copies; mutating them cannot corrupt engine state.
func (s *Session) History() [][]belief.Labeling {
	out := make([][]belief.Labeling, len(s.eng.records))
	for i, rec := range s.eng.records {
		out[i] = append([]belief.Labeling(nil), rec.Labeled...)
	}
	return out
}

// Records returns the full per-round trajectory: for every submitted
// round the labelings, revisions, MAE and trainer payoff against the
// reference belief, and the detection score when an evaluator is
// configured. The outer slice is a copy; the records' inner slices are
// shared with the engine and must not be mutated.
func (s *Session) Records() []IterationRecord {
	return append([]IterationRecord(nil), s.eng.records...)
}

// Frequencies exposes the empirical action distributions Φ_t over the
// session's submitted rounds.
func (s *Session) Frequencies() *Frequencies { return s.eng.freqs }

// Snapshot checkpoints the session: learner belief plus the full
// per-round records (labelings, revisions, MAE/payoff, detection), so
// a resumed session keeps its history of scores. A pending unsubmitted
// round is not captured; submit or discard it first.
func (s *Session) Snapshot() (*persist.Snapshot, error) {
	if s.pending != nil {
		return nil, fmt.Errorf("cannot snapshot: %w", ErrRoundPending)
	}
	rounds := make([]persist.Round, len(s.eng.records))
	for i, rec := range s.eng.records {
		rounds[i] = persist.Round{
			Labeled:   rec.Labeled,
			Revisions: rec.Revisions,
			MAE:       rec.MAE,
			Payoff:    rec.TrainerPayoff,
		}
		if s.eng.eval != nil {
			d := rec.Detection
			rounds[i].Detection = &d
		}
	}
	snap, err := persist.NewSnapshotRounds(s.rel.Schema(), s.space, nil, s.Belief(), rounds)
	if err != nil {
		return nil, err
	}
	// Capture the sampler RNG position so resumption is draw-exact: a
	// session restored from this snapshot presents the same future
	// pairs the live session would have — park/unpark churn cannot
	// perturb a trajectory.
	rng := s.eng.learner.RNGState()
	snap.LearnerRNG = append([]uint64(nil), rng[:]...)
	return snap, nil
}

// RNGState exposes the learner sampler's RNG position — the same four
// xoshiro256** words Snapshot captures. Callers assembling per-round
// WAL deltas read it right after a round submits; no draw happens
// between a round's submission and the next presentation, so the
// capture is draw-exact-equivalent to a full snapshot taken there.
func (s *Session) RNGState() [4]uint64 { return s.eng.learner.RNGState() }

// ResumeSession rebuilds a session from a snapshot against the same
// relation: the hypothesis space, learner belief and per-round records
// are restored, and previously labeled pairs are excluded from future
// rounds.
func ResumeSession(snap *persist.Snapshot, cfg SessionConfig) (*Session, error) {
	if cfg.Relation == nil {
		return nil, fmt.Errorf("game: SessionConfig.Relation is required")
	}
	if err := snap.ValidateSchema(cfg.Relation.Schema()); err != nil {
		return nil, err
	}
	space, err := snap.RestoreSpace()
	if err != nil {
		return nil, err
	}
	learnerBelief, err := snap.RestoreLearner(space)
	if err != nil {
		return nil, err
	}
	rounds, err := snap.RestoreRounds()
	if err != nil {
		return nil, err
	}
	cfg.Space = space
	if learnerBelief != nil {
		cfg.Prior = learnerBelief
	}
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	records := make([]IterationRecord, len(rounds))
	for i, r := range rounds {
		presented := make([]dataset.Pair, 0, len(r.Labeled))
		for _, lp := range r.Labeled {
			presented = append(presented, lp.Pair)
		}
		records[i] = IterationRecord{
			Presented:     presented,
			Labeled:       r.Labeled,
			Revisions:     r.Revisions,
			MAE:           r.MAE,
			TrainerPayoff: r.Payoff,
		}
		if r.Detection != nil {
			records[i].Detection = *r.Detection
		}
		s.pool.MarkShown(presented)
	}
	s.eng.restore(records)
	if state, ok, err := snap.RestoreLearnerRNG(); err != nil {
		return nil, err
	} else if ok {
		if err := s.eng.learner.RestoreRNG(state); err != nil {
			return nil, err
		}
	}
	return s, nil
}
