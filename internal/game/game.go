package game

import (
	"context"
	"errors"
	"fmt"

	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/metrics"
	"exptrain/internal/sampling"
)

// Config drives one exploratory-training game.
type Config struct {
	// K is the number of examples presented per interaction; the paper's
	// evaluation uses 10 (§C.1). Defaults to 10 when zero.
	K int
	// Iterations is the number of interactions N; the paper uses 30
	// (§C.1). Defaults to 30 when zero.
	Iterations int
	// Eval, when non-nil, scores the learner's model each iteration
	// (Figure 7's per-iteration F1).
	Eval *Evaluator
	// BelievedTau is the confidence threshold above which the learner
	// exports an FD to the evaluator. A zero BelievedTau with
	// BelievedTauSet false defaults to 0.5.
	BelievedTau float64
	// BelievedTauSet marks BelievedTau as intentionally specified.
	// Threshold 0 is a meaningful configuration (export every
	// hypothesis with any confidence), but it is also the zero value, so
	// it only takes effect when BelievedTauSet is true; otherwise the
	// 0.5 default applies.
	BelievedTauSet bool
	// MaxBelievedStd is the maximum posterior standard deviation for an
	// FD to be exported — it keeps prior-only hypotheses with no actual
	// evidence out of the detection model (default 0.1; set negative to
	// disable the filter).
	MaxBelievedStd float64
	// Observer receives the engine's structured per-round events
	// (default: no-op). Calls are serialized within one game.
	Observer Observer
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 10
	}
	if c.Iterations <= 0 {
		c.Iterations = 30
	}
	if c.BelievedTau == 0 && !c.BelievedTauSet { //etlint:ignore floatcmp zero value means unset; BelievedTauSet disambiguates a literal 0
		c.BelievedTau = 0.5
	}
	if c.MaxBelievedStd == 0 { //etlint:ignore floatcmp zero value means unset; callers assign literals
		c.MaxBelievedStd = 0.1
	}
	return c
}

// Evaluator scores error detection on a held-out test split (§C.1
// separates 30% of each dataset and reports the learner model's F1 on
// it per interaction).
type Evaluator struct {
	// TestRel is the held-out relation (a Subset of the dirtied data).
	TestRel *dataset.Relation
	// DirtyRows is the ground-truth dirty row set of TestRel, in
	// TestRel's row indexing.
	DirtyRows map[int]struct{}

	// cache memoizes TestRel's stripped LHS partitions across Score
	// calls: the believed model is re-scored every iteration over the
	// same immutable split, so each distinct LHS is partitioned once
	// per game instead of once per iteration. Built lazily; rebuilt if
	// TestRel is swapped, and self-invalidating if TestRel is mutated.
	cache *fd.PLICache
}

// Score predicts dirty rows of the test relation using the believed FDs
// (the minority-value repair heuristic per believed FD) and scores the
// prediction against the ground truth.
func (e *Evaluator) Score(believed []fd.FD) metrics.PRF1 {
	if e.cache == nil || e.cache.Relation() != e.TestRel {
		e.cache = fd.NewPLICache(e.TestRel)
	}
	pred := e.cache.DetectErrors(believed)
	return metrics.FromSets(pred, e.DirtyRows)
}

// IterationRecord captures one interaction of the game.
type IterationRecord struct {
	// Presented is the learner's action: the pairs shown.
	Presented []dataset.Pair
	// Labeled is the trainer's action: the annotations returned.
	Labeled []belief.Labeling
	// Revisions are corrected labelings for earlier pairs, when the
	// trainer supports relabeling.
	Revisions []belief.Labeling
	// MAE is the trainer/learner belief distance after the interaction.
	MAE float64
	// TrainerPayoff is u_T for the interaction.
	TrainerPayoff float64
	// Detection is the learner model's error-detection score on the
	// held-out split (zero value when no evaluator is configured).
	Detection metrics.PRF1
}

// Result is the full trajectory of one game.
type Result struct {
	Iterations []IterationRecord
	// Frequencies tracks the empirical action distributions Φ_t.
	Frequencies *Frequencies
}

// MAESeries extracts the per-iteration MAE curve (Figures 1, 3-6).
func (r *Result) MAESeries() []float64 {
	out := make([]float64, len(r.Iterations))
	for i, it := range r.Iterations {
		out[i] = it.MAE
	}
	return out
}

// F1Series extracts the per-iteration detection F1 curve (Figure 7).
func (r *Result) F1Series() []float64 {
	out := make([]float64, len(r.Iterations))
	for i, it := range r.Iterations {
		out[i] = it.Detection.F1
	}
	return out
}

// FinalMAE returns the last iteration's MAE, or 1 for an empty run.
func (r *Result) FinalMAE() float64 {
	if len(r.Iterations) == 0 {
		return 1
	}
	return r.Iterations[len(r.Iterations)-1].MAE
}

// Run plays the exploratory-training game: each interaction t the
// learner presents K fresh pairs from the pool (response model R^L),
// the trainer observes them and updates its belief (prediction model
// P^T), labels them in best response (R^T), and the learner updates its
// belief from the labelings (P^L). The loop is exactly §C.1's
// "Interactions" protocol.
func Run(rel *dataset.Relation, trainer agents.Trainer, learner *agents.Learner, pool *sampling.Pool, cfg Config) (*Result, error) {
	return RunContext(context.Background(), rel, trainer, learner, pool, cfg)
}

// RunContext is Run with cancellation checked between interactions: a
// done context returns ctx.Err() and discards the partial trajectory.
//
// Run is a driver over the step-wise Session: it builds a session
// around the caller's learner and pool, then plugs the simulated
// trainer into the alternating Next/submit protocol, so the per-round
// mechanics (incorporation, revision reversal, measurement, observer
// events) execute in the exact same engine the interactive and HTTP
// paths use.
func RunContext(ctx context.Context, rel *dataset.Relation, trainer agents.Trainer, learner *agents.Learner, pool *sampling.Pool, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if trainer.Belief().Size() != learner.Belief().Size() {
		return nil, fmt.Errorf("game: trainer and learner hypothesis spaces differ (%d vs %d)",
			trainer.Belief().Size(), learner.Belief().Size())
	}
	s := &Session{
		rel:   rel,
		space: learner.Belief().Space(),
		pool:  pool,
		k:     cfg.K,
		eng: newRoundEngine(engineConfig{
			rel:             rel,
			learner:         learner,
			annotatorBelief: trainer.Belief,
			eval:            cfg.Eval,
			believedTau:     cfg.BelievedTau,
			maxBelievedStd:  cfg.MaxBelievedStd,
			obs:             cfg.Observer,
		}),
	}
	for t := 0; t < cfg.Iterations; t++ {
		presented, err := s.NextContext(ctx)
		if errors.Is(err, ErrPoolExhausted) {
			break // nothing fresh to present
		}
		if err != nil {
			return nil, err
		}

		trainer.Observe(rel, presented)
		labeled := trainer.Label(rel, presented)

		// A relabeling annotator may correct earlier labels after its
		// belief moved (Yan et al. 2016); the engine routes revisions
		// through the learner's exact-reversal path.
		var revisions []belief.Labeling
		if rl, ok := trainer.(agents.Relabeler); ok {
			revisions = rl.Revisions(rel)
		}
		s.finishRound(labeled, revisions)
	}
	return &Result{Iterations: s.eng.records, Frequencies: s.eng.freqs}, nil
}
