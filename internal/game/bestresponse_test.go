package game

import (
	"testing"

	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
)

func TestFPTrainerAlwaysBestResponds(t *testing.T) {
	// Property over a full game: a noise-free FP trainer's labelings are
	// always a best response to its (post-observation) belief, and its
	// exploitability is zero.
	rel, space, pool, _ := buildWorld(t, 21)
	rng := stats.NewRNG(22)
	trainer := agents.NewFPTrainer(belief.RandomPrior(space, rng.Split(), 0.1), nil)
	learner := agents.NewLearner(belief.DataEstimatePrior(space, rel, 0.1), sampling.StochasticUS{}, rng.Split())

	for i := 0; i < 15; i++ {
		remaining := pool.Remaining()
		presented := learner.Present(rel, remaining, 10)
		pool.MarkShown(presented)
		trainer.Observe(rel, presented)
		labeled := trainer.Label(rel, presented)
		if !IsBestResponse(trainer.Belief(), rel, labeled) {
			t.Fatalf("iteration %d: FP labeling is not a best response", i)
		}
		if got := Exploitability(trainer.Belief(), rel, labeled); got != 0 {
			t.Fatalf("iteration %d: exploitability %v, want 0", i, got)
		}
		learner.Incorporate(rel, labeled)
	}
}

func TestNoisyTrainerIsExploitable(t *testing.T) {
	rel, space, pool, _ := buildWorld(t, 23)
	rng := stats.NewRNG(24)
	trainer := agents.NewFPTrainer(belief.RandomPrior(space, rng.Split(), 0.1), rng.Split())
	trainer.NoiseRate = 0.5
	learner := agents.NewLearner(belief.DataEstimatePrior(space, rel, 0.1), sampling.Random{}, rng.Split())

	var sawGap bool
	for i := 0; i < 10; i++ {
		remaining := pool.Remaining()
		presented := learner.Present(rel, remaining, 10)
		pool.MarkShown(presented)
		trainer.Observe(rel, presented)
		labeled := trainer.Label(rel, presented)
		if Exploitability(trainer.Belief(), rel, labeled) > 0 {
			sawGap = true
		}
		learner.Incorporate(rel, labeled)
	}
	if !sawGap {
		t.Fatal("a 50%-noise trainer never showed an exploitability gap")
	}
}

func TestIsBestResponseDetectsDeviation(t *testing.T) {
	rel, space, _, _ := buildWorld(t, 25)
	b := belief.UniformPrior(space, 0.9, 0.05)
	// Find a violating pair (dirty under a 0.9-confidence belief).
	target := fd.MustNew(fd.NewAttrSet(0), 1)
	var viol dataset.Pair
	found := false
	for _, q := range dataset.AllPairs(rel.NumRows()) {
		if fd.Status(target, rel, q) == fd.Violating {
			viol, found = q, true
			break
		}
	}
	if !found {
		t.Fatal("setup: no violating pair")
	}
	// A clean labeling of that pair deviates from best response.
	if IsBestResponse(b, rel, []belief.Labeling{{Pair: viol}}) {
		t.Fatal("unmarked violation accepted as best response")
	}
	// Abstention is never a best response.
	if IsBestResponse(b, rel, []belief.Labeling{{Pair: viol, Abstained: true}}) {
		t.Fatal("abstention accepted as best response")
	}
}

func TestExploitabilityEmptyAndBounds(t *testing.T) {
	rel, space, _, _ := buildWorld(t, 27)
	b := belief.UniformPrior(space, 0.5, 0.1)
	if got := Exploitability(b, rel, nil); got != 0 {
		t.Fatalf("empty labeling exploitability = %v", got)
	}
	labeled := b.MarkPairs(rel, dataset.AllPairs(6), 0.5)
	g := Exploitability(b, rel, labeled)
	if g < 0 || g > 1 {
		t.Fatalf("exploitability out of [0,1]: %v", g)
	}
}
