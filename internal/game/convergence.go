package game

import (
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
)

// Frequencies tracks the empirical distributions Φ_t of both agents'
// realized actions (Definition 2): for the learner, how often each pair
// was presented; for the trainer, how often each label was produced.
type Frequencies struct {
	pairCounts  map[dataset.Pair]int
	labelCounts [2]int
	total       int
}

// NewFrequencies returns an empty tracker.
func NewFrequencies() *Frequencies {
	return &Frequencies{pairCounts: make(map[dataset.Pair]int)}
}

// Record folds one interaction's actions into the empirical counts.
func (f *Frequencies) Record(presented []dataset.Pair, labeled []belief.Labeling) {
	for _, p := range presented {
		f.pairCounts[p]++
	}
	for _, lp := range labeled {
		f.labelCounts[lp.Label()]++
	}
	f.total += len(presented)
}

// Total returns the number of recorded actions.
func (f *Frequencies) Total() int { return f.total }

// PairFrequency returns Φ_t(x) for a pair: its observed share of all
// presented examples.
func (f *Frequencies) PairFrequency(p dataset.Pair) float64 {
	if f.total == 0 {
		return 0
	}
	return float64(f.pairCounts[p]) / float64(f.total)
}

// DirtyRate returns the empirical frequency of the Dirty label — the
// trainer's realized mixed action over labels.
func (f *Frequencies) DirtyRate() float64 {
	n := f.labelCounts[0] + f.labelCounts[1]
	if n == 0 {
		return 0
	}
	return float64(f.labelCounts[belief.Dirty]) / float64(n)
}

// ConvergenceConfig tunes equilibrium detection.
type ConvergenceConfig struct {
	// Tol is the maximum per-iteration belief movement (MAE between
	// consecutive confidence vectors) considered "stable".
	Tol float64
	// Window is how many trailing iterations must all be stable.
	Window int
}

// Converged reports whether the per-iteration belief-movement series is
// an empirical equilibrium in the sense of Proposition 1: over the last
// Window iterations, both agents' beliefs moved less than Tol, so both
// policies — which are (stochastic) best responses to those beliefs —
// have stabilized.
func Converged(trainerMovement, learnerMovement []float64, cfg ConvergenceConfig) bool {
	if cfg.Tol <= 0 {
		cfg.Tol = 0.01
	}
	if cfg.Window <= 0 {
		cfg.Window = 5
	}
	if len(trainerMovement) < cfg.Window || len(learnerMovement) < cfg.Window {
		return false
	}
	check := func(series []float64) bool {
		for _, v := range series[len(series)-cfg.Window:] {
			if v > cfg.Tol {
				return false
			}
		}
		return true
	}
	return check(trainerMovement) && check(learnerMovement)
}

// MovementTracker computes per-iteration belief movement: the MAE
// between an agent's consecutive confidence vectors.
type MovementTracker struct {
	prev   []float64
	series []float64
}

// Observe folds the agent's current confidences into the movement
// series.
func (m *MovementTracker) Observe(confidences []float64) {
	if m.prev != nil {
		var s float64
		for i := range confidences {
			d := confidences[i] - m.prev[i]
			if d < 0 {
				d = -d
			}
			s += d
		}
		m.series = append(m.series, s/float64(len(confidences)))
	}
	m.prev = append(m.prev[:0], confidences...)
}

// Series returns the movement series observed so far.
func (m *MovementTracker) Series() []float64 { return m.series }
