package game

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
)

// labelPolicy is the deterministic annotator both the sequential and
// the batched session replay: mark attribute 1 on pairs that disagree
// there (the planted a→b violations), abstain on every fifth pair.
func labelPolicy(rel *dataset.Relation, pairs []dataset.Pair) []belief.Labeling {
	labeled := make([]belief.Labeling, len(pairs))
	for i, p := range pairs {
		labeled[i] = belief.Labeling{Pair: p}
		if i%5 == 4 {
			labeled[i].Abstained = true
			continue
		}
		if rel.Row(p.A)[1] != rel.Row(p.B)[1] && rel.Row(p.A)[0] == rel.Row(p.B)[0] {
			labeled[i].Marked = fd.NewAttrSet(1)
		}
	}
	return labeled
}

// sessionFingerprint pins every per-round quantity bit-for-bit (floats
// in hex) plus the full belief state, so two trajectories compare
// exactly without float ==.
func sessionFingerprint(s *Session) []string {
	var out []string
	for t, rec := range s.Records() {
		line := fmt.Sprintf("round %d: presented=%v labeled=%d revised=%d mae=%s payoff=%s",
			t, rec.Presented, len(rec.Labeled), len(rec.Revisions),
			hexFloat(rec.MAE), hexFloat(rec.TrainerPayoff))
		out = append(out, line)
	}
	b := s.Belief()
	for i := 0; i < b.Size(); i++ {
		out = append(out, fmt.Sprintf("h%d=%s", i, hexFloat(b.Confidence(i))))
	}
	out = append(out, fmt.Sprintf("freq=%d remaining=%d", s.Frequencies().Total(), s.RemainingPairs()))
	return out
}

// TestSubmitBatchGoldenParity is the batched-drain acceptance test at
// the engine layer: replaying a sequential session's per-round
// labelings through one SubmitBatch call must produce a bit-identical
// trajectory — same presented pairs, same MAE/payoff bits, same final
// belief, same pool state.
func TestSubmitBatchGoldenParity(t *testing.T) {
	const seed, k, rounds = 99, 6, 8
	rel, space, _, _ := buildWorld(t, seed)
	newSess := func() *Session {
		s, err := NewSession(SessionConfig{Relation: rel, Space: space, K: k, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Sequential reference: strict Next/Submit alternation, recording
	// exactly what was submitted each round (revisions included: round 4
	// re-marks the first pair labeled in round 0).
	seq := newSess()
	var perRound [][]belief.Labeling
	var revisit dataset.Pair
	for r := 0; r < rounds; r++ {
		pairs, err := seq.Next()
		if err != nil {
			t.Fatalf("sequential round %d: %v", r, err)
		}
		if r == 0 {
			revisit = pairs[0]
		}
		labeled := labelPolicy(rel, pairs)
		if r == 4 {
			labeled = append(labeled, belief.Labeling{Pair: revisit, Marked: fd.NewAttrSet(2)})
		}
		if err := seq.Submit(labeled); err != nil {
			t.Fatalf("sequential round %d submit: %v", r, err)
		}
		perRound = append(perRound, labeled)
	}

	batched := newSess()
	applied, err := batched.SubmitBatch(context.Background(), perRound)
	if err != nil {
		t.Fatalf("SubmitBatch: applied %d: %v", applied, err)
	}
	if applied != rounds {
		t.Fatalf("SubmitBatch applied %d rounds, want %d", applied, rounds)
	}

	want, got := sessionFingerprint(seq), sessionFingerprint(batched)
	if len(want) != len(got) {
		t.Fatalf("fingerprint length: sequential %d, batched %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("trajectory diverges at line %d:\nsequential: %s\nbatched:    %s", i, want[i], got[i])
		}
	}
}

// TestSubmitBatchPartialFailure pins the retry contract: a bad element
// stops the batch, reports how many applied, and leaves the failed
// round pending (already presented) so a corrected element can be
// submitted without re-presenting.
func TestSubmitBatchPartialFailure(t *testing.T) {
	rel, space, _, _ := buildWorld(t, 7)
	s, err := NewSession(SessionConfig{Relation: rel, Space: space, K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bogus := belief.Labeling{Pair: dataset.NewPair(0, 1)} // almost surely not presented round 1
	batch := [][]belief.Labeling{nil, {bogus, bogus}}     // duplicate labeling → validation error
	applied, err := s.SubmitBatch(context.Background(), batch)
	if err == nil {
		t.Fatal("SubmitBatch accepted a duplicate labeling")
	}
	if applied != 1 {
		t.Fatalf("applied = %d, want 1", applied)
	}
	if s.PendingCount() == 0 {
		t.Fatal("failed round should remain pending for a retry")
	}
	if s.Rounds() != 1 {
		t.Fatalf("Rounds = %d, want 1", s.Rounds())
	}
	// The retry completes against the still-pending round.
	if applied, err := s.SubmitBatch(context.Background(), [][]belief.Labeling{nil}); err != nil || applied != 1 {
		t.Fatalf("retry: applied %d, err %v", applied, err)
	}
	if s.Rounds() != 2 {
		t.Fatalf("after retry Rounds = %d, want 2", s.Rounds())
	}

	// A canceled context stops before touching anything.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if applied, err := s.SubmitBatch(ctx, [][]belief.Labeling{nil}); !errors.Is(err, context.Canceled) || applied != 0 {
		t.Fatalf("canceled: applied %d, err %v", applied, err)
	}
}
