package game

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden trajectories")

// goldenTrajectory is the serialized form of one seeded Run: every
// per-iteration quantity the engine computes, with floats rendered in
// hex so the file pins exact bit patterns.
type goldenTrajectory struct {
	MAE       []string   `json:"mae"`
	Payoff    []string   `json:"payoff"`
	F1        []string   `json:"f1"`
	Precision []string   `json:"precision"`
	Recall    []string   `json:"recall"`
	Presented [][][2]int `json:"presented"`
	Revised   []int      `json:"revised"`
	DirtyRate string     `json:"dirty_rate"`
	FreqTotal int        `json:"freq_total"`
}

func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func trajectoryOf(res *Result) goldenTrajectory {
	g := goldenTrajectory{
		DirtyRate: hexFloat(res.Frequencies.DirtyRate()),
		FreqTotal: res.Frequencies.Total(),
	}
	for _, it := range res.Iterations {
		g.MAE = append(g.MAE, hexFloat(it.MAE))
		g.Payoff = append(g.Payoff, hexFloat(it.TrainerPayoff))
		g.F1 = append(g.F1, hexFloat(it.Detection.F1))
		g.Precision = append(g.Precision, hexFloat(it.Detection.Precision))
		g.Recall = append(g.Recall, hexFloat(it.Detection.Recall))
		pairs := make([][2]int, len(it.Presented))
		for i, p := range it.Presented {
			pairs[i] = [2]int{p.A, p.B}
		}
		g.Presented = append(g.Presented, pairs)
		g.Revised = append(g.Revised, len(it.Revisions))
	}
	return g
}

// goldenRuns are the seeded games whose full trajectories are pinned
// bit-for-bit: a plain FP trainer with held-out evaluation, a
// relabeling trainer (exercising the revision-reversal path), and an
// abstaining trainer (labelings that carry no evidence). Together they
// cover every branch of the round engine.
func goldenRuns(t *testing.T) map[string]func() (*Result, error) {
	t.Helper()
	withEval := func(seed uint64) (*Result, error) {
		rel, space, pool, ground := buildWorld(t, seed)
		rng := stats.NewRNG(seed ^ 0xFACE)
		_, testRows := rel.Split(rng.Split(), 0.7)
		testRel := rel.Subset(testRows)
		dirty := map[int]struct{}{}
		for newIdx, orig := range testRows {
			if _, bad := ground.DirtyRows[orig]; bad {
				dirty[newIdx] = struct{}{}
			}
		}
		trainer := agents.NewFPTrainer(belief.RandomPrior(space, rng.Split(), 0.1), nil)
		learner := agents.NewLearner(belief.DataEstimatePrior(space, rel, 0.1), sampling.StochasticUS{}, rng.Split())
		return Run(rel, trainer, learner, pool, Config{
			K: 10, Iterations: 12,
			Eval: &Evaluator{TestRel: testRel, DirtyRows: dirty},
		})
	}
	return map[string]func() (*Result, error){
		"fp_stochastic_us_eval": func() (*Result, error) { return withEval(21) },
		"relabel_stochastic_br": func() (*Result, error) {
			rel, space, pool, _ := buildWorld(t, 23)
			rng := stats.NewRNG(24)
			inner := agents.NewFPTrainer(belief.RandomPrior(space, rng.Split(), 0.1), nil)
			trainer := agents.NewRelabelingTrainer(inner)
			learner := agents.NewLearner(belief.DataEstimatePrior(space, rel, 0.1), sampling.StochasticBR{}, rng.Split())
			return Run(rel, trainer, learner, pool, Config{K: 8, Iterations: 12})
		},
		"abstain_random": func() (*Result, error) {
			rel, space, pool, _ := buildWorld(t, 25)
			rng := stats.NewRNG(26)
			inner := agents.NewFPTrainer(belief.RandomPrior(space, rng.Split(), 0.1), nil)
			trainer := agents.NewAbstainingTrainer(inner, 0.08)
			learner := agents.NewLearner(belief.DataEstimatePrior(space, rel, 0.1), sampling.Random{}, rng.Split())
			return Run(rel, trainer, learner, pool, Config{K: 10, Iterations: 10})
		},
	}
}

// TestGoldenRunTrajectories proves the round-engine refactor is
// output-equivalent to the original inline Run loop: the trajectories
// below were recorded before Run became a Session driver over the
// shared engine and must never move — not MAE, not payoff, not F1,
// not the presented pairs, not the action frequencies. Regenerate
// deliberately with: go test ./internal/game -run TestGoldenRun -update
func TestGoldenRunTrajectories(t *testing.T) {
	for name, play := range goldenRuns(t) {
		t.Run(name, func(t *testing.T) {
			res, err := play()
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(trajectoryOf(res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", fmt.Sprintf("golden_run_%s.json", name))
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(got, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if string(want) != string(got)+"\n" {
				t.Errorf("seeded Run trajectory diverged from recorded golden %s;\nthe engine-backed Run is not output-equivalent to the pre-refactor loop", path)
			}
		})
	}
}
