package viz

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestChartBasics(t *testing.T) {
	var sb strings.Builder
	err := Chart(&sb, "test chart", []Series{
		{Name: "down", Values: []float64{1, 0.8, 0.6, 0.4, 0.2}},
		{Name: "up", Values: []float64{0.2, 0.4, 0.6, 0.8, 1}},
	}, ChartConfig{Width: 20, Height: 8})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"test chart", "down", "up", "iterations 1..5", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Plot rows have the expected width (label + axis + grid).
	lines := strings.Split(out, "\n")
	gridLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines++
			if got := len(l) - strings.Index(l, "|") - 1; got != 20 {
				t.Errorf("grid row width %d, want 20: %q", got, l)
			}
		}
	}
	if gridLines != 8 {
		t.Errorf("grid has %d rows, want 8", gridLines)
	}
}

func TestChartMonotoneShape(t *testing.T) {
	// A strictly decreasing series must have its marker higher (lower
	// row index) in the first column than in the last.
	values := []float64{1, 0.75, 0.5, 0.25, 0}
	var sb strings.Builder
	if err := Chart(&sb, "t", []Series{{Name: "s", Values: values}}, ChartConfig{Width: 5, Height: 10}); err != nil {
		t.Fatal(err)
	}
	var firstRow, lastRow = -1, -1
	rows := strings.Split(sb.String(), "\n")
	gridRow := 0
	for _, l := range rows {
		bar := strings.Index(l, "|")
		if bar < 0 {
			continue
		}
		grid := l[bar+1:]
		if len(grid) == 5 {
			if grid[0] == '*' && firstRow < 0 {
				firstRow = gridRow
			}
			if grid[4] == '*' && lastRow < 0 {
				lastRow = gridRow
			}
			gridRow++
		}
	}
	if firstRow < 0 || lastRow < 0 {
		t.Fatalf("markers not found:\n%s", sb.String())
	}
	if firstRow >= lastRow {
		t.Fatalf("decreasing series rendered wrong: first col at row %d, last at %d", firstRow, lastRow)
	}
}

func TestChartErrors(t *testing.T) {
	var sb strings.Builder
	if err := Chart(&sb, "t", nil, ChartConfig{}); err == nil {
		t.Error("no series should error")
	}
	if err := Chart(&sb, "t", []Series{{Name: "e"}}, ChartConfig{}); err == nil {
		t.Error("empty series should error")
	}
}

func TestChartFlatSeries(t *testing.T) {
	var sb strings.Builder
	if err := Chart(&sb, "flat", []Series{{Name: "c", Values: []float64{0.5, 0.5, 0.5}}}, ChartConfig{}); err != nil {
		t.Fatalf("flat series should render: %v", err)
	}
}

func TestChartDownsamplesLongSeries(t *testing.T) {
	values := make([]float64, 500)
	for i := range values {
		values[i] = float64(i)
	}
	var sb strings.Builder
	if err := Chart(&sb, "long", []Series{{Name: "l", Values: values}}, ChartConfig{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "iterations 1..500") {
		t.Error("x-axis label wrong for long series")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1})
	if utf8.RuneCountInString(s) != 3 {
		t.Fatalf("sparkline length %d, want 3", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] >= runes[1] || runes[1] >= runes[2] {
		t.Fatalf("sparkline not increasing: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
	flat := Sparkline([]float64{1, 1, 1})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat sparkline should be all low blocks: %q", flat)
		}
	}
}
