// Package viz renders experiment series as plain-text charts so the
// benchmark harness can show curve shapes — the part of the paper's
// figures that actually matters for the reproduction — directly in a
// terminal, with no plotting dependencies.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	Values []float64
}

// ChartConfig sizes the rendering.
type ChartConfig struct {
	// Width is the plot width in columns (default: series length,
	// capped at 60).
	Width int
	// Height is the plot height in rows (default 12).
	Height int
	// YMin/YMax fix the value range; when both zero the range is taken
	// from the data with a small margin.
	YMin, YMax float64
}

// markers distinguish up to six series in one chart.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Chart renders the series as an ASCII line chart with a legend and a
// labeled y-axis. Series may have different lengths; the x-axis spans
// the longest.
func Chart(w io.Writer, title string, series []Series, cfg ChartConfig) error {
	if len(series) == 0 {
		return fmt.Errorf("viz: no series")
	}
	maxLen := 0
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if maxLen == 0 {
		return fmt.Errorf("viz: empty series")
	}
	width := cfg.Width
	if width <= 0 {
		width = maxLen
		if width > 60 {
			width = 60
		}
	}
	height := cfg.Height
	if height <= 0 {
		height = 12
	}
	yMin, yMax := cfg.YMin, cfg.YMax
	if yMin == 0 && yMax == 0 {
		yMin, yMax = math.Inf(1), math.Inf(-1)
		for _, s := range series {
			for _, v := range s.Values {
				if v < yMin {
					yMin = v
				}
				if v > yMax {
					yMax = v
				}
			}
		}
		margin := (yMax - yMin) * 0.05
		if margin == 0 {
			margin = 0.01
		}
		yMin -= margin
		yMax += margin
	}
	if yMax <= yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for col := 0; col < width; col++ {
			// Map the column back to an index in this series.
			idx := col
			if width != maxLen {
				idx = col * (maxLen - 1) / max(width-1, 1)
			}
			if idx >= len(s.Values) {
				continue
			}
			v := s.Values[idx]
			frac := (v - yMin) / (yMax - yMin)
			row := height - 1 - int(frac*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for r, rowBytes := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.3f ", yMax)
		case height - 1:
			label = fmt.Sprintf("%7.3f ", yMin)
		case (height - 1) / 2:
			label = fmt.Sprintf("%7.3f ", (yMax+yMin)/2)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(rowBytes)
		b.WriteByte('\n')
	}
	b.WriteString("        +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString(fmt.Sprintf("\n         iterations 1..%d\n", maxLen))
	for si, s := range series {
		b.WriteString(fmt.Sprintf("         %c %s\n", markers[si%len(markers)], s.Name))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Sparkline renders one series as a single-line bar sketch using block
// characters, e.g. for compact per-method summaries.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
