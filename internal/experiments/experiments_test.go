package experiments

import (
	"math"
	"strings"
	"testing"

	"exptrain/internal/belief"
)

// quickConfig shrinks a condition for test speed.
func quickConfig(dataset string, learner belief.PriorSpec) Config {
	return Config{
		Dataset:      dataset,
		Rows:         150,
		Degree:       0.15,
		TrainerPrior: belief.PriorSpec{Kind: belief.PriorRandom},
		LearnerPrior: learner,
		Runs:         2,
		Iterations:   12,
		BaseSeed:     42,
	}
}

func TestRunProducesAllMethods(t *testing.T) {
	res, err := Run(quickConfig("OMDB", belief.PriorSpec{Kind: belief.PriorDataEstimate}))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Random", "US", "StochasticBR", "StochasticUS"}
	if len(res.Methods) != len(want) {
		t.Fatalf("got %d methods", len(res.Methods))
	}
	for i, m := range res.Methods {
		if m.Method != want[i] {
			t.Errorf("method %d = %q, want %q", i, m.Method, want[i])
		}
		if len(m.MAE) != 12 {
			t.Errorf("%s MAE series length %d, want 12", m.Method, len(m.MAE))
		}
		for it, v := range m.MAE {
			if v < 0 || v > 1 {
				t.Errorf("%s MAE[%d] = %v out of range", m.Method, it, v)
			}
		}
		for it, v := range m.F1 {
			if v < 0 || v > 1 {
				t.Errorf("%s F1[%d] = %v out of range", m.Method, it, v)
			}
		}
	}
}

func TestRunAllDatasets(t *testing.T) {
	for _, name := range []string{"OMDB", "AIRPORT", "Hospital", "Tax"} {
		res, err := Run(quickConfig(name, belief.PriorSpec{Kind: belief.PriorDataEstimate}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Belief agreement must end low for every dataset. (A strict
		// first-vs-last decrease is not guaranteed: a Data-estimate
		// learner can start almost in agreement and drift by the small
		// structural offset on believed FDs — see DESIGN.md — so the
		// check allows that plateau.)
		var first, last float64
		for _, m := range res.Methods {
			first += m.MAE[0]
			last += m.FinalMAE()
		}
		first /= float64(len(res.Methods))
		last /= float64(len(res.Methods))
		if last > first+0.05 {
			t.Errorf("%s: average MAE worsened beyond tolerance (%v → %v)", name, first, last)
		}
		if last > 0.3 {
			t.Errorf("%s: final average MAE %v too high", name, last)
		}
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if _, err := Run(quickConfig("bogus", belief.PriorSpec{Kind: belief.PriorRandom})); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := quickConfig("Tax", belief.PriorSpec{Kind: belief.PriorUniform, D: 0.9})
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Methods {
		for j := range a.Methods[i].MAE {
			if a.Methods[i].MAE[j] != b.Methods[i].MAE[j] {
				t.Fatalf("%s MAE[%d] differs across identical runs", a.Methods[i].Method, j)
			}
		}
	}
}

func TestSummariesAndTables(t *testing.T) {
	res, err := Run(quickConfig("OMDB", belief.PriorSpec{Kind: belief.PriorDataEstimate}))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSummary(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, token := range []string{"OMDB", "Random", "US", "StochasticBR", "StochasticUS", "meanMAE"} {
		if !strings.Contains(out, token) {
			t.Errorf("summary missing %q:\n%s", token, out)
		}
	}
	sb.Reset()
	if err := WriteMAETable(&sb, res); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 2+12 {
		t.Errorf("MAE table has %d lines, want 14", lines)
	}
	sb.Reset()
	if err := WriteF1Table(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "iter") {
		t.Error("F1 table missing header")
	}
}

func TestMethodSeriesSummaries(t *testing.T) {
	m := MethodSeries{Method: "X", MAE: []float64{0.4, 0.2}, F1: []float64{0.1, 0.6}}
	if m.FinalMAE() != 0.2 || m.FinalF1() != 0.6 {
		t.Errorf("finals = %v/%v", m.FinalMAE(), m.FinalF1())
	}
	if math.Abs(m.MeanMAE()-0.3) > 1e-12 {
		t.Errorf("MeanMAE = %v", m.MeanMAE())
	}
	empty := MethodSeries{}
	if empty.FinalMAE() != 1 || empty.FinalF1() != 0 {
		t.Error("empty series defaults wrong")
	}
}

// TestPaperOrderingInformedPrior checks the Figure 1/4 headline on a
// mid-size run: with a data-informed learner prior, uncertainty-based
// methods converge faster than fixed random sampling.
func TestPaperOrderingInformedPrior(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering check needs multiple runs")
	}
	cfg := quickConfig("OMDB", belief.PriorSpec{Kind: belief.PriorDataEstimate})
	cfg.Runs = 4
	cfg.Iterations = 25
	cfg.Rows = 200
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]MethodSeries{}
	for _, m := range res.Methods {
		byName[m.Method] = m
	}
	if byName["StochasticUS"].MeanMAE() >= byName["Random"].MeanMAE() {
		t.Errorf("informed prior: StochasticUS (%v) should beat Random (%v)",
			byName["StochasticUS"].MeanMAE(), byName["Random"].MeanMAE())
	}
	if byName["US"].MeanMAE() >= byName["Random"].MeanMAE() {
		t.Errorf("informed prior: US (%v) should beat Random (%v)",
			byName["US"].MeanMAE(), byName["Random"].MeanMAE())
	}
}

// TestPaperOrderingUninformedPrior checks the Figure 3/5 headline: with
// an uninformed Uniform-0.9 learner prior, greedy US is hurt by its
// wrong model and loses to fixed random sampling.
func TestPaperOrderingUninformedPrior(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering check needs multiple runs")
	}
	cfg := quickConfig("OMDB", belief.PriorSpec{Kind: belief.PriorUniform, D: 0.9})
	cfg.Runs = 4
	cfg.Iterations = 25
	cfg.Rows = 200
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]MethodSeries{}
	for _, m := range res.Methods {
		byName[m.Method] = m
	}
	if byName["Random"].MeanMAE() >= byName["US"].MeanMAE() {
		t.Errorf("uninformed prior: Random (%v) should beat US (%v)",
			byName["Random"].MeanMAE(), byName["US"].MeanMAE())
	}
	if byName["StochasticUS"].MeanMAE() >= byName["US"].MeanMAE() {
		t.Errorf("uninformed prior: StochasticUS (%v) should beat US (%v)",
			byName["StochasticUS"].MeanMAE(), byName["US"].MeanMAE())
	}
}
