// Package experiments implements the paper's evaluation harness (§C):
// one configuration per figure, each running the exploratory-training
// game for the four sampling methods over seeded synthetic datasets and
// reporting per-iteration MAE and error-detection F1 series averaged
// over several runs.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/datagen"
	"exptrain/internal/errgen"
	"exptrain/internal/game"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
)

// gameSem bounds the number of concurrently executing games across all
// conditions to the machine's parallelism: Run fans out over sampling
// methods and runMethod fans out over seeds, so without a shared bound
// the goroutine count would be methods × runs.
var gameSem = make(chan struct{}, runtime.GOMAXPROCS(0))

// Config drives one experimental condition: a dataset, a violation
// degree, the two agents' priors, and the game parameters of §C.1.
type Config struct {
	// Dataset is a paper dataset name ("OMDB", "AIRPORT", "Hospital",
	// "Tax").
	Dataset string
	// Rows sizes the generated relation (default 240).
	Rows int
	// Degree is the injected violation degree. A zero Degree with
	// DegreeSet false defaults to 0.1; negative values are rejected.
	Degree float64
	// DegreeSet marks Degree as intentionally specified. Degree == 0 is
	// a meaningful condition (a clean relation, no injection), but it is
	// also the zero value, so it only takes effect when DegreeSet is
	// true; otherwise the 0.1 default applies.
	DegreeSet bool
	// TrainerPrior and LearnerPrior configure the agents (§C.1 tests
	// Uniform-d, Random and Data-estimate).
	TrainerPrior belief.PriorSpec
	LearnerPrior belief.PriorSpec
	// Gamma is the stochastic samplers' temperature (default 0.5, §C.1).
	Gamma float64
	// K is examples per interaction (default 10); Iterations the number
	// of interactions (default 30).
	K, Iterations int
	// Runs is how many seeded repetitions to average (default 5).
	Runs int
	// BaseSeed offsets the per-run seeds.
	BaseSeed uint64
	// MaxLHS / MaxFDs size the hypothesis space (defaults 3 and 38,
	// §C.1).
	MaxLHS, MaxFDs int
	// PriorSigma widens or narrows the prior Betas (default
	// belief.DefaultPriorSigma).
	PriorSigma float64
	// Methods overrides the sampling methods compared (default: the
	// paper's Random, US, StochasticBR, StochasticUS). The extension
	// samplers MethodQBC and MethodEpsilonGreedy are accepted too.
	Methods []sampling.Method
	// LearnerForgetRate enables discounted fictitious play on the
	// learner (DESIGN.md ablation): evidence is geometrically discounted
	// by this rate before each update. Zero disables it.
	LearnerForgetRate float64
	// SharedPrior makes the learner start from an exact copy of the
	// trainer's prior — the paper's "models in agreement" companion
	// setting, where increasing the violation degree should not matter.
	SharedPrior bool
	// BelievedTau is the confidence threshold for exporting FDs to the
	// per-iteration detection evaluator. A zero BelievedTau with
	// BelievedTauSet false uses the game default (0.5); BelievedTauSet
	// makes an explicit 0 expressible, mirroring Degree/DegreeSet.
	BelievedTau    float64
	BelievedTauSet bool
}

func (c Config) withDefaults() Config {
	if c.Rows <= 0 {
		c.Rows = 240
	}
	if c.Degree == 0 && !c.DegreeSet { //etlint:ignore floatcmp zero value means unset; DegreeSet disambiguates a literal 0
		c.Degree = 0.1
	}
	if c.Gamma == 0 { //etlint:ignore floatcmp zero value means unset; callers assign literals
		c.Gamma = sampling.DefaultGamma
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Iterations <= 0 {
		c.Iterations = 30
	}
	if c.Runs <= 0 {
		c.Runs = 5
	}
	if c.MaxLHS <= 0 {
		c.MaxLHS = 3
	}
	if c.MaxFDs == 0 {
		c.MaxFDs = 38
	}
	if c.PriorSigma == 0 { //etlint:ignore floatcmp zero value means unset; callers assign literals
		// §C does not pin the prior strength. σ = 0.12 (≈16 pseudo-
		// observations per hypothesis) lets 30 interactions of evidence
		// meaningfully move the priors; §A.2's σ = 0.05 is reserved for
		// the user-study prior configuration where it is specified.
		c.PriorSigma = 0.12
	}
	return c
}

// MethodSeries is the averaged trajectory of one sampling method under
// one condition.
type MethodSeries struct {
	Method    string
	MAE       stats.Series
	F1        stats.Series
	Precision stats.Series
	Recall    stats.Series
}

// FinalMAE returns the last point of the MAE curve (1 when empty).
func (m MethodSeries) FinalMAE() float64 {
	if len(m.MAE) == 0 {
		return 1
	}
	return m.MAE[len(m.MAE)-1]
}

// MeanMAE returns the average MAE across iterations — the area-under-
// curve summary used to compare convergence speed.
func (m MethodSeries) MeanMAE() float64 { return stats.Mean(m.MAE) }

// FinalF1 returns the last point of the F1 curve.
func (m MethodSeries) FinalF1() float64 {
	if len(m.F1) == 0 {
		return 0
	}
	return m.F1[len(m.F1)-1]
}

// Result is one condition's outcome: the four methods' series.
type Result struct {
	Config  Config
	Methods []MethodSeries
}

// Run executes the condition for all four sampling methods. Methods run
// concurrently (each already fans its seeded repetitions out), with
// total game concurrency bounded by GOMAXPROCS; results keep method
// order.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: the context is checked before
// every seeded game inside the method × run fan-out, so a canceled
// condition stops promptly instead of playing out its remaining games.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Degree < 0 {
		return nil, fmt.Errorf("experiments: negative violation degree %v", cfg.Degree)
	}
	gen, err := datagen.ByName(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	methods := cfg.Methods
	if len(methods) == 0 {
		methods = sampling.Methods()
	}
	for _, m := range methods {
		if !m.Valid() {
			return nil, fmt.Errorf("experiments: %w %d", sampling.ErrUnknownMethod, int(m))
		}
	}
	series := make([]MethodSeries, len(methods))
	errs := make([]error, len(methods))
	var wg sync.WaitGroup
	for i, method := range methods {
		wg.Add(1)
		go func(i int, method sampling.Method) {
			defer wg.Done()
			s, err := runMethod(ctx, cfg, gen, method)
			if err != nil {
				errs[i] = fmt.Errorf("experiments: %s on %s: %w", method, cfg.Dataset, err)
				return
			}
			series[i] = s
		}(i, method)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Result{Config: cfg, Methods: series}, nil
}

// runMethod averages one method over cfg.Runs seeded games, running the
// seeds concurrently (each game is independent).
func runMethod(ctx context.Context, cfg Config, gen datagen.Generator, method sampling.Method) (MethodSeries, error) {
	maes := make([]stats.Series, cfg.Runs)
	f1s := make([]stats.Series, cfg.Runs)
	precs := make([]stats.Series, cfg.Runs)
	recs := make([]stats.Series, cfg.Runs)
	errs := make([]error, cfg.Runs)

	var wg sync.WaitGroup
	for run := 0; run < cfg.Runs; run++ {
		wg.Add(1)
		go func(run int) {
			defer wg.Done()
			gameSem <- struct{}{}
			defer func() { <-gameSem }()
			if err := ctx.Err(); err != nil {
				errs[run] = err
				return
			}
			out, err := runGame(ctx, cfg, gen, method, cfg.BaseSeed+uint64(run)*7919)
			if err != nil {
				errs[run] = err
				return
			}
			maes[run] = out.MAESeries()
			f1s[run] = out.F1Series()
			precs[run] = make(stats.Series, len(out.Iterations))
			recs[run] = make(stats.Series, len(out.Iterations))
			for i, it := range out.Iterations {
				precs[run][i] = it.Detection.Precision
				recs[run][i] = it.Detection.Recall
			}
		}(run)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return MethodSeries{}, err
		}
	}
	return MethodSeries{
		Method:    method.String(),
		MAE:       stats.AverageSeries(maes),
		F1:        stats.AverageSeries(f1s),
		Precision: stats.AverageSeries(precs),
		Recall:    stats.AverageSeries(recs),
	}, nil
}

// runGame plays one seeded game: generate, dirty, split, build agents,
// run the §C.1 interaction protocol.
func runGame(ctx context.Context, cfg Config, gen datagen.Generator, method sampling.Method, seed uint64) (*game.Result, error) {
	ds := gen(cfg.Rows, seed)
	// Degree 0 (with DegreeSet) is the clean-data condition: no
	// injection, empty ground-truth dirty set.
	rel := ds.Rel
	dirtyRows := map[int]struct{}{}
	if cfg.Degree > 0 {
		injected, err := errgen.InjectDegree(ds.Rel, errgen.DegreeConfig{
			FDs:        ds.ExactFDs,
			Degree:     cfg.Degree,
			MaxChanges: cfg.Rows / 3,
			Seed:       seed ^ 0xE44,
		})
		if err != nil {
			return nil, err
		}
		rel = injected.Rel
		dirtyRows = injected.DirtyRows
	}
	space := ds.Space(cfg.MaxLHS, cfg.MaxFDs)

	rng := stats.NewRNG(seed ^ 0x9A3E)
	// 30% held-out test split (§C.1).
	_, testRows := rel.Split(rng.Split(), 0.7)
	testRel := rel.Subset(testRows)
	dirty := make(map[int]struct{})
	for newIdx, orig := range testRows {
		if _, bad := dirtyRows[orig]; bad {
			dirty[newIdx] = struct{}{}
		}
	}

	trainerSpec, learnerSpec := cfg.TrainerPrior, cfg.LearnerPrior
	if trainerSpec.Sigma == 0 { //etlint:ignore floatcmp zero value means unset; callers assign literals
		trainerSpec.Sigma = cfg.PriorSigma
	}
	if learnerSpec.Sigma == 0 { //etlint:ignore floatcmp zero value means unset; callers assign literals
		learnerSpec.Sigma = cfg.PriorSigma
	}
	trainerPrior, err := trainerSpec.Build(space, rel, rng.Split())
	if err != nil {
		return nil, fmt.Errorf("trainer prior: %w", err)
	}
	learnerPrior, err := learnerSpec.Build(space, rel, rng.Split())
	if err != nil {
		return nil, fmt.Errorf("learner prior: %w", err)
	}
	if cfg.SharedPrior {
		learnerPrior = trainerPrior.Clone()
	}
	sampler, err := sampling.New(method, cfg.Gamma)
	if err != nil {
		return nil, err
	}

	trainer := agents.NewFPTrainer(trainerPrior, rng.Split())
	learner := agents.NewLearner(learnerPrior, sampler, rng.Split())
	learner.ForgetRate = cfg.LearnerForgetRate
	pool := sampling.NewPool(rel, space, sampling.PoolConfig{Seed: seed ^ 0x6001})

	return game.RunContext(ctx, rel, trainer, learner, pool, game.Config{
		K:              cfg.K,
		Iterations:     cfg.Iterations,
		Eval:           &game.Evaluator{TestRel: testRel, DirtyRows: dirty},
		BelievedTau:    cfg.BelievedTau,
		BelievedTauSet: cfg.BelievedTauSet,
	})
}
