package experiments

import (
	"fmt"
	"io"
	"strings"
)

// WriteMAETable renders a condition's MAE series as an aligned text
// table: one row per iteration, one column per method — the textual
// equivalent of the paper's MAE figures.
func WriteMAETable(w io.Writer, res *Result) error {
	return writeSeriesTable(w, res, func(m MethodSeries) []float64 { return m.MAE })
}

// WriteF1Table renders a condition's detection-F1 series (Figure 7's
// textual equivalent).
func WriteF1Table(w io.Writer, res *Result) error {
	return writeSeriesTable(w, res, func(m MethodSeries) []float64 { return m.F1 })
}

func writeSeriesTable(w io.Writer, res *Result, pick func(MethodSeries) []float64) error {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("# dataset=%s degree=%.0f%% trainer=%s learner=%s\n",
		res.Config.Dataset, res.Config.Degree*100,
		res.Config.TrainerPrior, res.Config.LearnerPrior))
	b.WriteString(fmt.Sprintf("%-5s", "iter"))
	maxLen := 0
	for _, m := range res.Methods {
		b.WriteString(fmt.Sprintf(" %14s", m.Method))
		if n := len(pick(m)); n > maxLen {
			maxLen = n
		}
	}
	b.WriteByte('\n')
	for i := 0; i < maxLen; i++ {
		b.WriteString(fmt.Sprintf("%-5d", i+1))
		for _, m := range res.Methods {
			series := pick(m)
			if i < len(series) {
				b.WriteString(fmt.Sprintf(" %14.4f", series[i]))
			} else {
				b.WriteString(fmt.Sprintf(" %14s", "-"))
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteSummary renders one line per method with the convergence and
// accuracy summaries (mean/final MAE, final F1 with precision/recall) —
// the numbers EXPERIMENTS.md records per figure.
func WriteSummary(w io.Writer, res *Result) error {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("# dataset=%s degree=%.0f%% trainer=%s learner=%s\n",
		res.Config.Dataset, res.Config.Degree*100,
		res.Config.TrainerPrior, res.Config.LearnerPrior))
	b.WriteString(fmt.Sprintf("%-14s %9s %9s %8s %8s %8s\n",
		"method", "meanMAE", "finalMAE", "finalF1", "finalP", "finalR"))
	for _, m := range res.Methods {
		lastP, lastR := 0.0, 0.0
		if n := len(m.Precision); n > 0 {
			lastP = m.Precision[n-1]
		}
		if n := len(m.Recall); n > 0 {
			lastR = m.Recall[n-1]
		}
		b.WriteString(fmt.Sprintf("%-14s %9.4f %9.4f %8.4f %8.4f %8.4f\n",
			m.Method, m.MeanMAE(), m.FinalMAE(), m.FinalF1(), lastP, lastR))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteSeriesCSV renders a condition's per-iteration series as CSV with
// one column per method — directly loadable by plotting tools. pick
// selects the series (use MAE or F1 via the exported wrappers).
func WriteSeriesCSV(w io.Writer, res *Result, pick func(MethodSeries) []float64) error {
	var b strings.Builder
	b.WriteString("iteration")
	maxLen := 0
	for _, m := range res.Methods {
		b.WriteByte(',')
		b.WriteString(m.Method)
		if n := len(pick(m)); n > maxLen {
			maxLen = n
		}
	}
	b.WriteByte('\n')
	for i := 0; i < maxLen; i++ {
		b.WriteString(fmt.Sprint(i + 1))
		for _, m := range res.Methods {
			b.WriteByte(',')
			series := pick(m)
			if i < len(series) {
				b.WriteString(fmt.Sprintf("%.6f", series[i]))
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MAEOf and F1Of are the series selectors for WriteSeriesCSV.
func MAEOf(m MethodSeries) []float64 { return m.MAE }
func F1Of(m MethodSeries) []float64  { return m.F1 }
