package experiments

import (
	"errors"
	"strings"
	"testing"

	"exptrain/internal/belief"
	"exptrain/internal/sampling"
)

func TestRunWithMethodOverride(t *testing.T) {
	cfg := quickConfig("OMDB", belief.PriorSpec{Kind: belief.PriorDataEstimate})
	cfg.Methods = []sampling.Method{sampling.MethodQBC, sampling.MethodEpsilonGreedy}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 2 {
		t.Fatalf("got %d methods", len(res.Methods))
	}
	if res.Methods[0].Method != "QBC" || res.Methods[1].Method != "EpsilonGreedy" {
		t.Fatalf("method names: %v, %v", res.Methods[0].Method, res.Methods[1].Method)
	}
	for _, m := range res.Methods {
		if len(m.MAE) == 0 {
			t.Fatalf("%s produced no series", m.Method)
		}
	}
}

func TestRunWithUnknownMethod(t *testing.T) {
	cfg := quickConfig("OMDB", belief.PriorSpec{Kind: belief.PriorRandom})
	cfg.Methods = []sampling.Method{sampling.Method(99)}
	if _, err := Run(cfg); !errors.Is(err, sampling.ErrUnknownMethod) {
		t.Fatal("unknown method should error with sampling.ErrUnknownMethod")
	}
}

func TestSharedPriorStartsInAgreement(t *testing.T) {
	cfg := quickConfig("OMDB", belief.PriorSpec{Kind: belief.PriorUniform, D: 0.9})
	cfg.SharedPrior = true
	cfg.Methods = []sampling.Method{sampling.MethodRandom}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With identical priors the first-iteration MAE reflects only one
	// interaction's worth of asymmetric evidence (the trainer digests
	// all cross pairs of the sample, the learner only the labels) —
	// well below the Uniform-0.9-vs-Random disagreement regime (~0.3).
	if first := res.Methods[0].MAE[0]; first > 0.2 {
		t.Fatalf("shared priors should start nearly agreed; first MAE %v", first)
	}
}

// TestAgreementDegreeInsensitive reproduces the paper's prose claim
// next to Figure 6: with agreeing priors, increasing the violation
// degree does not considerably impact convergence.
func TestAgreementDegreeInsensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("needs multiple degrees")
	}
	results, err := Figure6Agreement(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d degree conditions", len(results))
	}
	// Compare StochasticUS across degrees: the spread must be small
	// relative to the disagreeing-prior spread of Figure 6.
	var maes []float64
	for _, res := range results {
		for _, m := range res.Methods {
			if m.Method == "StochasticUS" {
				maes = append(maes, m.MeanMAE())
			}
		}
	}
	lo, hi := maes[0], maes[0]
	for _, v := range maes {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > 0.05 {
		t.Fatalf("agreement regime should be degree-insensitive; meanMAE spread %v (%v)", hi-lo, maes)
	}
	// Absolute level: the transient gap (the trainer sees all cross
	// pairs, the learner only labels) keeps meanMAE modest but nonzero.
	if hi > 0.2 {
		t.Fatalf("agreement regime should converge; worst meanMAE %v", hi)
	}
}

func TestLearnerForgettingRuns(t *testing.T) {
	cfg := quickConfig("OMDB", belief.PriorSpec{Kind: belief.PriorDataEstimate})
	cfg.LearnerForgetRate = 0.05
	cfg.Methods = []sampling.Method{sampling.MethodStochasticUS}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Methods[0].MAE {
		if v < 0 || v > 1 {
			t.Fatalf("forgetting run produced MAE %v", v)
		}
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	cfg := quickConfig("OMDB", belief.PriorSpec{Kind: belief.PriorDataEstimate})
	cfg.Methods = []sampling.Method{sampling.MethodRandom}
	cfg.Runs = 1
	cfg.Iterations = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSeriesCSV(&sb, res, MAEOf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "iteration,Random" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1,0.") {
		t.Fatalf("first row = %q", lines[1])
	}
}
