package experiments

import (
	"fmt"

	"exptrain/internal/belief"
)

// Standard priors of §C.1.
var (
	priorRandom       = belief.PriorSpec{Kind: belief.PriorRandom}
	priorDataEstimate = belief.PriorSpec{Kind: belief.PriorDataEstimate}
	priorUniform09    = belief.PriorSpec{Kind: belief.PriorUniform, D: 0.9}
)

// Figure1 — MAE between trainer and learner models on OMDB with ≈10%
// violations; trainer prior Random, learner prior Data-estimate.
func Figure1(baseSeed uint64, runs int) (*Result, error) {
	return Run(Config{
		Dataset:      "OMDB",
		Degree:       0.10,
		TrainerPrior: priorRandom,
		LearnerPrior: priorDataEstimate,
		Runs:         runs,
		BaseSeed:     baseSeed,
	})
}

// Figure3 — same condition as Figure 1 but the learner's prior is not
// informed by the data (Uniform-0.9).
func Figure3(baseSeed uint64, runs int) (*Result, error) {
	return Run(Config{
		Dataset:      "OMDB",
		Degree:       0.10,
		TrainerPrior: priorRandom,
		LearnerPrior: priorUniform09,
		Runs:         runs,
		BaseSeed:     baseSeed,
	})
}

// Figure4 — MAE for all four datasets at ≈20% violations; trainer prior
// Random, learner prior Data-estimate.
func Figure4(baseSeed uint64, runs int) ([]*Result, error) {
	return allDatasets(Config{
		Degree:       0.20,
		TrainerPrior: priorRandom,
		LearnerPrior: priorDataEstimate,
		Runs:         runs,
		BaseSeed:     baseSeed,
	})
}

// Figure5 — MAE for all four datasets at ≈20% violations; learner prior
// Uniform-0.9.
func Figure5(baseSeed uint64, runs int) ([]*Result, error) {
	return allDatasets(Config{
		Degree:       0.20,
		TrainerPrior: priorRandom,
		LearnerPrior: priorUniform09,
		Runs:         runs,
		BaseSeed:     baseSeed,
	})
}

// Figure6 — MAE on OMDB at violation degrees ≈5%, ≈15% and ≈25%;
// trainer prior Random, learner prior Uniform-0.9. One Result per
// degree, in that order.
func Figure6(baseSeed uint64, runs int) ([]*Result, error) {
	var out []*Result
	for _, degree := range []float64{0.05, 0.15, 0.25} {
		res, err := Run(Config{
			Dataset:      "OMDB",
			Degree:       degree,
			TrainerPrior: priorRandom,
			LearnerPrior: priorUniform09,
			Runs:         runs,
			BaseSeed:     baseSeed,
		})
		if err != nil {
			return nil, fmt.Errorf("figure 6 degree %v: %w", degree, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Figure7 — error-detection F1 of the learner's model per iteration on
// OMDB, Hospital and Tax at ≈20% violations; both priors Random.
func Figure7(baseSeed uint64, runs int) ([]*Result, error) {
	var out []*Result
	for _, name := range []string{"OMDB", "Hospital", "Tax"} {
		res, err := Run(Config{
			Dataset:      name,
			Degree:       0.20,
			TrainerPrior: priorRandom,
			LearnerPrior: priorRandom,
			Runs:         runs,
			BaseSeed:     baseSeed,
		})
		if err != nil {
			return nil, fmt.Errorf("figure 7 %s: %w", name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Figure6Agreement is the companion the paper describes in prose next
// to Figure 6: when the trainer's and learner's prior models agree, the
// violation degree stops mattering — the MAE curves stay flat across
// degrees. One Result per degree (≈5/15/25%), each with SharedPrior.
func Figure6Agreement(baseSeed uint64, runs int) ([]*Result, error) {
	var out []*Result
	for _, degree := range []float64{0.05, 0.15, 0.25} {
		res, err := Run(Config{
			Dataset:      "OMDB",
			Degree:       degree,
			TrainerPrior: priorRandom,
			LearnerPrior: priorRandom, // overridden by SharedPrior
			SharedPrior:  true,
			Runs:         runs,
			BaseSeed:     baseSeed,
		})
		if err != nil {
			return nil, fmt.Errorf("figure 6 agreement degree %v: %w", degree, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func allDatasets(template Config) ([]*Result, error) {
	var out []*Result
	for _, name := range []string{"OMDB", "AIRPORT", "Hospital", "Tax"} {
		cfg := template
		cfg.Dataset = name
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, res)
	}
	return out, nil
}
