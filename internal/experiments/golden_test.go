package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"exptrain/internal/belief"
	"exptrain/internal/sampling"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden series")

// goldenConfigs are the seeded conditions whose full output series are
// pinned bit-for-bit. They cover both prior regimes, the four paper
// samplers plus the extra ones, and two datasets, so any change to the
// partition/encoding substrate that perturbs experiment output — even
// in the last float bit — fails here.
func goldenConfigs() map[string]Config {
	return map[string]Config{
		"omdb_uniform": {
			Dataset:      "OMDB",
			Rows:         120,
			Degree:       0.1,
			TrainerPrior: belief.PriorSpec{Kind: belief.PriorRandom},
			LearnerPrior: belief.PriorSpec{Kind: belief.PriorUniform, D: 0.9},
			Iterations:   8,
			Runs:         2,
			BaseSeed:     7,
			Methods: append(sampling.Methods(), sampling.MethodQBC, sampling.MethodEpsilonGreedy),
		},
		"hospital_dataest": {
			Dataset:      "Hospital",
			Rows:         100,
			Degree:       0.2,
			TrainerPrior: belief.PriorSpec{Kind: belief.PriorRandom},
			LearnerPrior: belief.PriorSpec{Kind: belief.PriorDataEstimate},
			Iterations:   6,
			Runs:         2,
			BaseSeed:     3,
		},
	}
}

// hexSeries renders a float series with strconv 'x' formatting so the
// golden file pins exact bit patterns, not rounded decimals.
func hexSeries(s []float64) []string {
	out := make([]string, len(s))
	for i, v := range s {
		out[i] = strconv.FormatFloat(v, 'x', -1, 64)
	}
	return out
}

type goldenMethod struct {
	Method    string   `json:"method"`
	MAE       []string `json:"mae"`
	F1        []string `json:"f1"`
	Precision []string `json:"precision"`
	Recall    []string `json:"recall"`
}

func goldenOf(res *Result) []goldenMethod {
	out := make([]goldenMethod, 0, len(res.Methods))
	for _, m := range res.Methods {
		out = append(out, goldenMethod{
			Method:    m.Method,
			MAE:       hexSeries(m.MAE),
			F1:        hexSeries(m.F1),
			Precision: hexSeries(m.Precision),
			Recall:    hexSeries(m.Recall),
		})
	}
	return out
}

// TestGoldenSeries proves the perf substrate (dictionary encoding, PLI
// cache, incremental pool) is output-equivalent to the original string
// implementation: the series below were recorded before the
// optimization landed and must never move. Regenerate deliberately
// with: go test ./internal/experiments -run TestGoldenSeries -update
func TestGoldenSeries(t *testing.T) {
	for name, cfg := range goldenConfigs() {
		t.Run(name, func(t *testing.T) {
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(goldenOf(res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden_"+name+".json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(got, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if string(want) != string(got)+"\n" {
				t.Errorf("seeded experiment series diverged from recorded golden %s;\nthe optimized path is not output-equivalent to the naive one", path)
			}
		})
	}
}
