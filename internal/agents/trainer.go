// Package agents implements the two players of the exploratory-training
// game (Section 2): the trainer (the human annotator, simulated with the
// human-learning models of Section 3 — fictitious play / Bayesian and
// hypothesis testing) and the learner (the active-learning system with a
// Bayesian prediction model and a pluggable response strategy).
package agents

import (
	"fmt"
	"sort"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// Trainer is the annotator side of the game. Each interaction the game
// first calls Observe with the presented pairs (the trainer's prediction
// model P^T: it learns about the data from what it is shown) and then
// Label (the trainer's response model R^T: it labels according to its
// updated belief).
type Trainer interface {
	// Name identifies the trainer's learning method.
	Name() string
	// Observe updates the trainer's belief from newly presented pairs.
	Observe(rel *dataset.Relation, pairs []dataset.Pair)
	// Label returns the trainer's annotations for the presented pairs.
	Label(rel *dataset.Relation, pairs []dataset.Pair) []belief.Labeling
	// Belief exposes the trainer's current belief; the evaluation uses
	// it only to measure trainer/learner agreement (MAE), never to leak
	// it to the learner.
	Belief() *belief.Belief
}

// FPTrainer simulates a human annotator that learns by fictitious play /
// Bayesian updating — the model the paper's user study found to describe
// most participants (§A.3). Its belief is a Beta per hypothesis; each
// observed pair updates the hypotheses it carries evidence for, and
// labels are the best response to the updated belief.
type FPTrainer struct {
	belief *belief.Belief
	// NoiseRate optionally flips each label with this probability,
	// modeling annotation slips on top of belief-driven labeling.
	NoiseRate float64
	// PresentedPairsOnly restricts the trainer's observation to exactly
	// the presented pairs. By default the trainer — like the study
	// participants, who are shown whole tuples — also compares every
	// pair of tuples co-occurring in an interaction's sample, which is
	// how a human actually inspects a screenful of rows.
	PresentedPairsOnly bool
	// ForgetRate, when in (0, 1), geometrically discounts accumulated
	// evidence before each observation — a human whose older impressions
	// fade (discounted fictitious play, Young 2004). Zero disables it.
	ForgetRate float64
	rng        *stats.RNG
}

// NewFPTrainer creates a fictitious-play trainer starting from the given
// prior belief. rng is only used when label noise is configured.
func NewFPTrainer(prior *belief.Belief, rng *stats.RNG) *FPTrainer {
	return &FPTrainer{belief: prior, rng: rng}
}

// Name implements Trainer.
func (t *FPTrainer) Name() string { return "FP" }

// CrossPairs expands a presented pair set to every pair of distinct
// tuples appearing in it — the evidence a human gains from seeing the
// sample's tuples side by side.
func CrossPairs(pairs []dataset.Pair) []dataset.Pair {
	rowSet := make(map[int]struct{}, 2*len(pairs))
	for _, p := range pairs {
		rowSet[p.A] = struct{}{}
		rowSet[p.B] = struct{}{}
	}
	rows := make([]int, 0, len(rowSet))
	for r := range rowSet {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	return dataset.PairsAmong(rows)
}

// Observe implements Trainer: fictitious-play counting over the
// interaction's evidence (all pairs among the presented tuples, unless
// PresentedPairsOnly is set).
func (t *FPTrainer) Observe(rel *dataset.Relation, pairs []dataset.Pair) {
	if len(pairs) == 0 {
		return
	}
	evidence := pairs
	if !t.PresentedPairsOnly {
		evidence = CrossPairs(pairs)
	}
	if t.ForgetRate > 0 && t.ForgetRate < 1 {
		t.belief.Decay(1 - t.ForgetRate)
	}
	t.belief.UpdateFromData(rel, evidence, 1)
}

// Label implements Trainer: the best response to the trainer's current
// belief — for every hypothesis held with confidence ≥ 1/2 that a pair
// violates, the hypothesis' RHS cells are marked as erroneous (§A.1's
// cell-level violation marking).
func (t *FPTrainer) Label(rel *dataset.Relation, pairs []dataset.Pair) []belief.Labeling {
	out := t.belief.MarkPairs(rel, pairs, 0.5)
	if t.NoiseRate > 0 && t.rng != nil {
		for i := range out {
			if t.rng.Float64() >= t.NoiseRate {
				continue
			}
			out[i] = t.flipMarking(rel, out[i])
		}
	}
	return out
}

// flipMarking models an annotation slip: a marked pair loses its marks;
// an unmarked pair that syntactically violates something gets the
// highest-confidence violated hypothesis' RHS marked (a human would not
// mark a violation that does not exist).
func (t *FPTrainer) flipMarking(rel *dataset.Relation, l belief.Labeling) belief.Labeling {
	if l.Dirty() {
		return belief.Labeling{Pair: l.Pair}
	}
	best, bestConf := -1, -1.0
	for i := 0; i < t.belief.Size(); i++ {
		f := t.belief.Space().FD(i)
		if fd.Status(f, rel, l.Pair) == fd.Violating && t.belief.Confidence(i) > bestConf {
			best, bestConf = i, t.belief.Confidence(i)
		}
	}
	if best < 0 {
		return l
	}
	return belief.Labeling{Pair: l.Pair, Marked: fd.NewAttrSet(t.belief.Space().FD(best).RHS)}
}

// Belief implements Trainer.
func (t *FPTrainer) Belief() *belief.Belief { return t.belief }

// StationaryTrainer is the annotator current active-learning systems
// assume (§1): a fixed belief, never updated — it labels from the same
// model throughout. Used by the ablation benches to show US recovers
// when the trainer genuinely does not learn.
type StationaryTrainer struct {
	belief *belief.Belief
}

// NewStationaryTrainer wraps a fixed belief.
func NewStationaryTrainer(b *belief.Belief) *StationaryTrainer {
	return &StationaryTrainer{belief: b}
}

// Name implements Trainer.
func (t *StationaryTrainer) Name() string { return "Stationary" }

// Observe implements Trainer as a no-op: the stationary trainer never
// revises its belief.
func (t *StationaryTrainer) Observe(*dataset.Relation, []dataset.Pair) {}

// Label implements Trainer.
func (t *StationaryTrainer) Label(rel *dataset.Relation, pairs []dataset.Pair) []belief.Labeling {
	return t.belief.MarkPairs(rel, pairs, 0.5)
}

// Belief implements Trainer.
func (t *StationaryTrainer) Belief() *belief.Belief { return t.belief }

// HTConfig configures a hypothesis-testing trainer (§3).
type HTConfig struct {
	// Tolerance is the acceptable gap between the held hypothesis'
	// believed confidence and its empirical performance on the recent
	// window before the hypothesis is rejected.
	Tolerance float64
	// WindowSize is how many recent pairs the test runs over; the paper
	// found testing against the preceding interaction's sample works
	// best (§A.2), i.e. a window of one interaction (k pairs).
	WindowSize int
}

// HypothesisTestingTrainer simulates the second human-learning model of
// Section 3: the annotator holds one working hypothesis (a single FD),
// labels according to it, tests it against recent evidence every
// interaction, and on rejection switches to the hypothesis performing
// best on the recent window.
type HypothesisTestingTrainer struct {
	belief  *belief.Belief // running empirical estimates over the space
	current int            // index of the held hypothesis
	cfg     HTConfig
	window  []dataset.Pair
}

// NewHypothesisTestingTrainer starts from the prior belief, holding the
// prior's highest-confidence hypothesis.
func NewHypothesisTestingTrainer(prior *belief.Belief, cfg HTConfig) (*HypothesisTestingTrainer, error) {
	if prior.Size() == 0 {
		return nil, fmt.Errorf("agents: empty hypothesis space")
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.2
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 10
	}
	return &HypothesisTestingTrainer{
		belief:  prior,
		current: prior.TopK(1)[0],
		cfg:     cfg,
	}, nil
}

// Name implements Trainer.
func (t *HypothesisTestingTrainer) Name() string { return "HypothesisTesting" }

// Current returns the index of the held hypothesis.
func (t *HypothesisTestingTrainer) Current() int { return t.current }

// empiricalConfidence measures how well hypothesis i explains the
// window: the compliance rate among window pairs carrying evidence for
// it (1 when no evidence).
func (t *HypothesisTestingTrainer) empiricalConfidence(rel *dataset.Relation, i int) float64 {
	f := t.belief.Space().FD(i)
	agree, comply := 0, 0
	for _, p := range t.window {
		switch fd.Status(f, rel, p) {
		case fd.Compliant:
			agree++
			comply++
		case fd.Violating:
			agree++
		}
	}
	if agree == 0 {
		return 1
	}
	return float64(comply) / float64(agree)
}

// Observe implements Trainer: it updates the running empirical belief,
// refreshes the test window, and re-tests the held hypothesis — when the
// hypothesis' believed confidence overshoots its recent empirical
// performance by more than the tolerance, the trainer rejects it and
// adopts the hypothesis with the best recent performance (breaking ties
// toward higher believed confidence).
func (t *HypothesisTestingTrainer) Observe(rel *dataset.Relation, pairs []dataset.Pair) {
	if len(pairs) == 0 {
		return
	}
	evidence := CrossPairs(pairs)
	t.belief.UpdateFromData(rel, evidence, 1)
	// The window is the most recent WindowSize pairs of evidence.
	t.window = append(t.window, evidence...)
	if over := len(t.window) - t.cfg.WindowSize; over > 0 {
		t.window = append([]dataset.Pair(nil), t.window[over:]...)
	}

	held := t.belief.Confidence(t.current)
	emp := t.empiricalConfidence(rel, t.current)
	if held-emp > t.cfg.Tolerance {
		best, bestScore := t.current, -1.0
		for i := 0; i < t.belief.Size(); i++ {
			score := t.empiricalConfidence(rel, i)
			// Prefer hypotheses with actual supporting evidence; break
			// ties by believed confidence.
			score += 1e-6 * t.belief.Confidence(i)
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		t.current = best
	}
}

// Label implements Trainer: marks strictly by the held hypothesis — a
// pair gets the held FD's RHS marked exactly when it violates it.
func (t *HypothesisTestingTrainer) Label(rel *dataset.Relation, pairs []dataset.Pair) []belief.Labeling {
	f := t.belief.Space().FD(t.current)
	out := make([]belief.Labeling, len(pairs))
	for i, p := range pairs {
		l := belief.Labeling{Pair: p}
		if fd.Status(f, rel, p) == fd.Violating {
			l.Marked = fd.NewAttrSet(f.RHS)
		}
		out[i] = l
	}
	return out
}

// Belief implements Trainer.
func (t *HypothesisTestingTrainer) Belief() *belief.Belief { return t.belief }

// RankedHypotheses returns up to k hypothesis indices ordered by how
// the hypothesis-testing model would entertain them: the held
// hypothesis first, then the rest by their empirical performance on the
// recent window (ties toward believed confidence, then canonical
// order). The user-study analysis uses this as the model's top-k
// prediction list.
func (t *HypothesisTestingTrainer) RankedHypotheses(rel *dataset.Relation, k int) []int {
	n := t.belief.Size()
	if k > n {
		k = n
	}
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if i != t.current {
			idx = append(idx, i)
		}
	}
	score := func(i int) float64 {
		return t.empiricalConfidence(rel, i) + 1e-6*t.belief.Confidence(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return score(idx[a]) > score(idx[b]) })
	out := append([]int{t.current}, idx...)
	return out[:k]
}
