package agents

import (
	"testing"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
)

func TestAbstainingTrainerBlanksUncertainPairs(t *testing.T) {
	rel, space := fixture()
	// A belief at exactly 0.55 dirty-probability for violations falls
	// inside a 0.1 margin band.
	prior := belief.New(space, stats.MustBetaFromMoments(0.05, 0.02))
	target, _ := space.Index(fd.MustNew(fd.NewAttrSet(0), 1))
	prior.SetDist(target, stats.MustBetaFromMoments(0.55, 0.02))
	at := NewAbstainingTrainer(NewFPTrainer(prior, nil), 0.1)

	pairs := dataset.AllPairs(rel.NumRows())
	labeled := at.Label(rel, pairs)
	f := space.FD(target)
	sawAbstain := false
	for _, lp := range labeled {
		if fd.Status(f, rel, lp.Pair) == fd.Violating {
			if !lp.Abstained {
				t.Fatalf("uncertain violation %v not abstained", lp.Pair)
			}
			if lp.Dirty() {
				t.Fatalf("abstained labeling still carries marks: %v", lp.Marked)
			}
			sawAbstain = true
		}
	}
	if !sawAbstain {
		t.Fatal("setup: no violating pairs to abstain on")
	}
	if at.Name() != "FP+Abstain" {
		t.Fatalf("Name = %q", at.Name())
	}
}

func TestAbstainingTrainerConfidentPairsPass(t *testing.T) {
	rel, space := fixture()
	prior := belief.New(space, stats.MustBetaFromMoments(0.05, 0.02))
	target, _ := space.Index(fd.MustNew(fd.NewAttrSet(0), 1))
	prior.SetDist(target, stats.MustBetaFromMoments(0.95, 0.02))
	at := NewAbstainingTrainer(NewFPTrainer(prior, nil), 0.1)
	for _, lp := range at.Label(rel, dataset.AllPairs(rel.NumRows())) {
		if lp.Abstained {
			t.Fatalf("confident labeling abstained: %v", lp.Pair)
		}
	}
	// Zero margin never abstains.
	prior.SetDist(target, stats.MustBetaFromMoments(0.5001, 0.01))
	none := NewAbstainingTrainer(NewFPTrainer(prior, nil), 0)
	for _, lp := range none.Label(rel, dataset.AllPairs(rel.NumRows())) {
		if lp.Abstained {
			t.Fatal("zero-margin trainer abstained")
		}
	}
}

func TestRelabelingTrainerRevisesChangedLabels(t *testing.T) {
	rel, space := fixture()
	// Start believing a junk FD strongly; data will overturn it.
	junk, _ := space.Index(fd.MustNew(fd.NewAttrSet(2), 1))
	prior := belief.New(space, stats.MustBetaFromMoments(0.1, 0.05))
	prior.SetDist(junk, stats.MustBetaFromMoments(0.9, 0.05))
	rt := NewRelabelingTrainer(NewFPTrainer(prior, nil))
	rt.MaxRevisionsPerRound = 100

	pairs := dataset.AllPairs(rel.NumRows())[:20]
	first := rt.Label(rel, pairs)
	dirtyBefore := 0
	for _, lp := range first {
		if lp.Dirty() {
			dirtyBefore++
		}
	}
	if dirtyBefore == 0 {
		t.Fatal("setup: junk belief labeled nothing dirty")
	}
	// Strong evidence against the junk FD.
	for i := 0; i < 10; i++ {
		rt.Observe(rel, dataset.AllPairs(rel.NumRows()))
	}
	revisions := rt.Revisions(rel)
	if len(revisions) == 0 {
		t.Fatal("no revisions after a belief reversal")
	}
	// Re-requesting revisions immediately yields nothing new.
	if again := rt.Revisions(rel); len(again) != 0 {
		t.Fatalf("revisions not idempotent: %v", again)
	}
	if rt.Name() != "FP+Relabel" {
		t.Fatalf("Name = %q", rt.Name())
	}
}

func TestRelabelingTrainerRespectsCap(t *testing.T) {
	rel, space := fixture()
	junk, _ := space.Index(fd.MustNew(fd.NewAttrSet(2), 1))
	prior := belief.New(space, stats.MustBetaFromMoments(0.1, 0.05))
	prior.SetDist(junk, stats.MustBetaFromMoments(0.9, 0.05))
	rt := NewRelabelingTrainer(NewFPTrainer(prior, nil))
	rt.MaxRevisionsPerRound = 2

	rt.Label(rel, dataset.AllPairs(rel.NumRows()))
	for i := 0; i < 10; i++ {
		rt.Observe(rel, dataset.AllPairs(rel.NumRows()))
	}
	if got := rt.Revisions(rel); len(got) > 2 {
		t.Fatalf("cap violated: %d revisions", len(got))
	}
}

func TestLearnerReviseReversesOldEvidence(t *testing.T) {
	rel, space := fixture()
	l := NewLearner(belief.New(space, stats.NewBeta(2, 2)), sampling.Random{}, stats.NewRNG(1))

	// Find a pair violating the planted FD.
	target := fd.MustNew(fd.NewAttrSet(0), 1)
	var viol dataset.Pair
	found := false
	for _, q := range dataset.AllPairs(rel.NumRows()) {
		if fd.Status(target, rel, q) == fd.Violating {
			viol = q
			found = true
			break
		}
	}
	if !found {
		t.Fatal("setup: no violating pair")
	}

	idx, _ := space.Index(target)
	baseline := l.Belief().Dist(idx)

	// Incorporate a clean labeling (β evidence), then revise to dirty
	// (no evidence): the belief must return to baseline.
	l.Incorporate(rel, []belief.Labeling{{Pair: viol}})
	afterClean := l.Belief().Dist(idx)
	if afterClean.Beta != baseline.Beta+1 {
		t.Fatalf("clean violation did not add β: %+v", afterClean)
	}
	l.Revise(rel, []belief.Labeling{{Pair: viol, Marked: fd.NewAttrSet(target.RHS)}})
	restored := l.Belief().Dist(idx)
	if restored.Alpha != baseline.Alpha || restored.Beta != baseline.Beta {
		t.Fatalf("revision did not restore baseline: Beta(%v,%v) vs Beta(%v,%v)",
			restored.Alpha, restored.Beta, baseline.Alpha, baseline.Beta)
	}
	// History reflects the latest labeling.
	lp, ok := l.LabelHistory(viol)
	if !ok || !lp.Dirty() {
		t.Fatalf("history = %+v, %v", lp, ok)
	}
}

func TestLearnerReviseIdenticalIsNoop(t *testing.T) {
	rel, space := fixture()
	l := NewLearner(belief.New(space, stats.NewBeta(2, 2)), sampling.Random{}, stats.NewRNG(1))
	lp := belief.Labeling{Pair: dataset.NewPair(0, 3)}
	l.Incorporate(rel, []belief.Labeling{lp})
	snapshot := l.Belief().Confidences()
	l.Revise(rel, []belief.Labeling{lp})
	for i, v := range l.Belief().Confidences() {
		if v != snapshot[i] {
			t.Fatal("identical revision changed the belief")
		}
	}
}

func TestLearnerReviseUnseenPairIncorporates(t *testing.T) {
	rel, space := fixture()
	l := NewLearner(belief.New(space, stats.NewBeta(2, 2)), sampling.Random{}, stats.NewRNG(1))
	before := l.Belief().Confidences()
	l.Revise(rel, []belief.Labeling{{Pair: dataset.NewPair(0, 3)}})
	moved := false
	for i, v := range l.Belief().Confidences() {
		if v != before[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("revision of an unseen pair should incorporate it")
	}
}

func TestLearnerForgetRateAdapts(t *testing.T) {
	rel, space := fixture()
	target := fd.MustNew(fd.NewAttrSet(0), 1)
	idx, _ := space.Index(target)
	var comp, viol dataset.Pair
	foundC, foundV := false, false
	for _, q := range dataset.AllPairs(rel.NumRows()) {
		switch fd.Status(target, rel, q) {
		case fd.Compliant:
			comp, foundC = q, true
		case fd.Violating:
			viol, foundV = q, true
		}
	}
	if !foundC || !foundV {
		t.Fatal("setup: need both pair kinds")
	}

	plain := NewLearner(belief.New(space, stats.NewBeta(1, 1)), sampling.Random{}, stats.NewRNG(1))
	forgetting := NewLearner(belief.New(space, stats.NewBeta(1, 1)), sampling.Random{}, stats.NewRNG(1))
	forgetting.ForgetRate = 0.1

	for i := 0; i < 40; i++ {
		plain.Incorporate(rel, []belief.Labeling{{Pair: comp}})
		forgetting.Incorporate(rel, []belief.Labeling{{Pair: comp}})
	}
	for i := 0; i < 15; i++ {
		plain.Incorporate(rel, []belief.Labeling{{Pair: viol}})
		forgetting.Incorporate(rel, []belief.Labeling{{Pair: viol}})
	}
	if forgetting.Belief().Confidence(idx) >= plain.Belief().Confidence(idx) {
		t.Fatalf("forgetting learner (%v) should adapt below plain (%v)",
			forgetting.Belief().Confidence(idx), plain.Belief().Confidence(idx))
	}
}

func TestGameWithRelabelingTrainer(t *testing.T) {
	// End-to-end: a relabeling trainer inside the game loop produces
	// revisions that the learner absorbs without error.
	rel, space := fixture()
	rng := stats.NewRNG(5)
	junk, _ := space.Index(fd.MustNew(fd.NewAttrSet(2), 1))
	prior := belief.New(space, stats.MustBetaFromMoments(0.2, 0.1))
	prior.SetDist(junk, stats.MustBetaFromMoments(0.9, 0.05))
	rt := NewRelabelingTrainer(NewFPTrainer(prior, nil))
	learner := NewLearner(belief.New(space, stats.NewBeta(1, 1)), sampling.Random{}, rng)

	pairs := dataset.AllPairs(rel.NumRows())
	for round := 0; round < 6; round++ {
		batch := pairs[round*5 : round*5+5]
		rt.Observe(rel, batch)
		labeled := rt.Label(rel, batch)
		learner.Incorporate(rel, labeled)
		learner.Revise(rel, rt.Revisions(rel))
	}
	// Beliefs must remain valid Betas throughout.
	for i := 0; i < learner.Belief().Size(); i++ {
		d := learner.Belief().Dist(i)
		if d.Alpha <= 0 || d.Beta <= 0 {
			t.Fatalf("hypothesis %d corrupted: Beta(%v,%v)", i, d.Alpha, d.Beta)
		}
	}
}

func TestRankedHypothesesShape(t *testing.T) {
	rel, space := fixture()
	target, _ := space.Index(fd.MustNew(fd.NewAttrSet(0), 1))
	prior := belief.New(space, stats.MustBetaFromMoments(0.3, 0.05))
	prior.SetDist(target, stats.MustBetaFromMoments(0.9, 0.02))
	ht, err := NewHypothesisTestingTrainer(prior, HTConfig{WindowSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	ht.Observe(rel, dataset.AllPairs(rel.NumRows()))

	ranked := ht.RankedHypotheses(rel, 4)
	if len(ranked) != 4 {
		t.Fatalf("ranked length %d", len(ranked))
	}
	if ranked[0] != ht.Current() {
		t.Fatalf("held hypothesis %d not first: %v", ht.Current(), ranked)
	}
	seen := map[int]bool{}
	for _, i := range ranked {
		if i < 0 || i >= space.Size() || seen[i] {
			t.Fatalf("bad ranking %v", ranked)
		}
		seen[i] = true
	}
	// Oversized k clamps to the space size.
	if got := ht.RankedHypotheses(rel, 100); len(got) != space.Size() {
		t.Fatalf("clamped ranking length %d", len(got))
	}
}

func TestAbstainingTrainerDelegation(t *testing.T) {
	rel, space := fixture()
	inner := NewFPTrainer(belief.UniformPrior(space, 0.5, 0.1), nil)
	at := NewAbstainingTrainer(inner, 0.1)
	if at.Belief() != inner.Belief() {
		t.Fatal("Belief not delegated")
	}
	before := at.Belief().Confidences()
	at.Observe(rel, dataset.AllPairs(rel.NumRows()))
	moved := false
	for i, v := range at.Belief().Confidences() {
		if v != before[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("Observe not delegated")
	}
}

func TestHTBeliefAccessor(t *testing.T) {
	_, space := fixture()
	prior := belief.UniformPrior(space, 0.5, 0.1)
	ht, err := NewHypothesisTestingTrainer(prior, HTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ht.Belief() != prior {
		t.Fatal("Belief accessor wrong")
	}
}

func TestFPTrainerForgetRateBounds(t *testing.T) {
	rel, space := fixture()
	tr := NewFPTrainer(belief.New(space, stats.NewBeta(50, 50)), nil)
	tr.ForgetRate = 0.5
	tr.Observe(rel, dataset.AllPairs(rel.NumRows())[:5])
	for i := 0; i < tr.Belief().Size(); i++ {
		d := tr.Belief().Dist(i)
		if d.Alpha <= 0 || d.Beta <= 0 {
			t.Fatalf("forgetting produced invalid Beta(%v,%v)", d.Alpha, d.Beta)
		}
		// Evidence mass must have shrunk from 100 toward ~50.
		if d.Alpha+d.Beta > 60 {
			t.Fatalf("forgetting did not shrink evidence: %v", d.Alpha+d.Beta)
		}
	}
}
