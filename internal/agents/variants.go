package agents

import (
	"sort"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
)

// AbstainingTrainer wraps another trainer and abstains from labeling
// pairs it is too uncertain about — the weak-annotator setting of the
// related work (Zhang & Chaudhuri 2015): rather than guessing, the
// annotator declines, and abstained labelings carry no evidence.
type AbstainingTrainer struct {
	// Inner produces the underlying labelings.
	Inner Trainer
	// Margin is the half-width of the abstention band around 1/2: the
	// trainer abstains when its dirty-probability for the pair lies in
	// (1/2 − Margin, 1/2 + Margin). Zero never abstains.
	Margin float64
}

// NewAbstainingTrainer wraps inner with the given abstention margin.
func NewAbstainingTrainer(inner Trainer, margin float64) *AbstainingTrainer {
	return &AbstainingTrainer{Inner: inner, Margin: margin}
}

// Name implements Trainer.
func (t *AbstainingTrainer) Name() string { return t.Inner.Name() + "+Abstain" }

// Observe implements Trainer.
func (t *AbstainingTrainer) Observe(rel *dataset.Relation, pairs []dataset.Pair) {
	t.Inner.Observe(rel, pairs)
}

// Label implements Trainer: delegate, then blank out labelings whose
// dirty probability falls inside the uncertainty band.
func (t *AbstainingTrainer) Label(rel *dataset.Relation, pairs []dataset.Pair) []belief.Labeling {
	out := t.Inner.Label(rel, pairs)
	if t.Margin <= 0 {
		return out
	}
	b := t.Inner.Belief()
	for i := range out {
		pd := b.PDirty(rel, out[i].Pair)
		if pd > 0.5-t.Margin && pd < 0.5+t.Margin {
			out[i] = belief.Labeling{Pair: out[i].Pair, Abstained: true}
		}
	}
	return out
}

// Belief implements Trainer.
func (t *AbstainingTrainer) Belief() *belief.Belief { return t.Inner.Belief() }

// Relabeler is a trainer that, after its belief changes, can revise
// labels it issued earlier (the relabeling setting of Yan et al. 2016).
// The game loop, when it detects this capability, forwards revisions to
// the learner's Revise method.
type Relabeler interface {
	Trainer
	// Revisions returns corrected labelings for previously labeled
	// pairs whose best-response label changed under the trainer's
	// current belief. Each pair is reported at most once per call.
	Revisions(rel *dataset.Relation) []belief.Labeling
}

// RelabelingTrainer is an FPTrainer that remembers what it labeled and
// re-issues corrected labelings as its belief evolves.
type RelabelingTrainer struct {
	*FPTrainer
	issued map[dataset.Pair]belief.Labeling
	// MaxRevisionsPerRound bounds how many corrections the annotator is
	// willing to make per interaction (humans revisit only a few
	// earlier judgments); 0 means 3.
	MaxRevisionsPerRound int
}

// NewRelabelingTrainer wraps a fictitious-play trainer with relabeling.
func NewRelabelingTrainer(inner *FPTrainer) *RelabelingTrainer {
	return &RelabelingTrainer{
		FPTrainer: inner,
		issued:    make(map[dataset.Pair]belief.Labeling),
	}
}

// Name implements Trainer.
func (t *RelabelingTrainer) Name() string { return "FP+Relabel" }

// Label implements Trainer, recording what was issued.
func (t *RelabelingTrainer) Label(rel *dataset.Relation, pairs []dataset.Pair) []belief.Labeling {
	out := t.FPTrainer.Label(rel, pairs)
	for _, lp := range out {
		t.issued[lp.Pair] = lp
	}
	return out
}

// Revisions implements Relabeler: re-run the best-response marking over
// previously labeled pairs and report those whose labeling changed,
// most recent belief first, capped at MaxRevisionsPerRound.
func (t *RelabelingTrainer) Revisions(rel *dataset.Relation) []belief.Labeling {
	cap := t.MaxRevisionsPerRound
	if cap <= 0 {
		cap = 3
	}
	pairs := make([]dataset.Pair, 0, len(t.issued))
	for p := range t.issued {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	fresh := t.Belief().MarkPairs(rel, pairs, 0.5)
	var out []belief.Labeling
	for _, lp := range fresh {
		if len(out) == cap {
			break
		}
		if old := t.issued[lp.Pair]; old != lp {
			t.issued[lp.Pair] = lp
			out = append(out, lp)
		}
	}
	return out
}
