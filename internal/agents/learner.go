package agents

import (
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
)

// Learner is the active-learning side of the game: a Bayesian (FP)
// prediction model over the hypothesis space plus a pluggable response
// strategy. Each interaction the game calls Present (response model
// R^L: pick examples under the current belief) and then Incorporate
// (prediction model P^L: update the belief from the trainer's labels).
type Learner struct {
	belief  *belief.Belief
	sampler sampling.Sampler
	rng     *stats.RNG
	// ForgetRate, when in (0, 1), geometrically discounts the belief's
	// accumulated evidence before each update — discounted fictitious
	// play, which tracks a drifting annotator more closely than plain
	// averaging (Young 2004). Zero disables forgetting.
	ForgetRate float64
	// history remembers the last labeling incorporated for each pair so
	// that revisions (an annotator correcting an earlier label, Yan et
	// al. 2016) can reverse the old evidence exactly.
	history map[dataset.Pair]belief.Labeling
}

// NewLearner assembles a learner from its prior belief, response
// strategy and RNG.
func NewLearner(prior *belief.Belief, sampler sampling.Sampler, rng *stats.RNG) *Learner {
	return &Learner{
		belief:  prior,
		sampler: sampler,
		rng:     rng,
		history: make(map[dataset.Pair]belief.Labeling),
	}
}

// Name identifies the learner by its response strategy, matching the
// paper's method names.
func (l *Learner) Name() string { return l.sampler.Name() }

// Present implements the response model: select k pairs from the pool
// under the current belief.
func (l *Learner) Present(rel *dataset.Relation, pool []dataset.Pair, k int) []dataset.Pair {
	return l.sampler.Select(rel, pool, l.belief, k, l.rng)
}

// Incorporate implements the prediction model: Bayesian/FP update from
// the trainer's cell-level annotations. With a ForgetRate set, the
// existing evidence is discounted first.
func (l *Learner) Incorporate(rel *dataset.Relation, labeled []belief.Labeling) {
	if len(labeled) == 0 {
		return
	}
	if l.ForgetRate > 0 && l.ForgetRate < 1 {
		l.belief.Decay(1 - l.ForgetRate)
	}
	l.belief.UpdateFromLabelings(rel, labeled, 1)
	for _, lp := range labeled {
		l.history[lp.Pair] = lp
	}
}

// Revise handles an annotator correcting earlier labels (the relabeling
// setting of Yan et al. 2016): for each revised pair the previous
// labeling's evidence is reversed exactly — the conjugate update is
// additive, so subtraction undoes it — and the new labeling is applied.
// Pairs never labeled before are incorporated normally.
func (l *Learner) Revise(rel *dataset.Relation, revised []belief.Labeling) {
	for _, lp := range revised {
		if old, ok := l.history[lp.Pair]; ok {
			if old == lp {
				continue
			}
			l.belief.RemoveLabelings(rel, []belief.Labeling{old}, 1)
		}
		l.belief.UpdateFromLabelings(rel, []belief.Labeling{lp}, 1)
		l.history[lp.Pair] = lp
	}
}

// RestoreHistory reseeds the labeling memory without touching the
// belief — used when a session is rebuilt from a snapshot whose belief
// already contains the labelings' evidence, so that a later revision of
// a pre-snapshot label still reverses the right evidence.
func (l *Learner) RestoreHistory(labeled []belief.Labeling) {
	for _, lp := range labeled {
		l.history[lp.Pair] = lp
	}
}

// LabelHistory returns the learner's last-seen labeling for a pair.
func (l *Learner) LabelHistory(p dataset.Pair) (belief.Labeling, bool) {
	lp, ok := l.history[p]
	return lp, ok
}

// Belief exposes the learner's current belief.
func (l *Learner) Belief() *belief.Belief { return l.belief }

// RNGState captures the response strategy's RNG position so a
// checkpoint can make resumption draw-exact: a session restored with
// RestoreRNG presents exactly the pairs the live session would have.
func (l *Learner) RNGState() [4]uint64 { return l.rng.State() }

// RestoreRNG resumes the response strategy's RNG at a captured
// RNGState.
func (l *Learner) RestoreRNG(s [4]uint64) error { return l.rng.RestoreState(s) }
