package agents

import (
	"testing"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
)

// fixture: relation with planted FD a→b, one injected violation, and a
// single-LHS hypothesis space.
func fixture() (*dataset.Relation, *fd.Space) {
	rel := dataset.New(dataset.MustSchema("a", "b", "c"))
	for i := 0; i < 15; i++ {
		k := string(rune('0' + i%3))
		rel.MustAppend(dataset.Tuple{k, "f" + k, string(rune('p' + i%4))})
	}
	rel.SetValue(1, 1, "broken")
	space := fd.MustNewSpace(fd.MustEnumerate(fd.SpaceConfig{Arity: 3, MaxLHS: 1}))
	return rel, space
}

func TestFPTrainerObserveMovesBelief(t *testing.T) {
	rel, space := fixture()
	prior := belief.UniformPrior(space, 0.5, 0.1)
	tr := NewFPTrainer(prior, nil)
	before := tr.Belief().Confidences()
	tr.Observe(rel, dataset.AllPairs(rel.NumRows()))
	after := tr.Belief().Confidences()
	moved := false
	for i := range before {
		if before[i] != after[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("FP trainer belief did not move after observing data")
	}
	// The planted FD's confidence should now exceed a junk FD's (c→b has
	// no functional structure).
	target, _ := space.Index(fd.MustNew(fd.NewAttrSet(0), 1))
	junk, _ := space.Index(fd.MustNew(fd.NewAttrSet(2), 1))
	if tr.Belief().Confidence(target) <= tr.Belief().Confidence(junk) {
		t.Fatalf("target FD confidence %v not above junk %v",
			tr.Belief().Confidence(target), tr.Belief().Confidence(junk))
	}
}

func TestFPTrainerLabelsBestResponse(t *testing.T) {
	rel, space := fixture()
	// Give the trainer a confident belief in a→b only.
	prior := belief.New(space, stats.MustBetaFromMoments(0.05, 0.02))
	target, _ := space.Index(fd.MustNew(fd.NewAttrSet(0), 1))
	prior.SetDist(target, stats.MustBetaFromMoments(0.95, 0.02))
	tr := NewFPTrainer(prior, nil)

	pairs := dataset.AllPairs(rel.NumRows())
	labeled := tr.Label(rel, pairs)
	if len(labeled) != len(pairs) {
		t.Fatalf("labeled %d of %d", len(labeled), len(pairs))
	}
	f := space.FD(target)
	for _, lp := range labeled {
		wantDirty := fd.Status(f, rel, lp.Pair) == fd.Violating
		if lp.Dirty() != wantDirty {
			t.Fatalf("pair %v marked %v, violates=%v", lp.Pair, lp.Marked, wantDirty)
		}
		if wantDirty && !lp.Marked.Has(f.RHS) {
			t.Fatalf("violation of %v marked %v, want RHS attr", f, lp.Marked)
		}
	}
}

func TestFPTrainerObserveEmptyNoop(t *testing.T) {
	_, space := fixture()
	tr := NewFPTrainer(belief.UniformPrior(space, 0.5, 0.1), nil)
	before := tr.Belief().Confidences()
	tr.Observe(nil, nil)
	after := tr.Belief().Confidences()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("empty observation moved belief")
		}
	}
}

func TestFPTrainerNoise(t *testing.T) {
	rel, space := fixture()
	prior := belief.New(space, stats.MustBetaFromMoments(0.05, 0.02))
	tr := NewFPTrainer(prior, stats.NewRNG(3))
	tr.NoiseRate = 1.0 // always flip
	pairs := dataset.AllPairs(rel.NumRows())[:10]
	labeled := tr.Label(rel, pairs)
	// With a near-zero belief everything starts clean; full noise marks
	// every pair that violates anything at all.
	for _, lp := range labeled {
		violatesSomething := false
		for i := 0; i < space.Size(); i++ {
			if fd.Status(space.FD(i), rel, lp.Pair) == fd.Violating {
				violatesSomething = true
			}
		}
		if lp.Dirty() != violatesSomething {
			t.Fatalf("pair %v: noise marking %v, violatesSomething=%v", lp.Pair, lp.Marked, violatesSomething)
		}
	}
}

func TestStationaryTrainerNeverMoves(t *testing.T) {
	rel, space := fixture()
	prior := belief.UniformPrior(space, 0.7, 0.1)
	tr := NewStationaryTrainer(prior)
	before := tr.Belief().Confidences()
	tr.Observe(rel, dataset.AllPairs(rel.NumRows()))
	after := tr.Belief().Confidences()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("stationary trainer belief moved")
		}
	}
	if tr.Name() != "Stationary" {
		t.Fatalf("Name = %q", tr.Name())
	}
	if got := tr.Label(rel, dataset.AllPairs(3)); len(got) != 3 {
		t.Fatalf("labeled %d", len(got))
	}
}

func TestHypothesisTestingStartsAtPriorTop(t *testing.T) {
	_, space := fixture()
	prior := belief.New(space, stats.MustBetaFromMoments(0.2, 0.05))
	prior.SetDist(3, stats.MustBetaFromMoments(0.9, 0.02))
	ht, err := NewHypothesisTestingTrainer(prior, HTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ht.Current() != 3 {
		t.Fatalf("initial hypothesis %d, want 3", ht.Current())
	}
	if ht.Name() != "HypothesisTesting" {
		t.Fatalf("Name = %q", ht.Name())
	}
}

func TestHypothesisTestingRejectsFailingHypothesis(t *testing.T) {
	rel, space := fixture()
	// Prior is confident in a junk hypothesis c→b which the data
	// contradicts heavily.
	junk, _ := space.Index(fd.MustNew(fd.NewAttrSet(2), 1))
	target, _ := space.Index(fd.MustNew(fd.NewAttrSet(0), 1))
	prior := belief.New(space, stats.MustBetaFromMoments(0.3, 0.05))
	prior.SetDist(junk, stats.MustBetaFromMoments(0.95, 0.02))
	ht, err := NewHypothesisTestingTrainer(prior, HTConfig{Tolerance: 0.2, WindowSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	if ht.Current() != junk {
		t.Fatalf("setup: current = %d, want junk %d", ht.Current(), junk)
	}
	// Feed evidence; c→b violates often, so it must be rejected.
	ht.Observe(rel, dataset.AllPairs(rel.NumRows()))
	if ht.Current() == junk {
		t.Fatal("failing hypothesis not rejected")
	}
	// The replacement should explain the recent data well; the planted
	// FD is the best explainer here.
	if ht.Current() != target {
		t.Logf("note: switched to %v rather than the planted FD", space.FD(ht.Current()))
		if ht.empiricalConfidence(rel, ht.Current()) < ht.empiricalConfidence(rel, target) {
			t.Fatal("replacement explains recent data worse than the planted FD")
		}
	}
}

func TestHypothesisTestingKeepsGoodHypothesis(t *testing.T) {
	rel, space := fixture()
	target, _ := space.Index(fd.MustNew(fd.NewAttrSet(0), 1))
	prior := belief.New(space, stats.MustBetaFromMoments(0.2, 0.05))
	prior.SetDist(target, stats.MustBetaFromMoments(0.9, 0.02))
	ht, err := NewHypothesisTestingTrainer(prior, HTConfig{Tolerance: 0.25, WindowSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	ht.Observe(rel, dataset.AllPairs(rel.NumRows()))
	if ht.Current() != target {
		t.Fatalf("well-supported hypothesis rejected; now %v", space.FD(ht.Current()))
	}
}

func TestHypothesisTestingLabelsByCurrentOnly(t *testing.T) {
	rel, space := fixture()
	target, _ := space.Index(fd.MustNew(fd.NewAttrSet(0), 1))
	prior := belief.New(space, stats.MustBetaFromMoments(0.2, 0.05))
	prior.SetDist(target, stats.MustBetaFromMoments(0.9, 0.02))
	ht, _ := NewHypothesisTestingTrainer(prior, HTConfig{})
	f := space.FD(target)
	for _, lp := range ht.Label(rel, dataset.AllPairs(rel.NumRows())) {
		wantDirty := fd.Status(f, rel, lp.Pair) == fd.Violating
		if lp.Dirty() != wantDirty {
			t.Fatalf("pair %v marked %v against held FD", lp.Pair, lp.Marked)
		}
	}
}

func TestLearnerRoundTrip(t *testing.T) {
	rel, space := fixture()
	prior := belief.UniformPrior(space, 0.5, 0.1)
	l := NewLearner(prior, sampling.Random{}, stats.NewRNG(1))
	if l.Name() != "Random" {
		t.Fatalf("Name = %q", l.Name())
	}
	pool := dataset.AllPairs(rel.NumRows())
	got := l.Present(rel, pool, 10)
	if len(got) != 10 {
		t.Fatalf("presented %d", len(got))
	}
	before := l.Belief().Confidences()
	labeled := make([]belief.Labeling, len(got))
	for i, p := range got {
		labeled[i] = belief.Labeling{Pair: p}
	}
	l.Incorporate(rel, labeled)
	after := l.Belief().Confidences()
	moved := false
	for i := range before {
		if before[i] != after[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("learner belief did not move after labels")
	}
	// Empty incorporate is a no-op.
	snapshot := l.Belief().Confidences()
	l.Incorporate(rel, nil)
	for i, v := range l.Belief().Confidences() {
		if v != snapshot[i] {
			t.Fatal("empty incorporate moved belief")
		}
	}
}
