// Package userstudy simulates and analyzes the paper's user study
// (Appendix A): five scenarios over the AIRPORT and OMDB domains
// (Table 2), a population of annotators whose internal learning follows
// the human-learning models of Section 3, and the two analyses the
// paper reports — per-scenario hypothesis drift (Table 3) and the
// accuracy of candidate human-learning models at predicting declared
// hypotheses, measured by MRR@5 (Figure 2).
//
// The original study ran with 20 human participants; this package
// substitutes a simulated population with the same qualitative dynamics
// (mostly fictitious-play learners, some hypothesis testers, difficulty-
// driven decision noise), which exercises the identical analysis code
// path. DESIGN.md documents the substitution.
package userstudy

import (
	"fmt"

	"exptrain/internal/datagen"
	"exptrain/internal/dataset"
	"exptrain/internal/errgen"
	"exptrain/internal/fd"
)

// Scenario is one row of Table 2: a projected dataset, the designated
// target FD(s) (fewest exceptions after injection) and the plausible
// alternatives, plus the violation ratio used for injection.
type Scenario struct {
	// ID is the paper's scenario number (1-5).
	ID int
	// Domain is "Airport" or "OMDB".
	Domain string
	// Rel is the projected, dirtied relation participants label.
	Rel *dataset.Relation
	// CleanRows is the injection ground truth (c_g of §A.2).
	CleanRows map[int]struct{}
	// Target and Alternatives are Table 2's FDs over Rel's schema.
	Target       []fd.FD
	Alternatives []fd.FD
	// Space is the hypothesis space participants and fitted models
	// reason over: every FD with ≤2 LHS attributes over Rel's schema.
	Space *fd.Space
	// Difficulty is the decision-noise level the scenario induces;
	// scenario 2 is markedly harder than the rest (§A.3 reports
	// non-monotone learning there).
	Difficulty float64
}

// scenarioSpec is the static part of a Table 2 row.
type scenarioSpec struct {
	id           int
	domain       string
	attrs        []string
	target       []string
	alternatives []string
	ratio        float64
	difficulty   float64
}

var scenarioSpecs = []scenarioSpec{
	{
		id: 1, domain: "Airport",
		attrs:        []string{"facilityname", "type", "manager"},
		target:       []string{"facilityname,type->manager"},
		alternatives: []string{"facilityname->type", "facilityname->manager"},
		ratio:        1.0 / 3.0,
		difficulty:   0.10,
	},
	{
		id: 2, domain: "Airport",
		attrs:        []string{"sitenumber", "facilityname", "owner", "manager"},
		target:       []string{"sitenumber->facilityname", "sitenumber->owner", "sitenumber->manager"},
		alternatives: []string{"facilityname->sitenumber", "facilityname->owner", "facilityname->manager"},
		ratio:        1.0 / 3.0,
		// §A.3: scenario 2 is the hard one — participants often moved
		// from more accurate beliefs to less accurate ones.
		difficulty: 0.45,
	},
	{
		id: 3, domain: "Airport",
		attrs:        []string{"facilityname", "owner", "manager"},
		target:       []string{"manager->owner"},
		alternatives: []string{"facilityname->owner", "facilityname->manager"},
		ratio:        1.0 / 3.0,
		difficulty:   0.12,
	},
	{
		id: 4, domain: "OMDB",
		attrs:        []string{"title", "year", "genre", "type"},
		target:       []string{"title,year->type", "title,year->genre"},
		alternatives: []string{"title->year", "title->type", "title->genre"},
		ratio:        2.0 / 3.0,
		difficulty:   0.15,
	},
	{
		id: 5, domain: "OMDB",
		attrs:        []string{"title", "rating", "type"},
		target:       []string{"rating->type"},
		alternatives: []string{"title->rating", "title->type"},
		ratio:        2.0 / 3.0,
		difficulty:   0.12,
	},
}

// BuildScenarios materializes the five Table 2 scenarios: generate the
// domain dataset, project to the scenario attributes, and inject
// violations at the scenario's ratio (m target violations per n·m
// alternative ones, §A.2).
func BuildScenarios(rows int, seed uint64) ([]*Scenario, error) {
	if rows < 40 {
		return nil, fmt.Errorf("userstudy: need at least 40 rows, got %d", rows)
	}
	var out []*Scenario
	for _, spec := range scenarioSpecs {
		sc, err := buildScenario(spec, rows, seed)
		if err != nil {
			return nil, fmt.Errorf("userstudy: scenario %d: %w", spec.id, err)
		}
		out = append(out, sc)
	}
	return out, nil
}

func buildScenario(spec scenarioSpec, rows int, seed uint64) (*Scenario, error) {
	gen, err := datagen.ByName(spec.domain)
	if err != nil {
		return nil, err
	}
	full := gen(rows, seed+uint64(spec.id)*101)
	rel, err := full.Rel.Project(spec.attrs...)
	if err != nil {
		return nil, err
	}
	target, err := fd.ParseAll(spec.target, rel.Schema())
	if err != nil {
		return nil, fmt.Errorf("target FDs: %w", err)
	}
	alts, err := fd.ParseAll(spec.alternatives, rel.Schema())
	if err != nil {
		return nil, fmt.Errorf("alternative FDs: %w", err)
	}
	injected, err := errgen.InjectRatio(rel, errgen.RatioConfig{
		Target:           target,
		Alternatives:     alts,
		TargetViolations: rows / 20,
		Ratio:            spec.ratio,
		Seed:             seed ^ uint64(spec.id)<<8,
	})
	if err != nil {
		return nil, err
	}
	space := fd.MustNewSpace(fd.MustEnumerate(fd.SpaceConfig{
		Arity:  rel.Schema().Arity(),
		MaxLHS: 2,
	}))
	for _, f := range append(append([]fd.FD{}, target...), alts...) {
		if !space.Contains(f) {
			return nil, fmt.Errorf("FD %v missing from scenario space", f)
		}
	}
	return &Scenario{
		ID:           spec.id,
		Domain:       spec.domain,
		Rel:          injected.Rel,
		CleanRows:    injected.CleanRows(),
		Target:       target,
		Alternatives: alts,
		Space:        space,
		Difficulty:   spec.difficulty,
	}, nil
}
