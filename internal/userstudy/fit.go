package userstudy

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/fd"
	"exptrain/internal/metrics"
)

// TopK is the ranked-list depth of the paper's evaluation metric (§A.2
// sets k to 5).
const TopK = 5

// FitResult aggregates a learning model's prediction accuracy per
// scenario — the content of Figure 2.
type FitResult struct {
	// Model is "FP" (Bayesian) or "HypothesisTesting".
	Model string
	// MRR maps scenario ID to mean reciprocal rank over all
	// participants and interactions (exact matching).
	MRR map[int]float64
	// MRRPlus is the "+" variant crediting subset/superset matches,
	// discounted by F1 similarity (§A.2).
	MRRPlus map[int]float64
}

// replayModel steps a candidate human-learning model through a
// trajectory's observation stream, yielding the model's top-k
// prediction before each declaration.
type replayModel interface {
	observe(sc *Scenario, rows []int)
	topK(sc *Scenario, k int) []int
}

type fpReplay struct{ trainer *agents.FPTrainer }

func (m *fpReplay) observe(sc *Scenario, rows []int) {
	m.trainer.Observe(sc.Rel, pairsAmong(rows))
}
func (m *fpReplay) topK(sc *Scenario, k int) []int { return m.trainer.Belief().TopK(k) }

type htReplay struct {
	trainer *agents.HypothesisTestingTrainer
}

func (m *htReplay) observe(sc *Scenario, rows []int) {
	m.trainer.Observe(sc.Rel, pairsAmong(rows))
}
func (m *htReplay) topK(sc *Scenario, k int) []int { return m.trainer.RankedHypotheses(sc.Rel, k) }

// modelPrior rebuilds the §A.2 fitted-model prior: a Beta around the
// participant's initially declared FD (mean ε = 0.85, related FDs 0.8,
// others 0.15, all σ = 0.05), or a flat prior when the participant was
// unsure.
func modelPrior(traj *Trajectory) (*belief.Belief, error) {
	if !traj.HasGuess {
		return belief.UniformPrior(traj.Scenario.Space, 0.5, belief.DefaultPriorSigma), nil
	}
	return belief.UserSpecifiedPrior(traj.Scenario.Space, traj.InitialGuess, true)
}

// newReplay builds the fitted model for one trajectory.
func newReplay(model string, traj *Trajectory) (replayModel, error) {
	prior, err := modelPrior(traj)
	if err != nil {
		return nil, err
	}
	switch model {
	case "FP":
		return &fpReplay{trainer: agents.NewFPTrainer(prior, nil)}, nil
	case "HypothesisTesting":
		n := 10
		if len(traj.Iterations) > 0 {
			n = len(traj.Iterations[0].SampleRows)
		}
		ht, err := agents.NewHypothesisTestingTrainer(prior, agents.HTConfig{
			Tolerance: 0.2,
			// §A.2: hypothesis testing performed best testing against
			// the preceding interaction's sample.
			WindowSize: n * (n - 1) / 2,
		})
		if err != nil {
			return nil, err
		}
		return &htReplay{trainer: ht}, nil
	default:
		return nil, fmt.Errorf("userstudy: unknown model %q", model)
	}
}

// trajectoryRRs replays the model over a trajectory and returns the
// per-iteration reciprocal ranks (exact and "+").
func trajectoryRRs(model string, traj *Trajectory) (exact, plus []float64, err error) {
	replay, err := newReplay(model, traj)
	if err != nil {
		return nil, nil, err
	}
	sc := traj.Scenario
	for _, it := range traj.Iterations {
		replay.observe(sc, it.SampleRows)
		top := replay.topK(sc, TopK)

		declIdx, ok := sc.Space.Index(it.Declared)
		if !ok {
			return nil, nil, fmt.Errorf("userstudy: declared FD %v not in space", it.Declared)
		}
		rr := metrics.ReciprocalRank(top, declIdx)
		exact = append(exact, rr)

		// "+" variant: credit a subset/superset of the declared FD at
		// position p with F1similarity/p (§A.2 discounts related
		// matches by their F1 difference).
		bestRelated := 0.0
		for pos, idx := range top {
			cand := sc.Space.FD(idx)
			if cand != it.Declared && cand.Related(it.Declared) {
				sim := fd.F1Similarity(cand, it.Declared, sc.Rel, sc.CleanRows)
				if v := sim / float64(pos+1); v > bestRelated {
					bestRelated = v
				}
			}
		}
		plus = append(plus, metrics.DiscountedRR(rr, bestRelated))
	}
	return exact, plus, nil
}

// FitModels evaluates both candidate human-learning models against
// every trajectory — the computation behind Figure 2.
func FitModels(study *Study) ([]FitResult, error) {
	var out []FitResult
	for _, model := range []string{"FP", "HypothesisTesting"} {
		res := FitResult{
			Model:   model,
			MRR:     make(map[int]float64),
			MRRPlus: make(map[int]float64),
		}
		exactByScenario := make(map[int][]float64)
		plusByScenario := make(map[int][]float64)
		for _, traj := range study.Trajectories {
			exact, plus, err := trajectoryRRs(model, traj)
			if err != nil {
				return nil, err
			}
			id := traj.Scenario.ID
			exactByScenario[id] = append(exactByScenario[id], exact...)
			plusByScenario[id] = append(plusByScenario[id], plus...)
		}
		for id, rrs := range exactByScenario {
			res.MRR[id] = metrics.MRR(rrs)
		}
		for id, rrs := range plusByScenario {
			res.MRRPlus[id] = metrics.MRR(rrs)
		}
		out = append(out, res)
	}
	return out, nil
}

// HypothesisDrift computes Table 3: per scenario, the average absolute
// change in the F1 score of the participants' declared hypotheses
// between consecutive iterations. Large values indicate genuine belief
// revision rather than noise (§A.3).
func HypothesisDrift(study *Study) map[int]float64 {
	sums := make(map[int]float64)
	counts := make(map[int]int)
	f1cache := make(map[string]float64)
	for _, traj := range study.Trajectories {
		sc := traj.Scenario
		f1Of := func(f fd.FD) float64 {
			key := fmt.Sprintf("%d/%v", sc.ID, f)
			if v, ok := f1cache[key]; ok {
				return v
			}
			v := fd.ScoreFD(f, sc.Rel, sc.CleanRows).F1
			f1cache[key] = v
			return v
		}
		for t := 1; t < len(traj.Iterations); t++ {
			d := f1Of(traj.Iterations[t].Declared) - f1Of(traj.Iterations[t-1].Declared)
			if d < 0 {
				d = -d
			}
			sums[sc.ID] += d
			counts[sc.ID]++
		}
	}
	out := make(map[int]float64, len(sums))
	for id, s := range sums {
		out[id] = s / float64(counts[id])
	}
	return out
}

// WriteTable3 renders the hypothesis-drift table in the paper's layout.
func WriteTable3(w io.Writer, drift map[int]float64) error {
	var b strings.Builder
	b.WriteString("Scenario#  Average change in f1-score\n")
	ids := make([]int, 0, len(drift))
	for id := range drift {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		b.WriteString(fmt.Sprintf("%-10d %.4f\n", id, drift[id]))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFigure2 renders the per-scenario MRR comparison (Figure 2's
// textual equivalent), including the "+" variants.
func WriteFigure2(w io.Writer, fits []FitResult) error {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%-10s", "scenario"))
	for _, f := range fits {
		b.WriteString(fmt.Sprintf(" %18s %18s", f.Model, f.Model+"+"))
	}
	b.WriteByte('\n')
	ids := make(map[int]struct{})
	for _, f := range fits {
		for id := range f.MRR {
			ids[id] = struct{}{}
		}
	}
	sorted := make([]int, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Ints(sorted)
	for _, id := range sorted {
		b.WriteString(fmt.Sprintf("%-10d", id))
		for _, f := range fits {
			b.WriteString(fmt.Sprintf(" %18.4f %18.4f", f.MRR[id], f.MRRPlus[id]))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary computes the study-level aggregates the paper reports in
// prose: the overall MRR per model and the share of interactions where
// the user's declared FD appears in the model's top-1/top-2.
type Summary struct {
	Model            string
	OverallMRR       float64
	Top1Rate         float64
	Top2Rate         float64
	TotalPredictions int
}

// Summarize computes per-model study summaries.
func Summarize(study *Study) ([]Summary, error) {
	var out []Summary
	for _, model := range []string{"FP", "HypothesisTesting"} {
		var rrs []float64
		top1, top2 := 0, 0
		for _, traj := range study.Trajectories {
			exact, _, err := trajectoryRRs(model, traj)
			if err != nil {
				return nil, err
			}
			for _, rr := range exact {
				rrs = append(rrs, rr)
				if rr >= 1 {
					top1++
				}
				if rr >= 0.5 {
					top2++
				}
			}
		}
		n := len(rrs)
		s := Summary{Model: model, OverallMRR: metrics.MRR(rrs), TotalPredictions: n}
		if n > 0 {
			s.Top1Rate = float64(top1) / float64(n)
			s.Top2Rate = float64(top2) / float64(n)
		}
		out = append(out, s)
	}
	return out, nil
}

// ParticipantFit compares the two models' fit for one participant,
// aggregated over that participant's sessions — the paper's
// per-participant grouping ("Bayesian (FP) significantly outperforms
// hypothesis testing for all our participants except for two", §A.3).
type ParticipantFit struct {
	ParticipantID int
	Kind          ModelKind
	FPMRR         float64
	HTMRR         float64
}

// FPWins reports whether FP fits this participant better.
func (p ParticipantFit) FPWins() bool { return p.FPMRR > p.HTMRR }

// FitByParticipant replays both models over every participant's
// sessions and returns one comparison per participant, ordered by ID.
func FitByParticipant(study *Study) ([]ParticipantFit, error) {
	type acc struct {
		kind   ModelKind
		fp, ht []float64
	}
	byID := make(map[int]*acc)
	for _, traj := range study.Trajectories {
		a := byID[traj.Participant.ID]
		if a == nil {
			a = &acc{kind: traj.Participant.Kind}
			byID[traj.Participant.ID] = a
		}
		fpRR, _, err := trajectoryRRs("FP", traj)
		if err != nil {
			return nil, err
		}
		htRR, _, err := trajectoryRRs("HypothesisTesting", traj)
		if err != nil {
			return nil, err
		}
		a.fp = append(a.fp, fpRR...)
		a.ht = append(a.ht, htRR...)
	}
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]ParticipantFit, 0, len(ids))
	for _, id := range ids {
		a := byID[id]
		out = append(out, ParticipantFit{
			ParticipantID: id,
			Kind:          a.kind,
			FPMRR:         metrics.MRR(a.fp),
			HTMRR:         metrics.MRR(a.ht),
		})
	}
	return out, nil
}
