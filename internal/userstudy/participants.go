package userstudy

import (
	"context"
	"fmt"

	"exptrain/internal/agents"
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// ModelKind is the learning model driving a simulated participant.
type ModelKind int

const (
	// ModelFP: the participant revises beliefs by fictitious-play /
	// Bayesian counting (the majority behaviour the paper observed).
	ModelFP ModelKind = iota
	// ModelHT: the participant holds one hypothesis and switches on
	// rejection (hypothesis testing).
	ModelHT
	// ModelErratic: the participant declares near-randomly among
	// plausible hypotheses — the non-monotone behaviour §A.3 reports in
	// the hard scenario.
	ModelErratic
)

func (k ModelKind) String() string {
	switch k {
	case ModelFP:
		return "FP"
	case ModelHT:
		return "HT"
	case ModelErratic:
		return "Erratic"
	default:
		return "unknown"
	}
}

// Participant is one simulated annotator.
type Participant struct {
	ID int
	// Kind is the internal learning model.
	Kind ModelKind
	// BaseNoise is the participant's personal decision-noise level; the
	// scenario's difficulty adds to it.
	BaseNoise float64
}

// Iteration is one interaction of a study session: the rows the
// participant saw and the FD they declared afterwards (§A.2 has
// participants state their hypothesized FD every iteration).
type Iteration struct {
	SampleRows []int
	Declared   fd.FD
}

// Trajectory is one participant's full session on one scenario.
type Trajectory struct {
	Participant Participant
	Scenario    *Scenario
	// HasGuess reports whether the participant stated an initial FD
	// before seeing data (§A.2 lets them say "not sure").
	HasGuess bool
	// InitialGuess is that FD when HasGuess.
	InitialGuess fd.FD
	Iterations   []Iteration
}

// StudyConfig sizes the simulated study.
type StudyConfig struct {
	// Participants defaults to 20 (the paper's population).
	Participants int
	// Rows sizes each scenario's dataset (default 200).
	Rows int
	// Seed drives everything.
	Seed uint64
	// SampleSize is the tuples shown per iteration (default 10, §A.2).
	SampleSize int
}

func (c StudyConfig) withDefaults() StudyConfig {
	if c.Participants <= 0 {
		c.Participants = 20
	}
	if c.Rows <= 0 {
		c.Rows = 200
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 10
	}
	return c
}

// Study is the simulated counterpart of the paper's collected data: all
// trajectories over all five scenarios.
type Study struct {
	Scenarios    []*Scenario
	Trajectories []*Trajectory
}

// Simulate runs the study: every participant works through every
// scenario for 9-15 iterations of SampleSize random tuples (§A.2),
// declaring their hypothesized FD each iteration.
func Simulate(cfg StudyConfig) (*Study, error) {
	return SimulateContext(context.Background(), cfg)
}

// SimulateContext is Simulate with cancellation checked between
// participant × scenario sessions: a done context returns ctx.Err()
// and discards the partial study.
func SimulateContext(ctx context.Context, cfg StudyConfig) (*Study, error) {
	cfg = cfg.withDefaults()
	scenarios, err := BuildScenarios(cfg.Rows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	study := &Study{Scenarios: scenarios}
	master := stats.NewRNG(cfg.Seed ^ 0x57D7)
	for pid := 0; pid < cfg.Participants; pid++ {
		p := makeParticipant(pid, master.Split())
		for _, sc := range scenarios {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			traj, err := simulateSession(p, sc, cfg, master.Split())
			if err != nil {
				return nil, fmt.Errorf("userstudy: participant %d scenario %d: %w", pid, sc.ID, err)
			}
			study.Trajectories = append(study.Trajectories, traj)
		}
	}
	return study, nil
}

// makeParticipant draws a participant from the population mixture: 70%
// fictitious players, 20% hypothesis testers, 10% erratic — matching
// the paper's finding that FP/Bayesian dominates (§A.3, with a couple
// of exceptions).
func makeParticipant(id int, rng *stats.RNG) Participant {
	u := rng.Float64()
	kind := ModelFP
	switch {
	case u < 0.7:
		kind = ModelFP
	case u < 0.9:
		kind = ModelHT
	default:
		kind = ModelErratic
	}
	return Participant{
		ID:        id,
		Kind:      kind,
		BaseNoise: 0.04 + 0.10*rng.Float64(),
	}
}

// initialGuess models the participant's prior from schema inspection:
// most pick one of the plausible single-LHS alternatives, some spot the
// target, some are unsure.
func initialGuess(sc *Scenario, rng *stats.RNG) (fd.FD, bool) {
	u := rng.Float64()
	switch {
	case u < 0.5 && len(sc.Alternatives) > 0:
		return sc.Alternatives[rng.Intn(len(sc.Alternatives))], true
	case u < 0.75:
		return sc.Target[rng.Intn(len(sc.Target))], true
	default:
		return fd.FD{}, false
	}
}

func simulateSession(p Participant, sc *Scenario, cfg StudyConfig, rng *stats.RNG) (*Trajectory, error) {
	guess, hasGuess := initialGuess(sc, rng)
	prior, err := sessionPrior(sc, guess, hasGuess)
	if err != nil {
		return nil, err
	}

	var trainer agents.Trainer
	switch p.Kind {
	case ModelHT:
		ht, err := agents.NewHypothesisTestingTrainer(prior, agents.HTConfig{
			Tolerance:  0.2,
			WindowSize: cfg.SampleSize * (cfg.SampleSize - 1) / 2,
		})
		if err != nil {
			return nil, err
		}
		trainer = ht
	default:
		trainer = agents.NewFPTrainer(prior, rng.Split())
	}

	noise := p.BaseNoise + sc.Difficulty
	if p.Kind == ModelErratic {
		noise = 0.5 + 0.2*rng.Float64()
	}
	if noise > 0.9 {
		noise = 0.9
	}

	traj := &Trajectory{Participant: p, Scenario: sc, HasGuess: hasGuess, InitialGuess: guess}
	iterations := 9 + rng.Intn(7) // 9..15 per §A.2
	for t := 0; t < iterations; t++ {
		rows := sc.Rel.Sample(rng, cfg.SampleSize)
		pairs := pairsAmong(rows)
		trainer.Observe(sc.Rel, pairs)

		declared := declareFD(trainer, sc, noise, rng)
		traj.Iterations = append(traj.Iterations, Iteration{SampleRows: rows, Declared: declared})
	}
	return traj, nil
}

// sessionPrior builds the participant's internal prior: the §A.2
// configuration around their initial guess, or a flat uninformative
// prior when they are unsure.
func sessionPrior(sc *Scenario, guess fd.FD, hasGuess bool) (*belief.Belief, error) {
	if !hasGuess {
		return belief.UniformPrior(sc.Space, 0.5, 0.15), nil
	}
	return belief.UserSpecifiedPrior(sc.Space, guess, true)
}

// declareFD is the participant's declaration: the belief's argmax, with
// decision noise replacing it by a random member of the current leading
// candidates (people waver among their top hypotheses, not across the
// whole space; the harder the scenario, the wider the wavering).
func declareFD(trainer agents.Trainer, sc *Scenario, noise float64, rng *stats.RNG) fd.FD {
	width := 3 + int(6*noise)
	var top []int
	if ht, ok := trainer.(*agents.HypothesisTestingTrainer); ok {
		top = ht.RankedHypotheses(sc.Rel, width)
	} else {
		top = trainer.Belief().TopK(width)
	}
	choice := top[0]
	if rng.Float64() < noise {
		choice = top[rng.Intn(len(top))]
	}
	return sc.Space.FD(choice)
}

// pairsAmong lists all tuple pairs within a sample of rows; the shared
// expansion lives in dataset.PairsAmong (agents.CrossPairs uses it
// too).
func pairsAmong(rows []int) []dataset.Pair { return dataset.PairsAmong(rows) }
