package userstudy

import (
	"strings"
	"testing"

	"exptrain/internal/fd"
)

func quickStudy(t *testing.T) *Study {
	t.Helper()
	study, err := Simulate(StudyConfig{Participants: 8, Rows: 120, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return study
}

func TestBuildScenariosTable2(t *testing.T) {
	scs, err := BuildScenarios(160, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 5 {
		t.Fatalf("built %d scenarios, want 5", len(scs))
	}
	wantDomains := []string{"Airport", "Airport", "Airport", "OMDB", "OMDB"}
	for i, sc := range scs {
		if sc.ID != i+1 {
			t.Errorf("scenario %d has ID %d", i, sc.ID)
		}
		if sc.Domain != wantDomains[i] {
			t.Errorf("scenario %d domain %q, want %q", sc.ID, sc.Domain, wantDomains[i])
		}
		if len(sc.Target) == 0 || len(sc.Alternatives) == 0 {
			t.Errorf("scenario %d missing FDs", sc.ID)
		}
		for _, f := range append(append([]fd.FD{}, sc.Target...), sc.Alternatives...) {
			if !sc.Space.Contains(f) {
				t.Errorf("scenario %d: FD %v not in space", sc.ID, f)
			}
		}
		// Injection must leave violations of the target FDs in the data.
		viol := 0
		for _, f := range sc.Target {
			viol += fd.ComputeStats(f, sc.Rel).Violating
		}
		if viol == 0 {
			t.Errorf("scenario %d has no target violations", sc.ID)
		}
		if len(sc.CleanRows) == 0 || len(sc.CleanRows) == sc.Rel.NumRows() {
			t.Errorf("scenario %d ground truth degenerate: %d clean of %d",
				sc.ID, len(sc.CleanRows), sc.Rel.NumRows())
		}
	}
	// Scenario 2 is the designated hard one.
	if scs[1].Difficulty <= scs[0].Difficulty || scs[1].Difficulty <= scs[4].Difficulty {
		t.Error("scenario 2 should be the hardest")
	}
}

func TestBuildScenariosTooSmall(t *testing.T) {
	if _, err := BuildScenarios(10, 1); err == nil {
		t.Fatal("tiny row count should error")
	}
}

func TestSimulateShape(t *testing.T) {
	study := quickStudy(t)
	if len(study.Scenarios) != 5 {
		t.Fatalf("%d scenarios", len(study.Scenarios))
	}
	if len(study.Trajectories) != 8*5 {
		t.Fatalf("%d trajectories, want 40", len(study.Trajectories))
	}
	for _, traj := range study.Trajectories {
		n := len(traj.Iterations)
		if n < 9 || n > 15 {
			t.Fatalf("trajectory has %d iterations, want 9-15 (§A.2)", n)
		}
		for _, it := range traj.Iterations {
			if len(it.SampleRows) != 10 {
				t.Fatalf("sample of %d rows, want 10", len(it.SampleRows))
			}
			if !traj.Scenario.Space.Contains(it.Declared) {
				t.Fatalf("declared FD %v outside space", it.Declared)
			}
		}
		if traj.HasGuess && !traj.Scenario.Space.Contains(traj.InitialGuess) {
			t.Fatalf("initial guess %v outside space", traj.InitialGuess)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(StudyConfig{Participants: 4, Rows: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(StudyConfig{Participants: 4, Rows: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Trajectories {
		ta, tb := a.Trajectories[i], b.Trajectories[i]
		if len(ta.Iterations) != len(tb.Iterations) {
			t.Fatal("same seed different session lengths")
		}
		for j := range ta.Iterations {
			if ta.Iterations[j].Declared != tb.Iterations[j].Declared {
				t.Fatal("same seed different declarations")
			}
		}
	}
}

func TestPopulationMixture(t *testing.T) {
	study, err := Simulate(StudyConfig{Participants: 40, Rows: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[ModelKind]int{}
	seen := map[int]bool{}
	for _, traj := range study.Trajectories {
		if !seen[traj.Participant.ID] {
			seen[traj.Participant.ID] = true
			counts[traj.Participant.Kind]++
		}
	}
	if counts[ModelFP] <= counts[ModelHT] || counts[ModelFP] <= counts[ModelErratic] {
		t.Errorf("FP should dominate the population: %v", counts)
	}
}

func TestHypothesisDriftNonTrivial(t *testing.T) {
	study := quickStudy(t)
	drift := HypothesisDrift(study)
	if len(drift) != 5 {
		t.Fatalf("drift for %d scenarios", len(drift))
	}
	for id, d := range drift {
		if d < 0 || d > 1 {
			t.Errorf("scenario %d drift %v out of range", id, d)
		}
	}
	// §A.3: hypothesis changes are substantial, not noise — at least
	// some scenarios show real drift.
	any := false
	for _, d := range drift {
		if d > 0.02 {
			any = true
		}
	}
	if !any {
		t.Errorf("no scenario shows non-trivial drift: %v", drift)
	}
}

// TestFPBeatsHypothesisTesting reproduces Figure 2's headline: the
// FP/Bayesian model predicts declared hypotheses better than hypothesis
// testing, overall and in (nearly) every scenario.
func TestFPBeatsHypothesisTesting(t *testing.T) {
	study, err := Simulate(StudyConfig{Participants: 12, Rows: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fits, err := FitModels(study)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 2 || fits[0].Model != "FP" || fits[1].Model != "HypothesisTesting" {
		t.Fatalf("unexpected fits: %+v", fits)
	}
	fp, ht := fits[0], fits[1]
	wins := 0
	for id := 1; id <= 5; id++ {
		if fp.MRR[id] > ht.MRR[id] {
			wins++
		}
		// "+" variants never decrease the score.
		if fp.MRRPlus[id] < fp.MRR[id]-1e-12 {
			t.Errorf("scenario %d: FP+ (%v) below FP (%v)", id, fp.MRRPlus[id], fp.MRR[id])
		}
		if ht.MRRPlus[id] < ht.MRR[id]-1e-12 {
			t.Errorf("scenario %d: HT+ (%v) below HT (%v)", id, ht.MRRPlus[id], ht.MRR[id])
		}
	}
	if wins < 4 {
		t.Errorf("FP won only %d/5 scenarios: FP=%v HT=%v", wins, fp.MRR, ht.MRR)
	}
}

// TestScenario2IsHardest reproduces §A.3's exception: the FP model's
// accuracy dips in scenario 2, where participants learn non-monotonically.
func TestScenario2IsHardest(t *testing.T) {
	study, err := Simulate(StudyConfig{Participants: 12, Rows: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fits, err := FitModels(study)
	if err != nil {
		t.Fatal(err)
	}
	fp := fits[0]
	for id := 1; id <= 5; id++ {
		if id == 2 {
			continue
		}
		if fp.MRR[2] >= fp.MRR[id] {
			t.Errorf("scenario 2 MRR (%v) should be below scenario %d (%v)", fp.MRR[2], id, fp.MRR[id])
		}
	}
}

func TestSummarize(t *testing.T) {
	study := quickStudy(t)
	sums, err := Summarize(study)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("got %d summaries", len(sums))
	}
	for _, s := range sums {
		if s.OverallMRR < 0 || s.OverallMRR > 1 {
			t.Errorf("%s MRR %v out of range", s.Model, s.OverallMRR)
		}
		if s.Top1Rate > s.Top2Rate {
			t.Errorf("%s top1 (%v) exceeds top2 (%v)", s.Model, s.Top1Rate, s.Top2Rate)
		}
		if s.TotalPredictions == 0 {
			t.Errorf("%s has no predictions", s.Model)
		}
	}
	if sums[0].OverallMRR <= sums[1].OverallMRR {
		t.Errorf("FP (%v) should beat HT (%v) overall", sums[0].OverallMRR, sums[1].OverallMRR)
	}
}

func TestWriteTables(t *testing.T) {
	study := quickStudy(t)
	var sb strings.Builder
	if err := WriteTable3(&sb, HypothesisDrift(study)); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 6 {
		t.Errorf("Table 3 has %d lines, want 6", lines)
	}
	fits, err := FitModels(study)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteFigure2(&sb, fits); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, token := range []string{"FP", "FP+", "HypothesisTesting"} {
		if !strings.Contains(out, token) {
			t.Errorf("Figure 2 output missing %q", token)
		}
	}
}

func TestModelKindString(t *testing.T) {
	if ModelFP.String() != "FP" || ModelHT.String() != "HT" || ModelErratic.String() != "Erratic" {
		t.Error("ModelKind rendering wrong")
	}
	if ModelKind(9).String() != "unknown" {
		t.Error("unknown kind should render 'unknown'")
	}
}

func TestPairsAmong(t *testing.T) {
	ps := pairsAmong([]int{3, 1, 7})
	if len(ps) != 3 {
		t.Fatalf("pairsAmong(3 rows) = %d pairs", len(ps))
	}
	for _, p := range ps {
		if p.A >= p.B {
			t.Fatalf("non-canonical pair %v", p)
		}
	}
}

// TestFitByParticipant reproduces §A.3's per-participant grouping: FP
// fits nearly every participant better than hypothesis testing.
func TestFitByParticipant(t *testing.T) {
	study, err := Simulate(StudyConfig{Participants: 12, Rows: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fits, err := FitByParticipant(study)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 12 {
		t.Fatalf("got %d participant fits", len(fits))
	}
	wins := 0
	for i, f := range fits {
		if f.ParticipantID != i {
			t.Fatalf("fits not ordered by ID: %v", f)
		}
		if f.FPMRR < 0 || f.FPMRR > 1 || f.HTMRR < 0 || f.HTMRR > 1 {
			t.Fatalf("MRR out of range: %+v", f)
		}
		if f.FPWins() {
			wins++
		}
	}
	// The paper reports FP wins for all but two of twenty; our simulated
	// population should show the same strong majority.
	if wins < len(fits)*3/4 {
		t.Errorf("FP wins only %d/%d participants", wins, len(fits))
	}
}
