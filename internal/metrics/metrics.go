// Package metrics implements the evaluation measures of the paper:
// precision/recall/F1 over predicted sets (§C.1's error-detection
// accuracy), and reciprocal rank / mean reciprocal rank (§A.2's
// user-study accuracy with k = 5).
package metrics

// PRF1 holds precision, recall and their harmonic mean.
type PRF1 struct {
	Precision float64
	Recall    float64
	F1        float64
}

// FromCounts computes the scores from confusion counts: truePos correct
// predictions out of `predicted` made and `actual` existing. Empty
// denominators score 0 by convention.
func FromCounts(truePos, predicted, actual int) PRF1 {
	var p, r float64
	if predicted > 0 {
		p = float64(truePos) / float64(predicted)
	}
	if actual > 0 {
		r = float64(truePos) / float64(actual)
	}
	var f1 float64
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return PRF1{Precision: p, Recall: r, F1: f1}
}

// FromSets scores a predicted set against a ground-truth set.
func FromSets[T comparable](pred, truth map[T]struct{}) PRF1 {
	tp := 0
	for x := range pred {
		if _, ok := truth[x]; ok {
			tp++
		}
	}
	return FromCounts(tp, len(pred), len(truth))
}

// ReciprocalRank returns 1/p where p is the 1-based position of truth in
// the ranked list, or 0 when truth is absent (the paper evaluates the
// top-k list with k = 5, so an absent ground truth contributes 0).
func ReciprocalRank[T comparable](ranked []T, truth T) float64 {
	for i, x := range ranked {
		if x == truth {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// MRR returns the mean of the reciprocal ranks, 0 for empty input.
func MRR(rrs []float64) float64 {
	if len(rrs) == 0 {
		return 0
	}
	var s float64
	for _, v := range rrs {
		s += v
	}
	return s / float64(len(rrs))
}

// DiscountedRR is the "+" variant of §A.2: when an exact match is absent
// the best subset/superset match at position p is credited with
// similarity/p, where similarity discounts by F1 difference. exactRR
// should be the exact-match reciprocal rank (0 when absent); bestRelated
// the highest similarity/p over related matches.
func DiscountedRR(exactRR, bestRelated float64) float64 {
	if exactRR >= bestRelated {
		return exactRR
	}
	return bestRelated
}
