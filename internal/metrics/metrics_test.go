package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromCountsKnown(t *testing.T) {
	s := FromCounts(2, 4, 5)
	if s.Precision != 0.5 {
		t.Errorf("precision = %v", s.Precision)
	}
	if s.Recall != 0.4 {
		t.Errorf("recall = %v", s.Recall)
	}
	want := 2 * 0.5 * 0.4 / 0.9
	if math.Abs(s.F1-want) > 1e-12 {
		t.Errorf("F1 = %v, want %v", s.F1, want)
	}
}

func TestFromCountsEmptyDenominators(t *testing.T) {
	if s := FromCounts(0, 0, 0); s.Precision != 0 || s.Recall != 0 || s.F1 != 0 {
		t.Errorf("all-zero counts scored %+v", s)
	}
	if s := FromCounts(0, 3, 0); s.Recall != 0 {
		t.Errorf("zero actual recall = %v", s.Recall)
	}
	if s := FromCounts(0, 0, 3); s.Precision != 0 {
		t.Errorf("zero predicted precision = %v", s.Precision)
	}
}

func TestF1IsHarmonicMeanProperty(t *testing.T) {
	f := func(tpRaw, fpRaw, fnRaw uint8) bool {
		tp := int(tpRaw % 50)
		pred := tp + int(fpRaw%50)
		actual := tp + int(fnRaw%50)
		s := FromCounts(tp, pred, actual)
		if s.Precision < 0 || s.Precision > 1 || s.Recall < 0 || s.Recall > 1 {
			return false
		}
		// F1 lies between min and max of P and R.
		lo, hi := s.Precision, s.Recall
		if lo > hi {
			lo, hi = hi, lo
		}
		return s.F1 >= lo-1e-12 && s.F1 <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFromSets(t *testing.T) {
	pred := map[int]struct{}{1: {}, 2: {}, 3: {}}
	truth := map[int]struct{}{2: {}, 3: {}, 4: {}, 5: {}}
	s := FromSets(pred, truth)
	if math.Abs(s.Precision-2.0/3.0) > 1e-12 {
		t.Errorf("precision = %v", s.Precision)
	}
	if s.Recall != 0.5 {
		t.Errorf("recall = %v", s.Recall)
	}
}

func TestFromSetsPerfectAndDisjoint(t *testing.T) {
	a := map[string]struct{}{"x": {}, "y": {}}
	if s := FromSets(a, a); s.F1 != 1 {
		t.Errorf("identical sets F1 = %v", s.F1)
	}
	b := map[string]struct{}{"z": {}}
	if s := FromSets(a, b); s.F1 != 0 {
		t.Errorf("disjoint sets F1 = %v", s.F1)
	}
}

func TestReciprocalRank(t *testing.T) {
	ranked := []int{7, 3, 9, 1}
	if rr := ReciprocalRank(ranked, 7); rr != 1 {
		t.Errorf("rank 1 RR = %v", rr)
	}
	if rr := ReciprocalRank(ranked, 9); rr != 1.0/3.0 {
		t.Errorf("rank 3 RR = %v", rr)
	}
	if rr := ReciprocalRank(ranked, 42); rr != 0 {
		t.Errorf("absent RR = %v", rr)
	}
	if rr := ReciprocalRank([]int{}, 1); rr != 0 {
		t.Errorf("empty list RR = %v", rr)
	}
}

func TestMRR(t *testing.T) {
	if got := MRR([]float64{1, 0.5, 0}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MRR = %v, want 0.5", got)
	}
	if got := MRR(nil); got != 0 {
		t.Errorf("MRR(nil) = %v", got)
	}
}

func TestDiscountedRR(t *testing.T) {
	// Exact match dominates.
	if got := DiscountedRR(1, 0.8); got != 1 {
		t.Errorf("DiscountedRR = %v", got)
	}
	// Related match credited when exact is absent or worse.
	if got := DiscountedRR(0, 0.45); got != 0.45 {
		t.Errorf("DiscountedRR = %v", got)
	}
	if got := DiscountedRR(0.2, 0.45); got != 0.45 {
		t.Errorf("DiscountedRR = %v", got)
	}
}
