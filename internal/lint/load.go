package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule parses and type-checks every package under root, which
// must be the module directory (it contains go.mod). Test files,
// testdata directories, hidden and underscore-prefixed entries are
// skipped. Type checking uses the stdlib source importer, so the whole
// load works offline with zero module dependencies.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := moduleDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			rel = ""
		}
		rel = filepath.ToSlash(rel)
		importPath := modPath
		if rel != "" {
			importPath = modPath + "/" + rel
		}
		p, err := loadDir(fset, imp, dir, rel, importPath)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// LoadPackage loads a single directory as one package under the given
// module-relative path. Fixture tests use rel to pin a package into
// ("internal/game") or out of ("internal/lint/testdata") the
// deterministic core.
func LoadPackage(dir, rel string) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	importPath := rel
	if importPath == "" {
		importPath = filepath.Base(dir)
	}
	p, err := loadDir(fset, imp, dir, rel, importPath)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return p, nil
}

// loadDir parses and type-checks the non-test Go files of one
// directory; it returns (nil, nil) when the directory holds none.
func loadDir(fset *token.FileSet, imp types.Importer, dir, rel, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	return &Package{Rel: rel, Path: importPath, Dir: dir, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// moduleDirs walks the module tree and returns every candidate package
// directory in sorted order, skipping testdata, hidden and underscore
// entries.
func moduleDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (LoadModule wants the module root)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
