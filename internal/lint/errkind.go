package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// errKind audits the HTTP error envelope end to end. It activates on
// any package defining both the `kindRegistry` table and the
// `errorKind` classifier (internal/service in the real tree) and
// checks, over the whole module:
//
//   - every Err* sentinel produced in the envelope package or its
//     module dependencies has an errors.Is mapping in errorKind —
//     otherwise it reaches clients as the catch-all "internal";
//   - every registered kind has a producing path: some errorKind case
//     returning it tests a sentinel that is actually produced (context
//     sentinels and the default case count as produced) — otherwise
//     the kind is dead weight in the append-only registry;
//   - every kind errorKind returns is registered.
type errKind struct{}

func (errKind) ID() string { return "errkind" }
func (errKind) Doc() string {
	return "every producible error sentinel maps to a registered kind, and every registered kind has a producing path"
}
func (errKind) Check(p *Package) []Finding { return nil }

func (errKind) CheckModule(m *Module) []Finding {
	var out []Finding
	for _, p := range m.Pkgs {
		reg := findKindRegistry(p)
		ek := findFuncDecl(p, "errorKind")
		if reg == nil || ek == nil {
			continue
		}
		out = append(out, checkEnvelope(m, p, reg, ek)...)
	}
	return out
}

// registryEntry is one row of the kindRegistry composite literal.
type registryEntry struct {
	kind string
	pos  token.Pos
}

func findKindRegistry(p *Package) []registryEntry {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "kindRegistry" || len(vs.Values) != 1 {
					continue
				}
				cl, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				var entries []registryEntry
				for _, elt := range cl.Elts {
					row, ok := elt.(*ast.CompositeLit)
					if !ok || len(row.Elts) == 0 {
						continue
					}
					if k, ok := constString(p, row.Elts[0]); ok {
						entries = append(entries, registryEntry{kind: k, pos: row.Pos()})
					}
				}
				return entries
			}
		}
	}
	return nil
}

func findFuncDecl(p *Package, name string) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

func constString(p *Package, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// kindCase is one errorKind case: the kind it returns, the sentinels
// guarding it, and whether a stdlib context sentinel guards it.
type kindCase struct {
	kind      string
	pos       token.Pos
	sentinels []string // sentinel keys "rel.Name"
	ctxGuard  bool
	isDefault bool
}

// sentinelKey names a sentinel independent of type-checker identity,
// so the sequential loader's per-package re-imports and the parallel
// loader's shared packages agree.
func sentinelKey(m *Module, obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	rel, ok := m.relOf(obj.Pkg())
	if !ok {
		return "", false
	}
	return rel + "." + obj.Name(), true
}

func checkEnvelope(m *Module, p *Package, reg []registryEntry, ek *ast.FuncDecl) []Finding {
	// Parse the classifier: every case clause in errorKind's body.
	var cases []kindCase
	ast.Inspect(ek.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		kc := kindCase{isDefault: cc.List == nil, pos: cc.Pos()}
		for _, guard := range cc.List {
			ast.Inspect(guard, func(gn ast.Node) bool {
				call, ok := gn.(*ast.CallExpr)
				if !ok {
					return true
				}
				if path, name, ok := p.pkgSel(call.Fun); ok && path == "errors" && (name == "Is" || name == "As") && len(call.Args) == 2 {
					if path2, name2, ok := p.pkgSel(call.Args[1]); ok && path2 == "context" && (name2 == "DeadlineExceeded" || name2 == "Canceled") {
						kc.ctxGuard = true
						return true
					}
					if key, ok := sentinelKey(m, objOfIn(p, call.Args[1])); ok {
						kc.sentinels = append(kc.sentinels, key)
					}
				}
				return true
			})
		}
		for _, st := range cc.Body {
			if ret, ok := st.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
				if k, ok := constString(p, ret.Results[0]); ok {
					kc.kind = k
					kc.pos = ret.Pos()
				}
				break
			}
		}
		if kc.kind != "" {
			cases = append(cases, kc)
		}
		return true
	})

	// Scope: the envelope package plus its transitive module imports.
	scope := envelopeScope(m, p)

	// Sentinel universe and production sites within the scope.
	sentinelDecls := make(map[string]bool)
	for _, sp := range scope {
		tp := sp.Pkg.Scope()
		for _, name := range tp.Names() {
			v, ok := tp.Lookup(name).(*types.Var)
			if !ok || !strings.HasPrefix(name, "Err") || v.Type().String() != "error" {
				continue
			}
			if key, ok := sentinelKey(m, v); ok {
				sentinelDecls[key] = true
			}
		}
	}
	produced := make(map[string]token.Pos) // sentinel key → min producing use
	prodPkg := make(map[string]*Package)
	for _, sp := range scope {
		for _, f := range sp.Files {
			// A use as the target of errors.Is/As is a test, not a
			// production; shield the sentinel identifier's position.
			shielded := make(map[token.Pos]bool)
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if path, name, ok := sp.pkgSel(call.Fun); ok && path == "errors" && (name == "Is" || name == "As") && len(call.Args) == 2 {
					switch arg := unparen(call.Args[1]).(type) {
					case *ast.SelectorExpr:
						shielded[arg.Sel.Pos()] = true
					case *ast.Ident:
						shielded[arg.Pos()] = true
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				// The classifier itself only inspects sentinels.
				if fd, ok := n.(*ast.FuncDecl); ok && fd == ek {
					return false
				}
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := sp.Info.Uses[id]
				if obj == nil || shielded[id.Pos()] {
					return true
				}
				key, ok := sentinelKey(m, obj)
				if !ok || !sentinelDecls[key] {
					return true
				}
				if old, seen := produced[key]; !seen || id.Pos() < old {
					produced[key] = id.Pos()
					prodPkg[key] = sp
				}
				return true
			})
		}
	}

	mapped := make(map[string]bool)
	for _, kc := range cases {
		for _, s := range kc.sentinels {
			mapped[s] = true
		}
	}
	regKinds := make(map[string]bool)
	for _, e := range reg {
		regKinds[e.kind] = true
	}

	var out []Finding

	// 1. Produced sentinels with no classifier mapping.
	keys := make([]string, 0, len(produced))
	for k := range produced {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !mapped[k] {
			out = append(out, findingAt(prodPkg[k], produced[k], "errkind",
				"error sentinel %s can reach the HTTP envelope but errorKind has no errors.Is case for it; it would surface as the catch-all kind", k))
		}
	}

	// 2. Registered kinds with no producing path.
	alive := make(map[string]bool)
	for _, kc := range cases {
		if kc.isDefault || kc.ctxGuard {
			alive[kc.kind] = true
			continue
		}
		for _, s := range kc.sentinels {
			if _, ok := produced[s]; ok {
				alive[kc.kind] = true
				break
			}
		}
	}
	for _, e := range reg {
		if !alive[e.kind] {
			out = append(out, findingAt(p, e.pos, "errkind",
				"registered kind %q has no producing path: no errorKind case returning it tests a produced sentinel", e.kind))
		}
	}

	// 3. Kinds the classifier emits but the registry does not know.
	for _, kc := range cases {
		if !regKinds[kc.kind] {
			out = append(out, findingAt(p, kc.pos, "errkind",
				"errorKind returns kind %q which is not in kindRegistry; register it (the registry is append-only)", kc.kind))
		}
	}
	return out
}

// envelopeScope returns the envelope package and its transitive module
// imports — the packages whose sentinels can flow into the envelope.
func envelopeScope(m *Module, p *Package) []*Package {
	relPkg := make(map[string]*Package, len(m.Pkgs))
	for _, mp := range m.Pkgs {
		relPkg[mp.Rel] = mp
	}
	seen := map[string]bool{p.Rel: true}
	queue := []*Package{p}
	out := []*Package{p}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, imp := range cur.Pkg.Imports() {
			rel, ok := m.relOf(imp)
			if !ok || seen[rel] {
				continue
			}
			seen[rel] = true
			if dep, ok := relPkg[rel]; ok {
				out = append(out, dep)
				queue = append(queue, dep)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rel < out[j].Rel })
	return out
}
