package lint

// chanLock flags potentially blocking operations — channel send,
// channel receive, select without default, range over a channel,
// WaitGroup.Wait, Cond.Wait — performed while a mutex is held, either
// directly or through a synchronous call whose callee may block.
// Blocking under a lock turns backpressure into deadlock: every other
// path needing the lock stalls behind an unbounded wait.
type chanLock struct{}

func (chanLock) ID() string { return "chanlock" }
func (chanLock) Doc() string {
	return "no blocking channel operation or Wait while holding a mutex, directly or via callees"
}
func (chanLock) Check(p *Package) []Finding { return nil }

// chanLockExempt lists coarse locks designed to be held across
// blocking work. The per-session entry lock serializes all session
// work including checkpoint retries and store I/O (DESIGN §12);
// holding it across a bounded sleep or store call is the design, not
// a defect.
var chanLockExempt = map[lockClass]bool{
	"internal/service|entry.mu": true,
}

func firstNonExempt(held []lockClass) (lockClass, bool) {
	for _, c := range held {
		if !chanLockExempt[c] {
			return c, true
		}
	}
	return "", false
}

func (chanLock) CheckModule(m *Module) []Finding {
	var out []Finding
	for _, n := range m.order {
		if !n.Pkg.Internal() {
			continue // scoped to the serving core and libraries under internal/
		}
		for _, b := range n.sum.blocks {
			if c, ok := firstNonExempt(b.held); ok {
				out = append(out, findingAt(n.Pkg, b.pos, "chanlock",
					"%s while holding %s can block every path needing the lock", b.what, c.display()))
			}
		}
		for _, e := range n.Edges {
			if e.Kind == EdgeGo || e.To == nil || len(e.Held) == 0 {
				continue
			}
			c, ok := firstNonExempt(e.Held)
			if !ok {
				continue
			}
			if cause, blocks := m.tb[e.To]; blocks {
				out = append(out, findingAt(n.Pkg, e.Pos, "chanlock",
					"call to %s while holding %s may block (%s)", e.To.Key, c.display(), cause.what))
			}
		}
	}
	return out
}
