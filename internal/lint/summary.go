package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// lockClass identifies a mutex for ordering purposes: "rel|Type.field"
// for a struct field, "rel|name" for a package-level var, and
// "rel|local:name" for a function-local variable. Same-named locals in
// one package merge into one class — an accepted over-approximation.
type lockClass string

// display renders a class for findings: internal/service:shard.mu.
func (c lockClass) display() string {
	s := string(c)
	for i := 0; i < len(s); i++ {
		if s[i] == '|' {
			if i == 0 {
				return s[1:]
			}
			return s[:i] + ":" + s[i+1:]
		}
	}
	return s
}

// acquireSite is one blocking Lock/RLock call.
type acquireSite struct {
	class lockClass
	pos   token.Pos
	held  []lockClass // classes already held, in acquisition order
	rlock bool
}

// blockSite is one potentially blocking channel or sync operation.
type blockSite struct {
	pos  token.Pos
	held []lockClass
	what string
}

// ctxSite is one context.Background()/TODO() manufacture.
type ctxSite struct {
	pos  token.Pos
	name string
}

// spawnSite is one `go` statement.
type spawnSite struct {
	pos    token.Pos
	target *FuncNode    // spawned literal or resolved declared callee
	doneOn types.Object // WaitGroup the spawned body calls Done() on
}

// funcSummary is the per-function fact base the interprocedural rules
// consume.
type funcSummary struct {
	acquires    []acquireSite
	blocks      []blockSite
	ctxMakes    []ctxSite
	spawns      []spawnSite
	waitsOn     []types.Object // WaitGroups this function Wait()s on
	hasCtxParam bool
}

// analyzeFunc walks n's body once, recording its summary and outgoing
// edges. Function literals encountered on the way become their own
// nodes and are analyzed eagerly.
func analyzeFunc(m *Module, n *FuncNode) {
	if n.sum != nil {
		return
	}
	n.sum = &funcSummary{}
	var body *ast.BlockStmt
	var ft *ast.FuncType
	if n.Decl != nil {
		body, ft = n.Decl.Body, n.Decl.Type
	} else {
		body, ft = n.Lit.Body, n.Lit.Type
	}
	n.sum.hasCtxParam = hasContextParam(n.Pkg, ft)
	if body == nil {
		return
	}
	w := &bodyWalker{m: m, n: n, p: n.Pkg}
	w.stmts(body.List)
}

// hasContextParam reports whether the signature takes a
// context.Context parameter.
func hasContextParam(p *Package, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		if tv, ok := p.Info.Types[f.Type]; ok && tv.Type != nil && tv.Type.String() == "context.Context" {
			return true
		}
	}
	return false
}

// bodyWalker tracks the held lock set through one function body. It
// walks statements in order; branches run on copies and merge by
// intersection of the non-terminating arms, so only locks held on
// every fall-through path stay in the set.
type bodyWalker struct {
	m          *Module
	n          *FuncNode
	p          *Package
	held       []lockClass
	selectComm bool // suppress blocking records for a select's own comm op
}

func snapshot(held []lockClass) []lockClass {
	if len(held) == 0 {
		return nil
	}
	out := make([]lockClass, len(held))
	copy(out, held)
	return out
}

func containsClass(held []lockClass, c lockClass) bool {
	for _, h := range held {
		if h == c {
			return true
		}
	}
	return false
}

// hold appends copy-on-write so sibling branch snapshots never share a
// backing array with the live set.
func (w *bodyWalker) hold(c lockClass) {
	if containsClass(w.held, c) {
		return
	}
	w.held = append(snapshot(w.held), c)
}

func (w *bodyWalker) release(c lockClass) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == c {
			out := snapshot(w.held[:i])
			out = append(out, w.held[i+1:]...)
			w.held = out
			return
		}
	}
}

func (w *bodyWalker) block(pos token.Pos, what string) {
	w.n.sum.blocks = append(w.n.sum.blocks, blockSite{pos: pos, held: snapshot(w.held), what: what})
}

func (w *bodyWalker) edgeTo(to *FuncNode, kind EdgeKind, pos token.Pos) {
	w.n.Edges = append(w.n.Edges, &Edge{From: w.n, To: to, Kind: kind, Pos: pos, Held: snapshot(w.held)})
}

func (w *bodyWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *bodyWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
		if !w.selectComm {
			w.block(s.Arrow, "channel send")
		}
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.DeferStmt:
		w.call(s.Call, EdgeDefer)
	case *ast.GoStmt:
		w.goStmt(s)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		arms := [][]ast.Stmt{s.Body.List}
		switch e := s.Else.(type) {
		case nil:
			arms = append(arms, nil) // implicit fall-through arm
		case *ast.BlockStmt:
			arms = append(arms, e.List)
		default:
			arms = append(arms, []ast.Stmt{s.Else})
		}
		w.branches(arms)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.loopBody(func() {
			w.stmts(s.Body.List)
			if s.Post != nil {
				w.stmt(s.Post)
			}
		})
	case *ast.RangeStmt:
		w.expr(s.X)
		if tv, ok := w.p.Info.Types[s.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.block(s.For, "range over channel")
			}
		}
		w.loopBody(func() { w.stmts(s.Body.List) })
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.caseArms(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		w.caseArms(s.Body)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.block(s.Select, "select without default")
		}
		var arms [][]ast.Stmt
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm != nil {
				w.selectComm = true
				w.stmt(cc.Comm)
				w.selectComm = false
			}
			arms = append(arms, cc.Body)
		}
		w.branches(arms)
	}
}

// caseArms walks a switch body: case expressions in order, then the
// arm bodies as branches. A switch without a default may match no arm,
// so the entry set joins the merge.
func (w *bodyWalker) caseArms(body *ast.BlockStmt) {
	var arms [][]ast.Stmt
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.expr(e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		arms = append(arms, cc.Body)
	}
	if !hasDefault {
		arms = append(arms, nil)
	}
	w.branches(arms)
}

// branches runs each arm on a copy of the held set and merges the
// results: the intersection of every arm that can fall through. Arms
// ending in return/branch/panic divert control and drop out of the
// merge; if every arm diverts, the code after is unreachable and the
// entry set stands.
func (w *bodyWalker) branches(arms [][]ast.Stmt) {
	entry := snapshot(w.held)
	var merged [][]lockClass
	for _, arm := range arms {
		w.held = snapshot(entry)
		w.stmts(arm)
		if !terminates(arm) {
			merged = append(merged, snapshot(w.held))
		}
	}
	if len(merged) == 0 {
		w.held = entry
		return
	}
	w.held = intersectOrdered(merged)
}

// loopBody walks the body on a copy and intersects with the entry set:
// the loop may run zero times, so only locks held both before and
// after an iteration survive.
func (w *bodyWalker) loopBody(walk func()) {
	entry := snapshot(w.held)
	walk()
	w.held = intersectOrdered([][]lockClass{entry, w.held})
}

func terminates(arm []ast.Stmt) bool {
	if len(arm) == 0 {
		return false
	}
	switch s := arm[len(arm)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.ExprStmt:
		if c, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := unparen(c.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func intersectOrdered(sets [][]lockClass) []lockClass {
	out := sets[0]
	for _, s := range sets[1:] {
		var keep []lockClass
		for _, c := range out {
			if containsClass(s, c) {
				keep = append(keep, c)
			}
		}
		out = keep
	}
	return out
}

func (w *bodyWalker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(e, EdgeCall)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW && !w.selectComm {
			w.expr(e.X)
			w.block(e.OpPos, "channel receive")
			return
		}
		w.expr(e.X)
	case *ast.FuncLit:
		ln := w.m.litNode(w.n, e)
		w.edgeTo(ln, EdgeCall, e.Pos())
		analyzeFunc(w.m, ln)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		// A module method referenced as a value may be called later;
		// over-approximate it as a call at the reference.
		if fn, ok := w.p.Info.Uses[e.Sel].(*types.Func); ok {
			if n := w.m.nodeFor(fn); n != nil {
				w.edgeTo(n, EdgeCall, e.Pos())
			}
		}
		w.expr(e.X)
	case *ast.Ident:
		if fn, ok := w.p.Info.Uses[e].(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
				if n := w.m.nodeFor(fn); n != nil {
					w.edgeTo(n, EdgeCall, e.Pos())
				}
			}
		}
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
		for _, i := range e.Indices {
			w.expr(i)
		}
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.KeyValueExpr:
		w.expr(e.Key)
		w.expr(e.Value)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el)
		}
	}
}

func (w *bodyWalker) call(c *ast.CallExpr, kind EdgeKind) {
	fun := unparen(c.Fun)
	if tv, ok := w.p.Info.Types[c.Fun]; ok && tv.IsType() { // conversion
		for _, a := range c.Args {
			w.expr(a)
		}
		return
	}
	if w.syncOp(c, kind) {
		return
	}
	if path, name, ok := w.p.pkgSel(fun); ok && path == "context" && (name == "Background" || name == "TODO") {
		w.n.sum.ctxMakes = append(w.n.sum.ctxMakes, ctxSite{pos: c.Pos(), name: name})
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isB := w.p.Info.Uses[id].(*types.Builtin); isB {
			for _, a := range c.Args {
				w.expr(a)
			}
			return
		}
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		ln := w.m.litNode(w.n, fun)
		w.edgeTo(ln, kind, c.Pos())
		analyzeFunc(w.m, ln)
	case *ast.Ident:
		if fn, ok := w.p.Info.Uses[fun].(*types.Func); ok {
			if n := w.m.nodeFor(fn); n != nil {
				w.edgeTo(n, kind, c.Pos())
			}
		}
	case *ast.SelectorExpr:
		w.methodCall(fun, kind, c)
		w.expr(fun.X)
	default:
		w.expr(fun)
	}
	for _, a := range c.Args {
		w.expr(a)
	}
}

// methodCall resolves a selector call: a statically known function or
// method directly, an interface method CHA-style over module methods
// with the same name and arity. Interface calls into stdlib types are
// left unresolved rather than matched against everything.
func (w *bodyWalker) methodCall(sel *ast.SelectorExpr, kind EdgeKind, c *ast.CallExpr) {
	fn, ok := w.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	if n := w.m.nodeFor(fn); n != nil {
		w.edgeTo(n, kind, c.Pos())
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); !isIface {
		return
	}
	if _, inModule := w.m.relOf(fn.Pkg()); !inModule {
		return
	}
	for _, impl := range w.m.implementers(fn.Name(), sig) {
		w.edgeTo(impl, kind, c.Pos())
	}
}

// syncOp recognizes and consumes calls to sync primitives: mutex
// lock/unlock mutate the held set, WaitGroup.Wait and Cond.Wait record
// blocking sites. TryLock/TryRLock are deliberately untracked: success
// is conditional, and DESIGN §12 explicitly allows TryLock under the
// shard mutex.
func (w *bodyWalker) syncOp(c *ast.CallExpr, kind EdgeKind) bool {
	sel, ok := unparen(c.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := w.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	switch namedName(sig.Recv().Type()) {
	case "Mutex", "RWMutex":
		class := w.lockClassOf(sel.X)
		switch fn.Name() {
		case "Lock", "RLock":
			w.n.sum.acquires = append(w.n.sum.acquires, acquireSite{
				class: class, pos: c.Pos(), held: snapshot(w.held), rlock: fn.Name() == "RLock",
			})
			w.hold(class)
		case "Unlock", "RUnlock":
			if kind != EdgeDefer { // defer Unlock keeps the lock to return
				w.release(class)
			}
		}
		return true
	case "WaitGroup":
		if fn.Name() == "Wait" {
			w.block(c.Pos(), "sync.WaitGroup.Wait")
			if obj := w.objOf(sel.X); obj != nil {
				w.n.sum.waitsOn = append(w.n.sum.waitsOn, obj)
			}
		}
		return true
	case "Cond":
		if fn.Name() == "Wait" {
			w.block(c.Pos(), "sync.Cond.Wait")
		}
		return true
	}
	return false
}

// goStmt records the spawn, an EdgeGo edge, and — for goroleak — the
// WaitGroup the spawned body calls Done() on, if any.
func (w *bodyWalker) goStmt(s *ast.GoStmt) {
	c := s.Call
	var target *FuncNode
	var doneOn types.Object
	switch fun := unparen(c.Fun).(type) {
	case *ast.FuncLit:
		ln := w.m.litNode(w.n, fun)
		w.edgeTo(ln, EdgeGo, s.Pos())
		analyzeFunc(w.m, ln)
		target = ln
		doneOn = doneWitness(w.p, fun.Body)
	case *ast.Ident:
		if fn, ok := w.p.Info.Uses[fun].(*types.Func); ok {
			if n := w.m.nodeFor(fn); n != nil {
				w.edgeTo(n, EdgeGo, s.Pos())
				target = n
				if n.Decl != nil && n.Decl.Body != nil {
					doneOn = doneWitness(n.Pkg, n.Decl.Body)
				}
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := w.p.Info.Uses[fun.Sel].(*types.Func); ok {
			if n := w.m.nodeFor(fn); n != nil {
				w.edgeTo(n, EdgeGo, s.Pos())
				target = n
				if n.Decl != nil && n.Decl.Body != nil {
					doneOn = doneWitness(n.Pkg, n.Decl.Body)
				}
			}
		}
		w.expr(fun.X)
	}
	for _, a := range c.Args {
		w.expr(a)
	}
	w.n.sum.spawns = append(w.n.sum.spawns, spawnSite{pos: s.Pos(), target: target, doneOn: doneOn})
}

// doneWitness finds the WaitGroup object a body calls Done() on.
func doneWitness(p *Package, body ast.Node) types.Object {
	var found types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(c.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		found = objOfIn(p, sel.X)
		return true
	})
	return found
}

// objOf resolves the variable or field behind a mutex/WaitGroup
// operand expression.
func (w *bodyWalker) objOf(e ast.Expr) types.Object { return objOfIn(w.p, e) }

func objOfIn(p *Package, e ast.Expr) types.Object {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return p.Info.Uses[e]
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[e]; ok {
			return s.Obj()
		}
		return p.Info.Uses[e.Sel]
	}
	return nil
}

// lockClassOf derives the ordering class of a mutex operand.
func (w *bodyWalker) lockClassOf(x ast.Expr) lockClass {
	x = unparen(x)
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if pn, ok := w.p.Info.Uses[id].(*types.PkgName); ok {
				rel, ok := w.m.relOf(pn.Imported())
				if !ok {
					rel = pn.Imported().Path()
				}
				return lockClass(rel + "|" + x.Sel.Name)
			}
		}
		if tv, ok := w.p.Info.Types[x.X]; ok && tv.Type != nil {
			if name := namedName(tv.Type); name != "" {
				rel := w.p.Rel
				if named := namedOf(tv.Type); named != nil && named.Obj().Pkg() != nil {
					if r, ok := w.m.relOf(named.Obj().Pkg()); ok {
						rel = r
					}
				}
				return lockClass(rel + "|" + name + "." + x.Sel.Name)
			}
		}
	case *ast.Ident:
		obj := w.p.Info.Uses[x]
		if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			rel := w.p.Rel
			if r, ok := w.m.relOf(obj.Pkg()); ok {
				rel = r
			}
			return lockClass(rel + "|" + x.Name)
		}
		return lockClass(w.p.Rel + "|local:" + x.Name)
	}
	return lockClass(fmt.Sprintf("%s|anon@%d", w.p.Rel, x.Pos()))
}
