package lint

import (
	"go/ast"
	"regexp"
)

// lockedField enforces documented lock discipline: a struct field whose
// comment says "guarded by <mu>" (where <mu> names a sibling field)
// may only be touched through the receiver in methods that lock that
// sibling — a recv.mu.Lock() or recv.mu.RLock() call somewhere in the
// body. Methods whose name ends in "Locked" are exempt by convention:
// that suffix is the project's contract that the caller already holds
// the lock (see Manager.lruVictimLocked).
//
// The check is method-granular, not flow-sensitive: it proves the lock
// is taken somewhere in the method, not that it is held at the access.
// That is deliberately cheap and catches the real failure mode — a new
// method that forgets the mutex entirely.
type lockedField struct{}

func (lockedField) ID() string { return "lockedfield" }

func (lockedField) Doc() string {
	return "fields documented \"guarded by <mu>\" must be accessed under recv.<mu>.Lock (or from *Locked methods)"
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

func (r lockedField) Check(p *Package) []Finding {
	// structName → guarded field name → mutex field name.
	guards := make(map[string]map[string]string)
	for _, file := range p.Files {
		collectGuards(file, guards)
	}
	if len(guards) == 0 {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			recvName, structName := receiver(fn)
			if recvName == "" || guards[structName] == nil {
				continue
			}
			if isLockedSuffixed(fn.Name.Name) {
				continue
			}
			out = append(out, r.checkMethod(p, fn, recvName, guards[structName])...)
		}
	}
	return out
}

// collectGuards scans struct declarations for "guarded by <field>"
// comments whose target resolves to a sibling field. Comments naming
// anything else (another struct's lock, prose) are out of the rule's
// reach and ignored.
func collectGuards(file *ast.File, guards map[string]map[string]string) {
	ast.Inspect(file, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		siblings := make(map[string]bool)
		for _, f := range st.Fields.List {
			for _, name := range f.Names {
				siblings[name.Name] = true
			}
		}
		for _, f := range st.Fields.List {
			mu := guardTarget(f)
			if mu == "" || !siblings[mu] {
				continue
			}
			for _, name := range f.Names {
				if name.Name == mu {
					continue
				}
				if guards[ts.Name.Name] == nil {
					guards[ts.Name.Name] = make(map[string]string)
				}
				guards[ts.Name.Name][name.Name] = mu
			}
		}
		return true
	})
}

// guardTarget extracts the mutex name from a field's doc or trailing
// comment, or "".
func guardTarget(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkMethod reports guarded-field accesses in a method that never
// locks the guarding mutex.
func (r lockedField) checkMethod(p *Package, fn *ast.FuncDecl, recvName string, guarded map[string]string) []Finding {
	locked := make(map[string]bool) // mutex fields this method locks
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := muSel.X.(*ast.Ident); ok && id.Name == recvName {
			locked[muSel.Sel.Name] = true
		}
		return true
	})
	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != recvName {
			return true
		}
		mu, isGuarded := guarded[sel.Sel.Name]
		if !isGuarded || locked[mu] {
			return true
		}
		out = append(out, p.finding(r.ID(), sel,
			"%s.%s is guarded by %s but %s does not lock it; take %s.%s.Lock or give the method a Locked suffix",
			recvName, sel.Sel.Name, mu, fn.Name.Name, recvName, mu))
		return true
	})
	return out
}

// receiver returns the receiver's name and (pointer-stripped) type
// name, or "" when anonymous.
func receiver(fn *ast.FuncDecl) (recvName, structName string) {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return "", ""
	}
	recvName = fn.Recv.List[0].Names[0].Name
	if recvName == "_" {
		return "", ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return recvName, id.Name
	}
	return "", ""
}

func isLockedSuffixed(name string) bool {
	const suffix = "Locked"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
