package lint

import (
	"go/types"
)

// goroLeak enforces goroutine lifecycle discipline in non-test
// internal/ packages: every `go` statement must be joined — the
// spawned body calls Done() on a sync.WaitGroup that some loaded
// function Wait()s on (the drain-goroutine and sweep fan-out pattern)
// — or carry an audited suppression explaining why it may outlive its
// spawner. An unjoined goroutine survives shutdown, races teardown,
// and leaks under load.
type goroLeak struct{}

func (goroLeak) ID() string { return "goroleak" }
func (goroLeak) Doc() string {
	return "every go statement in internal/ must be joined via a WaitGroup that is Wait()ed on, or carry an audited suppression"
}
func (goroLeak) Check(p *Package) []Finding { return nil }

func (goroLeak) CheckModule(m *Module) []Finding {
	waited := make(map[types.Object]bool)
	for _, n := range m.order {
		for _, obj := range n.sum.waitsOn {
			waited[obj] = true
		}
	}
	var out []Finding
	for _, n := range m.order {
		if !n.Pkg.Internal() {
			continue
		}
		for _, sp := range n.sum.spawns {
			if sp.doneOn != nil && waited[sp.doneOn] {
				continue
			}
			what := "goroutine"
			if sp.target != nil && sp.target.Decl != nil {
				what = "goroutine running " + string(sp.target.Key)
			}
			switch {
			case sp.doneOn == nil:
				out = append(out, findingAt(n.Pkg, sp.pos, "goroleak",
					"%s is never joined: have the body Done() a sync.WaitGroup that shutdown Wait()s on, or suppress with a reason", what))
			default:
				out = append(out, findingAt(n.Pkg, sp.pos, "goroleak",
					"%s calls Done() on a WaitGroup nothing Wait()s on; add the Wait to the shutdown path", what))
			}
		}
	}
	return out
}
