package lint

import (
	"strings"
)

// ignoreDirective is the comment prefix of a suppression. The full
// grammar is:
//
//	//etlint:ignore <rule> <reason...>
//
// The directive suppresses findings of <rule> on its own line and on
// the line directly below it, so it works both as a trailing comment
// and on a line of its own above the flagged statement. The reason is
// mandatory — it is the written justification a reviewer audits.
const ignoreDirective = "etlint:ignore"

// directive is one well-formed etlint:ignore comment. covers marks it
// used; a directive whose rule ran but that covered nothing is stale
// and is itself reported.
type directive struct {
	file   string
	line   int
	col    int
	rule   string
	reason string
	used   bool
}

// suppressions is the suppression index for a run, accumulated across
// every scanned package.
type suppressions struct {
	// lines maps file → line → rule → the directive covering it.
	lines map[string]map[int]map[string]*directive
	// all lists every well-formed directive in scan order.
	all []*directive
}

func (s *suppressions) covers(f Finding) bool {
	d := s.lines[f.File][f.Line][f.Rule]
	if d == nil {
		return false
	}
	d.used = true
	return true
}

func (s *suppressions) add(d *directive) {
	if s.lines == nil {
		s.lines = make(map[string]map[int]map[string]*directive)
	}
	byLine := s.lines[d.file]
	if byLine == nil {
		byLine = make(map[int]map[string]*directive)
		s.lines[d.file] = byLine
	}
	for _, l := range [2]int{d.line, d.line + 1} {
		if byLine[l] == nil {
			byLine[l] = make(map[string]*directive)
		}
		byLine[l][d.rule] = d
	}
	s.all = append(s.all, d)
}

// scan collects a package's etlint:ignore directives into the index.
// Malformed directives — missing rule, unknown rule, or a missing
// reason — come back as findings of the meta-rule "suppress": an
// unjustified suppression is itself a violation.
func (s *suppressions) scan(p *Package) []Finding {
	known := make(map[string]bool)
	for _, r := range AllRules() {
		known[r.ID()] = true
	}
	var bad []Finding
	for _, file := range p.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				pos := p.Fset.Position(c.Pos())
				switch {
				case len(fields) == 0:
					bad = append(bad, Finding{
						Rule: "suppress", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: "etlint:ignore needs a rule ID and a reason: //etlint:ignore <rule> <why>",
					})
				case !known[fields[0]]:
					bad = append(bad, Finding{
						Rule: "suppress", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: "etlint:ignore names unknown rule \"" + fields[0] + "\"",
					})
				case len(fields) < 2:
					bad = append(bad, Finding{
						Rule: "suppress", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: "etlint:ignore " + fields[0] + " has no reason; justify the suppression",
					})
				default:
					s.add(&directive{
						file: pos.Filename, line: pos.Line, col: pos.Column,
						rule:   fields[0],
						reason: strings.TrimSpace(strings.TrimPrefix(text, fields[0])),
					})
				}
			}
		}
	}
	return bad
}

// directiveText extracts the payload after etlint:ignore, reporting
// whether the comment is a directive at all. Like go:build directives,
// the marker must open the comment (no leading space after //).
func directiveText(comment string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false // block comments are never directives
	}
	rest, ok := strings.CutPrefix(body, ignoreDirective)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. etlint:ignoreXYZ is not a directive
	}
	return strings.TrimSpace(rest), true
}
