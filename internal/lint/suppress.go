package lint

import (
	"strings"
)

// ignoreDirective is the comment prefix of a suppression. The full
// grammar is:
//
//	//etlint:ignore <rule> <reason...>
//
// The directive suppresses findings of <rule> on its own line and on
// the line directly below it, so it works both as a trailing comment
// and on a line of its own above the flagged statement. The reason is
// mandatory — it is the written justification a reviewer audits.
const ignoreDirective = "etlint:ignore"

// suppressions is the per-package suppression index.
type suppressions struct {
	// lines maps file → line → suppressed rule IDs on that line.
	lines map[string]map[int]map[string]bool
}

func (s *suppressions) covers(f Finding) bool {
	return s.lines[f.File][f.Line][f.Rule]
}

func (s *suppressions) add(file string, line int, rule string) {
	if s.lines == nil {
		s.lines = make(map[string]map[int]map[string]bool)
	}
	byLine := s.lines[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s.lines[file] = byLine
	}
	for _, l := range [2]int{line, line + 1} {
		if byLine[l] == nil {
			byLine[l] = make(map[string]bool)
		}
		byLine[l][rule] = true
	}
}

// suppressionsFor scans a package's comments for etlint:ignore
// directives. Malformed directives — missing rule, unknown rule, or a
// missing reason — come back as findings of the meta-rule "suppress":
// an unjustified suppression is itself a violation.
func suppressionsFor(p *Package) (*suppressions, []Finding) {
	known := make(map[string]bool)
	for _, r := range AllRules() {
		known[r.ID()] = true
	}
	sup := &suppressions{}
	var bad []Finding
	for _, file := range p.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				pos := p.Fset.Position(c.Pos())
				switch {
				case len(fields) == 0:
					bad = append(bad, Finding{
						Rule: "suppress", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: "etlint:ignore needs a rule ID and a reason: //etlint:ignore <rule> <why>",
					})
				case !known[fields[0]]:
					bad = append(bad, Finding{
						Rule: "suppress", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: "etlint:ignore names unknown rule \"" + fields[0] + "\"",
					})
				case len(fields) < 2:
					bad = append(bad, Finding{
						Rule: "suppress", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: "etlint:ignore " + fields[0] + " has no reason; justify the suppression",
					})
				default:
					sup.add(pos.Filename, pos.Line, fields[0])
				}
			}
		}
	}
	return sup, bad
}

// directiveText extracts the payload after etlint:ignore, reporting
// whether the comment is a directive at all. Like go:build directives,
// the marker must open the comment (no leading space after //).
func directiveText(comment string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false // block comments are never directives
	}
	rest, ok := strings.CutPrefix(body, ignoreDirective)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. etlint:ignoreXYZ is not a directive
	}
	return strings.TrimSpace(rest), true
}
