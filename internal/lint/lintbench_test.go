package lint

import (
	"reflect"
	"testing"
	"time"
)

// moduleRoot is the real module this package lives in — the benchmark
// and the cache-identity test run the full production analysis.
const moduleRoot = "../.."

// TestLintModuleCacheIdentity: a cold run (empty cache) and the warm
// run replaying its entry must return identical findings and audit
// records, and both must match the uncached parallel run.
func TestLintModuleCacheIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check in -short mode")
	}
	dir := t.TempDir()
	rules := AllRules()
	coldF, coldA, err := LintModule(moduleRoot, rules, dir)
	if err != nil {
		t.Fatal(err)
	}
	warmF, warmA, err := LintModule(moduleRoot, rules, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldF, warmF) {
		t.Errorf("cold vs warm findings differ:\ncold: %v\nwarm: %v", coldF, warmF)
	}
	if !reflect.DeepEqual(coldA, warmA) {
		t.Errorf("cold vs warm audit differs:\ncold: %v\nwarm: %v", coldA, warmA)
	}
	noCacheF, noCacheA, err := LintModule(moduleRoot, rules, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldF, noCacheF) || !reflect.DeepEqual(coldA, noCacheA) {
		t.Errorf("cached and uncached results differ")
	}
}

// BenchmarkLintLoader times the full module analysis three ways — the
// sequential loader (the baseline), the parallel loader against a cold
// cache, and a warm cache hit — and reports the speedups as ratio
// metrics. `make lintbench` records them into BENCH_Lint.json; the
// "x-vs-" prefix makes benchcheck gate them with its 0.6 floor, so a
// collapse of the parallel speedup fails the build.
func BenchmarkLintLoader(b *testing.B) {
	rules := AllRules()

	start := time.Now()
	pkgs, err := LoadModule(moduleRoot)
	if err != nil {
		b.Fatal(err)
	}
	RunAudit(pkgs, rules)
	seq := time.Since(start)

	var cold, warm time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		t0 := time.Now()
		if _, _, err := LintModule(moduleRoot, rules, dir); err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		if _, _, err := LintModule(moduleRoot, rules, dir); err != nil {
			b.Fatal(err)
		}
		t2 := time.Now()
		cold += t1.Sub(t0)
		warm += t2.Sub(t1)
	}
	n := time.Duration(b.N)
	b.ReportMetric(float64(seq)/float64(cold/n), "x-vs-sequential")
	b.ReportMetric(float64(seq)/float64(warm/n), "warm-x-vs-sequential")
	b.ReportMetric(float64(warm/n), "warm-ns")
}
