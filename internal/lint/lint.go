// Package lint is the project's own static-analysis framework: a small
// analyzer suite built on go/parser and go/types (stdlib only — the
// module stays offline-buildable) that enforces the determinism and
// concurrency invariants the reproduction depends on. Generic tools
// cannot know these rules: every stochastic choice must flow through a
// threaded, explicitly seeded generator, the deterministic core must
// never read the wall clock, map iteration must not leak ordering into
// results, and fields documented as lock-guarded must be accessed under
// their lock. One violation shows up only as a flaky golden test; the
// linter turns it into a file:line finding.
//
// Findings can be suppressed with a justification:
//
//	//etlint:ignore <rule> <reason>
//
// placed on the flagged line or the line directly above it. A
// suppression without a rule ID, with an unknown rule ID, or without a
// reason is itself reported (rule "suppress") — the justification is
// the audit trail.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// Rule is the reporting rule's ID ("detrand", "maporder", ...).
	Rule string `json:"rule"`
	// File, Line and Col locate the violation.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message says what is wrong and how to fix or justify it.
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Rule)
}

// Rule is one project-specific checker. Rules are stateless; Check is
// called once per loaded package.
type Rule interface {
	// ID is the short name used in reports and suppressions.
	ID() string
	// Doc is a one-line description of what the rule enforces.
	Doc() string
	// Check reports the rule's findings in the package.
	Check(p *Package) []Finding
}

// Package is one loaded, type-checked package as the rules see it.
// Test files are never loaded: the golden and race suites own test
// hygiene, and fixtures deliberately violate rules.
type Package struct {
	// Rel is the module-relative directory: "" for the module root,
	// "internal/game", "cmd/etlint", ... Rules use it to scope
	// themselves (deterministic core, cmd, internal).
	Rel string
	// Path is the import path the package was type-checked under; the
	// call graph uses it to map cross-package objects back to Rel.
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Fset positions every node in Files.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, in filename order.
	Files []*ast.File
	// Pkg and Info carry go/types results for the files.
	Pkg  *types.Package
	Info *types.Info
}

// corePaths is the deterministic core: the packages whose output must
// be bit-identical for a fixed seed. detclock, maporder and floatcmp
// scope to these.
var corePaths = map[string]bool{
	"internal/game":        true,
	"internal/belief":      true,
	"internal/agents":      true,
	"internal/sampling":    true,
	"internal/fd":          true,
	"internal/experiments": true,
	"internal/errgen":      true,
	"internal/datagen":     true,
}

// Core reports whether the package is part of the deterministic core.
func (p *Package) Core() bool { return corePaths[p.Rel] }

// Internal reports whether the package lives under internal/.
func (p *Package) Internal() bool {
	return p.Rel == "internal" || strings.HasPrefix(p.Rel, "internal/")
}

// Cmd reports whether the package is a command under cmd/.
func (p *Package) Cmd() bool { return strings.HasPrefix(p.Rel, "cmd/") }

// pkgSel resolves e as a selection on an imported package identifier
// (e.g. rand.Intn with "math/rand" imported) and returns the imported
// package's path and the selected name. Aliased imports resolve to the
// real path; shadowed identifiers do not resolve at all.
func (p *Package) pkgSel(e ast.Expr) (path, name string, ok bool) {
	sel, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// posOf converts a node position to a Finding location.
func (p *Package) posOf(n ast.Node) (string, int, int) {
	pos := p.Fset.Position(n.Pos())
	return pos.Filename, pos.Line, pos.Column
}

// finding builds a Finding at n.
func (p *Package) finding(rule string, n ast.Node, format string, args ...any) Finding {
	file, line, col := p.posOf(n)
	return Finding{Rule: rule, File: file, Line: line, Col: col, Message: fmt.Sprintf(format, args...)}
}

// ModuleRule is a rule that needs the interprocedural Module view —
// call graph and per-function summaries — instead of one package at a
// time. Its Check method returns nil; Run calls CheckModule once over
// the whole loaded set.
type ModuleRule interface {
	Rule
	CheckModule(m *Module) []Finding
}

// AllRules returns the full registry in reporting order: the
// per-function AST rules first, then the interprocedural rules.
func AllRules() []Rule {
	return []Rule{
		detRand{},
		detClock{},
		mapOrder{},
		lockedField{},
		printClean{},
		floatCmp{},
		scratchAlias{},
		lockOrder{},
		goroLeak{},
		chanLock{},
		ctxFlow{},
		errKind{},
	}
}

// RulesByID resolves a subset of rule IDs, erroring on unknown names.
func RulesByID(ids []string) ([]Rule, error) {
	byID := make(map[string]Rule)
	for _, r := range AllRules() {
		byID[r.ID()] = r
	}
	out := make([]Rule, 0, len(ids))
	for _, id := range ids {
		r, ok := byID[strings.TrimSpace(id)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q", id)
		}
		out = append(out, r)
	}
	return out, nil
}

// Run applies the rules to every package, drops suppressed findings,
// adds findings for malformed and stale suppressions, and returns
// everything sorted by position.
func Run(pkgs []*Package, rules []Rule) []Finding {
	fs, _ := RunAudit(pkgs, rules)
	return fs
}

// AuditRecord is one etlint:ignore directive as `etlint -audit`
// reports it: where it sits, what it suppresses, the written reason,
// and whether it actually covered a finding in this run.
type AuditRecord struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
	Used   bool   `json:"used"`
}

// RunAudit is Run plus the suppression audit trail. Per-package rules
// fan out across GOMAXPROCS workers (rules are stateless and the
// type-checked packages are read-only here); the interprocedural rules
// run once over a Module built from the full set. A well-formed
// directive whose rule ran but covered nothing is reported as stale —
// dead suppressions hide future regressions.
func RunAudit(pkgs []*Package, rules []Rule) ([]Finding, []AuditRecord) {
	sup := &suppressions{}
	var out []Finding
	for _, p := range pkgs {
		out = append(out, sup.scan(p)...)
	}

	var perPkg []Rule
	var modRules []ModuleRule
	for _, r := range rules {
		if mr, ok := r.(ModuleRule); ok {
			modRules = append(modRules, mr)
		} else {
			perPkg = append(perPkg, r)
		}
	}

	results := make([][]Finding, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range pkgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for _, r := range perPkg {
				results[i] = append(results[i], r.Check(pkgs[i])...)
			}
		}(i)
	}
	wg.Wait()
	for _, fs := range results {
		for _, f := range fs {
			if !sup.covers(f) {
				out = append(out, f)
			}
		}
	}

	if len(modRules) > 0 {
		m := NewModule(pkgs)
		for _, r := range modRules {
			for _, f := range r.CheckModule(m) {
				if !sup.covers(f) {
					out = append(out, f)
				}
			}
		}
	}

	ran := make(map[string]bool, len(rules))
	for _, r := range rules {
		ran[r.ID()] = true
	}
	for _, d := range sup.all {
		if ran[d.rule] && !d.used {
			out = append(out, Finding{
				Rule: "suppress", File: d.file, Line: d.line, Col: d.col,
				Message: "etlint:ignore " + d.rule + " suppresses nothing; delete the stale directive",
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})

	audit := make([]AuditRecord, 0, len(sup.all))
	for _, d := range sup.all {
		audit = append(audit, AuditRecord{File: d.file, Line: d.line, Rule: d.rule, Reason: d.reason, Used: d.used})
	}
	sort.Slice(audit, func(i, j int) bool {
		a, b := audit[i], audit[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return out, audit
}
