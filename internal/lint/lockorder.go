package lint

import (
	"go/token"
	"sort"
)

// lockOrder flags lock acquisitions that invert the declared partial
// order of the serving core (DESIGN §12) and cycles among undeclared
// lock classes. The order is inferred from actual call paths: a direct
// nested Lock is a pair, and a call made while holding a lock pairs
// the held class with everything the callee may transitively acquire
// (go statements excluded — a spawned goroutine locks on its own
// stack).
type lockOrder struct{}

func (lockOrder) ID() string { return "lockorder" }
func (lockOrder) Doc() string {
	return "lock acquisition must follow the declared shard→pool→entry partial order; cycles and inversions are flagged"
}
func (lockOrder) Check(p *Package) []Finding { return nil }

// lockLevels encodes DESIGN §12's per-shard lock order as the expected
// partial order: a lock may only be acquired while holding locks of
// strictly lower level. entry locks are coarse session locks and come
// first; pool and manager metadata locks sit above them; the shard map
// lock above those; the leaf metadata locks (pool registry, stream
// registry) are taken last and never held across other acquisitions.
// Classes absent from the table participate only in cycle detection.
var lockLevels = map[lockClass]int{
	"internal/service|entry.mu":       0,
	"internal/service|labelPool.mu":   10,
	"internal/service|Manager.mu":     10,
	"internal/service|shard.mu":       20,
	"internal/service|shard.poolMu":   30,
	"internal/service|shard.streamMu": 30,
}

// lockPair is one observed "acquired b while holding a" fact.
type lockPair struct {
	held, acq lockClass
	pos       token.Pos
	pkg       *Package
	via       string // "" for a direct acquire, the callee key for a call
}

func (lockOrder) CheckModule(m *Module) []Finding {
	var pairs []lockPair
	for _, n := range m.order {
		for _, a := range n.sum.acquires {
			for _, h := range a.held {
				pairs = append(pairs, lockPair{held: h, acq: a.class, pos: a.pos, pkg: n.Pkg})
			}
		}
		for _, e := range n.Edges {
			if e.Kind == EdgeGo || e.To == nil || len(e.Held) == 0 {
				continue
			}
			acq := make([]lockClass, 0, len(m.ta[e.To]))
			for c := range m.ta[e.To] {
				acq = append(acq, c)
			}
			sort.Slice(acq, func(i, j int) bool { return acq[i] < acq[j] })
			for _, c := range acq {
				for _, h := range e.Held {
					if h == c && e.To == n {
						continue // direct recursion re-reports the same site
					}
					pairs = append(pairs, lockPair{held: h, acq: c, pos: e.Pos, pkg: n.Pkg, via: string(e.To.Key)})
				}
			}
		}
	}

	// Pair graph for cycle detection among classes without a declared
	// level: acq reaching back to held means the order is cyclic.
	succ := make(map[lockClass][]lockClass)
	for _, p := range pairs {
		succ[p.held] = append(succ[p.held], p.acq)
	}
	reaches := func(from, to lockClass) bool {
		seen := map[lockClass]bool{from: true}
		stack := []lockClass{from}
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nx := range succ[c] {
				if nx == to {
					return true
				}
				if !seen[nx] {
					seen[nx] = true
					stack = append(stack, nx)
				}
			}
		}
		return false
	}

	var out []Finding
	seen := make(map[string]bool)
	report := func(p lockPair, format string, args ...any) {
		f := findingAt(p.pkg, p.pos, "lockorder", format, args...)
		key := f.File + "|" + string(p.held) + "|" + string(p.acq) + "|" + f.Message
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, f)
	}
	for _, p := range pairs {
		hl, hasHL := lockLevels[p.held]
		al, hasAL := lockLevels[p.acq]
		switch {
		case p.held == p.acq:
			if p.via == "" {
				report(p, "re-acquires %s while already holding it (self-deadlock)", p.acq.display())
			} else {
				report(p, "call to %s may re-acquire %s already held here (self-deadlock)", p.via, p.acq.display())
			}
		case hasHL && hasAL:
			if al <= hl {
				if p.via == "" {
					report(p, "acquires %s while holding %s — inverts the declared lock order (DESIGN §12)", p.acq.display(), p.held.display())
				} else {
					report(p, "call to %s may acquire %s while %s is held — inverts the declared lock order (DESIGN §12)", p.via, p.acq.display(), p.held.display())
				}
			}
		default:
			// No declared order: flag only when the pair closes a cycle.
			if reaches(p.acq, p.held) {
				if p.via == "" {
					report(p, "acquires %s while holding %s, and the reverse order also occurs — lock-order cycle", p.acq.display(), p.held.display())
				} else {
					report(p, "call to %s may acquire %s while %s is held, and the reverse order also occurs — lock-order cycle", p.via, p.acq.display(), p.held.display())
				}
			}
		}
	}
	return out
}
