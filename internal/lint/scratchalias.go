package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// scratchAlias flags methods in the deterministic core that return an
// alias of a receiver scratch field: a slice, map or pointer field that
// the type reuses across calls (the allocation-discipline idiom — see
// DESIGN.md §10). A caller holding such a return value sees it silently
// overwritten by the next call on the same receiver, a bug that only
// surfaces as wrong data, never as a crash.
//
// A field counts as scratch when its own name, its struct type's name,
// or its doc/line comment mentions "scratch". A doc comment introducing
// a field group ("// Scan scratch, reused across calls.") covers the
// undocumented fields that follow it until the next documented field.
//
// Methods that intentionally hand out a scratch buffer for immediate,
// non-retained use justify it with //etlint:ignore scratchalias — the
// suppression is the audit trail for every escaping buffer.
type scratchAlias struct{}

func (scratchAlias) ID() string { return "scratchalias" }

func (scratchAlias) Doc() string {
	return "methods must not return aliases of receiver scratch buffers; copy, or justify the escape"
}

func (r scratchAlias) Check(p *Package) []Finding {
	if !p.Core() {
		return nil
	}
	scratch := scratchFields(p)
	if len(scratch) == 0 {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			recv := receiverObj(p, fn)
			if recv == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					if obj := aliasedScratch(p, res, recv, scratch); obj != nil {
						out = append(out, p.finding(r.ID(), res,
							"returns an alias of receiver scratch field %s, which the next call overwrites; return a copy, or justify with //etlint:ignore scratchalias <reason>",
							obj.Name()))
					}
				}
				return true
			})
		}
	}
	return out
}

// scratchFields collects the package's scratch-buffer struct fields. A
// doc comment on a field extends to the undocumented fields after it
// (field groups share one introduction), so "// Scan scratch" covers
// the whole block it heads.
func scratchFields(p *Package) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			typeIsScratch := mentionsScratch(ts.Name.Name)
			groupDoc := false
			for _, field := range st.Fields.List {
				if field.Doc != nil {
					groupDoc = mentionsScratch(field.Doc.Text())
				}
				isScratch := typeIsScratch || groupDoc ||
					(field.Comment != nil && mentionsScratch(field.Comment.Text()))
				for _, name := range field.Names {
					if isScratch || mentionsScratch(name.Name) {
						if obj := p.Info.Defs[name]; obj != nil {
							out[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return out
}

func mentionsScratch(s string) bool {
	return strings.Contains(strings.ToLower(s), "scratch")
}

// receiverObj resolves the method's named receiver variable, or nil for
// an unnamed receiver.
func receiverObj(p *Package, fn *ast.FuncDecl) types.Object {
	if len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	name := fn.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	return p.Info.Defs[name]
}

// aliasedScratch reports the scratch field object that res aliases, or
// nil. It unwraps parens and re-slicings (buf[:n] still aliases buf)
// down to a recv.field selection of reference type. Indexing is not
// unwrapped: scratch[i] on a slice of values is a copy, not an alias.
func aliasedScratch(p *Package, res ast.Expr, recv types.Object, scratch map[types.Object]bool) types.Object {
	if !refLike(p.Info.TypeOf(res)) {
		return nil
	}
	for {
		switch e := res.(type) {
		case *ast.ParenExpr:
			res = e.X
		case *ast.SliceExpr:
			res = e.X
		default:
			sel, ok := res.(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || p.Info.ObjectOf(id) != recv {
				return nil
			}
			obj := p.Info.ObjectOf(sel.Sel)
			if obj == nil || !scratch[obj] {
				return nil
			}
			return obj
		}
	}
}

// refLike reports whether t shares backing storage when copied: slices,
// maps, pointers and channels alias; values (including structs and
// arrays) do not.
func refLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}
