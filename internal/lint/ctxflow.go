package lint

import (
	"go/ast"
)

// ctxFlow keeps cancellation threaded: context.Background() and
// context.TODO() may be manufactured only in cmd/ packages (process
// roots) and tests. Library code must thread the caller's context —
// a manufactured root silently detaches session work from request
// cancellation and server shutdown.
//
// One shape is exempt: the compatibility wrapper `func F(...) {
// return FContext(context.Background(), ...) }` whose whole body is
// the single forwarding call. But even a wrapper is flagged when it is
// synchronously reachable from a function that has a context — the
// caller holds a context and chose the API that drops it.
type ctxFlow struct{}

func (ctxFlow) ID() string { return "ctxflow" }
func (ctxFlow) Doc() string {
	return "context.Background()/TODO() only in cmd/ and tests; thread the caller's context instead"
}
func (ctxFlow) Check(p *Package) []Finding { return nil }

func (ctxFlow) CheckModule(m *Module) []Finding {
	// Functions synchronously reachable from a context-bearing
	// function. go edges are excluded: a detached goroutine's root is
	// a deliberate lifetime boundary, judged at its spawn site instead.
	reach := make(map[*FuncNode]bool)
	var stack []*FuncNode
	for _, n := range m.order {
		if n.sum.hasCtxParam {
			reach[n] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Edges {
			if e.Kind == EdgeGo || e.To == nil || reach[e.To] {
				continue
			}
			reach[e.To] = true
			stack = append(stack, e.To)
		}
	}

	var out []Finding
	for _, n := range m.order {
		if n.Pkg.Cmd() {
			continue
		}
		for _, site := range n.sum.ctxMakes {
			if isCtxWrapper(n) && !reach[n] {
				continue
			}
			what := "context." + site.name + "()"
			switch {
			case isCtxWrapper(n):
				out = append(out, findingAt(n.Pkg, site.pos, "ctxflow",
					"%s in wrapper %s reachable from context-bearing code; callers hold a context — thread it via the Context variant", what, n.Key))
			case n.sum.hasCtxParam:
				out = append(out, findingAt(n.Pkg, site.pos, "ctxflow",
					"%s manufactured although %s already has a context parameter; thread it", what, n.Key))
			default:
				out = append(out, findingAt(n.Pkg, site.pos, "ctxflow",
					"%s manufactured outside cmd/; thread a caller context or suppress with the lifetime rationale", what))
			}
		}
	}
	return out
}

// isCtxWrapper matches the sanctioned compatibility shape: a declared
// function whose entire body is one statement forwarding to
// <Name>Context with a manufactured root context.
func isCtxWrapper(n *FuncNode) bool {
	if n.Decl == nil || n.Decl.Body == nil || len(n.Decl.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := n.Decl.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		call, _ = unparen(s.Results[0]).(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = unparen(s.X).(*ast.CallExpr)
	}
	if call == nil {
		return false
	}
	var callee string
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		callee = fun.Name
	case *ast.SelectorExpr:
		callee = fun.Sel.Name
	default:
		return false
	}
	return callee == n.Name+"Context"
}
