package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// mapOrder flags range-over-map loops in the deterministic core whose
// bodies accumulate into order-sensitive state: appending to a slice
// declared outside the loop, or compound-assigning (+= and friends)
// onto an outer float or string. Go randomizes map iteration order, so
// such a loop produces a different slice ordering — or a different
// float sum, since float addition is not associative — on every run.
//
// The canonical fix is the collect-then-sort idiom, which the rule
// recognizes: if every slice the loop appends into is passed to a
// sort.* or slices.Sort* call later in the same block, the loop is
// clean. Order-insensitive accumulation (integer counters, writes into
// another map, per-iteration locals) is never flagged.
type mapOrder struct{}

func (mapOrder) ID() string { return "maporder" }

func (mapOrder) Doc() string {
	return "range over a map in the deterministic core must not leak iteration order; sort what it collects"
}

func (r mapOrder) Check(p *Package) []Finding {
	var out []Finding
	if !p.Core() {
		return nil
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch s := n.(type) {
			case *ast.BlockStmt:
				list = s.List
			case *ast.CaseClause:
				list = s.Body
			case *ast.CommClause:
				list = s.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs, isRange := stmt.(*ast.RangeStmt)
				if !isRange || !isMap(p.Info.TypeOf(rs.X)) {
					continue
				}
				if f, bad := r.analyze(p, rs, list[i+1:]); bad {
					out = append(out, f)
				}
			}
			return true
		})
	}
	return out
}

// analyze inspects one map-range loop; following are the statements
// after the loop in its enclosing block, searched for absolving sorts.
func (r mapOrder) analyze(p *Package, rs *ast.RangeStmt, following []ast.Stmt) (Finding, bool) {
	appended := make(map[types.Object]bool) // outer slices appended to
	direct := make(map[types.Object]bool)   // outer floats/strings accumulated into
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				if obj := outerVar(p, lhs, rs); obj != nil && orderSensitive(obj.Type()) {
					direct[obj] = true
				}
			}
		case token.ASSIGN, token.DEFINE:
			for i, rhs := range as.Rhs {
				if !isAppendCall(p, rhs) || i >= len(as.Lhs) {
					continue
				}
				if obj := outerVar(p, as.Lhs[i], rs); obj != nil {
					appended[obj] = true
				}
			}
		}
		return true
	})
	var names []string
	for obj := range direct {
		names = append(names, obj.Name())
	}
	for obj := range appended {
		if !sortedAfter(p, obj, following) {
			names = append(names, obj.Name())
		}
	}
	if len(names) == 0 {
		return Finding{}, false
	}
	sort.Strings(names)
	return p.finding(r.ID(), rs,
		"map iteration order leaks into %s; sort the collected slice after the loop (or range over sorted keys), or justify with //etlint:ignore maporder <reason>",
		strings.Join(names, ", ")), true
}

// outerVar resolves e to a variable declared outside the range
// statement, or nil.
func outerVar(p *Package, e ast.Expr, rs *ast.RangeStmt) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return nil // declared inside the loop: per-iteration state
	}
	return obj
}

// orderSensitive reports whether compound accumulation into t depends
// on iteration order: float addition is non-associative and string
// concatenation is positional. Integer arithmetic is commutative and
// exact, so counters stay legal.
func orderSensitive(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsString) != 0
}

func isAppendCall(p *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether any statement after the loop calls into
// sort.* or slices.Sort* with obj among its (possibly nested)
// arguments — the collect-then-sort idiom.
func sortedAfter(p *Package, obj types.Object, following []ast.Stmt) bool {
	for _, stmt := range following {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			path, name, ok := p.pkgSel(call.Fun)
			if !ok {
				return true
			}
			isSort := path == "sort" || (path == "slices" && strings.HasPrefix(name, "Sort"))
			if !isSort {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
