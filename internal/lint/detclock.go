package lint

import "go/ast"

// detClock forbids wall-clock reads in the deterministic core. MAE,
// trainer payoff and detection F1 are only comparable across runs
// because a fixed seed replays the exact same trajectory; a time.Now
// in a scoring or sampling path silently couples results to the
// machine. Service and persistence layers are exempt — they legitimately
// timestamp (TTL sweeps, lastUsed bumps).
type detClock struct{}

func (detClock) ID() string { return "detclock" }

func (detClock) Doc() string {
	return "no time.Now/Since/Until in the deterministic core (internal/{game,belief,agents,sampling,fd,experiments,errgen,datagen})"
}

// clockFns are the package time functions that read the wall clock.
var clockFns = map[string]bool{"Now": true, "Since": true, "Until": true}

func (r detClock) Check(p *Package) []Finding {
	if !p.Core() {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, isSel := n.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			path, name, ok := p.pkgSel(sel)
			if !ok || path != "time" || !clockFns[name] {
				return true
			}
			out = append(out, p.finding(r.ID(), n,
				"time.%s reads the wall clock in the deterministic core; inject a clock or move the timing out of the core", name))
			return true
		})
	}
	return out
}
