package lint

import "go/ast"

// printClean forbids writing to the process's stdout from library code
// under internal/. Commands own the terminal; a library that prints
// corrupts machine-readable output (cmd/benchjson parses bench streams,
// etlabel and fddiscover emit line protocols) and cannot be tested
// through an io.Writer. Libraries take a writer or stay silent.
type printClean struct{}

func (printClean) ID() string { return "printclean" }

func (printClean) Doc() string {
	return "no fmt.Print*/os.Stdout writes under internal/; write to an injected io.Writer"
}

var printFns = map[string]bool{"Print": true, "Printf": true, "Println": true}

func (r printClean) Check(p *Package) []Finding {
	if !p.Internal() {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, isSel := n.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			path, name, ok := p.pkgSel(sel)
			if !ok {
				return true
			}
			switch {
			case path == "fmt" && printFns[name]:
				out = append(out, p.finding(r.ID(), n,
					"fmt.%s writes to process stdout from library code; take an io.Writer instead", name))
			case path == "os" && name == "Stdout":
				out = append(out, p.finding(r.ID(), n,
					"os.Stdout referenced in library code; take an io.Writer instead"))
			}
			return true
		})
	}
	return out
}
