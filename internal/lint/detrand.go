package lint

import "go/ast"

// detRand forbids math/rand's package-global randomness outside cmd/
// (and test files, which are never loaded). The project's determinism
// contract is that every stochastic choice flows through a threaded,
// explicitly seeded generator (*stats.RNG, or a *rand.Rand built from
// an explicit source); the top-level rand functions draw from hidden
// global state, so two runs of the same seed diverge and golden
// trajectory tests go flaky.
//
// The one sanctioned exception is internal/persist/faulty, whose
// fault-injecting store draws a fresh chaos seed from the global
// source when Config.Seed is zero — entropy is the point there, and
// the drawn seed is recorded via Store.Seed() so any failing schedule
// replays exactly. That single call site carries a reasoned
// "//etlint:ignore detrand" suppression rather than a rule carve-out,
// so any new draw from the global source still gets flagged.
type detRand struct{}

func (detRand) ID() string { return "detrand" }

func (detRand) Doc() string {
	return "no math/rand top-level functions outside cmd/; thread a seeded generator instead (sole sanctioned exception: the suppressed chaos-seed draw in internal/persist/faulty)"
}

// randOK are the math/rand (and /v2) names that do not touch the
// global source: constructors taking an explicit source or seed, and
// the types themselves.
var randOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
	"Rand": true, "Source": true, "Source64": true,
	"Zipf": true, "PCG": true, "ChaCha8": true,
}

func (r detRand) Check(p *Package) []Finding {
	if p.Cmd() {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, isSel := n.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			path, name, ok := p.pkgSel(sel)
			if !ok || (path != "math/rand" && path != "math/rand/v2") {
				return true
			}
			if randOK[name] {
				return true
			}
			out = append(out, p.finding(r.ID(), n,
				"rand.%s draws from the package-global source; thread an explicitly seeded *rand.Rand or stats.RNG instead", name))
			return true
		})
	}
	return out
}
