// Package bad exercises printclean: library code that owns the
// process's stdout.
package bad

import (
	"fmt"
	"os"
)

// Report prints from library code.
func Report(n int) {
	fmt.Println("n =", n)             // want printclean
	fmt.Printf("n = %d\n", n)         // want printclean
	fmt.Fprintf(os.Stdout, "%d\n", n) // want printclean
}
