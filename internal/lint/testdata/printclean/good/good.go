// Package good shows the accepted shape: output goes through an
// injected io.Writer (stderr diagnostics are also fine).
package good

import (
	"fmt"
	"io"
	"os"
)

// Report writes to the caller's writer.
func Report(w io.Writer, n int) {
	fmt.Fprintf(w, "%d\n", n)
}

// Complain writes diagnostics to stderr, which stays legal.
func Complain(err error) {
	fmt.Fprintln(os.Stderr, "bad:", err)
}
