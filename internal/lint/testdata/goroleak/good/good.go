// Package good holds joined-goroutine patterns that must stay clean:
// same-function WaitGroup join, a cross-method join through a struct
// field, and an audited suppression.
package good

import "sync"

// local spawns and joins within one function.
func local() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// worker joins its drain goroutine from Shutdown — the labelpool
// shape: spawn and Wait live in different methods but share wg.
type worker struct {
	wg sync.WaitGroup
}

func (w *worker) start() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
	}()
}

func (w *worker) Shutdown() {
	w.wg.Wait()
}

// audited documents why its goroutine is deliberately detached.
func audited() {
	go func() {}() //etlint:ignore goroleak fixture: deliberately detached, exercising the audited-suppression path
}
