// Package cmdexempt shows goroleak is scoped to internal/: a cmd/
// binary may detach goroutines for its own lifetime.
package cmdexempt

func main0() {
	go func() {}()
}
