// Package bad exercises goroleak: spawned goroutines nothing ever
// joins.
package bad

import "sync"

// fireAndForget spawns a goroutine with no join path at all.
func fireAndForget(work func()) {
	go work() // want goroleak
}

// litLeak spawns a literal that signals no one.
func litLeak() {
	done := make(chan struct{})
	go func() { // want goroleak
		close(done)
	}()
}

// doneNoWait calls Done on a WaitGroup no function ever Waits on.
func doneNoWait(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want goroleak
		defer wg.Done()
	}()
}
