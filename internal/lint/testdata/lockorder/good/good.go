// Package good holds lock-order patterns that must stay clean: the
// declared entry→pool→shard acquisition order, release-before-acquire,
// one-way undeclared nesting, and TryLock (untracked by design).
package good

import "sync"

type entry struct{ mu sync.Mutex }
type labelPool struct{ mu sync.Mutex }
type shard struct{ mu sync.Mutex }

// declaredOrder acquires strictly up the declared levels.
func declaredOrder(e *entry, p *labelPool, sh *shard) {
	e.mu.Lock()
	p.mu.Lock()
	sh.mu.Lock()
	sh.mu.Unlock()
	p.mu.Unlock()
	e.mu.Unlock()
}

// handoff releases the pool lock before taking the entry lock — the
// real drain path's shape.
func handoff(p *labelPool, e *entry) {
	p.mu.Lock()
	p.mu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

// journal and index nest one way only: no cycle, no finding.
type journal struct{ mu sync.Mutex }
type index struct{ mu sync.Mutex }

func oneWay(j *journal, ix *index) {
	j.mu.Lock()
	ix.mu.Lock()
	ix.mu.Unlock()
	j.mu.Unlock()
}

// opportunistic uses TryLock, which cannot deadlock and is untracked.
func opportunistic(p *labelPool, e *entry) {
	p.mu.Lock()
	if e.mu.TryLock() {
		e.mu.Unlock()
	}
	p.mu.Unlock()
}
