// Package bad exercises lockorder: inversions of the declared
// shard→pool→entry order (DESIGN §12), an undeclared cycle, and a
// self re-acquire — directly and through a callee.
package bad

import "sync"

// entry mirrors internal/service.entry (declared level 0).
type entry struct{ mu sync.Mutex }

// labelPool mirrors internal/service.labelPool (declared level 10).
type labelPool struct{ mu sync.Mutex }

// drainInverted takes the entry lock while still holding the pool
// lock — the inverse of the real drain path, which releases p.mu
// before acquiring the session entry.
func drainInverted(p *labelPool, e *entry) {
	p.mu.Lock()
	e.mu.Lock() // want lockorder
	e.mu.Unlock()
	p.mu.Unlock()
}

// lockEntry is the indirection for the interprocedural case.
func lockEntry(e *entry) {
	e.mu.Lock()
	e.mu.Unlock()
}

// drainIndirect commits the same inversion through a callee: the
// summary of lockEntry carries entry.mu into the call edge.
func drainIndirect(p *labelPool, e *entry) {
	p.mu.Lock()
	lockEntry(e) // want lockorder
	p.mu.Unlock()
}

// doubleLock re-acquires a mutex it already holds.
func doubleLock(e *entry) {
	e.mu.Lock()
	e.mu.Lock() // want lockorder
	e.mu.Unlock()
	e.mu.Unlock()
}

// journal and index are undeclared classes: no level in DESIGN §12,
// so only a cycle between them is a finding.
type journal struct{ mu sync.Mutex }
type index struct{ mu sync.Mutex }

func journalThenIndex(j *journal, ix *index) {
	j.mu.Lock()
	ix.mu.Lock() // want lockorder
	ix.mu.Unlock()
	j.mu.Unlock()
}

func indexThenJournal(j *journal, ix *index) {
	ix.mu.Lock()
	j.mu.Lock() // want lockorder
	j.mu.Unlock()
	ix.mu.Unlock()
}
