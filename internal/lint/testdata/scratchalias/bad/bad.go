// Package bad exercises scratchalias: methods handing out aliases of
// receiver scratch buffers that the next call overwrites.
package bad

// scorer reuses buffers across calls.
type scorer struct {
	// scores is the per-call scoring scratch.
	scores []float64
	// Scan scratch, reused across calls.
	flags []bool
	names []string
	out   []int
	buf   map[string]int // comment without the magic word
}

// Scores returns the scratch directly.
func (s *scorer) Scores() []float64 {
	return s.scores // want scratchalias
}

// Head reslices the scratch — still the same backing array.
func (s *scorer) Head(n int) []float64 {
	return (s.scores[:n]) // want scratchalias
}

// Names inherits the group doc two fields up.
func (s *scorer) Names() []string {
	return s.names // want scratchalias
}

// pools is scratch by type name: every field counts.
type poolScratch struct {
	cnt []int
}

func (p *poolScratch) Counts() []int {
	return p.cnt // want scratchalias
}
