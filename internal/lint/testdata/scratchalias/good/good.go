// Package good shows the clean counterparts: copies escape, values
// escape, non-scratch state escapes, and justified aliases are audited.
package good

// scorer reuses buffers across calls.
type scorer struct {
	// scores is the per-call scoring scratch.
	scores []float64
	// results is retained output the caller may hold.
	results []float64
	total   float64
}

// Scores returns a caller-owned copy of the scratch.
func (s *scorer) Scores() []float64 {
	out := make([]float64, len(s.scores))
	copy(out, s.scores)
	return out
}

// Results is long-lived state; aliasing it is the contract.
func (s *scorer) Results() []float64 {
	return s.results
}

// Total returns a value — copies cannot alias.
func (s *scorer) Total() float64 {
	return s.total
}

// One returns an element of the scratch, which is a copy for value
// element types.
func (s *scorer) One(i int) float64 {
	return s.scores[i]
}

// Raw deliberately hands out the buffer for immediate use and says so.
func (s *scorer) Raw() []float64 {
	return s.scores //etlint:ignore scratchalias consumed before the next call by contract
}
