// Package noncore is outside the deterministic core: scratchalias does
// not apply (services own their buffer contracts).
package noncore

type scorer struct {
	// scores is the per-call scoring scratch.
	scores []float64
}

func (s *scorer) Scores() []float64 {
	return s.scores
}
