// Package good holds a healthy error envelope: every produced
// sentinel is mapped, every registered kind has a producing path
// (including via the context guard and the default case), and every
// emitted kind is registered.
package good

import (
	"context"
	"errors"
)

var (
	ErrBad      = errors.New("bad request")
	ErrNotFound = errors.New("not found")
)

const (
	KindBad      = "bad_request"
	KindNotFound = "not_found"
	KindTimeout  = "timeout"
	KindInternal = "internal"
)

// KindInfo mirrors the service registry row.
type KindInfo struct {
	Kind   string
	Status int
}

var kindRegistry = []KindInfo{
	{KindBad, 400},
	{KindNotFound, 404},
	{KindTimeout, 504},
	{KindInternal, 500},
}

func errorKind(err error) string {
	switch {
	case errors.Is(err, ErrBad):
		return KindBad
	case errors.Is(err, ErrNotFound):
		return KindNotFound
	case errors.Is(err, context.DeadlineExceeded):
		return KindTimeout
	default:
		return KindInternal
	}
}

func failBad() error { return ErrBad }

func lookup(ok bool) error {
	if !ok {
		return ErrNotFound
	}
	return nil
}
