// Package bad exercises errkind: a produced sentinel the classifier
// never maps, a registered kind nothing can produce, and a kind the
// classifier emits without registering.
package bad

import "errors"

var (
	// ErrBad is mapped and produced: the healthy path.
	ErrBad = errors.New("bad request")
	// ErrOrphan is produced below but errorKind never tests it.
	ErrOrphan = errors.New("orphan failure")
	// ErrDormant is mapped but nothing produces it, so its kind is dead.
	ErrDormant = errors.New("dormant failure")
	// ErrTransient guards the unregistered-kind case.
	ErrTransient = errors.New("transient failure")
)

const (
	KindBad      = "bad_request"
	KindDormant  = "dormant"
	KindInternal = "internal"
)

// KindInfo mirrors the service registry row.
type KindInfo struct {
	Kind   string
	Status int
}

var kindRegistry = []KindInfo{
	{KindBad, 400},
	{KindDormant, 410}, // want errkind
	{KindInternal, 500},
}

func errorKind(err error) string {
	switch {
	case errors.Is(err, ErrBad):
		return KindBad
	case errors.Is(err, ErrDormant):
		return KindDormant
	case errors.Is(err, ErrTransient):
		return "surprise" // want errkind
	default:
		return KindInternal
	}
}

func failBad() error { return ErrBad }

func failOrphan() error { return ErrOrphan } // want errkind
