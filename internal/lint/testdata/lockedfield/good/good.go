// Package good shows the accepted shapes for documented lock guards.
package good

import "sync"

// Counter is a lock-guarded counter.
type Counter struct {
	mu sync.Mutex
	// count is the number of observed events; guarded by mu.
	count int
}

// Add locks before touching count.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
}

// snapshotLocked uses the caller-holds-the-lock convention.
func (c *Counter) snapshotLocked() int {
	return c.count
}

// Gauge uses a reader lock for reads.
type Gauge struct {
	mu sync.RWMutex
	// value is the current reading; guarded by mu.
	value float64
}

// Get takes the read lock.
func (g *Gauge) Get() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.value
}

// Set takes the write lock.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.value = v
}
