// Package bad exercises lockedfield: a documented guard that a method
// ignores.
package bad

import "sync"

// Counter is a lock-guarded counter.
type Counter struct {
	mu sync.Mutex
	// count is the number of observed events; guarded by mu.
	count int
}

// Peek reads count without the lock.
func (c *Counter) Peek() int {
	return c.count // want lockedfield
}

// Bump writes count without the lock.
func (c *Counter) Bump() {
	c.count++ // want lockedfield
}
