// Package ok shows a well-formed suppression: rule ID plus a written
// reason, on the line above the finding it covers.
package ok

// Unset keeps the zero-value sentinel.
func Unset(sigma float64) bool {
	//etlint:ignore floatcmp zero value means unset; callers set sigma explicitly
	return sigma == 0
}

// Trailing suppressions on the flagged line itself also work.
func UnsetTrailing(tau float64) bool {
	return tau == 0 //etlint:ignore floatcmp zero value means unset
}
