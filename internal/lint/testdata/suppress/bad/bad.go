// Package bad exercises the suppression meta-rule: a malformed
// etlint:ignore is itself a finding and suppresses nothing.
package bad

// NoReason has a directive without a justification; the underlying
// floatcmp finding still fires.
func NoReason(x float64) bool {
	//etlint:ignore floatcmp
	return x == 0
}

// UnknownRule names a rule that does not exist.
func UnknownRule(x float64) bool {
	//etlint:ignore nosuchrule because reasons
	return x != 0
}

// Bare has neither rule nor reason.
func Bare(x float64) bool {
	//etlint:ignore
	return x == 1
}
