// Package bad exercises maporder: map iteration order leaking into
// order-sensitive accumulators.
package bad

// Keys returns map keys in iteration (i.e. random) order.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m { // want maporder
		keys = append(keys, k)
	}
	return keys
}

// Total sums floats in iteration order; float addition is not
// associative, so the result is run-dependent in the last bits.
func Total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want maporder
		sum += v
	}
	return sum
}

// Join concatenates values positionally.
func Join(m map[string]string) string {
	out := ""
	for _, v := range m { // want maporder
		out += v
	}
	return out
}

// Nested still counts: the append target lives outside the loop even
// with an if in between.
func Nested(m map[string]int) []int {
	var big []int
	for _, v := range m { // want maporder
		if v > 10 {
			big = append(big, v)
		}
	}
	return big
}
