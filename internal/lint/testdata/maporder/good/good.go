// Package good shows the accepted shapes around ranging over maps in
// the deterministic core.
package good

import "sort"

// Keys collects then sorts — the canonical idiom the rule recognizes.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Pairs sorts through sort.Slice; any sort.*/slices.Sort* call naming
// the collected slice absolves the loop.
func Pairs(m map[string]int) []string {
	var out []string
	for k, v := range m {
		if v > 0 {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Count is order-insensitive integer accumulation.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Sum over ints is commutative and exact.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes into another map: per-key, order-free.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Locals appends into per-iteration state only.
func Locals(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// Slices ranges over a slice, which iterates in index order.
func Slices(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}
