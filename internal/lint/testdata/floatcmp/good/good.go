// Package good shows the accepted shapes for float comparison in the
// deterministic core.
package good

import "math"

const eps = 1e-9

// Converged compares within an explicit epsilon.
func Converged(prev, next float64) bool {
	return math.Abs(prev-next) < eps
}

// Same compares integers, which are exact.
func Same(a, b int) bool {
	return a == b
}

// Folded compares two constants; that folds at compile time.
func Folded() bool {
	return 1.5 == 1.5
}

// Unset keeps a zero-value sentinel with a written justification.
func Unset(sigma float64) bool {
	//etlint:ignore floatcmp zero value means "unset"; callers assign literals, never arithmetic
	return sigma == 0
}

// Ordering comparisons are not equality and stay legal.
func Less(a, b float64) bool {
	return a < b
}
