// Package bad exercises floatcmp: exact equality on computed floats.
package bad

// Converged compares two computed floats exactly.
func Converged(prev, next float64) bool {
	return prev == next // want floatcmp
}

// Different negates the same mistake.
func Different(a, b float64) bool {
	return a != b // want floatcmp
}

// AgainstZero compares a runtime value to a literal; still exact.
func AgainstZero(x float64) bool {
	return x == 0 // want floatcmp
}

// Narrow applies to float32 too.
func Narrow(a, b float32) bool {
	return a == b // want floatcmp
}
