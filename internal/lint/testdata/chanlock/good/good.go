// Package good holds channel-under-lock patterns that must stay
// clean: release-before-block, non-blocking select, and channel ops
// on a goroutine's own stack.
package good

import "sync"

type box struct {
	mu sync.Mutex
	wg sync.WaitGroup
	ch chan int
}

// handoff releases the lock before blocking.
func (b *box) handoff(v int) {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- v
}

// tryNotify is non-blocking: select with a default arm.
func (b *box) tryNotify(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- v:
	default:
	}
}

// spawnDrain blocks only on the spawned goroutine's own stack; the
// caller's held set does not flow across a go edge.
func (b *box) spawnDrain() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		<-b.ch
	}()
}

// joinDrains waits for spawnDrain's goroutines (keeps goroleak quiet).
func (b *box) joinDrains() {
	b.wg.Wait()
}
