// Package exempt pins the audited exemption: entry.mu in
// internal/service may guard channel sends (the per-session lock is
// the session's scheduling point; see chanLockExempt).
package exempt

import "sync"

type entry struct {
	mu sync.Mutex
	ch chan int
}

func (e *entry) notify(v int) {
	e.mu.Lock()
	e.ch <- v
	e.mu.Unlock()
}
