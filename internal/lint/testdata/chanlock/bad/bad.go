// Package bad exercises chanlock: blocking channel operations and
// Waits while a mutex is held, directly and through a callee.
package bad

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

// sendLocked blocks on a channel send with mu held.
func (b *box) sendLocked(v int) {
	b.mu.Lock()
	b.ch <- v // want chanlock
	b.mu.Unlock()
}

// recvLocked blocks on a receive with mu held via defer-unlock.
func (b *box) recvLocked() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want chanlock
}

// waitLocked parks on a WaitGroup with mu held.
func (b *box) waitLocked(wg *sync.WaitGroup) {
	b.mu.Lock()
	wg.Wait() // want chanlock
	b.mu.Unlock()
}

// selectLocked blocks in a select with no default arm.
func (b *box) selectLocked() {
	b.mu.Lock()
	select { // want chanlock
	case v := <-b.ch:
		_ = v
	case b.ch <- 0:
	}
	b.mu.Unlock()
}

// drain blocks on its own; calling it under the lock is the
// interprocedural finding.
func (b *box) drain() {
	<-b.ch
}

func (b *box) drainLocked() {
	b.mu.Lock()
	b.drain() // want chanlock
	b.mu.Unlock()
}
