// Package noncore shows the scope boundary: service and persistence
// layers legitimately timestamp (TTL sweeps, lastUsed bumps), so
// detclock does not apply outside the deterministic core.
package noncore

import "time"

// Touch records a wall-clock timestamp.
func Touch() time.Time {
	return time.Now()
}
