// Package good shows the accepted shape: the clock is injected, so
// tests and replays control it.
package good

import "time"

// Timed carries its clock.
type Timed struct {
	now func() time.Time
}

// Stamp reads the injected clock.
func (t Timed) Stamp() time.Time {
	return t.now()
}
