// Package bad exercises detclock: wall-clock reads in the
// deterministic core couple results to the machine.
package bad

import "time"

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want detclock
}

// Age measures elapsed wall time.
func Age(t0 time.Time) time.Duration {
	return time.Since(t0) // want detclock
}

// Left reads the clock through Until.
func Left(deadline time.Time) time.Duration {
	return time.Until(deadline) // want detclock
}
