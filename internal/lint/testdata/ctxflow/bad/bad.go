// Package bad exercises ctxflow: contexts manufactured inside
// internal/ where a caller context exists or should be threaded.
package bad

import "context"

func use(ctx context.Context) { _ = ctx }

// hasParam manufactures a fresh context despite having one.
func hasParam(ctx context.Context) {
	use(context.Background()) // want ctxflow
}

// plain has no context parameter and is not a wrapper: internal/ code
// must thread, not manufacture.
func plain() {
	use(context.TODO()) // want ctxflow
}

// helper is sync-reachable from run (which has a context), so its
// manufactured context severs a live cancellation chain.
func run(ctx context.Context) {
	helper()
}

func helper() {
	use(context.Background()) // want ctxflow
}

// Drain looks like a root wrapper, but caller threads a context into
// the code that calls it — the wrapper exemption does not apply once
// a context could have been forwarded.
func Drain() {
	DrainContext(context.Background()) // want ctxflow
}

// DrainContext is the real implementation.
func DrainContext(ctx context.Context) {
	use(ctx)
}

func caller(ctx context.Context) {
	Drain()
}
