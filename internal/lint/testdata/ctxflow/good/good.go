// Package good holds context patterns that must stay clean: threading
// a caller context, a true root wrapper no context-bearing code calls,
// and derivation instead of manufacture.
package good

import (
	"context"
	"time"
)

func use(ctx context.Context) { _ = ctx }

// threaded forwards the caller's context.
func threaded(ctx context.Context) {
	use(ctx)
}

// derived builds on the caller's context rather than replacing it.
func derived(ctx context.Context) {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	use(tctx)
}

// Drain is a root convenience wrapper: a single forwarding statement,
// and nothing with a context calls it.
func Drain() {
	DrainContext(context.Background())
}

// DrainContext is the real implementation.
func DrainContext(ctx context.Context) {
	use(ctx)
}
