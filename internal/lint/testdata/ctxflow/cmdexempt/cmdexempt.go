// Package cmdexempt shows ctxflow is scoped out of cmd/: binaries own
// their process lifetime and may mint root contexts freely.
package cmdexempt

import "context"

func use(ctx context.Context) { _ = ctx }

func main0() {
	use(context.Background())
	use(context.TODO())
}
