// Package diamond is the call-graph unit-test fixture: a classic
// diamond (top → mid1/mid2 → bottom), an interface call resolved by
// CHA to both implementations, and go/defer edge kinds.
package diamond

// Store is the dispatch interface; both A and B implement it.
type Store interface {
	Put(s string) int
}

type A struct{}

func (A) Put(s string) int { return len(s) }

type B struct{}

func (B) Put(s string) int { return 0 }

// narrower has Put with a different signature: CHA must not match it.
type narrower struct{}

func (narrower) Put(n int) int { return n }

func top(st Store) int {
	left := mid1()
	right := mid2()
	return st.Put("x") + left + right
}

func mid1() int { return bottom() }

func mid2() int { return bottom() }

func bottom() int { return 1 }

func spawn() {
	go func() {
		bottom()
	}()
}

func cleanup() {
	defer bottom()
	bottom()
}
