// Package good shows the accepted shapes: randomness threaded as a
// *rand.Rand built from an explicit seed, never the global source.
package good

import "math/rand"

// Roll uses a threaded generator.
func Roll(rng *rand.Rand) int {
	return rng.Intn(6)
}

// NewRNG builds an explicitly seeded generator.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
