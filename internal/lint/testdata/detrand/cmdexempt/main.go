// Package main shows the cmd/ exemption: commands may use convenience
// randomness (jitter, ephemeral ports); determinism is a library
// contract.
package main

import "math/rand"

func main() {
	_ = rand.Intn(6)
}
