// Package bad exercises detrand: every draw from math/rand's hidden
// package-global source is a reproducibility leak.
package bad

import (
	mrand "math/rand"
	"math/rand"
)

// Roll draws from the global source.
func Roll() int {
	return rand.Intn(6) // want detrand
}

// Mix shuffles through the global source, aliased import included.
func Mix(xs []int) float64 {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want detrand
	return mrand.Float64()                                               // want detrand
}
