package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatCmp flags == and != between floating-point expressions in the
// deterministic core. Belief updates, MAE series and payoff sums are
// chains of float arithmetic; an exact comparison on their results is
// either dead (never equal) or a latent divergence between platforms.
// Compare against an explicit epsilon, or suppress with the reason the
// exact comparison is intentional (flag sentinels like "Degree == 0 is
// the unset zero value" are the classic legitimate case).
type floatCmp struct{}

func (floatCmp) ID() string { return "floatcmp" }

func (floatCmp) Doc() string {
	return "no ==/!= on floats in the deterministic core; use an epsilon or justify the exact comparison"
}

func (r floatCmp) Check(p *Package) []Finding {
	if !p.Core() {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, isBin := n.(*ast.BinaryExpr)
			if !isBin || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.Info.TypeOf(bin.X)) && !isFloat(p.Info.TypeOf(bin.Y)) {
				return true
			}
			// Two constants compare at compile time; that is arithmetic,
			// not a runtime equality on computed values.
			if p.Info.Types[bin.X].Value != nil && p.Info.Types[bin.Y].Value != nil {
				return true
			}
			out = append(out, p.finding(r.ID(), n,
				"exact float comparison (%s); computed floats are never reliably equal — use an epsilon or justify with //etlint:ignore floatcmp <reason>", bin.Op))
			return true
		})
	}
	return out
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
