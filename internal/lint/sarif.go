package lint

import "encoding/json"

// SARIF renders findings as a minimal SARIF 2.1.0 log — one run, one
// driver ("etlint"), one result per finding — so editors and code
// hosts that speak SARIF can ingest the reports without a converter.
func SARIF(findings []Finding, rules []Rule) ([]byte, error) {
	type sarifRule struct {
		ID               string            `json:"id"`
		ShortDescription map[string]string `json:"shortDescription"`
	}
	type artifactLocation struct {
		URI string `json:"uri"`
	}
	type region struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn"`
	}
	type physicalLocation struct {
		ArtifactLocation artifactLocation `json:"artifactLocation"`
		Region           region           `json:"region"`
	}
	type location struct {
		PhysicalLocation physicalLocation `json:"physicalLocation"`
	}
	type result struct {
		RuleID    string            `json:"ruleId"`
		RuleIndex int               `json:"ruleIndex"`
		Level     string            `json:"level"`
		Message   map[string]string `json:"message"`
		Locations []location        `json:"locations"`
	}
	type driver struct {
		Name  string      `json:"name"`
		Rules []sarifRule `json:"rules"`
	}
	type tool struct {
		Driver driver `json:"driver"`
	}
	type run struct {
		Tool    tool     `json:"tool"`
		Results []result `json:"results"`
	}
	type log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []run  `json:"runs"`
	}

	// The meta-rule "suppress" reports malformed/stale directives and
	// is always part of the driver's rule table.
	ruleIndex := make(map[string]int)
	var sr []sarifRule
	for _, r := range rules {
		ruleIndex[r.ID()] = len(sr)
		sr = append(sr, sarifRule{ID: r.ID(), ShortDescription: map[string]string{"text": r.Doc()}})
	}
	if _, ok := ruleIndex["suppress"]; !ok {
		ruleIndex["suppress"] = len(sr)
		sr = append(sr, sarifRule{ID: "suppress", ShortDescription: map[string]string{
			"text": "etlint:ignore directives must name a known rule, carry a reason, and cover a finding",
		}})
	}

	results := make([]result, 0, len(findings))
	for _, f := range findings {
		idx, ok := ruleIndex[f.Rule]
		if !ok {
			idx = len(sr)
			ruleIndex[f.Rule] = idx
			sr = append(sr, sarifRule{ID: f.Rule, ShortDescription: map[string]string{"text": f.Rule}})
		}
		results = append(results, result{
			RuleID:    f.Rule,
			RuleIndex: idx,
			Level:     "error",
			Message:   map[string]string{"text": f.Message},
			Locations: []location{{PhysicalLocation: physicalLocation{
				ArtifactLocation: artifactLocation{URI: f.File},
				Region:           region{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}
	return json.MarshalIndent(log{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []run{{
			Tool:    tool{Driver: driver{Name: "etlint", Rules: sr}},
			Results: results,
		}},
	}, "", "  ")
}
