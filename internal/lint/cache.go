package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// cacheVersion keys the on-disk result format and the analysis
// semantics. Bump it whenever a rule's behaviour changes in a way that
// should invalidate cached findings.
const cacheVersion = "etlint-cache-v1"

// cacheEntry is the persisted result of one full module run.
type cacheEntry struct {
	Version  string        `json:"version"`
	Findings []Finding     `json:"findings"`
	Audit    []AuditRecord `json:"audit"`
}

// LintModule loads the module at root with the parallel loader, runs
// the rules, and returns findings plus the suppression audit. With a
// non-empty cacheDir it first consults a content-hash cache: the key
// digests the cache version, the rule set, the module root path, and
// every non-test .go file plus go.mod, so any edit — or a different
// rule subset — misses and re-analyzes while an untouched tree skips
// parsing and type-checking entirely. Cache writes are best-effort;
// a corrupt or unwritable cache degrades to a full run.
func LintModule(root string, rules []Rule, cacheDir string) ([]Finding, []AuditRecord, error) {
	var key string
	if cacheDir != "" {
		k, err := cacheKey(root, rules)
		if err == nil {
			key = k
			if fs, audit, ok := cacheGet(cacheDir, key); ok {
				return fs, audit, nil
			}
		}
	}
	pkgs, err := LoadModuleParallel(root)
	if err != nil {
		return nil, nil, err
	}
	fs, audit := RunAudit(pkgs, rules)
	if fs == nil {
		fs = []Finding{}
	}
	if audit == nil {
		audit = []AuditRecord{}
	}
	if cacheDir != "" && key != "" {
		cachePut(cacheDir, key, fs, audit)
	}
	return fs, audit, nil
}

// cacheKey hashes everything the findings depend on.
func cacheKey(root string, rules []Rule) (string, error) {
	h := sha256.New()
	io.WriteString(h, cacheVersion+"\n")
	abs, err := filepath.Abs(root)
	if err != nil {
		return "", err
	}
	// Findings embed paths as given; a different root string must not
	// replay another invocation's output.
	io.WriteString(h, "root "+abs+"\x00"+root+"\n")
	ids := make([]string, 0, len(rules))
	for _, r := range rules {
		ids = append(ids, r.ID())
	}
	sort.Strings(ids)
	io.WriteString(h, "rules "+strings.Join(ids, ",")+"\n")

	dirs, err := moduleDirs(root)
	if err != nil {
		return "", err
	}
	var paths []string
	paths = append(paths, filepath.Join(root, "go.mod"))
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return "", err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				continue
			}
			paths = append(paths, filepath.Join(dir, name))
		}
	}
	sort.Strings(paths)
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "file %s %d\n", p, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func cachePath(cacheDir, key string) string {
	return filepath.Join(cacheDir, key+".json")
}

func cacheGet(cacheDir, key string) ([]Finding, []AuditRecord, bool) {
	data, err := os.ReadFile(cachePath(cacheDir, key))
	if err != nil {
		return nil, nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Version != cacheVersion {
		return nil, nil, false
	}
	if e.Findings == nil {
		e.Findings = []Finding{}
	}
	if e.Audit == nil {
		e.Audit = []AuditRecord{}
	}
	return e.Findings, e.Audit, true
}

func cachePut(cacheDir, key string, fs []Finding, audit []AuditRecord) {
	if os.MkdirAll(cacheDir, 0o755) != nil {
		return
	}
	data, err := json.Marshal(cacheEntry{Version: cacheVersion, Findings: fs, Audit: audit})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(cacheDir, "entry-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), cachePath(cacheDir, key)) != nil {
		os.Remove(tmp.Name())
	}
}

// DefaultCacheDir is where cmd/etlint keeps results when caching is
// on: the user cache dir, or a temp-dir fallback.
func DefaultCacheDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "etlint")
	}
	return filepath.Join(os.TempDir(), "etlint-cache")
}
