package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// LoadModuleParallel is LoadModule with one type-check per module
// package fanned out across GOMAXPROCS workers in dependency order.
// Parsing stays sequential (it is cheap and keeps token positions
// identical to the sequential loader); type-checking — the expensive
// part — runs concurrently, each package checked exactly once with its
// module dependencies supplied from already-checked results instead of
// being re-imported from source. Findings are therefore byte-identical
// to LoadModule's, just faster, and cross-package type identity is
// consistent as a bonus.
func LoadModuleParallel(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := moduleDirs(root)
	if err != nil {
		return nil, err
	}

	type unit struct {
		rel, dir, importPath string
		files                []*ast.File
		deps                 []*unit // module packages this unit imports
		dependents           []*unit
		waiting              int
		pkg                  *Package
		err                  error
	}

	fset := token.NewFileSet()
	var units []*unit
	byPath := make(map[string]*unit)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			rel = ""
		}
		rel = filepath.ToSlash(rel)
		importPath := modPath
		if rel != "" {
			importPath = modPath + "/" + rel
		}
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		u := &unit{rel: rel, dir: dir, importPath: importPath, files: files}
		units = append(units, u)
		byPath[importPath] = u
	}
	for _, u := range units {
		seen := make(map[*unit]bool)
		for _, f := range u.files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if dep, ok := byPath[path]; ok && dep != u && !seen[dep] {
					seen[dep] = true
					u.deps = append(u.deps, dep)
					dep.dependents = append(dep.dependents, u)
					u.waiting++
				}
			}
		}
	}

	// Dependency-ordered worker pool. The shared importer serves module
	// packages from the done map and stdlib packages through one
	// mutex-guarded source importer (srcimporter is not safe for
	// concurrent use; completed *types.Packages are immutable and safe
	// to share).
	im := &moduleImporter{
		done:     make(map[string]*types.Package, len(units)),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	ready := make(chan *unit, len(units))
	var mu sync.Mutex
	var firstErr error
	pending := len(units)
	for _, u := range units {
		if u.waiting == 0 {
			ready <- u
		}
	}
	if pending == 0 {
		close(ready)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range ready {
				mu.Lock()
				skip := firstErr != nil
				mu.Unlock()
				if !skip {
					u.pkg, u.err = checkUnit(fset, im, u.dir, u.rel, u.importPath, u.files)
					if u.pkg != nil {
						im.put(u.importPath, u.pkg.Pkg)
					}
				}
				mu.Lock()
				if u.err != nil && firstErr == nil {
					firstErr = u.err
				}
				var newlyReady []*unit
				for _, d := range u.dependents {
					d.waiting--
					if d.waiting == 0 {
						newlyReady = append(newlyReady, d)
					}
				}
				pending--
				last := pending == 0
				mu.Unlock()
				for _, d := range newlyReady {
					ready <- d // buffered to len(units); never blocks
				}
				if last {
					close(ready)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	pkgs := make([]*Package, 0, len(units))
	for _, u := range units {
		if u.pkg != nil {
			pkgs = append(pkgs, u.pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	return pkgs, nil
}

// moduleImporter resolves module packages from already-checked results
// and everything else through the stdlib source importer.
type moduleImporter struct {
	mu       sync.Mutex
	done     map[string]*types.Package
	fallback types.Importer
}

func (im *moduleImporter) put(path string, pkg *types.Package) {
	im.mu.Lock()
	im.done[path] = pkg
	im.mu.Unlock()
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	im.mu.Lock()
	defer im.mu.Unlock()
	if p, ok := im.done[path]; ok {
		return p, nil
	}
	return im.fallback.Import(path)
}

// parseDir parses the non-test Go files of one directory in filename
// order, returning nil when the directory holds none.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	return files, nil
}

// checkUnit type-checks one pre-parsed package.
func checkUnit(fset *token.FileSet, imp types.Importer, dir, rel, importPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	return &Package{Rel: rel, Path: importPath, Dir: dir, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}
