package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRuleFixtures drives every rule over its bad and good fixture
// packages. Expected findings are `// want <rule>` markers on the
// flagged line; a fixture with no markers must come back clean. The
// rel column pins each fixture into or out of a rule's scope (core
// package, cmd/, internal/).
func TestRuleFixtures(t *testing.T) {
	cases := []struct {
		dir string
		rel string
	}{
		{"detrand/bad", "internal/x"},
		{"detrand/good", "internal/x"},
		{"detrand/cmdexempt", "cmd/x"},
		{"detclock/bad", "internal/game"},
		{"detclock/good", "internal/game"},
		{"detclock/noncore", "internal/service"},
		{"maporder/bad", "internal/game"},
		{"maporder/good", "internal/game"},
		{"lockedfield/bad", "internal/x"},
		{"lockedfield/good", "internal/x"},
		{"printclean/bad", "internal/x"},
		{"printclean/good", "internal/x"},
		{"floatcmp/bad", "internal/belief"},
		{"floatcmp/good", "internal/belief"},
		{"scratchalias/bad", "internal/fd"},
		{"scratchalias/good", "internal/fd"},
		{"scratchalias/noncore", "internal/service"},
		{"lockorder/bad", "internal/service"},
		{"lockorder/good", "internal/service"},
		{"goroleak/bad", "internal/x"},
		{"goroleak/good", "internal/x"},
		{"goroleak/cmdexempt", "cmd/x"},
		{"chanlock/bad", "internal/x"},
		{"chanlock/good", "internal/x"},
		{"chanlock/exempt", "internal/service"},
		{"ctxflow/bad", "internal/x"},
		{"ctxflow/good", "internal/x"},
		{"ctxflow/cmdexempt", "cmd/x"},
		{"errkind/bad", "internal/x"},
		{"errkind/good", "internal/x"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.dir)
			p, err := LoadPackage(dir, tc.rel)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			want, err := wantMarkers(dir)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[string]int)
			for _, f := range Run([]*Package{p}, AllRules()) {
				got[fmt.Sprintf("%s:%d %s", filepath.Base(f.File), f.Line, f.Rule)]++
			}
			for key, n := range want {
				if got[key] != n {
					t.Errorf("want %d finding(s) %q, got %d", n, key, got[key])
				}
			}
			for key, n := range got {
				if want[key] == 0 {
					t.Errorf("unexpected finding %q (x%d)", key, n)
				}
			}
		})
	}
}

// wantMarkers scans fixture files for `// want <rule>...` trailing
// comments and returns the expected multiset keyed "file:line rule".
func wantMarkers(dir string) (map[string]int, error) {
	want := make(map[string]int)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, after, found := strings.Cut(sc.Text(), "// want ")
			if !found {
				continue
			}
			for _, rule := range strings.Fields(after) {
				want[fmt.Sprintf("%s:%d %s", e.Name(), line, rule)]++
			}
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return want, nil
}

// countByRule folds findings into rule → count.
func countByRule(fs []Finding) map[string]int {
	out := make(map[string]int)
	for _, f := range fs {
		out[f.Rule]++
	}
	return out
}

// TestSuppressionHonored: a well-formed etlint:ignore (rule + reason)
// silences the finding on its line and the next, both leading and
// trailing.
func TestSuppressionHonored(t *testing.T) {
	p, err := LoadPackage(filepath.Join("testdata", "suppress", "ok"), "internal/belief")
	if err != nil {
		t.Fatal(err)
	}
	if fs := Run([]*Package{p}, AllRules()); len(fs) != 0 {
		t.Errorf("suppressed fixture should be clean, got %v", fs)
	}
}

// TestSuppressionUnjustified: malformed directives — no reason, unknown
// rule, bare — are findings themselves and suppress nothing.
func TestSuppressionUnjustified(t *testing.T) {
	p, err := LoadPackage(filepath.Join("testdata", "suppress", "bad"), "internal/belief")
	if err != nil {
		t.Fatal(err)
	}
	got := countByRule(Run([]*Package{p}, AllRules()))
	if got["suppress"] != 3 {
		t.Errorf("want 3 suppress findings (no reason, unknown rule, bare), got %d", got["suppress"])
	}
	if got["floatcmp"] != 3 {
		t.Errorf("malformed directives must not suppress: want 3 floatcmp findings, got %d", got["floatcmp"])
	}
}

// TestRulesByID resolves subsets and rejects unknown names.
func TestRulesByID(t *testing.T) {
	rules, err := RulesByID([]string{"detrand", " floatcmp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].ID() != "detrand" || rules[1].ID() != "floatcmp" {
		t.Errorf("unexpected subset: %v", rules)
	}
	if _, err := RulesByID([]string{"nosuchrule"}); err == nil {
		t.Error("unknown rule should error")
	}
}

// TestRuleSubsetScoping: running only detrand over the floatcmp bad
// fixture reports nothing — subsets really do scope.
func TestRuleSubsetScoping(t *testing.T) {
	p, err := LoadPackage(filepath.Join("testdata", "floatcmp", "bad"), "internal/belief")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := RulesByID([]string{"detrand"})
	if err != nil {
		t.Fatal(err)
	}
	if fs := Run([]*Package{p}, rules); len(fs) != 0 {
		t.Errorf("detrand-only run over floatcmp fixture should be clean, got %v", fs)
	}
}

// TestFindingString pins the report format cmd/etlint prints.
func TestFindingString(t *testing.T) {
	f := Finding{Rule: "detrand", File: "a/b.go", Line: 7, Col: 3, Message: "boom"}
	if got, want := f.String(), "a/b.go:7:3: boom [detrand]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestDirectiveText pins the directive grammar's edges.
func TestDirectiveText(t *testing.T) {
	cases := []struct {
		comment string
		text    string
		ok      bool
	}{
		{"//etlint:ignore floatcmp why", "floatcmp why", true},
		{"//etlint:ignore", "", true},
		{"// etlint:ignore floatcmp why", "", false}, // leading space: prose, not a directive
		{"//etlint:ignoreX", "", false},
		{"/* etlint:ignore floatcmp */", "", false},
		{"// plain comment", "", false},
	}
	for _, tc := range cases {
		text, ok := directiveText(tc.comment)
		if text != tc.text || ok != tc.ok {
			t.Errorf("directiveText(%q) = (%q, %v), want (%q, %v)", tc.comment, text, ok, tc.text, tc.ok)
		}
	}
}
