package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FuncKey names one function (or function literal) across the loaded
// packages: "rel|Name" for package functions, "rel|Recv.Name" for
// methods, "rel|init#N" for the N-th init function, and "parent$N" for
// the N-th function literal (in source order) inside parent.
type FuncKey string

// EdgeKind classifies a call-graph edge.
type EdgeKind uint8

const (
	// EdgeCall is a synchronous call. A function literal or declared
	// function referenced as a value is over-approximated as called at
	// the reference site.
	EdgeCall EdgeKind = iota
	// EdgeGo is a `go` statement: the callee runs on a fresh goroutine
	// stack, so locks held at the spawn site are not held inside it.
	EdgeGo
	// EdgeDefer is a deferred call. It runs with whatever the function
	// still holds on return, which the walker approximates with the
	// held set at the defer statement.
	EdgeDefer
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeGo:
		return "go"
	case EdgeDefer:
		return "defer"
	default:
		return "call"
	}
}

// Edge is one resolved call site.
type Edge struct {
	From *FuncNode
	To   *FuncNode
	Kind EdgeKind
	Pos  token.Pos
	// Held are the lock classes believed held at the site, in
	// acquisition order.
	Held []lockClass
}

// FuncNode is one function in the call graph.
type FuncNode struct {
	Key  FuncKey
	Pkg  *Package
	Decl *ast.FuncDecl // nil for function literals
	Lit  *ast.FuncLit  // nil for declared functions
	Recv string        // receiver type name, "" for plain functions
	Name string        // declared name; the parent's name for literals
	// Edges are the node's outgoing call sites in source order.
	Edges []*Edge

	sum  *funcSummary
	lits int // counter for child literal keys
}

// Pos is the function's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// signature returns the declared function's type, nil for literals.
func (n *FuncNode) signature() *types.Signature {
	if n.Decl == nil {
		return nil
	}
	fn, ok := n.Pkg.Info.Defs[n.Decl.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

// Module is the interprocedural view the summary-driven rules consume:
// every loaded package, a CHA-style call graph, and per-function
// summaries of lock, channel, goroutine and context behaviour.
type Module struct {
	Pkgs  []*Package
	Funcs map[FuncKey]*FuncNode

	// order is the deterministic analysis and reporting order:
	// declaration order, literals appended as discovered.
	order   []*FuncNode
	pathRel map[string]string // import path → module-relative dir
	methods map[string][]*FuncNode

	ta map[*FuncNode]map[lockClass]token.Pos // transitive acquires
	tb map[*FuncNode]blockSite               // transitive may-block cause
}

// NewModule builds the call graph and function summaries for pkgs.
// Static calls resolve through go/types; calls through interface
// methods resolve CHA-style to every module method with the same name
// and signature shape — a documented over-approximation that keeps the
// build independent of cross-package type identity.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:    pkgs,
		Funcs:   make(map[FuncKey]*FuncNode),
		pathRel: make(map[string]string),
		methods: make(map[string][]*FuncNode),
	}
	for _, p := range pkgs {
		m.pathRel[p.Pkg.Path()] = p.Rel
		if p.Path != "" {
			m.pathRel[p.Path] = p.Rel
		}
	}
	for _, p := range pkgs {
		inits := 0
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				name := fd.Name.Name
				recv := recvTypeName(fd)
				var key FuncKey
				switch {
				case recv != "":
					key = FuncKey(p.Rel + "|" + recv + "." + name)
				case name == "init":
					key = FuncKey(fmt.Sprintf("%s|init#%d", p.Rel, inits))
					inits++
				default:
					key = FuncKey(p.Rel + "|" + name)
				}
				n := &FuncNode{Key: key, Pkg: p, Decl: fd, Recv: recv, Name: name}
				m.Funcs[key] = n
				m.order = append(m.order, n)
				if recv != "" {
					m.methods[name] = append(m.methods[name], n)
				}
			}
		}
	}
	decls := m.order
	for _, n := range decls {
		analyzeFunc(m, n)
	}
	m.buildTransitive()
	return m
}

// litNode registers the parent's next function literal as a node.
func (m *Module) litNode(parent *FuncNode, lit *ast.FuncLit) *FuncNode {
	key := FuncKey(fmt.Sprintf("%s$%d", parent.Key, parent.lits))
	parent.lits++
	n := &FuncNode{Key: key, Pkg: parent.Pkg, Lit: lit, Recv: parent.Recv, Name: parent.Name}
	m.Funcs[key] = n
	m.order = append(m.order, n)
	return n
}

// relOf maps a types package to its module-relative dir; ok is false
// for packages outside the loaded set (stdlib).
func (m *Module) relOf(pkg *types.Package) (string, bool) {
	if pkg == nil {
		return "", false
	}
	rel, ok := m.pathRel[pkg.Path()]
	return rel, ok
}

// nodeFor resolves a *types.Func use to its declared node. It returns
// nil for functions outside the loaded packages and for interface
// methods (which have no declared body; see implementers).
func (m *Module) nodeFor(fn *types.Func) *FuncNode {
	rel, ok := m.relOf(fn.Pkg())
	if !ok {
		return nil
	}
	key := FuncKey(rel + "|" + fn.Name())
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name := namedName(sig.Recv().Type())
		if name == "" {
			return nil
		}
		key = FuncKey(rel + "|" + name + "." + fn.Name())
	}
	return m.Funcs[key]
}

// implementers returns every declared module method with the given
// name and an identical parameter/result type list — the CHA
// resolution of an interface-method call. Types are compared as
// package-qualified strings rather than by object identity so the
// result is the same whether packages were type-checked once (parallel
// loader) or re-imported per package (sequential loader).
func (m *Module) implementers(name string, sig *types.Signature) []*FuncNode {
	want := sigKey(sig)
	var out []*FuncNode
	for _, n := range m.methods[name] {
		ns := n.signature()
		if ns == nil || ns.Recv() == nil {
			continue
		}
		if sigKey(ns) == want {
			out = append(out, n)
		}
	}
	return out
}

// sigKey canonicalizes a signature's parameter and result types,
// ignoring parameter names and the receiver.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	writeTuple := func(t *types.Tuple) {
		b.WriteByte('(')
		for i := 0; i < t.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(types.TypeString(t.At(i).Type(), nil))
		}
		b.WriteByte(')')
	}
	writeTuple(sig.Params())
	if sig.Variadic() {
		b.WriteString("...")
	}
	writeTuple(sig.Results())
	return b.String()
}

// buildTransitive computes, as fixpoints over non-go edges, the lock
// classes each function may acquire (directly or via callees) and
// whether it may block on a channel or Wait. Go edges are excluded:
// a spawned goroutine acquires and blocks on its own stack.
func (m *Module) buildTransitive() {
	m.ta = make(map[*FuncNode]map[lockClass]token.Pos, len(m.order))
	m.tb = make(map[*FuncNode]blockSite, len(m.order))
	for _, n := range m.order {
		acc := make(map[lockClass]token.Pos)
		for _, a := range n.sum.acquires {
			if old, ok := acc[a.class]; !ok || a.pos < old {
				acc[a.class] = a.pos
			}
		}
		m.ta[n] = acc
		for _, b := range n.sum.blocks {
			if old, ok := m.tb[n]; !ok || b.pos < old.pos {
				m.tb[n] = blockSite{pos: b.pos, what: b.what}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range m.order {
			acc := m.ta[n]
			for _, e := range n.Edges {
				if e.Kind == EdgeGo || e.To == nil {
					continue
				}
				for c, p := range m.ta[e.To] {
					if old, ok := acc[c]; !ok || p < old {
						acc[c] = p
						changed = true
					}
				}
				if cause, ok := m.tb[e.To]; ok {
					if old, had := m.tb[n]; !had || cause.pos < old.pos {
						m.tb[n] = cause
						changed = true
					}
				}
			}
		}
	}
}

// recvTypeName extracts the receiver's type name from a declaration,
// stripping pointers and type parameters.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// namedName returns the (possibly pointered or aliased) named type's
// name, "" when the type is not named.
func namedName(t types.Type) string {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// namedOf returns the underlying *types.Named, nil when there is none.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// findingAt builds a Finding at a raw token position.
func findingAt(p *Package, pos token.Pos, rule, format string, args ...any) Finding {
	ps := p.Fset.Position(pos)
	return Finding{Rule: rule, File: ps.Filename, Line: ps.Line, Col: ps.Column, Message: fmt.Sprintf(format, args...)}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
