package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"
)

// diamondModule loads the call-graph fixture once per test.
func diamondModule(t *testing.T) *Module {
	t.Helper()
	p, err := LoadPackage(filepath.Join("testdata", "callgraph", "diamond"), "internal/diamond")
	if err != nil {
		t.Fatal(err)
	}
	return NewModule([]*Package{p})
}

// edgesOf renders a node's outgoing edges as "kind→key" strings.
func edgesOf(t *testing.T, m *Module, key FuncKey) []string {
	t.Helper()
	n := m.Funcs[key]
	if n == nil {
		var have []string
		for k := range m.Funcs {
			have = append(have, string(k))
		}
		sort.Strings(have)
		t.Fatalf("no node %q; have %v", key, have)
	}
	var out []string
	for _, e := range n.Edges {
		out = append(out, fmt.Sprintf("%s→%s", e.Kind, e.To.Key))
	}
	sort.Strings(out)
	return out
}

// TestCallGraphDiamond pins the fixture's edges: the diamond itself,
// CHA resolution of the interface call to exactly the
// signature-compatible implementations, and go/defer edge kinds.
func TestCallGraphDiamond(t *testing.T) {
	m := diamondModule(t)
	cases := []struct {
		key  FuncKey
		want []string
	}{
		{"internal/diamond|top", []string{
			"call→internal/diamond|A.Put",
			"call→internal/diamond|B.Put",
			"call→internal/diamond|mid1",
			"call→internal/diamond|mid2",
		}},
		{"internal/diamond|mid1", []string{"call→internal/diamond|bottom"}},
		{"internal/diamond|mid2", []string{"call→internal/diamond|bottom"}},
		{"internal/diamond|bottom", nil},
		// spawn's only direct edge is the go-spawned literal; the
		// literal calls bottom synchronously on its own stack.
		{"internal/diamond|spawn", []string{"go→internal/diamond|spawn$0"}},
		{"internal/diamond|spawn$0", []string{"call→internal/diamond|bottom"}},
		{"internal/diamond|cleanup", []string{
			"call→internal/diamond|bottom",
			"defer→internal/diamond|bottom",
		}},
	}
	for _, tc := range cases {
		if got := edgesOf(t, m, tc.key); fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("%s edges = %v, want %v", tc.key, got, tc.want)
		}
	}
	// narrower.Put has a different signature; CHA must not have linked
	// the interface call to it (checked above via top's edge set), but
	// the node itself exists.
	if m.Funcs["internal/diamond|narrower.Put"] == nil {
		t.Error("narrower.Put should still be a node")
	}
}

// TestCallGraphTransitive pins the transitive reachability the rules
// consume: top may reach bottom through either arm, but go edges do
// not propagate (a spawned stack blocks alone).
func TestCallGraphTransitive(t *testing.T) {
	m := diamondModule(t)
	reach := make(map[FuncKey]map[FuncKey]bool)
	var visit func(from FuncKey, n *FuncNode)
	visit = func(from FuncKey, n *FuncNode) {
		for _, e := range n.Edges {
			if e.Kind == EdgeGo {
				continue
			}
			if !reach[from][e.To.Key] {
				if reach[from] == nil {
					reach[from] = make(map[FuncKey]bool)
				}
				reach[from][e.To.Key] = true
				visit(from, e.To)
			}
		}
	}
	for k, n := range m.Funcs {
		visit(k, n)
	}
	if !reach["internal/diamond|top"]["internal/diamond|bottom"] {
		t.Error("top should reach bottom through the diamond")
	}
	if reach["internal/diamond|spawn"]["internal/diamond|bottom"] {
		t.Error("spawn must not reach bottom synchronously: the only path is a go edge")
	}
}
