package fd

import (
	"testing"
	"testing/quick"
)

func TestAttrSetBasics(t *testing.T) {
	s := NewAttrSet(0, 3, 5)
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	for _, a := range []int{0, 3, 5} {
		if !s.Has(a) {
			t.Errorf("missing attribute %d", a)
		}
	}
	for _, a := range []int{1, 2, 4, 63} {
		if s.Has(a) {
			t.Errorf("spurious attribute %d", a)
		}
	}
	if s.Has(-1) || s.Has(64) {
		t.Error("out-of-range Has should be false")
	}
}

func TestAttrSetAddRemove(t *testing.T) {
	s := NewAttrSet(1).Add(2).Remove(1)
	if !s.Has(2) || s.Has(1) {
		t.Fatalf("Add/Remove wrong: %v", s)
	}
	// Add is idempotent.
	if NewAttrSet(2).Add(2) != NewAttrSet(2) {
		t.Error("Add not idempotent")
	}
	// Remove of absent attr is a no-op.
	if NewAttrSet(2).Remove(5) != NewAttrSet(2) {
		t.Error("Remove of absent attr changed set")
	}
}

func TestAttrSetPanicsOutOfRange(t *testing.T) {
	for name, fn := range map[string]func(){
		"Add(-1)":    func() { AttrSet(0).Add(-1) },
		"Add(64)":    func() { AttrSet(0).Add(64) },
		"Remove(64)": func() { AttrSet(0).Remove(64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAttrSetAlgebra(t *testing.T) {
	a := NewAttrSet(0, 1, 2)
	b := NewAttrSet(2, 3)
	if got := a.Union(b); got != NewAttrSet(0, 1, 2, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != NewAttrSet(2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got != NewAttrSet(0, 1) {
		t.Errorf("Minus = %v", got)
	}
}

func TestSubsetRelations(t *testing.T) {
	a := NewAttrSet(0, 1)
	b := NewAttrSet(0, 1, 2)
	if !a.IsSubsetOf(b) || !a.IsProperSubsetOf(b) {
		t.Error("a ⊂ b not detected")
	}
	if !a.IsSubsetOf(a) {
		t.Error("a ⊆ a must hold")
	}
	if a.IsProperSubsetOf(a) {
		t.Error("a ⊄ a strictly")
	}
	if b.IsSubsetOf(a) {
		t.Error("b ⊆ a must not hold")
	}
	if !AttrSet(0).IsSubsetOf(a) {
		t.Error("∅ ⊆ a must hold")
	}
}

func TestAttrsRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		s := AttrSet(raw)
		attrs := s.Attrs()
		if len(attrs) != s.Count() {
			return false
		}
		// Ascending and reconstructible.
		var back AttrSet
		prev := -1
		for _, a := range attrs {
			if a <= prev {
				return false
			}
			prev = a
			back = back.Add(a)
		}
		return back == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetsEnumeratesAllProper(t *testing.T) {
	s := NewAttrSet(0, 2, 5)
	var got []AttrSet
	s.Subsets(func(sub AttrSet) bool {
		got = append(got, sub)
		return true
	})
	// 2³ − 2 = 6 non-empty proper subsets.
	if len(got) != 6 {
		t.Fatalf("got %d subsets, want 6: %v", len(got), got)
	}
	seen := map[AttrSet]bool{}
	for _, sub := range got {
		if sub == 0 || sub == s || !sub.IsSubsetOf(s) || seen[sub] {
			t.Fatalf("bad subset %v of %v", sub, s)
		}
		seen[sub] = true
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	s := NewAttrSet(0, 1, 2)
	count := 0
	s.Subsets(func(AttrSet) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d, want 2", count)
	}
}

func TestAllSubsetsOfSize(t *testing.T) {
	// C(5, 2) = 10.
	subs := AllSubsetsOfSize(5, 2)
	if len(subs) != 10 {
		t.Fatalf("got %d subsets, want 10", len(subs))
	}
	seen := map[AttrSet]bool{}
	for _, s := range subs {
		if s.Count() != 2 || seen[s] {
			t.Fatalf("bad subset %v", s)
		}
		seen[s] = true
	}
	// Edge cases.
	if got := AllSubsetsOfSize(3, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("size 0: %v", got)
	}
	if got := AllSubsetsOfSize(3, 4); got != nil {
		t.Errorf("k > n: %v", got)
	}
	if got := AllSubsetsOfSize(3, -1); got != nil {
		t.Errorf("negative k: %v", got)
	}
}

func TestRenderWithNames(t *testing.T) {
	names := []string{"Team", "City", "Role"}
	if got := NewAttrSet(0, 2).Render(names); got != "Team,Role" {
		t.Fatalf("Render = %q", got)
	}
	// Out-of-range positions degrade gracefully.
	if got := NewAttrSet(5).Render(names); got != "#5" {
		t.Fatalf("Render out of range = %q", got)
	}
}
