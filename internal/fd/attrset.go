// Package fd implements the approximate functional-dependency substrate:
// attribute-set algebra, the FD type, the scaled g₁ approximation
// measure, violating pair/cell detection, hypothesis-space enumeration,
// TANE-style partition refinement, and approximate-FD discovery.
//
// Terminology follows the paper (§A.1): FDs are minimal, nontrivial and
// normalized (single-attribute RHS); an FD X→Z is a *superset* of XY→Z
// (it implies it), and XY→Z is a *subset* of X→Z.
package fd

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// AttrSet is a set of attribute positions encoded as a bitmask. The
// framework never needs more than 64 attributes (the paper's widest
// dataset, Hospital, has 19).
type AttrSet uint64

// MaxAttrs is the largest attribute position an AttrSet can hold.
const MaxAttrs = 64

// NewAttrSet builds a set from attribute positions. It panics on
// positions outside [0, MaxAttrs).
func NewAttrSet(attrs ...int) AttrSet {
	var s AttrSet
	for _, a := range attrs {
		s = s.Add(a)
	}
	return s
}

// Add returns the set with attribute a included.
func (s AttrSet) Add(a int) AttrSet {
	if a < 0 || a >= MaxAttrs {
		panic(fmt.Sprintf("fd: attribute position %d out of range", a))
	}
	return s | 1<<uint(a)
}

// Remove returns the set with attribute a excluded.
func (s AttrSet) Remove(a int) AttrSet {
	if a < 0 || a >= MaxAttrs {
		panic(fmt.Sprintf("fd: attribute position %d out of range", a))
	}
	return s &^ (1 << uint(a))
}

// Has reports whether attribute a is in the set.
func (s AttrSet) Has(a int) bool {
	return a >= 0 && a < MaxAttrs && s&(1<<uint(a)) != 0
}

// Count returns the cardinality of the set.
func (s AttrSet) Count() int { return bits.OnesCount64(uint64(s)) }

// IsEmpty reports whether the set has no attributes.
func (s AttrSet) IsEmpty() bool { return s == 0 }

// Union returns s ∪ o.
func (s AttrSet) Union(o AttrSet) AttrSet { return s | o }

// Intersect returns s ∩ o.
func (s AttrSet) Intersect(o AttrSet) AttrSet { return s & o }

// Minus returns s \ o.
func (s AttrSet) Minus(o AttrSet) AttrSet { return s &^ o }

// IsSubsetOf reports whether every attribute of s is in o.
func (s AttrSet) IsSubsetOf(o AttrSet) bool { return s&^o == 0 }

// IsProperSubsetOf reports whether s ⊂ o strictly.
func (s AttrSet) IsProperSubsetOf(o AttrSet) bool { return s != o && s.IsSubsetOf(o) }

// Attrs returns the attribute positions in ascending order.
func (s AttrSet) Attrs() []int {
	out := make([]int, 0, s.Count())
	for v := uint64(s); v != 0; {
		a := bits.TrailingZeros64(v)
		out = append(out, a)
		v &= v - 1
	}
	return out
}

// String renders the set as {i,j,...} using positions; use Render with a
// schema for names.
func (s AttrSet) String() string {
	parts := make([]string, 0, s.Count())
	for _, a := range s.Attrs() {
		parts = append(parts, fmt.Sprint(a))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Render renders the set using the given attribute names, in schema
// order, e.g. "Team,City".
func (s AttrSet) Render(names []string) string {
	parts := make([]string, 0, s.Count())
	for _, a := range s.Attrs() {
		if a < len(names) {
			parts = append(parts, names[a])
		} else {
			parts = append(parts, fmt.Sprintf("#%d", a))
		}
	}
	return strings.Join(parts, ",")
}

// Subsets calls fn for every non-empty proper subset of s, in increasing
// bitmask order. It is used by minimality pruning in FD discovery.
func (s AttrSet) Subsets(fn func(AttrSet) bool) {
	// Standard submask enumeration: iterate sub = (sub-1) & s.
	for sub := (uint64(s) - 1) & uint64(s); sub != 0; sub = (sub - 1) & uint64(s) {
		if !fn(AttrSet(sub)) {
			return
		}
	}
}

// AllSubsetsOfSize returns every subset of the attribute universe
// [0, arity) with exactly k attributes, in deterministic lexicographic
// order of the underlying combination.
func AllSubsetsOfSize(arity, k int) []AttrSet {
	if k < 0 || k > arity {
		return nil
	}
	var out []AttrSet
	comb := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			out = append(out, NewAttrSet(comb...))
			return
		}
		for a := start; a < arity; a++ {
			comb[depth] = a
			rec(a+1, depth+1)
		}
	}
	if k == 0 {
		return []AttrSet{0}
	}
	rec(0, 0)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
