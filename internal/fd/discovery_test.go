package fd

import (
	"testing"

	"exptrain/internal/dataset"
	"exptrain/internal/stats"
)

func TestDiscoverExactOnCleanData(t *testing.T) {
	// Construct data where b is a function of a, and c is free.
	rel := dataset.New(dataset.MustSchema("a", "b", "c"))
	fn := map[string]string{"1": "x", "2": "y", "3": "x"}
	rng := stats.NewRNG(7)
	keys := []string{"1", "2", "3"}
	vocabC := []string{"p", "q", "r", "s"}
	for i := 0; i < 60; i++ {
		k := keys[rng.Intn(3)]
		rel.MustAppend(dataset.Tuple{k, fn[k], vocabC[rng.Intn(4)]})
	}
	found, err := Discover(rel, DiscoveryConfig{MaxG1: 0, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := MustNew(NewAttrSet(0), 1) // a→b
	hasWant := false
	for _, f := range found {
		if f == want {
			hasWant = true
		}
		// Every reported FD must actually hold exactly.
		if g := G1(f, rel); g != 0 {
			t.Errorf("reported FD %v has g1=%v", f, g)
		}
	}
	if !hasWant {
		t.Fatalf("a→b not discovered; found %v", found)
	}
	// c→b should not hold (c is random over 4 values, b over 2; with 60
	// rows a violation is essentially certain).
	for _, f := range found {
		if f == MustNew(NewAttrSet(2), 1) {
			t.Errorf("spurious FD c→b discovered")
		}
	}
}

func TestDiscoverMinimality(t *testing.T) {
	// a→b holds, so {a,c}→b must be pruned as non-minimal.
	rel := dataset.New(dataset.MustSchema("a", "b", "c"))
	for i := 0; i < 40; i++ {
		k := string(rune('0' + i%4))
		rel.MustAppend(dataset.Tuple{k, "f" + k, string(rune('a' + i%3))})
	}
	found, err := Discover(rel, DiscoveryConfig{MaxG1: 0, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range found {
		if f.RHS == 1 && f.LHS.Count() > 1 && f.LHS.Has(0) {
			t.Fatalf("non-minimal FD %v reported alongside a→b", f)
		}
	}
}

func TestDiscoverApproximateThreshold(t *testing.T) {
	// b is a function of a except for a few scrambled rows; exact
	// discovery misses it, approximate discovery at a loose threshold
	// finds it.
	rel := dataset.New(dataset.MustSchema("a", "b"))
	for i := 0; i < 50; i++ {
		k := string(rune('0' + i%5))
		rel.MustAppend(dataset.Tuple{k, "f" + k})
	}
	// Scramble two rows.
	rel.SetValue(0, 1, "junk1")
	rel.SetValue(25, 1, "junk2")
	f := MustNew(NewAttrSet(0), 1)
	g := G1(f, rel)
	if g <= 0 {
		t.Fatal("setup: scrambling produced no violations")
	}

	exact, err := Discover(rel, DiscoveryConfig{MaxG1: 0, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range exact {
		if got == f {
			t.Fatal("exact discovery should not report a broken FD")
		}
	}

	approx, err := Discover(rel, DiscoveryConfig{MaxG1: g, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	hasF := false
	for _, got := range approx {
		if got == f {
			hasF = true
		}
	}
	if !hasF {
		t.Fatalf("approximate discovery at threshold %v missed a→b; found %v", g, approx)
	}
}

func TestDiscoverAgainstBruteForce(t *testing.T) {
	// Cross-check the lattice walk against naive enumeration + minimality
	// filtering on random relations.
	rng := stats.NewRNG(2024)
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(25)
		rel := dataset.New(dataset.MustSchema("a", "b", "c", "d"))
		vocab := []string{"0", "1", "2"}
		for i := 0; i < n; i++ {
			rel.MustAppend(dataset.Tuple{
				vocab[rng.Intn(2)], vocab[rng.Intn(2)], vocab[rng.Intn(3)], vocab[rng.Intn(2)],
			})
		}
		const maxG1 = 0.01
		got, err := Discover(rel, DiscoveryConfig{MaxG1: maxG1, MaxLHS: 3})
		if err != nil {
			t.Fatal(err)
		}
		gotSet := map[FD]bool{}
		for _, f := range got {
			gotSet[f] = true
		}

		// Brute force: all FDs with g1 ≤ maxG1 whose proper LHS subsets
		// do not determine the RHS at the threshold.
		all := MustEnumerate(SpaceConfig{Arity: 4, MaxLHS: 3})
		wantSet := map[FD]bool{}
		for _, f := range all {
			if G1(f, rel) > maxG1 {
				continue
			}
			minimal := true
			f.LHS.Subsets(func(sub AttrSet) bool {
				if G1(FD{LHS: sub, RHS: f.RHS}, rel) <= maxG1 {
					minimal = false
					return false
				}
				return true
			})
			if minimal {
				wantSet[f] = true
			}
		}
		for f := range wantSet {
			if !gotSet[f] {
				t.Fatalf("trial %d: Discover missed %v", trial, f)
			}
		}
		for f := range gotSet {
			if !wantSet[f] {
				t.Fatalf("trial %d: Discover reported non-minimal or failing %v", trial, f)
			}
		}
	}
}

func TestDiscoverErrors(t *testing.T) {
	rel := dataset.New(dataset.MustSchema("only"))
	if _, err := Discover(rel, DiscoveryConfig{}); err == nil {
		t.Error("single-attribute relation should error")
	}
	rel2 := dataset.New(dataset.MustSchema("a", "b"))
	if _, err := Discover(rel2, DiscoveryConfig{MaxG1: -0.1}); err == nil {
		t.Error("negative threshold should error")
	}
}

func TestDiscoverTable1(t *testing.T) {
	rel := table1()
	// At threshold 0.04, Team→City holds (Example 1) and should be found.
	found, err := Discover(rel, DiscoveryConfig{MaxG1: 0.04, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	teamCity := MustParse("Team->City", rel.Schema())
	has := false
	for _, f := range found {
		if f == teamCity {
			has = true
		}
	}
	if !has {
		t.Fatalf("Team→City not found at g1 ≤ 0.04; found %v", found)
	}
}
