package fd

import "sort"

// This file implements classical FD inference — attribute-set closure
// under Armstrong's axioms, implication testing, and minimal covers.
// Exact implication is not sound for *approximate* FDs in general, but
// it is the standard post-processing for an exported believed-FD set:
// dropping implied dependencies yields a smaller model with identical
// detection behaviour on data where the believed FDs hold.

// Closure returns the attribute closure X⁺ of attrs under the given
// FDs: the largest set of attributes functionally determined by attrs.
// Runs the textbook fixpoint in O(|fds| · passes).
func Closure(attrs AttrSet, fds []FD) AttrSet {
	closure := attrs
	for changed := true; changed; {
		changed = false
		for _, f := range fds {
			if f.LHS.IsSubsetOf(closure) && !closure.Has(f.RHS) {
				closure = closure.Add(f.RHS)
				changed = true
			}
		}
	}
	return closure
}

// Implies reports whether the FD set logically implies f: whether f's
// RHS is in the closure of its LHS.
func Implies(fds []FD, f FD) bool {
	return Closure(f.LHS, fds).Has(f.RHS)
}

// Equivalent reports whether two FD sets imply each other.
func Equivalent(a, b []FD) bool {
	for _, f := range b {
		if !Implies(a, f) {
			return false
		}
	}
	for _, f := range a {
		if !Implies(b, f) {
			return false
		}
	}
	return true
}

// MinimalCover returns a minimal cover of the FD set: every FD has a
// left-reduced LHS (no extraneous attributes) and no FD is implied by
// the others. The result is equivalent to the input and canonically
// sorted. Duplicates in the input are tolerated.
func MinimalCover(fds []FD) []FD {
	// Deduplicate first; the reduction below assumes set semantics.
	seen := make(map[FD]struct{}, len(fds))
	work := make([]FD, 0, len(fds))
	for _, f := range fds {
		if _, dup := seen[f]; !dup {
			seen[f] = struct{}{}
			work = append(work, f)
		}
	}

	// Left-reduce: drop LHS attributes whose removal keeps the FD
	// implied by the full set.
	for i := range work {
		f := work[i]
		for _, a := range f.LHS.Attrs() {
			reduced := f.LHS.Remove(a)
			if reduced.IsEmpty() {
				continue
			}
			if Closure(reduced, work).Has(f.RHS) {
				f = FD{LHS: reduced, RHS: f.RHS}
				work[i] = f
			}
		}
	}
	// Left reduction may have produced duplicates.
	seen = make(map[FD]struct{}, len(work))
	deduped := work[:0]
	for _, f := range work {
		if _, dup := seen[f]; !dup {
			seen[f] = struct{}{}
			deduped = append(deduped, f)
		}
	}
	work = deduped

	// Drop FDs implied by the rest. Iterating in canonical order keeps
	// the result deterministic regardless of input order.
	sortFDs(work)
	var out []FD
	for i := 0; i < len(work); i++ {
		rest := make([]FD, 0, len(work)-1+len(out))
		rest = append(rest, out...)
		rest = append(rest, work[i+1:]...)
		if !Implies(rest, work[i]) {
			out = append(out, work[i])
		}
	}
	sortFDs(out)
	return out
}

// sortFDs sorts canonically: by LHS size, then LHS bitmask, then RHS.
func sortFDs(fds []FD) {
	sort.Slice(fds, func(i, j int) bool {
		if fds[i].LHS.Count() != fds[j].LHS.Count() {
			return fds[i].LHS.Count() < fds[j].LHS.Count()
		}
		if fds[i].LHS != fds[j].LHS {
			return fds[i].LHS < fds[j].LHS
		}
		return fds[i].RHS < fds[j].RHS
	})
}
