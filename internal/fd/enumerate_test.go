package fd

import (
	"testing"
)

func TestEnumerateCountsSmall(t *testing.T) {
	// Arity 3, MaxLHS 2: LHS size 1 → 3 sets × 2 RHS = 6; size 2 → 3 sets
	// × 1 RHS = 3; total 9.
	fds := MustEnumerate(SpaceConfig{Arity: 3, MaxLHS: 2})
	if len(fds) != 9 {
		t.Fatalf("got %d FDs, want 9", len(fds))
	}
	seen := map[FD]bool{}
	for _, f := range fds {
		if f.LHS.IsEmpty() || f.LHS.Has(f.RHS) || seen[f] {
			t.Fatalf("invalid or duplicate FD %v", f)
		}
		seen[f] = true
	}
}

func TestEnumerateCanonicalOrder(t *testing.T) {
	fds := MustEnumerate(SpaceConfig{Arity: 4, MaxLHS: 3})
	for i := 1; i < len(fds); i++ {
		a, b := fds[i-1], fds[i]
		if a.LHS.Count() > b.LHS.Count() {
			t.Fatalf("order broken at %d: %v before %v", i, a, b)
		}
		if a.LHS.Count() == b.LHS.Count() && a.LHS > b.LHS {
			t.Fatalf("LHS order broken at %d: %v before %v", i, a, b)
		}
		if a.LHS == b.LHS && a.RHS >= b.RHS {
			t.Fatalf("RHS order broken at %d: %v before %v", i, a, b)
		}
	}
}

func TestEnumerateMaxFDsTruncation(t *testing.T) {
	// §C.1 uses a 38-FD hypothesis space.
	fds := MustEnumerate(SpaceConfig{Arity: 6, MaxLHS: 3, MaxFDs: 38})
	if len(fds) != 38 {
		t.Fatalf("got %d FDs, want 38", len(fds))
	}
}

func TestEnumerateRestrictedAttrs(t *testing.T) {
	fds := MustEnumerate(SpaceConfig{Arity: 10, MaxLHS: 1, Attrs: []int{2, 7}})
	if len(fds) != 2 {
		t.Fatalf("got %d FDs, want 2", len(fds))
	}
	for _, f := range fds {
		for _, a := range f.Attrs().Attrs() {
			if a != 2 && a != 7 {
				t.Fatalf("FD %v uses attribute outside restriction", f)
			}
		}
	}
}

func TestEnumerateMaxLHSClamped(t *testing.T) {
	// MaxLHS larger than arity−1 is clamped, not an error.
	fds := MustEnumerate(SpaceConfig{Arity: 3, MaxLHS: 10})
	for _, f := range fds {
		if f.LHS.Count() > 2 {
			t.Fatalf("FD %v exceeds clamped MaxLHS", f)
		}
	}
}

func TestEnumerateErrors(t *testing.T) {
	if _, err := Enumerate(SpaceConfig{Arity: 1, MaxLHS: 1}); err == nil {
		t.Error("arity 1 should error")
	}
	if _, err := Enumerate(SpaceConfig{Arity: 3, MaxLHS: 0}); err == nil {
		t.Error("MaxLHS 0 should error")
	}
	if _, err := Enumerate(SpaceConfig{Arity: 3, MaxLHS: 1, Attrs: []int{5}}); err == nil {
		t.Error("out-of-range restricted attr should error")
	}
}

func TestSpaceIndexing(t *testing.T) {
	fds := MustEnumerate(SpaceConfig{Arity: 4, MaxLHS: 2})
	s := MustNewSpace(fds)
	if s.Size() != len(fds) {
		t.Fatalf("Size = %d, want %d", s.Size(), len(fds))
	}
	for i, f := range fds {
		if s.FD(i) != f {
			t.Fatalf("FD(%d) mismatch", i)
		}
		j, ok := s.Index(f)
		if !ok || j != i {
			t.Fatalf("Index(%v) = %d,%v", f, j, ok)
		}
		if !s.Contains(f) {
			t.Fatalf("Contains(%v) = false", f)
		}
	}
	if s.Contains(MustNew(NewAttrSet(0, 1, 2), 3)) {
		t.Error("space should not contain size-3 LHS")
	}
}

func TestSpaceRejectsDuplicates(t *testing.T) {
	f := MustNew(NewAttrSet(0), 1)
	if _, err := NewSpace([]FD{f, f}); err == nil {
		t.Fatal("duplicate FDs should error")
	}
}

func TestSpaceRelated(t *testing.T) {
	fds := MustEnumerate(SpaceConfig{Arity: 3, MaxLHS: 2})
	s := MustNewSpace(fds)
	target := MustNew(NewAttrSet(0), 2) // a→c
	related := s.Related(target)
	// Only {a,b}→c is subset/superset related to a→c in this space.
	if len(related) != 1 {
		t.Fatalf("related = %v, want exactly one", related)
	}
	if s.FD(related[0]) != MustNew(NewAttrSet(0, 1), 2) {
		t.Fatalf("related FD = %v", s.FD(related[0]))
	}
}

func TestSpaceFDsIsCopy(t *testing.T) {
	s := MustNewSpace(MustEnumerate(SpaceConfig{Arity: 3, MaxLHS: 1}))
	before := s.FD(0)
	fds := s.FDs()
	fds[0] = MustNew(NewAttrSet(2), 0)
	if s.FD(0) != before {
		t.Error("FDs() leaked internal slice")
	}
}
