package fd

import (
	"testing"

	"exptrain/internal/dataset"
)

// table1 builds the paper's Table 1 instance.
func table1() *dataset.Relation {
	rel := dataset.New(dataset.MustSchema("Player", "Team", "City", "Role", "Apps"))
	for _, row := range [][]string{
		{"Carter", "Lakers", "L.A.", "C", "4"},
		{"Jordan", "Lakers", "Chicago", "PF", "4"},
		{"Smith", "Bulls", "Chicago", "PF", "4"},
		{"Black", "Bulls", "Chicago", "C", "3"},
		{"Miller", "Clippers", "L.A.", "PG", "3"},
	} {
		rel.MustAppend(dataset.Tuple(row))
	}
	return rel
}

func TestNewFDValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("empty LHS should error")
	}
	if _, err := New(NewAttrSet(1), 1); err == nil {
		t.Error("trivial FD should error")
	}
	if _, err := New(NewAttrSet(1), -1); err == nil {
		t.Error("negative RHS should error")
	}
	if _, err := New(NewAttrSet(1), 64); err == nil {
		t.Error("out-of-range RHS should error")
	}
	f, err := New(NewAttrSet(0, 1), 2)
	if err != nil {
		t.Fatalf("valid FD errored: %v", err)
	}
	if f.Attrs() != NewAttrSet(0, 1, 2) {
		t.Errorf("Attrs = %v", f.Attrs())
	}
}

func TestSupersetSubsetRelations(t *testing.T) {
	// Paper §A.2: X→Z is a superset of XY→Z.
	xToZ := MustNew(NewAttrSet(0), 2)
	xyToZ := MustNew(NewAttrSet(0, 1), 2)
	if !xToZ.IsSupersetOf(xyToZ) {
		t.Error("X→Z should be a superset of XY→Z")
	}
	if !xyToZ.IsSubsetOf(xToZ) {
		t.Error("XY→Z should be a subset of X→Z")
	}
	if xyToZ.IsSupersetOf(xToZ) {
		t.Error("subset direction inverted")
	}
	if !xToZ.Related(xyToZ) || !xyToZ.Related(xToZ) {
		t.Error("Related should hold in both directions")
	}
	// Different RHS → unrelated.
	xToW := MustNew(NewAttrSet(0), 3)
	if xToZ.Related(xToW) {
		t.Error("different RHS should be unrelated")
	}
	// An FD is not its own superset.
	if xToZ.IsSupersetOf(xToZ) {
		t.Error("FD should not be a superset of itself")
	}
	// Disjoint LHS with same RHS → unrelated.
	yToZ := MustNew(NewAttrSet(1), 2)
	if xToZ.Related(yToZ) {
		t.Error("incomparable LHS should be unrelated")
	}
}

func TestParseAndRender(t *testing.T) {
	rel := table1()
	f, err := Parse("Team->City", rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if f.LHS != NewAttrSet(1) || f.RHS != 2 {
		t.Fatalf("parsed %v", f)
	}
	if got := f.Render(rel.Schema().Names()); got != "Team->City" {
		t.Fatalf("Render = %q", got)
	}
	multi, err := Parse(" Team , Role -> Apps ", rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if multi.LHS != NewAttrSet(1, 3) || multi.RHS != 4 {
		t.Fatalf("parsed %v", multi)
	}
}

func TestParseErrors(t *testing.T) {
	schema := table1().Schema()
	for _, bad := range []string{
		"Team City",      // no arrow
		"Nope->City",     // unknown LHS
		"Team->Nope",     // unknown RHS
		"Team->Team",     // trivial
		"->City",         // empty LHS
		"Team,Bad->City", // unknown in list
	} {
		if _, err := Parse(bad, schema); err == nil {
			t.Errorf("Parse(%q) should error", bad)
		}
	}
}

func TestParseAll(t *testing.T) {
	schema := table1().Schema()
	fds, err := ParseAll([]string{"Team->City", "Player->Team"}, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(fds) != 2 {
		t.Fatalf("got %d FDs", len(fds))
	}
	if _, err := ParseAll([]string{"Team->City", "bad"}, schema); err == nil {
		t.Error("ParseAll with a bad spec should error")
	}
}
