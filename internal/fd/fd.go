package fd

import (
	"fmt"
	"strings"

	"exptrain/internal/dataset"
)

// FD is a normalized functional dependency X → A: a non-empty LHS
// attribute set determining a single RHS attribute not in the LHS.
type FD struct {
	LHS AttrSet
	RHS int
}

// New validates and constructs an FD. It enforces the paper's focus:
// nontrivial (RHS ∉ LHS) and normalized (single RHS attribute); the LHS
// must be non-empty.
func New(lhs AttrSet, rhs int) (FD, error) {
	if lhs.IsEmpty() {
		return FD{}, fmt.Errorf("fd: empty LHS")
	}
	if rhs < 0 || rhs >= MaxAttrs {
		return FD{}, fmt.Errorf("fd: RHS position %d out of range", rhs)
	}
	if lhs.Has(rhs) {
		return FD{}, fmt.Errorf("fd: trivial FD (RHS %d appears in LHS %v)", rhs, lhs)
	}
	return FD{LHS: lhs, RHS: rhs}, nil
}

// MustNew is New that panics on error.
func MustNew(lhs AttrSet, rhs int) FD {
	f, err := New(lhs, rhs)
	if err != nil {
		panic(err)
	}
	return f
}

// Attrs returns all attributes mentioned by the FD (LHS ∪ {RHS}).
func (f FD) Attrs() AttrSet { return f.LHS.Add(f.RHS) }

// String renders positions, e.g. "{0,1}->2". Use Render for names.
func (f FD) String() string { return fmt.Sprintf("%v->%d", f.LHS, f.RHS) }

// Render renders the FD with attribute names, e.g. "Team->City".
func (f FD) Render(names []string) string {
	rhs := fmt.Sprintf("#%d", f.RHS)
	if f.RHS < len(names) {
		rhs = names[f.RHS]
	}
	return f.LHS.Render(names) + "->" + rhs
}

// IsSupersetOf reports whether f is a superset of g in the paper's sense
// (§A.2): f = X→Z is a superset of g = XY→Z, i.e. the same RHS with a
// strictly smaller LHS. A superset FD implies the subset FD.
func (f FD) IsSupersetOf(g FD) bool {
	return f.RHS == g.RHS && f.LHS.IsProperSubsetOf(g.LHS)
}

// IsSubsetOf reports the inverse relation: f = XY→Z is a subset of
// g = X→Z.
func (f FD) IsSubsetOf(g FD) bool { return g.IsSupersetOf(f) }

// Related reports whether two distinct FDs are subset/superset related
// in either direction, the "semantically close" notion used for prior
// configuration and the "+" evaluation variants.
func (f FD) Related(g FD) bool { return f.IsSupersetOf(g) || g.IsSupersetOf(f) }

// Parse parses an FD of the form "A,B->C" against the schema. Attribute
// names are trimmed of surrounding whitespace.
func Parse(s string, schema *dataset.Schema) (FD, error) {
	parts := strings.SplitN(s, "->", 2)
	if len(parts) != 2 {
		return FD{}, fmt.Errorf("fd: %q is not of the form LHS->RHS", s)
	}
	var lhs AttrSet
	for _, name := range strings.Split(parts[0], ",") {
		name = strings.TrimSpace(name)
		i, ok := schema.Index(name)
		if !ok {
			return FD{}, fmt.Errorf("fd: unknown LHS attribute %q", name)
		}
		lhs = lhs.Add(i)
	}
	rhsName := strings.TrimSpace(parts[1])
	rhs, ok := schema.Index(rhsName)
	if !ok {
		return FD{}, fmt.Errorf("fd: unknown RHS attribute %q", rhsName)
	}
	return New(lhs, rhs)
}

// MustParse is Parse that panics on error.
func MustParse(s string, schema *dataset.Schema) FD {
	f, err := Parse(s, schema)
	if err != nil {
		panic(err)
	}
	return f
}

// ParseAll parses a list of FD strings against the schema.
func ParseAll(specs []string, schema *dataset.Schema) ([]FD, error) {
	out := make([]FD, 0, len(specs))
	for _, s := range specs {
		f, err := Parse(s, schema)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
