package fd

import (
	"fmt"
	"testing"

	"exptrain/internal/dataset"
	"exptrain/internal/stats"
)

// TestTrackerSyncExternalEdits property-tests the journal-replay path:
// cells mutated directly on the relation (outside the tracker's write
// path) must be absorbed by Sync with the same counts a fresh tracker
// computes, including edits that change a row's group key several times
// between syncs (the rewind overlay must use first-edit old values, not
// current ones).
func TestTrackerSyncExternalEdits(t *testing.T) {
	rng := stats.NewRNG(314)
	for trial := 0; trial < 30; trial++ {
		arity := 2 + rng.Intn(4)
		rel := randomRelation(rng, 3+rng.Intn(30), arity)
		fds := randomFDs(rng, arity, 4)
		trackers := make([]*Tracker, len(fds))
		for i, f := range fds {
			trackers[i] = NewTracker(f, rel)
		}
		for batch := 0; batch < 8; batch++ {
			edits := 1 + rng.Intn(6)
			for m := 0; m < edits; m++ {
				// Bias toward re-editing row 0 so multi-edit-per-cell
				// sequences (the overlay's hard case) occur regularly.
				row := 0
				if rng.Intn(2) == 0 {
					row = rng.Intn(rel.NumRows())
				}
				rel.SetValue(row, rng.Intn(arity), fmt.Sprintf("v%d", rng.Intn(5)))
			}
			for i, tr := range trackers {
				tr.Sync()
				if got, want := tr.Stats(), ComputeStatsNaive(fds[i], rel); got != want {
					t.Fatalf("trial %d batch %d fd %v: synced Stats = %+v, want %+v",
						trial, batch, fds[i], got, want)
				}
			}
		}
	}
}

// TestTrackerSyncInterleavedWithSet checks that the tracker's own write
// path and external edits compose: Set absorbs pending external deltas
// before adjusting, so mixed workloads stay exact.
func TestTrackerSyncInterleavedWithSet(t *testing.T) {
	rng := stats.NewRNG(99)
	rel := randomRelation(rng, 20, 3)
	f := FD{LHS: NewAttrSet(0), RHS: 1}
	tr := NewTracker(f, rel)
	for step := 0; step < 200; step++ {
		if rng.Intn(2) == 0 {
			rel.SetValue(rng.Intn(20), rng.Intn(3), fmt.Sprintf("v%d", rng.Intn(4)))
		} else {
			tr.Set(rng.Intn(20), rng.Intn(3), fmt.Sprintf("v%d", rng.Intn(4)))
		}
		tr.Sync()
		if got, want := tr.Stats(), ComputeStatsNaive(f, rel); got != want {
			t.Fatalf("step %d: Stats = %+v, want %+v", step, got, want)
		}
	}
}

// TestTrackerSyncFallsBackOnGap pins the rebuild fallbacks: an Append
// (journal barrier) and a journal overflow both leave Sync no deltas to
// replay, and it must rebuild rather than go stale.
func TestTrackerSyncFallsBackOnGap(t *testing.T) {
	rng := stats.NewRNG(5)
	rel := randomRelation(rng, 10, 3)
	f := FD{LHS: NewAttrSet(0, 2), RHS: 1}
	tr := NewTracker(f, rel)

	rel.MustAppend(dataset.Tuple{"v0", "v1", "v0"})
	tr.Sync()
	if got, want := tr.Stats(), ComputeStatsNaive(f, rel); got != want {
		t.Fatalf("after Append: Stats = %+v, want %+v", got, want)
	}
	for i := 0; i < 10000; i++ {
		rel.SetValue(i%rel.NumRows(), 1, fmt.Sprintf("v%d", i%6))
	}
	tr.Sync()
	if got, want := tr.Stats(), ComputeStatsNaive(f, rel); got != want {
		t.Fatalf("after overflow: Stats = %+v, want %+v", got, want)
	}
}

// TestMultiTrackerSync covers the multi-FD sync entry point against
// external edits.
func TestMultiTrackerSync(t *testing.T) {
	rng := stats.NewRNG(21)
	rel := randomRelation(rng, 25, 4)
	fds := randomFDs(rng, 4, 6)
	mt := NewMultiTracker(fds, rel)
	for step := 0; step < 50; step++ {
		rel.SetValue(rng.Intn(25), rng.Intn(4), fmt.Sprintf("v%d", rng.Intn(5)))
		mt.Sync()
		for i, f := range fds {
			if got, want := mt.Stats(i), ComputeStatsNaive(f, rel); got != want {
				t.Fatalf("step %d fd %v: Stats = %+v, want %+v", step, f, got, want)
			}
		}
	}
}
