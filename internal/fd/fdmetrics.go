package fd

import (
	"exptrain/internal/dataset"
	"exptrain/internal/metrics"
)

// CompliantRows returns c(f): the set of row indices not involved in any
// violating pair of f over rel — the tuples f deems clean (§A.2).
func CompliantRows(f FD, rel *dataset.Relation) map[int]struct{} {
	dirty := make(map[int]struct{})
	for _, p := range ViolatingPairs(f, rel) {
		dirty[p.A] = struct{}{}
		dirty[p.B] = struct{}{}
	}
	clean := make(map[int]struct{}, rel.NumRows()-len(dirty))
	for i := 0; i < rel.NumRows(); i++ {
		if _, bad := dirty[i]; !bad {
			clean[i] = struct{}{}
		}
	}
	return clean
}

// ScoreFD evaluates f as a clean-tuple predictor against the ground-truth
// clean set cg (§A.2): precision = |c(f) ∩ c_g| / |c(f)| and
// recall = |c(f) ∩ c_g| / |c_g|. (The paper prints recall as
// |c(f)|/|c_g|, which can exceed 1; we use the standard intersection
// form, which coincides whenever c(f) ⊆ c_g and keeps the score a true
// recall.)
func ScoreFD(f FD, rel *dataset.Relation, cg map[int]struct{}) metrics.PRF1 {
	return metrics.FromSets(CompliantRows(f, rel), cg)
}

// F1Similarity returns 1 − |F1(a) − F1(b)|, the discount factor the "+"
// evaluation variants apply when crediting a predicted FD that is a
// subset or superset of the ground-truth FD (§A.2): semantically close
// FDs with similar explanatory power are discounted little.
func F1Similarity(a, b FD, rel *dataset.Relation, cg map[int]struct{}) float64 {
	fa := ScoreFD(a, rel, cg).F1
	fb := ScoreFD(b, rel, cg).F1
	d := fa - fb
	if d < 0 {
		d = -d
	}
	return 1 - d
}
