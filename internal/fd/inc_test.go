package fd

import (
	"fmt"
	"reflect"
	"testing"

	"exptrain/internal/dataset"
	"exptrain/internal/stats"
)

// checkCacheAgainstRebuild asserts that a warm, delta-maintained cache
// answers every read — partitions, stats, minority rows, agreeing pairs
// — bit-identically to from-scratch computation over the same relation.
func checkCacheAgainstRebuild(t *testing.T, cache *PLICache, rel *dataset.Relation, fds []FD, ctx string) {
	t.Helper()
	for _, f := range fds {
		fctx := fmt.Sprintf("%s fd %v", ctx, f)
		samePartition(t, cache.Partition(f.LHS), PartitionOnNaive(rel, f.LHS), fctx)
		if got, want := cache.Stats(f), ComputeStatsNaive(f, rel); got != want {
			t.Fatalf("%s: Stats = %+v, want %+v", fctx, got, want)
		}
		if got, want := cache.MinorityRows(f), MinorityRowsNaive(f, rel); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: MinorityRows = %v, want %v", fctx, got, want)
		}
		got, want := cache.AgreeingPairs(f), AgreeingPairsNaive(f, rel)
		if len(got) != len(want) {
			t.Fatalf("%s: %d agreeing pairs, want %d", fctx, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: agreeing pair %d = %v, want %v", fctx, i, got[i], want[i])
			}
		}
	}
}

// TestPLIIncrementalMatchesRebuild is the delta-protocol property test:
// a warm cache absorbing arbitrary seeded edit sequences — single-cell
// revisions (the arithmetic stats-adjust path), multi-cell batches (the
// evict-and-recount path), fresh dictionary values, and Append (the
// journal barrier forcing a full rebuild) — must stay bit-identical to
// recomputation from scratch after every batch.
func TestPLIIncrementalMatchesRebuild(t *testing.T) {
	rng := stats.NewRNG(2024)
	for trial := 0; trial < 30; trial++ {
		arity := 2 + rng.Intn(4)
		rows := 3 + rng.Intn(40)
		rel := randomRelation(rng, rows, arity)
		cache := NewPLICache(rel)
		fds := randomFDs(rng, arity, 6)
		checkCacheAgainstRebuild(t, cache, rel, fds, fmt.Sprintf("trial %d warmup", trial))

		for batch := 0; batch < 12; batch++ {
			switch rng.Intn(5) {
			case 0: // multi-cell batch → eviction path
				for m := 0; m < 2+rng.Intn(4); m++ {
					rel.SetValue(rng.Intn(rel.NumRows()), rng.Intn(arity), fmt.Sprintf("v%d", rng.Intn(5)))
				}
			case 1: // Append raises the journal barrier → full rebuild
				tup := make(dataset.Tuple, arity)
				for j := range tup {
					tup[j] = fmt.Sprintf("v%d", rng.Intn(3))
				}
				rel.MustAppend(tup)
			case 2: // single edit introducing a fresh dictionary value
				rel.SetValue(rng.Intn(rel.NumRows()), rng.Intn(arity), fmt.Sprintf("fresh-%d-%d", trial, batch))
			case 3: // single no-op write (Old == New delta must be skipped)
				i, j := rng.Intn(rel.NumRows()), rng.Intn(arity)
				rel.SetValue(i, j, rel.Value(i, j))
			default: // single revision → arithmetic stats-adjust path
				rel.SetValue(rng.Intn(rel.NumRows()), rng.Intn(arity), fmt.Sprintf("v%d", rng.Intn(5)))
			}
			checkCacheAgainstRebuild(t, cache, rel, fds, fmt.Sprintf("trial %d batch %d", trial, batch))
		}
	}
}

// TestPLIIncrementalJournalOverflow drives more single-cell edits than
// the relation's delta journal retains between reads, forcing the
// cache's gap-not-covered fallback, then verifies full agreement.
func TestPLIIncrementalJournalOverflow(t *testing.T) {
	rng := stats.NewRNG(77)
	rel := randomRelation(rng, 30, 4)
	cache := NewPLICache(rel)
	fds := randomFDs(rng, 4, 5)
	checkCacheAgainstRebuild(t, cache, rel, fds, "warmup")
	// maxJournal is 4096; 10k edits guarantee the cache's snapshot
	// version falls off the journal.
	for m := 0; m < 10000; m++ {
		rel.SetValue(rng.Intn(rel.NumRows()), rng.Intn(4), fmt.Sprintf("v%d", rng.Intn(6)))
	}
	checkCacheAgainstRebuild(t, cache, rel, fds, "after overflow")
	rel.SetValue(0, 0, "post")
	checkCacheAgainstRebuild(t, cache, rel, fds, "single edit after overflow")
}

// FuzzPLIDelta feeds arbitrary edit scripts to a warm cache and checks
// the incremental partitions and stats against full recomputation after
// every step. Each script byte triple encodes (row, column, value); a
// high value nibble inserts a read between edits so both the one-delta
// and batched replay paths run.
func FuzzPLIDelta(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{255, 255, 255, 0, 0, 0, 9, 9, 9, 1, 2, 3})
	f.Fuzz(func(t *testing.T, script []byte) {
		rng := stats.NewRNG(11)
		const arity = 4
		rel := randomRelation(rng, 16, arity)
		cache := NewPLICache(rel)
		fds := []FD{
			{LHS: NewAttrSet(0), RHS: 1},
			{LHS: NewAttrSet(1, 2), RHS: 3},
			{LHS: NewAttrSet(0, 2, 3), RHS: 1},
		}
		check := func(step int) {
			for _, fdep := range fds {
				ctx := fmt.Sprintf("step %d fd %v", step, fdep)
				samePartition(t, cache.Partition(fdep.LHS), PartitionOnNaive(rel, fdep.LHS), ctx)
				if got, want := cache.Stats(fdep), ComputeStatsNaive(fdep, rel); got != want {
					t.Fatalf("%s: Stats = %+v, want %+v", ctx, got, want)
				}
			}
		}
		check(-1)
		for i := 0; i+2 < len(script); i += 3 {
			row := int(script[i]) % rel.NumRows()
			col := int(script[i+1]) % arity
			val := fmt.Sprintf("v%d", script[i+2]&0x0f)
			rel.SetValue(row, col, val)
			if script[i+2]&0x10 != 0 {
				check(i)
			}
		}
		check(len(script))
	})
}
