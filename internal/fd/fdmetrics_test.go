package fd

import (
	"math"
	"testing"
)

func TestCompliantRowsTable1(t *testing.T) {
	rel := table1()
	f := MustParse("Team->City", rel.Schema())
	clean := CompliantRows(f, rel)
	// t1,t2 are in the only violation; t3,t4,t5 are compliant.
	if len(clean) != 3 {
		t.Fatalf("compliant rows = %v, want 3", clean)
	}
	for _, r := range []int{2, 3, 4} {
		if _, ok := clean[r]; !ok {
			t.Errorf("row %d should be compliant", r)
		}
	}
}

func TestScoreFDPerfect(t *testing.T) {
	rel := table1()
	f := MustParse("Team->City", rel.Schema())
	// Ground truth agrees exactly with the FD's clean set.
	cg := CompliantRows(f, rel)
	s := ScoreFD(f, rel, cg)
	if s.Precision != 1 || s.Recall != 1 || s.F1 != 1 {
		t.Fatalf("perfect agreement scored %+v", s)
	}
}

func TestScoreFDPartial(t *testing.T) {
	rel := table1()
	f := MustParse("Team->City", rel.Schema())
	// Ground truth says rows 2,3 are clean; FD predicts 2,3,4 clean.
	cg := map[int]struct{}{2: {}, 3: {}}
	s := ScoreFD(f, rel, cg)
	if math.Abs(s.Precision-2.0/3.0) > 1e-12 {
		t.Errorf("precision = %v, want 2/3", s.Precision)
	}
	if s.Recall != 1 {
		t.Errorf("recall = %v, want 1", s.Recall)
	}
	wantF1 := 2 * (2.0 / 3.0) * 1 / (2.0/3.0 + 1)
	if math.Abs(s.F1-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", s.F1, wantF1)
	}
}

func TestScoreFDEmptyDenominators(t *testing.T) {
	rel := table1()
	f := MustParse("Team->City", rel.Schema())
	s := ScoreFD(f, rel, map[int]struct{}{})
	if s.Recall != 0 || s.F1 != 0 {
		t.Fatalf("empty ground truth scored %+v", s)
	}
}

func TestF1SimilarityBounds(t *testing.T) {
	rel := table1()
	a := MustParse("Team->City", rel.Schema())
	b := MustParse("Team,Role->City", rel.Schema())
	cg := CompliantRows(a, rel)
	sim := F1Similarity(a, b, rel, cg)
	if sim < 0 || sim > 1 {
		t.Fatalf("similarity out of [0,1]: %v", sim)
	}
	// Self-similarity is exactly 1.
	if got := F1Similarity(a, a, rel, cg); got != 1 {
		t.Fatalf("self similarity = %v", got)
	}
	// Symmetry.
	if F1Similarity(a, b, rel, cg) != F1Similarity(b, a, rel, cg) {
		t.Fatal("similarity not symmetric")
	}
}
