package fd

import (
	"fmt"
	"sort"
)

// SpaceConfig controls hypothesis-space enumeration.
type SpaceConfig struct {
	// Arity is the number of attributes in the schema.
	Arity int
	// MaxLHS bounds the LHS cardinality. The paper's evaluation uses FDs
	// with at most four attributes total (§C.1), i.e. MaxLHS = 3 with the
	// single RHS attribute.
	MaxLHS int
	// MaxFDs truncates the enumeration to the first MaxFDs hypotheses in
	// canonical order (0 means unlimited). §C.1 uses a 38-FD hypothesis
	// space per dataset.
	MaxFDs int
	// Attrs optionally restricts enumeration to a subset of attribute
	// positions; nil means all.
	Attrs []int
}

// Enumerate generates the hypothesis space: every nontrivial normalized
// FD over the configured attributes with |LHS| ≤ MaxLHS, in canonical
// order (by LHS size, then LHS bitmask, then RHS). Canonical order makes
// the space — and therefore every belief vector over it — deterministic
// across runs.
func Enumerate(cfg SpaceConfig) ([]FD, error) {
	if cfg.Arity <= 1 {
		return nil, fmt.Errorf("fd: need at least two attributes, got %d", cfg.Arity)
	}
	if cfg.MaxLHS <= 0 {
		return nil, fmt.Errorf("fd: MaxLHS must be positive, got %d", cfg.MaxLHS)
	}
	universe := cfg.Attrs
	if universe == nil {
		universe = make([]int, cfg.Arity)
		for i := range universe {
			universe[i] = i
		}
	}
	for _, a := range universe {
		if a < 0 || a >= cfg.Arity {
			return nil, fmt.Errorf("fd: attribute %d outside schema arity %d", a, cfg.Arity)
		}
	}
	sorted := append([]int(nil), universe...)
	sort.Ints(sorted)

	var out []FD
	maxLHS := cfg.MaxLHS
	if maxLHS > len(sorted)-1 {
		maxLHS = len(sorted) - 1
	}
	for size := 1; size <= maxLHS; size++ {
		for _, lhsIdx := range AllSubsetsOfSize(len(sorted), size) {
			var lhs AttrSet
			for _, i := range lhsIdx.Attrs() {
				lhs = lhs.Add(sorted[i])
			}
			for _, rhs := range sorted {
				if lhs.Has(rhs) {
					continue
				}
				out = append(out, FD{LHS: lhs, RHS: rhs})
				if cfg.MaxFDs > 0 && len(out) == cfg.MaxFDs {
					return out, nil
				}
			}
		}
	}
	return out, nil
}

// MustEnumerate is Enumerate that panics on error.
func MustEnumerate(cfg SpaceConfig) []FD {
	fds, err := Enumerate(cfg)
	if err != nil {
		panic(err)
	}
	return fds
}

// Space is an indexed hypothesis space: a canonical list of FDs plus
// O(1) FD→index lookup. Beliefs are vectors over a Space.
type Space struct {
	fds   []FD
	index map[FD]int
}

// NewSpace builds a Space from an FD list, rejecting duplicates.
func NewSpace(fds []FD) (*Space, error) {
	s := &Space{fds: append([]FD(nil), fds...), index: make(map[FD]int, len(fds))}
	for i, f := range s.fds {
		if _, dup := s.index[f]; dup {
			return nil, fmt.Errorf("fd: duplicate FD %v in space", f)
		}
		s.index[f] = i
	}
	return s, nil
}

// MustNewSpace is NewSpace that panics on error.
func MustNewSpace(fds []FD) *Space {
	s, err := NewSpace(fds)
	if err != nil {
		panic(err)
	}
	return s
}

// Size returns the number of hypotheses.
func (s *Space) Size() int { return len(s.fds) }

// FD returns the hypothesis at index i.
func (s *Space) FD(i int) FD { return s.fds[i] }

// FDs returns a copy of the hypothesis list.
func (s *Space) FDs() []FD { return append([]FD(nil), s.fds...) }

// Index returns the position of f and whether it is in the space.
func (s *Space) Index(f FD) (int, bool) {
	i, ok := s.index[f]
	return i, ok
}

// Contains reports whether f is in the space.
func (s *Space) Contains(f FD) bool {
	_, ok := s.index[f]
	return ok
}

// Related returns the indices of hypotheses that are subset/superset
// related to f (excluding f itself), used for prior configuration and
// the "+" evaluation variants.
func (s *Space) Related(f FD) []int {
	var out []int
	for i, g := range s.fds {
		if g != f && g.Related(f) {
			out = append(out, i)
		}
	}
	return out
}
