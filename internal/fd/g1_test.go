package fd

import (
	"math"
	"testing"
	"testing/quick"

	"exptrain/internal/dataset"
	"exptrain/internal/stats"
)

// TestG1PaperExample reproduces Example 1: g₁(Team→City) over Table 1 is
// 1/25 = 0.04 — tuples t1,t2 violate, t3,t4 satisfy.
func TestG1PaperExample(t *testing.T) {
	rel := table1()
	f := MustParse("Team->City", rel.Schema())
	if got := G1(f, rel); math.Abs(got-0.04) > 1e-12 {
		t.Fatalf("g1(Team->City) = %v, want 0.04", got)
	}
	st := ComputeStats(f, rel)
	if st.Violating != 1 {
		t.Fatalf("violating pairs = %d, want 1 (t1,t2)", st.Violating)
	}
	if st.Compliant != 1 {
		t.Fatalf("compliant pairs = %d, want 1 (t3,t4)", st.Compliant)
	}
	if st.Agreeing != 2 {
		t.Fatalf("agreeing pairs = %d, want 2", st.Agreeing)
	}
}

func TestStatusClassification(t *testing.T) {
	rel := table1()
	f := MustParse("Team->City", rel.Schema())
	// t1,t2 share Team=Lakers but differ on City: violating.
	if got := Status(f, rel, dataset.NewPair(0, 1)); got != Violating {
		t.Errorf("(t1,t2) = %v, want violating", got)
	}
	// t3,t4 share Team=Bulls and City=Chicago: compliant.
	if got := Status(f, rel, dataset.NewPair(2, 3)); got != Compliant {
		t.Errorf("(t3,t4) = %v, want compliant", got)
	}
	// t1,t5 differ on Team: neutral.
	if got := Status(f, rel, dataset.NewPair(0, 4)); got != Neutral {
		t.Errorf("(t1,t5) = %v, want neutral", got)
	}
}

func TestStatusStrings(t *testing.T) {
	if Neutral.String() != "neutral" || Compliant.String() != "compliant" || Violating.String() != "violating" {
		t.Error("PairStatus string rendering wrong")
	}
	if PairStatus(99).String() != "unknown" {
		t.Error("unknown status should render 'unknown'")
	}
}

func TestViolatingPairsMatchesStatus(t *testing.T) {
	rel := table1()
	for _, spec := range []string{"Team->City", "City->Team", "Role->Apps", "Apps->Role"} {
		f := MustParse(spec, rel.Schema())
		got := map[dataset.Pair]bool{}
		for _, p := range ViolatingPairs(f, rel) {
			got[p] = true
		}
		for _, p := range dataset.AllPairs(rel.NumRows()) {
			want := Status(f, rel, p) == Violating
			if got[p] != want {
				t.Errorf("%s pair %v: listed=%v statusViolating=%v", spec, p, got[p], want)
			}
		}
	}
}

func TestAgreeingPairsMatchesStatus(t *testing.T) {
	rel := table1()
	f := MustParse("Team->City", rel.Schema())
	got := map[dataset.Pair]bool{}
	for _, p := range AgreeingPairs(f, rel) {
		got[p] = true
	}
	for _, p := range dataset.AllPairs(rel.NumRows()) {
		want := Status(f, rel, p) != Neutral
		if got[p] != want {
			t.Errorf("pair %v: agreeing=%v want=%v", p, got[p], want)
		}
	}
}

func TestConfidence(t *testing.T) {
	rel := table1()
	f := MustParse("Team->City", rel.Schema())
	// 1 compliant of 2 agreeing pairs.
	if got := Confidence(f, rel); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Confidence = %v, want 0.5", got)
	}
	// Player is a key: no agreeing pairs → vacuous confidence 1.
	key := MustParse("Player->Team", rel.Schema())
	if got := Confidence(key, rel); got != 1 {
		t.Fatalf("key FD confidence = %v, want 1", got)
	}
}

func TestStatsOnEmptyRelation(t *testing.T) {
	rel := dataset.New(dataset.MustSchema("a", "b"))
	f := MustNew(NewAttrSet(0), 1)
	st := ComputeStats(f, rel)
	if st.G1() != 0 || st.Confidence() != 1 {
		t.Fatalf("empty relation: g1=%v conf=%v", st.G1(), st.Confidence())
	}
}

// TestStatsAgainstBruteForce cross-checks the grouped computation against
// a quadratic scan on random relations.
func TestStatsAgainstBruteForce(t *testing.T) {
	rng := stats.NewRNG(5150)
	f := func(seedRaw uint16) bool {
		n := 3 + int(seedRaw%30)
		rel := dataset.New(dataset.MustSchema("a", "b", "c"))
		vocab := []string{"x", "y", "z"}
		for i := 0; i < n; i++ {
			rel.MustAppend(dataset.Tuple{
				vocab[rng.Intn(3)], vocab[rng.Intn(3)], vocab[rng.Intn(3)],
			})
		}
		fdv := MustNew(NewAttrSet(0, 1), 2)
		st := ComputeStats(fdv, rel)
		var agree, comp int
		for _, p := range dataset.AllPairs(n) {
			switch Status(fdv, rel, p) {
			case Compliant:
				agree++
				comp++
			case Violating:
				agree++
			}
		}
		return st.Agreeing == agree && st.Compliant == comp &&
			st.Violating == agree-comp && st.Rows == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestViolatingCells(t *testing.T) {
	rel := table1()
	f := MustParse("Team->City", rel.Schema())
	cells := ViolatingCells(f, rel)
	team := rel.Schema().MustIndex("Team")
	city := rel.Schema().MustIndex("City")
	// Only the (t1,t2) violation; its Team and City cells are in C_v.
	want := map[Cell]struct{}{
		{0, team}: {}, {0, city}: {},
		{1, team}: {}, {1, city}: {},
	}
	if len(cells) != len(want) {
		t.Fatalf("C_v has %d cells, want %d: %v", len(cells), len(want), cells)
	}
	for c := range want {
		if _, ok := cells[c]; !ok {
			t.Errorf("missing cell %v", c)
		}
	}
}

func TestViolatingRows(t *testing.T) {
	rel := table1()
	f := MustParse("Team->City", rel.Schema())
	rows := ViolatingRows([]FD{f}, rel)
	if len(rows) != 2 {
		t.Fatalf("violating rows = %v, want {0,1}", rows)
	}
	for _, r := range []int{0, 1} {
		if _, ok := rows[r]; !ok {
			t.Errorf("row %d missing", r)
		}
	}
}

func TestG1MonotoneUnderLHSExtension(t *testing.T) {
	// Adding attributes to the LHS can only reduce agreeing pairs, so the
	// violating count (and g1) cannot increase: XY→Z has g1 ≤ X→Z.
	rng := stats.NewRNG(8855)
	f := func(seedRaw uint16) bool {
		n := 5 + int(seedRaw%40)
		rel := dataset.New(dataset.MustSchema("a", "b", "c"))
		vocab := []string{"u", "v", "w", "x"}
		for i := 0; i < n; i++ {
			rel.MustAppend(dataset.Tuple{
				vocab[rng.Intn(2)], vocab[rng.Intn(4)], vocab[rng.Intn(3)],
			})
		}
		base := MustNew(NewAttrSet(0), 2)
		ext := MustNew(NewAttrSet(0, 1), 2)
		return G1(ext, rel) <= G1(base, rel)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
