package fd

import (
	"sort"

	"exptrain/internal/dataset"
)

// minorityFraction bounds how large an RHS value class may be, relative
// to its LHS group, and still be flagged as erroneous. Injected errors
// are rare deviations (usually a single scrambled cell), whereas an
// approximate FD's structural exceptions (a remake of a movie, two
// facilities sharing a name) come in balanced classes; the threshold
// separates the two.
const minorityFraction = 0.25

// MinorityRows returns the rows flagged as erroneous by f under the
// standard FD-repair heuristic (Chu et al. 2013; Rekatsinas et al.
// 2017): within each group of rows agreeing on f's LHS, the plurality
// RHS value is presumed clean and rows holding a *rare* deviating value
// (a class no larger than minorityFraction of the group, and never the
// plurality itself) are flagged. Groups with a single distinct RHS
// value flag nothing. Ties for the plurality are broken toward the
// lexicographically smallest value so detection is deterministic.
func MinorityRows(f FD, rel *dataset.Relation) map[int]struct{} {
	flagged := make(map[int]struct{})
	var sc pliScratch
	minorityFromPartition(PartitionOn(rel, f.LHS), rel, f.RHS, flagged, &sc)
	return flagged
}

// minorityFromPartition applies the minority rule to each class of the
// stripped LHS partition, counting RHS dictionary codes with a
// touched-list counter array from the caller-owned scratch. The
// plurality tie-break still compares the decoded strings, preserving
// the naive implementation's deterministic choice exactly.
func minorityFromPartition(p *Partition, rel *dataset.Relation, rhs int, flagged map[int]struct{}, sc *pliScratch) {
	codes := rel.ColumnCodes(rhs)
	cnt := grow(sc.cnt, rel.DictLen(rhs))
	for i := range cnt {
		cnt[i] = 0
	}
	touched := sc.touched[:0]
	for _, rows := range p.Classes {
		touched = touched[:0]
		for _, r := range rows {
			c := codes[r]
			if cnt[c] == 0 {
				touched = append(touched, c)
			}
			cnt[c]++
		}
		if len(touched) < 2 {
			for _, c := range touched {
				cnt[c] = 0
			}
			continue
		}
		// Plurality code: highest count, ties toward the smallest string.
		maj := touched[0]
		for _, c := range touched[1:] {
			if cnt[c] > cnt[maj] ||
				(cnt[c] == cnt[maj] && rel.DictValue(rhs, c) < rel.DictValue(rhs, maj)) {
				maj = c
			}
		}
		maxClass := int32(minorityFraction * float64(len(rows)))
		if maxClass < 1 {
			maxClass = 1
		}
		for _, r := range rows {
			c := codes[r]
			if c != maj && cnt[c] <= maxClass {
				flagged[int(r)] = struct{}{}
			}
		}
		for _, c := range touched {
			cnt[c] = 0
		}
	}
	sc.cnt, sc.touched = cnt[:0], touched[:0]
}

// MinorityRowsNaive is the original string-keyed implementation,
// retained as the reference the dictionary/PLI fast paths are
// property-tested against.
func MinorityRowsNaive(f FD, rel *dataset.Relation) map[int]struct{} {
	lhs := f.LHS.Attrs()
	groups := make(map[string][]int)
	for i := 0; i < rel.NumRows(); i++ {
		key := rel.ProjectKey(i, lhs)
		groups[key] = append(groups[key], i)
	}
	flagged := make(map[int]struct{})
	for _, rows := range groups {
		if len(rows) < 2 {
			continue
		}
		counts := make(map[string]int)
		for _, r := range rows {
			counts[rel.Value(r, f.RHS)]++
		}
		if len(counts) < 2 {
			continue
		}
		// Plurality value, ties toward the smallest value.
		vals := make([]string, 0, len(counts))
		for v := range counts {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		majority := vals[0]
		for _, v := range vals[1:] {
			if counts[v] > counts[majority] {
				majority = v
			}
		}
		maxClass := int(minorityFraction * float64(len(rows)))
		if maxClass < 1 {
			maxClass = 1
		}
		for _, r := range rows {
			v := rel.Value(r, f.RHS)
			if v != majority && counts[v] <= maxClass {
				flagged[r] = struct{}{}
			}
		}
	}
	return flagged
}

// DetectErrors unions MinorityRows over a set of believed FDs: the rows
// the model predicts to be dirty. Callers scoring the same relation
// repeatedly should use PLICache.DetectErrors, which shares the LHS
// partitions across FDs and calls.
func DetectErrors(fds []FD, rel *dataset.Relation) map[int]struct{} {
	out := make(map[int]struct{})
	var sc pliScratch
	for _, f := range fds {
		minorityFromPartition(PartitionOn(rel, f.LHS), rel, f.RHS, out, &sc)
	}
	return out
}
