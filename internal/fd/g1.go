package fd

import (
	"math/bits"

	"exptrain/internal/dataset"
)

// PairStatus classifies a tuple pair with respect to one FD.
type PairStatus int

const (
	// Neutral: the pair disagrees on the LHS, so the FD says nothing
	// about it.
	Neutral PairStatus = iota
	// Compliant: the pair agrees on the LHS and on the RHS.
	Compliant
	// Violating: the pair agrees on the LHS but disagrees on the RHS —
	// a violation of the FD.
	Violating
)

func (s PairStatus) String() string {
	switch s {
	case Neutral:
		return "neutral"
	case Compliant:
		return "compliant"
	case Violating:
		return "violating"
	default:
		return "unknown"
	}
}

// Status classifies pair p against f over rel. It runs entirely on
// dictionary codes — one int32 compare per LHS attribute plus one for
// the RHS, iterating the LHS bitmask directly so no attribute slice is
// materialized — which matters because the belief layer classifies
// every presented pair against every hypothesis on every update.
func Status(f FD, rel *dataset.Relation, p dataset.Pair) PairStatus {
	for v := uint64(f.LHS); v != 0; v &= v - 1 {
		a := bits.TrailingZeros64(v)
		if rel.Code(p.A, a) != rel.Code(p.B, a) {
			return Neutral
		}
	}
	if rel.Code(p.A, f.RHS) == rel.Code(p.B, f.RHS) {
		return Compliant
	}
	return Violating
}

// Stats holds the pair-level counts of an FD over a relation.
type Stats struct {
	// Agreeing is the number of unordered pairs that agree on the LHS.
	Agreeing int
	// Compliant is the number of unordered pairs that agree on the LHS
	// and the RHS.
	Compliant int
	// Violating = Agreeing − Compliant.
	Violating int
	// Rows is the relation size the counts were computed over.
	Rows int
}

// G1 returns the scaled g₁ measure of the paper: the number of
// (unordered) violating pairs divided by |r|². The paper's Example 1
// fixes the convention — g₁(Team→City) over Table 1's five tuples is
// 1/25 = 0.04, i.e. the single violating pair counted once against n².
func (s Stats) G1() float64 {
	if s.Rows == 0 {
		return 0
	}
	return float64(s.Violating) / float64(s.Rows*s.Rows)
}

// Confidence returns the fraction of LHS-agreeing pairs that comply with
// the FD, i.e. 1 − (conditional violation rate). This is the
// "confidence" the belief layer models per FD; an FD with no agreeing
// pairs is vacuously satisfied and gets confidence 1.
func (s Stats) Confidence() float64 {
	if s.Agreeing == 0 {
		return 1
	}
	return float64(s.Compliant) / float64(s.Agreeing)
}

// ComputeStats counts agreeing/compliant/violating pairs for f over rel
// by partitioning rows on the LHS codes and, within each class, counting
// RHS codes: with group size g and RHS-class sizes c_i, the group
// contributes C(g,2) agreeing and ΣC(c_i,2) compliant pairs.
// O(n·|LHS|) time on integer codes; callers evaluating many FDs over
// one relation should go through a PLICache to share the LHS
// partitions.
func ComputeStats(f FD, rel *dataset.Relation) Stats {
	return PartitionOn(rel, f.LHS).StatsFor(rel, f.RHS)
}

// ComputeStatsNaive is the original string-keyed implementation,
// retained as the reference the dictionary/PLI fast paths are
// property-tested against.
func ComputeStatsNaive(f FD, rel *dataset.Relation) Stats {
	lhs := f.LHS.Attrs()
	n := rel.NumRows()
	groups := make(map[string]map[string]int)
	sizes := make(map[string]int)
	for i := 0; i < n; i++ {
		key := rel.ProjectKey(i, lhs)
		rhsVal := rel.Value(i, f.RHS)
		cls := groups[key]
		if cls == nil {
			cls = make(map[string]int)
			groups[key] = cls
		}
		cls[rhsVal]++
		sizes[key]++
	}
	st := Stats{Rows: n}
	for key, g := range sizes {
		st.Agreeing += g * (g - 1) / 2
		for _, c := range groups[key] {
			st.Compliant += c * (c - 1) / 2
		}
	}
	st.Violating = st.Agreeing - st.Compliant
	return st
}

// G1 computes the scaled g₁ measure of f over rel.
func G1(f FD, rel *dataset.Relation) float64 {
	return ComputeStats(f, rel).G1()
}

// Confidence computes the pair-conditional compliance rate of f over rel.
func Confidence(f FD, rel *dataset.Relation) float64 {
	return ComputeStats(f, rel).Confidence()
}

// ViolatingPairs returns every unordered pair of rel that violates f, in
// deterministic order (groups in first-seen order, ascending row pairs
// within each group — a stripped partition's classes sorted by smallest
// member enumerate in exactly that order).
func ViolatingPairs(f FD, rel *dataset.Relation) []dataset.Pair {
	codes := rel.ColumnCodes(f.RHS)
	var out []dataset.Pair
	for _, rows := range PartitionOn(rel, f.LHS).Classes {
		for a := 0; a < len(rows); a++ {
			for b := a + 1; b < len(rows); b++ {
				if codes[rows[a]] != codes[rows[b]] {
					out = append(out, dataset.Pair{A: int(rows[a]), B: int(rows[b])})
				}
			}
		}
	}
	return out
}

// AgreeingPairs returns every unordered pair that agrees on f's LHS
// (compliant and violating alike), in deterministic order. These are the
// pairs that carry evidence about f. Callers enumerating many FDs over
// one relation should use PLICache.AgreeingPairs, which shares the LHS
// partitions.
func AgreeingPairs(f FD, rel *dataset.Relation) []dataset.Pair {
	return agreeingFromPartition(PartitionOn(rel, f.LHS))
}

// AgreeingPairsNaive is the original string-keyed implementation,
// retained as the reference the dictionary/PLI fast paths are
// property-tested against (including the exact enumeration order, which
// the sampling pool's determinism rides on).
func AgreeingPairsNaive(f FD, rel *dataset.Relation) []dataset.Pair {
	lhs := f.LHS.Attrs()
	n := rel.NumRows()
	groups := make(map[string][]int)
	order := make([]string, 0)
	for i := 0; i < n; i++ {
		key := rel.ProjectKey(i, lhs)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	var out []dataset.Pair
	for _, key := range order {
		rows := groups[key]
		for a := 0; a < len(rows); a++ {
			for b := a + 1; b < len(rows); b++ {
				out = append(out, dataset.NewPair(rows[a], rows[b]))
			}
		}
	}
	return out
}

// Cell identifies one cell of a relation by row and attribute position.
type Cell struct {
	Row, Attr int
}

// ViolatingCells returns C_v for f over rel: the set of cells (LHS and
// RHS attributes of both tuples) involved in at least one violation of f
// (§A.1, "Detecting Errors"). The result is returned as a map for O(1)
// membership tests.
func ViolatingCells(f FD, rel *dataset.Relation) map[Cell]struct{} {
	cells := make(map[Cell]struct{})
	attrs := append(f.LHS.Attrs(), f.RHS)
	for _, p := range ViolatingPairs(f, rel) {
		for _, a := range attrs {
			cells[Cell{Row: p.A, Attr: a}] = struct{}{}
			cells[Cell{Row: p.B, Attr: a}] = struct{}{}
		}
	}
	return cells
}

// ViolatingRows returns the set of row indices involved in at least one
// violation of any of the given FDs.
func ViolatingRows(fds []FD, rel *dataset.Relation) map[int]struct{} {
	rows := make(map[int]struct{})
	for _, f := range fds {
		for _, p := range ViolatingPairs(f, rel) {
			rows[p.A] = struct{}{}
			rows[p.B] = struct{}{}
		}
	}
	return rows
}
