package fd

import (
	"testing"
	"testing/quick"

	"exptrain/internal/stats"
)

func TestClosureTextbook(t *testing.T) {
	// Classic example: F = {A→B, B→C}; A⁺ = {A,B,C}.
	fds := []FD{
		MustNew(NewAttrSet(0), 1),
		MustNew(NewAttrSet(1), 2),
	}
	got := Closure(NewAttrSet(0), fds)
	if got != NewAttrSet(0, 1, 2) {
		t.Fatalf("A+ = %v, want {0,1,2}", got)
	}
	// C⁺ = {C}: nothing is determined by C.
	if got := Closure(NewAttrSet(2), fds); got != NewAttrSet(2) {
		t.Fatalf("C+ = %v, want {2}", got)
	}
}

func TestClosureCompositeLHS(t *testing.T) {
	// F = {AB→C, C→D}; AB⁺ = {A,B,C,D}, A⁺ = {A}.
	fds := []FD{
		MustNew(NewAttrSet(0, 1), 2),
		MustNew(NewAttrSet(2), 3),
	}
	if got := Closure(NewAttrSet(0, 1), fds); got != NewAttrSet(0, 1, 2, 3) {
		t.Fatalf("AB+ = %v", got)
	}
	if got := Closure(NewAttrSet(0), fds); got != NewAttrSet(0) {
		t.Fatalf("A+ = %v", got)
	}
}

func TestImpliesTransitivity(t *testing.T) {
	fds := []FD{
		MustNew(NewAttrSet(0), 1),
		MustNew(NewAttrSet(1), 2),
	}
	// Transitivity: A→C follows.
	if !Implies(fds, MustNew(NewAttrSet(0), 2)) {
		t.Fatal("A→C should be implied")
	}
	// Augmentation: AD→C follows.
	if !Implies(fds, MustNew(NewAttrSet(0, 3), 2)) {
		t.Fatal("AD→C should be implied")
	}
	// B→A does not follow.
	if Implies(fds, MustNew(NewAttrSet(1), 0)) {
		t.Fatal("B→A should not be implied")
	}
}

func TestMinimalCoverDropsImplied(t *testing.T) {
	// A→B, B→C, A→C: the last is redundant.
	fds := []FD{
		MustNew(NewAttrSet(0), 1),
		MustNew(NewAttrSet(1), 2),
		MustNew(NewAttrSet(0), 2),
	}
	cover := MinimalCover(fds)
	if len(cover) != 2 {
		t.Fatalf("cover = %v, want 2 FDs", cover)
	}
	if !Equivalent(cover, fds) {
		t.Fatal("cover not equivalent to input")
	}
}

func TestMinimalCoverLeftReduces(t *testing.T) {
	// A→B plus AB→C: the second left-reduces to A→C (B ∈ A⁺).
	fds := []FD{
		MustNew(NewAttrSet(0), 1),
		MustNew(NewAttrSet(0, 1), 2),
	}
	cover := MinimalCover(fds)
	want := MustNew(NewAttrSet(0), 2)
	found := false
	for _, f := range cover {
		if f == want {
			found = true
		}
		if f.LHS.Count() > 1 {
			t.Fatalf("cover retains unreduced FD %v", f)
		}
	}
	if !found {
		t.Fatalf("cover %v missing reduced A→C", cover)
	}
	if !Equivalent(cover, fds) {
		t.Fatal("cover not equivalent to input")
	}
}

func TestMinimalCoverHandlesDuplicates(t *testing.T) {
	f := MustNew(NewAttrSet(0), 1)
	cover := MinimalCover([]FD{f, f, f})
	if len(cover) != 1 || cover[0] != f {
		t.Fatalf("cover = %v", cover)
	}
}

func TestMinimalCoverEmpty(t *testing.T) {
	if got := MinimalCover(nil); len(got) != 0 {
		t.Fatalf("cover of nothing = %v", got)
	}
}

func TestMinimalCoverOrderIndependent(t *testing.T) {
	fds := []FD{
		MustNew(NewAttrSet(0), 1),
		MustNew(NewAttrSet(1), 2),
		MustNew(NewAttrSet(0), 2),
		MustNew(NewAttrSet(2), 3),
		MustNew(NewAttrSet(0, 2), 3),
	}
	a := MinimalCover(fds)
	rev := make([]FD, len(fds))
	for i, f := range fds {
		rev[len(fds)-1-i] = f
	}
	b := MinimalCover(rev)
	if len(a) != len(b) {
		t.Fatalf("covers differ by order: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("covers differ by order: %v vs %v", a, b)
		}
	}
}

func TestMinimalCoverEquivalenceProperty(t *testing.T) {
	// Property: for random FD sets, MinimalCover is equivalent to the
	// input and contains no FD implied by the others.
	rng := stats.NewRNG(31337)
	f := func(nRaw uint8) bool {
		n := 1 + int(nRaw%8)
		fds := make([]FD, 0, n)
		for i := 0; i < n; i++ {
			var lhs AttrSet
			for lhs.IsEmpty() {
				for a := 0; a < 5; a++ {
					if rng.Float64() < 0.4 {
						lhs = lhs.Add(a)
					}
				}
			}
			rhs := rng.Intn(5)
			if lhs.Has(rhs) {
				lhs = lhs.Remove(rhs)
				if lhs.IsEmpty() {
					continue
				}
			}
			fds = append(fds, FD{LHS: lhs, RHS: rhs})
		}
		if len(fds) == 0 {
			return true
		}
		cover := MinimalCover(fds)
		if !Equivalent(cover, fds) {
			return false
		}
		for i := range cover {
			rest := append(append([]FD{}, cover[:i]...), cover[i+1:]...)
			if Implies(rest, cover[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	a := []FD{MustNew(NewAttrSet(0), 1)}
	b := []FD{MustNew(NewAttrSet(1), 0)}
	if Equivalent(a, b) {
		t.Fatal("A→B and B→A are not equivalent")
	}
	if !Equivalent(a, a) {
		t.Fatal("a set is equivalent to itself")
	}
}
