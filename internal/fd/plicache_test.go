package fd

import (
	"fmt"
	"reflect"
	"testing"

	"exptrain/internal/dataset"
	"exptrain/internal/stats"
)

// randomRelation builds a relation with small per-column alphabets so
// groups, refinements and minority classes all actually occur.
func randomRelation(rng *stats.RNG, rows, arity int) *dataset.Relation {
	names := make([]string, arity)
	for j := range names {
		names[j] = fmt.Sprintf("a%d", j)
	}
	rel := dataset.New(dataset.MustSchema(names...))
	for i := 0; i < rows; i++ {
		t := make(dataset.Tuple, arity)
		for j := range t {
			// Alphabet size varies per column: column j draws from
			// 2+j%5 values, so some columns nearly key the relation and
			// others group heavily.
			t[j] = fmt.Sprintf("v%d", rng.Intn(2+j%5))
		}
		rel.MustAppend(t)
	}
	return rel
}

// randomFDs enumerates a few random non-trivial FDs over the arity.
func randomFDs(rng *stats.RNG, arity, n int) []FD {
	var out []FD
	for len(out) < n {
		lhs := AttrSet(0)
		for k := 0; k <= rng.Intn(3); k++ {
			lhs = lhs.Add(rng.Intn(arity))
		}
		rhs := rng.Intn(arity)
		if lhs.IsEmpty() || lhs.Has(rhs) {
			continue
		}
		out = append(out, FD{LHS: lhs, RHS: rhs})
	}
	return out
}

func samePartition(t *testing.T, got, want *Partition, ctx string) {
	t.Helper()
	if got.Rows != want.Rows {
		t.Fatalf("%s: Rows = %d, want %d", ctx, got.Rows, want.Rows)
	}
	if len(got.Classes) != len(want.Classes) {
		t.Fatalf("%s: %d classes, want %d", ctx, len(got.Classes), len(want.Classes))
	}
	for i := range got.Classes {
		if !reflect.DeepEqual(got.Classes[i], want.Classes[i]) {
			t.Fatalf("%s: class %d = %v, want %v", ctx, i, got.Classes[i], want.Classes[i])
		}
	}
}

// TestPartitionMatchesNaive property-tests the dictionary-code
// partition construction against the retained string-keyed reference on
// random relations and attribute sets.
func TestPartitionMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(41)
	for trial := 0; trial < 60; trial++ {
		arity := 2 + rng.Intn(4)
		rel := randomRelation(rng, 1+rng.Intn(50), arity)
		for k := 1; k <= arity; k++ {
			for _, x := range AllSubsetsOfSize(arity, k) {
				samePartition(t, PartitionOn(rel, x), PartitionOnNaive(rel, x),
					fmt.Sprintf("trial %d PartitionOn(%v)", trial, x))
			}
		}
	}
}

// TestPLICacheMatchesNaive property-tests every cache-backed operation
// — refined partitions, Stats, MinorityRows, AgreeingPairs — against
// the naive implementations, interleaved with SetValue mutations to
// exercise version-based invalidation.
func TestPLICacheMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(97)
	for trial := 0; trial < 40; trial++ {
		arity := 2 + rng.Intn(4)
		rows := 2 + rng.Intn(40)
		rel := randomRelation(rng, rows, arity)
		cache := NewPLICache(rel)
		fds := randomFDs(rng, arity, 6)

		check := func(round int) {
			for _, f := range fds {
				ctx := fmt.Sprintf("trial %d round %d fd %v", trial, round, f)
				samePartition(t, cache.Partition(f.LHS), PartitionOnNaive(rel, f.LHS), ctx)
				if got, want := cache.Stats(f), ComputeStatsNaive(f, rel); got != want {
					t.Fatalf("%s: Stats = %+v, want %+v", ctx, got, want)
				}
				if got, want := cache.MinorityRows(f), MinorityRowsNaive(f, rel); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: MinorityRows = %v, want %v", ctx, got, want)
				}
				got, want := cache.AgreeingPairs(f), AgreeingPairsNaive(f, rel)
				if len(got) != len(want) {
					t.Fatalf("%s: %d agreeing pairs, want %d", ctx, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: agreeing pair %d = %v, want %v (order must match)", ctx, i, got[i], want[i])
					}
				}
			}
		}

		check(0)
		cached := cache.Len()
		if cached == 0 {
			t.Fatalf("trial %d: cache empty after use", trial)
		}
		// Mutate some cells — including brand-new values that extend the
		// dictionaries — and verify the cache invalidates.
		for m := 0; m < 3; m++ {
			i, j := rng.Intn(rows), rng.Intn(arity)
			v := fmt.Sprintf("v%d", rng.Intn(4))
			if m == 0 {
				v = fmt.Sprintf("fresh-%d-%d", trial, m)
			}
			rel.SetValue(i, j, v)
		}
		check(1)
	}
}

// TestPLICacheInvalidation pins the invalidation rule directly: a
// SetValue bumps the relation version and the next access drops every
// cached partition.
func TestPLICacheInvalidation(t *testing.T) {
	rel := dataset.New(dataset.MustSchema("a", "b"))
	rel.MustAppend(dataset.Tuple{"x", "1"})
	rel.MustAppend(dataset.Tuple{"x", "2"})
	rel.MustAppend(dataset.Tuple{"y", "1"})
	cache := NewPLICache(rel)
	f := MustNew(NewAttrSet(0), 1)
	if st := cache.Stats(f); st.Violating != 1 {
		t.Fatalf("Violating = %d, want 1", st.Violating)
	}
	if cache.Len() == 0 {
		t.Fatal("expected cached partitions")
	}
	v := rel.Version()
	rel.SetValue(1, 1, "1") // repair the violation
	if rel.Version() == v {
		t.Fatal("SetValue did not bump the relation version")
	}
	if st := cache.Stats(f); st.Violating != 0 {
		t.Fatalf("after repair Violating = %d, want 0 (stale cache?)", st.Violating)
	}
}

// TestStatusMatchesValues pins the code-compare Status against direct
// string comparison on random relations.
func TestStatusMatchesValues(t *testing.T) {
	rng := stats.NewRNG(7)
	rel := randomRelation(rng, 30, 4)
	fds := randomFDs(rng, 4, 8)
	pairs := dataset.AllPairs(rel.NumRows())
	for _, f := range fds {
		lhs := f.LHS.Attrs()
		for _, p := range pairs {
			agree := true
			for _, a := range lhs {
				if rel.Value(p.A, a) != rel.Value(p.B, a) {
					agree = false
					break
				}
			}
			want := Neutral
			if agree {
				if rel.Value(p.A, f.RHS) == rel.Value(p.B, f.RHS) {
					want = Compliant
				} else {
					want = Violating
				}
			}
			if got := Status(f, rel, p); got != want {
				t.Fatalf("Status(%v, %v) = %v, want %v", f, p, got, want)
			}
		}
	}
}
