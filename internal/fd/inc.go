package fd

import (
	"sort"

	"exptrain/internal/dataset"
)

// gkey identifies one (unstripped) equivalence group of an attribute
// set X through the refinement chain: pg is the group id the row holds
// in X's chain prefix (X minus its highest attribute; 0 for
// single-attribute sets, which have an empty prefix putting every row
// in one implicit group), and code is the row's dictionary code on X's
// highest attribute. Two rows agree on X iff their gkeys are equal,
// which is what lets a single-cell edit relocate exactly one row.
type gkey struct {
	pg   int32
	code int32
}

// incPLI is the incrementally maintained (unstripped) partition of one
// attribute set: every row — singletons included — is assigned to a
// group, so a cell edit can move one row between groups in O(|group|)
// without losing track of rows that a stripped view would hide. The
// stripped Partition the read paths consume is derived lazily and
// memoized until the next move.
//
// Group ids are dense indices into members/keys; emptied ids go on the
// free list and are reused. Because every mutation flows through the
// PLICache's deterministic replay (deltas in version order, affected
// sets in sorted order), id assignment — and therefore the whole
// structure — is reproducible for a fixed edit sequence.
type incPLI struct {
	attrs AttrSet
	// last is the highest attribute of attrs; prefix is attrs without
	// it (the TANE refinement-chain parent, empty for single attrs).
	last   int
	prefix AttrSet
	// groupOf maps row → group id; members[g] lists g's rows ascending;
	// keys[g] is g's gkey (the lookup entry to delete when g empties).
	groupOf []int32
	members [][]int32
	keys    []gkey
	lookup  map[gkey]int32
	free    []int32
	// stripped memoizes the derived stripped partition; nil after any
	// move. Its classes alias the live member slices, so a returned
	// Partition is only valid until the next relation mutation.
	stripped *Partition
}

// place assigns row to the group keyed by k, creating the group if
// needed. Rows must arrive in ascending order during a build so member
// lists come out sorted without insertion cost.
func (q *incPLI) place(row int32, k gkey) {
	g, ok := q.lookup[k]
	if !ok {
		g = q.allocGroup(k)
	}
	q.members[g] = append(q.members[g], row)
	q.groupOf[row] = g
}

// allocGroup returns a fresh (or recycled) empty group id for key k.
func (q *incPLI) allocGroup(k gkey) int32 {
	var g int32
	if n := len(q.free); n > 0 {
		g = q.free[n-1]
		q.free = q.free[:n-1]
		q.members[g] = q.members[g][:0]
	} else {
		g = int32(len(q.members))
		q.members = append(q.members, nil)
		q.keys = append(q.keys, gkey{})
	}
	q.keys[g] = k
	q.lookup[k] = g
	return g
}

// moveRow relocates row to the group keyed by k: binary-search removal
// from its current group (freeing it when emptied), sorted insertion
// into the target (creating it when absent). A row already keyed k is
// a no-op — replaying a delta against a structure already at the final
// state (freshly promoted mid-batch) must not disturb it.
func (q *incPLI) moveRow(row int32, k gkey) {
	g := q.groupOf[row]
	if q.keys[g] == k {
		return
	}
	m := q.members[g]
	i := sort.Search(len(m), func(i int) bool { return m[i] >= row })
	copy(m[i:], m[i+1:])
	m = m[:len(m)-1]
	q.members[g] = m
	if len(m) == 0 {
		delete(q.lookup, q.keys[g])
		q.free = append(q.free, g)
	}
	g2, ok := q.lookup[k]
	if !ok {
		g2 = q.allocGroup(k)
	}
	m2 := q.members[g2]
	j := sort.Search(len(m2), func(i int) bool { return m2[i] >= row })
	m2 = append(m2, 0)
	copy(m2[j+1:], m2[j:])
	m2[j] = row
	q.members[g2] = m2
	q.groupOf[row] = g2
	q.stripped = nil
}

// statsFor computes the pair counts of (attrs → a) straight off the
// live group lists, skipping the stripped view entirely — the counting
// is a sum over classes, so class order is irrelevant and the result is
// identical to Partition.statsFor over the derived view. Emptied
// (free-listed) groups keep zero-length member slices and fall out of
// the ≥2 filter. This keeps a post-edit stats sweep from paying the
// view's sort + slice materialization per edit.
func (q *incPLI) statsFor(rel *dataset.Relation, a int, sc *pliScratch) Stats {
	codes := rel.ColumnCodes(a)
	cnt := grow(sc.cnt, rel.DictLen(a))
	for i := range cnt {
		cnt[i] = 0
	}
	touched := sc.touched[:0]
	st := Stats{Rows: len(q.groupOf)}
	for _, class := range q.members {
		g := len(class)
		if g < 2 {
			continue
		}
		st.Agreeing += g * (g - 1) / 2
		touched = touched[:0]
		for _, row := range class {
			c := codes[row]
			if cnt[c] == 0 {
				touched = append(touched, c)
			}
			cnt[c]++
		}
		for _, c := range touched {
			n := int(cnt[c])
			st.Compliant += n * (n - 1) / 2
			cnt[c] = 0
		}
	}
	sc.cnt, sc.touched = cnt[:0], touched[:0]
	st.Violating = st.Agreeing - st.Compliant
	return st
}

// strippedView derives (and memoizes) the stripped Partition: the ≥2
// groups ordered by smallest member, exactly the order the rebuild
// path produces, so every downstream consumer (Stats, MinorityRows,
// AgreeingPairs) is bit-identical to a from-scratch partition. Classes
// alias the live member slices; the view is valid until the next
// relation mutation.
func (q *incPLI) strippedView() *Partition {
	if q.stripped != nil {
		return q.stripped
	}
	classes := 0
	for _, m := range q.members {
		if len(m) >= 2 {
			classes++
		}
	}
	p := &Partition{Rows: len(q.groupOf), Classes: make([][]int32, 0, classes)}
	for _, m := range q.members {
		if len(m) >= 2 {
			p.Classes = append(p.Classes, m)
		}
	}
	sort.Slice(p.Classes, func(i, j int) bool { return p.Classes[i][0] < p.Classes[j][0] })
	q.stripped = p
	return p
}
