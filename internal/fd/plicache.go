package fd

import (
	"sync"

	"exptrain/internal/dataset"
)

// PLICache memoizes stripped partitions (position-list indexes) of one
// relation per attribute set, deriving multi-attribute partitions
// TANE-style by refining the cached partition on the set minus its
// highest attribute. One cache is shared by every FD-level operation
// over the same relation — pool construction partitions once per
// distinct LHS instead of once per hypothesis, and the per-iteration
// evaluator reuses the partitions of all believed FDs across the whole
// game.
//
// The cache is invalidation-aware: it snapshots the relation's mutation
// version and drops every cached partition when the relation has been
// mutated through Append/SetValue since. It is safe for concurrent use.
type PLICache struct {
	mu      sync.Mutex
	rel     *dataset.Relation
	version uint64
	parts   map[AttrSet]*Partition
}

// NewPLICache builds an empty cache over rel. Partitions are computed
// lazily on first request.
func NewPLICache(rel *dataset.Relation) *PLICache {
	return &PLICache{
		rel:     rel,
		version: rel.Version(),
		parts:   make(map[AttrSet]*Partition),
	}
}

// Relation returns the relation the cache indexes.
func (c *PLICache) Relation() *dataset.Relation { return c.rel }

// Len returns the number of cached partitions (diagnostics and tests).
func (c *PLICache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.parts)
}

// ensureLocked flushes the cache when the relation has been mutated
// since the last call.
func (c *PLICache) ensureLocked() {
	if v := c.rel.Version(); v != c.version {
		c.version = v
		c.parts = make(map[AttrSet]*Partition)
	}
}

// Partition returns the stripped partition on x, computing and caching
// it (and every prefix partition along the refinement chain) on demand.
func (c *PLICache) Partition(x AttrSet) *Partition {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLocked()
	return c.partitionLocked(x)
}

func (c *PLICache) partitionLocked(x AttrSet) *Partition {
	if p, ok := c.parts[x]; ok {
		return p
	}
	var p *Partition
	if x.Count() <= 1 {
		p = PartitionOn(c.rel, x)
	} else {
		attrs := x.Attrs()
		last := attrs[len(attrs)-1]
		p = c.partitionLocked(x.Remove(last)).Refine(c.rel, last)
	}
	c.parts[x] = p
	return p
}

// Stats computes f's pair statistics from the cached partition on
// f.LHS — the same values ComputeStats produces from scratch.
func (c *PLICache) Stats(f FD) Stats {
	return c.Partition(f.LHS).StatsFor(c.rel, f.RHS)
}

// MinorityRows is fd.MinorityRows backed by the cached LHS partition.
func (c *PLICache) MinorityRows(f FD) map[int]struct{} {
	flagged := make(map[int]struct{})
	c.minorityInto(f, flagged)
	return flagged
}

// minorityInto unions f's minority rows into flagged.
func (c *PLICache) minorityInto(f FD, flagged map[int]struct{}) {
	minorityFromPartition(c.Partition(f.LHS), c.rel, f.RHS, flagged)
}

// DetectErrors unions MinorityRows over the believed FDs, sharing the
// cached LHS partitions. Called once per game iteration with the
// learner's current model, this is the evaluator's hot path.
func (c *PLICache) DetectErrors(fds []FD) map[int]struct{} {
	out := make(map[int]struct{})
	for _, f := range fds {
		c.minorityInto(f, out)
	}
	return out
}

// AgreeingPairs returns every unordered pair agreeing on f's LHS, in
// the same deterministic order as fd.AgreeingPairs, enumerated from the
// cached partition.
func (c *PLICache) AgreeingPairs(f FD) []dataset.Pair {
	return agreeingFromPartition(c.Partition(f.LHS))
}

// agreeingFromPartition expands a stripped LHS partition into its
// agreeing pairs. Classes are ordered by smallest member and members
// ascend, which reproduces exactly the first-seen group order of the
// naive row scan.
func agreeingFromPartition(p *Partition) []dataset.Pair {
	out := make([]dataset.Pair, 0, p.AgreeingPairCount())
	for _, rows := range p.Classes {
		for a := 0; a < len(rows); a++ {
			for b := a + 1; b < len(rows); b++ {
				out = append(out, dataset.Pair{A: rows[a], B: rows[b]})
			}
		}
	}
	return out
}
