package fd

import (
	"sort"
	"sync"

	"exptrain/internal/dataset"
)

// PLICache memoizes stripped partitions (position-list indexes) of one
// relation per attribute set, deriving multi-attribute partitions
// TANE-style by refining the cached partition on the set minus its
// highest attribute. One cache is shared by every FD-level operation
// over the same relation — pool construction partitions once per
// distinct LHS instead of once per hypothesis, and the per-iteration
// evaluator reuses the partitions of all believed FDs across the whole
// game.
//
// The cache is delta-aware: it snapshots the relation's mutation
// version and, when the relation advances, pulls the per-cell deltas
// recorded by SetValue (dataset.Relation.DeltasSince) and moves exactly
// the affected rows between equivalence classes — promoting each
// touched attribute set to an incrementally maintained index (incPLI)
// on its first edit. Cached sets whose attributes the edits never
// touched keep their partitions as-is. Only when the delta journal
// cannot cover the gap (bulk mutations such as Append, or a journal
// overflow) does the cache fall back to the wholesale flush that used
// to follow every version bump. It is safe for concurrent use.
type PLICache struct {
	mu      sync.Mutex
	rel     *dataset.Relation
	version uint64
	parts   map[AttrSet]*Partition
	// incs holds the incrementally maintained indexes of the sets that
	// have seen at least one single-cell edit. Invariant: if a set is in
	// incs, its whole refinement-chain prefix is too (promotion walks
	// the chain), and its parts entry is served from the inc's stripped
	// view.
	incs map[AttrSet]*incPLI

	// stats memoizes per-FD pair statistics at the current version.
	// Deltas evict selectively: only FDs mentioning an edited column
	// recompute, so a warm cache answers a post-edit Stats sweep mostly
	// from the memo.
	stats map[FD]Stats

	// sc holds the counting scratch the partition constructors and the
	// per-FD stats/minority paths reuse; guarded by mu.
	sc pliScratch
	// affected is replay scratch: the cached sets containing an edited
	// column, sorted so prefixes process before supersets.
	affected []AttrSet
}

// NewPLICache builds an empty cache over rel. Partitions are computed
// lazily on first request.
func NewPLICache(rel *dataset.Relation) *PLICache {
	return &PLICache{
		rel:     rel,
		version: rel.Version(),
		parts:   make(map[AttrSet]*Partition),
		incs:    make(map[AttrSet]*incPLI),
		stats:   make(map[FD]Stats),
	}
}

// Relation returns the relation the cache indexes.
func (c *PLICache) Relation() *dataset.Relation { return c.rel }

// Len returns the number of cached partitions (diagnostics and tests).
func (c *PLICache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.parts)
}

// ensureLocked brings the cache up to the relation's current version:
// a no-op when nothing changed, an incremental delta replay when the
// journal covers the gap, a wholesale flush otherwise.
func (c *PLICache) ensureLocked() {
	v := c.rel.Version()
	if v == c.version {
		return
	}
	deltas, ok := c.rel.DeltasSince(c.version)
	if !ok {
		c.version = v
		c.parts = make(map[AttrSet]*Partition)
		c.incs = make(map[AttrSet]*incPLI)
		clear(c.stats)
		return
	}
	// A single-cell revision — the interactive steady state — can adjust
	// the memoized stats arithmetically; multi-delta batches evict and
	// recount, because the adjustments would need historical cell values.
	live := 0
	for _, d := range deltas {
		if d.Old != d.New {
			live++
		}
	}
	for _, d := range deltas {
		if d.Old == d.New {
			continue
		}
		c.applyDeltaLocked(d, live == 1)
	}
	c.version = v
}

// statsAdjust is one deferred LHS-side stats adjustment: the pre-move
// group measurements of an FD whose LHS contains the edited column,
// completed against the post-move group after the replay relocates the
// row.
type statsAdjust struct {
	f         FD
	othersOld int // group size minus the row itself, pre-move
	sameOld   int // same-RHS-code members (excluding the row), pre-move
}

// applyDeltaLocked relocates one row in every cached set containing the
// edited column. Affected sets are promoted to incremental form first
// (recursively promoting their refinement-chain prefixes), then
// processed in ascending (size, mask) order so a set's prefix has
// already absorbed the delta when the set derives its new group key
// from the prefix's group ids.
//
// The per-FD stats memo is maintained alongside: when adjust is set
// (the delta is the batch's only live edit, so the relation's current
// state differs from the pre-delta state at exactly this cell), each
// memoized stat is corrected arithmetically from the row's old and new
// groups in O(|group|); otherwise affected entries are evicted and
// recounted on demand.
func (c *PLICache) applyDeltaLocked(d dataset.CellDelta, adjust bool) {
	var pending []statsAdjust
	row32 := int32(d.Row)
	for f, st := range c.stats { //etlint:ignore maporder per-FD memo updates are independent of visit order
		switch {
		case f.LHS.Has(d.Col):
			q, ok := c.incs[f.LHS]
			if !adjust || !ok {
				// No pre-delta index to measure the old group against (a
				// fresh promotion would already be at the post-delta
				// state); recount lazily.
				delete(c.stats, f)
				continue
			}
			g := q.members[q.groupOf[row32]]
			codes := c.rel.ColumnCodes(f.RHS)
			same := 0
			for _, s := range g {
				if s != row32 && codes[s] == codes[row32] {
					same++
				}
			}
			pending = append(pending, statsAdjust{f: f, othersOld: len(g) - 1, sameOld: same})
		case f.RHS == d.Col:
			if !adjust {
				delete(c.stats, f)
				continue
			}
			// The LHS partition is untouched by this delta, so promoting
			// it now (at the current state) is exact.
			q := c.promoteLocked(f.LHS)
			g := q.members[q.groupOf[row32]]
			codes := c.rel.ColumnCodes(f.RHS)
			sameOld, sameNew := 0, 0
			for _, s := range g {
				if s == row32 {
					continue
				}
				switch codes[s] {
				case d.Old:
					sameOld++
				case d.New:
					sameNew++
				}
			}
			st.Compliant += sameNew - sameOld
			st.Violating = st.Agreeing - st.Compliant
			c.stats[f] = st
		}
	}
	aff := c.affected[:0]
	for x := range c.parts { // collected set is sorted below before use
		if x.Has(d.Col) {
			aff = append(aff, x)
		}
	}
	for x := range c.incs { // collected set is sorted below before use
		if x.Has(d.Col) {
			if _, dup := c.parts[x]; !dup {
				aff = append(aff, x)
			}
		}
	}
	sort.Slice(aff, func(i, j int) bool {
		if ci, cj := aff[i].Count(), aff[j].Count(); ci != cj {
			return ci < cj
		}
		return aff[i] < aff[j]
	})
	c.affected = aff
	// Phase A: promote every affected set (reads only consistent,
	// current-state data; no group ids move yet).
	for _, x := range aff {
		c.promoteLocked(x)
	}
	// Phase B: apply the move, prefixes before supersets.
	row := int32(d.Row)
	for _, x := range aff {
		q := c.incs[x]
		var k gkey
		switch {
		case x.Count() == 1:
			k = gkey{pg: 0, code: d.New}
		case d.Col == q.last:
			k = gkey{pg: c.incs[q.prefix].groupOf[row], code: d.New}
		default:
			// The edited column is in the prefix, which already moved the
			// row; the last-attribute code is unchanged by this delta.
			k = gkey{pg: c.incs[q.prefix].groupOf[row], code: c.rel.Code(d.Row, q.last)}
		}
		q.moveRow(row, k)
		c.parts[x] = nil // re-derived lazily from the inc's stripped view
	}
	// Complete the deferred LHS-side stats adjustments against the
	// post-move groups.
	for _, p := range pending {
		q := c.incs[p.f.LHS]
		g := q.members[q.groupOf[row32]]
		codes := c.rel.ColumnCodes(p.f.RHS)
		same := 0
		for _, s := range g {
			if s != row32 && codes[s] == codes[row32] {
				same++
			}
		}
		st := c.stats[p.f]
		st.Agreeing += (len(g) - 1) - p.othersOld
		st.Compliant += same - p.sameOld
		st.Violating = st.Agreeing - st.Compliant
		c.stats[p.f] = st
	}
}

// promoteLocked builds (or returns) the incremental index for x from
// the relation's current state, promoting the refinement-chain prefix
// first so group keys have something to reference. Promotion happens at
// most once per set per flush-epoch; afterwards every edit is a single
// moveRow.
func (c *PLICache) promoteLocked(x AttrSet) *incPLI {
	if q, ok := c.incs[x]; ok {
		return q
	}
	attrs := x.Attrs()
	q := &incPLI{attrs: x, last: attrs[len(attrs)-1], lookup: make(map[gkey]int32)}
	n := c.rel.NumRows()
	q.groupOf = make([]int32, n)
	codes := c.rel.ColumnCodes(q.last)
	if len(attrs) == 1 {
		for i := 0; i < n; i++ {
			q.place(int32(i), gkey{pg: 0, code: codes[i]})
		}
	} else {
		q.prefix = x.Remove(q.last)
		pre := c.promoteLocked(q.prefix)
		for i := 0; i < n; i++ {
			q.place(int32(i), gkey{pg: pre.groupOf[i], code: codes[i]})
		}
	}
	c.incs[x] = q
	return q
}

// Partition returns the stripped partition on x, computing and caching
// it (and every prefix partition along the refinement chain) on demand.
// The returned partition is valid until the relation's next mutation:
// after an edit the cache may rewrite the underlying classes in place.
func (c *PLICache) Partition(x AttrSet) *Partition {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLocked()
	return c.partitionLocked(x)
}

func (c *PLICache) partitionLocked(x AttrSet) *Partition {
	if p, ok := c.parts[x]; ok && p != nil {
		return p
	}
	if q, ok := c.incs[x]; ok {
		p := q.strippedView()
		c.parts[x] = p
		return p
	}
	var p *Partition
	if x.Count() <= 1 {
		if x.IsEmpty() {
			p = &Partition{Rows: c.rel.NumRows()}
		} else {
			p = partitionSingle(c.rel, x.Attrs()[0], &c.sc)
		}
	} else {
		attrs := x.Attrs()
		last := attrs[len(attrs)-1]
		p = c.partitionLocked(x.Remove(last)).refine(c.rel, last, &c.sc)
	}
	c.parts[x] = p
	return p
}

// Stats computes f's pair statistics from the cached partition on
// f.LHS — the same values ComputeStats produces from scratch — using
// the cache's pooled counting scratch (no steady-state allocation).
// Results are memoized per FD; an edit evicts only the FDs mentioning
// the edited column.
func (c *PLICache) Stats(f FD) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLocked()
	if st, ok := c.stats[f]; ok {
		return st
	}
	var st Stats
	if q, ok := c.incs[f.LHS]; ok {
		// Count off the live group lists; deriving the ordered stripped
		// view per edit would dominate the incremental win.
		st = q.statsFor(c.rel, f.RHS, &c.sc)
	} else {
		st = c.partitionLocked(f.LHS).statsFor(c.rel, f.RHS, &c.sc)
	}
	c.stats[f] = st
	return st
}

// MinorityRows is fd.MinorityRows backed by the cached LHS partition.
func (c *PLICache) MinorityRows(f FD) map[int]struct{} {
	flagged := make(map[int]struct{})
	c.minorityInto(f, flagged)
	return flagged
}

// minorityInto unions f's minority rows into flagged.
func (c *PLICache) minorityInto(f FD, flagged map[int]struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLocked()
	minorityFromPartition(c.partitionLocked(f.LHS), c.rel, f.RHS, flagged, &c.sc)
}

// DetectErrors unions MinorityRows over the believed FDs, sharing the
// cached LHS partitions. Called once per game iteration with the
// learner's current model, this is the evaluator's hot path.
func (c *PLICache) DetectErrors(fds []FD) map[int]struct{} {
	out := make(map[int]struct{})
	for _, f := range fds {
		c.minorityInto(f, out)
	}
	return out
}

// AgreeingPairs returns every unordered pair agreeing on f's LHS, in
// the same deterministic order as fd.AgreeingPairs, enumerated from the
// cached partition. The result is freshly allocated (callers retain
// it); pool construction avoids materializing it at all on large
// relations by decoding sampled indices straight off the partition.
func (c *PLICache) AgreeingPairs(f FD) []dataset.Pair {
	return agreeingFromPartition(c.Partition(f.LHS))
}

// agreeingFromPartition expands a stripped LHS partition into its
// agreeing pairs. Classes are ordered by smallest member and members
// ascend, which reproduces exactly the first-seen group order of the
// naive row scan.
func agreeingFromPartition(p *Partition) []dataset.Pair {
	out := make([]dataset.Pair, 0, p.AgreeingPairCount())
	for _, rows := range p.Classes {
		for a := 0; a < len(rows); a++ {
			for b := a + 1; b < len(rows); b++ {
				out = append(out, dataset.Pair{A: int(rows[a]), B: int(rows[b])})
			}
		}
	}
	return out
}
