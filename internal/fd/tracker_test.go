package fd

import (
	"fmt"
	"testing"

	"exptrain/internal/dataset"
	"exptrain/internal/stats"
)

func trackerRelation(n int, rng *stats.RNG) *dataset.Relation {
	rel := dataset.New(dataset.MustSchema("a", "b", "c", "d"))
	vocab := []string{"0", "1", "2", "3"}
	for i := 0; i < n; i++ {
		rel.MustAppend(dataset.Tuple{
			vocab[rng.Intn(3)], vocab[rng.Intn(4)], vocab[rng.Intn(2)], vocab[rng.Intn(3)],
		})
	}
	return rel
}

func TestTrackerMatchesComputeStatsInitially(t *testing.T) {
	rng := stats.NewRNG(1)
	rel := trackerRelation(60, rng)
	for _, f := range MustEnumerate(SpaceConfig{Arity: 4, MaxLHS: 2}) {
		tr := NewTracker(f, rel)
		if got, want := tr.Stats(), ComputeStats(f, rel); got != want {
			t.Fatalf("FD %v: tracker %+v != recompute %+v", f, got, want)
		}
	}
}

func TestTrackerSetRHSMatchesRecompute(t *testing.T) {
	rng := stats.NewRNG(2)
	rel := trackerRelation(50, rng)
	f := MustNew(NewAttrSet(0, 2), 1)
	tr := NewTracker(f, rel)
	for step := 0; step < 200; step++ {
		row := rng.Intn(rel.NumRows())
		val := fmt.Sprint(rng.Intn(5))
		tr.Set(row, 1, val)
		if got, want := tr.Stats(), ComputeStats(f, rel); got != want {
			t.Fatalf("step %d: tracker %+v != recompute %+v", step, got, want)
		}
	}
}

func TestTrackerSetLHSMatchesRecompute(t *testing.T) {
	rng := stats.NewRNG(3)
	rel := trackerRelation(50, rng)
	f := MustNew(NewAttrSet(0, 2), 1)
	tr := NewTracker(f, rel)
	for step := 0; step < 200; step++ {
		row := rng.Intn(rel.NumRows())
		attr := []int{0, 2}[rng.Intn(2)]
		val := fmt.Sprint(rng.Intn(4))
		tr.Set(row, attr, val)
		if got, want := tr.Stats(), ComputeStats(f, rel); got != want {
			t.Fatalf("step %d: tracker %+v != recompute %+v", step, got, want)
		}
	}
}

func TestTrackerSetUnrelatedAttrWritesThrough(t *testing.T) {
	rng := stats.NewRNG(4)
	rel := trackerRelation(20, rng)
	f := MustNew(NewAttrSet(0), 1)
	tr := NewTracker(f, rel)
	before := tr.Stats()
	tr.Set(3, 3, "zzz")
	if rel.Value(3, 3) != "zzz" {
		t.Fatal("write did not go through")
	}
	if tr.Stats() != before {
		t.Fatal("unrelated attribute changed the stats")
	}
}

func TestTrackerSetSameValueNoop(t *testing.T) {
	rng := stats.NewRNG(5)
	rel := trackerRelation(20, rng)
	f := MustNew(NewAttrSet(0), 1)
	tr := NewTracker(f, rel)
	before := tr.Stats()
	tr.Set(0, 1, rel.Value(0, 1))
	if tr.Stats() != before {
		t.Fatal("no-op write changed the stats")
	}
}

func TestTrackerAppend(t *testing.T) {
	rng := stats.NewRNG(6)
	rel := trackerRelation(20, rng)
	f := MustNew(NewAttrSet(0), 1)
	tr := NewTracker(f, rel)
	for i := 0; i < 10; i++ {
		rel.MustAppend(dataset.Tuple{"1", "x", "0", "0"})
		tr.Append(rel.NumRows() - 1)
		if got, want := tr.Stats(), ComputeStats(f, rel); got != want {
			t.Fatalf("after append %d: tracker %+v != recompute %+v", i, got, want)
		}
	}
}

func TestMultiTrackerRandomWorkload(t *testing.T) {
	rng := stats.NewRNG(7)
	rel := trackerRelation(40, rng)
	fds := MustEnumerate(SpaceConfig{Arity: 4, MaxLHS: 2})
	m := NewMultiTracker(fds, rel)
	if m.Len() != len(fds) {
		t.Fatalf("Len = %d", m.Len())
	}
	for step := 0; step < 300; step++ {
		row := rng.Intn(rel.NumRows())
		attr := rng.Intn(4)
		val := fmt.Sprint(rng.Intn(4))
		m.Set(row, attr, val)
		if step%50 != 0 {
			continue // full cross-check every 50 steps keeps the test fast
		}
		for i, f := range fds {
			if got, want := m.Stats(i), ComputeStats(f, rel); got != want {
				t.Fatalf("step %d FD %v: tracker %+v != recompute %+v", step, f, got, want)
			}
		}
	}
	// Final full check.
	for i, f := range fds {
		if got, want := m.Stats(i), ComputeStats(f, rel); got != want {
			t.Fatalf("final FD %v: tracker %+v != recompute %+v", f, got, want)
		}
	}
}

func TestMultiTrackerMeanViolationRate(t *testing.T) {
	rng := stats.NewRNG(8)
	rel := trackerRelation(40, rng)
	fds := MustEnumerate(SpaceConfig{Arity: 4, MaxLHS: 1})
	m := NewMultiTracker(fds, rel)
	var want float64
	for _, f := range fds {
		st := ComputeStats(f, rel)
		if st.Agreeing > 0 {
			want += float64(st.Violating) / float64(st.Agreeing)
		}
	}
	want /= float64(len(fds))
	if got := m.MeanViolationRate(); got != want {
		t.Fatalf("MeanViolationRate = %v, want %v", got, want)
	}
	empty := NewMultiTracker(nil, rel)
	if empty.MeanViolationRate() != 0 {
		t.Fatal("empty tracker rate should be 0")
	}
}

func BenchmarkTrackerSetVsRecompute(b *testing.B) {
	rng := stats.NewRNG(9)
	rel := trackerRelation(5000, rng)
	f := MustNew(NewAttrSet(0), 1)
	b.Run("incremental", func(b *testing.B) {
		tr := NewTracker(f, rel)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Set(i%rel.NumRows(), 1, fmt.Sprint(i%5))
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rel.SetValue(i%rel.NumRows(), 1, fmt.Sprint(i%5))
			ComputeStats(f, rel)
		}
	})
}
