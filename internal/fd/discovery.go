package fd

import (
	"fmt"
	"sort"

	"exptrain/internal/dataset"
)

// DiscoveryConfig controls approximate-FD discovery.
type DiscoveryConfig struct {
	// MaxG1 is the approximation threshold: an FD is reported when its
	// scaled g₁ measure is at most MaxG1. Zero discovers exact FDs.
	MaxG1 float64
	// MaxLHS bounds the LHS size explored (default 3 when zero, matching
	// the paper's ≤4-attribute FDs).
	MaxLHS int
	// MinConfidence additionally requires the pair-conditional
	// compliance rate to reach this level. The scaled g₁ measure divides
	// by |r|², so an FD whose LHS is nearly a key always has a tiny g₁
	// no matter how often its few agreeing pairs disagree; a confidence
	// floor screens those out. Zero disables the filter.
	MinConfidence float64
	// MinSupport requires at least this many LHS-agreeing pairs, so
	// vacuous near-key FDs with no real evidence are not reported. Zero
	// disables the filter.
	MinSupport int
}

// Discover finds all minimal, nontrivial, normalized FDs X → A over rel
// with g₁(X→A) ≤ cfg.MaxG1, using a level-wise lattice walk with
// TANE-style stripped-partition refinement. Minimality follows the exact
// definition (§A.1): X → A is reported only if no proper subset of X
// determines A at the threshold.
func Discover(rel *dataset.Relation, cfg DiscoveryConfig) ([]FD, error) {
	arity := rel.Schema().Arity()
	if arity < 2 {
		return nil, fmt.Errorf("fd: discovery needs at least two attributes")
	}
	if cfg.MaxG1 < 0 {
		return nil, fmt.Errorf("fd: negative g1 threshold %v", cfg.MaxG1)
	}
	maxLHS := cfg.MaxLHS
	if maxLHS <= 0 {
		maxLHS = 3
	}
	if maxLHS > arity-1 {
		maxLHS = arity - 1
	}

	// holds[X→A] records LHS sets already known to determine A, for
	// minimality pruning at deeper levels.
	holds := make(map[int][]AttrSet, arity)
	var found []FD

	// The PLI cache memoizes every level's stripped partitions and
	// derives each lattice node by refining its parent TANE-style.
	cache := NewPLICache(rel)

	determinedByKnown := func(lhs AttrSet, rhs int) bool {
		for _, known := range holds[rhs] {
			if known.IsSubsetOf(lhs) {
				return true
			}
		}
		return false
	}

	level := AllSubsetsOfSize(arity, 1)
	for size := 1; size <= maxLHS; size++ {
		for _, lhs := range level {
			part := cache.Partition(lhs)
			for rhs := 0; rhs < arity; rhs++ {
				if lhs.Has(rhs) {
					continue
				}
				if determinedByKnown(lhs, rhs) {
					continue // a subset already determines rhs → not minimal
				}
				st := part.StatsFor(rel, rhs)
				if st.G1() > cfg.MaxG1 {
					continue
				}
				if cfg.MinConfidence > 0 && st.Confidence() < cfg.MinConfidence {
					continue
				}
				if st.Agreeing < cfg.MinSupport {
					continue
				}
				found = append(found, FD{LHS: lhs, RHS: rhs})
				holds[rhs] = append(holds[rhs], lhs)
			}
		}
		if size < maxLHS {
			level = AllSubsetsOfSize(arity, size+1)
		}
	}

	sort.Slice(found, func(i, j int) bool {
		if found[i].LHS.Count() != found[j].LHS.Count() {
			return found[i].LHS.Count() < found[j].LHS.Count()
		}
		if found[i].LHS != found[j].LHS {
			return found[i].LHS < found[j].LHS
		}
		return found[i].RHS < found[j].RHS
	})
	return found, nil
}
