package fd

import (
	"sort"

	"exptrain/internal/dataset"
)

// Partition is a stripped partition in the TANE sense: the equivalence
// classes of rows under "agrees on attribute set X", with singleton
// classes removed (they can never participate in an agreeing pair).
// Classes and their members are kept sorted so operations are
// deterministic.
type Partition struct {
	// Classes holds the equivalence classes with ≥2 rows.
	Classes [][]int
	// Rows is the relation size the partition was computed over.
	Rows int
}

// PartitionOn computes the stripped partition of rel on attribute set X.
func PartitionOn(rel *dataset.Relation, x AttrSet) *Partition {
	attrs := x.Attrs()
	groups := make(map[string][]int)
	for i := 0; i < rel.NumRows(); i++ {
		key := rel.ProjectKey(i, attrs)
		groups[key] = append(groups[key], i)
	}
	p := &Partition{Rows: rel.NumRows()}
	for _, rows := range groups {
		if len(rows) >= 2 {
			p.Classes = append(p.Classes, rows)
		}
	}
	sort.Slice(p.Classes, func(i, j int) bool { return p.Classes[i][0] < p.Classes[j][0] })
	return p
}

// AgreeingPairCount returns Σ C(|class|, 2), the number of unordered
// pairs agreeing on the partition's attribute set.
func (p *Partition) AgreeingPairCount() int {
	var total int
	for _, c := range p.Classes {
		total += len(c) * (len(c) - 1) / 2
	}
	return total
}

// Refine intersects the partition with the single attribute a, returning
// the stripped partition on X ∪ {a}. This is the product-partition step
// TANE uses to walk the lattice level by level without re-grouping from
// scratch.
func (p *Partition) Refine(rel *dataset.Relation, a int) *Partition {
	out := &Partition{Rows: p.Rows}
	for _, class := range p.Classes {
		sub := make(map[string][]int)
		for _, row := range class {
			v := rel.Value(row, a)
			sub[v] = append(sub[v], row)
		}
		for _, rows := range sub {
			if len(rows) >= 2 {
				out.Classes = append(out.Classes, rows)
			}
		}
	}
	sort.Slice(out.Classes, func(i, j int) bool { return out.Classes[i][0] < out.Classes[j][0] })
	return out
}

// StatsFor computes the pair counts of the FD (X → a) given the stripped
// partition on X: within each X-class, rows are sub-grouped by the RHS
// value; compliant pairs are the within-subgroup pairs.
func (p *Partition) StatsFor(rel *dataset.Relation, a int) Stats {
	st := Stats{Rows: p.Rows}
	for _, class := range p.Classes {
		g := len(class)
		st.Agreeing += g * (g - 1) / 2
		counts := make(map[string]int)
		for _, row := range class {
			counts[rel.Value(row, a)]++
		}
		for _, c := range counts {
			st.Compliant += c * (c - 1) / 2
		}
	}
	st.Violating = st.Agreeing - st.Compliant
	return st
}
