package fd

import (
	"sort"

	"exptrain/internal/dataset"
)

// Partition is a stripped partition in the TANE sense: the equivalence
// classes of rows under "agrees on attribute set X", with singleton
// classes removed (they can never participate in an agreeing pair).
// Classes and their members are kept sorted so operations are
// deterministic.
type Partition struct {
	// Classes holds the equivalence classes with ≥2 rows.
	Classes [][]int
	// Rows is the relation size the partition was computed over.
	Rows int
}

// PartitionOn computes the stripped partition of rel on attribute set X.
// It works entirely on the relation's dictionary codes: the first
// attribute is grouped with a counting pass over its code column, and
// every further attribute is folded in with Refine. No strings are
// built or hashed.
func PartitionOn(rel *dataset.Relation, x AttrSet) *Partition {
	attrs := x.Attrs()
	if len(attrs) == 0 {
		return &Partition{Rows: rel.NumRows()}
	}
	p := partitionSingle(rel, attrs[0])
	for _, a := range attrs[1:] {
		p = p.Refine(rel, a)
	}
	return p
}

// partitionSingle builds the stripped partition on one attribute with a
// two-pass counting sort over the code column: count per code, lay the
// multi-row classes out in one shared backing array, then fill it in row
// order so every class is sorted ascending.
func partitionSingle(rel *dataset.Relation, a int) *Partition {
	codes := rel.ColumnCodes(a)
	dict := rel.DictLen(a)
	counts := make([]int32, dict)
	for _, c := range codes {
		counts[c]++
	}
	total, classes := 0, 0
	starts := make([]int32, dict)
	for code, cnt := range counts {
		if cnt >= 2 {
			starts[code] = int32(total)
			total += int(cnt)
			classes++
		} else {
			starts[code] = -1
		}
	}
	p := &Partition{Rows: len(codes), Classes: make([][]int, 0, classes)}
	if classes == 0 {
		return p
	}
	backing := make([]int, total)
	fill := append([]int32(nil), starts...)
	for i, c := range codes {
		if s := fill[c]; s >= 0 {
			backing[s] = i
			fill[c] = s + 1
		}
	}
	for code, cnt := range counts {
		if cnt >= 2 {
			s := starts[code]
			p.Classes = append(p.Classes, backing[s:s+cnt])
		}
	}
	sort.Slice(p.Classes, func(i, j int) bool { return p.Classes[i][0] < p.Classes[j][0] })
	return p
}

// PartitionOnNaive is the original string-keyed implementation, retained
// as the reference the dictionary/PLI fast paths are property-tested
// against.
func PartitionOnNaive(rel *dataset.Relation, x AttrSet) *Partition {
	attrs := x.Attrs()
	groups := make(map[string][]int)
	for i := 0; i < rel.NumRows(); i++ {
		key := rel.ProjectKey(i, attrs)
		groups[key] = append(groups[key], i)
	}
	p := &Partition{Rows: rel.NumRows()}
	for _, rows := range groups {
		if len(rows) >= 2 {
			p.Classes = append(p.Classes, rows)
		}
	}
	sort.Slice(p.Classes, func(i, j int) bool { return p.Classes[i][0] < p.Classes[j][0] })
	return p
}

// AgreeingPairCount returns Σ C(|class|, 2), the number of unordered
// pairs agreeing on the partition's attribute set.
func (p *Partition) AgreeingPairCount() int {
	var total int
	for _, c := range p.Classes {
		total += len(c) * (len(c) - 1) / 2
	}
	return total
}

// Refine intersects the partition with the single attribute a, returning
// the stripped partition on X ∪ {a}. This is the product-partition step
// TANE uses to walk the lattice level by level without re-grouping from
// scratch. Sub-grouping runs on a's code column with per-code counters
// reset via the touched list, so cost is O(Σ|class| + dict(a)) with no
// map churn.
func (p *Partition) Refine(rel *dataset.Relation, a int) *Partition {
	codes := rel.ColumnCodes(a)
	dict := rel.DictLen(a)
	out := &Partition{Rows: p.Rows}
	cnt := make([]int32, dict)
	slot := make([]int32, dict)
	touched := make([]int32, 0, 16)
	for _, class := range p.Classes {
		touched = touched[:0]
		for _, row := range class {
			c := codes[row]
			if cnt[c] == 0 {
				touched = append(touched, c)
			}
			cnt[c]++
		}
		for _, c := range touched {
			if cnt[c] >= 2 {
				slot[c] = int32(len(out.Classes))
				out.Classes = append(out.Classes, make([]int, 0, cnt[c]))
			} else {
				slot[c] = -1
			}
		}
		for _, row := range class {
			c := codes[row]
			if s := slot[c]; s >= 0 {
				out.Classes[s] = append(out.Classes[s], row)
			}
		}
		for _, c := range touched {
			cnt[c] = 0
		}
	}
	sort.Slice(out.Classes, func(i, j int) bool { return out.Classes[i][0] < out.Classes[j][0] })
	return out
}

// StatsFor computes the pair counts of the FD (X → a) given the stripped
// partition on X: within each X-class, rows are sub-grouped by the RHS
// code; compliant pairs are the within-subgroup pairs.
func (p *Partition) StatsFor(rel *dataset.Relation, a int) Stats {
	codes := rel.ColumnCodes(a)
	cnt := make([]int32, rel.DictLen(a))
	touched := make([]int32, 0, 16)
	st := Stats{Rows: p.Rows}
	for _, class := range p.Classes {
		g := len(class)
		st.Agreeing += g * (g - 1) / 2
		touched = touched[:0]
		for _, row := range class {
			c := codes[row]
			if cnt[c] == 0 {
				touched = append(touched, c)
			}
			cnt[c]++
		}
		for _, c := range touched {
			n := int(cnt[c])
			st.Compliant += n * (n - 1) / 2
			cnt[c] = 0
		}
	}
	st.Violating = st.Agreeing - st.Compliant
	return st
}
