package fd

import (
	"sort"

	"exptrain/internal/dataset"
)

// Partition is a stripped partition in the TANE sense: the equivalence
// classes of rows under "agrees on attribute set X", with singleton
// classes removed (they can never participate in an agreeing pair).
// Classes and their members are kept sorted so operations are
// deterministic. Members are row indices stored as int32 (relations are
// bounded well below 2³¹ rows), which halves partition memory and lets
// partitions share backing storage with the incremental PLI index.
type Partition struct {
	// Classes holds the equivalence classes with ≥2 rows.
	Classes [][]int32
	// Rows is the relation size the partition was computed over.
	Rows int
}

// pliScratch holds the reusable counting buffers the partition
// constructors thread through. A zero value is ready to use; buffers
// grow on demand. Invariant: cnt is all-zero between calls (every user
// restores it via its touched list or re-zeroes on entry), while
// starts/fill/slot/touched hold garbage and are fully overwritten
// before being read. PLICache owns one instance under its mutex so the
// steady-state refinement path stops allocating counter arrays.
type pliScratch struct {
	cnt     []int32
	starts  []int32
	fill    []int32
	slot    []int32
	touched []int32
}

// grow returns buf resized to at least n entries, reallocating (without
// copying — contents are scratch) when capacity is short.
func grow(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// PartitionOn computes the stripped partition of rel on attribute set X.
// It works entirely on the relation's dictionary codes: the first
// attribute is grouped with a counting pass over its code column, and
// every further attribute is folded in with refine. No strings are
// built or hashed.
func PartitionOn(rel *dataset.Relation, x AttrSet) *Partition {
	attrs := x.Attrs()
	if len(attrs) == 0 {
		return &Partition{Rows: rel.NumRows()}
	}
	var sc pliScratch
	p := partitionSingle(rel, attrs[0], &sc)
	for _, a := range attrs[1:] {
		p = p.refine(rel, a, &sc)
	}
	return p
}

// partitionSingle builds the stripped partition on one attribute with a
// two-pass counting sort over the code column: count per code, lay the
// multi-row classes out in one shared backing array, then fill it in row
// order so every class is sorted ascending.
func partitionSingle(rel *dataset.Relation, a int, sc *pliScratch) *Partition {
	codes := rel.ColumnCodes(a)
	dict := rel.DictLen(a)
	counts := grow(sc.cnt, dict)
	for i := range counts {
		counts[i] = 0
	}
	for _, c := range codes {
		counts[c]++
	}
	total, classes := 0, 0
	starts := grow(sc.starts, dict)
	for code, cnt := range counts {
		if cnt >= 2 {
			starts[code] = int32(total)
			total += int(cnt)
			classes++
		} else {
			starts[code] = -1
		}
	}
	p := &Partition{Rows: len(codes), Classes: make([][]int32, 0, classes)}
	if classes == 0 {
		for i := range counts {
			counts[i] = 0
		}
		sc.cnt, sc.starts = counts[:0], starts[:0]
		return p
	}
	backing := make([]int32, total)
	fill := grow(sc.fill, dict)
	copy(fill, starts)
	for i, c := range codes {
		if s := fill[c]; s >= 0 {
			backing[s] = int32(i)
			fill[c] = s + 1
		}
	}
	for code, cnt := range counts {
		if cnt >= 2 {
			s := starts[code]
			e := s + cnt
			p.Classes = append(p.Classes, backing[s:e:e])
		}
		counts[code] = 0
	}
	sc.cnt, sc.starts, sc.fill = counts[:0], starts[:0], fill[:0]
	sort.Slice(p.Classes, func(i, j int) bool { return p.Classes[i][0] < p.Classes[j][0] })
	return p
}

// PartitionOnNaive is the original string-keyed implementation, retained
// as the reference the dictionary/PLI fast paths are property-tested
// against.
func PartitionOnNaive(rel *dataset.Relation, x AttrSet) *Partition {
	attrs := x.Attrs()
	groups := make(map[string][]int32)
	for i := 0; i < rel.NumRows(); i++ {
		key := rel.ProjectKey(i, attrs)
		groups[key] = append(groups[key], int32(i))
	}
	p := &Partition{Rows: rel.NumRows()}
	for _, rows := range groups {
		if len(rows) >= 2 {
			p.Classes = append(p.Classes, rows)
		}
	}
	sort.Slice(p.Classes, func(i, j int) bool { return p.Classes[i][0] < p.Classes[j][0] })
	return p
}

// AgreeingPairCount returns Σ C(|class|, 2), the number of unordered
// pairs agreeing on the partition's attribute set.
func (p *Partition) AgreeingPairCount() int {
	var total int
	for _, c := range p.Classes {
		total += len(c) * (len(c) - 1) / 2
	}
	return total
}

// Refine intersects the partition with the single attribute a, returning
// the stripped partition on X ∪ {a}. This is the product-partition step
// TANE uses to walk the lattice level by level without re-grouping from
// scratch.
func (p *Partition) Refine(rel *dataset.Relation, a int) *Partition {
	var sc pliScratch
	return p.refine(rel, a, &sc)
}

// refine is Refine with caller-owned scratch. Sub-grouping runs on a's
// code column with per-code counters reset via the touched list. Two
// passes: the first sizes every surviving sub-class so the output's
// members lay out in a single backing array, the second fills them in
// row order (ascending, since class members ascend). Cost is
// O(Σ|class|) with exactly two result allocations plus the final sort,
// no per-class slice churn.
func (p *Partition) refine(rel *dataset.Relation, a int, sc *pliScratch) *Partition {
	codes := rel.ColumnCodes(a)
	dict := rel.DictLen(a)
	out := &Partition{Rows: p.Rows}
	cnt := grow(sc.cnt, dict)
	for i := range cnt {
		cnt[i] = 0
	}
	slot := grow(sc.slot, dict)
	touched := sc.touched[:0]
	// Pass 1: total surviving rows and sub-class count.
	total, classes := 0, 0
	for _, class := range p.Classes {
		touched = touched[:0]
		for _, row := range class {
			c := codes[row]
			if cnt[c] == 0 {
				touched = append(touched, c)
			}
			cnt[c]++
		}
		for _, c := range touched {
			if cnt[c] >= 2 {
				total += int(cnt[c])
				classes++
			}
			cnt[c] = 0
		}
	}
	if classes == 0 {
		sc.cnt, sc.slot, sc.touched = cnt[:0], slot[:0], touched[:0]
		return out
	}
	// Pass 2: lay the sub-classes out in one backing array.
	backing := make([]int32, total)
	out.Classes = make([][]int32, 0, classes)
	next := int32(0)
	for _, class := range p.Classes {
		touched = touched[:0]
		for _, row := range class {
			c := codes[row]
			if cnt[c] == 0 {
				touched = append(touched, c)
			}
			cnt[c]++
		}
		for _, c := range touched {
			if cnt[c] >= 2 {
				s := next
				next += cnt[c]
				out.Classes = append(out.Classes, backing[s:s:next])
				slot[c] = int32(len(out.Classes) - 1)
			} else {
				slot[c] = -1
			}
		}
		for _, row := range class {
			c := codes[row]
			if s := slot[c]; s >= 0 {
				// Within the sub-class's capped backing region; no alloc.
				out.Classes[s] = append(out.Classes[s], row)
			}
		}
		for _, c := range touched {
			cnt[c] = 0
		}
	}
	sc.cnt, sc.slot, sc.touched = cnt[:0], slot[:0], touched[:0]
	sort.Slice(out.Classes, func(i, j int) bool { return out.Classes[i][0] < out.Classes[j][0] })
	return out
}

// StatsFor computes the pair counts of the FD (X → a) given the stripped
// partition on X: within each X-class, rows are sub-grouped by the RHS
// code; compliant pairs are the within-subgroup pairs.
func (p *Partition) StatsFor(rel *dataset.Relation, a int) Stats {
	var sc pliScratch
	return p.statsFor(rel, a, &sc)
}

// statsFor is StatsFor with caller-owned scratch.
func (p *Partition) statsFor(rel *dataset.Relation, a int, sc *pliScratch) Stats {
	codes := rel.ColumnCodes(a)
	cnt := grow(sc.cnt, rel.DictLen(a))
	for i := range cnt {
		cnt[i] = 0
	}
	touched := sc.touched[:0]
	st := Stats{Rows: p.Rows}
	for _, class := range p.Classes {
		g := len(class)
		st.Agreeing += g * (g - 1) / 2
		touched = touched[:0]
		for _, row := range class {
			c := codes[row]
			if cnt[c] == 0 {
				touched = append(touched, c)
			}
			cnt[c]++
		}
		for _, c := range touched {
			n := int(cnt[c])
			st.Compliant += n * (n - 1) / 2
			cnt[c] = 0
		}
	}
	sc.cnt, sc.touched = cnt[:0], touched[:0]
	st.Violating = st.Agreeing - st.Compliant
	return st
}
