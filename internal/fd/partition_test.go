package fd

import (
	"testing"
	"testing/quick"

	"exptrain/internal/dataset"
	"exptrain/internal/stats"
)

func TestPartitionOnTable1(t *testing.T) {
	rel := table1()
	team := rel.Schema().MustIndex("Team")
	p := PartitionOn(rel, NewAttrSet(team))
	// Lakers {0,1}, Bulls {2,3}; Clippers {4} is stripped.
	if len(p.Classes) != 2 {
		t.Fatalf("classes = %v, want 2 classes", p.Classes)
	}
	if p.AgreeingPairCount() != 2 {
		t.Fatalf("agreeing pairs = %d, want 2", p.AgreeingPairCount())
	}
}

func TestPartitionRefineMatchesDirect(t *testing.T) {
	rng := stats.NewRNG(99)
	f := func(seedRaw uint16) bool {
		n := 4 + int(seedRaw%40)
		rel := dataset.New(dataset.MustSchema("a", "b", "c"))
		vocab := []string{"p", "q", "r"}
		for i := 0; i < n; i++ {
			rel.MustAppend(dataset.Tuple{
				vocab[rng.Intn(2)], vocab[rng.Intn(3)], vocab[rng.Intn(3)],
			})
		}
		direct := PartitionOn(rel, NewAttrSet(0, 1))
		refined := PartitionOn(rel, NewAttrSet(0)).Refine(rel, 1)
		if len(direct.Classes) != len(refined.Classes) {
			return false
		}
		// Compare class contents as sets of sorted row lists.
		asKey := func(p *Partition) map[string]bool {
			m := map[string]bool{}
			for _, c := range p.Classes {
				key := ""
				for _, r := range c {
					key += string(rune(r)) + ","
				}
				m[key] = true
			}
			return m
		}
		dk, rk := asKey(direct), asKey(refined)
		for k := range dk {
			if !rk[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionStatsForMatchesComputeStats(t *testing.T) {
	rng := stats.NewRNG(123)
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(40)
		rel := dataset.New(dataset.MustSchema("a", "b", "c", "d"))
		vocab := []string{"1", "2", "3", "4"}
		for i := 0; i < n; i++ {
			rel.MustAppend(dataset.Tuple{
				vocab[rng.Intn(2)], vocab[rng.Intn(3)], vocab[rng.Intn(4)], vocab[rng.Intn(2)],
			})
		}
		lhs := NewAttrSet(0, 1)
		f := MustNew(lhs, 3)
		want := ComputeStats(f, rel)
		got := PartitionOn(rel, lhs).StatsFor(rel, 3)
		if got != want {
			t.Fatalf("trial %d: partition stats %+v != direct %+v", trial, got, want)
		}
	}
}

func TestPartitionStrippedInvariant(t *testing.T) {
	rel := table1()
	player := rel.Schema().MustIndex("Player")
	// Player is a key: all classes singleton, so stripped partition empty.
	p := PartitionOn(rel, NewAttrSet(player))
	if len(p.Classes) != 0 {
		t.Fatalf("key partition should be empty, got %v", p.Classes)
	}
	if p.AgreeingPairCount() != 0 {
		t.Fatal("key partition should have no agreeing pairs")
	}
}
