package fd

import (
	"fmt"

	"exptrain/internal/dataset"
)

// Tracker maintains one FD's pair statistics incrementally under cell
// updates. Recomputing g₁ after every change costs O(n); the tracker
// updates in O(group) for LHS changes and O(1) for RHS changes, which
// is what makes monitoring approximate FDs over *evolving* data
// practical — the paper's introduction names rapid data evolution as a
// reason annotators must keep re-learning.
//
// The tracker owns the write path: apply cell updates through
// Tracker.Set (or MultiTracker.Set), which mutates the relation and
// adjusts the counts consistently.
type Tracker struct {
	f   FD
	rel *dataset.Relation
	// counts[lhsKey][rhsValue] = number of rows.
	counts map[string]map[string]int
	// sizes[lhsKey] = group size.
	sizes map[string]int
	stats Stats
}

// NewTracker builds the tracker for f over rel in one pass.
func NewTracker(f FD, rel *dataset.Relation) *Tracker {
	t := &Tracker{
		f:      f,
		rel:    rel,
		counts: make(map[string]map[string]int),
		sizes:  make(map[string]int),
	}
	lhs := f.LHS.Attrs()
	for i := 0; i < rel.NumRows(); i++ {
		key := rel.ProjectKey(i, lhs)
		t.add(key, rel.Value(i, f.RHS))
	}
	t.stats.Rows = rel.NumRows()
	return t
}

// Stats returns the current pair statistics (same values ComputeStats
// would produce from scratch).
func (t *Tracker) Stats() Stats { return t.stats }

// choose2 is C(n, 2).
func choose2(n int) int { return n * (n - 1) / 2 }

// add inserts one row into group key with the given RHS value,
// adjusting the pair counts.
func (t *Tracker) add(key, rhsVal string) {
	g := t.sizes[key]
	cls := t.counts[key]
	if cls == nil {
		cls = make(map[string]int)
		t.counts[key] = cls
	}
	c := cls[rhsVal]
	// New agreeing pairs: against every existing group member; new
	// compliant pairs: against same-RHS members.
	t.stats.Agreeing += g
	t.stats.Compliant += c
	cls[rhsVal] = c + 1
	t.sizes[key] = g + 1
	t.stats.Violating = t.stats.Agreeing - t.stats.Compliant
}

// remove deletes one row from group key with the given RHS value.
func (t *Tracker) remove(key, rhsVal string) {
	g := t.sizes[key]
	cls := t.counts[key]
	c := cls[rhsVal]
	if g <= 0 || c <= 0 {
		panic(fmt.Sprintf("fd: tracker underflow for key %q value %q", key, rhsVal))
	}
	t.stats.Agreeing -= g - 1
	t.stats.Compliant -= c - 1
	if c == 1 {
		delete(cls, rhsVal)
	} else {
		cls[rhsVal] = c - 1
	}
	if g == 1 {
		delete(t.sizes, key)
		delete(t.counts, key)
	} else {
		t.sizes[key] = g - 1
	}
	t.stats.Violating = t.stats.Agreeing - t.stats.Compliant
}

// Set updates cell (row, attr) to val, mutating the relation and
// adjusting the statistics. Cells on attributes the FD does not mention
// just write through.
func (t *Tracker) Set(row, attr int, val string) {
	old := t.rel.Value(row, attr)
	if old == val {
		return
	}
	lhs := t.f.LHS.Attrs()
	switch {
	case attr == t.f.RHS:
		key := t.rel.ProjectKey(row, lhs)
		t.remove(key, old)
		t.rel.SetValue(row, attr, val)
		t.add(key, val)
	case t.f.LHS.Has(attr):
		oldKey := t.rel.ProjectKey(row, lhs)
		rhsVal := t.rel.Value(row, t.f.RHS)
		t.remove(oldKey, rhsVal)
		t.rel.SetValue(row, attr, val)
		t.add(t.rel.ProjectKey(row, lhs), rhsVal)
	default:
		t.rel.SetValue(row, attr, val)
	}
}

// Append tracks a newly appended row (call after Relation.Append).
func (t *Tracker) Append(row int) {
	key := t.rel.ProjectKey(row, t.f.LHS.Attrs())
	t.add(key, t.rel.Value(row, t.f.RHS))
	t.stats.Rows++
}

// MultiTracker maintains trackers for a whole hypothesis space over one
// relation, with a single write path.
type MultiTracker struct {
	rel      *dataset.Relation
	trackers []*Tracker
}

// NewMultiTracker builds trackers for every FD.
func NewMultiTracker(fds []FD, rel *dataset.Relation) *MultiTracker {
	m := &MultiTracker{rel: rel, trackers: make([]*Tracker, len(fds))}
	for i, f := range fds {
		m.trackers[i] = NewTracker(f, rel)
	}
	return m
}

// Stats returns the statistics of tracker i.
func (m *MultiTracker) Stats(i int) Stats { return m.trackers[i].Stats() }

// Len returns the number of tracked FDs.
func (m *MultiTracker) Len() int { return len(m.trackers) }

// Set updates one cell across all trackers. Each affected tracker
// adjusts its counts from the pre-write state; the write happens once.
func (m *MultiTracker) Set(row, attr int, val string) {
	old := m.rel.Value(row, attr)
	if old == val {
		return
	}
	// Adjust each affected tracker against the pre-write relation state,
	// deferring the actual write.
	type pending struct {
		t      *Tracker
		oldKey string
		rhsOld string
		isRHS  bool
	}
	var work []pending
	for _, t := range m.trackers {
		if attr == t.f.RHS {
			work = append(work, pending{t: t, oldKey: m.rel.ProjectKey(row, t.f.LHS.Attrs()), rhsOld: old, isRHS: true})
		} else if t.f.LHS.Has(attr) {
			work = append(work, pending{t: t, oldKey: m.rel.ProjectKey(row, t.f.LHS.Attrs()), rhsOld: m.rel.Value(row, t.f.RHS)})
		}
	}
	for _, w := range work {
		w.t.remove(w.oldKey, w.rhsOld)
	}
	m.rel.SetValue(row, attr, val)
	for _, w := range work {
		if w.isRHS {
			w.t.add(w.oldKey, val)
		} else {
			w.t.add(m.rel.ProjectKey(row, w.t.f.LHS.Attrs()), w.rhsOld)
		}
	}
}

// MeanViolationRate returns the mean conditional violation rate across
// the tracked FDs — the degree measure errgen targets — in O(|fds|).
func (m *MultiTracker) MeanViolationRate() float64 {
	if len(m.trackers) == 0 {
		return 0
	}
	var total float64
	for _, t := range m.trackers {
		st := t.Stats()
		if st.Agreeing > 0 {
			total += float64(st.Violating) / float64(st.Agreeing)
		}
	}
	return total / float64(len(m.trackers))
}
