package fd

import (
	"fmt"

	"exptrain/internal/dataset"
)

// Tracker maintains one FD's pair statistics incrementally under cell
// updates. Recomputing g₁ after every change costs O(n); the tracker
// updates in O(group) for LHS changes and O(1) for RHS changes, which
// is what makes monitoring approximate FDs over *evolving* data
// practical — the paper's introduction names rapid data evolution as a
// reason annotators must keep re-learning.
//
// The tracker owns the write path: apply cell updates through
// Tracker.Set (or MultiTracker.Set), which mutates the relation and
// adjusts the counts consistently. Edits applied to the relation
// directly (repair application, another tracker over the same data)
// are absorbed by Sync, which replays the relation's cell-delta
// journal instead of rebuilding.
type Tracker struct {
	f   FD
	rel *dataset.Relation
	// counts[lhsKey][rhsValue] = number of rows.
	counts map[string]map[string]int
	// sizes[lhsKey] = group size.
	sizes map[string]int
	stats Stats
	// version is the relation version the counts reflect.
	version uint64
}

// NewTracker builds the tracker for f over rel in one pass.
func NewTracker(f FD, rel *dataset.Relation) *Tracker {
	t := &Tracker{
		f:      f,
		rel:    rel,
		counts: make(map[string]map[string]int),
		sizes:  make(map[string]int),
	}
	t.rebuild()
	return t
}

// rebuild recomputes the counts from scratch at the relation's current
// state.
func (t *Tracker) rebuild() {
	clear(t.counts)
	clear(t.sizes)
	t.stats = Stats{}
	lhs := t.f.LHS.Attrs()
	for i := 0; i < t.rel.NumRows(); i++ {
		t.add(t.rel.ProjectKey(i, lhs), t.rel.Value(i, t.f.RHS))
	}
	t.stats.Rows = t.rel.NumRows()
	t.version = t.rel.Version()
}

// Stats returns the current pair statistics (same values ComputeStats
// would produce from scratch).
func (t *Tracker) Stats() Stats { return t.stats }

// choose2 is C(n, 2).
func choose2(n int) int { return n * (n - 1) / 2 }

// add inserts one row into group key with the given RHS value,
// adjusting the pair counts.
func (t *Tracker) add(key, rhsVal string) {
	g := t.sizes[key]
	cls := t.counts[key]
	if cls == nil {
		cls = make(map[string]int)
		t.counts[key] = cls
	}
	c := cls[rhsVal]
	// New agreeing pairs: against every existing group member; new
	// compliant pairs: against same-RHS members.
	t.stats.Agreeing += g
	t.stats.Compliant += c
	cls[rhsVal] = c + 1
	t.sizes[key] = g + 1
	t.stats.Violating = t.stats.Agreeing - t.stats.Compliant
}

// remove deletes one row from group key with the given RHS value.
func (t *Tracker) remove(key, rhsVal string) {
	g := t.sizes[key]
	cls := t.counts[key]
	c := cls[rhsVal]
	if g <= 0 || c <= 0 {
		panic(fmt.Sprintf("fd: tracker underflow for key %q value %q", key, rhsVal))
	}
	t.stats.Agreeing -= g - 1
	t.stats.Compliant -= c - 1
	if c == 1 {
		delete(cls, rhsVal)
	} else {
		cls[rhsVal] = c - 1
	}
	if g == 1 {
		delete(t.sizes, key)
		delete(t.counts, key)
	} else {
		t.sizes[key] = g - 1
	}
	t.stats.Violating = t.stats.Agreeing - t.stats.Compliant
}

// Set updates cell (row, attr) to val, mutating the relation and
// adjusting the statistics. Cells on attributes the FD does not mention
// just write through. External edits since the last sync are absorbed
// first so the adjustment starts from consistent counts.
func (t *Tracker) Set(row, attr int, val string) {
	t.Sync()
	old := t.rel.Value(row, attr)
	if old == val {
		return
	}
	lhs := t.f.LHS.Attrs()
	switch {
	case attr == t.f.RHS:
		key := t.rel.ProjectKey(row, lhs)
		t.remove(key, old)
		t.rel.SetValue(row, attr, val)
		t.add(key, val)
	case t.f.LHS.Has(attr):
		oldKey := t.rel.ProjectKey(row, lhs)
		rhsVal := t.rel.Value(row, t.f.RHS)
		t.remove(oldKey, rhsVal)
		t.rel.SetValue(row, attr, val)
		t.add(t.rel.ProjectKey(row, lhs), rhsVal)
	default:
		t.rel.SetValue(row, attr, val)
	}
	t.version = t.rel.Version()
}

// Append tracks a newly appended row (call after Relation.Append).
func (t *Tracker) Append(row int) {
	t.version = t.rel.Version()
	key := t.rel.ProjectKey(row, t.f.LHS.Attrs())
	t.add(key, t.rel.Value(row, t.f.RHS))
	t.stats.Rows++
}

// cellRef identifies one cell for Sync's rewind overlay.
type cellRef struct{ row, col int }

// Sync absorbs relation mutations made outside the tracker's write path
// by replaying the cell-delta journal. Each delta touching the FD's
// attributes moves the row between groups using the *historical* cell
// values at that delta's point in time, reconstructed from a rewind
// overlay: every journal-touched cell starts at its first-delta old
// code and advances to the new code as its delta is processed, so
// removals always use the key the row was filed under. Falls back to a
// full rebuild when the journal cannot cover the gap (Append, journal
// overflow, or a relation resize).
func (t *Tracker) Sync() {
	v := t.rel.Version()
	if v == t.version {
		return
	}
	deltas, ok := t.rel.DeltasSince(t.version)
	if !ok {
		t.rebuild()
		return
	}
	overlay := make(map[cellRef]int32, len(deltas))
	for _, d := range deltas {
		c := cellRef{row: d.Row, col: d.Col}
		if _, dup := overlay[c]; !dup {
			overlay[c] = d.Old
		}
	}
	at := func(row, attr int) string {
		if code, ok := overlay[cellRef{row: row, col: attr}]; ok {
			return t.rel.DictValue(attr, code)
		}
		return t.rel.Value(row, attr)
	}
	lhs := t.f.LHS.Attrs()
	for _, d := range deltas {
		if d.Old != d.New && (d.Col == t.f.RHS || t.f.LHS.Has(d.Col)) {
			t.remove(t.rel.ProjectKeyWith(d.Row, lhs, at), at(d.Row, t.f.RHS))
			overlay[cellRef{row: d.Row, col: d.Col}] = d.New
			t.add(t.rel.ProjectKeyWith(d.Row, lhs, at), at(d.Row, t.f.RHS))
		} else {
			overlay[cellRef{row: d.Row, col: d.Col}] = d.New
		}
	}
	t.version = v
}

// MultiTracker maintains trackers for a whole hypothesis space over one
// relation, with a single write path.
type MultiTracker struct {
	rel      *dataset.Relation
	trackers []*Tracker
}

// NewMultiTracker builds trackers for every FD.
func NewMultiTracker(fds []FD, rel *dataset.Relation) *MultiTracker {
	m := &MultiTracker{rel: rel, trackers: make([]*Tracker, len(fds))}
	for i, f := range fds {
		m.trackers[i] = NewTracker(f, rel)
	}
	return m
}

// Stats returns the statistics of tracker i.
func (m *MultiTracker) Stats(i int) Stats { return m.trackers[i].Stats() }

// Len returns the number of tracked FDs.
func (m *MultiTracker) Len() int { return len(m.trackers) }

// Sync absorbs external relation mutations into every tracker (see
// Tracker.Sync).
func (m *MultiTracker) Sync() {
	for _, t := range m.trackers {
		t.Sync()
	}
}

// Set updates one cell across all trackers. Each affected tracker
// adjusts its counts from the pre-write state; the write happens once.
func (m *MultiTracker) Set(row, attr int, val string) {
	m.Sync()
	old := m.rel.Value(row, attr)
	if old == val {
		return
	}
	// Adjust each affected tracker against the pre-write relation state,
	// deferring the actual write.
	type pending struct {
		t      *Tracker
		oldKey string
		rhsOld string
		isRHS  bool
	}
	var work []pending
	for _, t := range m.trackers {
		if attr == t.f.RHS {
			work = append(work, pending{t: t, oldKey: m.rel.ProjectKey(row, t.f.LHS.Attrs()), rhsOld: old, isRHS: true})
		} else if t.f.LHS.Has(attr) {
			work = append(work, pending{t: t, oldKey: m.rel.ProjectKey(row, t.f.LHS.Attrs()), rhsOld: m.rel.Value(row, t.f.RHS)})
		}
	}
	for _, w := range work {
		w.t.remove(w.oldKey, w.rhsOld)
	}
	m.rel.SetValue(row, attr, val)
	for _, w := range work {
		if w.isRHS {
			w.t.add(w.oldKey, val)
		} else {
			w.t.add(m.rel.ProjectKey(row, w.t.f.LHS.Attrs()), w.rhsOld)
		}
	}
	for _, t := range m.trackers {
		t.version = m.rel.Version()
	}
}

// MeanViolationRate returns the mean conditional violation rate across
// the tracked FDs — the degree measure errgen targets — in O(|fds|).
func (m *MultiTracker) MeanViolationRate() float64 {
	if len(m.trackers) == 0 {
		return 0
	}
	var total float64
	for _, t := range m.trackers {
		st := t.Stats()
		if st.Agreeing > 0 {
			total += float64(st.Violating) / float64(st.Agreeing)
		}
	}
	return total / float64(len(m.trackers))
}
