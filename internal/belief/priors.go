package belief

import (
	"fmt"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// Default prior shape parameters. Sigma follows §A.2 (all prior standard
// deviations set to 0.05); the experiment harness can widen it to weaken
// the prior (a larger σ means fewer pseudo-observations).
const (
	// DefaultPriorSigma is the standard deviation of every prior Beta
	// distribution (§A.2).
	DefaultPriorSigma = 0.05
	// UserSpecifiedMean is the prior mean ε for the FD the user names as
	// most accurate (§A.2).
	UserSpecifiedMean = 0.85
	// UnrelatedMean is the prior mean for FDs unrelated to the user's
	// (first prior configuration of §A.2).
	UnrelatedMean = 0.15
	// RelatedMean is the prior mean for subset/superset FDs of the
	// user's (second prior configuration of §A.2).
	RelatedMean = 0.8
)

// clampMean keeps prior means strictly inside (0, 1) and feasible for
// the configured σ.
func clampMean(mu, sigma float64) float64 {
	// Need σ² < μ(1−μ); solve the boundary and keep a 10% margin.
	v := sigma * sigma
	lo, hi := 0.02, 0.98
	// Feasibility bound: μ(1−μ) > v ⇒ μ ∈ (m−, m+) around 1/2.
	for clampIters := 0; clampIters < 64; clampIters++ {
		if mu < lo {
			mu = lo
		}
		if mu > hi {
			mu = hi
		}
		if v < mu*(1-mu)*0.99 {
			return mu
		}
		// Pull toward 1/2 until feasible.
		mu = 0.5 + (mu-0.5)*0.9
	}
	return 0.5
}

// priorAt builds the Beta prior with the given mean and σ, clamping the
// mean into the feasible region.
func priorAt(mu, sigma float64) stats.Beta {
	return stats.MustBetaFromMoments(clampMean(mu, sigma), sigma)
}

// UniformPrior returns a belief with every hypothesis at mean d
// (the "Uniform-d" prior of §C.1; Figure 3/5/6 use Uniform-0.9).
func UniformPrior(space *fd.Space, d, sigma float64) *Belief {
	return New(space, priorAt(d, sigma))
}

// RandomPrior returns a belief whose per-hypothesis confidence means are
// sampled uniformly from [0, 1] ("Random" prior of §C.1).
func RandomPrior(space *fd.Space, rng *stats.RNG, sigma float64) *Belief {
	b := New(space, priorAt(0.5, sigma))
	for i := 0; i < space.Size(); i++ {
		b.SetDist(i, priorAt(rng.Float64(), sigma))
	}
	return b
}

// DataEstimatePrior returns a belief whose confidence means are the
// pair-conditional compliance rates measured on the unlabeled relation
// ("Data-estimate" prior of §C.1: the learner treats the unlabeled
// dataset as if it were completely clean).
func DataEstimatePrior(space *fd.Space, rel *dataset.Relation, sigma float64) *Belief {
	b := New(space, priorAt(0.5, sigma))
	// One PLI cache shares the LHS partitions across hypotheses with a
	// common LHS (every RHS choice over one attribute set), so the
	// estimate partitions once per distinct LHS instead of once per FD.
	// The per-FD Stats are computed from the same stripped partitions
	// fd.Confidence derives, so the float results are identical.
	cache := fd.NewPLICache(rel)
	for i := 0; i < space.Size(); i++ {
		b.SetDist(i, priorAt(cache.Stats(space.FD(i)).Confidence(), sigma))
	}
	return b
}

// UserSpecifiedPrior implements the §A.2 user-study prior: the FD the
// user declares most accurate gets mean ε = 0.85; when treatRelated is
// true, subset/superset FDs of the declared one get mean 0.8; everything
// else gets mean 0.15; all σ = 0.05. It errors when the declared FD is
// not in the space.
func UserSpecifiedPrior(space *fd.Space, user fd.FD, treatRelated bool) (*Belief, error) {
	idx, ok := space.Index(user)
	if !ok {
		return nil, fmt.Errorf("belief: user-specified FD %v not in hypothesis space", user)
	}
	b := New(space, priorAt(UnrelatedMean, DefaultPriorSigma))
	b.SetDist(idx, priorAt(UserSpecifiedMean, DefaultPriorSigma))
	if treatRelated {
		for _, i := range space.Related(user) {
			b.SetDist(i, priorAt(RelatedMean, DefaultPriorSigma))
		}
	}
	return b, nil
}

// PriorKind names the §C.1 prior families for configuration surfaces
// (CLIs, experiment specs).
type PriorKind string

const (
	PriorUniform      PriorKind = "uniform"
	PriorRandom       PriorKind = "random"
	PriorDataEstimate PriorKind = "data-estimate"
)

// PriorSpec is a serializable prior configuration.
type PriorSpec struct {
	Kind PriorKind
	// D is the Uniform-d level (only for PriorUniform).
	D float64
	// Sigma is the prior standard deviation (DefaultPriorSigma if 0).
	Sigma float64
}

// Build materializes the prior over the space; rel supplies the data
// estimate and rng the random means.
func (s PriorSpec) Build(space *fd.Space, rel *dataset.Relation, rng *stats.RNG) (*Belief, error) {
	sigma := s.Sigma
	if sigma == 0 { //etlint:ignore floatcmp zero value means unset; callers assign literals
		sigma = DefaultPriorSigma
	}
	switch s.Kind {
	case PriorUniform:
		if s.D < 0 || s.D > 1 {
			return nil, fmt.Errorf("belief: Uniform-d level %v out of [0,1]", s.D)
		}
		return UniformPrior(space, s.D, sigma), nil
	case PriorRandom:
		if rng == nil {
			return nil, fmt.Errorf("belief: random prior needs an RNG")
		}
		return RandomPrior(space, rng, sigma), nil
	case PriorDataEstimate:
		if rel == nil {
			return nil, fmt.Errorf("belief: data-estimate prior needs a relation")
		}
		return DataEstimatePrior(space, rel, sigma), nil
	default:
		return nil, fmt.Errorf("belief: unknown prior kind %q", s.Kind)
	}
}

// String renders the spec for experiment reports, matching the paper's
// names ("Uniform-0.9", "Random", "Data-estimate").
func (s PriorSpec) String() string {
	switch s.Kind {
	case PriorUniform:
		return fmt.Sprintf("Uniform-%g", s.D)
	case PriorRandom:
		return "Random"
	case PriorDataEstimate:
		return "Data-estimate"
	default:
		return string(s.Kind)
	}
}
