// Package belief implements the agents' beliefs about the target model:
// a vector of Beta distributions, one per functional dependency in the
// hypothesis space, each modeling the agent's confidence that the FD
// holds over the clean portion of the data.
//
// The conjugate Beta update — increment α on compliant evidence, β on
// violating evidence — is exactly fictitious play's empirical-frequency
// counting, which is why the paper treats FP and Bayesian learning as
// interchangeable (§3, Fudenberg & Levine 1998).
package belief

import (
	"fmt"
	"math"
	"math/bits"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// Label is the annotation a trainer assigns to a presented tuple pair.
type Label int

const (
	// Clean: the trainer believes neither tuple of the pair is erroneous;
	// any FD violation the pair exhibits is genuine counter-evidence.
	Clean Label = iota
	// Dirty: the trainer believes the pair exhibits an error — it marks
	// the pair as a violation of the trainer's hypothesized FDs.
	Dirty
)

func (l Label) String() string {
	if l == Dirty {
		return "dirty"
	}
	return "clean"
}

// Labeling is one annotation (x, y) of the game: a presented pair plus
// the trainer's violation marks. Following the paper's interface (§A.1
// identifies violations at the cell level; study participants mark the
// violating cells of their hypothesized FDs), a mark names an attribute
// whose cells the trainer believes erroneous in this pair. An empty
// mark set means the trainer considers the pair clean.
type Labeling struct {
	Pair dataset.Pair
	// Marked holds the attributes whose cells the trainer marked as
	// violations of its believed FDs.
	Marked fd.AttrSet
	// Abstained reports that the trainer declined to label the pair (an
	// annotator may abstain when too uncertain — the weak-labeler
	// setting of Zhang & Chaudhuri 2015). Abstained labelings carry no
	// evidence.
	Abstained bool
}

// Dirty reports whether the trainer marked anything — the pair-level
// binary label used by the payoff functions.
func (l Labeling) Dirty() bool { return !l.Marked.IsEmpty() }

// Label returns the pair-level binary label.
func (l Labeling) Label() Label {
	if l.Dirty() {
		return Dirty
	}
	return Clean
}

// Belief is a probability model over the hypothesis space: hypothesis i
// (an FD) holds with confidence distributed as dists[i].
type Belief struct {
	space *fd.Space
	dists []stats.Beta

	// Violation memo: which hypotheses a pair syntactically violates is
	// a property of the (rarely mutated) relation, not of the evolving
	// distributions, yet the samplers re-derive it for the whole
	// candidate pool every iteration through PDirty/Uncertainty. Spaces
	// of at most 64 hypotheses (every space the paper's evaluation uses)
	// memoize a bitmask per pair in violMask — no per-pair slice
	// allocation; larger spaces fall back to index slices in violMemo.
	// The memo is keyed to one relation identity+version; when the
	// relation advances, the cell-delta journal selectively evicts only
	// the pairs touching an edited row, and a full flush happens only
	// when the journal cannot cover the gap (bulk mutations).
	violRel     *dataset.Relation
	violVersion uint64
	violMask    map[dataset.Pair]uint64
	violMemo    map[dataset.Pair][]int32
}

// New creates a belief over the space with every hypothesis at the given
// prior distribution.
func New(space *fd.Space, prior stats.Beta) *Belief {
	b := &Belief{space: space, dists: make([]stats.Beta, space.Size())}
	for i := range b.dists {
		b.dists[i] = prior
	}
	return b
}

// Space returns the hypothesis space the belief is defined over.
func (b *Belief) Space() *fd.Space { return b.space }

// Size returns the number of hypotheses.
func (b *Belief) Size() int { return len(b.dists) }

// Dist returns the Beta distribution of hypothesis i.
func (b *Belief) Dist(i int) stats.Beta { return b.dists[i] }

// SetDist overwrites the distribution of hypothesis i.
func (b *Belief) SetDist(i int, d stats.Beta) { b.dists[i] = d }

// Confidence returns the point estimate (posterior mean) for hypothesis
// i.
func (b *Belief) Confidence(i int) float64 { return b.dists[i].Mean() }

// Confidences returns the posterior-mean vector over the space, the
// representation the MAE metric compares.
func (b *Belief) Confidences() []float64 {
	out := make([]float64, len(b.dists))
	for i, d := range b.dists {
		out[i] = d.Mean()
	}
	return out
}

// Clone returns an independent copy.
func (b *Belief) Clone() *Belief {
	c := &Belief{space: b.space, dists: make([]stats.Beta, len(b.dists))}
	copy(c.dists, b.dists)
	return c
}

// MAE returns the mean absolute error between the two beliefs'
// confidence vectors (§C.1's convergence metric). It panics if the
// beliefs are over different spaces.
func (b *Belief) MAE(o *Belief) float64 {
	if b.space != o.space && b.Size() != o.Size() {
		panic("belief: MAE across different hypothesis spaces")
	}
	// Direct loop replicating stats.MeanAbsDiff's exact operation order
	// over the confidence vectors without materializing them — MAE runs
	// once per round and must not allocate.
	var s float64
	for i := range b.dists {
		s += math.Abs(b.dists[i].Mean() - o.dists[i].Mean())
	}
	if len(b.dists) == 0 {
		return 0
	}
	return s / float64(len(b.dists))
}

// UpdateFromData performs the unsupervised fictitious-play update the
// trainer applies after observing raw samples (§2, P^T): for every
// presented pair and every hypothesis, a compliant pair increments α and
// a violating pair increments β, each scaled by weight. Pairs neutral to
// a hypothesis (LHS disagrees) carry no evidence for it.
func (b *Belief) UpdateFromData(rel *dataset.Relation, pairs []dataset.Pair, weight float64) {
	if weight <= 0 {
		panic(fmt.Sprintf("belief: non-positive update weight %v", weight))
	}
	for i := 0; i < b.space.Size(); i++ {
		f := b.space.FD(i)
		var succ, fail float64
		for _, p := range pairs {
			switch fd.Status(f, rel, p) {
			case fd.Compliant:
				succ += weight
			case fd.Violating:
				fail += weight
			}
		}
		if succ > 0 || fail > 0 {
			b.dists[i] = b.dists[i].Observe(succ, fail)
		}
	}
}

// MarkPairs is the trainer's best-response annotation (§2, R^T) under
// the belief: for every presented pair and every hypothesis held with
// confidence at least tau that the pair violates, the hypothesis' RHS
// attribute is marked as erroneous. Pairs violating no held hypothesis
// come back with no marks, i.e. clean.
func (b *Belief) MarkPairs(rel *dataset.Relation, pairs []dataset.Pair, tau float64) []Labeling {
	out := make([]Labeling, len(pairs))
	for i, p := range pairs {
		var marked fd.AttrSet
		for j := 0; j < b.space.Size(); j++ {
			f := b.space.FD(j)
			if b.dists[j].Mean() >= tau && fd.Status(f, rel, p) == fd.Violating {
				marked = marked.Add(f.RHS)
			}
		}
		out[i] = Labeling{Pair: p, Marked: marked}
	}
	return out
}

// UpdateFromLabelings performs the learner's supervised fictitious-play
// update (§2, P^L) from the trainer's cell-level annotations. For each
// hypothesis f = X→A and each labeling whose pair agrees on X:
//
//   - the pair complies with f and A is unmarked → α += weight
//     (trustworthy consistent support);
//   - the pair violates f and A is unmarked → β += weight (the trainer
//     saw the disagreement on A and did not attribute it to an error —
//     genuine counter-evidence);
//   - A is marked → no update: the trainer flagged the A cells as
//     erroneous, so neither compliance nor violation on A is evidence
//     about whether f holds on clean data.
//
// Marking at the attribute level is what makes credit assignment work:
// a pair violating several hypotheses only shields the hypotheses whose
// RHS the trainer actually marked, so unbelieved hypotheses violated by
// the same pair still receive their negative evidence.
func (b *Belief) UpdateFromLabelings(rel *dataset.Relation, labeled []Labeling, weight float64) {
	if weight <= 0 {
		panic(fmt.Sprintf("belief: non-positive update weight %v", weight))
	}
	for i := 0; i < b.space.Size(); i++ {
		succ, fail := labelingEvidence(b.space.FD(i), rel, labeled, weight)
		if succ > 0 || fail > 0 {
			b.dists[i] = b.dists[i].Observe(succ, fail)
		}
	}
}

// labelingEvidence accumulates the (α, β) increments one hypothesis
// receives from a batch of labelings.
func labelingEvidence(f fd.FD, rel *dataset.Relation, labeled []Labeling, weight float64) (succ, fail float64) {
	for _, lp := range labeled {
		if lp.Abstained || lp.Marked.Has(f.RHS) {
			continue
		}
		switch fd.Status(f, rel, lp.Pair) {
		case fd.Compliant:
			succ += weight
		case fd.Violating:
			fail += weight
		}
	}
	return succ, fail
}

// RemoveLabelings reverses a prior UpdateFromLabelings for the given
// labelings: the conjugate update is additive, so subtracting the same
// evidence undoes it exactly. Parameters are floored at a small
// positive value so a revision stream interleaved with decay cannot
// drive them invalid. Used when an annotator revises earlier labels.
func (b *Belief) RemoveLabelings(rel *dataset.Relation, labeled []Labeling, weight float64) {
	if weight <= 0 {
		panic(fmt.Sprintf("belief: non-positive update weight %v", weight))
	}
	const floor = 1e-3
	for i := 0; i < b.space.Size(); i++ {
		succ, fail := labelingEvidence(b.space.FD(i), rel, labeled, weight)
		if succ == 0 && fail == 0 { //etlint:ignore floatcmp evidence untouched by any labeling is exactly 0, not computed
			continue
		}
		a := b.dists[i].Alpha - succ
		bb := b.dists[i].Beta - fail
		if a < floor {
			a = floor
		}
		if bb < floor {
			bb = floor
		}
		b.dists[i] = stats.Beta{Alpha: a, Beta: bb}
	}
}

// Decay applies geometric discounting to every hypothesis' evidence:
// α ← λ·α, β ← λ·β with λ ∈ (0, 1]. This is the standard adaptation of
// fictitious play to non-stationary opponents (Young 2004): old
// observations fade, so the belief tracks an annotator whose strategy
// drifts instead of averaging over its whole history. λ = 1 is a no-op;
// a small floor keeps the Beta parameters valid.
func (b *Belief) Decay(lambda float64) {
	if lambda <= 0 || lambda > 1 {
		panic(fmt.Sprintf("belief: decay factor %v out of (0,1]", lambda))
	}
	if lambda == 1 { //etlint:ignore floatcmp lambda == 1 is the explicit no-decay argument, not arithmetic
		return
	}
	const floor = 1e-3
	for i, d := range b.dists {
		a, bb := d.Alpha*lambda, d.Beta*lambda
		if a < floor {
			a = floor
		}
		if bb < floor {
			bb = floor
		}
		b.dists[i] = stats.Beta{Alpha: a, Beta: bb}
	}
}

// PDirty returns the belief's probability that the pair contains an
// error: the maximum confidence among hypotheses the pair syntactically
// violates, or 0 when the pair violates nothing. This generalizes the
// paper's Example 2 (a pair violating an FD with g₁ measure m is dirty
// with probability 1 − m): with confidence = 1 − conditional violation
// rate, a violating pair is dirty exactly with the violated hypothesis'
// confidence.
func (b *Belief) PDirty(rel *dataset.Relation, p dataset.Pair) float64 {
	b.ensureViolMemo(rel)
	var best float64
	if len(b.dists) <= 64 {
		m := b.violatedMask(rel, p)
		// Bits ascend, so hypotheses are visited in the same ascending
		// index order as the slice path — the max is bit-identical.
		for ; m != 0; m &= m - 1 {
			if c := b.dists[bits.TrailingZeros64(m)].Mean(); c > best {
				best = c
			}
		}
		return best
	}
	for _, i := range b.violated(rel, p) {
		if c := b.dists[i].Mean(); c > best {
			best = c
		}
	}
	return best
}

// ensureViolMemo keys the violation memo to the relation's current
// version. When only single-cell edits separate the memo from the
// current state (per the relation's delta journal), just the pairs
// touching an edited row are evicted; otherwise the memo flushes.
func (b *Belief) ensureViolMemo(rel *dataset.Relation) {
	if b.violRel == rel && b.violVersion == rel.Version() {
		return
	}
	if b.violRel == rel {
		if deltas, ok := rel.DeltasSince(b.violVersion); ok {
			var rows []int
			for _, d := range deltas {
				if d.Old == d.New {
					continue
				}
				dup := false
				for _, r := range rows {
					if r == d.Row {
						dup = true
						break
					}
				}
				if !dup {
					rows = append(rows, d.Row)
				}
			}
			for p := range b.violMask {
				for _, r := range rows {
					if p.A == r || p.B == r {
						delete(b.violMask, p)
						break
					}
				}
			}
			for p := range b.violMemo {
				for _, r := range rows {
					if p.A == r || p.B == r {
						delete(b.violMemo, p)
						break
					}
				}
			}
			b.violVersion = rel.Version()
			return
		}
	}
	b.violRel = rel
	b.violVersion = rel.Version()
	b.violMask = nil
	b.violMemo = nil
}

// violatedMask returns the bitmask of hypothesis indices pair p
// violates over rel, memoized per pair; only valid for spaces of at
// most 64 hypotheses. Callers must have run ensureViolMemo.
func (b *Belief) violatedMask(rel *dataset.Relation, p dataset.Pair) uint64 {
	if v, ok := b.violMask[p]; ok {
		return v
	}
	var m uint64
	for i := 0; i < b.space.Size(); i++ {
		if fd.Status(b.space.FD(i), rel, p) == fd.Violating {
			m |= 1 << uint(i)
		}
	}
	if b.violMask == nil {
		b.violMask = make(map[dataset.Pair]uint64)
	}
	b.violMask[p] = m
	return m
}

// violated returns the indices of the hypotheses pair p violates over
// rel, memoized per pair — the slice fallback for spaces larger than
// 64 hypotheses. Callers must have run ensureViolMemo.
func (b *Belief) violated(rel *dataset.Relation, p dataset.Pair) []int32 {
	if v, ok := b.violMemo[p]; ok {
		return v
	}
	var v []int32
	for i := 0; i < b.space.Size(); i++ {
		if fd.Status(b.space.FD(i), rel, p) == fd.Violating {
			v = append(v, int32(i))
		}
	}
	if b.violMemo == nil {
		b.violMemo = make(map[dataset.Pair][]int32)
	}
	b.violMemo[p] = v
	return v
}

// PredictLabel is the best-response labeling under the belief: Dirty
// when PDirty ≥ 1/2, Clean otherwise.
func (b *Belief) PredictLabel(rel *dataset.Relation, p dataset.Pair) Label {
	if b.PDirty(rel, p) >= 0.5 {
		return Dirty
	}
	return Clean
}

// LabelPayoff returns θ(y|x), the probability the belief assigns to
// label y for pair x — the per-labeling payoff of Section 2.
func (b *Belief) LabelPayoff(rel *dataset.Relation, p dataset.Pair, y Label) float64 {
	pd := b.PDirty(rel, p)
	if y == Dirty {
		return pd
	}
	return 1 - pd
}

// SelfPayoff returns max(PDirty, 1−PDirty): the payoff u_a(θ, x) the
// learner expects from presenting x, assuming the trainer will label it
// the way the learner's own belief predicts (Section 4's stochastic best
// response scores).
func (b *Belief) SelfPayoff(rel *dataset.Relation, p dataset.Pair) float64 {
	pd := b.PDirty(rel, p)
	if pd >= 0.5 {
		return pd
	}
	return 1 - pd
}

// Uncertainty returns the Bernoulli entropy of the dirty/clean
// prediction for the pair, the uncertainty-sampling score of §C.1.
func (b *Belief) Uncertainty(rel *dataset.Relation, p dataset.Pair) float64 {
	return stats.BernoulliEntropy(b.PDirty(rel, p))
}

// BelievedFDs returns the hypotheses with confidence at least tau, the
// model the belief exports for downstream error detection.
func (b *Belief) BelievedFDs(tau float64) []fd.FD {
	var out []fd.FD
	for i, d := range b.dists {
		if d.Mean() >= tau {
			out = append(out, b.space.FD(i))
		}
	}
	return out
}

// ConfidentFDs returns the hypotheses with posterior mean at least tau
// AND posterior standard deviation at most maxStd. The second condition
// keeps hypotheses that merely inherited a high prior — and never
// received evidence — out of the exported model; a Beta only tightens
// below the prior's spread after actual observations arrive.
func (b *Belief) ConfidentFDs(tau, maxStd float64) []fd.FD {
	var out []fd.FD
	for i, d := range b.dists {
		if d.Mean() >= tau && d.StdDev() <= maxStd {
			out = append(out, b.space.FD(i))
		}
	}
	return out
}

// CredibleInterval returns the central credible interval of hypothesis
// i's confidence covering the given mass (e.g. 0.95) — the uncertainty
// band an interface shows next to the point estimate.
func (b *Belief) CredibleInterval(i int, mass float64) (lo, hi float64) {
	return b.dists[i].CredibleInterval(mass)
}

// TopK returns the indices of the k highest-confidence hypotheses in
// descending confidence order (ties broken by canonical space order),
// used by the user study's reciprocal-rank evaluation.
func (b *Belief) TopK(k int) []int {
	if k > len(b.dists) {
		k = len(b.dists)
	}
	idx := make([]int, len(b.dists))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: k is small (the paper uses k = 5).
	for sel := 0; sel < k; sel++ {
		best := sel
		for j := sel + 1; j < len(idx); j++ {
			ci, cj := b.dists[idx[j]].Mean(), b.dists[idx[best]].Mean()
			if ci > cj || (ci == cj && idx[j] < idx[best]) { //etlint:ignore floatcmp deterministic index tie-break on identically computed means
				best = j
			}
		}
		idx[sel], idx[best] = idx[best], idx[sel]
	}
	return idx[:k]
}
