package belief

import (
	"math"
	"testing"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// table1 is the paper's Table 1 instance.
func table1() *dataset.Relation {
	rel := dataset.New(dataset.MustSchema("Player", "Team", "City", "Role", "Apps"))
	for _, row := range [][]string{
		{"Carter", "Lakers", "L.A.", "C", "4"},
		{"Jordan", "Lakers", "Chicago", "PF", "4"},
		{"Smith", "Bulls", "Chicago", "PF", "4"},
		{"Black", "Bulls", "Chicago", "C", "3"},
		{"Miller", "Clippers", "L.A.", "PG", "3"},
	} {
		rel.MustAppend(dataset.Tuple(row))
	}
	return rel
}

func smallSpace() *fd.Space {
	// Hypotheses over Team(1), City(2), Role(3): six single-LHS FDs.
	return fd.MustNewSpace(fd.MustEnumerate(fd.SpaceConfig{
		Arity: 5, MaxLHS: 1, Attrs: []int{1, 2, 3},
	}))
}

func uniformBeta() stats.Beta { return stats.NewBeta(1, 1) }

func TestNewBeliefUniform(t *testing.T) {
	s := smallSpace()
	b := New(s, uniformBeta())
	if b.Size() != s.Size() {
		t.Fatalf("Size = %d, want %d", b.Size(), s.Size())
	}
	for i := 0; i < b.Size(); i++ {
		if b.Confidence(i) != 0.5 {
			t.Fatalf("prior confidence %v, want 0.5", b.Confidence(i))
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	b := New(smallSpace(), uniformBeta())
	c := b.Clone()
	c.SetDist(0, stats.NewBeta(10, 1))
	if b.Confidence(0) != 0.5 {
		t.Fatal("Clone shares distribution storage")
	}
}

func TestMAEIdenticalIsZero(t *testing.T) {
	b := New(smallSpace(), uniformBeta())
	if got := b.MAE(b.Clone()); got != 0 {
		t.Fatalf("MAE of identical beliefs = %v", got)
	}
}

func TestMAEKnownValue(t *testing.T) {
	s := smallSpace()
	a := New(s, stats.NewBeta(1, 1)) // all 0.5
	b := New(s, stats.NewBeta(3, 1)) // all 0.75
	if got := a.MAE(b); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("MAE = %v, want 0.25", got)
	}
}

// TestDirtyProbabilityPaperExample reproduces Example 2: with the FD
// Team→City at g₁-style measure m = 0.04 (confidence 0.96), the
// violating pair (t1, t2) is dirty with probability 0.96.
func TestDirtyProbabilityPaperExample(t *testing.T) {
	rel := table1()
	s := smallSpace()
	b := New(s, stats.NewBeta(1e-9, 1)) // everything ≈ 0
	teamCity := fd.MustParse("Team->City", rel.Schema())
	idx, ok := s.Index(teamCity)
	if !ok {
		t.Fatal("Team->City not in space")
	}
	b.SetDist(idx, stats.MustBetaFromMoments(0.96, 0.01))
	p := b.PDirty(rel, dataset.NewPair(0, 1))
	if math.Abs(p-0.96) > 1e-9 {
		t.Fatalf("PDirty(t1,t2) = %v, want 0.96", p)
	}
	// The compliant pair (t3, t4) violates nothing believed: PDirty far
	// below the violating pair's.
	if q := b.PDirty(rel, dataset.NewPair(2, 3)); q >= 0.5 {
		t.Fatalf("PDirty(t3,t4) = %v, want < 0.5", q)
	}
}

func TestPredictLabelThreshold(t *testing.T) {
	rel := table1()
	s := smallSpace()
	b := New(s, stats.NewBeta(1e-9, 1))
	teamCity := fd.MustParse("Team->City", rel.Schema())
	idx, _ := s.Index(teamCity)

	b.SetDist(idx, stats.MustBetaFromMoments(0.9, 0.05))
	if got := b.PredictLabel(rel, dataset.NewPair(0, 1)); got != Dirty {
		t.Fatalf("high-confidence violation labeled %v", got)
	}
	b.SetDist(idx, stats.MustBetaFromMoments(0.1, 0.05))
	if got := b.PredictLabel(rel, dataset.NewPair(0, 1)); got != Clean {
		t.Fatalf("low-confidence violation labeled %v", got)
	}
}

func TestUpdateFromDataMovesConfidences(t *testing.T) {
	rel := table1()
	s := smallSpace()
	b := New(s, uniformBeta())
	pairs := dataset.AllPairs(rel.NumRows())
	b.UpdateFromData(rel, pairs, 1)

	// Team→City: 1 compliant + 1 violating → Beta(2,2) → 0.5.
	teamCity, _ := s.Index(fd.MustParse("Team->City", rel.Schema()))
	if got := b.Confidence(teamCity); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Team→City confidence %v, want 0.5", got)
	}
	// City→Team: agreeing pairs (t1,t5) L.A. violating, (t2,t3),(t2,t4),
	// (t3,t4) Chicago: t2 Lakers vs t3,t4 Bulls → 2 violating, 1
	// compliant. Beta(1+1, 1+3) → 2/6.
	cityTeam, _ := s.Index(fd.MustParse("City->Team", rel.Schema()))
	if got := b.Confidence(cityTeam); math.Abs(got-2.0/6.0) > 1e-12 {
		t.Errorf("City→Team confidence %v, want 1/3", got)
	}
}

func TestUpdateFromDataNeutralPairsNoEffect(t *testing.T) {
	rel := table1()
	s := smallSpace()
	b := New(s, uniformBeta())
	// (t1, t5): Lakers vs Clippers — neutral for Team→City.
	b.UpdateFromData(rel, []dataset.Pair{dataset.NewPair(0, 4)}, 1)
	teamCity, _ := s.Index(fd.MustParse("Team->City", rel.Schema()))
	d := b.Dist(teamCity)
	if d.Alpha != 1 || d.Beta != 1 {
		t.Fatalf("neutral pair changed distribution to Beta(%v,%v)", d.Alpha, d.Beta)
	}
}

func TestUpdateFromLabelingsSemantics(t *testing.T) {
	rel := table1()
	s := smallSpace()
	teamCity := fd.MustParse("Team->City", rel.Schema())
	idx, _ := s.Index(teamCity)
	city := rel.Schema().MustIndex("City")
	viol := dataset.NewPair(0, 1) // violates Team→City
	comp := dataset.NewPair(2, 3) // complies with Team→City

	// Violating, RHS unmarked → β increment (genuine counter-evidence).
	b := New(s, uniformBeta())
	b.UpdateFromLabelings(rel, []Labeling{{Pair: viol}}, 1)
	if d := b.Dist(idx); d.Alpha != 1 || d.Beta != 2 {
		t.Fatalf("violating unmarked → Beta(%v,%v), want Beta(1,2)", d.Alpha, d.Beta)
	}

	// Violating, RHS marked → no update (error explains the violation).
	b = New(s, uniformBeta())
	b.UpdateFromLabelings(rel, []Labeling{{Pair: viol, Marked: fd.NewAttrSet(city)}}, 1)
	if d := b.Dist(idx); d.Alpha != 1 || d.Beta != 1 {
		t.Fatalf("violating marked → Beta(%v,%v), want unchanged", d.Alpha, d.Beta)
	}

	// Compliant, unmarked → α increment.
	b = New(s, uniformBeta())
	b.UpdateFromLabelings(rel, []Labeling{{Pair: comp}}, 1)
	if d := b.Dist(idx); d.Alpha != 2 || d.Beta != 1 {
		t.Fatalf("compliant unmarked → Beta(%v,%v), want Beta(2,1)", d.Alpha, d.Beta)
	}

	// Compliant but RHS marked (suspected error) → no update.
	b = New(s, uniformBeta())
	b.UpdateFromLabelings(rel, []Labeling{{Pair: comp, Marked: fd.NewAttrSet(city)}}, 1)
	if d := b.Dist(idx); d.Alpha != 1 || d.Beta != 1 {
		t.Fatalf("compliant marked → Beta(%v,%v), want unchanged", d.Alpha, d.Beta)
	}

	// A mark on a different attribute does not shield the hypothesis.
	role := rel.Schema().MustIndex("Role")
	b = New(s, uniformBeta())
	b.UpdateFromLabelings(rel, []Labeling{{Pair: viol, Marked: fd.NewAttrSet(role)}}, 1)
	if d := b.Dist(idx); d.Alpha != 1 || d.Beta != 2 {
		t.Fatalf("violating with unrelated mark → Beta(%v,%v), want Beta(1,2)", d.Alpha, d.Beta)
	}
}

func TestMarkPairsBestResponse(t *testing.T) {
	rel := table1()
	s := smallSpace()
	teamCity := fd.MustParse("Team->City", rel.Schema())
	idx, _ := s.Index(teamCity)
	city := rel.Schema().MustIndex("City")

	// Believe only Team→City.
	b := New(s, stats.MustBetaFromMoments(0.1, 0.05))
	b.SetDist(idx, stats.MustBetaFromMoments(0.9, 0.05))

	labeled := b.MarkPairs(rel, []dataset.Pair{
		dataset.NewPair(0, 1), // violates Team→City
		dataset.NewPair(2, 3), // complies
		dataset.NewPair(0, 4), // neutral
	}, 0.5)
	if !labeled[0].Marked.Has(city) || labeled[0].Marked.Count() != 1 {
		t.Fatalf("violation marking = %v, want City only", labeled[0].Marked)
	}
	if labeled[1].Dirty() || labeled[2].Dirty() {
		t.Fatal("clean pairs were marked")
	}
	if labeled[0].Label() != Dirty || labeled[1].Label() != Clean {
		t.Fatal("binary labels inconsistent with marks")
	}
}

func TestUpdatePanicsOnBadWeight(t *testing.T) {
	rel := table1()
	b := New(smallSpace(), uniformBeta())
	for name, fn := range map[string]func(){
		"data zero":    func() { b.UpdateFromData(rel, nil, 0) },
		"labels minus": func() { b.UpdateFromLabelings(rel, nil, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLabelPayoffComplement(t *testing.T) {
	rel := table1()
	b := New(smallSpace(), uniformBeta())
	p := dataset.NewPair(0, 1)
	sum := b.LabelPayoff(rel, p, Dirty) + b.LabelPayoff(rel, p, Clean)
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("payoffs sum to %v, want 1", sum)
	}
}

func TestSelfPayoffAndUncertaintyRelation(t *testing.T) {
	rel := table1()
	s := smallSpace()
	b := New(s, uniformBeta())
	for _, p := range dataset.AllPairs(rel.NumRows()) {
		sp := b.SelfPayoff(rel, p)
		if sp < 0.5 || sp > 1 {
			t.Fatalf("SelfPayoff out of [0.5,1]: %v", sp)
		}
		// Uncertainty is maximal exactly where self payoff is minimal.
		u := b.Uncertainty(rel, p)
		if u < 0 || u > math.Ln2+1e-12 {
			t.Fatalf("Uncertainty out of range: %v", u)
		}
	}
}

func TestBelievedFDs(t *testing.T) {
	s := smallSpace()
	b := New(s, stats.MustBetaFromMoments(0.2, 0.05))
	b.SetDist(2, stats.MustBetaFromMoments(0.9, 0.05))
	got := b.BelievedFDs(0.5)
	if len(got) != 1 || got[0] != s.FD(2) {
		t.Fatalf("BelievedFDs = %v", got)
	}
	if all := b.BelievedFDs(0.0); len(all) != s.Size() {
		t.Fatalf("threshold 0 should return all, got %d", len(all))
	}
}

func TestTopKOrdering(t *testing.T) {
	s := smallSpace()
	b := New(s, stats.MustBetaFromMoments(0.3, 0.05))
	b.SetDist(4, stats.MustBetaFromMoments(0.95, 0.02))
	b.SetDist(1, stats.MustBetaFromMoments(0.7, 0.05))
	top := b.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK returned %d", len(top))
	}
	if top[0] != 4 || top[1] != 1 {
		t.Fatalf("TopK order = %v, want [4 1 ...]", top)
	}
	// k larger than space clamps.
	if got := b.TopK(100); len(got) != s.Size() {
		t.Fatalf("clamped TopK length = %d", len(got))
	}
	// Ties broken by canonical index order.
	tie := New(s, stats.MustBetaFromMoments(0.5, 0.05))
	topTie := tie.TopK(s.Size())
	for i := 1; i < len(topTie); i++ {
		if topTie[i] <= topTie[i-1] {
			t.Fatalf("tie break not canonical: %v", topTie)
		}
	}
}

func TestUpdateConvergesToEmpiricalRate(t *testing.T) {
	// Feeding the full pair set repeatedly drives confidence to the
	// syntactic compliance rate regardless of the prior.
	rel := table1()
	s := smallSpace()
	b := New(s, stats.MustBetaFromMoments(0.9, 0.05))
	pairs := dataset.AllPairs(rel.NumRows())
	for it := 0; it < 200; it++ {
		b.UpdateFromData(rel, pairs, 1)
	}
	teamCity, _ := s.Index(fd.MustParse("Team->City", rel.Schema()))
	if got := b.Confidence(teamCity); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("confidence %v did not converge to empirical 0.5", got)
	}
}
