package belief

import (
	"math"
	"testing"

	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

func TestUniformPrior(t *testing.T) {
	s := smallSpace()
	b := UniformPrior(s, 0.9, DefaultPriorSigma)
	for i := 0; i < b.Size(); i++ {
		if got := b.Confidence(i); math.Abs(got-0.9) > 1e-9 {
			t.Fatalf("Uniform-0.9 confidence %v", got)
		}
	}
}

func TestUniformPriorExtremesClamped(t *testing.T) {
	s := smallSpace()
	for _, d := range []float64{0, 1} {
		b := UniformPrior(s, d, DefaultPriorSigma)
		for i := 0; i < b.Size(); i++ {
			c := b.Confidence(i)
			if c <= 0 || c >= 1 {
				t.Fatalf("Uniform-%v produced boundary confidence %v", d, c)
			}
		}
	}
}

func TestRandomPriorVariesAndDeterministic(t *testing.T) {
	s := smallSpace()
	a := RandomPrior(s, stats.NewRNG(1), DefaultPriorSigma)
	b := RandomPrior(s, stats.NewRNG(1), DefaultPriorSigma)
	if a.MAE(b) != 0 {
		t.Fatal("same seed produced different random priors")
	}
	c := RandomPrior(s, stats.NewRNG(2), DefaultPriorSigma)
	if a.MAE(c) == 0 {
		t.Fatal("different seeds produced identical random priors")
	}
	// Confidences should actually vary across hypotheses.
	confs := a.Confidences()
	allSame := true
	for _, v := range confs[1:] {
		if v != confs[0] {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("random prior degenerate: all confidences equal")
	}
}

func TestDataEstimatePriorTracksData(t *testing.T) {
	rel := table1()
	s := smallSpace()
	b := DataEstimatePrior(s, rel, DefaultPriorSigma)
	teamCity, _ := s.Index(fd.MustParse("Team->City", rel.Schema()))
	// Confidence(Team→City) on Table 1 is 0.5.
	if got := b.Confidence(teamCity); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("data-estimate confidence %v, want 0.5", got)
	}
}

func TestUserSpecifiedPriorPaperConfig(t *testing.T) {
	// Space over attrs 1,2,3 with LHS up to 2 so related FDs exist.
	rel := table1()
	s := fd.MustNewSpace(fd.MustEnumerate(fd.SpaceConfig{
		Arity: 5, MaxLHS: 2, Attrs: []int{1, 2, 3},
	}))
	user := fd.MustParse("Team->City", rel.Schema())

	// Config 1: no related treatment — user's FD at 0.85, rest at 0.15.
	b, err := UserSpecifiedPrior(s, user, false)
	if err != nil {
		t.Fatal(err)
	}
	uIdx, _ := s.Index(user)
	if got := b.Confidence(uIdx); math.Abs(got-0.85) > 1e-9 {
		t.Errorf("user FD confidence %v, want 0.85", got)
	}
	for i := 0; i < s.Size(); i++ {
		if i == uIdx {
			continue
		}
		if got := b.Confidence(i); math.Abs(got-0.15) > 1e-9 {
			t.Errorf("other FD %v confidence %v, want 0.15", s.FD(i), got)
		}
	}

	// Config 2: related FDs at 0.8.
	b2, err := UserSpecifiedPrior(s, user, true)
	if err != nil {
		t.Fatal(err)
	}
	related := s.Related(user)
	if len(related) == 0 {
		t.Fatal("setup: no related FDs in space")
	}
	for _, i := range related {
		if got := b2.Confidence(i); math.Abs(got-0.8) > 1e-9 {
			t.Errorf("related FD %v confidence %v, want 0.8", s.FD(i), got)
		}
	}
	// Standard deviations all 0.05 per §A.2.
	for i := 0; i < b2.Size(); i++ {
		if got := b2.Dist(i).StdDev(); math.Abs(got-0.05) > 1e-9 {
			t.Errorf("FD %v prior σ = %v, want 0.05", s.FD(i), got)
		}
	}
}

func TestUserSpecifiedPriorUnknownFD(t *testing.T) {
	s := smallSpace()
	unknown := fd.MustNew(fd.NewAttrSet(0), 4)
	if _, err := UserSpecifiedPrior(s, unknown, false); err == nil {
		t.Fatal("unknown user FD should error")
	}
}

func TestPriorSpecBuild(t *testing.T) {
	rel := table1()
	s := smallSpace()
	rng := stats.NewRNG(3)

	u, err := PriorSpec{Kind: PriorUniform, D: 0.9}.Build(s, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u.Confidence(0)-0.9) > 1e-9 {
		t.Errorf("uniform spec confidence %v", u.Confidence(0))
	}

	if _, err := (PriorSpec{Kind: PriorUniform, D: 1.5}).Build(s, nil, nil); err == nil {
		t.Error("out-of-range d should error")
	}
	if _, err := (PriorSpec{Kind: PriorRandom}).Build(s, nil, nil); err == nil {
		t.Error("random without rng should error")
	}
	if _, err := (PriorSpec{Kind: PriorRandom}).Build(s, nil, rng); err != nil {
		t.Errorf("random with rng errored: %v", err)
	}
	if _, err := (PriorSpec{Kind: PriorDataEstimate}).Build(s, nil, nil); err == nil {
		t.Error("data-estimate without relation should error")
	}
	if _, err := (PriorSpec{Kind: PriorDataEstimate}).Build(s, rel, nil); err != nil {
		t.Errorf("data-estimate with relation errored: %v", err)
	}
	if _, err := (PriorSpec{Kind: "bogus"}).Build(s, rel, rng); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestPriorSpecString(t *testing.T) {
	cases := map[string]PriorSpec{
		"Uniform-0.9":   {Kind: PriorUniform, D: 0.9},
		"Random":        {Kind: PriorRandom},
		"Data-estimate": {Kind: PriorDataEstimate},
	}
	for want, spec := range cases {
		if got := spec.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestClampMeanFeasibility(t *testing.T) {
	for _, mu := range []float64{-1, 0, 0.01, 0.5, 0.99, 1, 2} {
		for _, sigma := range []float64{0.01, 0.05, 0.2, 0.4} {
			m := clampMean(mu, sigma)
			if sigma*sigma >= m*(1-m) {
				t.Errorf("clampMean(%v, %v) = %v infeasible", mu, sigma, m)
			}
		}
	}
}
