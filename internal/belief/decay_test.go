package belief

import (
	"math"
	"testing"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

func TestDecayPreservesMeanShrinksEvidence(t *testing.T) {
	s := smallSpace()
	b := New(s, stats.NewBeta(40, 10)) // mean 0.8, strong
	b.Decay(0.5)
	d := b.Dist(0)
	if d.Alpha != 20 || d.Beta != 5 {
		t.Fatalf("decayed to Beta(%v,%v), want Beta(20,5)", d.Alpha, d.Beta)
	}
	if math.Abs(d.Mean()-0.8) > 1e-12 {
		t.Fatalf("decay changed the mean: %v", d.Mean())
	}
	if d.Variance() <= stats.NewBeta(40, 10).Variance() {
		t.Fatal("decay should increase variance (weaker evidence)")
	}
}

func TestDecayNoopAtOne(t *testing.T) {
	b := New(smallSpace(), stats.NewBeta(3, 7))
	b.Decay(1)
	if d := b.Dist(0); d.Alpha != 3 || d.Beta != 7 {
		t.Fatalf("λ=1 changed distribution: %+v", d)
	}
}

func TestDecayFloorsParameters(t *testing.T) {
	b := New(smallSpace(), stats.NewBeta(1e-3, 1e-3))
	b.Decay(0.5)
	d := b.Dist(0)
	if d.Alpha <= 0 || d.Beta <= 0 {
		t.Fatalf("decay produced invalid Beta(%v,%v)", d.Alpha, d.Beta)
	}
}

func TestDecayPanicsOnBadLambda(t *testing.T) {
	b := New(smallSpace(), stats.NewBeta(1, 1))
	for _, lambda := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Decay(%v) did not panic", lambda)
				}
			}()
			b.Decay(lambda)
		}()
	}
}

func TestDecayTracksNonStationaryEvidence(t *testing.T) {
	// A belief with forgetting adapts to a regime change faster than one
	// without: feed compliant evidence, then switch to violating.
	rel := table1()
	s := smallSpace()
	teamCity, _ := s.Index(fd.MustParse("Team->City", rel.Schema()))
	comp := []dataset.Pair{dataset.NewPair(2, 3)} // compliant
	viol := []dataset.Pair{dataset.NewPair(0, 1)} // violating

	plain := New(s, stats.NewBeta(1, 1))
	forgetting := New(s, stats.NewBeta(1, 1))
	for i := 0; i < 50; i++ {
		plain.UpdateFromData(rel, comp, 1)
		forgetting.Decay(0.9)
		forgetting.UpdateFromData(rel, comp, 1)
	}
	for i := 0; i < 20; i++ {
		plain.UpdateFromData(rel, viol, 1)
		forgetting.Decay(0.9)
		forgetting.UpdateFromData(rel, viol, 1)
	}
	if forgetting.Confidence(teamCity) >= plain.Confidence(teamCity) {
		t.Fatalf("forgetting belief (%v) should adapt below plain FP (%v) after the regime change",
			forgetting.Confidence(teamCity), plain.Confidence(teamCity))
	}
}

func TestRemoveLabelingsInvertsUpdate(t *testing.T) {
	rel := table1()
	s := smallSpace()
	b := New(s, stats.NewBeta(2, 3))
	before := make([]stats.Beta, b.Size())
	for i := range before {
		before[i] = b.Dist(i)
	}
	labeled := []Labeling{
		{Pair: dataset.NewPair(0, 1)},
		{Pair: dataset.NewPair(2, 3)},
		{Pair: dataset.NewPair(0, 4), Marked: fd.NewAttrSet(2)},
	}
	b.UpdateFromLabelings(rel, labeled, 1)
	b.RemoveLabelings(rel, labeled, 1)
	for i := range before {
		d := b.Dist(i)
		if math.Abs(d.Alpha-before[i].Alpha) > 1e-9 || math.Abs(d.Beta-before[i].Beta) > 1e-9 {
			t.Fatalf("hypothesis %d not restored: Beta(%v,%v) vs Beta(%v,%v)",
				i, d.Alpha, d.Beta, before[i].Alpha, before[i].Beta)
		}
	}
}

func TestRemoveLabelingsFloors(t *testing.T) {
	rel := table1()
	s := smallSpace()
	b := New(s, stats.NewBeta(0.01, 0.01))
	labeled := []Labeling{{Pair: dataset.NewPair(0, 1)}}
	// Removing evidence that was never added must not drive parameters
	// non-positive.
	b.RemoveLabelings(rel, labeled, 1)
	for i := 0; i < b.Size(); i++ {
		d := b.Dist(i)
		if d.Alpha <= 0 || d.Beta <= 0 {
			t.Fatalf("hypothesis %d invalid after floor: Beta(%v,%v)", i, d.Alpha, d.Beta)
		}
	}
}

func TestAbstainedLabelingsCarryNoEvidence(t *testing.T) {
	rel := table1()
	s := smallSpace()
	b := New(s, stats.NewBeta(1, 1))
	b.UpdateFromLabelings(rel, []Labeling{
		{Pair: dataset.NewPair(0, 1), Abstained: true},
		{Pair: dataset.NewPair(2, 3), Abstained: true},
	}, 1)
	for i := 0; i < b.Size(); i++ {
		if d := b.Dist(i); d.Alpha != 1 || d.Beta != 1 {
			t.Fatalf("abstained labeling moved hypothesis %d to Beta(%v,%v)", i, d.Alpha, d.Beta)
		}
	}
}

func TestConfidentFDsRequiresEvidence(t *testing.T) {
	s := smallSpace()
	// High-mean but wide prior: believed by mean, excluded by spread.
	b := New(s, stats.MustBetaFromMoments(0.8, 0.15))
	if got := b.ConfidentFDs(0.5, 0.1); len(got) != 0 {
		t.Fatalf("prior-only hypotheses exported: %v", got)
	}
	// Tighten one with evidence.
	b.SetDist(2, stats.NewBeta(80, 20)) // mean 0.8, σ ≈ 0.04
	got := b.ConfidentFDs(0.5, 0.1)
	if len(got) != 1 || got[0] != s.FD(2) {
		t.Fatalf("ConfidentFDs = %v", got)
	}
}
