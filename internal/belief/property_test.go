package belief

import (
	"math"
	"testing"
	"testing/quick"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// TestUpdateBatchingEquivalence: the conjugate update is additive, so
// incorporating labelings one at a time equals incorporating them as a
// batch — the property that makes Session.Submit order-insensitive
// within a round.
func TestUpdateBatchingEquivalence(t *testing.T) {
	rel := table1()
	s := smallSpace()
	rng := stats.NewRNG(99)
	f := func(seedRaw uint8) bool {
		n := 1 + int(seedRaw%8)
		labeled := make([]Labeling, n)
		for i := range labeled {
			a := rng.Intn(rel.NumRows())
			b := rng.Intn(rel.NumRows())
			if a == b {
				b = (b + 1) % rel.NumRows()
			}
			l := Labeling{Pair: dataset.NewPair(a, b)}
			if rng.Float64() < 0.3 {
				l.Marked = fd.NewAttrSet(1 + rng.Intn(3))
			}
			if rng.Float64() < 0.1 {
				l = Labeling{Pair: l.Pair, Abstained: true}
			}
			labeled[i] = l
		}
		batch := New(s, stats.NewBeta(2, 2))
		batch.UpdateFromLabelings(rel, labeled, 1)
		oneByOne := New(s, stats.NewBeta(2, 2))
		for _, lp := range labeled {
			oneByOne.UpdateFromLabelings(rel, []Labeling{lp}, 1)
		}
		for i := 0; i < s.Size(); i++ {
			a, b := batch.Dist(i), oneByOne.Dist(i)
			if math.Abs(a.Alpha-b.Alpha) > 1e-9 || math.Abs(a.Beta-b.Beta) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateWeightLinearity: updating with weight w equals w identical
// unit updates.
func TestUpdateWeightLinearity(t *testing.T) {
	rel := table1()
	s := smallSpace()
	labeled := []Labeling{{Pair: dataset.NewPair(0, 1)}, {Pair: dataset.NewPair(2, 3)}}

	weighted := New(s, stats.NewBeta(1, 1))
	weighted.UpdateFromLabelings(rel, labeled, 3)
	repeated := New(s, stats.NewBeta(1, 1))
	for i := 0; i < 3; i++ {
		repeated.UpdateFromLabelings(rel, labeled, 1)
	}
	for i := 0; i < s.Size(); i++ {
		a, b := weighted.Dist(i), repeated.Dist(i)
		if math.Abs(a.Alpha-b.Alpha) > 1e-9 || math.Abs(a.Beta-b.Beta) > 1e-9 {
			t.Fatalf("hypothesis %d: weight-3 Beta(%v,%v) != 3×unit Beta(%v,%v)",
				i, a.Alpha, a.Beta, b.Alpha, b.Beta)
		}
	}
}

// TestConfidencesAlwaysInUnitInterval under arbitrary update sequences.
func TestConfidencesAlwaysInUnitInterval(t *testing.T) {
	rel := table1()
	s := smallSpace()
	rng := stats.NewRNG(123)
	b := New(s, stats.NewBeta(0.5, 0.5))
	pairs := dataset.AllPairs(rel.NumRows())
	for step := 0; step < 500; step++ {
		switch rng.Intn(4) {
		case 0:
			b.UpdateFromData(rel, []dataset.Pair{pairs[rng.Intn(len(pairs))]}, 1)
		case 1:
			b.UpdateFromLabelings(rel, []Labeling{{Pair: pairs[rng.Intn(len(pairs))]}}, 1)
		case 2:
			b.RemoveLabelings(rel, []Labeling{{Pair: pairs[rng.Intn(len(pairs))]}}, 1)
		case 3:
			b.Decay(0.7 + 0.3*rng.Float64())
		}
		for i := 0; i < b.Size(); i++ {
			c := b.Confidence(i)
			if c < 0 || c > 1 || math.IsNaN(c) {
				t.Fatalf("step %d: confidence %v out of range", step, c)
			}
			d := b.Dist(i)
			if d.Alpha <= 0 || d.Beta <= 0 {
				t.Fatalf("step %d: invalid Beta(%v,%v)", step, d.Alpha, d.Beta)
			}
		}
	}
}

// TestMAESymmetryAndBounds over random belief pairs.
func TestMAESymmetryAndBounds(t *testing.T) {
	s := smallSpace()
	rng := stats.NewRNG(321)
	f := func(_ uint8) bool {
		a := RandomPrior(s, rng.Split(), 0.1)
		b := RandomPrior(s, rng.Split(), 0.1)
		d := a.MAE(b)
		return d >= 0 && d <= 1 && math.Abs(d-b.MAE(a)) < 1e-12 && a.MAE(a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
