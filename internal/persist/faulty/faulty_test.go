package faulty_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/persist"
	"exptrain/internal/persist/faulty"
	"exptrain/internal/stats"
)

// snapshotPair builds two distinguishable snapshots over the same
// schema, standing in for "the checkpoint already on disk" and "the
// checkpoint being written when the crash hits".
func snapshotPair(t *testing.T) (oldSnap, newSnap *persist.Snapshot) {
	t.Helper()
	schema := dataset.MustSchema("a", "b", "c")
	space := fd.MustNewSpace(fd.MustEnumerate(fd.SpaceConfig{Arity: 3, MaxLHS: 2}))
	trainer := belief.New(space, stats.NewBeta(2, 3))
	learner := belief.New(space, stats.NewBeta(1, 1))
	mk := func(history [][]belief.Labeling) *persist.Snapshot {
		snap, err := persist.NewSnapshot(schema, space, trainer, learner, history)
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	oldSnap = mk([][]belief.Labeling{{{Pair: dataset.NewPair(0, 1), Marked: fd.NewAttrSet(1)}}})
	newSnap = mk([][]belief.Labeling{
		{{Pair: dataset.NewPair(0, 1), Marked: fd.NewAttrSet(1)}},
		{{Pair: dataset.NewPair(2, 5), Abstained: true}},
	})
	return oldSnap, newSnap
}

func encode(t *testing.T, s *persist.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCrashPointProperty is the crash-safety property test: for a crash
// simulated at EVERY step of DirStore.Put's commit protocol — with the
// temp file torn to several different prefixes at the fsync step — a
// recovery Scan plus Get must yield exactly the old snapshot or exactly
// the new one. Never ErrCorrupt on the live file, never a third state.
func TestCrashPointProperty(t *testing.T) {
	ctx := context.Background()
	oldSnap, newSnap := snapshotPair(t)
	oldBytes, newBytes := encode(t, oldSnap), encode(t, newSnap)
	if bytes.Equal(oldBytes, newBytes) {
		t.Fatal("fixture snapshots must differ")
	}

	for _, step := range persist.PutSteps() {
		for _, keep := range []float64{0, 0.33, 0.66, 1} {
			for _, preexisting := range []bool{true, false} {
				name := fmt.Sprintf("%s/keep=%.2f/preexisting=%t", step, keep, preexisting)
				t.Run(name, func(t *testing.T) {
					dir, err := persist.NewDirStore(t.TempDir())
					if err != nil {
						t.Fatal(err)
					}
					if preexisting {
						if err := dir.Put(ctx, "s", oldSnap); err != nil {
							t.Fatal(err)
						}
					}
					err = faulty.CrashPut(ctx, dir, "s", newSnap, step, keep)
					if !errors.Is(err, faulty.ErrInjected) {
						t.Fatalf("CrashPut error = %v, want ErrInjected", err)
					}

					// The live file must be readable (or absent) even before
					// recovery runs — atomicity does not depend on Scan.
					committed := step == persist.StepSyncDir
					checkGet := func(when string) {
						got, err := dir.Get(ctx, "s")
						switch {
						case committed:
							if err != nil {
								t.Fatalf("%s: Get after commit-point crash: %v", when, err)
							}
							if !bytes.Equal(encode(t, got), newBytes) {
								t.Fatalf("%s: Get returned a state that is not the new snapshot", when)
							}
						case preexisting:
							if err != nil {
								t.Fatalf("%s: Get after pre-commit crash: %v", when, err)
							}
							if !bytes.Equal(encode(t, got), oldBytes) {
								t.Fatalf("%s: Get returned a state that is not the old snapshot", when)
							}
						default:
							if !errors.Is(err, persist.ErrNotFound) {
								t.Fatalf("%s: Get = %v, want ErrNotFound", when, err)
							}
						}
					}
					checkGet("pre-scan")

					res, err := dir.Scan(ctx)
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Quarantined) != 0 {
						t.Fatalf("Scan quarantined %v; crash must never corrupt the live file", res.Quarantined)
					}
					wantTemps := 0
					if !committed {
						wantTemps = 1 // the crashed writer's orphan
					}
					if res.TempsRemoved != wantTemps {
						t.Fatalf("Scan removed %d temps, want %d", res.TempsRemoved, wantTemps)
					}
					checkGet("post-scan")

					// Recovery over: the next Put must succeed cleanly.
					if err := dir.Put(ctx, "s", newSnap); err != nil {
						t.Fatal(err)
					}
					checkAfter, err := dir.Get(ctx, "s")
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(encode(t, checkAfter), newBytes) {
						t.Fatal("clean Put after recovery did not land the new snapshot")
					}
				})
			}
		}
	}
}

// opError runs one scripted operation and reports its error.
func opError(ctx context.Context, s *faulty.Store, i int, snap *persist.Snapshot) error {
	switch i % 4 {
	case 0:
		return s.Put(ctx, "det", snap)
	case 1:
		_, err := s.Get(ctx, "det")
		return err
	case 2:
		_, err := s.List(ctx)
		return err
	default:
		err := s.Delete(ctx, "det")
		if errors.Is(err, persist.ErrNotFound) {
			return nil // a prior injected Put fault legitimately leaves nothing to delete
		}
		return err
	}
}

func TestFaultScheduleDeterministic(t *testing.T) {
	ctx := context.Background()
	snap, _ := snapshotPair(t)
	cfg := faulty.Config{Seed: 42, FailRate: 0.4, AmbiguousCancelRate: 0.2}
	run := func() []string {
		s := faulty.Wrap(persist.NewMemStore(), cfg)
		var outcomes []string
		for i := 0; i < 64; i++ {
			if err := opError(ctx, s, i, snap); err != nil {
				outcomes = append(outcomes, fmt.Sprintf("%d:%v", i, err))
			} else {
				outcomes = append(outcomes, fmt.Sprintf("%d:ok", i))
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged across identically seeded runs:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	if s := faulty.Wrap(persist.NewMemStore(), cfg); s.Seed() != 42 {
		t.Fatalf("Seed() = %d, want the configured 42", s.Seed())
	}
}

func TestFailEveryN(t *testing.T) {
	ctx := context.Background()
	snap, _ := snapshotPair(t)
	s := faulty.Wrap(persist.NewMemStore(), faulty.Config{Seed: 1, FailEveryN: 3})
	var failed int
	for i := 0; i < 9; i++ {
		if err := s.Put(ctx, "n", snap); err != nil {
			if !errors.Is(err, faulty.ErrInjected) {
				t.Fatalf("op %d: %v", i, err)
			}
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("FailEveryN=3 over 9 ops injected %d faults, want 3", failed)
	}
	if ops, injected := s.Stats(); ops != 9 || injected != 3 {
		t.Fatalf("Stats() = (%d, %d), want (9, 3)", ops, injected)
	}
}

func TestOpsFilterAndClearFaults(t *testing.T) {
	ctx := context.Background()
	snap, _ := snapshotPair(t)
	s := faulty.Wrap(persist.NewMemStore(), faulty.Config{
		Seed: 7, FailRate: 1, Ops: []faulty.Op{faulty.OpGet},
	})
	if err := s.Put(ctx, "f", snap); err != nil {
		t.Fatalf("Put is outside Ops filter but failed: %v", err)
	}
	if _, err := s.Get(ctx, "f"); !errors.Is(err, faulty.ErrInjected) {
		t.Fatalf("Get error = %v, want ErrInjected", err)
	}
	s.ClearFaults()
	if _, err := s.Get(ctx, "f"); err != nil {
		t.Fatalf("Get after ClearFaults: %v", err)
	}
}

// TestAmbiguousCancel checks the wrapper's nastiest fault: the caller
// sees context.Canceled but the write actually landed.
func TestAmbiguousCancel(t *testing.T) {
	ctx := context.Background()
	snap, _ := snapshotPair(t)
	inner := persist.NewMemStore()
	s := faulty.Wrap(inner, faulty.Config{Seed: 3, AmbiguousCancelRate: 1})
	err := s.Put(ctx, "amb", snap)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Put error = %v, want context.Canceled", err)
	}
	if _, err := inner.Get(ctx, "amb"); err != nil {
		t.Fatalf("ambiguous cancel must leave the write landed; inner Get: %v", err)
	}
}

func TestCustomError(t *testing.T) {
	ctx := context.Background()
	snap, _ := snapshotPair(t)
	sentinel := errors.New("disk on fire")
	s := faulty.Wrap(persist.NewMemStore(), faulty.Config{Seed: 5, FailRate: 1, Err: sentinel})
	if err := s.Put(ctx, "c", snap); !errors.Is(err, sentinel) {
		t.Fatalf("Put error = %v, want the configured sentinel", err)
	}
}

// TestTornWritesNeverCorrupt drives many seeded torn Puts against one
// DirStore and checks the invariant the wrapper exists to prove: the
// live snapshot is always exactly the last committed one.
func TestTornWritesNeverCorrupt(t *testing.T) {
	ctx := context.Background()
	oldSnap, newSnap := snapshotPair(t)
	snaps := []*persist.Snapshot{oldSnap, newSnap}
	encs := [][]byte{encode(t, oldSnap), encode(t, newSnap)}

	dir, err := persist.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := faulty.Wrap(dir, faulty.Config{Seed: 99, FailRate: 0.5, TornWrites: true})
	current := -1 // live snapshot index, -1 = absent
	for i := 0; i < 100; i++ {
		which := i % 2
		err := s.Put(ctx, "torn", snaps[which])
		// A clean Put commits; a simulated crash leaves either the prior
		// state or — when the crash lands after the rename — the new one.
		allowed := map[int]bool{which: true}
		if err != nil {
			if !errors.Is(err, faulty.ErrInjected) {
				t.Fatalf("put %d: %v", i, err)
			}
			allowed[current] = true
		}
		got, gerr := dir.Get(ctx, "torn")
		if gerr != nil {
			if !errors.Is(gerr, persist.ErrNotFound) || !allowed[-1] {
				t.Fatalf("put %d: Get = %v (allowed states %v)", i, gerr, allowed)
			}
			current = -1
			continue
		}
		enc := encode(t, got)
		switch {
		case bytes.Equal(enc, encs[0]):
			current = 0
		case bytes.Equal(enc, encs[1]):
			current = 1
		default:
			t.Fatalf("put %d: live snapshot matches neither old nor new — a mangled third state", i)
		}
		if !allowed[current] {
			t.Fatalf("put %d: live snapshot %d not in allowed states %v", i, current, allowed)
		}
	}
	if _, injected := s.Stats(); injected == 0 {
		t.Fatal("fault schedule injected nothing; the test exercised no crashes")
	}
	res, err := dir.Scan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("Scan quarantined %v after torn writes", res.Quarantined)
	}
}
