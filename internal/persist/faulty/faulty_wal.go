package faulty

import (
	"context"
	"fmt"
	"os"

	"exptrain/internal/persist"
	"exptrain/internal/persist/wal"
)

// RoundAppender forwards the inner store's round-append capability:
// the wrapper itself when the inner store can take appends (so
// injections cover them too), nil otherwise. Without this forwarding a
// faulty wrapper around a snapshot-only store would falsely advertise
// WAL durability.
func (s *Store) RoundAppender() persist.RoundAppender {
	if persist.AppenderOf(s.inner) == nil {
		return nil
	}
	return s
}

// AppendRounds implements persist.RoundAppender with the same seeded
// injection discipline as Put: a plain injected failure fails before
// the inner append runs (a transient fault the caller retries), and
// under TornAppends an injected failure becomes a simulated crash
// partway through the group commit instead.
func (s *Store) AppendRounds(ctx context.Context, deltas []*persist.RoundDelta) error {
	app := persist.AppenderOf(s.inner)
	if app == nil {
		return fmt.Errorf("faulty: inner store takes no round appends")
	}
	p := s.draw(OpAppend)
	if err := s.sleep(ctx, p.latency); err != nil {
		return err
	}
	if p.walTorn {
		return s.tornAppend(ctx, deltas, p)
	}
	if p.fail {
		return s.fault(OpAppend, deltas[0].Session)
	}
	err := app.AppendRounds(ctx, deltas)
	if p.cancel && err == nil {
		return fmt.Errorf("faulty: append for %q: %w", deltas[0].Session, context.Canceled)
	}
	return err
}

// tornAppend simulates a crash partway through the WAL group commit:
// the log dies before p.walStep, a crash at the fsync step leaves a
// seeded fraction of the unsynced bytes on the segment (the torn tail
// recovery must truncate), and a crash at the ack step leaves the
// records durable while the caller sees failure. The log stays
// poisoned — as dead as the process — until the directory is reopened.
func (s *Store) tornAppend(ctx context.Context, deltas []*persist.RoundDelta, p plan) error {
	s.putMu.Lock()
	defer s.putMu.Unlock()
	crashErr := fmt.Errorf("faulty: simulated crash before %s of append for %q: %w",
		p.walStep, deltas[0].Session, ErrInjected)
	s.wal.Log().SetCrashHook(func(step wal.AppendStep, segPath string, synced, size int64) error {
		if step != p.walStep {
			return nil
		}
		if step == wal.StepAppendSync && size > synced {
			cut := synced + int64(p.keep*float64(size-synced))
			_ = os.Truncate(segPath, cut)
		}
		return crashErr
	})
	err := s.wal.AppendRounds(ctx, deltas) //etlint:ignore chanlock putMu only serializes this wrapper's crash plans; the wal committer goroutine drains the append queue without ever taking it, so the receive always resolves
	s.wal.Log().SetCrashHook(nil)
	return err
}

// WalStats forwards the inner store's WAL counters when it surfaces
// any (persist.WalStatter), so health reporting sees through the
// fault-injection layer.
func (s *Store) WalStats() (persist.WalStats, bool) {
	if ws, ok := s.inner.(persist.WalStatter); ok {
		return ws.WalStats()
	}
	return persist.WalStats{}, false
}

// CrashAppend runs one append against ws that simulates a process
// crash immediately before the given group-commit step, leaving the
// on-disk segment exactly as a real crash there would. keep is the
// fraction of the unsynced bytes "flushed" when crashing at the fsync
// step (torn tail); other steps ignore it. The log is poisoned
// afterwards — reopen the directory to model the restart. The returned
// error is the simulated crash (errors.Is ErrInjected) unless the
// append failed earlier for real reasons.
func CrashAppend(ctx context.Context, ws *wal.Store, deltas []*persist.RoundDelta, step wal.AppendStep, keep float64) error {
	crashErr := fmt.Errorf("faulty: simulated crash before %s of append: %w", step, ErrInjected)
	ws.Log().SetCrashHook(func(st wal.AppendStep, segPath string, synced, size int64) error {
		if st != step {
			return nil
		}
		if st == wal.StepAppendSync && size > synced {
			cut := synced + int64(keep*float64(size-synced))
			_ = os.Truncate(segPath, cut)
		}
		return crashErr
	})
	err := ws.AppendRounds(ctx, deltas)
	ws.Log().SetCrashHook(nil)
	return err
}
