// Package faulty wraps a persist.Store with deterministic, seeded
// fault injection — the chaos harness of the session service. Every
// failure path the service claims to survive (a flaky disk, a torn
// write, an ambiguous cancellation mid-op) is driven by this wrapper
// under the race detector rather than assumed: a store that fails 30%
// of its operations on a fixed seed produces the same fault schedule
// every run, so a chaos failure is a reproducible bug, not a flake.
package faulty

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"time"

	"exptrain/internal/persist"
	"exptrain/internal/persist/wal"
	"exptrain/internal/stats"
)

// ErrInjected is the default injected fault; test with errors.Is.
var ErrInjected = errors.New("faulty: injected store fault")

// Op names one Store operation, for restricting injection.
type Op uint8

const (
	OpPut Op = iota
	OpGet
	OpDelete
	OpList
	// OpAppend is the WAL round-append operation (persist.RoundAppender),
	// present only when the inner store supports it.
	OpAppend
)

// String renders the op for error messages.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDelete:
		return "delete"
	case OpList:
		return "list"
	case OpAppend:
		return "append"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Config seeds and shapes the injected faults. The zero value injects
// nothing and passes every operation through.
type Config struct {
	// Seed drives every injection decision. Zero asks for a fresh seed
	// (chaos sweeps want new interleavings run-to-run); the drawn seed
	// is recorded and returned by Seed so any failure replays exactly.
	Seed uint64
	// FailRate is the per-op probability in [0, 1] of failing before the
	// inner operation runs.
	FailRate float64
	// FailEveryN additionally fails every Nth operation deterministically
	// (0 = off).
	FailEveryN int
	// Err is the injected error (ErrInjected when nil). It is always
	// wrapped, so errors.Is works on the result either way.
	Err error
	// Ops restricts injection to the listed operations (nil = all).
	Ops []Op
	// AmbiguousCancelRate is the per-op probability that the inner
	// operation RUNS to completion but the wrapper still reports
	// context.Canceled — the nasty real-world case where a caller cannot
	// know whether its write landed.
	AmbiguousCancelRate float64
	// MaxLatency injects a seeded uniform latency in [0, MaxLatency)
	// before each operation (0 = off). The sleep respects ctx.
	MaxLatency time.Duration
	// TornWrites, when the inner store is a *persist.DirStore, turns
	// injected Put failures into simulated crashes partway through the
	// commit protocol: the put aborts before a seeded step, and a crash
	// during the temp-file write leaves a seeded prefix of the bytes on
	// disk — exactly the state a power cut there would leave.
	TornWrites bool
	// TornAppends, when the inner store is a *wal.Store, turns injected
	// append failures into simulated crashes partway through the group
	// commit: the log dies before a seeded step (torn-append when the
	// crash lands mid-flush — a seeded fraction of the unsynced bytes
	// stays on disk; fsync-crash when it lands after the fsync but
	// before the ack), and stays dead until reopened — exactly the
	// process-death model the WAL's recovery contract covers. Tests
	// reopen the log directory to model the restart.
	TornAppends bool
}

// Store wraps an inner persist.Store, injecting faults per Config.
// Decisions are drawn from a single seeded stream under a mutex: a
// sequential caller sees a fully deterministic fault schedule, and
// concurrent callers see a deterministic multiset of decisions (the
// interleaving, as always, is the scheduler's).
type Store struct {
	inner persist.Store
	dir   *persist.DirStore // non-nil when inner is a DirStore
	wal   *wal.Store        // non-nil when inner is a WAL-backed store

	mu       sync.Mutex
	cfg      Config     // guarded by mu (ClearFaults mutates it)
	rng      *stats.RNG // guarded by mu
	ops      uint64     // operations seen; guarded by mu
	injected uint64     // faults injected; guarded by mu

	// putMu serializes Puts when torn writes are enabled: the crash hook
	// on the inner DirStore is store-global, so per-Put crash plans must
	// not overlap.
	putMu sync.Mutex
}

// Wrap builds a fault-injecting wrapper around inner.
func Wrap(inner persist.Store, cfg Config) *Store {
	if cfg.Seed == 0 {
		// Chaos mode: draw a fresh schedule each run. The seed is
		// recorded so any failure replays bit-for-bit — log Seed() in the
		// harness.
		//etlint:ignore detrand chaos mode deliberately draws a fresh seed per run; it is recorded via Seed() for exact replay
		cfg.Seed = rand.Uint64() | 1
	}
	if cfg.Err == nil {
		cfg.Err = ErrInjected
	}
	dir, _ := inner.(*persist.DirStore)
	ws, _ := inner.(*wal.Store)
	return &Store{inner: inner, dir: dir, wal: ws, cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
}

// Seed returns the seed driving the fault schedule — the one from
// Config, or the recorded fresh draw when Config.Seed was zero.
func (s *Store) Seed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Seed
}

// Stats reports operations seen and faults injected so far.
func (s *Store) Stats() (ops, injected uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops, s.injected
}

// SetFailRate re-arms (or disarms) the per-op failure probability
// mid-run. Sharded chaos tests use SetFailRate(1) to kill a whole
// replica at a chosen point in the workload — every subsequent
// operation fails until ClearFaults or another SetFailRate.
func (s *Store) SetFailRate(rate float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.FailRate = rate
}

// ClearFaults heals the store: no further faults are injected, in-flight
// decisions stand. Chaos tests call this to watch degraded sessions
// recover once the disk comes back.
func (s *Store) ClearFaults() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.FailRate = 0
	s.cfg.FailEveryN = 0
	s.cfg.AmbiguousCancelRate = 0
	s.cfg.TornWrites = false
	s.cfg.TornAppends = false
}

// plan is one operation's drawn decisions.
type plan struct {
	fail    bool
	cancel  bool
	latency time.Duration
	// crash parameters, meaningful when fail && TornWrites on a DirStore.
	crashStep persist.PutStep
	keep      float64
	torn      bool
	// walStep and walTorn are the append-crash analogues, meaningful
	// when fail && TornAppends on a WAL-backed store.
	walStep wal.AppendStep
	walTorn bool
}

// eligibleLocked reports whether op may receive injections.
func (s *Store) eligibleLocked(op Op) bool {
	if s.cfg.Ops == nil {
		return true
	}
	for _, o := range s.cfg.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// draw rolls this operation's decisions. Draws happen in a fixed order
// so the stream stays aligned across operations for a fixed Config.
func (s *Store) draw(op Op) plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	var p plan
	if s.cfg.MaxLatency > 0 {
		p.latency = time.Duration(s.rng.Float64() * float64(s.cfg.MaxLatency))
	}
	if s.cfg.FailRate > 0 && s.rng.Float64() < s.cfg.FailRate {
		p.fail = true
	}
	if s.cfg.FailEveryN > 0 && s.ops%uint64(s.cfg.FailEveryN) == 0 {
		p.fail = true
	}
	if s.cfg.AmbiguousCancelRate > 0 && s.rng.Float64() < s.cfg.AmbiguousCancelRate {
		p.cancel = true
	}
	if !s.eligibleLocked(op) {
		p.fail, p.cancel = false, false
	}
	if p.fail && op == OpPut && s.cfg.TornWrites && s.dir != nil {
		steps := persist.PutSteps()
		p.crashStep = steps[s.rng.Intn(len(steps))]
		p.keep = s.rng.Float64()
		p.torn = true
	}
	if p.fail && op == OpAppend && s.cfg.TornAppends && s.wal != nil {
		steps := wal.AppendSteps()
		p.walStep = steps[s.rng.Intn(len(steps))]
		p.keep = s.rng.Float64()
		p.walTorn = true
	}
	if p.fail || p.cancel {
		s.injected++
	}
	return p
}

// sleep waits out injected latency, honoring ctx.
func (s *Store) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// fault builds the injected error for op.
func (s *Store) fault(op Op, id string) error {
	s.mu.Lock()
	base := s.cfg.Err
	s.mu.Unlock()
	return fmt.Errorf("faulty: injected %s %q failure: %w", op, id, base)
}

// Put implements persist.Store.
func (s *Store) Put(ctx context.Context, id string, snap *persist.Snapshot) error {
	p := s.draw(OpPut)
	if err := s.sleep(ctx, p.latency); err != nil {
		return err
	}
	if p.torn {
		return s.tornPut(ctx, id, snap, p)
	}
	if p.fail {
		return s.fault(OpPut, id)
	}
	err := s.inner.Put(ctx, id, snap)
	if p.cancel && err == nil {
		return fmt.Errorf("faulty: put %q: %w", id, context.Canceled)
	}
	return err
}

// tornPut simulates a crash partway through DirStore.Put's commit
// protocol: the put aborts before p.crashStep, and a crash at the
// fsync step first truncates the temp file to a p.keep prefix — the
// bytes a dying kernel had actually flushed.
func (s *Store) tornPut(ctx context.Context, id string, snap *persist.Snapshot, p plan) error {
	s.putMu.Lock()
	defer s.putMu.Unlock()
	crashErr := fmt.Errorf("faulty: simulated crash before %s of put %q: %w", p.crashStep, id, ErrInjected)
	s.dir.SetCrashHook(func(step persist.PutStep, tmpPath string) error {
		if step != p.crashStep {
			return nil
		}
		if step == persist.StepSyncTemp {
			if fi, err := os.Stat(tmpPath); err == nil {
				_ = os.Truncate(tmpPath, int64(p.keep*float64(fi.Size())))
			}
		}
		return crashErr
	})
	//etlint:ignore lockorder CHA widens s.inner to every module Store, including this wrapper; tornPut only runs when inner is the *persist.DirStore (it drives s.dir's crash hook), which never takes putMu
	err := s.inner.Put(ctx, id, snap) //etlint:ignore chanlock inner is the *persist.DirStore here (see lockorder rationale above); DirStore.Put does no channel ops
	s.dir.SetCrashHook(nil)
	return err
}

// Get implements persist.Store.
func (s *Store) Get(ctx context.Context, id string) (*persist.Snapshot, error) {
	p := s.draw(OpGet)
	if err := s.sleep(ctx, p.latency); err != nil {
		return nil, err
	}
	if p.fail {
		return nil, s.fault(OpGet, id)
	}
	snap, err := s.inner.Get(ctx, id)
	if p.cancel && err == nil {
		return nil, fmt.Errorf("faulty: get %q: %w", id, context.Canceled)
	}
	return snap, err
}

// Delete implements persist.Store.
func (s *Store) Delete(ctx context.Context, id string) error {
	p := s.draw(OpDelete)
	if err := s.sleep(ctx, p.latency); err != nil {
		return err
	}
	if p.fail {
		return s.fault(OpDelete, id)
	}
	err := s.inner.Delete(ctx, id)
	if p.cancel && err == nil {
		return fmt.Errorf("faulty: delete %q: %w", id, context.Canceled)
	}
	return err
}

// List implements persist.Store.
func (s *Store) List(ctx context.Context) ([]string, error) {
	p := s.draw(OpList)
	if err := s.sleep(ctx, p.latency); err != nil {
		return nil, err
	}
	if p.fail {
		return nil, s.fault(OpList, "*")
	}
	ids, err := s.inner.List(ctx)
	if p.cancel && err == nil {
		return nil, fmt.Errorf("faulty: list: %w", context.Canceled)
	}
	return ids, err
}

// CrashPut runs one Put against dir that simulates a process crash
// immediately before the given protocol step, leaving the on-disk state
// a real crash there would leave. keep is the fraction of the snapshot
// bytes "flushed" when crashing at the fsync step (torn temp file);
// other steps ignore it. The returned error is the simulated crash
// (errors.Is ErrInjected) unless Put failed earlier for real reasons.
func CrashPut(ctx context.Context, dir *persist.DirStore, id string, snap *persist.Snapshot, step persist.PutStep, keep float64) error {
	crashErr := fmt.Errorf("faulty: simulated crash before %s of put %q: %w", step, id, ErrInjected)
	dir.SetCrashHook(func(st persist.PutStep, tmpPath string) error {
		if st != step {
			return nil
		}
		if st == persist.StepSyncTemp {
			if fi, err := os.Stat(tmpPath); err == nil {
				_ = os.Truncate(tmpPath, int64(keep*float64(fi.Size())))
			}
		}
		return crashErr
	})
	err := dir.Put(ctx, id, snap)
	dir.SetCrashHook(nil)
	return err
}
