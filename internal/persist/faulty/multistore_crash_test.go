package faulty_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"exptrain/internal/persist"
	"exptrain/internal/persist/faulty"
)

// TestCrashPointPropertyMultiStore lifts the old-or-new crash-safety
// property from one DirStore to the replicated store: a replicated
// checkpoint commit is N per-replica Puts, and a crash can land before
// ANY step of ANY replica's commit protocol, after any prefix of its
// peers already took the new snapshot. For every such crash point the
// MultiStore's Get must return exactly the old snapshot or exactly the
// new one — never a torn third state, never ErrCorrupt — and a
// reconciling Scan must converge every replica onto that answer.
func TestCrashPointPropertyMultiStore(t *testing.T) {
	ctx := context.Background()
	oldSnap, newSnap := snapshotPair(t)
	oldBytes, newBytes := encode(t, oldSnap), encode(t, newSnap)

	const replicas = 3
	for crashed := 0; crashed < replicas; crashed++ {
		for _, step := range persist.PutSteps() {
			for _, keep := range []float64{0, 0.5, 1} {
				name := fmt.Sprintf("replica=%d/%s/keep=%.1f", crashed, step, keep)
				t.Run(name, func(t *testing.T) {
					dirs := make([]*persist.DirStore, replicas)
					stores := make([]persist.Store, replicas)
					for i := range dirs {
						dir, err := persist.NewDirStore(t.TempDir())
						if err != nil {
							t.Fatal(err)
						}
						// Every replica starts with the old checkpoint.
						if err := dir.Put(ctx, "s", oldSnap); err != nil {
							t.Fatal(err)
						}
						dirs[i] = dir
						stores[i] = dir
					}
					// The crash interrupts the replicated Put after replicas
					// 0..crashed-1 took the new snapshot, mid-commit on
					// replica `crashed`, before the rest were reached.
					for i := 0; i < crashed; i++ {
						if err := dirs[i].Put(ctx, "s", newSnap); err != nil {
							t.Fatal(err)
						}
					}
					err := faulty.CrashPut(ctx, dirs[crashed], "s", newSnap, step, keep)
					if !errors.Is(err, faulty.ErrInjected) {
						t.Fatalf("CrashPut error = %v, want ErrInjected", err)
					}

					ms, err := persist.NewMultiStore(stores, 0)
					if err != nil {
						t.Fatal(err)
					}
					checkOldOrNew := func(when string) []byte {
						got, err := ms.Get(ctx, "s")
						if err != nil {
							t.Fatalf("%s: Get: %v", when, err)
						}
						b := encode(t, got)
						if !bytes.Equal(b, oldBytes) && !bytes.Equal(b, newBytes) {
							t.Fatalf("%s: Get returned a state that is neither old nor new", when)
						}
						return b
					}
					want := checkOldOrNew("before scan")
					// Any replica that committed the new snapshot before the
					// crash makes it the winner.
					if crashed > 0 || step == persist.StepSyncDir {
						if !bytes.Equal(want, newBytes) {
							t.Fatal("a committed replica's snapshot must win the read")
						}
					}

					res, err := ms.Scan(ctx)
					if err != nil {
						t.Fatalf("Scan: %v", err)
					}
					if len(res.Failed) != 0 {
						t.Fatalf("Scan failed ids: %v", res.Failed)
					}
					after := checkOldOrNew("after scan")
					if !bytes.Equal(after, want) {
						t.Fatal("Scan changed the winning snapshot")
					}
					// And the scan converged every replica onto the winner.
					for i, d := range dirs {
						got, err := d.Get(ctx, "s")
						if err != nil {
							t.Fatalf("replica %d after scan: %v", i, err)
						}
						if !bytes.Equal(encode(t, got), want) {
							t.Fatalf("replica %d diverges from the winner after scan", i)
						}
					}
				})
			}
		}
	}
}
