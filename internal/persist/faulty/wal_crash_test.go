package faulty_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"exptrain/internal/persist"
	"exptrain/internal/persist/faulty"
	"exptrain/internal/persist/wal"
)

// walDelta builds one distinguishable round delta; the MAE fingerprints
// the (session, round) so a recovered prefix can be matched exactly.
func walDelta(session string, round int) *persist.RoundDelta {
	return &persist.RoundDelta{
		Session: session,
		Round:   round,
		Interaction: persist.FromRound(persist.Round{
			MAE:    float64(round) + 0.125,
			Payoff: float64(round),
		}),
	}
}

// checkWalPrefix asserts the recovered session is exactly the genesis
// snapshot plus a gapless prefix of the appended rounds — the WAL's
// old-or-new contract at its commit unit, the record — and returns how
// many appended rounds survived.
func checkWalPrefix(t *testing.T, snap *persist.Snapshot, genesisRounds, appended int) int {
	t.Helper()
	got := len(snap.History)
	if got < genesisRounds || got > genesisRounds+appended {
		t.Fatalf("recovered %d rounds, want between %d (old) and %d (new)", got, genesisRounds, genesisRounds+appended)
	}
	for r := genesisRounds; r < got; r++ {
		want := walDelta("s", r).Interaction.MAE
		if snap.History[r].MAE != want {
			t.Fatalf("recovered round %d has MAE %v, want %v — not the appended record", r, snap.History[r].MAE, want)
		}
	}
	return got - genesisRounds
}

// TestCrashPointPropertyWalAppend is the WAL's crash-safety property
// test: a crash simulated at EVERY step of the group-commit protocol —
// with the segment's unsynced suffix torn to several different prefixes
// at the fsync step — must leave the reopened store serving exactly the
// genesis snapshot plus a gapless prefix of the appended rounds. Every
// round committed before the crash survives; a round acked durable is
// never lost (the ack-step crash leaves all records recoverable); and
// recovery never reports corruption — torn tails truncate silently.
func TestCrashPointPropertyWalAppend(t *testing.T) {
	ctx := context.Background()
	genesis, _ := snapshotPair(t) // one recorded round

	for _, step := range wal.AppendSteps() {
		for _, keep := range []float64{0, 0.33, 0.66, 1} {
			t.Run(fmt.Sprintf("%s/keep=%.2f", step, keep), func(t *testing.T) {
				storeDir, walDir := t.TempDir(), t.TempDir()
				dir, err := persist.NewDirStore(storeDir)
				if err != nil {
					t.Fatal(err)
				}
				ws, _, err := wal.OpenStore(dir, walDir, wal.StoreConfig{})
				if err != nil {
					t.Fatal(err)
				}
				if err := ws.Put(ctx, "s", genesis); err != nil {
					t.Fatal(err)
				}
				// Rounds 1-2 commit cleanly; the crash hits rounds 3-4.
				if err := ws.AppendRounds(ctx, []*persist.RoundDelta{walDelta("s", 1), walDelta("s", 2)}); err != nil {
					t.Fatal(err)
				}
				err = faulty.CrashAppend(ctx, ws, []*persist.RoundDelta{walDelta("s", 3), walDelta("s", 4)}, step, keep)
				if !errors.Is(err, faulty.ErrInjected) {
					t.Fatalf("CrashAppend error = %v, want ErrInjected", err)
				}
				// The log is as dead as the process; appends fail until reopen.
				if err := ws.AppendRounds(ctx, []*persist.RoundDelta{walDelta("s", 5)}); err == nil {
					t.Fatal("append on a crashed log succeeded")
				}
				if err := ws.Close(); err != nil {
					t.Fatal(err)
				}

				// The restart: fresh store handles over the same directories.
				dir2, err := persist.NewDirStore(storeDir)
				if err != nil {
					t.Fatal(err)
				}
				ws2, rec, err := wal.OpenStore(dir2, walDir, wal.StoreConfig{})
				if err != nil {
					t.Fatalf("reopen after crash at %s: %v", step, err)
				}
				defer ws2.Close()
				snap, err := ws2.Get(ctx, "s")
				if err != nil {
					t.Fatalf("Get after crash at %s: %v", step, err)
				}
				// Genesis holds 1 round; rounds 1-2 committed, 3-4 crashed:
				// old is 2 appended rounds, new is 4, anything between is a
				// torn-tail prefix.
				survived := checkWalPrefix(t, snap, len(genesis.History), 4)
				if survived < 2 {
					t.Fatalf("%d appended rounds survived; the 2 committed before the crash must", survived)
				}
				switch step {
				case wal.StepAppendWrite:
					if survived != 2 {
						t.Fatalf("crash before the write left %d appended rounds, want exactly the 2 committed", survived)
					}
				case wal.StepAppendAck:
					// fsync completed: durable even though every caller saw failure.
					if survived != 4 {
						t.Fatalf("crash after fsync left %d appended rounds, want all 4", survived)
					}
				}
				// The reopened log takes appends again, continuing from the
				// recovered frontier.
				next := len(snap.History)
				if err := ws2.AppendRounds(ctx, []*persist.RoundDelta{walDelta("s", next)}); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
				_ = rec
			})
		}
	}
}

// TestCrashPointPropertyWalReplicated lifts the WAL crash property to
// the quorum store: three WAL-backed replicas, the crash interrupting
// one replica's group commit after any prefix of its peers already
// committed the same rounds. The reopened MultiStore's Get must serve
// genesis + a gapless prefix — with any fully-committed replica making
// the full run win — and a reconciling Scan must converge every replica
// onto that answer.
func TestCrashPointPropertyWalReplicated(t *testing.T) {
	ctx := context.Background()
	genesis, _ := snapshotPair(t)
	const replicas = 3
	appendBatch := func() []*persist.RoundDelta {
		return []*persist.RoundDelta{walDelta("s", 1), walDelta("s", 2)}
	}

	for crashed := 0; crashed < replicas; crashed++ {
		for _, step := range wal.AppendSteps() {
			for _, keep := range []float64{0, 0.5, 1} {
				t.Run(fmt.Sprintf("replica=%d/%s/keep=%.1f", crashed, step, keep), func(t *testing.T) {
					storeDirs := make([]string, replicas)
					walDirs := make([]string, replicas)
					stores := make([]*wal.Store, replicas)
					for i := range stores {
						storeDirs[i], walDirs[i] = t.TempDir(), t.TempDir()
						dir, err := persist.NewDirStore(storeDirs[i])
						if err != nil {
							t.Fatal(err)
						}
						ws, _, err := wal.OpenStore(dir, walDirs[i], wal.StoreConfig{})
						if err != nil {
							t.Fatal(err)
						}
						if err := ws.Put(ctx, "s", genesis); err != nil {
							t.Fatal(err)
						}
						stores[i] = ws
					}
					// Replicas 0..crashed-1 committed the append in full before
					// the crash caught replica `crashed` mid-commit; the rest
					// were never reached.
					for i := 0; i < crashed; i++ {
						if err := stores[i].AppendRounds(ctx, appendBatch()); err != nil {
							t.Fatal(err)
						}
					}
					err := faulty.CrashAppend(ctx, stores[crashed], appendBatch(), step, keep)
					if !errors.Is(err, faulty.ErrInjected) {
						t.Fatalf("CrashAppend error = %v, want ErrInjected", err)
					}
					for _, ws := range stores {
						if err := ws.Close(); err != nil {
							t.Fatal(err)
						}
					}

					// Restart: reopen every replica, rebuild the quorum store.
					reopened := make([]persist.Store, replicas)
					walStores := make([]*wal.Store, replicas)
					for i := range reopened {
						dir, err := persist.NewDirStore(storeDirs[i])
						if err != nil {
							t.Fatal(err)
						}
						ws, _, err := wal.OpenStore(dir, walDirs[i], wal.StoreConfig{})
						if err != nil {
							t.Fatalf("replica %d reopen: %v", i, err)
						}
						defer ws.Close()
						reopened[i] = ws
						walStores[i] = ws
					}
					ms, err := persist.NewMultiStore(reopened, 2)
					if err != nil {
						t.Fatal(err)
					}
					if persist.AppenderOf(ms) == nil {
						t.Fatal("a quorum of WAL replicas must advertise round appends")
					}
					snap, err := ms.Get(ctx, "s")
					if err != nil {
						t.Fatalf("quorum Get after crash: %v", err)
					}
					survived := checkWalPrefix(t, snap, len(genesis.History), 2)
					if crashed > 0 && survived != 2 {
						t.Fatalf("a fully-committed replica exists but the quorum read has %d of 2 appended rounds", survived)
					}
					if step == wal.StepAppendAck && survived != 2 {
						t.Fatalf("crash after fsync: quorum read has %d of 2 durable rounds", survived)
					}
					want := len(snap.History)

					// Scan reconciles: every replica converges on the winner.
					if _, err := ms.Scan(ctx); err != nil {
						t.Fatalf("Scan: %v", err)
					}
					ms.Flush()
					for i, ws := range walStores {
						got, err := ws.Get(ctx, "s")
						if err != nil {
							t.Fatalf("replica %d after scan: %v", i, err)
						}
						if len(got.History) != want {
							t.Fatalf("replica %d has %d rounds after scan, winner has %d", i, len(got.History), want)
						}
					}
				})
			}
		}
	}
}

// TestFaultWalTornAppendInjection exercises the faulty wrapper's
// TornAppends mode end-to-end: an injected append failure becomes a
// simulated crash that poisons the log — dead until the directory is
// reopened, exactly like the process dying — while plain (transient)
// injection leaves the log healthy for the caller's retry.
func TestFaultWalTornAppendInjection(t *testing.T) {
	ctx := context.Background()
	genesis, _ := snapshotPair(t)

	t.Run("torn", func(t *testing.T) {
		walDir := t.TempDir()
		ws, _, err := wal.OpenStore(persist.NewMemStore(), walDir, wal.StoreConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := ws.Put(ctx, "s", genesis); err != nil {
			t.Fatal(err)
		}
		fs := faulty.Wrap(ws, faulty.Config{Seed: 7, FailRate: 1, TornAppends: true})
		if persist.AppenderOf(fs) == nil {
			t.Fatal("faulty over a WAL store must forward the append capability")
		}
		err = fs.AppendRounds(ctx, []*persist.RoundDelta{walDelta("s", 1)})
		if !errors.Is(err, faulty.ErrInjected) {
			t.Fatalf("AppendRounds under TornAppends = %v, want ErrInjected", err)
		}
		if ws.Log().Broken() == nil {
			t.Fatal("a torn append must poison the log")
		}
		// Clearing faults does not resurrect a crashed log — only a reopen
		// models the restart.
		fs.ClearFaults()
		if err := fs.AppendRounds(ctx, []*persist.RoundDelta{walDelta("s", 1)}); err == nil {
			t.Fatal("append on a poisoned log succeeded")
		}
		if err := ws.Close(); err != nil {
			t.Fatal(err)
		}
		ws2, rec, err := wal.OpenStore(persist.NewMemStore(), walDir, wal.StoreConfig{})
		if err != nil {
			t.Fatalf("reopen after torn append: %v", err)
		}
		defer ws2.Close()
		if rec.TruncatedBytes < 0 {
			t.Fatalf("TruncatedBytes = %d", rec.TruncatedBytes)
		}
	})

	t.Run("transient", func(t *testing.T) {
		ws, _, err := wal.OpenStore(persist.NewMemStore(), t.TempDir(), wal.StoreConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer ws.Close()
		if err := ws.Put(ctx, "s", genesis); err != nil {
			t.Fatal(err)
		}
		fs := faulty.Wrap(ws, faulty.Config{Seed: 7, FailRate: 1})
		err = fs.AppendRounds(ctx, []*persist.RoundDelta{walDelta("s", 1)})
		if !errors.Is(err, faulty.ErrInjected) {
			t.Fatalf("AppendRounds = %v, want ErrInjected", err)
		}
		if ws.Log().Broken() != nil {
			t.Fatal("a plain injected failure must not poison the log")
		}
		if ops, injected := fs.Stats(); ops == 0 || injected == 0 {
			t.Fatalf("Stats = (%d ops, %d injected), want the append counted", ops, injected)
		}
		fs.SetFailRate(0)
		if err := fs.AppendRounds(ctx, []*persist.RoundDelta{walDelta("s", 1)}); err != nil {
			t.Fatalf("retry after faults cleared: %v", err)
		}
	})
}
