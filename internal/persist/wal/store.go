package wal

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"exptrain/internal/persist"
)

// StoreConfig shapes a WAL-backed store.
type StoreConfig struct {
	// Wal configures the underlying log.
	Wal Config
	// CompactEvery triggers background compaction of a session once this
	// many committed rounds await folding into its snapshot (default 64).
	// Compaction cost is one Get+Put per session, amortized over
	// CompactEvery O(space)-sized appends.
	CompactEvery int
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.CompactEvery <= 0 {
		c.CompactEvery = 64
	}
	return c
}

// Store is a persist.Store that layers a write-ahead round log over an
// inner snapshot store. Reads fold the committed log suffix over the
// inner snapshot (snapshot + replay); AppendRounds is the cheap
// durability path — one group-committed log record per round instead of
// a full snapshot rewrite — and a background compactor folds long
// tails into fresh snapshots so dead log segments can be dropped.
//
// The commit contract composes from the layers' own: the inner store's
// five-step Put protocol makes each snapshot old-or-new, the log's
// torn-tail truncation makes the replayed suffix exactly the committed
// records, and ApplyDelta's gap check turns a lost committed round into
// ErrCorrupt instead of silently fabricated history (under replication
// the multistore then repairs from a peer).
type Store struct {
	inner persist.Store
	log   *Log
	cfg   StoreConfig

	mu sync.Mutex
	// tail holds each session's committed-but-unfolded round deltas,
	// sorted by round, latest write winning a round collision (a retried
	// append after an ambiguous crash legitimately revisits a round);
	// guarded by mu.
	tail map[string][]*persist.RoundDelta
	// water is each session's snapshot watermark: the inner store holds
	// at least this many rounds, so lower deltas are prunable; guarded
	// by mu.
	water map[string]int
	// closed rejects work once Close begins; guarded by mu.
	closed bool

	// kick wakes the compactor (capacity 1, non-blocking sends).
	kick chan struct{}
	// quit asks the compactor to exit.
	quit chan struct{}
	wg   sync.WaitGroup
}

// OpenStore opens (or creates) the write-ahead log in dir over the
// inner snapshot store, replaying the committed suffix into the store's
// in-memory tail so reads immediately observe every durable round. The
// returned RecoverResult reports what the replay found.
func OpenStore(inner persist.Store, dir string, cfg StoreConfig) (*Store, RecoverResult, error) {
	cfg = cfg.withDefaults()
	l, rec, err := Open(dir, cfg.Wal)
	if err != nil {
		return nil, rec, err
	}
	s := &Store{
		inner: inner,
		log:   l,
		cfg:   cfg,
		tail:  make(map[string][]*persist.RoundDelta),
		water: make(map[string]int),
		kick:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
	}
	for sess, through := range rec.Marks {
		s.water[sess] = through
	}
	for _, d := range rec.Deltas {
		if d.Round < s.water[d.Session] {
			continue // already folded into a snapshot before the crash
		}
		s.insertTailLocked(d) // no concurrency yet: the compactor isn't running
	}
	s.wg.Add(1)
	go s.compactor()
	return s, rec, nil
}

// insertTailLocked merges one delta into its session's sorted tail,
// replacing any existing record for the same round (latest wins).
// Caller holds s.mu (or has exclusive access during open).
func (s *Store) insertTailLocked(d *persist.RoundDelta) {
	tail := s.tail[d.Session]
	i := sort.Search(len(tail), func(i int) bool { return tail[i].Round >= d.Round })
	if i < len(tail) && tail[i].Round == d.Round {
		tail[i] = d
		return
	}
	tail = append(tail, nil)
	copy(tail[i+1:], tail[i:])
	tail[i] = d
	s.tail[d.Session] = tail
}

// Inner returns the wrapped snapshot store.
func (s *Store) Inner() persist.Store { return s.inner }

// Log returns the underlying write-ahead log (for tests and fault
// injection).
func (s *Store) Log() *Log { return s.log }

// RoundAppender marks the store as append-capable for AppenderOf.
func (s *Store) RoundAppender() persist.RoundAppender { return s }

// AppendRounds implements persist.RoundAppender: the deltas ride one
// group commit and, once fsynced, become visible to Get's replay fold.
func (s *Store) AppendRounds(ctx context.Context, deltas []*persist.RoundDelta) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(deltas) == 0 {
		return nil
	}
	for _, d := range deltas {
		if d == nil {
			return fmt.Errorf("wal: nil round delta")
		}
		if err := persist.ValidateID(d.Session); err != nil {
			return err
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	if err := s.log.Append(deltas); err != nil {
		return err
	}
	lag := 0
	s.mu.Lock()
	for _, d := range deltas {
		if d.Round >= s.water[d.Session] {
			s.insertTailLocked(d)
		}
		if n := len(s.tail[d.Session]); n > lag {
			lag = n
		}
	}
	s.mu.Unlock()
	if lag >= s.cfg.CompactEvery {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// foldTail applies a session's committed tail onto a snapshot, in
// round order. Caller passes a snapshot it owns.
func (s *Store) foldTail(snap *persist.Snapshot, id string) error {
	s.mu.Lock()
	tail := append([]*persist.RoundDelta(nil), s.tail[id]...)
	s.mu.Unlock()
	for _, d := range tail {
		if _, err := persist.ApplyDelta(snap, d); err != nil {
			return fmt.Errorf("replaying wal for %q: %w", id, err)
		}
	}
	return nil
}

// Get implements persist.Store: the inner snapshot plus the committed
// log suffix — snapshot + replay, on every read.
func (s *Store) Get(ctx context.Context, id string) (*persist.Snapshot, error) {
	snap, err := s.inner.Get(ctx, id)
	if err != nil {
		return nil, err
	}
	if err := s.foldTail(snap, id); err != nil {
		return nil, err
	}
	return snap, nil
}

// Put implements persist.Store: the snapshot lands in the inner store
// (its own atomic commit protocol), the now-folded tail is pruned, and
// a watermark record rides the log so recovery and compaction know the
// fold happened. The mark is best-effort — losing it only costs
// harmless re-replay of already-folded rounds (ApplyDelta skips them).
func (s *Store) Put(ctx context.Context, id string, snap *persist.Snapshot) error {
	if err := s.inner.Put(ctx, id, snap); err != nil {
		return err
	}
	through := len(snap.History)
	s.mu.Lock()
	if through > s.water[id] {
		s.water[id] = through
	}
	tail := s.tail[id]
	i := sort.Search(len(tail), func(i int) bool { return tail[i].Round >= s.water[id] })
	switch {
	case i >= len(tail):
		delete(s.tail, id)
	case i > 0:
		s.tail[id] = append([]*persist.RoundDelta(nil), tail[i:]...)
	}
	s.mu.Unlock()
	if err := s.log.Mark(id, through); err != nil && !errors.Is(err, ErrClosed) {
		// The snapshot is durable; only compaction bookkeeping was lost.
		return nil
	}
	return nil
}

// Delete implements persist.Store: the inner snapshot goes away and a
// high watermark retires every logged round for the id, so a recovery
// replay cannot resurrect the session.
func (s *Store) Delete(ctx context.Context, id string) error {
	if err := s.inner.Delete(ctx, id); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.tail, id)
	s.water[id] = deletedWatermark
	s.mu.Unlock()
	if err := s.log.Mark(id, deletedWatermark); err != nil && !errors.Is(err, ErrClosed) {
		return nil // the delete is durable; only the log hint was lost
	}
	return nil
}

// deletedWatermark retires every conceivable round of a deleted
// session (rounds are bounded by the pair pool, far below this).
const deletedWatermark = 1 << 30

// List implements persist.Store. The log never creates ids the inner
// store lacks — the service writes a genesis snapshot before its first
// append — so the inner listing is the listing.
func (s *Store) List(ctx context.Context) ([]string, error) {
	return s.inner.List(ctx)
}

// Scan is the WAL-aware recovery scan: the inner store's own scan
// (quarantine torn snapshots, drop orphaned temps) followed by a fold
// of every session's committed tail into a fresh snapshot, so that
// after Scan the inner store alone carries every durable round — the
// state replication converges on. Implements the same optional
// interface MultiStore probes for, so a replica set of WAL stores
// reconciles through the standard quorum scan.
func (s *Store) Scan(ctx context.Context) (persist.ScanResult, error) {
	var res persist.ScanResult
	if sc, ok := s.inner.(interface {
		Scan(ctx context.Context) (persist.ScanResult, error)
	}); ok {
		var err error
		res, err = sc.Scan(ctx)
		if err != nil {
			return res, err
		}
	}
	s.mu.Lock()
	ids := make([]string, 0, len(s.tail))
	for id := range s.tail {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		// Best-effort per session, like quarantining: one unfoldable tail
		// (e.g. its genesis snapshot never landed) must not hide the rest.
		_ = s.compactSession(ctx, id)
	}
	if _, err := s.log.Compact(); err != nil {
		return res, err
	}
	return res, nil
}

// compactSession folds one session's tail into a fresh inner snapshot.
func (s *Store) compactSession(ctx context.Context, id string) error {
	s.mu.Lock()
	n := len(s.tail[id])
	s.mu.Unlock()
	if n == 0 {
		return nil
	}
	snap, err := s.Get(ctx, id) // inner + fold
	if err != nil {
		return err
	}
	return s.Put(ctx, id, snap) // prunes the tail and marks the log
}

// compactor is the background folding goroutine: when a session's
// committed tail grows past CompactEvery, fold it into a fresh inner
// snapshot and let the log drop dead segments. Failures are tolerated
// — the tail stays, reads still fold it, and the next append re-kicks.
func (s *Store) compactor() {
	defer s.wg.Done()
	//etlint:ignore ctxflow the compactor is detached by design: folding committed rounds into snapshots is the store's own housekeeping, owned by no request
	ctx := context.Background()
	for {
		select {
		case <-s.quit:
			return
		case <-s.kick:
		}
		s.mu.Lock()
		var due []string
		for id, tail := range s.tail {
			if len(tail) >= s.cfg.CompactEvery {
				due = append(due, id)
			}
		}
		s.mu.Unlock()
		sort.Strings(due)
		for _, id := range due {
			select {
			case <-s.quit:
				return
			default:
			}
			_ = s.compactSession(ctx, id)
		}
		if len(due) > 0 {
			_ = s.log.Rotate() // seal the folded rounds' segment...
			if _, err := s.log.Compact(); err != nil {
				continue // ...and drop what the folds retired
			}
		}
	}
}

// WalStats implements persist.WalStatter: the log's counters plus the
// committed-but-unfolded tail (the replay work a recovery would redo).
func (s *Store) WalStats() (persist.WalStats, bool) {
	st := s.log.Stats()
	s.mu.Lock()
	for _, tail := range s.tail {
		st.CompactionLag += len(tail)
	}
	s.mu.Unlock()
	return st, true
}

// Close stops the compactor and flushes and closes the log. The inner
// store is left untouched (callers own it).
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	s.wg.Wait()
	return s.log.Close()
}
