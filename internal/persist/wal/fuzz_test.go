package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"exptrain/internal/persist"
)

// FuzzWalDecode fuzzes the segment decoder — the exact code path every
// recovery replays over bytes a crashed writer (or a flipping disk)
// left behind. Wired into `make fuzz`; failing inputs land in
// testdata/fuzz and pin the regression.
//
// Invariants, for arbitrary input:
//
//   - decodeSegment never panics and never over-reads: the clean-prefix
//     offset is within the input and frame-aligned (re-decoding the
//     prefix yields the same records and consumes it fully).
//   - A non-nil error is always ErrCorrupt — checksummed bytes that are
//     not a record this package writes — never a raw parse error.
//   - Truncating at the reported tail is stable: the truncated segment
//     decodes cleanly, exactly as Open's recovery relies on.
func FuzzWalDecode(f *testing.F) {
	round, _ := json.Marshal(record{Kind: "round", Delta: &persist.RoundDelta{
		Session: "s", Round: 3,
		Interaction: persist.InteractionJSON{MAE: 0.5},
	}})
	mark, _ := json.Marshal(record{Kind: "mark", Session: "s", Through: 7})
	clean := appendFrame(appendFrame(nil, round), mark)
	f.Add([]byte{})
	f.Add(clean)
	f.Add(clean[:len(clean)-3])                           // torn payload
	f.Add(clean[:5])                                      // torn header
	f.Add(appendFrame(nil, []byte(`{"kind":"martian"}`))) // checksummed junk
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})     // insane length
	f.Add(append(append([]byte(nil), clean...), 0xde, 0xad))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, tail, err := decodeSegment(data)
		if tail < 0 || tail > len(data) {
			t.Fatalf("tail %d out of range for %d input bytes", tail, len(data))
		}
		if err != nil {
			if !errors.Is(err, persist.ErrCorrupt) {
				t.Fatalf("decodeSegment error %v is not ErrCorrupt", err)
			}
			return
		}
		for i := range recs {
			if verr := recs[i].validate(); verr != nil {
				t.Fatalf("decoded record %d fails validation: %v", i, verr)
			}
		}
		// Truncation at the tear is stable: the clean prefix re-decodes
		// to the same records with nothing left over.
		recs2, tail2, err2 := decodeSegment(data[:tail])
		if err2 != nil || tail2 != tail || len(recs2) != len(recs) {
			t.Fatalf("re-decoding the clean prefix: %d recs, tail %d, err %v (want %d, %d, nil)",
				len(recs2), tail2, err2, len(recs), tail)
		}
		for i := range recs {
			a, _ := json.Marshal(recs[i])
			b, _ := json.Marshal(recs2[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("record %d differs after prefix re-decode", i)
			}
		}
	})
}
