package wal

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/persist"
	"exptrain/internal/stats"
)

// mkDelta builds one distinguishable round delta: the MAE doubles as a
// fingerprint so a recovered record can be matched back to the exact
// (session, round) that produced it.
func mkDelta(session string, round int) *persist.RoundDelta {
	return &persist.RoundDelta{
		Session: session,
		Round:   round,
		Interaction: persist.FromRound(persist.Round{
			MAE:    float64(round) + 0.25,
			Payoff: float64(round) * 2,
		}),
	}
}

// testSnap builds a snapshot with the given number of history rounds.
func testSnap(t *testing.T, rounds int) *persist.Snapshot {
	t.Helper()
	schema := dataset.MustSchema("a", "b", "c")
	space := fd.MustNewSpace(fd.MustEnumerate(fd.SpaceConfig{Arity: 3, MaxLHS: 2}))
	trainer := belief.New(space, stats.NewBeta(2, 3))
	learner := belief.New(space, stats.NewBeta(1, 1))
	history := make([][]belief.Labeling, rounds)
	for i := range history {
		history[i] = []belief.Labeling{{Pair: dataset.NewPair(0, i + 1), Marked: fd.NewAttrSet(1)}}
	}
	snap, err := persist.NewSnapshot(schema, space, trainer, learner, history)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestWalAppendRecover is the round-trip property: everything Append
// acked before Close comes back from Open, in commit order, with the
// marks intact and nothing truncated.
func TestWalAppendRecover(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Deltas) != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("fresh directory recovered %+v, want empty", rec)
	}
	want := []*persist.RoundDelta{mkDelta("a", 0), mkDelta("a", 1), mkDelta("b", 0)}
	if err := l.Append(want[:2]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(want[2:]); err != nil {
		t.Fatal(err)
	}
	if err := l.Mark("a", 1); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appended != 3 || st.Fsyncs == 0 {
		t.Fatalf("Stats = %+v, want 3 appended records over >0 fsyncs", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err = Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TruncatedBytes != 0 || rec.SegmentsDropped != 0 {
		t.Fatalf("clean close recovered %+v, want no truncation", rec)
	}
	if len(rec.Deltas) != len(want) {
		t.Fatalf("recovered %d deltas, want %d", len(rec.Deltas), len(want))
	}
	for i, d := range rec.Deltas {
		if d.Session != want[i].Session || d.Round != want[i].Round || d.Interaction.MAE != want[i].Interaction.MAE {
			t.Fatalf("delta %d = %+v, want %+v", i, d, want[i])
		}
	}
	if rec.Marks["a"] != 1 {
		t.Fatalf("Marks = %v, want a:1", rec.Marks)
	}
}

// TestWalTornTailTruncated models the crash this package exists for:
// garbage appended past the committed frames — a torn header, a torn
// payload, a frame whose checksum fails — must be truncated on Open,
// with every committed record surviving and no error surfaced.
func TestWalTornTailTruncated(t *testing.T) {
	for _, tear := range []struct {
		name string
		junk []byte
	}{
		{"short-header", []byte{0x10, 0x00}},
		{"bad-checksum", []byte{4, 0, 0, 0, 1, 2, 3, 4, 'j', 'u', 'n', 'k'}},
		{"oversize-length", []byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := Open(dir, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Append([]*persist.RoundDelta{mkDelta("a", 0), mkDelta("a", 1)}); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			// The active segment is the highest-numbered one; tear its tail.
			segs, err := filepath.Glob(filepath.Join(dir, "wal-*"+segExt))
			if err != nil || len(segs) == 0 {
				t.Fatalf("no segments (err %v)", err)
			}
			torn := segs[0] // Close leaves one sealed segment holding the records
			f, err := os.OpenFile(torn, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tear.junk); err != nil {
				t.Fatal(err)
			}
			f.Close()

			_, rec, err := Open(dir, Config{})
			if err != nil {
				t.Fatalf("Open after tear: %v", err)
			}
			if rec.TruncatedBytes != int64(len(tear.junk)) {
				t.Fatalf("TruncatedBytes = %d, want %d", rec.TruncatedBytes, len(tear.junk))
			}
			if len(rec.Deltas) != 2 {
				t.Fatalf("recovered %d deltas after tear, want 2", len(rec.Deltas))
			}
		})
	}
}

// TestWalCorruptRecordSurfaces distinguishes a tear from corruption: a
// frame whose checksum holds but whose payload no writer of this
// package could have produced is ErrCorrupt, not a silent truncation.
func TestWalCorruptRecordSurfaces(t *testing.T) {
	recs, tail, err := decodeSegment(appendFrame(nil, []byte(`{"kind":"martian"}`)))
	if !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("decodeSegment(checksummed junk) = (%d recs, tail %d, %v), want ErrCorrupt", len(recs), tail, err)
	}
}

// TestWalRotateAndCompact checks the retention story: segments seal on
// rotation, and Compact drops exactly the sealed segments whose every
// recorded round sits below its session's snapshot watermark.
func TestWalRotateAndCompact(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]*persist.RoundDelta{mkDelta("a", 0), mkDelta("b", 0)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]*persist.RoundDelta{mkDelta("a", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}

	// Only session a is folded: the first segment still carries b's
	// round, so it must survive.
	if err := l.Mark("a", 2); err != nil {
		t.Fatal(err)
	}
	dropped, err := l.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("Compact dropped %d segments with b unfolded, want 1 (a's solo segment)", dropped)
	}
	if err := l.Mark("b", 1); err != nil {
		t.Fatal(err)
	}
	if dropped, err = l.Compact(); err != nil || dropped != 1 {
		t.Fatalf("Compact after folding b dropped %d (err %v), want the remaining sealed segment", dropped, err)
	}
	// The dropped rounds stay gone across a reopen — compaction is
	// durable — while b's watermark survives via its mark record.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Deltas) != 0 {
		t.Fatalf("recovered %d deltas after full compaction, want 0", len(rec.Deltas))
	}
	if rec.Marks["a"] != 2 || rec.Marks["b"] != 1 {
		t.Fatalf("Marks after compaction = %v, want a:2 b:1", rec.Marks)
	}
}

// TestWalSegmentRotationBySize checks the automatic rotation bound:
// appends past MaxSegmentBytes roll the active segment so no single
// file grows without bound.
func TestWalSegmentRotationBySize(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Config{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := l.Append([]*persist.RoundDelta{mkDelta("a", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("Segments = %d after 16 appends over a 256-byte bound, want rotation", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Deltas) != 16 {
		t.Fatalf("recovered %d deltas across rotated segments, want 16", len(rec.Deltas))
	}
}

// TestWalCloseRejectsAppends pins the Close contract: queued appends
// flush, later ones fail with ErrClosed, and Close is idempotent.
func TestWalCloseRejectsAppends(t *testing.T) {
	l, _, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]*persist.RoundDelta{mkDelta("a", 0)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]*persist.RoundDelta{mkDelta("a", 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultGroupCommitFairness is the group-commit fairness property
// (run under -race by make chaos): with many sessions appending
// concurrently and one session committing a giant round, every batch
// stays within MaxBatchBytes — the giant record commits alone, small
// records never ride an unbounded pile-up — so no session's ack waits
// behind more than one bounded batch. The crash hook doubles as a
// passive batch observer (returning nil injects nothing).
func TestFaultGroupCommitFairness(t *testing.T) {
	const maxBatch = 4 << 10
	dir := t.TempDir()
	l, _, err := Open(dir, Config{MaxBatchBytes: maxBatch, SyncDelay: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Record every batch's byte span between the write and sync steps.
	var (
		obsMu   sync.Mutex
		batches []int64
		preSize int64
	)
	l.SetCrashHook(func(step AppendStep, _ string, _, size int64) error {
		obsMu.Lock()
		defer obsMu.Unlock()
		switch step {
		case StepAppendWrite:
			preSize = size
		case StepAppendSync:
			batches = append(batches, size-preSize)
		}
		return nil
	})

	// The giant round: one delta that alone exceeds the batch bound.
	giant := mkDelta("giant", 0)
	big := make([]belief.Labeling, 0, 512)
	for i := 0; i < 512; i++ {
		big = append(big, belief.Labeling{Pair: dataset.NewPair(i, i+1), Marked: fd.NewAttrSet(1)})
	}
	giant.Interaction = persist.FromRound(persist.Round{Labeled: big})

	const workers, perWorker = 8, 24
	var wg sync.WaitGroup
	errCh := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := fmt.Sprintf("s%d", w)
			for r := 0; r < perWorker; r++ {
				if err := l.Append([]*persist.RoundDelta{mkDelta(sess, r)}); err != nil {
					errCh <- fmt.Errorf("worker %d round %d: %w", w, r, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := l.Append([]*persist.RoundDelta{giant}); err != nil {
			errCh <- fmt.Errorf("giant append: %w", err)
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	obsMu.Lock()
	defer obsMu.Unlock()
	giantFrame := int64(len(appendFrameForTest(giant, t)))
	if giantFrame <= maxBatch {
		t.Fatalf("fixture giant record is %d bytes, must exceed the %d-byte batch bound", giantFrame, maxBatch)
	}
	oversize := 0
	for i, b := range batches {
		if b > maxBatch {
			// Only the giant record may exceed the bound, and it must have
			// committed alone: the batch is exactly its frame.
			if b != giantFrame {
				t.Fatalf("batch %d is %d bytes: exceeds the %d bound and is not the solo giant frame (%d)", i, b, maxBatch, giantFrame)
			}
			oversize++
		}
	}
	if oversize != 1 {
		t.Fatalf("%d oversize batches, want exactly the giant's solo commit", oversize)
	}
	if len(batches) < 2 {
		t.Fatalf("%d batches for %d records: the bound never split a commit", len(batches), workers*perWorker+1)
	}
	st := l.Stats()
	if st.Appended != uint64(workers*perWorker+1) {
		t.Fatalf("Appended = %d, want %d", st.Appended, workers*perWorker+1)
	}
}

// appendFrameForTest renders one delta as its framed wire bytes.
func appendFrameForTest(d *persist.RoundDelta, t *testing.T) []byte {
	t.Helper()
	payload, err := json.Marshal(record{Kind: "round", Delta: d})
	if err != nil {
		t.Fatal(err)
	}
	return appendFrame(nil, payload)
}

// TestWalStoreFoldsCommittedTail checks the store's snapshot + replay
// read path: Get folds appended rounds over the inner snapshot, and a
// Put prunes the folded prefix so it is not replayed twice.
func TestWalStoreFoldsCommittedTail(t *testing.T) {
	ctx := context.Background()
	inner := persist.NewMemStore()
	s, _, err := OpenStore(inner, t.TempDir(), StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	base := testSnap(t, 1)
	if err := s.Put(ctx, "s", base); err != nil {
		t.Fatal(err)
	}
	deltas := []*persist.RoundDelta{mkDelta("s", 1), mkDelta("s", 2)}
	if err := s.AppendRounds(ctx, deltas); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.History) != 3 {
		t.Fatalf("Get folded %d rounds, want 3 (1 snapshot + 2 appended)", len(got.History))
	}
	if got.History[2].MAE != deltas[1].Interaction.MAE {
		t.Fatalf("folded round 2 MAE = %v, want %v", got.History[2].MAE, deltas[1].Interaction.MAE)
	}
	// The inner store still holds only the base snapshot: appends did
	// not pay a snapshot rewrite.
	innerSnap, err := inner.Get(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	if len(innerSnap.History) != 1 {
		t.Fatalf("inner snapshot has %d rounds, want 1 — an append rewrote it", len(innerSnap.History))
	}

	// A full snapshot supersedes the tail; Get must not double-apply.
	if err := s.Put(ctx, "s", got); err != nil {
		t.Fatal(err)
	}
	again, err := s.Get(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	if len(again.History) != 3 {
		t.Fatalf("Get after snapshot = %d rounds, want 3", len(again.History))
	}
	if st, ok := s.WalStats(); !ok || st.CompactionLag != 0 {
		t.Fatalf("WalStats after snapshot = %+v, want zero compaction lag", st)
	}
}

// TestWalStoreReopenReplays is the store-level recovery property: a
// store reopened over the same directory and inner snapshots serves
// exactly the pre-crash state, with the committed tail replayed.
func TestWalStoreReopenReplays(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	inner := persist.NewMemStore() // survives in-process "restarts"
	s, _, err := OpenStore(inner, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "s", testSnap(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRounds(ctx, []*persist.RoundDelta{mkDelta("s", 1), mkDelta("s", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := OpenStore(inner, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(rec.Deltas) != 2 {
		t.Fatalf("recovered %d deltas, want 2", len(rec.Deltas))
	}
	got, err := s2.Get(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.History) != 3 {
		t.Fatalf("recovered session has %d rounds, want 3", len(got.History))
	}

	// Scan folds the tail into the inner store (the WAL-aware recovery
	// scan), after which the snapshot alone carries every round.
	if _, err := s2.Scan(ctx); err != nil {
		t.Fatal(err)
	}
	innerSnap, err := inner.Get(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	if len(innerSnap.History) != 3 {
		t.Fatalf("inner snapshot after Scan has %d rounds, want 3", len(innerSnap.History))
	}
}

// TestWalStoreDeleteRetiresRounds checks that Delete survives replay: a
// deleted session's logged rounds must not resurrect it on reopen.
func TestWalStoreDeleteRetiresRounds(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	inner := persist.NewMemStore()
	s, _, err := OpenStore(inner, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "s", testSnap(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRounds(ctx, []*persist.RoundDelta{mkDelta("s", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "s"); !errors.Is(err, persist.ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _, err := OpenStore(inner, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get(ctx, "s"); !errors.Is(err, persist.ErrNotFound) {
		t.Fatalf("Get after Delete and reopen = %v, want ErrNotFound", err)
	}
}

// TestWalStoreBackgroundCompaction checks the fold loop: once a
// session's committed tail passes CompactEvery, the compactor folds it
// into a fresh inner snapshot and the log drops the retired segments.
func TestWalStoreBackgroundCompaction(t *testing.T) {
	ctx := context.Background()
	inner := persist.NewMemStore()
	s, _, err := OpenStore(inner, t.TempDir(), StoreConfig{
		CompactEvery: 4,
		Wal:          Config{MaxSegmentBytes: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(ctx, "s", testSnap(t, 1)); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 12; r++ {
		if err := s.AppendRounds(ctx, []*persist.RoundDelta{mkDelta("s", r)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := inner.Get(ctx, "s")
		if err != nil {
			t.Fatal(err)
		}
		st, _ := s.WalStats()
		// Terminal state: at least one fold landed, the lag is back
		// under the trigger, and fold + tail still account for every
		// round (1 genesis + 12 appended). The last few appends may
		// legitimately stay unfolded — nothing re-kicks below the
		// trigger until the next append or Scan.
		if len(snap.History) > 1 && st.CompactionLag < 4 &&
			len(snap.History)+st.CompactionLag == 13 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compactor never folded: inner history %d, lag %d", len(snap.History), st.CompactionLag)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The folded rounds must also be prunable from disk.
	if _, err := s.Scan(ctx); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.WalStats(); st.CompactionLag != 0 {
		t.Fatalf("CompactionLag after Scan = %d, want 0", st.CompactionLag)
	}
}
