// Package wal is the crash-safe write-ahead round log behind the
// session store: an append-only, CRC-framed log of per-round session
// deltas (persist.RoundDelta) with a group committer that batches
// records across sessions into one fsync. Durability cost becomes
// O(round) instead of O(session): a submitted round is durable once
// its delta's group commit returns, and a full snapshot is only
// rewritten at compaction points.
//
// The commit rule is the same old-or-new contract the snapshot store's
// five-step protocol gives, applied per record: a record is committed
// exactly when the fsync covering it returned. On open, the log
// truncates the tail at the first frame that fails its length or
// checksum — the bytes a dying kernel half-flushed — so replay sees
// every committed record and nothing else. Recovery is snapshot +
// replay: wal.Store folds the committed suffix over the inner store's
// snapshots on every read, and background compaction folds long tails
// into fresh snapshots so the log can drop dead segments.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"exptrain/internal/persist"
)

// ErrClosed is returned by appends against a closed log.
var ErrClosed = errors.New("wal: log closed")

// frameHeader is [4B little-endian payload length][4B CRC-32 of payload].
const frameHeader = 8

// maxRecordBytes bounds one record's payload — far above any real
// round delta, low enough that a corrupted length field cannot make
// the decoder chase gigabytes of garbage.
const maxRecordBytes = 16 << 20

// segExt is the log segment file suffix; segments are numbered
// "wal-%08d.seg" and replayed in index order.
const segExt = ".seg"

// record is the wire form of one log entry.
type record struct {
	// Kind is "round" (a committed round delta) or "mark" (a snapshot
	// watermark: rounds below Through are folded into the inner store).
	Kind string `json:"kind"`
	// Delta is the round payload (kind "round").
	Delta *persist.RoundDelta `json:"delta,omitempty"`
	// Session and Through are the watermark payload (kind "mark").
	Session string `json:"session,omitempty"`
	Through int    `json:"through,omitempty"`
}

// validate rejects records no writer of this package produces.
func (r *record) validate() error {
	switch r.Kind {
	case "round":
		if r.Delta == nil {
			return fmt.Errorf("round record without a delta")
		}
		if err := persist.ValidateID(r.Delta.Session); err != nil {
			return err
		}
		if r.Delta.Round < 0 {
			return fmt.Errorf("negative round %d", r.Delta.Round)
		}
	case "mark":
		if err := persist.ValidateID(r.Session); err != nil {
			return err
		}
		if r.Through < 0 {
			return fmt.Errorf("negative watermark %d", r.Through)
		}
	default:
		return fmt.Errorf("unknown record kind %q", r.Kind)
	}
	return nil
}

// appendFrame encodes one record payload as a CRC-framed entry.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// decodeSegment parses segment bytes into records. tail is the offset
// of the clean prefix: everything before it decoded and checksummed,
// everything from it on is a torn or corrupt suffix the caller must
// truncate. A frame that is short, oversized, or fails its CRC is a
// tear (err == nil — exactly what a crash mid-append leaves); a frame
// whose checksum holds but whose payload is not a record this package
// writes is ErrCorrupt — bytes no crashed writer could have produced.
// decodeSegment never panics on arbitrary input (see FuzzWalDecode).
func decodeSegment(data []byte) (recs []record, tail int, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			return recs, off, nil // torn header
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes || n > len(data)-off-frameHeader {
			return recs, off, nil // torn or insane length
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, nil // torn payload
		}
		var r record
		if uerr := json.Unmarshal(payload, &r); uerr != nil {
			return recs, off, fmt.Errorf("%w: wal record at offset %d: %v", persist.ErrCorrupt, off, uerr)
		}
		if verr := r.validate(); verr != nil {
			return recs, off, fmt.Errorf("%w: wal record at offset %d: %v", persist.ErrCorrupt, off, verr)
		}
		recs = append(recs, r)
		off += frameHeader + n
	}
	return recs, off, nil
}

// AppendStep identifies one step of the group committer's commit
// protocol, for crash-point fault injection (SetCrashHook).
type AppendStep int

const (
	// StepAppendWrite is observed before the batch's frames are written
	// into the active segment.
	StepAppendWrite AppendStep = iota + 1
	// StepAppendSync is observed after the write, before the fsync that
	// commits the batch. A hook here may truncate the segment's unsynced
	// suffix — the torn tail a power cut mid-flush leaves.
	StepAppendSync
	// StepAppendAck is observed after the fsync, before waiters are
	// acked: the records are durable but every caller sees failure — the
	// ambiguous crash the old-or-new replay contract absorbs.
	StepAppendAck
)

// String renders the step for logs and test failure messages.
func (s AppendStep) String() string {
	switch s {
	case StepAppendWrite:
		return "append-write"
	case StepAppendSync:
		return "append-sync"
	case StepAppendAck:
		return "append-ack"
	default:
		return fmt.Sprintf("AppendStep(%d)", int(s))
	}
}

// AppendSteps lists the commit protocol in execution order, for
// crash-point sweeps that must cover every step.
func AppendSteps() []AppendStep {
	return []AppendStep{StepAppendWrite, StepAppendSync, StepAppendAck}
}

// CrashHook observes the group committer. It is called with each
// upcoming step, the active segment's path, its durable (synced) byte
// offset and its current size; returning non-nil poisons the log at
// that point — every queued and future append fails, exactly as if the
// process died — leaving the segment bytes as the simulated crash made
// them. Reopen the directory to model the restart.
type CrashHook func(step AppendStep, segPath string, synced, size int64) error

// Config shapes a log.
type Config struct {
	// MaxSegmentBytes rotates the active segment once it exceeds this
	// (default 4 MiB). Compaction can only drop sealed segments, so the
	// bound is also the compaction granularity.
	MaxSegmentBytes int64
	// MaxBatchBytes bounds one group commit's payload bytes (default
	// 1 MiB). The bound is the fairness mechanism: a session's giant
	// round caps how much rides its fsync, so other sessions' acks are
	// delayed by at most one bounded batch, never an unbounded pile-up.
	// Batch formation never waits — the committer takes whatever queued
	// during the previous fsync — so there is no added latency deadline
	// to tune.
	MaxBatchBytes int
	// SyncDelay adds artificial latency to every fsync, for benches and
	// tests that model a slow disk (0 = none).
	SyncDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxSegmentBytes <= 0 {
		c.MaxSegmentBytes = 4 << 20
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 1 << 20
	}
	return c
}

// segInfo is one sealed segment's compaction metadata.
type segInfo struct {
	path string
	// frontier maps session id → one past the highest round the segment
	// records for it. The segment is dead once every session's snapshot
	// watermark reached its frontier.
	frontier map[string]int
}

// commitReq is one queued append (or rotation request) awaiting the
// group committer.
type commitReq struct {
	buf     []byte // encoded frames
	records int    // round records in buf
	// frontier and marks are the metadata updates the commit applies.
	frontier map[string]int
	marks    map[string]int
	rotate   bool // seal the active segment instead of writing
	done     chan error
}

// fsyncWindow is the ring size of retained fsync latencies for the p99.
const fsyncWindow = 128

// Log is an append-only, CRC-framed, segmented record log with group
// commit. Safe for concurrent use.
type Log struct {
	dir string
	cfg Config

	mu sync.Mutex
	// pending is the committer's inbox, drained in arrival order;
	// guarded by mu.
	pending []*commitReq
	// pendingRecords counts round records in pending; guarded by mu.
	pendingRecords int
	// segIdx, segSize and synced describe the active segment: its index,
	// bytes written, and durable byte prefix; guarded by mu.
	segIdx  int
	segSize int64
	synced  int64
	// sealed lists rotated segments oldest-first; guarded by mu.
	sealed []segInfo
	// frontier is the active segment's per-session round frontier;
	// guarded by mu.
	frontier map[string]int
	// marks is the latest snapshot watermark per session; guarded by mu.
	marks map[string]int
	// crash is the fault-injection hook (nil in production); guarded by mu.
	crash CrashHook
	// broken poisons the log after a simulated crash or an I/O failure;
	// guarded by mu.
	broken error
	// closed rejects new appends once Close begins; guarded by mu.
	closed bool
	// appended, fsyncs, lastBatch, fsyncNs and fsyncN are the Stats
	// counters; guarded by mu.
	appended  uint64
	fsyncs    uint64
	lastBatch int
	fsyncNs   [fsyncWindow]int64
	fsyncN    int

	// seg is the active segment file, owned by the committer goroutine
	// between Open and its exit.
	seg *os.File

	// kick wakes the committer (capacity 1, non-blocking sends).
	kick chan struct{}
	// quit asks the committer to flush and exit.
	quit chan struct{}
	wg   sync.WaitGroup
}

// RecoverResult reports what Open found in an existing log directory.
type RecoverResult struct {
	// Deltas are the committed round deltas in commit order.
	Deltas []*persist.RoundDelta
	// Marks is the latest snapshot watermark per session.
	Marks map[string]int
	// Segments counts surviving segment files (before the fresh active
	// segment is added).
	Segments int
	// TruncatedBytes counts torn-tail bytes discarded.
	TruncatedBytes int64
	// SegmentsDropped counts segments discarded after a tear or a
	// corrupt record — only ever non-zero when damage was not confined
	// to the final segment's tail.
	SegmentsDropped int
}

// segPath renders segment idx's file path.
func segPath(dir string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d%s", idx, segExt))
}

// Open replays the log directory (creating it if needed), truncates
// any torn tail, and returns a log ready for appends plus what the
// replay recovered. Replay order is strictly sequential — segments by
// index, frames by offset — and ends at the first frame that fails its
// checksum: a crash can only tear the tail, so everything before the
// tear is exactly the committed prefix.
func Open(dir string, cfg Config) (*Log, RecoverResult, error) {
	cfg = cfg.withDefaults()
	var res RecoverResult
	res.Marks = make(map[string]int)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, res, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, res, fmt.Errorf("wal: %w", err)
	}
	type seg struct {
		idx  int
		path string
	}
	var segs []seg
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, segExt) {
			continue
		}
		idx, perr := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), segExt))
		if perr != nil {
			continue
		}
		segs = append(segs, seg{idx: idx, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].idx < segs[j].idx })

	l := &Log{
		dir:      dir,
		cfg:      cfg,
		frontier: make(map[string]int),
		marks:    res.Marks,
		kick:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
	}
	torn := false
	for i, s := range segs {
		if torn {
			// Everything after a tear is unreachable by replay; drop it so
			// the surviving log is self-consistent.
			if rerr := os.Remove(s.path); rerr != nil {
				return nil, res, fmt.Errorf("wal: dropping post-tear segment: %w", rerr)
			}
			res.SegmentsDropped++
			continue
		}
		data, rerr := os.ReadFile(s.path)
		if rerr != nil {
			return nil, res, fmt.Errorf("wal: %w", rerr)
		}
		recs, tail, derr := decodeSegment(data)
		if tail < len(data) || derr != nil {
			torn = true
			res.TruncatedBytes += int64(len(data) - tail)
			if terr := os.Truncate(s.path, int64(tail)); terr != nil {
				return nil, res, fmt.Errorf("wal: truncating torn tail: %w", terr)
			}
		}
		info := segInfo{path: s.path, frontier: make(map[string]int)}
		for i := range recs {
			r := &recs[i]
			switch r.Kind {
			case "round":
				d := r.Delta
				res.Deltas = append(res.Deltas, d)
				if d.Round+1 > info.frontier[d.Session] {
					info.frontier[d.Session] = d.Round + 1
				}
			case "mark":
				if r.Through > res.Marks[r.Session] {
					res.Marks[r.Session] = r.Through
				}
			}
		}
		if tail == 0 && i < len(segs)-1 {
			// A fully-torn non-final segment holds nothing; keep the file
			// truncated to zero so indices stay monotone.
			_ = info
		}
		l.sealed = append(l.sealed, info)
		res.Segments++
		if s.idx >= l.segIdx {
			l.segIdx = s.idx + 1
		}
	}

	// Start a fresh active segment: recovered segments stay sealed, so
	// the committer never has to reason about a pre-existing tail.
	f, err := os.OpenFile(segPath(dir, l.segIdx), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, res, fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, res, err
	}
	l.seg = f
	l.wg.Add(1)
	go l.committer()
	return l, res, nil
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("wal: syncing %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: %w", cerr)
	}
	return nil
}

// SetCrashHook installs (or clears, with nil) the fault-injection hook
// observed by the group committer. The hook is log-global: callers
// needing per-append hooks must serialize their appends.
func (l *Log) SetCrashHook(h CrashHook) {
	l.mu.Lock()
	l.crash = h
	l.mu.Unlock()
}

// enqueue hands a request to the committer and waits for its ack.
func (l *Log) enqueue(req *commitReq) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return err
	}
	l.pending = append(l.pending, req)
	l.pendingRecords += req.records
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return <-req.done
}

// Append durably commits the given round deltas: they are framed,
// queued, and acked once the group commit covering them fsynced. Many
// concurrent Appends share one fsync — that is the whole point — and a
// batch is bounded by MaxBatchBytes so no caller waits behind an
// unbounded pile-up. A nil error means the rounds are durable; any
// error means the caller must not count them as committed (they may
// still surface on recovery — the old-or-new contract).
func (l *Log) Append(deltas []*persist.RoundDelta) error {
	if len(deltas) == 0 {
		return nil
	}
	req := &commitReq{frontier: make(map[string]int), done: make(chan error, 1)}
	for _, d := range deltas {
		if d == nil {
			return fmt.Errorf("wal: nil round delta")
		}
		if err := persist.ValidateID(d.Session); err != nil {
			return err
		}
		if d.Round < 0 {
			return fmt.Errorf("wal: negative round %d for %q", d.Round, d.Session)
		}
		payload, err := json.Marshal(record{Kind: "round", Delta: d})
		if err != nil {
			return fmt.Errorf("wal: encoding delta: %w", err)
		}
		if len(payload) > maxRecordBytes {
			return fmt.Errorf("wal: round delta for %q encodes to %d bytes (max %d)", d.Session, len(payload), maxRecordBytes)
		}
		req.buf = appendFrame(req.buf, payload)
		req.records++
		if d.Round+1 > req.frontier[d.Session] {
			req.frontier[d.Session] = d.Round + 1
		}
	}
	return l.enqueue(req)
}

// Mark durably records that rounds below through are folded into the
// inner store's snapshot for session — the watermark compaction and
// recovery prune against.
func (l *Log) Mark(session string, through int) error {
	if err := persist.ValidateID(session); err != nil {
		return err
	}
	if through < 0 {
		return fmt.Errorf("wal: negative watermark %d", through)
	}
	payload, err := json.Marshal(record{Kind: "mark", Session: session, Through: through})
	if err != nil {
		return fmt.Errorf("wal: encoding mark: %w", err)
	}
	req := &commitReq{
		buf:   appendFrame(nil, payload),
		marks: map[string]int{session: through},
		done:  make(chan error, 1),
	}
	return l.enqueue(req)
}

// committer is the single goroutine that owns the active segment: it
// drains the pending queue in bounded batches, writes and fsyncs each
// batch, and acks every rider. One fsync per batch, shared across
// however many Appends queued during the previous commit — group
// commit's natural batching.
func (l *Log) committer() {
	defer l.wg.Done()
	for {
		select {
		case <-l.quit:
			// Graceful close: flush whatever is queued, then release the file.
			for {
				batch, bytes := l.takeBatch()
				if len(batch) == 0 {
					break
				}
				l.commit(batch, bytes)
			}
			l.failPending(ErrClosed) // anything enqueued after the flush races closed
			l.seg.Close()
			return
		case <-l.kick:
		}
		for {
			batch, bytes := l.takeBatch()
			if len(batch) == 0 {
				break
			}
			l.commit(batch, bytes)
		}
	}
}

// takeBatch pops queued requests up to the batch byte bound (always at
// least one, so an oversized record still commits — alone).
func (l *Log) takeBatch() (batch []*commitReq, bytes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.pending) > 0 {
		req := l.pending[0]
		if len(batch) > 0 && (bytes+len(req.buf) > l.cfg.MaxBatchBytes || req.rotate) {
			break
		}
		l.pending = l.pending[1:]
		l.pendingRecords -= req.records
		batch = append(batch, req)
		bytes += len(req.buf)
		if req.rotate {
			break // a rotation request commits alone
		}
	}
	if len(l.pending) == 0 {
		l.pending = nil // release the drained backing array
	}
	return batch, bytes
}

// failPending acks every queued request with err.
func (l *Log) failPending(err error) {
	l.mu.Lock()
	pending := l.pending
	l.pending = nil
	l.pendingRecords = 0
	l.mu.Unlock()
	for _, req := range pending {
		req.done <- err
	}
}

// ack resolves one batch.
func ack(batch []*commitReq, err error) {
	for _, req := range batch {
		req.done <- err
	}
}

// poison marks the log dead with err: queued and future appends fail.
// Used for simulated crashes and real I/O failures alike — a log whose
// segment state is unknown must not take further writes.
func (l *Log) poison(err error) {
	l.mu.Lock()
	if l.broken == nil {
		l.broken = err
	}
	l.mu.Unlock()
	l.failPending(err)
}

// commit writes and fsyncs one batch, honoring the crash hook at every
// protocol step.
func (l *Log) commit(batch []*commitReq, bytes int) {
	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		ack(batch, err)
		return
	}
	hook := l.crash
	rotate := l.segSize >= l.cfg.MaxSegmentBytes && l.segSize > 0
	path := segPath(l.dir, l.segIdx)
	synced, size := l.synced, l.segSize
	l.mu.Unlock()

	if len(batch) == 1 && batch[0].rotate {
		rotate = true
	}
	if rotate {
		if err := l.rotate(); err != nil {
			l.poison(err)
			ack(batch, err)
			return
		}
		l.mu.Lock()
		path = segPath(l.dir, l.segIdx)
		synced, size = l.synced, l.segSize
		l.mu.Unlock()
	}
	if len(batch) == 1 && batch[0].rotate {
		ack(batch, nil)
		return
	}

	if hook != nil {
		if err := hook(StepAppendWrite, path, synced, size); err != nil {
			l.poison(err)
			ack(batch, err)
			return
		}
	}
	var n int64
	for _, req := range batch {
		w, err := l.seg.Write(req.buf)
		n += int64(w)
		if err != nil {
			l.poison(fmt.Errorf("wal: %w", err))
			ack(batch, fmt.Errorf("wal: %w", err))
			return
		}
	}
	l.mu.Lock()
	l.segSize += n
	size = l.segSize
	l.mu.Unlock()

	if hook != nil {
		if err := hook(StepAppendSync, path, synced, size); err != nil {
			l.poison(err)
			ack(batch, err)
			return
		}
	}
	t0 := time.Now()
	if l.cfg.SyncDelay > 0 {
		time.Sleep(l.cfg.SyncDelay)
	}
	if err := l.seg.Sync(); err != nil {
		l.poison(fmt.Errorf("wal: %w", err))
		ack(batch, fmt.Errorf("wal: %w", err))
		return
	}
	dur := time.Since(t0)

	records := 0
	l.mu.Lock()
	l.synced = l.segSize
	for _, req := range batch {
		records += req.records
		for sess, hi := range req.frontier {
			if hi > l.frontier[sess] {
				l.frontier[sess] = hi
			}
		}
		for sess, through := range req.marks {
			if through > l.marks[sess] {
				l.marks[sess] = through
			}
		}
	}
	l.appended += uint64(records)
	l.fsyncs++
	l.lastBatch = records
	l.fsyncNs[l.fsyncN%fsyncWindow] = dur.Nanoseconds()
	l.fsyncN++
	l.mu.Unlock()

	if hook != nil {
		if err := hook(StepAppendAck, path, size, size); err != nil {
			// The records ARE durable; the callers see failure — the
			// ambiguous crash. Replay surfaces them as "new".
			l.poison(err)
			ack(batch, err)
			return
		}
	}
	ack(batch, nil)
}

// rotate seals the active segment and opens the next one. Only the
// committer calls it, so the file handle never races.
func (l *Log) rotate() error {
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.mu.Lock()
	info := segInfo{path: segPath(l.dir, l.segIdx), frontier: l.frontier}
	l.sealed = append(l.sealed, info)
	l.segIdx++
	nextPath := segPath(l.dir, l.segIdx)
	l.frontier = make(map[string]int)
	l.segSize = 0
	l.synced = 0
	l.mu.Unlock()
	f, err := os.OpenFile(nextPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.seg = f
	return nil
}

// Rotate seals the active segment so compaction can consider its
// records. It rides the committer queue like any append.
func (l *Log) Rotate() error {
	req := &commitReq{rotate: true, done: make(chan error, 1)}
	return l.enqueue(req)
}

// Compact deletes sealed segments whose every recorded round is below
// its session's snapshot watermark — the "fold committed runs into
// snapshots, then drop the log prefix" half of compaction (wal.Store
// does the folding). It returns how many segments were dropped.
func (l *Log) Compact() (dropped int, err error) {
	l.mu.Lock()
	var dead []segInfo
	keep := l.sealed[:0]
	for _, info := range l.sealed {
		live := false
		for sess, hi := range info.frontier {
			if l.marks[sess] < hi {
				live = true
				break
			}
		}
		if live {
			keep = append(keep, info)
		} else {
			dead = append(dead, info)
		}
	}
	l.sealed = keep
	l.mu.Unlock()
	for _, info := range dead {
		if rerr := os.Remove(info.path); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			return dropped, fmt.Errorf("wal: dropping compacted segment: %w", rerr)
		}
		dropped++
	}
	return dropped, nil
}

// Stats reports the log's operational counters. CompactionLag here
// counts only records queued for fsync; wal.Store adds the committed
// tail awaiting folds.
func (l *Log) Stats() persist.WalStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := persist.WalStats{
		Appended:     l.appended,
		Unflushed:    l.pendingRecords,
		BatchRecords: l.lastBatch,
		Fsyncs:       l.fsyncs,
		Segments:     len(l.sealed) + 1,
	}
	n := l.fsyncN
	if n > fsyncWindow {
		n = fsyncWindow
	}
	if n > 0 {
		window := make([]int64, n)
		copy(window, l.fsyncNs[:n])
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		i := int(0.99*float64(n)+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		s.FsyncP99Ms = float64(window[i]) / 1e6
	}
	return s
}

// Broken reports the poisoning error, nil while the log is healthy.
func (l *Log) Broken() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// Close flushes queued appends, fsyncs, and releases the segment file.
// Appends issued after Close fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.wg.Wait()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	l.wg.Wait()
	return nil
}
