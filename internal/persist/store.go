package persist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is the sentinel wrapped by Store implementations when a
// snapshot id has nothing stored under it; test with errors.Is.
var ErrNotFound = errors.New("persist: snapshot not found")

// ErrBadID is the sentinel wrapped when a snapshot id is empty or
// contains characters outside [A-Za-z0-9._-]. Restricting the alphabet
// keeps ids usable verbatim as file names and URL path segments.
var ErrBadID = errors.New("persist: invalid snapshot id")

// Store is a keyed snapshot repository — the durability boundary of
// the session service. Implementations must be safe for concurrent use
// and must copy on Put/Get so callers cannot alias stored state.
type Store interface {
	// Put saves the snapshot under id, replacing any previous value.
	Put(ctx context.Context, id string, snap *Snapshot) error
	// Get loads the snapshot stored under id (ErrNotFound if absent).
	Get(ctx context.Context, id string) (*Snapshot, error)
	// Delete removes the snapshot under id (ErrNotFound if absent).
	Delete(ctx context.Context, id string) error
	// List returns the stored ids in lexicographic order.
	List(ctx context.Context) ([]string, error)
}

// ValidateID checks a snapshot id against the store alphabet.
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("%w: empty", ErrBadID)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return fmt.Errorf("%w: %q contains %q", ErrBadID, id, r)
		}
	}
	if id == "." || id == ".." {
		return fmt.Errorf("%w: %q", ErrBadID, id)
	}
	return nil
}

// MemStore is an in-memory Store. Snapshots are held in encoded form so
// stored state never aliases live session state.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(ctx context.Context, id string, snap *Snapshot) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := ValidateID(id); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		return err
	}
	s.mu.Lock()
	s.m[id] = buf.Bytes()
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *MemStore) Get(ctx context.Context, id string) (*Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	b, ok := s.m[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return Read(bytes.NewReader(b))
}

// Delete implements Store.
func (s *MemStore) Delete(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(s.m, id)
	return nil
}

// List implements Store.
func (s *MemStore) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	ids := make([]string, 0, len(s.m))
	for id := range s.m {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	return ids, nil
}

// snapExt is the file suffix DirStore uses, so unrelated files in the
// directory are ignored.
const snapExt = ".snapshot.json"

// corruptExt is the suffix Scan quarantines unreadable snapshots under:
// "<id>.corrupt". Quarantined files are invisible to Get/List but the
// bytes stay on disk for forensics.
const corruptExt = ".corrupt"

// PutStep identifies one step of DirStore.Put's commit protocol, in
// execution order. The crash hook (SetCrashHook) observes each step
// before it runs, so a fault injector can simulate the process dying at
// any point of the protocol.
type PutStep int

const (
	// StepWriteTemp writes the snapshot bytes into the temp file.
	StepWriteTemp PutStep = iota + 1
	// StepSyncTemp fsyncs the temp file, making its bytes durable.
	StepSyncTemp
	// StepCloseTemp closes the temp file.
	StepCloseTemp
	// StepRename atomically renames the temp file over the live name —
	// the commit point.
	StepRename
	// StepSyncDir fsyncs the parent directory, making the rename itself
	// durable.
	StepSyncDir
)

// String renders the step for logs and test failure messages.
func (s PutStep) String() string {
	switch s {
	case StepWriteTemp:
		return "write-temp"
	case StepSyncTemp:
		return "sync-temp"
	case StepCloseTemp:
		return "close-temp"
	case StepRename:
		return "rename"
	case StepSyncDir:
		return "sync-dir"
	default:
		return fmt.Sprintf("PutStep(%d)", int(s))
	}
}

// PutSteps lists the commit protocol in execution order, for
// crash-point sweeps that must cover every step.
func PutSteps() []PutStep {
	return []PutStep{StepWriteTemp, StepSyncTemp, StepCloseTemp, StepRename, StepSyncDir}
}

// CrashHook observes DirStore.Put's commit protocol. It is called with
// each upcoming step and the temp file's path; returning a non-nil
// error aborts Put at that point, leaving exactly the on-disk state a
// crash there would leave (completed steps persist, the temp file is
// not cleaned up). It exists for fault injection — see persist/faulty.
type CrashHook func(step PutStep, tmpPath string) error

// DirStore is a directory-backed Store: one "<id>.snapshot.json" file
// per snapshot, written atomically (temp file + fsync + rename + parent
// directory fsync) so a crashed writer never leaves a torn snapshot
// under a live id and a completed Put survives power loss.
type DirStore struct {
	dir string
	// mu serializes same-process writers; cross-process safety comes
	// from the atomic rename.
	mu sync.Mutex
	// crash is the fault-injection hook (nil in production); guarded by mu.
	crash CrashHook
}

// NewDirStore ensures the directory exists and returns a store over it.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) path(id string) string {
	return filepath.Join(s.dir, id+snapExt)
}

// SetCrashHook installs (or clears, with nil) the fault-injection hook
// observed by Put. The hook is store-global: callers that need per-Put
// hooks must serialize their Puts.
func (s *DirStore) SetCrashHook(h CrashHook) {
	s.mu.Lock()
	s.crash = h
	s.mu.Unlock()
}

// Put implements Store. The commit protocol is: write temp file, fsync
// it, close, rename over the live name, fsync the parent directory. A
// crash anywhere in the protocol leaves either the old snapshot or the
// new one under the live id — never a torn mix — and the fsyncs
// guarantee a completed Put is durable, not just atomic.
func (s *DirStore) Put(ctx context.Context, id string, snap *Snapshot) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := ValidateID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, "."+id+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	// A simulated crash must leave the temp file on disk exactly as a
	// real crash would (Scan removes orphans); only a clean failure
	// cleans up after itself.
	crashed := false
	defer func() {
		if !crashed {
			os.Remove(tmp.Name())
		}
	}()
	step := func(st PutStep) error {
		if s.crash == nil {
			return nil
		}
		if err := s.crash(st, tmp.Name()); err != nil {
			crashed = true
			return err
		}
		return nil
	}
	if err := step(StepWriteTemp); err != nil {
		tmp.Close()
		return err
	}
	if err := snap.Write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := step(StepSyncTemp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := step(StepCloseTemp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := step(StepRename); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := step(StepSyncDir); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return fmt.Errorf("persist: syncing %s: %w", dir, err)
	}
	if cerr != nil {
		return fmt.Errorf("persist: %w", cerr)
	}
	return nil
}

// Get implements Store.
func (s *DirStore) Get(ctx context.Context, id string) (*Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	snap, err := ReadFile(s.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return snap, err
}

// Delete implements Store.
func (s *DirStore) Delete(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := ValidateID(id); err != nil {
		return err
	}
	if err := os.Remove(s.path(id)); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// List implements Store.
func (s *DirStore) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapExt) || strings.HasPrefix(name, ".") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, snapExt))
	}
	sort.Strings(ids)
	return ids, nil
}

// Verify reads and checksums the snapshot under id without keeping it:
// nil when intact, ErrNotFound when absent, ErrCorrupt when the bytes
// fail their checksum or do not parse.
func (s *DirStore) Verify(ctx context.Context, id string) error {
	_, err := s.Get(ctx, id)
	return err
}

// ScanResult reports what a recovery Scan found.
type ScanResult struct {
	// OK lists the ids whose snapshots decode and checksum cleanly,
	// sorted.
	OK []string
	// Quarantined lists the ids whose snapshots were unreadable and were
	// moved aside to "<id>.corrupt", sorted.
	Quarantined []string
	// TempsRemoved counts orphaned temp files from crashed writers that
	// were deleted.
	TempsRemoved int
}

// Scan verifies every snapshot in the store — the startup recovery
// path. Unreadable snapshots are quarantined (renamed to "<id>.corrupt"
// so the rest of the store stays serviceable and the bytes remain
// available for forensics) and orphaned temp files from crashed writers
// are removed. Scan fails only on I/O errors walking the directory,
// never on bad snapshot contents: one rotten checkpoint must not take
// down the whole service.
func (s *DirStore) Scan(ctx context.Context) (ScanResult, error) {
	s.mu.Lock() // exclude concurrent writers for the duration
	defer s.mu.Unlock()
	var res ScanResult
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return res, fmt.Errorf("persist: %w", err)
	}
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-") {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return res, fmt.Errorf("persist: removing orphaned temp: %w", err)
			}
			res.TempsRemoved++
			continue
		}
		if !strings.HasSuffix(name, snapExt) || strings.HasPrefix(name, ".") {
			continue
		}
		id := strings.TrimSuffix(name, snapExt)
		if _, err := ReadFile(filepath.Join(s.dir, name)); err != nil {
			dst := filepath.Join(s.dir, id+corruptExt)
			if rerr := os.Rename(filepath.Join(s.dir, name), dst); rerr != nil {
				return res, fmt.Errorf("persist: quarantining %s: %w", name, rerr)
			}
			res.Quarantined = append(res.Quarantined, id)
			continue
		}
		res.OK = append(res.OK, id)
	}
	sort.Strings(res.OK)
	sort.Strings(res.Quarantined)
	return res, nil
}
