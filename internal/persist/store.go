package persist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is the sentinel wrapped by Store implementations when a
// snapshot id has nothing stored under it; test with errors.Is.
var ErrNotFound = errors.New("persist: snapshot not found")

// ErrBadID is the sentinel wrapped when a snapshot id is empty or
// contains characters outside [A-Za-z0-9._-]. Restricting the alphabet
// keeps ids usable verbatim as file names and URL path segments.
var ErrBadID = errors.New("persist: invalid snapshot id")

// Store is a keyed snapshot repository — the durability boundary of
// the session service. Implementations must be safe for concurrent use
// and must copy on Put/Get so callers cannot alias stored state.
type Store interface {
	// Put saves the snapshot under id, replacing any previous value.
	Put(ctx context.Context, id string, snap *Snapshot) error
	// Get loads the snapshot stored under id (ErrNotFound if absent).
	Get(ctx context.Context, id string) (*Snapshot, error)
	// Delete removes the snapshot under id (ErrNotFound if absent).
	Delete(ctx context.Context, id string) error
	// List returns the stored ids in lexicographic order.
	List(ctx context.Context) ([]string, error)
}

// ValidateID checks a snapshot id against the store alphabet.
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("%w: empty", ErrBadID)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return fmt.Errorf("%w: %q contains %q", ErrBadID, id, r)
		}
	}
	if id == "." || id == ".." {
		return fmt.Errorf("%w: %q", ErrBadID, id)
	}
	return nil
}

// MemStore is an in-memory Store. Snapshots are held in encoded form so
// stored state never aliases live session state.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(ctx context.Context, id string, snap *Snapshot) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := ValidateID(id); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		return err
	}
	s.mu.Lock()
	s.m[id] = buf.Bytes()
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *MemStore) Get(ctx context.Context, id string) (*Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	b, ok := s.m[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return Read(bytes.NewReader(b))
}

// Delete implements Store.
func (s *MemStore) Delete(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(s.m, id)
	return nil
}

// List implements Store.
func (s *MemStore) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	ids := make([]string, 0, len(s.m))
	for id := range s.m {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	return ids, nil
}

// snapExt is the file suffix DirStore uses, so unrelated files in the
// directory are ignored.
const snapExt = ".snapshot.json"

// DirStore is a directory-backed Store: one "<id>.snapshot.json" file
// per snapshot, written atomically (temp file + rename) so a crashed
// writer never leaves a torn snapshot under a live id.
type DirStore struct {
	dir string
	// mu serializes same-process writers; cross-process safety comes
	// from the atomic rename.
	mu sync.Mutex
}

// NewDirStore ensures the directory exists and returns a store over it.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) path(id string) string {
	return filepath.Join(s.dir, id+snapExt)
}

// Put implements Store.
func (s *DirStore) Put(ctx context.Context, id string, snap *Snapshot) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := ValidateID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, "."+id+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := snap.Write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// Get implements Store.
func (s *DirStore) Get(ctx context.Context, id string) (*Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	snap, err := ReadFile(s.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return snap, err
}

// Delete implements Store.
func (s *DirStore) Delete(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := ValidateID(id); err != nil {
		return err
	}
	if err := os.Remove(s.path(id)); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// List implements Store.
func (s *DirStore) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapExt) || strings.HasPrefix(name, ".") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, snapExt))
	}
	sort.Strings(ids)
	return ids, nil
}
