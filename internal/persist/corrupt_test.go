package persist

import (
	"bytes"
	"context"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// encodeFixture returns a Version-2 snapshot and its canonical encoding.
func encodeFixture(t *testing.T) (*Snapshot, []byte) {
	t.Helper()
	schema, space, trainer, learner, history := fixture(t)
	snap, err := NewSnapshot(schema, space, trainer, learner, history)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return snap, buf.Bytes()
}

func TestWriteAppendsVerifiableFooter(t *testing.T) {
	_, enc := encodeFixture(t)
	trimmed := strings.TrimSuffix(string(enc), "\n")
	i := strings.LastIndexByte(trimmed, '\n')
	last := trimmed[i+1:]
	if !strings.HasPrefix(last, footerMagic) {
		t.Fatalf("last line %q does not open with the footer magic", last)
	}
	body, sum, hasFooter, err := splitChecksumFooter(enc)
	if err != nil || !hasFooter {
		t.Fatalf("splitChecksumFooter: hasFooter=%t err=%v", hasFooter, err)
	}
	if got := crc32.ChecksumIEEE(body); got != sum {
		t.Fatalf("footer sum %08x does not match body %08x", sum, got)
	}
}

func TestChecksumDetectsBitFlips(t *testing.T) {
	_, enc := encodeFixture(t)
	// Flip a spread of positions across body and footer. Every flip must
	// surface as ErrCorrupt or (rarely, e.g. a whitespace-equivalent
	// trailing byte) decode to a valid snapshot — never a quiet wrong
	// answer from a half-parsed body, never a panic.
	for pos := 0; pos < len(enc); pos += 7 {
		for _, x := range []byte{0x01, 0x80, 0xff} {
			data := append([]byte(nil), enc...)
			data[pos] ^= x
			snap, err := Read(bytes.NewReader(data))
			if err == nil {
				// Accept only if the decode round-trips to a canonical form.
				var buf bytes.Buffer
				if werr := snap.Write(&buf); werr != nil {
					t.Fatalf("pos %d xor %#x: decoded snapshot does not re-encode: %v", pos, x, werr)
				}
				continue
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("pos %d xor %#x: error %v is not ErrCorrupt", pos, x, err)
			}
		}
	}
}

func TestLegacyV1SnapshotStillReads(t *testing.T) {
	legacy := `{
  "version": 1,
  "schema": ["a", "b"],
  "space": [{"lhs": [0], "rhs": 1}],
  "trainer": [{"alpha": 2, "beta": 3}],
  "learner": [{"alpha": 1, "beta": 1}]
}
`
	snap, err := Read(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy checksum-less snapshot rejected: %v", err)
	}
	if snap.Version != 1 {
		t.Fatalf("version = %d, want 1", snap.Version)
	}
	if _, err := snap.RestoreSpace(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedSnapshotIsCorrupt(t *testing.T) {
	_, enc := encodeFixture(t)
	body, _, _, err := splitChecksumFooter(enc)
	if err != nil {
		t.Fatal(err)
	}
	// A prefix is what a torn write leaves. All must be rejected — except
	// the one cut that removes exactly the footer line, which is
	// indistinguishable from a legitimate legacy snapshot.
	for _, frac := range []float64{0.25, 0.5, 0.9, 0.99} {
		cut := enc[:int(frac*float64(len(enc)))]
		if len(cut) == len(body) {
			continue
		}
		if _, err := Read(bytes.NewReader(cut)); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", len(cut), len(enc))
		}
	}
}

func TestVerifyAndScanQuarantine(t *testing.T) {
	ctx := context.Background()
	snap, _ := encodeFixture(t)
	dirPath := t.TempDir()
	store, err := NewDirStore(dirPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"good", "bad"} {
		if err := store.Put(ctx, id, snap); err != nil {
			t.Fatal(err)
		}
	}
	// Rot a byte in the middle of "bad" on disk, behind the store's back.
	badPath := filepath.Join(dirPath, "bad"+snapExt)
	raw, err := os.ReadFile(badPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(badPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Leave an orphaned temp from a "crashed writer" too.
	if err := os.WriteFile(filepath.Join(dirPath, ".bad.tmp-123"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := store.Verify(ctx, "good"); err != nil {
		t.Fatalf("Verify(good) = %v", err)
	}
	if err := store.Verify(ctx, "bad"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify(bad) = %v, want ErrCorrupt", err)
	}
	if err := store.Verify(ctx, "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Verify(absent) = %v, want ErrNotFound", err)
	}

	res, err := store.Scan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OK) != 1 || res.OK[0] != "good" {
		t.Fatalf("Scan OK = %v, want [good]", res.OK)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0] != "bad" {
		t.Fatalf("Scan Quarantined = %v, want [bad]", res.Quarantined)
	}
	if res.TempsRemoved != 1 {
		t.Fatalf("Scan TempsRemoved = %d, want 1", res.TempsRemoved)
	}
	// The quarantined bytes survive for forensics; the live name is gone.
	if _, err := os.Stat(filepath.Join(dirPath, "bad"+corruptExt)); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := store.Get(ctx, "bad"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(bad) after quarantine = %v, want ErrNotFound", err)
	}
	ids, err := store.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "good" {
		t.Fatalf("List = %v, want [good]", ids)
	}
	// A fresh Put may reuse the quarantined id.
	if err := store.Put(ctx, "bad", snap); err != nil {
		t.Fatal(err)
	}
	if err := store.Verify(ctx, "bad"); err != nil {
		t.Fatalf("Verify after re-Put: %v", err)
	}
}
