package persist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"exptrain/internal/fd"
)

// storeFixture builds a small snapshot to shuttle through stores.
func storeFixture(t *testing.T) *Snapshot {
	t.Helper()
	fds, err := fd.Enumerate(fd.SpaceConfig{Arity: 3, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	space, err := fd.NewSpace(fds)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := NewSnapshot(nil, space, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// testStore exercises the Store contract against any implementation.
func testStore(t *testing.T, store Store) {
	t.Helper()
	ctx := context.Background()
	snap := storeFixture(t)

	if _, err := store.Get(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: err = %v, want ErrNotFound", err)
	}
	if err := store.Delete(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete missing: err = %v, want ErrNotFound", err)
	}
	if err := store.Put(ctx, "../evil", snap); !errors.Is(err, ErrBadID) {
		t.Fatalf("Put traversal id: err = %v, want ErrBadID", err)
	}
	if err := store.Put(ctx, "", snap); !errors.Is(err, ErrBadID) {
		t.Fatalf("Put empty id: err = %v, want ErrBadID", err)
	}

	if err := store.Put(ctx, "s-1", snap); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, "s-2", snap); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(ctx, "s-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Space) != len(snap.Space) {
		t.Fatalf("restored space has %d FDs, want %d", len(got.Space), len(snap.Space))
	}
	// The returned snapshot must not alias the stored bytes.
	got.Space = nil
	again, err := store.Get(ctx, "s-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Space) != len(snap.Space) {
		t.Fatal("mutating a Get result corrupted the store")
	}

	ids, err := store.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "s-1" || ids[1] != "s-2" {
		t.Fatalf("List = %v", ids)
	}
	if err := store.Delete(ctx, "s-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(ctx, "s-1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete: err = %v, want ErrNotFound", err)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if err := store.Put(canceled, "s-3", snap); !errors.Is(err, context.Canceled) {
		t.Fatalf("Put on canceled ctx: err = %v", err)
	}
}

func TestMemStore(t *testing.T) { testStore(t, NewMemStore()) }

func TestDirStore(t *testing.T) {
	store, err := NewDirStore(t.TempDir() + "/snaps")
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, store)
}

func TestDirStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, "persisted", storeFixture(t)); err != nil {
		t.Fatal(err)
	}
	reopened, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reopened.Get(ctx, "persisted"); err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
}

func TestMemStoreConcurrent(t *testing.T) {
	store := NewMemStore()
	snap := storeFixture(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("c-%d", i)
			if err := store.Put(ctx, id, snap); err != nil {
				t.Error(err)
				return
			}
			if _, err := store.Get(ctx, id); err != nil {
				t.Error(err)
			}
			if _, err := store.List(ctx); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}
