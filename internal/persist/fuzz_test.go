package persist

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"exptrain/internal/stats"
)

// TestReadNeverPanicsOnGarbage: arbitrary byte soup must come back as
// an error, never a panic — checkpoints arrive from disk and may be
// truncated or corrupted.
func TestReadNeverPanicsOnGarbage(t *testing.T) {
	rng := stats.NewRNG(777)
	f := func(lenRaw uint8) bool {
		n := int(lenRaw % 200)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		snap, err := Read(strings.NewReader(string(buf)))
		// Either a parse error, or a valid-version snapshot whose
		// restore paths must also not panic.
		if err != nil {
			return true
		}
		_, _ = snap.RestoreSpace()
		_, _ = snap.RestoreHistory()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzSnapshotDecode: native fuzzing over the checkpoint decode path.
// Arbitrary bytes must come back as an error, never a panic; any bytes
// that do decode must survive every restore path, and a decoded
// version-1 snapshot must round-trip through Write/Read to a stable
// canonical form (Write∘Read is idempotent on Write's output).
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"schema":["a","b"],"space":[{"lhs":[0],"rhs":1}],` +
		`"trainer":[{"alpha":2,"beta":3}],"learner":[{"alpha":1,"beta":1}],` +
		`"history":[{"labeled":[{"pair":[0,1],"marked":[1]}],"mae":0.25,"payoff":1.5,` +
		`"detection":{"precision":1,"recall":0.5,"f1":0.6666666666666666}}]}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"history":[{"revisions":[{"pair":[0,2],"abstained":true}]}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		// Every restore path must tolerate whatever decoded.
		if space, err := snap.RestoreSpace(); err == nil {
			if _, err := snap.RestoreTrainer(space); err != nil {
				_ = err
			}
			if _, err := snap.RestoreLearner(space); err != nil {
				_ = err
			}
		}
		_, _ = snap.RestoreHistory()
		_, _ = snap.RestoreRounds()

		// Canonical round-trip: write, re-read, write again — the two
		// serializations must be byte-identical.
		var first bytes.Buffer
		if err := snap.Write(&first); err != nil {
			t.Fatalf("writing decoded snapshot: %v", err)
		}
		again, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written snapshot: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := again.Write(&second); err != nil {
			t.Fatalf("re-writing snapshot: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("canonical form unstable:\nfirst:\n%s\nsecond:\n%s", first.Bytes(), second.Bytes())
		}
	})
}

// FuzzSnapshotChecksum: flip one byte anywhere in a canonical encoded
// snapshot. The decode must return ErrCorrupt or a valid snapshot —
// never panic, and never quietly hand back a half-parsed body under a
// non-corruption error. An unflipped decode must round-trip
// byte-identically.
func FuzzSnapshotChecksum(f *testing.F) {
	snap := &Snapshot{
		Version: Version,
		Schema:  []string{"a", "b", "c"},
		Space:   []FDJSON{{LHS: []int{0}, RHS: 1}, {LHS: []int{0, 2}, RHS: 1}},
		Trainer: []BetaJSON{{Alpha: 2, Beta: 3}, {Alpha: 10, Beta: 1}},
		Learner: []BetaJSON{{Alpha: 1, Beta: 1}, {Alpha: 0.5, Beta: 7.25}},
		History: []InteractionJSON{{Labeled: []LabelingJSON{{Pair: [2]int{0, 1}, Marked: []int{1}}}}},
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		f.Fatal(err)
	}
	enc := buf.Bytes()

	f.Add(uint32(0), byte(0))             // unflipped round-trip
	f.Add(uint32(10), byte(0x01))         // body flip
	f.Add(uint32(len(enc)-2), byte(0x80)) // footer flip
	f.Add(uint32(len(enc)-1), byte(0x2a)) // trailing newline flip
	f.Fuzz(func(t *testing.T, pos uint32, x byte) {
		data := append([]byte(nil), enc...)
		i := int(pos) % len(data)
		data[i] ^= x
		got, err := Read(bytes.NewReader(data))
		if x == 0 {
			if err != nil {
				t.Fatalf("unflipped snapshot rejected: %v", err)
			}
			var out bytes.Buffer
			if err := got.Write(&out); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), enc) {
				t.Fatalf("unflipped round-trip not byte-identical:\nin:\n%s\nout:\n%s", enc, out.Bytes())
			}
			return
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at %d (xor %#x): error %v is not ErrCorrupt", i, x, err)
			}
			return
		}
		// The flip slipped through the checksum (e.g. a whitespace-
		// equivalent trailing byte): the result must still be a snapshot
		// every restore path tolerates.
		if space, serr := got.RestoreSpace(); serr == nil {
			_, _ = got.RestoreTrainer(space)
			_, _ = got.RestoreLearner(space)
		}
		_, _ = got.RestoreHistory()
	})
}

// TestReadStructuredCorruption: syntactically valid JSON with invalid
// content errors cleanly on restore.
func TestReadStructuredCorruption(t *testing.T) {
	cases := []string{
		`{"version":1,"space":[{"lhs":[99],"rhs":1}]}`,                    // attr out of range
		`{"version":1,"space":[{"lhs":[],"rhs":1}]}`,                      // empty LHS
		`{"version":1,"space":[{"lhs":[0],"rhs":-5}]}`,                    // RHS out of range
		`{"version":1,"space":[{"lhs":[0],"rhs":1},{"lhs":[0],"rhs":1}]}`, // duplicate FD
	}
	for _, c := range cases {
		snap, err := Read(strings.NewReader(c))
		if err != nil {
			t.Fatalf("parse of %q failed: %v", c, err)
		}
		if _, err := snap.RestoreSpace(); err == nil {
			t.Errorf("restore of %q should error", c)
		}
	}
}

// TestHistoryCorruption: degenerate pairs and bad marks error cleanly.
func TestHistoryCorruption(t *testing.T) {
	cases := []string{
		`{"version":1,"history":[{"labeled":[{"pair":[2,2]}]}]}`,
		`{"version":1,"history":[{"labeled":[{"pair":[-1,3]}]}]}`,
		`{"version":1,"history":[{"labeled":[{"pair":[0,1],"marked":[70]}]}]}`,
	}
	for _, c := range cases {
		snap, err := Read(strings.NewReader(c))
		if err != nil {
			t.Fatalf("parse of %q failed: %v", c, err)
		}
		if _, err := snap.RestoreHistory(); err == nil {
			t.Errorf("restore of %q should error", c)
		}
	}
}
