package persist

import (
	"strings"
	"testing"
	"testing/quick"

	"exptrain/internal/stats"
)

// TestReadNeverPanicsOnGarbage: arbitrary byte soup must come back as
// an error, never a panic — checkpoints arrive from disk and may be
// truncated or corrupted.
func TestReadNeverPanicsOnGarbage(t *testing.T) {
	rng := stats.NewRNG(777)
	f := func(lenRaw uint8) bool {
		n := int(lenRaw % 200)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		snap, err := Read(strings.NewReader(string(buf)))
		// Either a parse error, or a valid-version snapshot whose
		// restore paths must also not panic.
		if err != nil {
			return true
		}
		_, _ = snap.RestoreSpace()
		_, _ = snap.RestoreHistory()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReadStructuredCorruption: syntactically valid JSON with invalid
// content errors cleanly on restore.
func TestReadStructuredCorruption(t *testing.T) {
	cases := []string{
		`{"version":1,"space":[{"lhs":[99],"rhs":1}]}`,                    // attr out of range
		`{"version":1,"space":[{"lhs":[],"rhs":1}]}`,                      // empty LHS
		`{"version":1,"space":[{"lhs":[0],"rhs":-5}]}`,                    // RHS out of range
		`{"version":1,"space":[{"lhs":[0],"rhs":1},{"lhs":[0],"rhs":1}]}`, // duplicate FD
	}
	for _, c := range cases {
		snap, err := Read(strings.NewReader(c))
		if err != nil {
			t.Fatalf("parse of %q failed: %v", c, err)
		}
		if _, err := snap.RestoreSpace(); err == nil {
			t.Errorf("restore of %q should error", c)
		}
	}
}

// TestHistoryCorruption: degenerate pairs and bad marks error cleanly.
func TestHistoryCorruption(t *testing.T) {
	cases := []string{
		`{"version":1,"history":[{"labeled":[{"pair":[2,2]}]}]}`,
		`{"version":1,"history":[{"labeled":[{"pair":[-1,3]}]}]}`,
		`{"version":1,"history":[{"labeled":[{"pair":[0,1],"marked":[70]}]}]}`,
	}
	for _, c := range cases {
		snap, err := Read(strings.NewReader(c))
		if err != nil {
			t.Fatalf("parse of %q failed: %v", c, err)
		}
		if _, err := snap.RestoreHistory(); err == nil {
			t.Errorf("restore of %q should error", c)
		}
	}
}
