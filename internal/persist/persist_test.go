package persist

import (
	"strings"
	"testing"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

func fixture(t *testing.T) (*dataset.Schema, *fd.Space, *belief.Belief, *belief.Belief, [][]belief.Labeling) {
	t.Helper()
	schema := dataset.MustSchema("a", "b", "c")
	space := fd.MustNewSpace(fd.MustEnumerate(fd.SpaceConfig{Arity: 3, MaxLHS: 2}))
	trainer := belief.New(space, stats.NewBeta(2, 3))
	trainer.SetDist(1, stats.NewBeta(10, 1))
	learner := belief.New(space, stats.NewBeta(1, 1))
	learner.SetDist(4, stats.NewBeta(0.5, 7.25))
	history := [][]belief.Labeling{
		{
			{Pair: dataset.NewPair(0, 1), Marked: fd.NewAttrSet(1)},
			{Pair: dataset.NewPair(2, 5)},
		},
		{
			{Pair: dataset.NewPair(1, 3), Abstained: true},
		},
	}
	return schema, space, trainer, learner, history
}

func TestSnapshotRoundTrip(t *testing.T) {
	schema, space, trainer, learner, history := fixture(t)
	snap, err := NewSnapshot(schema, space, trainer, learner, history)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := snap.Write(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	space2, err := back.RestoreSpace()
	if err != nil {
		t.Fatal(err)
	}
	if space2.Size() != space.Size() {
		t.Fatalf("space size %d, want %d", space2.Size(), space.Size())
	}
	for i := 0; i < space.Size(); i++ {
		if space2.FD(i) != space.FD(i) {
			t.Fatalf("FD %d mismatch: %v vs %v", i, space2.FD(i), space.FD(i))
		}
	}

	tr2, err := back.RestoreTrainer(space2)
	if err != nil {
		t.Fatal(err)
	}
	le2, err := back.RestoreLearner(space2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < space.Size(); i++ {
		if tr2.Dist(i) != trainer.Dist(i) {
			t.Fatalf("trainer dist %d: %+v vs %+v", i, tr2.Dist(i), trainer.Dist(i))
		}
		if le2.Dist(i) != learner.Dist(i) {
			t.Fatalf("learner dist %d: %+v vs %+v", i, le2.Dist(i), learner.Dist(i))
		}
	}

	h2, err := back.RestoreHistory()
	if err != nil {
		t.Fatal(err)
	}
	if len(h2) != len(history) {
		t.Fatalf("history length %d, want %d", len(h2), len(history))
	}
	for i := range history {
		if len(h2[i]) != len(history[i]) {
			t.Fatalf("interaction %d length mismatch", i)
		}
		for j := range history[i] {
			if h2[i][j] != history[i][j] {
				t.Fatalf("labeling (%d,%d): %+v vs %+v", i, j, h2[i][j], history[i][j])
			}
		}
	}

	if err := back.ValidateSchema(schema); err != nil {
		t.Fatalf("schema validation failed: %v", err)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	schema, space, trainer, learner, history := fixture(t)
	snap, err := NewSnapshot(schema, space, trainer, learner, history)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/session.json"
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != Version || len(back.Space) != space.Size() {
		t.Fatalf("bad reload: %+v", back)
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestSnapshotNilBeliefs(t *testing.T) {
	schema, space, _, _, _ := fixture(t)
	snap, err := NewSnapshot(schema, space, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := snap.Write(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	space2, err := back.RestoreSpace()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := back.RestoreTrainer(space2)
	if err != nil || tr != nil {
		t.Fatalf("nil trainer should restore nil, got %v, %v", tr, err)
	}
}

func TestSnapshotValidation(t *testing.T) {
	schema, _, trainer, _, _ := fixture(t)
	if _, err := NewSnapshot(schema, nil, nil, nil, nil); err == nil {
		t.Error("nil space should error")
	}
	small := fd.MustNewSpace(fd.MustEnumerate(fd.SpaceConfig{Arity: 3, MaxLHS: 1}))
	if _, err := NewSnapshot(schema, small, trainer, nil, nil); err == nil {
		t.Error("belief/space size mismatch should error")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage should error")
	}
	if _, err := Read(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("wrong version should error")
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	// Invalid Beta parameters.
	snap := &Snapshot{
		Version: Version,
		Space:   []FDJSON{{LHS: []int{0}, RHS: 1}},
		Trainer: []BetaJSON{{Alpha: -1, Beta: 2}},
	}
	space, err := snap.RestoreSpace()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.RestoreTrainer(space); err == nil {
		t.Error("negative alpha should error")
	}
	// Parameter-count mismatch.
	snap.Trainer = []BetaJSON{{Alpha: 1, Beta: 1}, {Alpha: 1, Beta: 1}}
	if _, err := snap.RestoreTrainer(space); err == nil {
		t.Error("size mismatch should error")
	}
	// Trivial FD.
	bad := &Snapshot{Version: Version, Space: []FDJSON{{LHS: []int{1}, RHS: 1}}}
	if _, err := bad.RestoreSpace(); err == nil {
		t.Error("trivial FD should error")
	}
	// Invalid pair in history.
	snap2 := &Snapshot{Version: Version, History: []InteractionJSON{
		{Labeled: []LabelingJSON{{Pair: [2]int{3, 3}}}},
	}}
	if _, err := snap2.RestoreHistory(); err == nil {
		t.Error("degenerate pair should error")
	}
}

func TestValidateSchemaMismatch(t *testing.T) {
	schema, space, _, _, _ := fixture(t)
	snap, err := NewSnapshot(schema, space, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	other := dataset.MustSchema("x", "y", "z")
	if err := snap.ValidateSchema(other); err == nil {
		t.Error("renamed attributes should fail validation")
	}
	short := dataset.MustSchema("a", "b")
	if err := snap.ValidateSchema(short); err == nil {
		t.Error("arity mismatch should fail validation")
	}
	// Snapshot without schema validates anything.
	bare := &Snapshot{Version: Version}
	if err := bare.ValidateSchema(other); err != nil {
		t.Errorf("schema-less snapshot should validate: %v", err)
	}
}
