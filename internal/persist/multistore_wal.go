package persist

import (
	"context"
	"errors"
	"fmt"
)

// RoundAppender reports the replica set's round-append capability:
// non-nil (the multistore itself) only when every replica supports
// appends. A mixed set falls back to snapshot-only durability — quorum
// math over appends is only sound when all N replicas can take them,
// otherwise a "quorum" of the appendable minority would not intersect
// a snapshot write quorum.
func (s *MultiStore) RoundAppender() RoundAppender {
	for _, r := range s.replicas {
		if AppenderOf(r) == nil {
			return nil
		}
	}
	return s
}

// AppendRounds implements RoundAppender across the replica set with
// the same quorum discipline as Put: every replica's log takes the
// deltas concurrently and the call acks once W replicas fsynced.
// Stragglers finish in the background (Flush waits them out); a
// replica that missed the append heals through the ordinary read path
// — its next Get folds a shorter tail, loses the freshness race, and
// read-repair rewrites it with the winner.
func (s *MultiStore) AppendRounds(ctx context.Context, deltas []*RoundDelta) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(deltas) == 0 {
		return nil
	}
	for _, d := range deltas {
		if d == nil {
			return errors.New("persist: nil round delta")
		}
		if err := ValidateID(d.Session); err != nil {
			return err
		}
	}
	n := len(s.replicas)
	type result struct {
		i   int
		err error
	}
	results := make(chan result, n)
	s.wg.Add(n)
	for i, r := range s.replicas {
		app := AppenderOf(r)
		go func(i int, app RoundAppender) {
			defer s.wg.Done()
			var err error
			if app == nil {
				err = errors.New("replica lacks a round appender")
			} else {
				err = app.AppendRounds(ctx, deltas)
			}
			s.note(i, err, false)
			results <- result{i, err}
		}(i, app)
	}
	acks, fails := 0, 0
	var errs []error
	for seen := 0; seen < n; seen++ {
		res := <-results
		if res.err == nil {
			acks++
		} else {
			fails++
			errs = append(errs, fmt.Errorf("replica %d: %w", res.i, res.err))
		}
		if acks >= s.w {
			return nil // quorum fsynced; stragglers finish in background
		}
		if fails > n-s.w {
			return fmt.Errorf("persist: append of %d round(s) acked by %d of %d replicas (need %d): %w",
				len(deltas), acks, n, s.w, errors.Join(errs...))
		}
	}
	// Unreachable: one of the two branches above fires by the last result.
	return fmt.Errorf("persist: append of %d round(s) acked by %d of %d replicas (need %d): %w",
		len(deltas), acks, n, s.w, errors.Join(errs...))
}

// WalStats implements WalStatter across the replica set: counts sum,
// the p99 is the worst replica's. Reports false when no replica
// surfaces WAL counters.
func (s *MultiStore) WalStats() (WalStats, bool) {
	var agg WalStats
	any := false
	for _, r := range s.replicas {
		ws, ok := r.(WalStatter)
		if !ok {
			continue
		}
		st, reported := ws.WalStats()
		if !reported {
			continue
		}
		agg.merge(st)
		any = true
	}
	return agg, any
}
