package persist

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// twoSnapshots builds an "old" and a strictly fresher "new" snapshot of
// the same session (new has one more recorded round), plus their exact
// encodings for old-or-new byte comparisons.
func twoSnapshots(t *testing.T) (oldSnap, newSnap *Snapshot, oldBytes, newBytes string) {
	t.Helper()
	schema, space, trainer, learner, history := fixture(t)
	var err error
	if oldSnap, err = NewSnapshot(schema, space, trainer, learner, history[:1]); err != nil {
		t.Fatal(err)
	}
	if newSnap, err = NewSnapshot(schema, space, trainer, learner, history); err != nil {
		t.Fatal(err)
	}
	return oldSnap, newSnap, encode(t, oldSnap), encode(t, newSnap)
}

func encode(t *testing.T, snap *Snapshot) string {
	t.Helper()
	var sb strings.Builder
	if err := snap.Write(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// brokenStore fails every operation with a transient error.
type brokenStore struct{ err error }

func (b brokenStore) Put(context.Context, string, *Snapshot) error   { return b.err }
func (b brokenStore) Get(context.Context, string) (*Snapshot, error) { return nil, b.err }
func (b brokenStore) Delete(context.Context, string) error           { return b.err }
func (b brokenStore) List(context.Context) ([]string, error)         { return nil, b.err }

func newTestMulti(t *testing.T, n, w int) (*MultiStore, []*MemStore) {
	t.Helper()
	mems := make([]*MemStore, n)
	replicas := make([]Store, n)
	for i := range mems {
		mems[i] = NewMemStore()
		replicas[i] = mems[i]
	}
	ms, err := NewMultiStore(replicas, w)
	if err != nil {
		t.Fatal(err)
	}
	return ms, mems
}

func TestMultiStoreConstruction(t *testing.T) {
	if _, err := NewMultiStore(nil, 0); err == nil {
		t.Fatal("zero replicas should be rejected")
	}
	if _, err := NewMultiStore([]Store{NewMemStore()}, 2); err == nil {
		t.Fatal("quorum above replica count should be rejected")
	}
	if _, err := NewMultiStore([]Store{NewMemStore()}, -1); err == nil {
		t.Fatal("negative quorum should be rejected")
	}
	ms, _ := newTestMulti(t, 5, 0)
	if got := ms.WriteQuorum(); got != 3 {
		t.Fatalf("majority quorum over 5 = %d, want 3", got)
	}
	if got := ms.Replicas(); got != 5 {
		t.Fatalf("Replicas() = %d, want 5", got)
	}
}

func TestMultiStoreRoundTripAllReplicas(t *testing.T) {
	ctx := context.Background()
	ms, mems := newTestMulti(t, 3, 0)
	_, newSnap, _, newBytes := twoSnapshots(t)

	if err := ms.Put(ctx, "sess-1", newSnap); err != nil {
		t.Fatal(err)
	}
	ms.Flush() // wait out post-ack straggler writes
	for i, mem := range mems {
		got, err := mem.Get(ctx, "sess-1")
		if err != nil {
			t.Fatalf("replica %d missing the write: %v", i, err)
		}
		if encode(t, got) != newBytes {
			t.Fatalf("replica %d holds different bytes", i)
		}
	}
	back, err := ms.Get(ctx, "sess-1")
	if err != nil {
		t.Fatal(err)
	}
	if encode(t, back) != newBytes {
		t.Fatal("multistore Get returned different bytes")
	}

	ids, err := ms.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "sess-1" {
		t.Fatalf("List = %v", ids)
	}

	if err := ms.Delete(ctx, "sess-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Get(ctx, "sess-1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
	if err := ms.Delete(ctx, "sess-1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Delete = %v, want ErrNotFound", err)
	}
}

func TestMultiStorePutToleratesMinorityFailure(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("disk on fire")
	mems := []*MemStore{NewMemStore(), NewMemStore()}
	ms, err := NewMultiStore([]Store{mems[0], brokenStore{boom}, mems[1]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, newSnap, _, newBytes := twoSnapshots(t)
	if err := ms.Put(ctx, "sess-1", newSnap); err != nil {
		t.Fatalf("put with one dead replica: %v", err)
	}
	ms.Flush()
	for i, mem := range mems {
		if got, err := mem.Get(ctx, "sess-1"); err != nil || encode(t, got) != newBytes {
			t.Fatalf("healthy replica %d: %v", i, err)
		}
	}
	// Reads also survive the dead replica.
	if got, err := ms.Get(ctx, "sess-1"); err != nil || encode(t, got) != newBytes {
		t.Fatalf("get with one dead replica: %v", err)
	}
	stats := ms.Stats()
	if stats[1].Failures == 0 || stats[1].LastErr == "" {
		t.Fatalf("dead replica's failures not counted: %+v", stats[1])
	}
}

func TestMultiStorePutFailsBelowQuorum(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("disk on fire")
	ms, err := NewMultiStore([]Store{NewMemStore(), brokenStore{boom}, brokenStore{boom}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, newSnap, _, _ := twoSnapshots(t)
	if err := ms.Put(ctx, "sess-1", newSnap); !errors.Is(err, boom) {
		t.Fatalf("put below quorum = %v, want the replica error", err)
	}
}

func TestMultiStoreReadRepairStaleAndMissing(t *testing.T) {
	ctx := context.Background()
	ms, mems := newTestMulti(t, 3, 0)
	oldSnap, newSnap, _, newBytes := twoSnapshots(t)

	// Replica 0 is stale, replica 1 fresh, replica 2 empty.
	if err := mems[0].Put(ctx, "sess-1", oldSnap); err != nil {
		t.Fatal(err)
	}
	if err := mems[1].Put(ctx, "sess-1", newSnap); err != nil {
		t.Fatal(err)
	}
	got, err := ms.Get(ctx, "sess-1")
	if err != nil {
		t.Fatal(err)
	}
	if encode(t, got) != newBytes {
		t.Fatal("Get did not resolve to the freshest replica")
	}
	for i, mem := range mems {
		healed, err := mem.Get(ctx, "sess-1")
		if err != nil {
			t.Fatalf("replica %d not repaired: %v", i, err)
		}
		if encode(t, healed) != newBytes {
			t.Fatalf("replica %d repaired to wrong bytes", i)
		}
	}
	stats := ms.Stats()
	if got := stats[0].Repairs + stats[1].Repairs + stats[2].Repairs; got != 2 {
		t.Fatalf("total repairs = %d, want 2 (stale + missing)", got)
	}
}

func TestMultiStoreGetErrorClassification(t *testing.T) {
	ctx := context.Background()
	_, newSnap, _, _ := twoSnapshots(t)

	t.Run("all absent is not-found", func(t *testing.T) {
		ms, _ := newTestMulti(t, 3, 0)
		if _, err := ms.Get(ctx, "sess-1"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("got %v, want ErrNotFound", err)
		}
	})
	t.Run("a read quorum of not-founds is not-found", func(t *testing.T) {
		// W=2 of 3: two authoritative absences intersect any committed
		// write, so the third replica being down cannot hide a snapshot.
		boom := errors.New("disk on fire")
		ms, err := NewMultiStore([]Store{NewMemStore(), brokenStore{boom}, NewMemStore()}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ms.Get(ctx, "sess-1"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("got %v, want ErrNotFound (2 of 3 answered)", err)
		}
	})
	t.Run("below the read quorum transient failure dominates", func(t *testing.T) {
		// W=2 of 3 needs 2 answers: with only one replica reachable, a
		// committed write may be hiding entirely on the broken ones, so
		// Get must fail transiently even though the one answer is a
		// perfectly intact snapshot — returning it could be stale.
		boom := errors.New("disk on fire")
		mem := NewMemStore()
		if err := mem.Put(ctx, "sess-1", newSnap); err != nil {
			t.Fatal(err)
		}
		ms, err := NewMultiStore([]Store{mem, brokenStore{boom}, brokenStore{boom}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, err = ms.Get(ctx, "sess-1")
		if err == nil || errors.Is(err, ErrNotFound) {
			t.Fatalf("got %v, want a transient quorum failure", err)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("got %v, want the replica error", err)
		}
	})
	t.Run("corrupt everywhere is corrupt", func(t *testing.T) {
		dirs := make([]Store, 2)
		for i := range dirs {
			dir, err := NewDirStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := dir.Put(ctx, "sess-1", newSnap); err != nil {
				t.Fatal(err)
			}
			corruptReplicaFile(t, dir, "sess-1")
			dirs[i] = dir
		}
		ms, err := NewMultiStore(dirs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ms.Get(ctx, "sess-1"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("one intact replica outvotes corruption", func(t *testing.T) {
		dir, err := NewDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := dir.Put(ctx, "sess-1", newSnap); err != nil {
			t.Fatal(err)
		}
		corruptReplicaFile(t, dir, "sess-1")
		mem := NewMemStore()
		if err := mem.Put(ctx, "sess-1", newSnap); err != nil {
			t.Fatal(err)
		}
		ms, err := NewMultiStore([]Store{dir, mem}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ms.Get(ctx, "sess-1"); err != nil {
			t.Fatalf("intact replica should win: %v", err)
		}
		// The corrupt replica was repaired in place.
		if _, err := dir.Get(ctx, "sess-1"); err != nil {
			t.Fatalf("corrupt replica not repaired: %v", err)
		}
	})
}

// corruptReplicaFile flips bytes in the middle of a stored snapshot so
// its checksum fails.
func corruptReplicaFile(t *testing.T, dir *DirStore, id string) {
	t.Helper()
	path := filepath.Join(dir.Dir(), id+".snapshot.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(data[len(data)/2:], "XXXXXXXX")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestMultiStoreDeleteStaysStrict(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("disk on fire")
	mem := NewMemStore()
	ms, err := NewMultiStore([]Store{mem, brokenStore{boom}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, newSnap, _, _ := twoSnapshots(t)
	if err := mem.Put(ctx, "sess-1", newSnap); err != nil {
		t.Fatal(err)
	}
	// A delete that cannot reach every replica must fail: the surviving
	// copy would otherwise resurrect via read-repair.
	if err := ms.Delete(ctx, "sess-1"); !errors.Is(err, boom) {
		t.Fatalf("delete with unreachable replica = %v, want failure", err)
	}
}

func TestMultiStoreScanReconciles(t *testing.T) {
	ctx := context.Background()
	dirs := make([]*DirStore, 3)
	replicas := make([]Store, 3)
	for i := range dirs {
		dir, err := NewDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		dirs[i] = dir
		replicas[i] = dir
	}
	ms, err := NewMultiStore(replicas, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldSnap, newSnap, _, newBytes := twoSnapshots(t)

	// a: fresh on 0 and 1, stale on 2. b: only on replica 1, torn on 0.
	for _, d := range dirs[:2] {
		if err := d.Put(ctx, "sess-a", newSnap); err != nil {
			t.Fatal(err)
		}
	}
	if err := dirs[2].Put(ctx, "sess-a", oldSnap); err != nil {
		t.Fatal(err)
	}
	if err := dirs[1].Put(ctx, "sess-b", newSnap); err != nil {
		t.Fatal(err)
	}
	if err := dirs[0].Put(ctx, "sess-b", newSnap); err != nil {
		t.Fatal(err)
	}
	corruptReplicaFile(t, dirs[0], "sess-b")

	res, err := ms.Scan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"sess-a", "sess-b"}; fmt.Sprint(res.OK) != fmt.Sprint(want) {
		t.Fatalf("OK = %v, want %v", res.OK, want)
	}
	if fmt.Sprint(res.Repaired) != fmt.Sprint([]string{"sess-a", "sess-b"}) {
		t.Fatalf("Repaired = %v", res.Repaired)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("Failed = %v", res.Failed)
	}
	if res.ReplicaScans[0] == nil || len(res.ReplicaScans[0].Quarantined) != 1 {
		t.Fatalf("replica 0 scan should quarantine sess-b: %+v", res.ReplicaScans[0])
	}
	// Every replica converged onto the freshest copy of both ids.
	for i, d := range dirs {
		for _, id := range []string{"sess-a", "sess-b"} {
			got, err := d.Get(ctx, id)
			if err != nil {
				t.Fatalf("replica %d %s after scan: %v", i, id, err)
			}
			if encode(t, got) != newBytes {
				t.Fatalf("replica %d %s not converged", i, id)
			}
		}
	}
}
