// Package persist serializes training-session state — the hypothesis
// space, both agents' beliefs, and the interaction history — as
// versioned JSON, so a session can be checkpointed, inspected, resumed,
// or replayed offline. Relations are not embedded (they can be large
// and already live in CSV files); the snapshot stores the schema so a
// reloaded session can validate it is paired with the right data.
package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/metrics"
	"exptrain/internal/stats"
)

// Version is the snapshot format version this package writes. Version 2
// appends a CRC-32 checksum footer after the JSON body so torn or
// bit-rotted checkpoints are detected on read instead of silently
// resuming a session from mangled state.
const Version = 2

// minVersion is the oldest snapshot format Read still accepts.
// Version-1 snapshots have no checksum footer and read unverified.
const minVersion = 1

// ErrCorrupt is the sentinel wrapped when snapshot bytes fail their
// checksum or do not parse — the bytes on disk are not a snapshot any
// writer produced. Test with errors.Is. Corrupt snapshots are never
// partially restored; DirStore.Scan quarantines them.
var ErrCorrupt = errors.New("persist: snapshot corrupt")

// Snapshot is the serializable state of one exploratory-training
// session.
type Snapshot struct {
	Version int      `json:"version"`
	Schema  []string `json:"schema"`
	// Space lists the hypothesis space in canonical order; belief
	// vectors index into it.
	Space []FDJSON `json:"space"`
	// Trainer and Learner are the agents' Beta parameters per
	// hypothesis.
	Trainer []BetaJSON `json:"trainer,omitempty"`
	Learner []BetaJSON `json:"learner,omitempty"`
	// History records every interaction's labelings.
	History []InteractionJSON `json:"history,omitempty"`
	// LearnerRNG, when present, holds the learner's sampler RNG state
	// (four xoshiro256** words) at checkpoint time, making resumption
	// draw-exact: the restored session presents exactly the pairs the
	// live one would have. Absent in snapshots from older writers, which
	// resume with a freshly seeded stream instead.
	LearnerRNG []uint64 `json:"learner_rng,omitempty"`
}

// RestoreLearnerRNG validates and returns the captured sampler RNG
// state. ok is false when the snapshot predates RNG capture.
func (s *Snapshot) RestoreLearnerRNG() (state [4]uint64, ok bool, err error) {
	if len(s.LearnerRNG) == 0 {
		return state, false, nil
	}
	if len(s.LearnerRNG) != len(state) {
		return state, false, fmt.Errorf("persist: learner_rng holds %d words, want %d", len(s.LearnerRNG), len(state))
	}
	copy(state[:], s.LearnerRNG)
	if state[0]|state[1]|state[2]|state[3] == 0 {
		return state, false, fmt.Errorf("persist: learner_rng is the invalid all-zero state")
	}
	return state, true, nil
}

// FDJSON is the wire form of an FD.
type FDJSON struct {
	LHS []int `json:"lhs"`
	RHS int   `json:"rhs"`
}

// BetaJSON is the wire form of a Beta distribution.
type BetaJSON struct {
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
}

// LabelingJSON is the wire form of one annotation.
type LabelingJSON struct {
	Pair      [2]int `json:"pair"`
	Marked    []int  `json:"marked,omitempty"`
	Abstained bool   `json:"abstained,omitempty"`
}

// InteractionJSON is one interaction's labelings plus the optional
// per-round measurements. The measurement fields are omitempty
// additions to the Version-1 format: snapshots written before they
// existed parse unchanged, and a history-only snapshot still serializes
// byte-identically.
type InteractionJSON struct {
	Labeled []LabelingJSON `json:"labeled"`
	// Revisions are corrected labelings for pairs from earlier rounds.
	Revisions []LabelingJSON `json:"revisions,omitempty"`
	// MAE and Payoff are the round's measurements against the
	// annotator-side reference belief.
	MAE    float64 `json:"mae,omitempty"`
	Payoff float64 `json:"payoff,omitempty"`
	// Detection is the held-out detection score, present only when the
	// session ran with an evaluator.
	Detection *PRF1JSON `json:"detection,omitempty"`
}

// PRF1JSON is the wire form of a precision/recall/F1 score.
type PRF1JSON struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// Round is one submitted round's state as persisted: the labelings and
// revisions that were applied plus the measurements recorded for the
// round. Detection is nil when no evaluator scored the round.
type Round struct {
	Labeled   []belief.Labeling
	Revisions []belief.Labeling
	MAE       float64
	Payoff    float64
	Detection *metrics.PRF1
}

// FromFD converts an FD to wire form.
func FromFD(f fd.FD) FDJSON { return FDJSON{LHS: f.LHS.Attrs(), RHS: f.RHS} }

// ToFD converts wire form back, validating it.
func (j FDJSON) ToFD() (fd.FD, error) {
	var lhs fd.AttrSet
	for _, a := range j.LHS {
		if a < 0 || a >= fd.MaxAttrs {
			return fd.FD{}, fmt.Errorf("persist: LHS attribute %d out of range", a)
		}
		lhs = lhs.Add(a)
	}
	return fd.New(lhs, j.RHS)
}

// FromLabeling converts a labeling to wire form.
func FromLabeling(l belief.Labeling) LabelingJSON {
	return LabelingJSON{
		Pair:      [2]int{l.Pair.A, l.Pair.B},
		Marked:    l.Marked.Attrs(),
		Abstained: l.Abstained,
	}
}

// ToLabeling converts wire form back, validating the pair.
func (j LabelingJSON) ToLabeling() (belief.Labeling, error) {
	if j.Pair[0] == j.Pair[1] || j.Pair[0] < 0 || j.Pair[1] < 0 {
		return belief.Labeling{}, fmt.Errorf("persist: invalid pair %v", j.Pair)
	}
	var marked fd.AttrSet
	for _, a := range j.Marked {
		if a < 0 || a >= fd.MaxAttrs {
			return belief.Labeling{}, fmt.Errorf("persist: marked attribute %d out of range", a)
		}
		marked = marked.Add(a)
	}
	return belief.Labeling{
		Pair:      dataset.NewPair(j.Pair[0], j.Pair[1]),
		Marked:    marked,
		Abstained: j.Abstained,
	}, nil
}

// beliefToJSON extracts the Beta vector.
func beliefToJSON(b *belief.Belief) []BetaJSON {
	if b == nil {
		return nil
	}
	out := make([]BetaJSON, b.Size())
	for i := range out {
		d := b.Dist(i)
		out[i] = BetaJSON{Alpha: d.Alpha, Beta: d.Beta}
	}
	return out
}

// NewSnapshot captures a session: the schema, the space, optional agent
// beliefs (either may be nil) and the labeling history. Measurements
// are left empty; use NewSnapshotRounds to persist full round records.
func NewSnapshot(schema *dataset.Schema, space *fd.Space, trainer, learner *belief.Belief, history [][]belief.Labeling) (*Snapshot, error) {
	rounds := make([]Round, len(history))
	for i, interaction := range history {
		rounds[i] = Round{Labeled: interaction}
	}
	return NewSnapshotRounds(schema, space, trainer, learner, rounds)
}

// NewSnapshotRounds captures a session with full per-round records:
// labelings, revisions and the round's measurements.
func NewSnapshotRounds(schema *dataset.Schema, space *fd.Space, trainer, learner *belief.Belief, rounds []Round) (*Snapshot, error) {
	if space == nil {
		return nil, fmt.Errorf("persist: nil hypothesis space")
	}
	if trainer != nil && trainer.Size() != space.Size() {
		return nil, fmt.Errorf("persist: trainer belief size %d does not match space %d", trainer.Size(), space.Size())
	}
	if learner != nil && learner.Size() != space.Size() {
		return nil, fmt.Errorf("persist: learner belief size %d does not match space %d", learner.Size(), space.Size())
	}
	snap := &Snapshot{Version: Version}
	if schema != nil {
		snap.Schema = schema.Names()
	}
	for _, f := range space.FDs() {
		snap.Space = append(snap.Space, FromFD(f))
	}
	snap.Trainer = beliefToJSON(trainer)
	snap.Learner = beliefToJSON(learner)
	for _, r := range rounds {
		ij := InteractionJSON{MAE: r.MAE, Payoff: r.Payoff}
		for _, l := range r.Labeled {
			ij.Labeled = append(ij.Labeled, FromLabeling(l))
		}
		for _, l := range r.Revisions {
			ij.Revisions = append(ij.Revisions, FromLabeling(l))
		}
		if r.Detection != nil {
			ij.Detection = &PRF1JSON{
				Precision: r.Detection.Precision,
				Recall:    r.Detection.Recall,
				F1:        r.Detection.F1,
			}
		}
		snap.History = append(snap.History, ij)
	}
	return snap, nil
}

// footerMagic opens the checksum footer — the last line of a Version-2
// snapshot file. The footer is itself one line of JSON so the file
// remains a plain JSON stream, but it is located positionally (last
// line, fixed prefix) so detection never depends on parsing a possibly
// corrupt body first.
const footerMagic = `{"footer":"crc32"`

// footerJSON is the wire form of the checksum footer.
type footerJSON struct {
	Footer string `json:"footer"`
	Sum    string `json:"sum"`
}

// Write serializes the snapshot as indented JSON followed by a one-line
// CRC-32 footer covering every body byte. The output is deterministic:
// Write∘Read is the identity on Write's output.
func (s *Snapshot) Write(w io.Writer) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("persist: encoding snapshot: %w", err)
	}
	fmt.Fprintf(&buf, footerMagic+`,"sum":"%08x"}`+"\n", crc32.ChecksumIEEE(buf.Bytes()))
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	return nil
}

// WriteFile writes the snapshot to a file, fsyncing before close so the
// checkpoint survives a crash immediately after return.
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := s.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	return f.Close()
}

// Read parses a snapshot, verifies its checksum footer when present
// (legacy checksum-less Version-1 snapshots still read), and validates
// its version. Failed checksums and unparseable bytes come back as
// ErrCorrupt.
func Read(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("persist: reading snapshot: %w", err)
	}
	return decodeSnapshot(data)
}

// decodeSnapshot is Read over bytes already in memory.
func decodeSnapshot(data []byte) (*Snapshot, error) {
	body, sum, hasFooter, err := splitChecksumFooter(data)
	if err != nil {
		return nil, err
	}
	if hasFooter {
		if got := crc32.ChecksumIEEE(body); got != sum {
			return nil, fmt.Errorf("%w: CRC-32 mismatch (footer %08x, body %08x)", ErrCorrupt, sum, got)
		}
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("%w: decoding snapshot: %v", ErrCorrupt, err)
	}
	if snap.Version < minVersion || snap.Version > Version {
		return nil, fmt.Errorf("persist: unsupported snapshot version %d (want %d..%d)", snap.Version, minVersion, Version)
	}
	return &snap, nil
}

// splitChecksumFooter separates the snapshot body from the checksum
// footer. A last line that opens with the footer magic is a footer —
// and from there any malformation is ErrCorrupt, never a silent
// fallback to the unverified legacy path. Input without a footer line
// is a legacy snapshot: the whole buffer is the body.
func splitChecksumFooter(data []byte) (body []byte, sum uint32, hasFooter bool, err error) {
	trimmed := data
	if n := len(trimmed); n > 0 && trimmed[n-1] == '\n' {
		trimmed = trimmed[:n-1]
	}
	i := bytes.LastIndexByte(trimmed, '\n')
	last := trimmed[i+1:]
	if !bytes.HasPrefix(last, []byte(footerMagic)) {
		return data, 0, false, nil
	}
	var f footerJSON
	if uerr := json.Unmarshal(last, &f); uerr != nil || f.Footer != "crc32" {
		return nil, 0, false, fmt.Errorf("%w: malformed checksum footer %q", ErrCorrupt, last)
	}
	v, perr := strconv.ParseUint(f.Sum, 16, 32)
	if perr != nil {
		return nil, 0, false, fmt.Errorf("%w: malformed checksum %q", ErrCorrupt, f.Sum)
	}
	return data[:i+1], uint32(v), true, nil
}

// ReadFile parses a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// RestoreSpace rebuilds the hypothesis space.
func (s *Snapshot) RestoreSpace() (*fd.Space, error) {
	fds := make([]fd.FD, 0, len(s.Space))
	for _, j := range s.Space {
		f, err := j.ToFD()
		if err != nil {
			return nil, err
		}
		fds = append(fds, f)
	}
	return fd.NewSpace(fds)
}

// restoreBelief rebuilds one agent's belief over the space.
func restoreBelief(space *fd.Space, params []BetaJSON) (*belief.Belief, error) {
	if params == nil {
		return nil, nil
	}
	if len(params) != space.Size() {
		return nil, fmt.Errorf("persist: %d Beta parameters for a %d-FD space", len(params), space.Size())
	}
	b := belief.New(space, stats.NewBeta(1, 1))
	for i, p := range params {
		if !(p.Alpha > 0) || !(p.Beta > 0) {
			return nil, fmt.Errorf("persist: invalid Beta(%v,%v) at hypothesis %d", p.Alpha, p.Beta, i)
		}
		b.SetDist(i, stats.Beta{Alpha: p.Alpha, Beta: p.Beta})
	}
	return b, nil
}

// RestoreTrainer rebuilds the trainer belief (nil if absent).
func (s *Snapshot) RestoreTrainer(space *fd.Space) (*belief.Belief, error) {
	return restoreBelief(space, s.Trainer)
}

// RestoreLearner rebuilds the learner belief (nil if absent).
func (s *Snapshot) RestoreLearner(space *fd.Space) (*belief.Belief, error) {
	return restoreBelief(space, s.Learner)
}

// RestoreHistory rebuilds the labeling history.
func (s *Snapshot) RestoreHistory() ([][]belief.Labeling, error) {
	out := make([][]belief.Labeling, 0, len(s.History))
	for _, ij := range s.History {
		var interaction []belief.Labeling
		for _, lj := range ij.Labeled {
			l, err := lj.ToLabeling()
			if err != nil {
				return nil, err
			}
			interaction = append(interaction, l)
		}
		out = append(out, interaction)
	}
	return out, nil
}

// RestoreRounds rebuilds the full per-round records, including
// revisions and measurements.
func (s *Snapshot) RestoreRounds() ([]Round, error) {
	out := make([]Round, 0, len(s.History))
	for _, ij := range s.History {
		r := Round{MAE: ij.MAE, Payoff: ij.Payoff}
		for _, lj := range ij.Labeled {
			l, err := lj.ToLabeling()
			if err != nil {
				return nil, err
			}
			r.Labeled = append(r.Labeled, l)
		}
		for _, lj := range ij.Revisions {
			l, err := lj.ToLabeling()
			if err != nil {
				return nil, err
			}
			r.Revisions = append(r.Revisions, l)
		}
		if ij.Detection != nil {
			r.Detection = &metrics.PRF1{
				Precision: ij.Detection.Precision,
				Recall:    ij.Detection.Recall,
				F1:        ij.Detection.F1,
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// ValidateSchema checks a reloaded snapshot against the relation it is
// being paired with.
func (s *Snapshot) ValidateSchema(schema *dataset.Schema) error {
	if len(s.Schema) == 0 {
		return nil // snapshot did not record a schema
	}
	if schema.Arity() != len(s.Schema) {
		return fmt.Errorf("persist: snapshot schema has %d attributes, relation has %d", len(s.Schema), schema.Arity())
	}
	for i, name := range s.Schema {
		if schema.Name(i) != name {
			return fmt.Errorf("persist: snapshot attribute %d is %q, relation has %q", i, name, schema.Name(i))
		}
	}
	return nil
}
