package persist

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// MultiStore replicates snapshots across N backing stores with quorum
// writes and read-repair, so losing any single backing store (one disk,
// one replica directory) loses no session:
//
//   - Put writes to every replica concurrently and acks as soon as W
//     replicas confirm (default W = majority). Stragglers finish in the
//     background; Flush waits them out.
//   - Get reads every replica, requires a read quorum of N-W+1 answers
//     (so any read intersects any committed write), returns the
//     freshest intact snapshot (most recorded rounds), and
//     synchronously repairs replicas that came back stale, corrupt or
//     missing — a dead replica that comes back heals on the first read
//     of each id.
//   - Scan reconciles the whole keyspace: per-replica recovery scans
//     (quarantining torn files), then one read-repair pass per id.
//
// Because every replica Put is individually atomic (DirStore's commit
// protocol) and Get resolves to one intact replica, a crash anywhere in
// the replicated commit leaves Get observing either the old snapshot or
// the new one, never a torn mix — the same old-or-new contract the
// single-store protocol gives, lifted to the replica set. Freshness
// ordering relies on a session's snapshot only ever growing its round
// history, which is how the service uses the store.
type MultiStore struct {
	replicas []Store
	w        int

	mu    sync.Mutex
	stats []ReplicaStats // per replica; guarded by mu
	wg    sync.WaitGroup // in-flight background (post-ack) writes
}

// ReplicaStats counts one replica's operations, failures, and repairs.
type ReplicaStats struct {
	// Ops counts operations attempted against the replica.
	Ops uint64 `json:"ops"`
	// Failures counts operations the replica failed.
	Failures uint64 `json:"failures"`
	// Repairs counts snapshots re-written onto the replica by
	// read-repair or Scan after it was found stale, corrupt or missing.
	Repairs uint64 `json:"repairs"`
	// LastErr is the replica's most recent failure, empty once an
	// operation succeeds again.
	LastErr string `json:"last_err,omitempty"`
}

// NewMultiStore builds a quorum-replicating store over the given
// replicas. writeQuorum is the number of replica acks a Put needs to
// succeed; 0 asks for a majority (len/2+1). A quorum of 1 with a single
// replica degenerates to a plain pass-through.
func NewMultiStore(replicas []Store, writeQuorum int) (*MultiStore, error) {
	if len(replicas) == 0 {
		return nil, errors.New("persist: multistore needs at least one replica")
	}
	w := writeQuorum
	if w == 0 {
		w = len(replicas)/2 + 1
	}
	if w < 1 || w > len(replicas) {
		return nil, fmt.Errorf("persist: write quorum %d outside 1..%d", writeQuorum, len(replicas))
	}
	return &MultiStore{
		replicas: replicas,
		w:        w,
		stats:    make([]ReplicaStats, len(replicas)),
	}, nil
}

// Replicas reports how many backing stores the multistore replicates
// across, and WriteQuorum how many acks a Put requires.
func (s *MultiStore) Replicas() int    { return len(s.replicas) }
func (s *MultiStore) WriteQuorum() int { return s.w }

// Stats returns a copy of the per-replica operation counters, in
// replica order.
func (s *MultiStore) Stats() []ReplicaStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ReplicaStats(nil), s.stats...)
}

// note records one replica operation's outcome.
func (s *MultiStore) note(i int, err error, repaired bool) {
	s.mu.Lock()
	s.stats[i].Ops++
	if err != nil {
		s.stats[i].Failures++
		s.stats[i].LastErr = err.Error()
	} else {
		s.stats[i].LastErr = ""
	}
	if repaired {
		s.stats[i].Repairs++
	}
	s.mu.Unlock()
}

// Flush waits for background (post-ack) replica writes to finish. Call
// it before inspecting replicas directly, and at process shutdown.
func (s *MultiStore) Flush() { s.wg.Wait() }

// Put implements Store: the snapshot is written to every replica
// concurrently and the call returns once W replicas acked. Replicas
// still in flight at ack time complete in the background (Flush waits
// for them); if more than N-W replicas fail, the joined errors are
// returned and the Put does not count as committed — though replicas
// that did take the write keep it, which is exactly the ambiguity the
// old-or-new read path resolves.
func (s *MultiStore) Put(ctx context.Context, id string, snap *Snapshot) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := ValidateID(id); err != nil {
		return err
	}
	n := len(s.replicas)
	type result struct {
		i   int
		err error
	}
	results := make(chan result, n)
	s.wg.Add(n)
	for i, r := range s.replicas {
		go func(i int, r Store) {
			defer s.wg.Done()
			err := r.Put(ctx, id, snap)
			s.note(i, err, false)
			results <- result{i, err}
		}(i, r)
	}
	acks, fails := 0, 0
	var errs []error
	for seen := 0; seen < n; seen++ {
		res := <-results
		if res.err == nil {
			acks++
		} else {
			fails++
			errs = append(errs, fmt.Errorf("replica %d: %w", res.i, res.err))
		}
		if acks >= s.w {
			return nil // quorum reached; stragglers finish in background
		}
		if fails > n-s.w {
			return fmt.Errorf("persist: put %q acked by %d of %d replicas (need %d): %w",
				id, acks, n, s.w, errors.Join(errs...))
		}
	}
	// Unreachable: one of the two branches above fires by the last result.
	return fmt.Errorf("persist: put %q acked by %d of %d replicas (need %d): %w",
		id, acks, n, s.w, errors.Join(errs...))
}

// readResult is one replica's answer to a Get.
type readResult struct {
	snap *Snapshot
	err  error
}

// definitive reports whether a replica read error cannot be improved by
// retrying the replica: the id is absent, malformed, or the bytes are
// corrupt. Anything else (I/O faults, cancellations) is transient.
func definitive(err error) bool {
	return errors.Is(err, ErrNotFound) || errors.Is(err, ErrBadID) || errors.Is(err, ErrCorrupt)
}

// readAll fetches id from every replica concurrently.
func (s *MultiStore) readAll(ctx context.Context, id string) []readResult {
	reads := make([]readResult, len(s.replicas))
	var wg sync.WaitGroup
	for i, r := range s.replicas {
		wg.Add(1)
		go func(i int, r Store) {
			defer wg.Done()
			snap, err := r.Get(ctx, id)
			s.note(i, err, false)
			reads[i] = readResult{snap, err}
		}(i, r)
	}
	wg.Wait()
	return reads
}

// winner picks the freshest intact read: the snapshot with the longest
// round history, ties to the lowest replica index. Returns -1 when no
// replica produced a snapshot.
func winner(reads []readResult) int {
	best := -1
	for i, r := range reads {
		if r.snap == nil {
			continue
		}
		if best < 0 || len(r.snap.History) > len(reads[best].snap.History) {
			best = i
		}
	}
	return best
}

// Get implements Store: every replica is read, the freshest intact
// snapshot among a read quorum wins, and stale, corrupt or missing
// replicas are repaired in place with the winner before returning.
//
// The read quorum is N-W+1 answers, where an answer is a snapshot or a
// definitive error (not-found, corrupt) — any N-W+1 answering replicas
// must intersect the W replicas that acked a committed Put, so the
// winner is never older than the last committed write and N-W+1
// not-founds prove genuine absence. Fewer answers than that and a
// committed write may be hiding entirely on the unreachable replicas —
// returning the best visible copy could hand back stale state that a
// later checkpoint re-commits over the newer one — so Get fails with
// the transient replica errors instead and the caller retries. With a
// full quorum of answers the error classifies the situation: all
// absent is ErrNotFound, any corrupt (with the rest absent) is
// ErrCorrupt.
func (s *MultiStore) Get(ctx context.Context, id string) (*Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	reads := s.readAll(ctx, id)
	n := len(s.replicas)
	answers := 0
	var transient, corrupt []error
	for i, r := range reads {
		switch {
		case r.snap != nil:
			answers++
		case definitive(r.err):
			answers++
			if errors.Is(r.err, ErrCorrupt) {
				corrupt = append(corrupt, fmt.Errorf("replica %d: %w", i, r.err))
			}
		default:
			transient = append(transient, fmt.Errorf("replica %d: %w", i, r.err))
		}
	}
	if need := n - s.w + 1; answers < need {
		return nil, fmt.Errorf("persist: get %q answered by %d of %d replicas, need %d for a read quorum: %w",
			id, answers, n, need, errors.Join(transient...))
	}
	best := winner(reads)
	if best < 0 {
		if len(corrupt) > 0 {
			return nil, fmt.Errorf("persist: get %q: every stored copy is rotten: %w", id, errors.Join(corrupt...))
		}
		return nil, fmt.Errorf("%w: %q (%d of %d replicas answered)", ErrNotFound, id, answers, n)
	}
	win := reads[best].snap
	s.repair(ctx, id, win, reads, best)
	return win, nil
}

// repair re-writes the winning snapshot onto every replica whose read
// came back stale, corrupt or definitively missing. Best-effort and
// synchronous: a replica that cannot take the repair stays broken until
// the next read. Replicas that failed transiently are left alone — they
// may hold a copy at least as fresh.
func (s *MultiStore) repair(ctx context.Context, id string, win *Snapshot, reads []readResult, best int) {
	for i, r := range reads {
		if i == best {
			continue
		}
		stale := r.snap != nil && len(r.snap.History) < len(win.History)
		missing := r.snap == nil && definitive(r.err)
		if !stale && !missing {
			continue
		}
		err := s.replicas[i].Put(ctx, id, win)
		s.note(i, err, err == nil)
	}
}

// Delete implements Store. Every replica is asked; the delete succeeds
// only when no replica failed for a reason other than not-found —
// leaving a stale copy behind would let a later read-repair resurrect
// the snapshot. All replicas answering not-found is ErrNotFound.
func (s *MultiStore) Delete(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := ValidateID(id); err != nil {
		return err
	}
	var (
		wg      sync.WaitGroup
		deleted = make([]error, len(s.replicas))
	)
	for i, r := range s.replicas {
		wg.Add(1)
		go func(i int, r Store) {
			defer wg.Done()
			err := r.Delete(ctx, id)
			s.note(i, err, false)
			deleted[i] = err
		}(i, r)
	}
	wg.Wait()
	notFound, ok := 0, 0
	var errs []error
	for i, err := range deleted {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrNotFound):
			notFound++
		default:
			errs = append(errs, fmt.Errorf("replica %d: %w", i, err))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("persist: delete %q left %d replica(s) undeleted: %w", id, len(errs), errors.Join(errs...))
	}
	if ok == 0 {
		return fmt.Errorf("%w: %q (all %d replicas)", ErrNotFound, id, len(s.replicas))
	}
	return nil
}

// List implements Store: the union of ids across every answering
// replica, sorted. Only when every replica fails does List fail — a
// dead replica must not hide the ids its peers still hold.
func (s *MultiStore) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type listing struct {
		ids []string
		err error
	}
	lists := make([]listing, len(s.replicas))
	var wg sync.WaitGroup
	for i, r := range s.replicas {
		wg.Add(1)
		go func(i int, r Store) {
			defer wg.Done()
			ids, err := r.List(ctx)
			s.note(i, err, false)
			lists[i] = listing{ids, err}
		}(i, r)
	}
	wg.Wait()
	seen := make(map[string]struct{})
	failures := 0
	var errs []error
	for i, l := range lists {
		if l.err != nil {
			failures++
			errs = append(errs, fmt.Errorf("replica %d: %w", i, l.err))
			continue
		}
		for _, id := range l.ids {
			seen[id] = struct{}{}
		}
	}
	if failures == len(s.replicas) {
		return nil, fmt.Errorf("persist: list failed on every replica: %w", errors.Join(errs...))
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// MultiScanResult reports what a reconciling Scan found.
type MultiScanResult struct {
	// OK lists ids readable (post-repair) on the winning replica, sorted.
	OK []string
	// Repaired lists ids for which at least one replica had to be
	// re-written with the winner, sorted.
	Repaired []string
	// Failed lists ids no replica could produce intact, sorted.
	Failed []string
	// ReplicaScans holds each replica's own recovery scan result, when
	// the replica supports scanning (DirStore); nil entries otherwise.
	ReplicaScans []*ScanResult
}

// scanner is the optional per-replica recovery interface (DirStore).
type scanner interface {
	Scan(ctx context.Context) (ScanResult, error)
}

// Scan reconciles the replica set — the startup recovery path for a
// replicated store. Each replica that supports it first runs its own
// recovery scan (quarantining torn snapshots, removing orphaned temp
// files); then every id known to any replica is read through the
// read-repair path, converging stale and freshly-quarantined replicas
// onto the freshest intact copy. Like DirStore.Scan it fails only on
// errors that leave the keyspace unknowable, never on individual rotten
// snapshots.
func (s *MultiStore) Scan(ctx context.Context) (MultiScanResult, error) {
	var res MultiScanResult
	res.ReplicaScans = make([]*ScanResult, len(s.replicas))
	for i, r := range s.replicas {
		sc, ok := r.(scanner)
		if !ok {
			continue
		}
		sr, err := sc.Scan(ctx)
		if err != nil {
			// A replica whose directory cannot even be walked is treated as
			// down: its peers still define the keyspace.
			s.note(i, err, false)
			continue
		}
		res.ReplicaScans[i] = &sr
	}
	ids, err := s.List(ctx)
	if err != nil {
		return res, err
	}
	repairedBefore := func() uint64 {
		var total uint64
		s.mu.Lock()
		for _, st := range s.stats {
			total += st.Repairs
		}
		s.mu.Unlock()
		return total
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		before := repairedBefore()
		if _, err := s.Get(ctx, id); err != nil {
			res.Failed = append(res.Failed, id)
			continue
		}
		res.OK = append(res.OK, id)
		if repairedBefore() > before {
			res.Repaired = append(res.Repaired, id)
		}
	}
	sort.Strings(res.OK)
	sort.Strings(res.Repaired)
	sort.Strings(res.Failed)
	return res, nil
}
