package persist

import (
	"strings"
	"testing"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/metrics"
)

func TestSnapshotRoundsRoundTrip(t *testing.T) {
	schema, space, _, learner, _ := fixture(t)
	rounds := []Round{
		{
			Labeled: []belief.Labeling{
				{Pair: dataset.NewPair(0, 1), Marked: fd.NewAttrSet(1)},
				{Pair: dataset.NewPair(2, 5), Abstained: true},
			},
			MAE:       0.25,
			Payoff:    1.5,
			Detection: &metrics.PRF1{Precision: 0.75, Recall: 0.5, F1: 0.6},
		},
		{
			Labeled: []belief.Labeling{
				{Pair: dataset.NewPair(1, 3)},
			},
			Revisions: []belief.Labeling{
				{Pair: dataset.NewPair(0, 1)},
			},
			MAE:       0.125,
			Payoff:    0.875,
			Detection: &metrics.PRF1{Precision: 1, Recall: 0.5, F1: 2.0 / 3.0},
		},
	}
	snap, err := NewSnapshotRounds(schema, space, nil, learner, rounds)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := snap.Write(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.RestoreRounds()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rounds) {
		t.Fatalf("restored %d rounds, want %d", len(got), len(rounds))
	}
	for i, r := range rounds {
		g := got[i]
		if g.MAE != r.MAE || g.Payoff != r.Payoff {
			t.Fatalf("round %d measurements: %v/%v, want %v/%v", i, g.MAE, g.Payoff, r.MAE, r.Payoff)
		}
		if *g.Detection != *r.Detection {
			t.Fatalf("round %d detection: %+v, want %+v", i, *g.Detection, *r.Detection)
		}
		if len(g.Labeled) != len(r.Labeled) || len(g.Revisions) != len(r.Revisions) {
			t.Fatalf("round %d shape: %d/%d labelings, want %d/%d",
				i, len(g.Labeled), len(g.Revisions), len(r.Labeled), len(r.Revisions))
		}
		for j := range r.Labeled {
			if g.Labeled[j] != r.Labeled[j] {
				t.Fatalf("round %d labeling %d: %+v, want %+v", i, j, g.Labeled[j], r.Labeled[j])
			}
		}
		for j := range r.Revisions {
			if g.Revisions[j] != r.Revisions[j] {
				t.Fatalf("round %d revision %d: %+v, want %+v", i, j, g.Revisions[j], r.Revisions[j])
			}
		}
	}
}

func TestHistoryOnlySnapshotOmitsRoundFields(t *testing.T) {
	// The measurement fields are omitempty additions to the Version-1
	// wire format: a snapshot built from plain history must serialize
	// without them, so pre-existing readers see the exact bytes they
	// always did.
	schema, space, trainer, learner, history := fixture(t)
	snap, err := NewSnapshot(schema, space, trainer, learner, history)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := snap.Write(&sb); err != nil {
		t.Fatal(err)
	}
	wire := sb.String()
	for _, field := range []string{"revisions", "mae", "payoff", "detection"} {
		if strings.Contains(wire, `"`+field+`"`) {
			t.Fatalf("history-only snapshot leaked %q onto the wire:\n%s", field, wire)
		}
	}
}

func TestRestoreRoundsFromLegacySnapshot(t *testing.T) {
	// A snapshot written before the measurement fields existed parses
	// into rounds with zero measurements and no revisions.
	legacy := `{
	  "version": 1,
	  "schema": ["a", "b"],
	  "space": [{"lhs": [0], "rhs": 1}],
	  "history": [
	    {"labeled": [{"pair": [0, 1]}, {"pair": [2, 3], "abstained": true}]}
	  ]
	}`
	snap, err := Read(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := snap.RestoreRounds()
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 1 {
		t.Fatalf("restored %d rounds", len(rounds))
	}
	r := rounds[0]
	if r.MAE != 0 || r.Payoff != 0 || r.Detection != nil || r.Revisions != nil {
		t.Fatalf("legacy round grew measurements: %+v", r)
	}
	if len(r.Labeled) != 2 {
		t.Fatalf("legacy round labelings = %d", len(r.Labeled))
	}
	// RestoreHistory and RestoreRounds agree on the labelings.
	hist, err := snap.RestoreHistory()
	if err != nil {
		t.Fatal(err)
	}
	for j := range hist[0] {
		if hist[0][j] != r.Labeled[j] {
			t.Fatalf("RestoreHistory/RestoreRounds diverge at %d: %+v vs %+v", j, hist[0][j], r.Labeled[j])
		}
	}
}
