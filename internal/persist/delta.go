package persist

import (
	"context"
	"fmt"

	"exptrain/internal/belief"
)

// RoundDelta is the wire form of one submitted round's effect on a
// session — the unit the write-ahead log records. It carries the
// round's interaction plus the learner's full post-round belief and
// sampler RNG state, so replaying a snapshot's committed suffix is a
// pure data fold (ApplyDelta): no belief arithmetic re-runs, which is
// what lets a resumed session stay bit-identical to the live one. A
// delta's size is O(space), constant in the session's history, versus
// a full snapshot's O(space + rounds) — the asymmetry the WAL's
// durability win comes from.
type RoundDelta struct {
	// Session is the snapshot id the delta belongs to.
	Session string `json:"session"`
	// Round is the zero-based round index: applying the delta requires
	// the snapshot's history to hold exactly Round interactions.
	Round int `json:"round"`
	// Interaction is the round's labelings, revisions and measurements.
	Interaction InteractionJSON `json:"interaction"`
	// Learner is the learner's full Beta vector after the round.
	Learner []BetaJSON `json:"learner,omitempty"`
	// LearnerRNG is the learner's sampler RNG state after the round
	// (four xoshiro256** words), making a replayed resume draw-exact.
	LearnerRNG []uint64 `json:"learner_rng,omitempty"`
}

// RoundAppender is the optional store capability behind WAL-backed
// durability: append the given round deltas durably (one group commit)
// without rewriting full snapshots. Implementations ack only once the
// records are fsynced (quorum-fsynced under replication); a returned
// error means the rounds must not be considered durable — though, as
// with any crashed commit, they may still surface on recovery (the
// old-or-new contract).
type RoundAppender interface {
	AppendRounds(ctx context.Context, deltas []*RoundDelta) error
}

// appenderProvider is the optional interface capability-forwarding
// wrappers (persist/faulty, MultiStore) implement so AppenderOf can see
// through them: the wrapper reports a non-nil appender only when its
// inner store genuinely supports round appends.
type appenderProvider interface {
	RoundAppender() RoundAppender
}

// AppenderOf reports the store's round-append capability: the store
// itself when it implements RoundAppender, whatever a wrapper forwards
// to, or nil when snapshots are the only durability the store offers.
func AppenderOf(s Store) RoundAppender {
	if p, ok := s.(appenderProvider); ok {
		return p.RoundAppender()
	}
	if a, ok := s.(RoundAppender); ok {
		return a
	}
	return nil
}

// ApplyDelta folds one round delta into a snapshot, in place. A delta
// the snapshot already contains (Round < len(History)) is skipped —
// replay after a crash legitimately revisits folded rounds — and a
// delta beyond the snapshot's frontier (Round > len(History)) is a
// gap: the log lost a committed round, so the fold must stop rather
// than fabricate history. applied reports whether the delta advanced
// the snapshot.
func ApplyDelta(snap *Snapshot, d *RoundDelta) (applied bool, err error) {
	if d == nil {
		return false, fmt.Errorf("persist: nil round delta")
	}
	switch {
	case d.Round < len(snap.History):
		return false, nil // already folded into the snapshot
	case d.Round > len(snap.History):
		return false, fmt.Errorf("%w: round delta %d leaves a gap after %d recorded round(s)",
			ErrCorrupt, d.Round, len(snap.History))
	}
	if d.Learner != nil && len(snap.Learner) > 0 && len(d.Learner) != len(snap.Learner) {
		return false, fmt.Errorf("%w: round delta %d carries %d learner parameters, snapshot has %d",
			ErrCorrupt, d.Round, len(d.Learner), len(snap.Learner))
	}
	snap.History = append(snap.History, d.Interaction)
	if d.Learner != nil {
		snap.Learner = append([]BetaJSON(nil), d.Learner...)
	}
	if d.LearnerRNG != nil {
		snap.LearnerRNG = append([]uint64(nil), d.LearnerRNG...)
	}
	return true, nil
}

// BeliefToJSON extracts an agent belief's Beta vector in wire form
// (nil belief → nil), for callers assembling round deltas.
func BeliefToJSON(b *belief.Belief) []BetaJSON {
	return beliefToJSON(b)
}

// FromRound converts one recorded round to its wire form, mirroring
// how NewSnapshotRounds serializes history entries.
func FromRound(r Round) InteractionJSON {
	ij := InteractionJSON{MAE: r.MAE, Payoff: r.Payoff}
	for _, l := range r.Labeled {
		ij.Labeled = append(ij.Labeled, FromLabeling(l))
	}
	for _, l := range r.Revisions {
		ij.Revisions = append(ij.Revisions, FromLabeling(l))
	}
	if r.Detection != nil {
		ij.Detection = &PRF1JSON{
			Precision: r.Detection.Precision,
			Recall:    r.Detection.Recall,
			F1:        r.Detection.F1,
		}
	}
	return ij
}

// WalStats is a WAL-backed store's operational counters, surfaced on
// /v1/healthz. Aggregating wrappers (MultiStore) sum the counts and
// take the worst fsync p99 across replicas.
type WalStats struct {
	// Appended counts round records durably committed since open.
	Appended uint64 `json:"appended_records"`
	// Unflushed counts records enqueued to the group committer but not
	// yet fsynced — the crash-loss window at this instant.
	Unflushed int `json:"unflushed_records"`
	// BatchRecords is the size of the most recent group-commit batch.
	BatchRecords int `json:"batch_records"`
	// Fsyncs counts group commits (one fsync each) since open.
	Fsyncs uint64 `json:"fsyncs"`
	// FsyncP99Ms is the 99th-percentile fsync latency over the recent
	// window, in milliseconds.
	FsyncP99Ms float64 `json:"fsync_p99_ms"`
	// CompactionLag counts committed records not yet folded into a
	// snapshot — replay work a recovery would redo.
	CompactionLag int `json:"compaction_lag"`
	// Segments counts live log segment files on disk.
	Segments int `json:"segments"`
}

// merge folds another replica's WAL counters into s (sums, worst p99).
func (s *WalStats) merge(o WalStats) {
	s.Appended += o.Appended
	s.Unflushed += o.Unflushed
	if o.BatchRecords > s.BatchRecords {
		s.BatchRecords = o.BatchRecords
	}
	s.Fsyncs += o.Fsyncs
	if o.FsyncP99Ms > s.FsyncP99Ms {
		s.FsyncP99Ms = o.FsyncP99Ms
	}
	s.CompactionLag += o.CompactionLag
	s.Segments += o.Segments
}

// WalStatter is the optional store interface surfacing WAL counters
// (wal.Store, MultiStore over WAL replicas, persist/faulty wrappers).
type WalStatter interface {
	WalStats() (WalStats, bool)
}
