package datagen

import (
	"testing"

	"exptrain/internal/fd"
)

func allGenerators() []Generator {
	return []Generator{OMDB, Airport, Hospital, Tax}
}

func TestExactFDsHoldOnCleanData(t *testing.T) {
	for _, gen := range allGenerators() {
		ds := gen(300, 1)
		for _, f := range ds.ExactFDs {
			if g := fd.G1(f, ds.Rel); g != 0 {
				t.Errorf("%s: exact FD %v has g1=%v on clean data",
					ds.Name, f.Render(ds.Rel.Schema().Names()), g)
			}
		}
	}
}

func TestExactFDsHaveEvidence(t *testing.T) {
	// An exact FD with no agreeing pairs is vacuous; the generators must
	// produce duplicates so the FDs are actually supported (and
	// violable by the error generator).
	for _, gen := range allGenerators() {
		ds := gen(300, 2)
		for _, f := range ds.ExactFDs {
			st := fd.ComputeStats(f, ds.Rel)
			if st.Agreeing < 20 {
				t.Errorf("%s: exact FD %v has only %d agreeing pairs",
					ds.Name, f.Render(ds.Rel.Schema().Names()), st.Agreeing)
			}
		}
	}
}

func TestDatasetShapesMatchPaper(t *testing.T) {
	// Hospital: 19 attributes, six exact FDs; Tax: 15 attributes, four
	// exact FDs (§C.1).
	h := Hospital(200, 3)
	if got := h.Rel.Schema().Arity(); got != 19 {
		t.Errorf("Hospital arity = %d, want 19", got)
	}
	if got := len(h.ExactFDs); got != 6 {
		t.Errorf("Hospital exact FDs = %d, want 6", got)
	}
	x := Tax(200, 3)
	if got := x.Rel.Schema().Arity(); got != 15 {
		t.Errorf("Tax arity = %d, want 15", got)
	}
	if got := len(x.ExactFDs); got != 4 {
		t.Errorf("Tax exact FDs = %d, want 4", got)
	}
}

func TestRowCounts(t *testing.T) {
	for _, gen := range allGenerators() {
		for _, n := range []int{50, 300} {
			ds := gen(n, 4)
			if ds.Rel.NumRows() != n {
				t.Errorf("%s(%d) produced %d rows", ds.Name, n, ds.Rel.NumRows())
			}
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	for _, gen := range allGenerators() {
		a := gen(150, 7)
		b := gen(150, 7)
		for i := 0; i < a.Rel.NumRows(); i++ {
			for j := 0; j < a.Rel.Schema().Arity(); j++ {
				if a.Rel.Value(i, j) != b.Rel.Value(i, j) {
					t.Fatalf("%s: same seed diverged at (%d,%d)", a.Name, i, j)
				}
			}
		}
		c := gen(150, 8)
		same := true
		for i := 0; i < a.Rel.NumRows() && same; i++ {
			for j := 0; j < a.Rel.Schema().Arity(); j++ {
				if a.Rel.Value(i, j) != c.Rel.Value(i, j) {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical data", a.Name)
		}
	}
}

func TestSpaceBuilds38FDs(t *testing.T) {
	for _, gen := range allGenerators() {
		ds := gen(200, 5)
		space := ds.Space(3, 38)
		if space.Size() != 38 {
			t.Errorf("%s: space size %d, want 38", ds.Name, space.Size())
		}
		for _, f := range ds.ExactFDs {
			if !space.Contains(f) {
				t.Errorf("%s: space missing target %v", ds.Name, f)
			}
		}
		// Every FD respects the four-attribute bound of §C.1.
		for i := 0; i < space.Size(); i++ {
			if space.FD(i).Attrs().Count() > 4 {
				t.Errorf("%s: FD %v exceeds 4 attributes", ds.Name, space.FD(i))
			}
		}
	}
}

func TestOMDBAlternativesImperfect(t *testing.T) {
	// Table 2's alternatives must hold with exceptions on clean data:
	// title → year/type/genre break on remakes.
	ds := OMDB(400, 6)
	schema := ds.Rel.Schema()
	for _, alt := range []string{"title->year", "title->genre", "title->type"} {
		f := fd.MustParse(alt, schema)
		if fd.G1(f, ds.Rel) == 0 {
			t.Errorf("OMDB alternative %s holds exactly; remakes missing", alt)
		}
	}
}

func TestAirportAlternativesImperfect(t *testing.T) {
	ds := Airport(400, 6)
	schema := ds.Rel.Schema()
	for _, alt := range []string{"facilityname->type", "facilityname->manager"} {
		f := fd.MustParse(alt, schema)
		if fd.G1(f, ds.Rel) == 0 {
			t.Errorf("AIRPORT alternative %s holds exactly; shared names missing", alt)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range AllNames() {
		gen, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		ds := gen(60, 1)
		if ds.Name != name {
			t.Errorf("ByName(%q) generated %q", name, ds.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
	// Airport accepts both spellings.
	if _, err := ByName("Airport"); err != nil {
		t.Errorf("ByName(Airport): %v", err)
	}
}
