// Package datagen generates the synthetic stand-ins for the paper's four
// evaluation datasets. The real OMDB, Alaska AIRPORT, Hospital and Tax
// data are not distributable, so each generator produces a clean
// relation with the same *FD structure* the paper relies on: the
// scenario target FDs of Table 2 hold exactly, plausible alternative FDs
// hold with natural exceptions, and the remaining attributes are
// independent fillers. Experiments then dirty the clean relations with
// internal/errgen exactly as the paper does with BART.
//
// All generation is deterministic for a given seed.
package datagen

import (
	"fmt"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// Dataset bundles a generated relation with its FD ground truth.
type Dataset struct {
	// Name matches the paper's dataset name.
	Name string
	// Rel is the clean generated relation.
	Rel *dataset.Relation
	// ExactFDs are the dependencies that hold with zero violations on
	// the clean relation (the injection targets).
	ExactFDs []fd.FD
	// SpaceAttrs are the attribute positions over which experiments
	// build the hypothesis space (§C.1 uses 38-FD spaces; restricting to
	// the scenario-relevant attributes keeps the space meaningful).
	SpaceAttrs []int
}

// Space builds the experiment hypothesis space for the dataset: the
// ground-truth exact FDs first (they must be learnable), then FDs of up
// to maxLHS attributes over SpaceAttrs in canonical order, truncated to
// maxFDs total (§C.1 uses 38-FD spaces).
func (d *Dataset) Space(maxLHS, maxFDs int) *fd.Space {
	if maxFDs > 0 && len(d.ExactFDs) > maxFDs {
		panic(fmt.Sprintf("datagen: %s has %d targets, more than maxFDs=%d", d.Name, len(d.ExactFDs), maxFDs))
	}
	seen := make(map[fd.FD]struct{}, maxFDs)
	fds := make([]fd.FD, 0, maxFDs)
	for _, f := range d.ExactFDs {
		if _, dup := seen[f]; dup {
			continue
		}
		seen[f] = struct{}{}
		fds = append(fds, f)
	}
	for _, f := range fd.MustEnumerate(fd.SpaceConfig{
		Arity:  d.Rel.Schema().Arity(),
		MaxLHS: maxLHS,
		Attrs:  d.SpaceAttrs,
	}) {
		if maxFDs > 0 && len(fds) >= maxFDs {
			break
		}
		if _, dup := seen[f]; dup {
			continue
		}
		seen[f] = struct{}{}
		fds = append(fds, f)
	}
	return fd.MustNewSpace(fds)
}

// Generator produces a dataset of about n rows from a seed.
type Generator func(n int, seed uint64) *Dataset

// ByName returns the generator for a paper dataset name.
func ByName(name string) (Generator, error) {
	switch name {
	case "OMDB":
		return OMDB, nil
	case "AIRPORT", "Airport":
		return Airport, nil
	case "Hospital":
		return Hospital, nil
	case "Tax":
		return Tax, nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
}

// AllNames lists the four paper datasets in presentation order.
func AllNames() []string { return []string{"OMDB", "AIRPORT", "Hospital", "Tax"} }

// pick returns a deterministic pseudo-random element of vals.
func pick(rng *stats.RNG, vals []string) string { return vals[rng.Intn(len(vals))] }

// OMDB generates a movie relation over (title, year, genre, type,
// rating, language, runtime). Structure (Table 2 scenarios 4 and 5):
//
//   - (title, year) → genre and (title, year) → type hold exactly;
//   - rating → type holds exactly (type is a function of the rating
//     band, e.g. TV ratings imply series);
//   - title → year/type/genre (the alternatives) hold with exceptions:
//     some titles are remade in a second year with a different genre or
//     type.
func OMDB(n int, seed uint64) *Dataset {
	rng := stats.NewRNG(seed ^ 0x00DBA5A5)
	schema := dataset.MustSchema("title", "year", "genre", "type", "rating", "language", "runtime")

	genres := []string{"Drama", "Comedy", "Action", "Horror", "Sci-Fi", "Romance", "Thriller", "Documentary"}
	ratings := []string{"G", "PG", "PG-13", "R", "TV-14", "TV-MA"}
	languages := []string{"English", "French", "Spanish", "German"}
	typeOf := func(rating string) string {
		if rating == "TV-14" || rating == "TV-MA" {
			return "series"
		}
		return "movie"
	}

	// World: ~n/6 titles; ~30% of titles have a remake in a second year.
	numTitles := n / 6
	if numTitles < 8 {
		numTitles = 8
	}
	type release struct{ title, year, genre, rating string }
	var releases []release
	for t := 0; t < numTitles; t++ {
		title := fmt.Sprintf("Movie-%03d", t)
		year := fmt.Sprint(1960 + rng.Intn(60))
		releases = append(releases, release{title, year, pick(rng, genres), pick(rng, ratings)})
		if rng.Float64() < 0.3 {
			year2 := fmt.Sprint(1960 + rng.Intn(60))
			if year2 != year {
				// A remake: same title, new year, independent genre and
				// rating — this is what breaks title → genre/type/year.
				releases = append(releases, release{title, year2, pick(rng, genres), pick(rng, ratings)})
			}
		}
	}

	rel := dataset.New(schema)
	for i := 0; i < n; i++ {
		r := releases[rng.Intn(len(releases))]
		rel.MustAppend(dataset.Tuple{
			r.title, r.year, r.genre, typeOf(r.rating), r.rating,
			pick(rng, languages), fmt.Sprint(60 + rng.Intn(4)*30),
		})
	}
	return &Dataset{
		Name: "OMDB",
		Rel:  rel,
		ExactFDs: []fd.FD{
			fd.MustParse("title,year->genre", schema),
			fd.MustParse("title,year->type", schema),
			fd.MustParse("rating->type", schema),
		},
		SpaceAttrs: []int{
			schema.MustIndex("title"), schema.MustIndex("year"),
			schema.MustIndex("genre"), schema.MustIndex("type"),
			schema.MustIndex("rating"),
		},
	}
}

// Airport generates an Alaska-airport-like relation over (sitenumber,
// facilityname, type, owner, manager, city, use). Structure (Table 2
// scenarios 1-3):
//
//   - sitenumber → facilityname/owner/manager hold exactly (sitenumber
//     identifies a facility);
//   - (facilityname, type) → manager holds exactly;
//   - manager → owner holds exactly;
//   - facilityname → type/manager/owner (the alternatives) break on
//     facilities sharing a name with different types (an airport and a
//     heliport named after the same town).
func Airport(n int, seed uint64) *Dataset {
	rng := stats.NewRNG(seed ^ 0xA1A90A7)
	schema := dataset.MustSchema("sitenumber", "facilityname", "type", "owner", "manager", "city", "use")

	types := []string{"AIRPORT", "HELIPORT", "SEAPLANE BASE"}
	cities := []string{"ANCHORAGE", "FAIRBANKS", "JUNEAU", "NOME", "BETHEL", "KODIAK"}
	uses := []string{"PU", "PR"}

	numNames := n / 10
	if numNames < 6 {
		numNames = 6
	}
	// manager is a function of (facilityname, type); owner of manager.
	managerOf := func(name, typ string) string {
		return fmt.Sprintf("MGR-%s-%s", name[len(name)-3:], typ[:2])
	}
	ownerOf := func(manager string) string {
		return "OWN-" + manager[4:]
	}

	type facility struct{ site, name, typ string }
	var facilities []facility
	site := 50000
	for f := 0; f < numNames; f++ {
		name := fmt.Sprintf("FACILITY-%03d", f)
		typ := pick(rng, types)
		facilities = append(facilities, facility{fmt.Sprintf("%d.%d*A", site, f), name, typ})
		site++
		if rng.Float64() < 0.35 {
			// Same name, different type — breaks facilityname → type.
			typ2 := pick(rng, types)
			if typ2 != typ {
				facilities = append(facilities, facility{fmt.Sprintf("%d.%d*H", site, f), name, typ2})
				site++
			}
		}
	}

	rel := dataset.New(schema)
	for i := 0; i < n; i++ {
		fa := facilities[rng.Intn(len(facilities))]
		mgr := managerOf(fa.name, fa.typ)
		rel.MustAppend(dataset.Tuple{
			fa.site, fa.name, fa.typ, ownerOf(mgr), mgr,
			pick(rng, cities), pick(rng, uses),
		})
	}
	return &Dataset{
		Name: "AIRPORT",
		Rel:  rel,
		ExactFDs: []fd.FD{
			fd.MustParse("sitenumber->facilityname", schema),
			fd.MustParse("sitenumber->owner", schema),
			fd.MustParse("sitenumber->manager", schema),
			fd.MustParse("facilityname,type->manager", schema),
			fd.MustParse("manager->owner", schema),
		},
		SpaceAttrs: []int{
			schema.MustIndex("sitenumber"), schema.MustIndex("facilityname"),
			schema.MustIndex("type"), schema.MustIndex("owner"),
			schema.MustIndex("manager"),
		},
	}
}

// Hospital generates a 19-attribute relation with six exact FDs,
// matching the shape the paper reports for the Hospital benchmark
// (§C.1: real-world dataset, 19 attributes, six exact FDs):
//
//	zip → city, zip → state, zip → county,
//	provider → hospitalname, provider → phone,
//	measurecode → measurename.
func Hospital(n int, seed uint64) *Dataset {
	rng := stats.NewRNG(seed ^ 0x4059174A1)
	schema := dataset.MustSchema(
		"provider", "hospitalname", "address", "city", "state", "zip",
		"county", "phone", "hospitaltype", "ownership", "emergency",
		"condition", "measurecode", "measurename", "score", "sample",
		"stateavg", "quarter", "source",
	)

	states := []string{"AL", "AK", "AZ", "CA", "TX", "NY"}
	counties := []string{"JEFFERSON", "MOBILE", "HOUSTON", "MARSHALL", "DALE", "BALDWIN"}
	cities := []string{"BIRMINGHAM", "DOTHAN", "SHEFFIELD", "OZARK", "GADSDEN", "FLORENCE", "BOAZ", "CULLMAN"}
	conditions := []string{"heart attack", "heart failure", "pneumonia", "surgical infection"}

	// zip world: zip determines city, state, county.
	numZips := n / 12
	if numZips < 5 {
		numZips = 5
	}
	type zipInfo struct{ zip, city, state, county string }
	zips := make([]zipInfo, numZips)
	for i := range zips {
		zips[i] = zipInfo{
			zip:    fmt.Sprintf("%05d", 35000+i),
			city:   pick(rng, cities),
			state:  pick(rng, states),
			county: pick(rng, counties),
		}
	}
	// provider world: provider determines hospital name and phone.
	numProviders := n / 8
	if numProviders < 5 {
		numProviders = 5
	}
	hospitalTypes := []string{"Acute Care", "Critical Access", "Childrens", "Psychiatric"}
	type providerInfo struct{ id, name, phone, typ string }
	providers := make([]providerInfo, numProviders)
	for i := range providers {
		providers[i] = providerInfo{
			id:    fmt.Sprintf("%06d", 10001+i),
			name:  fmt.Sprintf("HOSPITAL-%03d", i),
			phone: fmt.Sprintf("205%07d", 5550000+i),
			typ:   pick(rng, hospitalTypes),
		}
	}
	// measure world: code determines name.
	measures := []struct{ code, name string }{
		{"AMI-1", "aspirin at arrival"},
		{"AMI-2", "aspirin at discharge"},
		{"HF-1", "discharge instructions"},
		{"HF-2", "lvs assessment"},
		{"PN-2", "pneumococcal vaccination"},
		{"PN-3B", "blood culture before antibiotic"},
		{"SCIP-1", "prophylactic antibiotic"},
	}

	rel := dataset.New(schema)
	for i := 0; i < n; i++ {
		z := zips[rng.Intn(len(zips))]
		p := providers[rng.Intn(len(providers))]
		m := measures[rng.Intn(len(measures))]
		rel.MustAppend(dataset.Tuple{
			p.id, p.name,
			fmt.Sprintf("%d MAIN ST", 100+rng.Intn(900)),
			z.city, z.state, z.zip, z.county, p.phone,
			p.typ, pick(rng, []string{"Government", "Voluntary", "Proprietary"}),
			pick(rng, []string{"Yes", "No"}),
			pick(rng, conditions), m.code, m.name,
			fmt.Sprint(rng.Intn(100)), fmt.Sprint(rng.Intn(500)),
			fmt.Sprintf("%d%%", rng.Intn(100)), fmt.Sprint(1 + rng.Intn(4)),
			pick(rng, []string{"survey", "claims"}),
		})
	}
	return &Dataset{
		Name: "Hospital",
		Rel:  rel,
		ExactFDs: []fd.FD{
			fd.MustParse("zip->city", schema),
			fd.MustParse("zip->state", schema),
			fd.MustParse("zip->county", schema),
			fd.MustParse("provider->hospitalname", schema),
			fd.MustParse("provider->phone", schema),
			fd.MustParse("measurecode->measurename", schema),
		},
		SpaceAttrs: []int{
			schema.MustIndex("provider"), schema.MustIndex("hospitalname"),
			schema.MustIndex("city"), schema.MustIndex("state"),
			schema.MustIndex("zip"), schema.MustIndex("county"),
			schema.MustIndex("phone"), schema.MustIndex("measurecode"),
			schema.MustIndex("measurename"),
		},
	}
}

// Tax generates a 15-attribute relation with four exact FDs, matching
// the shape the paper reports for the synthetic Tax benchmark (§C.1: 15
// attributes, four exact FDs):
//
//	zip → city, zip → state, areacode → state, state → singleexemp.
func Tax(n int, seed uint64) *Dataset {
	rng := stats.NewRNG(seed ^ 0x7A8)
	schema := dataset.MustSchema(
		"fname", "lname", "gender", "areacode", "phone", "city", "state",
		"zip", "maritalstatus", "haschild", "salary", "rate",
		"singleexemp", "marriedexemp", "childexemp",
	)

	firstNames := []string{"JAMES", "MARY", "JOHN", "LINDA", "ROBERT", "SUSAN", "DAVID", "KAREN"}
	lastNames := []string{"SMITH", "JOHNSON", "BROWN", "DAVIS", "WILSON", "MOORE", "TAYLOR"}
	cities := []string{"SEATTLE", "PORTLAND", "DENVER", "AUSTIN", "BOSTON", "ATLANTA", "MIAMI", "RENO"}

	// Geography: state determines exemption; zip determines city and
	// state; area code determines state.
	states := []string{"WA", "OR", "CO", "TX", "MA", "GA", "FL", "NV"}
	exempOf := func(state string) string {
		return fmt.Sprint(2000 + 250*(int(state[0])+int(state[1]))%3000)
	}
	numZips := n / 15
	if numZips < 4 {
		numZips = 4
	}
	type zipInfo struct{ zip, city, state string }
	zips := make([]zipInfo, numZips)
	for i := range zips {
		zips[i] = zipInfo{
			zip:   fmt.Sprintf("%05d", 80000+i),
			city:  pick(rng, cities),
			state: states[rng.Intn(len(states))],
		}
	}
	// Area codes: each belongs to one state, and every state gets at
	// least one code (round-robin) so zip → state and areacode → state
	// can hold simultaneously.
	numCodes := 2 * len(states)
	type codeInfo struct{ code, state string }
	codes := make([]codeInfo, numCodes)
	for i := range codes {
		codes[i] = codeInfo{code: fmt.Sprint(201 + 11*i), state: states[i%len(states)]}
	}

	rel := dataset.New(schema)
	for i := 0; i < n; i++ {
		z := zips[rng.Intn(len(zips))]
		// The area code must agree with the zip's state so that
		// areacode → state holds exactly alongside zip → state; the
		// round-robin assignment above guarantees a match exists.
		matching := codes[:0:0]
		for _, c := range codes {
			if c.state == z.state {
				matching = append(matching, c)
			}
		}
		code := matching[rng.Intn(len(matching))]
		marital := pick(rng, []string{"S", "M"})
		salary := fmt.Sprint(20000 + 5000*rng.Intn(17))
		rel.MustAppend(dataset.Tuple{
			pick(rng, firstNames), pick(rng, lastNames), pick(rng, []string{"M", "F"}),
			code.code, fmt.Sprintf("%s-%07d", code.code, rng.Intn(10000000)),
			z.city, z.state, z.zip, marital,
			pick(rng, []string{"Y", "N"}), salary,
			fmt.Sprintf("%d%%", 3+rng.Intn(5)),
			exempOf(z.state), fmt.Sprint(4000 + 100*rng.Intn(10)), fmt.Sprint(1000 + 50*rng.Intn(8)),
		})
	}
	return &Dataset{
		Name: "Tax",
		Rel:  rel,
		ExactFDs: []fd.FD{
			fd.MustParse("zip->city", schema),
			fd.MustParse("zip->state", schema),
			fd.MustParse("areacode->state", schema),
			fd.MustParse("state->singleexemp", schema),
		},
		SpaceAttrs: []int{
			schema.MustIndex("areacode"), schema.MustIndex("city"),
			schema.MustIndex("state"), schema.MustIndex("zip"),
			schema.MustIndex("singleexemp"), schema.MustIndex("maritalstatus"),
		},
	}
}
