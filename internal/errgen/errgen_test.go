package errgen

import (
	"testing"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// cleanRelation builds a relation where b = f(a) and d = g(c) hold
// exactly, with enough rows for meaningful injection.
func cleanRelation(n int) *dataset.Relation {
	rel := dataset.New(dataset.MustSchema("a", "b", "c", "d"))
	for i := 0; i < n; i++ {
		a := string(rune('0' + i%5))
		c := string(rune('A' + i%4))
		rel.MustAppend(dataset.Tuple{a, "fb" + a, c, "gd" + c})
	}
	return rel
}

func fdAB() fd.FD { return fd.MustNew(fd.NewAttrSet(0), 1) }
func fdCD() fd.FD { return fd.MustNew(fd.NewAttrSet(2), 3) }

func TestInjectCountCreatesViolations(t *testing.T) {
	rel := cleanRelation(50)
	f := fdAB()
	if fd.G1(f, rel) != 0 {
		t.Fatal("setup: relation not clean")
	}
	res := newResult(rel)
	rng := stats.NewRNG(1)
	n := InjectCount(res, f, 5, rng)
	if n != 5 {
		t.Fatalf("injected %d, want 5", n)
	}
	if fd.G1(f, res.Rel) == 0 {
		t.Fatal("no violations created")
	}
	if len(res.DirtyRows) == 0 || len(res.DirtyCells) == 0 || len(res.Log) != 5 {
		t.Fatalf("ground truth incomplete: rows=%d cells=%d log=%d",
			len(res.DirtyRows), len(res.DirtyCells), len(res.Log))
	}
}

func TestInjectDoesNotMutateInput(t *testing.T) {
	rel := cleanRelation(30)
	orig := rel.Clone()
	res, err := InjectDegree(rel, DegreeConfig{FDs: []fd.FD{fdAB()}, Degree: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Log) == 0 {
		t.Fatal("nothing injected")
	}
	for i := 0; i < rel.NumRows(); i++ {
		for j := 0; j < rel.Schema().Arity(); j++ {
			if rel.Value(i, j) != orig.Value(i, j) {
				t.Fatalf("input relation mutated at (%d,%d)", i, j)
			}
		}
	}
}

func TestGroundTruthMatchesLog(t *testing.T) {
	rel := cleanRelation(40)
	res, err := InjectDegree(rel, DegreeConfig{FDs: []fd.FD{fdAB(), fdCD()}, Degree: 0.15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Log {
		if _, ok := res.DirtyRows[c.Row]; !ok {
			t.Errorf("row %d in log but not DirtyRows", c.Row)
		}
		if _, ok := res.DirtyCells[fd.Cell{Row: c.Row, Attr: c.Attr}]; !ok {
			t.Errorf("cell (%d,%d) in log but not DirtyCells", c.Row, c.Attr)
		}
		if res.Rel.Value(c.Row, c.Attr) == c.Old && c.Old != c.New {
			// A later change may have overwritten; only flag when the log
			// entry is the final change for that cell.
			final := true
			for _, later := range res.Log {
				if later.Row == c.Row && later.Attr == c.Attr && later != c {
					final = false
				}
			}
			if final {
				t.Errorf("cell (%d,%d) value not changed", c.Row, c.Attr)
			}
		}
	}
}

func TestCleanRowsComplement(t *testing.T) {
	rel := cleanRelation(30)
	res, err := InjectDegree(rel, DegreeConfig{FDs: []fd.FD{fdAB()}, Degree: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	clean := res.CleanRows()
	if len(clean)+len(res.DirtyRows) != rel.NumRows() {
		t.Fatalf("clean %d + dirty %d != rows %d", len(clean), len(res.DirtyRows), rel.NumRows())
	}
	for r := range clean {
		if _, dirty := res.DirtyRows[r]; dirty {
			t.Fatalf("row %d both clean and dirty", r)
		}
	}
}

func TestInjectDegreeReachesTarget(t *testing.T) {
	for _, degree := range []float64{0.05, 0.1, 0.2} {
		rel := cleanRelation(100)
		res, err := InjectDegree(rel, DegreeConfig{
			FDs: []fd.FD{fdAB()}, Degree: degree, Seed: 5, MaxChanges: 90,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := ViolationDegree(res.Rel, []fd.FD{fdAB()})
		if got < degree {
			t.Errorf("degree %v: reached only %v", degree, got)
		}
		// Should not wildly overshoot: one injection adds a bounded
		// number of violating pairs.
		if got > degree+0.15 {
			t.Errorf("degree %v: overshot to %v", degree, got)
		}
	}
}

func TestInjectDegreeConfigValidation(t *testing.T) {
	rel := cleanRelation(10)
	if _, err := InjectDegree(rel, DegreeConfig{Degree: 0.1}); err == nil {
		t.Error("no FDs should error")
	}
	for _, d := range []float64{0, 1, -0.5, 1.5} {
		if _, err := InjectDegree(rel, DegreeConfig{FDs: []fd.FD{fdAB()}, Degree: d}); err == nil {
			t.Errorf("degree %v should error", d)
		}
	}
}

func TestInjectRatio(t *testing.T) {
	rel := cleanRelation(80)
	res, err := InjectRatio(rel, RatioConfig{
		Target:           []fd.FD{fdAB()},
		Alternatives:     []fd.FD{fdCD()},
		TargetViolations: 9,
		Ratio:            1.0 / 3.0,
		Seed:             6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 9 target + round(9/3)=3 alternative corruptions.
	if len(res.Log) != 12 {
		t.Fatalf("log has %d changes, want 12", len(res.Log))
	}
	targetChanges, altChanges := 0, 0
	for _, c := range res.Log {
		switch c.Attr {
		case 1:
			targetChanges++
		case 3:
			altChanges++
		}
	}
	if targetChanges != 9 || altChanges != 3 {
		t.Fatalf("changes target=%d alt=%d, want 9/3", targetChanges, altChanges)
	}
	// The target FD should now have more violations than the alternative.
	tStats := fd.ComputeStats(fdAB(), res.Rel)
	aStats := fd.ComputeStats(fdCD(), res.Rel)
	if tStats.Violating <= aStats.Violating {
		t.Errorf("target violations %d not above alternative %d", tStats.Violating, aStats.Violating)
	}
}

func TestInjectRatioValidation(t *testing.T) {
	rel := cleanRelation(10)
	if _, err := InjectRatio(rel, RatioConfig{TargetViolations: 1}); err == nil {
		t.Error("no target should error")
	}
	if _, err := InjectRatio(rel, RatioConfig{Target: []fd.FD{fdAB()}}); err == nil {
		t.Error("zero TargetViolations should error")
	}
	if _, err := InjectRatio(rel, RatioConfig{Target: []fd.FD{fdAB()}, TargetViolations: 1, Ratio: -1}); err == nil {
		t.Error("negative ratio should error")
	}
}

func TestInjectDeterministicForSeed(t *testing.T) {
	rel := cleanRelation(60)
	a, err := InjectDegree(rel, DegreeConfig{FDs: []fd.FD{fdAB()}, Degree: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := InjectDegree(rel, DegreeConfig{FDs: []fd.FD{fdAB()}, Degree: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Log) != len(b.Log) {
		t.Fatalf("same seed produced different change counts: %d vs %d", len(a.Log), len(b.Log))
	}
	for i := range a.Log {
		if a.Log[i] != b.Log[i] {
			t.Fatalf("same seed diverged at change %d: %+v vs %+v", i, a.Log[i], b.Log[i])
		}
	}
	c, err := InjectDegree(rel, DegreeConfig{FDs: []fd.FD{fdAB()}, Degree: 0.1, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := len(c.Log) == len(a.Log)
	if same {
		for i := range a.Log {
			if a.Log[i] != c.Log[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical injection")
	}
}

func TestInjectOneStallsGracefully(t *testing.T) {
	// A two-row relation with distinct LHS values offers nothing to
	// corrupt for a→b.
	rel := dataset.New(dataset.MustSchema("a", "b"))
	rel.MustAppend(dataset.Tuple{"1", "x"})
	rel.MustAppend(dataset.Tuple{"2", "y"})
	res := newResult(rel)
	if injectOne(res, fdAB(), stats.NewRNG(1)) {
		t.Fatal("injection should stall with no agreeing groups")
	}
	if n := InjectCount(res, fdAB(), 5, stats.NewRNG(1)); n != 0 {
		t.Fatalf("InjectCount injected %d on impossible input", n)
	}
}

func TestViolationDegreeEmptyFDs(t *testing.T) {
	rel := cleanRelation(10)
	if got := ViolationDegree(rel, nil); got != 0 {
		t.Fatalf("empty FD list degree = %v", got)
	}
}

func TestInjectDegenerateDomainSynthesizesTypo(t *testing.T) {
	// All rows share the same RHS value: the generator must synthesize a
	// new value rather than loop forever.
	rel := dataset.New(dataset.MustSchema("a", "b"))
	for i := 0; i < 6; i++ {
		rel.MustAppend(dataset.Tuple{"k", "same"})
	}
	res := newResult(rel)
	if !injectOne(res, fdAB(), stats.NewRNG(1)) {
		t.Fatal("injection failed on degenerate domain")
	}
	if fd.G1(fdAB(), res.Rel) == 0 {
		t.Fatal("no violation created on degenerate domain")
	}
}
